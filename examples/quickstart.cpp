// Quickstart: publish a small batch of count queries under ε-differential
// privacy and compare the classic Laplace mechanism (Dwork) with iReduct.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "algorithms/dwork.h"
#include "algorithms/ireduct.h"
#include "common/random.h"
#include "dp/workload.h"
#include "eval/metrics.h"

int main() {
  using namespace ireduct;

  // Ten count queries: a few rare conditions, a few common ones.
  const std::vector<double> counts{12,   25,   40,    90,    300,
                                   1200, 4500, 15000, 42000, 90000};
  auto workload = Workload::PerQuery(counts);
  if (!workload.ok()) {
    std::fprintf(stderr, "workload: %s\n",
                 workload.status().ToString().c_str());
    return 1;
  }

  const double epsilon = 0.1;
  const double delta = 10.0;  // sanity bound for relative error
  BitGen gen(2011);

  auto dwork = RunDwork(*workload, DworkParams{epsilon}, gen);
  IReductParams params;
  params.epsilon = epsilon;
  params.delta = delta;
  params.lambda_max = 20000;  // most noise anyone would accept
  params.lambda_delta = 20;   // reduction step
  auto ireduct_out = RunIReduct(*workload, params, gen);
  if (!dwork.ok() || !ireduct_out.ok()) {
    std::fprintf(stderr, "mechanism failed: %s %s\n",
                 dwork.status().ToString().c_str(),
                 ireduct_out.status().ToString().c_str());
    return 1;
  }

  std::printf("%10s %12s %14s %12s %14s\n", "truth", "Dwork", "rel.err",
              "iReduct", "rel.err");
  for (size_t i = 0; i < counts.size(); ++i) {
    std::printf("%10.0f %12.1f %14.4f %12.1f %14.4f\n", counts[i],
                dwork->answers[i],
                RelativeError(dwork->answers[i], counts[i], delta),
                ireduct_out->answers[i],
                RelativeError(ireduct_out->answers[i], counts[i], delta));
  }
  std::printf("\noverall error (Definition 6):  Dwork %.4f   iReduct %.4f\n",
              OverallError(*workload, dwork->answers, delta),
              OverallError(*workload, ireduct_out->answers, delta));
  std::printf("privacy spent:                 Dwork %.4f   iReduct %.4f\n",
              dwork->epsilon_spent, ireduct_out->epsilon_spent);
  return 0;
}
