// The paper's motivating scenario (Section 1): a hospital publishes counts
// of medical conditions. Rare conditions (tens of patients) drown in the
// uniform Laplace noise that common conditions (tens of thousands) shrug
// off; iReduct reallocates the budget so both stay usable.
//
// This example also shows the chained NoiseDown primitive directly: a
// single count is published early at high noise and then refined twice,
// paying only the final scale's privacy.
//
//   ./build/examples/hospital_conditions
#include <cstdio>
#include <vector>

#include "algorithms/dwork.h"
#include "algorithms/ireduct.h"
#include "dp/noise_down.h"
#include "dp/privacy_accountant.h"
#include "eval/metrics.h"

int main() {
  using namespace ireduct;

  struct Condition {
    const char* name;
    double patients;
  };
  const std::vector<Condition> conditions{
      {"creutzfeldt-jakob", 11},    {"rabies exposure", 28},
      {"tetanus", 55},              {"tuberculosis", 480},
      {"lyme disease", 2'300},      {"influenza", 31'000},
      {"hypertension", 120'000},    {"seasonal allergies", 410'000},
  };
  std::vector<double> counts;
  for (const Condition& c : conditions) counts.push_back(c.patients);
  auto workload = Workload::PerQuery(counts);
  if (!workload.ok()) return 1;

  const double epsilon = 0.05;
  const double delta = 20.0;
  BitGen gen(99);

  auto dwork = RunDwork(*workload, DworkParams{epsilon}, gen);
  IReductParams params;
  params.epsilon = epsilon;
  params.delta = delta;
  params.lambda_max = 5'000;
  params.lambda_delta = 10;
  auto adaptive = RunIReduct(*workload, params, gen);
  if (!dwork.ok() || !adaptive.ok()) return 1;

  std::printf("%-20s %10s %14s %14s\n", "condition", "patients",
              "Dwork rel.err", "iReduct rel.err");
  for (size_t i = 0; i < conditions.size(); ++i) {
    std::printf("%-20s %10.0f %14.4f %14.4f\n", conditions[i].name,
                conditions[i].patients,
                RelativeError(dwork->answers[i], counts[i], delta),
                RelativeError(adaptive->answers[i], counts[i], delta));
  }
  // Single draws are noisy; average the headline comparison over trials.
  double dwork_mean = 0, adaptive_mean = 0;
  const int trials = 60;
  for (int t = 0; t < trials; ++t) {
    auto d = RunDwork(*workload, DworkParams{epsilon}, gen);
    auto a = RunIReduct(*workload, params, gen);
    if (!d.ok() || !a.ok()) return 1;
    dwork_mean += OverallError(*workload, d->answers, delta) / trials;
    adaptive_mean += OverallError(*workload, a->answers, delta) / trials;
  }
  std::printf(
      "\noverall error, mean of %d runs: Dwork %.4f, iReduct %.4f\n\n",
      trials, dwork_mean, adaptive_mean);

  // Direct use of the NoiseDown chain with a privacy ledger: publish the
  // tuberculosis count at scale 4000, then refine to 2000, then to 800.
  // Sequential composition would charge 1/4000 + 1/2000 + 1/800; the
  // NoiseDown chain costs (about) the final 1/800 alone.
  auto accountant = PrivacyAccountant::Create(1.0 / 800 * 1.06);
  const double truth = 480;
  double published = truth + gen.Laplace(4000);
  std::printf("tuberculosis count, progressively refined:\n");
  std::printf("  scale 4000: %8.1f\n", published);
  double prev = 4000;
  for (double scale : {2000.0, 800.0}) {
    auto refined = NoiseDown(truth, published, prev, scale, gen);
    if (!refined.ok()) return 1;
    published = *refined;
    prev = scale;
    std::printf("  scale %4.0f: %8.1f\n", scale, published);
  }
  // The whole chain is one charge at the final scale (with the library's
  // documented 6% slack; see dp/noise_down.h).
  if (accountant.ok() &&
      accountant->Charge("noise-down chain", 1.06 / 800).ok()) {
    std::printf("privacy ledger: spent %.6f of %.6f\n", accountant->spent(),
                accountant->budget());
  }
  return 0;
}
