// An interactive analyst session against the library's service facade:
// one ε budget, mixed ad-hoc counts, a marginal release, and a
// progressively refined count — with the ledger printed at the end.
//
//   ./build/examples/analyst_session [rows]
#include <cstdio>
#include <cstdlib>

#include "ireduct.h"

int main(int argc, char** argv) {
  using namespace ireduct;

  CensusConfig config;
  config.kind = CensusKind::kUs;
  config.rows = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 200'000;
  auto dataset = GenerateCensus(config);
  if (!dataset.ok()) return 1;

  auto session = PrivateQuerySession::Create(&*dataset, /*epsilon=*/0.5,
                                             /*seed=*/99);
  if (!session.ok()) return 1;
  std::printf("session budget: %.3f\n\n", session->budget());

  // 1. A quick ad-hoc count with a small slice of the budget.
  const ConjunctiveQuery widowed{{{kMaritalStatus, 3}}};
  auto count = session->CountQuery(widowed, 0.02);
  if (!count.ok()) return 1;
  auto ci = LaplaceConfidenceInterval(*count, 1.0 / 0.02, 0.95);
  std::printf("widowed count ~ %.0f   (95%% CI [%.0f, %.0f])\n", *count,
              ci->lo, ci->hi);

  // 2. Publish all one-dimensional marginals via iReduct.
  auto specs = AllKWaySpecs(dataset->schema(), 1);
  auto release = session->PublishMarginals(*specs, 0.3,
                                           1e-4 * dataset->num_rows(), 200);
  if (!release.ok()) {
    std::fprintf(stderr, "%s\n", release.status().ToString().c_str());
    return 1;
  }
  std::printf("published %zu marginals for epsilon %.4f\n",
              release->marginals.size(), release->epsilon_spent);

  // 3. A refinable count: coarse now, sharper when needed.
  const ConjunctiveQuery elderly{{{kAge, 85}}};
  auto chain = session->StartRefinableCount(elderly, 2000);
  if (!chain.ok()) return 1;
  std::printf("\nage-85 count, progressively refined:\n");
  std::printf("  scale %6.0f -> %8.1f\n", chain->scale(), chain->answer());
  for (double scale : {400.0, 50.0, 10.0}) {
    if (!chain->Reduce(scale, session->rng()).ok()) break;
    std::printf("  scale %6.0f -> %8.1f\n", chain->scale(),
                chain->answer());
  }

  // 4. The ledger: every charge, labelled.
  std::printf("\nledger (%.4f of %.4f spent):\n", session->spent(),
              session->budget());
  for (const PrivacyCharge& charge : session->ledger()) {
    std::printf("  %-34s %.5f\n", charge.label.c_str(), charge.epsilon);
  }
  return 0;
}
