// Spec-driven mechanism selection: run the same workload through several
// publication algorithms chosen by configuration strings — no algorithm
// headers, no per-mechanism code. Pass specs on the command line to try
// your own, e.g.
//
//   ./build/examples/mechanism_select "ireduct:lambda_steps=16" \
//       "two_phase:epsilon1=0.01,epsilon2=0.09" "geometric"
//
// A spec is "name" or "name:key=val,key=val"; the same strings drive
// ireduct_tool --mechanism and the BENCH_MECHANISMS bench knob. JSON works
// too (MechanismSpec::FromJson) for config files.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/mechanism_select
#include <cstdio>
#include <string>
#include <vector>

#include "algorithms/mechanism_registry.h"
#include "common/random.h"
#include "dp/workload.h"
#include "eval/metrics.h"

int main(int argc, char** argv) {
  using namespace ireduct;

  // Ten count queries with counts spanning four orders of magnitude — the
  // skew that separates relative-error mechanisms from absolute-error ones.
  const std::vector<double> counts{12,   25,   40,    90,    300,
                                   1200, 4500, 15000, 42000, 90000};
  auto workload = Workload::PerQuery(counts);
  if (!workload.ok()) {
    std::fprintf(stderr, "workload: %s\n",
                 workload.status().ToString().c_str());
    return 1;
  }

  std::vector<std::string> spec_texts;
  if (argc > 1) {
    spec_texts.assign(argv + 1, argv + argc);
  } else {
    spec_texts = {"dwork", "two_phase", "ireduct",
                  "ireduct:reducer=exact_coupling"};
  }

  const double epsilon = 0.1;
  const double delta = 10.0;  // sanity bound for relative error

  std::printf("%-40s %14s %14s %8s\n", "spec", "overall_error", "eps_spent",
              "private");
  for (const std::string& text : spec_texts) {
    auto spec = MechanismSpec::Parse(text);
    if (!spec.ok()) {
      std::fprintf(stderr, "%s: %s\n", text.c_str(),
                   spec.status().ToString().c_str());
      return 1;
    }
    // The spec keeps whatever the caller pinned; declared parameters it
    // left open are filled with this example's shared settings.
    auto mechanism = MechanismRegistry::Global().Get(spec->name());
    if (!mechanism.ok()) {
      std::fprintf(stderr, "%s: %s\n", text.c_str(),
                   mechanism.status().ToString().c_str());
      return 1;
    }
    (*mechanism)->SetSpecDefault(&*spec, "epsilon", epsilon);
    (*mechanism)->SetSpecDefault(&*spec, "delta", delta);
    (*mechanism)->SetSpecDefault(&*spec, "lambda_max", 20000.0);
    // A default lambda_delta would shadow a spec-pinned lambda_steps
    // (iReduct resolves lambda_delta first).
    if (!spec->Has("lambda_steps")) {
      (*mechanism)->SetSpecDefault(&*spec, "lambda_delta", 20.0);
    }

    BitGen gen(2011);  // same seed for every mechanism: paired comparison
    auto out = (*mechanism)->Run(*workload, *spec, gen);
    if (!out.ok()) {
      std::fprintf(stderr, "%s: %s\n", text.c_str(),
                   out.status().ToString().c_str());
      return 1;
    }
    std::printf("%-40s %14.4f %14.4f %8s\n", spec->ToString().c_str(),
                OverallError(*workload, out->answers, delta),
                out->epsilon_spent, out->is_private() ? "yes" : "NO");
  }
  std::printf(
      "\nMechanisms available (see --list-mechanisms on ireduct_tool):\n ");
  for (const std::string& name : MechanismRegistry::Global().Names()) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\n");
  return 0;
}
