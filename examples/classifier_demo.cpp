// Naive Bayes from noisy marginals (the paper's Section 6.5 task):
// predict Education from the other eight census attributes, training the
// classifier only on differentially private marginals.
//
//   ./build/examples/classifier_demo [rows]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "algorithms/dwork.h"
#include "algorithms/ireduct.h"
#include "classifier/cross_validation.h"
#include "data/census_generator.h"

int main(int argc, char** argv) {
  using namespace ireduct;

  CensusConfig config;
  config.kind = CensusKind::kUs;
  config.rows = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 100'000;
  auto dataset = GenerateCensus(config);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  const double n = static_cast<double>(dataset->num_rows());
  const double epsilon = 0.01;
  const double delta = 1e-4 * n;
  std::printf("US-like census, %llu rows; class attribute: Education\n\n",
              static_cast<unsigned long long>(config.rows));

  BitGen noise_gen(3);
  auto run = [&](const char* name, const PublishFn& publish) {
    BitGen cv_gen(1);  // identical folds across methods
    auto cv = CrossValidateClassifier(*dataset, kEducation, 10, delta,
                                      publish, cv_gen);
    if (!cv.ok()) {
      std::printf("%-11s failed: %s\n", name, cv.status().ToString().c_str());
      return;
    }
    std::printf("%-11s accuracy %.4f   marginal overall error %.4f\n", name,
                cv->mean_accuracy, cv->mean_overall_error);
  };

  run("noise-free", [](const MarginalWorkload& mw) {
    const auto a = mw.workload().true_answers();
    return Result<std::vector<double>>(std::vector<double>(a.begin(),
                                                           a.end()));
  });

  run("iReduct", [&](const MarginalWorkload& mw) -> Result<std::vector<double>> {
    IReductParams p;
    p.epsilon = epsilon;
    p.delta = delta;
    p.lambda_max = n / 10;
    p.lambda_delta = n / 5'000;
    IREDUCT_ASSIGN_OR_RETURN(MechanismOutput out,
                             RunIReduct(mw.workload(), p, noise_gen));
    return std::move(out.answers);
  });

  run("Dwork", [&](const MarginalWorkload& mw) -> Result<std::vector<double>> {
    IREDUCT_ASSIGN_OR_RETURN(
        MechanismOutput out,
        RunDwork(mw.workload(), DworkParams{epsilon}, noise_gen));
    return std::move(out.answers);
  });

  return 0;
}
