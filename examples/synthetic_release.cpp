// Synthetic record release (the paper's concluding proposal): publish the
// classifier marginal set with iReduct, repair the noisy counts (non-
// negativity + total consistency), sample a synthetic census from the
// repaired marginals, and report how faithfully the synthetic table's
// marginals track the real ones — all under one ε-DP guarantee.
//
//   ./build/examples/synthetic_release [rows]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "algorithms/ireduct.h"
#include "classifier/naive_bayes.h"
#include "data/census_generator.h"
#include "marginals/marginal_set.h"
#include "marginals/marginal_workload.h"
#include "marginals/postprocess.h"
#include "marginals/synthetic.h"

int main(int argc, char** argv) {
  using namespace ireduct;

  CensusConfig config;
  config.kind = CensusKind::kBrazil;
  config.rows = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 200'000;
  auto dataset = GenerateCensus(config);
  if (!dataset.ok()) return 1;
  const double n = static_cast<double>(dataset->num_rows());

  // 1. Compute and privately publish the classifier marginal set.
  auto specs = ClassifierSpecs(dataset->schema(), kEducation);
  auto marginals = ComputeMarginals(*dataset, *specs);
  auto mw = MarginalWorkload::Create(std::move(*marginals));
  if (!mw.ok()) return 1;

  IReductParams params;
  params.epsilon = 0.05;
  params.delta = 1e-4 * n;
  params.lambda_max = n / 10;
  params.lambda_delta = params.lambda_max / 1000;
  BitGen gen(13);
  auto published = RunIReduct(mw->workload(), params, gen);
  if (!published.ok()) {
    std::fprintf(stderr, "%s\n", published.status().ToString().c_str());
    return 1;
  }
  std::printf("published %zu marginals under epsilon = %.3f\n",
              mw->num_marginals(), published->epsilon_spent);

  // 2. Post-process: rebuild tables, clamp negatives, make totals agree
  // with the (public) cardinality, round to integers.
  auto noisy = mw->ToMarginals(published->answers);
  if (!noisy.ok()) return 1;
  std::vector<Marginal> repaired = EnforceTotal(std::move(*noisy), n);
  for (Marginal& m : repaired) m = RoundCounts(ClampNonNegative(m));

  // 3. Sample a synthetic census of the same size.
  auto synthetic = SynthesizeFromClassifierMarginals(
      dataset->schema(), kEducation, repaired, config.rows, gen);
  if (!synthetic.ok()) {
    std::fprintf(stderr, "%s\n", synthetic.status().ToString().c_str());
    return 1;
  }

  // 4. Fidelity: marginal overall error of the synthetic table, and a
  // classifier trained on the synthetic data evaluated on the real one.
  auto fidelity =
      SyntheticMarginalError(*dataset, *synthetic, *specs, params.delta);
  if (!fidelity.ok()) return 1;
  std::printf("synthetic-vs-real marginal overall error: %.4f\n",
              *fidelity);

  auto synth_marginals = ComputeMarginals(*synthetic, *specs);
  auto model = NaiveBayesModel::FromMarginals(dataset->schema(), kEducation,
                                              *synth_marginals);
  auto real_marginals = ComputeMarginals(*dataset, *specs);
  auto real_model = NaiveBayesModel::FromMarginals(
      dataset->schema(), kEducation, *real_marginals);
  if (!model.ok() || !real_model.ok()) return 1;
  std::printf("Education classifier accuracy on real data:\n");
  std::printf("  trained on real data:      %.4f\n",
              real_model->Accuracy(*dataset));
  std::printf("  trained on synthetic data: %.4f\n",
              model->Accuracy(*dataset));
  return 0;
}
