// Selectivity estimation under differential privacy — one of the
// applications the paper's introduction motivates. A query optimizer needs
// predicate selectivities; relative error is what matters (a selectivity
// of 0.1% mistaken for 2% picks the wrong plan, even though the absolute
// error is tiny).
//
// This example builds a batch of conjunctive predicate counts over the
// synthetic census, publishes them with Dwork and with iReduct at the same
// ε, and prints the selectivity each would report to the optimizer.
//
//   ./build/examples/selectivity_estimation [rows]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "algorithms/dwork.h"
#include "algorithms/ireduct.h"
#include "data/census_generator.h"
#include "eval/metrics.h"
#include "queries/predicate.h"

int main(int argc, char** argv) {
  using namespace ireduct;

  CensusConfig config;
  config.kind = CensusKind::kBrazil;
  config.rows = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 300'000;
  auto dataset = GenerateCensus(config);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  const double n = static_cast<double>(dataset->num_rows());

  // A mix of common and highly selective predicates.
  const std::vector<ConjunctiveQuery> queries{
      ConjunctiveQuery{{{kGender, 1}}},
      ConjunctiveQuery{{{kMaritalStatus, 1}}},
      ConjunctiveQuery{{{kMaritalStatus, 3}}},
      ConjunctiveQuery{{{kAge, 80}}},
      ConjunctiveQuery{{{kAge, 95}}},
      ConjunctiveQuery{{{kEducation, 4}, {kGender, 1}}},
      ConjunctiveQuery{{{kEducation, 0}, {kMaritalStatus, 3}}},
      ConjunctiveQuery{{{kState, 20}, {kRace, 3}}},
      ConjunctiveQuery{{{kState, 0}, {kEducation, 2}}},
      ConjunctiveQuery{{{kAge, 17}, {kMaritalStatus, 1}}},
  };
  auto workload = BuildPredicateWorkload(*dataset, queries);
  if (!workload.ok()) {
    std::fprintf(stderr, "%s\n", workload.status().ToString().c_str());
    return 1;
  }

  const double epsilon = 0.05;
  const double delta = 1e-4 * n;
  BitGen gen(17);
  auto dwork = RunDwork(*workload, DworkParams{epsilon}, gen);
  IReductParams params;
  params.epsilon = epsilon;
  params.delta = delta;
  params.lambda_max = n / 10;
  params.lambda_delta = params.lambda_max / 1000;
  auto adaptive = RunIReduct(*workload, params, gen);
  if (!dwork.ok() || !adaptive.ok()) {
    std::fprintf(stderr, "mechanism failed\n");
    return 1;
  }

  std::printf("%-34s %12s %12s %12s\n", "predicate", "true sel.",
              "Dwork sel.", "iReduct sel.");
  for (size_t i = 0; i < queries.size(); ++i) {
    std::printf("%-34s %11.4f%% %11.4f%% %11.4f%%\n",
                queries[i].ToString(dataset->schema()).c_str(),
                100 * workload->true_answer(i) / n,
                100 * dwork->answers[i] / n,
                100 * adaptive->answers[i] / n);
  }
  std::printf("\noverall relative error: Dwork %.4f, iReduct %.4f\n",
              OverallError(*workload, dwork->answers, delta),
              OverallError(*workload, adaptive->answers, delta));
  return 0;
}
