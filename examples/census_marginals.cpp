// Publishing census marginals (the paper's Section 5 case study): generate
// a Brazil-like synthetic census, compute all one-dimensional marginals,
// and publish them with every mechanism in the library.
//
//   ./build/examples/census_marginals [rows]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "algorithms/dwork.h"
#include "algorithms/ireduct.h"
#include "algorithms/iresamp.h"
#include "algorithms/oracle.h"
#include "algorithms/two_phase.h"
#include "data/census_generator.h"
#include "eval/metrics.h"
#include "marginals/marginal_set.h"
#include "marginals/marginal_workload.h"

int main(int argc, char** argv) {
  using namespace ireduct;

  CensusConfig config;
  config.kind = CensusKind::kBrazil;
  config.rows = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 200'000;
  std::printf("generating %llu Brazil-like census rows...\n",
              static_cast<unsigned long long>(config.rows));
  auto dataset = GenerateCensus(config);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }

  auto specs = AllKWaySpecs(dataset->schema(), 1);
  auto marginals = ComputeMarginals(*dataset, *specs);
  auto mw = MarginalWorkload::Create(std::move(*marginals));
  if (!mw.ok()) {
    std::fprintf(stderr, "%s\n", mw.status().ToString().c_str());
    return 1;
  }
  const Workload& w = mw->workload();
  std::printf("workload: %zu marginals, %zu cells, sensitivity %.0f\n\n",
              mw->num_marginals(), w.num_queries(), w.Sensitivity());

  const double n = static_cast<double>(dataset->num_rows());
  const double epsilon = 0.01;
  const double delta = 1e-4 * n;
  BitGen gen(7);

  auto report = [&](const char* name, const Result<MechanismOutput>& out) {
    if (!out.ok()) {
      std::printf("%-10s failed: %s\n", name,
                  out.status().ToString().c_str());
      return;
    }
    std::printf("%-10s overall error %.5f   (epsilon %s)\n", name,
                OverallError(w, out->answers, delta),
                std::isinf(out->epsilon_spent)
                    ? "inf (non-private baseline)"
                    : std::to_string(out->epsilon_spent).c_str());
  };

  report("Oracle", RunOracle(w, OracleParams{epsilon, delta}, gen));

  IReductParams irp;
  irp.epsilon = epsilon;
  irp.delta = delta;
  irp.lambda_max = n / 10;
  irp.lambda_delta = n / 20'000;
  report("iReduct", RunIReduct(w, irp, gen));

  report("TwoPhase",
         RunTwoPhase(w, TwoPhaseParams{0.07 * epsilon, 0.93 * epsilon, delta},
                     gen));

  IResampParams rsp;
  rsp.epsilon = epsilon;
  rsp.delta = delta;
  rsp.lambda_max = n / 10;
  report("iResamp", RunIResamp(w, rsp, gen));

  report("Dwork", RunDwork(w, DworkParams{epsilon}, gen));

  // Show one published marginal next to the truth.
  irp.lambda_delta = n / 20'000;
  auto out = RunIReduct(w, irp, gen);
  if (out.ok()) {
    auto noisy = mw->ToMarginals(out->answers);
    const Marginal& truth = mw->marginal(kMaritalStatus);
    const Marginal& published = (*noisy)[kMaritalStatus];
    std::printf("\nMaritalStatus marginal (truth vs published):\n");
    const char* labels[] = {"single", "married", "divorced", "widowed"};
    for (size_t c = 0; c < truth.num_cells(); ++c) {
      std::printf("  %-9s %10.0f %12.1f\n", labels[c], truth.count(c),
                  published.count(c));
    }
  }
  return 0;
}
