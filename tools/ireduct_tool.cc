// ireduct_tool: command-line front end for the library.
//
//   ireduct_tool generate  --kind brazil|us --rows N --seed S --out FILE
//                          [--profile census|zipf-heavy|sparse-events|
//                           wide-schema] [--format csv|columnar]
//                          [--block-rows N] [--zero-copy 1] [--no-compress 1]
//       Writes a synthetic dataset. --profile picks the generation shape
//       (census replica by default); --format columnar writes the binary
//       columnar container (data/columnar.h) instead of CSV.
//
//   ireduct_tool csv2col   --in FILE.csv --out FILE.col
//                          [--kind brazil|us | --profile P]
//                          [--block-rows N] [--zero-copy 1] [--no-compress 1]
//       Converts a CSV to the columnar format. With --kind/--profile the
//       CSV is validated against that schema; otherwise attribute names
//       come from the header and each domain is inferred as max code + 1.
//       --zero-copy writes the raw16 mmap layout (bigger file, zero-cost
//       load); --no-compress keeps bit-packed chunks but skips byte-RLE.
//
//   ireduct_tool col2csv   --in FILE.col --out FILE.csv
//       Converts a columnar file back to CSV (inverse of csv2col).
//
//   ireduct_tool col-info  --in FILE.col
//       Prints a columnar file's schema, geometry, fingerprint, and
//       per-encoding chunk statistics.
//
//   ireduct_tool marginals --kind brazil|us --rows N --k 1|2
//                          --epsilon E --mechanism SPEC
//                          --out-dir DIR [--steps N] [--seed S]
//                          [--journal FILE [--resume 1]
//                           [--checkpoint-every N] [--checkpoint FILE]]
//       Publishes all k-way marginals under ε-DP and writes one CSV per
//       marginal plus answers.csv with confidence intervals. SPEC is a
//       registry mechanism spec — a bare name ("ireduct", "dwork", ...)
//       or name:key=val,key=val with parameter overrides, e.g.
//       "two_phase:epsilon=1.0" or
//       "ireduct:lambda_steps=16,engine=incremental". Workload-derived
//       defaults (epsilon, delta, lambda_max, lambda_steps) fill any
//       declared parameter the spec leaves unset.
//
//       --journal FILE makes the run crash-safe: every ε grant is written
//       to an fsync'd write-ahead ledger journal before it is admitted,
//       and the run checkpoints its full state every N completed rounds
//       (default 8; checkpoint file defaults to FILE.ckpt). After a crash,
//       rerun with --resume 1: the ledger is recovered (a torn final
//       record counts as spent), the checkpoint is loaded, and the run
//       continues bit-identically to an uninterrupted one. A journal that
//       recorded grants but has no checkpoint is refused on resume, and a
//       fresh (non-resume) run refuses to overwrite an existing journal —
//       truncating a crashed run's ledger would double-spend its ε.
//
//   ireduct_tool compare   --kind brazil|us --rows N --k 1|2 --epsilon E
//                          [--mechanisms "SPEC;SPEC;..."] [--trials T]
//                          [--seed S]
//       Runs a suite of mechanism specs (default: the Section 6 paper
//       suite) and prints/exports a comparison table (comparison.csv in
//       the working directory).
//
//   ireduct_tool serve     --socket PATH [--ready-file FILE]
//                          [--data FILE.col | --profile P --kind K --rows N
//                           --seed S] [--dataset-name NAME] [--workers N]
//                          [--max-queue N] [--tenant-cap N] [--max-batch N]
//                          [--no-batch 1] [--journal-dir DIR]
//                          [--retry-after-ms N]
//       Runs the multi-tenant private query server (service/query_server.h)
//       over the NDJSON wire protocol (service/wire.h) on a Unix-domain
//       socket until SIGINT/SIGTERM. --data serves an existing columnar
//       file (zero-copy layouts are mmap-shared across tenants); otherwise
//       a dataset is generated from the usual generation flags.
//       --ready-file is written once the socket accepts (for scripts).
//       --journal-dir gives every tenant a crash-safe ε ledger journal.
//
//   ireduct_tool client    --socket PATH --op ping|stats|open|resume|
//                          budget|count|marginals [--id N] [--tenant T]
//                          [--dataset NAME] [--budget E] [--seed S]
//                          [--epsilon E] [--delta D] [--steps N]
//                          [--mechanism SPEC] [--specs "0,1;2"]
//                          [--predicates "0=3,1=1"]
//       Sends one wire request and prints the NDJSON response. Exit 0 on
//       an ok response, 1 on an error response (e.g. an admission shed,
//       which carries retry_after_ms and never consumed ε).
//
//   ireduct_tool list-mechanisms   (or --list-mechanisms anywhere)
//       Prints every registered mechanism with its privacy status and
//       accepted spec parameters.
//
// Observability flags (valid for every command, `--flag value` or
// `--flag=value`):
//   --log-level LEVEL   debug|info|warn|error|off (default warn, or the
//                       IREDUCT_LOG_LEVEL environment variable)
//   --trace-out FILE    write a Chrome trace_event JSON (open it in
//                       chrome://tracing or ui.perfetto.dev) with one span
//                       per iReduct iteration and the privacy ledger
//                       attached under otherData.privacy_ledger
//   --metrics-out FILE  write the process metrics snapshot JSON (counters,
//                       gauges — including privacy.epsilon_spent —, and
//                       histograms)
//   --events-out FILE   write the structured event stream as JSONL, one
//                       event per line ({"seq":N,"type":"ireduct.round",...});
//                       see docs/OBSERVABILITY.md for the per-type schema
//   --prom-out FILE     write the metrics registry in Prometheus/OpenMetrics
//                       text exposition format (scrapeable via node_exporter
//                       textfile collector or any file-based pipeline)
//   --report-out FILE   write the unified run report JSON: run fields,
//                       per-query relative-error stats, the ε ledger, the
//                       metrics snapshot, and the event stream + summary,
//                       all in one deterministic document
#include <sys/stat.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "ireduct.h"

namespace {

using namespace ireduct;

// --flag value / --flag=value parsing into a map; returns false on
// malformed input.
bool ParseFlags(int argc, char** argv, int first,
                std::map<std::string, std::string>* flags) {
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "malformed flag: %s\n", arg.c_str());
      return false;
    }
    if (const size_t eq = arg.find('='); eq != std::string::npos) {
      (*flags)[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      continue;
    }
    if (i + 1 >= argc) {
      std::fprintf(stderr, "flag %s is missing a value\n", arg.c_str());
      return false;
    }
    (*flags)[arg.substr(2)] = argv[++i];
  }
  return true;
}

std::string FlagOr(const std::map<std::string, std::string>& flags,
                   const std::string& name, const std::string& fallback) {
  const auto it = flags.find(name);
  return it == flags.end() ? fallback : it->second;
}

Result<Dataset> MakeCensus(const std::map<std::string, std::string>& flags) {
  CensusConfig config;
  const std::string kind = FlagOr(flags, "kind", "brazil");
  if (kind == "brazil") {
    config.kind = CensusKind::kBrazil;
  } else if (kind == "us") {
    config.kind = CensusKind::kUs;
  } else {
    return Status::InvalidArgument("--kind must be brazil or us");
  }
  config.rows = std::strtoull(FlagOr(flags, "rows", "100000").c_str(),
                              nullptr, 10);
  config.seed =
      std::strtoull(FlagOr(flags, "seed", "2011").c_str(), nullptr, 10);
  return GenerateCensus(config);
}

Result<CensusKind> ParseKindFlag(
    const std::map<std::string, std::string>& flags) {
  const std::string kind = FlagOr(flags, "kind", "brazil");
  if (kind == "brazil") return CensusKind::kBrazil;
  if (kind == "us") return CensusKind::kUs;
  return Status::InvalidArgument("--kind must be brazil or us");
}

// Builds a dataset from the shared generation flags (--profile, --kind,
// --rows, --seed); plain census when --profile is absent.
Result<Dataset> MakeProfileDataset(
    const std::map<std::string, std::string>& flags) {
  ProfileConfig config;
  IREDUCT_ASSIGN_OR_RETURN(config.profile,
                           ParseDataProfile(FlagOr(flags, "profile",
                                                   "census")));
  IREDUCT_ASSIGN_OR_RETURN(config.kind, ParseKindFlag(flags));
  config.rows = std::strtoull(FlagOr(flags, "rows", "100000").c_str(),
                              nullptr, 10);
  config.seed =
      std::strtoull(FlagOr(flags, "seed", "2011").c_str(), nullptr, 10);
  return GenerateProfile(config);
}

// Shared --block-rows / --zero-copy / --no-compress parsing.
ColumnarWriteOptions ColumnarOptionsFromFlags(
    const std::map<std::string, std::string>& flags) {
  ColumnarWriteOptions options;
  options.block_rows = static_cast<uint32_t>(std::strtoul(
      FlagOr(flags, "block-rows", "65536").c_str(), nullptr, 10));
  options.zero_copy_layout = FlagOr(flags, "zero-copy", "0") != "0";
  options.compress = FlagOr(flags, "no-compress", "0") == "0";
  return options;
}

int CmdGenerate(const std::map<std::string, std::string>& flags) {
  auto dataset = MakeProfileDataset(flags);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  const std::string format = FlagOr(flags, "format", "csv");
  const std::string out = FlagOr(
      flags, "out", format == "columnar" ? "census.col" : "census.csv");
  Status s;
  if (format == "csv") {
    s = WriteCsv(*dataset, out);
  } else if (format == "columnar") {
    s = WriteColumnar(*dataset, out, ColumnarOptionsFromFlags(flags));
  } else {
    std::fprintf(stderr, "--format must be csv or columnar\n");
    return 2;
  }
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu rows to %s\n", dataset->num_rows(), out.c_str());
  return 0;
}

int CmdCsv2Col(const std::map<std::string, std::string>& flags) {
  const std::string in = FlagOr(flags, "in", "");
  const std::string out = FlagOr(flags, "out", "");
  if (in.empty() || out.empty()) {
    std::fprintf(stderr, "csv2col needs --in FILE.csv and --out FILE.col\n");
    return 2;
  }
  Result<Dataset> dataset = Status::Internal("unreachable");
  if (flags.count("kind") > 0 || flags.count("profile") > 0) {
    auto profile = ParseDataProfile(FlagOr(flags, "profile", "census"));
    if (!profile.ok()) {
      std::fprintf(stderr, "%s\n", profile.status().ToString().c_str());
      return 1;
    }
    auto kind = ParseKindFlag(flags);
    if (!kind.ok()) {
      std::fprintf(stderr, "%s\n", kind.status().ToString().c_str());
      return 1;
    }
    auto schema = ProfileSchema(*profile, *kind);
    if (!schema.ok()) {
      std::fprintf(stderr, "%s\n", schema.status().ToString().c_str());
      return 1;
    }
    dataset = ReadCsv(*schema, in);
  } else {
    dataset = ReadCsvInferred(in);
  }
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  if (Status s = WriteColumnar(*dataset, out, ColumnarOptionsFromFlags(flags));
      !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu rows to %s\n", dataset->num_rows(), out.c_str());
  return 0;
}

int CmdCol2Csv(const std::map<std::string, std::string>& flags) {
  const std::string in = FlagOr(flags, "in", "");
  const std::string out = FlagOr(flags, "out", "");
  if (in.empty() || out.empty()) {
    std::fprintf(stderr, "col2csv needs --in FILE.col and --out FILE.csv\n");
    return 2;
  }
  auto dataset = ReadColumnar(in);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  if (Status s = WriteCsv(*dataset, out); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu rows to %s\n", dataset->num_rows(), out.c_str());
  return 0;
}

int CmdColInfo(const std::map<std::string, std::string>& flags) {
  const std::string in = FlagOr(flags, "in", "");
  if (in.empty()) {
    std::fprintf(stderr, "col-info needs --in FILE.col\n");
    return 2;
  }
  auto file = ColumnarFile::Open(in);
  if (!file.ok()) {
    std::fprintf(stderr, "%s\n", file.status().ToString().c_str());
    return 1;
  }
  const Schema& schema = file->schema();
  std::printf("%s: %llu rows x %zu columns, %u blocks of %u rows, %s\n",
              in.c_str(),
              static_cast<unsigned long long>(file->num_rows()),
              schema.num_attributes(), file->num_blocks(),
              file->block_rows(),
              file->zero_copy() ? "zero-copy layout" : "packed layout");
  std::printf("file bytes:  %llu\n",
              static_cast<unsigned long long>(file->file_bytes()));
  std::printf("fingerprint: %016llx\n",
              static_cast<unsigned long long>(file->fingerprint()));
  for (size_t c = 0; c < schema.num_attributes(); ++c) {
    uint64_t encoded = 0;
    size_t raw = 0;
    size_t packed = 0;
    size_t rle = 0;
    for (uint32_t b = 0; b < file->num_blocks(); ++b) {
      encoded += file->chunk_bytes(static_cast<uint32_t>(c), b);
      switch (file->chunk_encoding(static_cast<uint32_t>(c), b)) {
        case ChunkEncoding::kRaw16:
          ++raw;
          break;
        case ChunkEncoding::kPacked:
          ++packed;
          break;
        case ChunkEncoding::kPackedRle:
          ++rle;
          break;
      }
    }
    std::printf(
        "  %-16s domain %-6u width %2u bits, %8llu bytes "
        "(raw %zu / packed %zu / rle %zu)\n",
        schema.attribute(c).name.c_str(), schema.attribute(c).domain_size,
        file->bit_width(static_cast<uint32_t>(c)),
        static_cast<unsigned long long>(encoded), raw, packed, rle);
  }
  return 0;
}

// Registry dispatch with workload-derived defaults: the user's spec is
// validated as written, then epsilon/delta/lambda_max/lambda_steps are
// filled for whichever of those parameters the mechanism declares and the
// spec leaves unset.
Result<MechanismOutput> RunSpecMechanism(
    const MechanismSpec& user_spec, const Workload& workload, double epsilon,
    double delta, double lambda_max, int steps, BitGen& gen,
    const Mechanism::ResumableHooks* hooks = nullptr) {
  IREDUCT_ASSIGN_OR_RETURN(const Mechanism* mech,
                           MechanismRegistry::Global().Get(user_spec.name()));
  IREDUCT_RETURN_NOT_OK(mech->ValidateSpec(user_spec));
  MechanismSpec spec = user_spec;
  mech->SetSpecDefault(&spec, "epsilon", epsilon);
  mech->SetSpecDefault(&spec, "delta", delta);
  mech->SetSpecDefault(&spec, "lambda_max", lambda_max);
  mech->SetSpecDefault(&spec, "lambda_steps",
                       std::string_view(std::to_string(steps)));
  if (hooks != nullptr) {
    return mech->RunResumable(workload, spec, gen, *hooks);
  }
  return mech->Run(workload, spec, gen);
}

// Crash-safety state for a journaled `marginals` run: the write-ahead
// ledger journal, the accountant it is attached to, the checkpoint sink
// chain, and (on --resume) the loaded checkpoint.
struct CrashSafeRun {
  std::unique_ptr<LedgerJournal> journal;
  std::unique_ptr<PrivacyAccountant> accountant;
  std::unique_ptr<FileCheckpointSink> file_sink;
  std::unique_ptr<JournalingCheckpointSink> journaled_sink;
  std::unique_ptr<RunCheckpoint> resume_state;
  Mechanism::ResumableHooks hooks;
};

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

// Builds the journal + checkpoint plumbing for CmdMarginals. On resume the
// ledger is recovered first (torn tail counted as spent, then compacted),
// so the accountant can never under-report what the crashed run granted.
Result<CrashSafeRun> SetUpCrashSafeRun(const std::string& journal_path,
                                       const std::string& checkpoint_path,
                                       uint64_t checkpoint_every,
                                       bool resume, double epsilon) {
  CrashSafeRun run;
  if (resume) {
    IREDUCT_ASSIGN_OR_RETURN(const LedgerJournal::Recovered recovered,
                             LedgerJournal::Recover(journal_path));
    IREDUCT_ASSIGN_OR_RETURN(PrivacyAccountant accountant,
                             LedgerJournal::Replay(recovered));
    run.accountant =
        std::make_unique<PrivacyAccountant>(std::move(accountant));
    if (recovered.torn_tail) {
      std::fprintf(stderr,
                   "note: journal ended in a torn grant; counting its "
                   "epsilon %g as spent\n",
                   recovered.torn_epsilon);
    }
    IREDUCT_ASSIGN_OR_RETURN(
        LedgerJournal journal,
        recovered.torn_tail
            ? LedgerJournal::RewriteCompacted(journal_path, recovered)
            : LedgerJournal::OpenForAppend(journal_path));
    run.journal = std::make_unique<LedgerJournal>(std::move(journal));
    if (FileExists(checkpoint_path)) {
      IREDUCT_ASSIGN_OR_RETURN(RunCheckpoint checkpoint,
                               FileCheckpointSink::Load(checkpoint_path));
      run.resume_state =
          std::make_unique<RunCheckpoint>(std::move(checkpoint));
      run.hooks.resume = run.resume_state.get();
    } else if (!recovered.charges.empty()) {
      // Grants were journaled but no checkpoint survived: re-executing
      // from scratch cannot be proven identical to what was paid for.
      return Status::FailedPrecondition(
          "journal '" + journal_path + "' records grants but no " +
          "checkpoint exists at '" + checkpoint_path +
          "'; refusing to re-run the paid-for release from scratch");
    }
  } else {
    // A fresh run truncates the journal. An existing file here is almost
    // always a crashed run whose --resume was forgotten; truncating it
    // would destroy the spent-ε record and double-spend the budget — the
    // exact hazard the journal exists to prevent. Refuse instead.
    if (FileExists(journal_path)) {
      return Status::FailedPrecondition(
          "journal '" + journal_path +
          "' already exists; pass --resume 1 to continue that run, or "
          "delete the file to explicitly discard its ledger");
    }
    IREDUCT_ASSIGN_OR_RETURN(PrivacyAccountant accountant,
                             PrivacyAccountant::Create(epsilon));
    run.accountant =
        std::make_unique<PrivacyAccountant>(std::move(accountant));
    IREDUCT_ASSIGN_OR_RETURN(LedgerJournal journal,
                             LedgerJournal::Create(journal_path, epsilon));
    run.journal = std::make_unique<LedgerJournal>(std::move(journal));
  }
  run.accountant->AttachJournal(run.journal.get());
  run.file_sink = std::make_unique<FileCheckpointSink>(checkpoint_path);
  run.journaled_sink = std::make_unique<JournalingCheckpointSink>(
      run.accountant.get(), run.file_sink.get());
  run.hooks.checkpoint.sink = run.journaled_sink.get();
  run.hooks.checkpoint.every = checkpoint_every;
  return run;
}

int CmdListMechanisms() {
  const MechanismRegistry& registry = MechanismRegistry::Global();
  const std::vector<std::string> names = registry.Names();
  std::printf("registered mechanisms (%zu):\n", names.size());
  for (const std::string& name : names) {
    const MechanismInfo info = registry.Find(name)->Describe();
    std::printf("  %-13s %-13s %-12s %s\n", info.name.c_str(),
                info.display_name.c_str(),
                info.privacy == MechanismPrivacy::kPrivate ? "private"
                                                           : "NON-PRIVATE",
                info.summary.c_str());
    for (const MechanismParamDoc& p : info.params) {
      if (p.default_value.empty()) {
        std::printf("      %-22s %s\n", p.key.c_str(), p.doc.c_str());
      } else {
        std::printf("      %-22s %s [default %s]\n", p.key.c_str(),
                    p.doc.c_str(), p.default_value.c_str());
      }
    }
  }
  return 0;
}

int CmdMarginals(const std::map<std::string, std::string>& flags,
                 RunReport* report) {
  auto dataset = MakeCensus(flags);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  const int k = std::atoi(FlagOr(flags, "k", "1").c_str());
  auto specs = AllKWaySpecs(dataset->schema(), k);
  if (!specs.ok()) {
    std::fprintf(stderr, "%s\n", specs.status().ToString().c_str());
    return 1;
  }
  auto marginals = ComputeMarginals(*dataset, *specs);
  auto mw = MarginalWorkload::Create(std::move(*marginals));
  if (!mw.ok()) {
    std::fprintf(stderr, "%s\n", mw.status().ToString().c_str());
    return 1;
  }

  const double epsilon =
      std::strtod(FlagOr(flags, "epsilon", "0.01").c_str(), nullptr);
  const double n = static_cast<double>(dataset->num_rows());
  const double delta = 1e-4 * n;
  const int steps = std::atoi(FlagOr(flags, "steps", "200").c_str());
  BitGen gen(std::strtoull(FlagOr(flags, "seed", "1").c_str(), nullptr, 10));
  const std::string mechanism_text = FlagOr(flags, "mechanism", "ireduct");
  auto spec = MechanismSpec::Parse(mechanism_text);
  if (!spec.ok()) {
    std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
    return 1;
  }
  const std::string mechanism = spec->name();

  report->SetRunField("command", "marginals");
  report->SetRunField("mechanism", spec->ToString());
  report->SetRunField("kind", FlagOr(flags, "kind", "brazil"));
  report->SetRunField("rows", static_cast<uint64_t>(dataset->num_rows()));
  report->SetRunField("k", static_cast<uint64_t>(k));
  report->SetRunField(
      "seed", static_cast<uint64_t>(std::strtoull(
                  FlagOr(flags, "seed", "1").c_str(), nullptr, 10)));
  report->SetRunField("epsilon", epsilon);
  report->SetRunField("delta", delta);
  report->SetRunField("steps", static_cast<uint64_t>(steps));

  // --journal switches the run to crash-safe mode: write-ahead ledger
  // journal + periodic checkpoints, resumable with --resume 1.
  const std::string journal_path = FlagOr(flags, "journal", "");
  CrashSafeRun crash_safe;
  if (!journal_path.empty()) {
    const std::string checkpoint_path =
        FlagOr(flags, "checkpoint", journal_path + ".ckpt");
    const uint64_t checkpoint_every = std::strtoull(
        FlagOr(flags, "checkpoint-every", "8").c_str(), nullptr, 10);
    const std::string resume = FlagOr(flags, "resume", "0");
    auto prepared =
        SetUpCrashSafeRun(journal_path, checkpoint_path, checkpoint_every,
                          resume != "0" && !resume.empty(), epsilon);
    if (!prepared.ok()) {
      std::fprintf(stderr, "%s\n", prepared.status().ToString().c_str());
      return 1;
    }
    crash_safe = std::move(*prepared);
  }

  auto out = RunSpecMechanism(
      *spec, mw->workload(), epsilon, delta, n / 10, steps, gen,
      journal_path.empty() ? nullptr : &crash_safe.hooks);
  if (!out.ok()) {
    std::fprintf(stderr, "%s\n", out.status().ToString().c_str());
    return 1;
  }

  if (crash_safe.accountant != nullptr) {
    // Journaled runs already charged up to the last checkpoint boundary;
    // one final top-up makes the ledger equal the run's exact spend.
    if (out->is_private()) {
      const double remainder =
          out->epsilon_spent - crash_safe.accountant->spent();
      if (remainder > 0) {
        if (Status s = crash_safe.accountant->Charge(
                "marginals (" + mechanism + ") final", remainder);
            !s.ok()) {
          std::fprintf(stderr, "%s\n", s.ToString().c_str());
          return 1;
        }
      }
    }
    if (auto* recorder = obs::TraceRecorder::Get()) {
      recorder->SetOtherData("privacy_ledger",
                             crash_safe.accountant->ExportLedgerJson());
    }
    report->AttachLedger(*crash_safe.accountant);
  } else if (out->is_private() && out->epsilon_spent > 0) {
    // Mirror the release through an accountant so the run carries a
    // ledger: the privacy.epsilon_spent gauge tracks the charge, and the
    // ledger JSON rides into the trace under otherData.privacy_ledger.
    // Non-private baselines (oracle, proportional) stay unaccounted. A
    // spec that pins its own budget (e.g. "two_phase:epsilon=0.5") is
    // authorized by that spec, so the mirror's budget covers whatever the
    // mechanism actually spent — budget *enforcement* lives in
    // PrivateQuerySession, not here.
    auto accountant =
        PrivacyAccountant::Create(std::max(epsilon, out->epsilon_spent));
    if (accountant.ok()) {
      if (Status s = accountant->Charge("marginals (" + mechanism + ")",
                                        out->epsilon_spent);
          !s.ok()) {
        std::fprintf(stderr, "%s\n", s.ToString().c_str());
        return 1;
      }
      if (auto* recorder = obs::TraceRecorder::Get()) {
        recorder->SetOtherData("privacy_ledger",
                               accountant->ExportLedgerJson());
      }
      report->AttachLedger(*accountant);
    }
  }

  report->SetRunField("epsilon_spent", out->epsilon_spent);
  report->SetErrors(mw->workload(), out->answers, delta);

  const std::string dir = FlagOr(flags, "out-dir", ".");
  auto noisy = mw->ToMarginals(out->answers);
  if (!noisy.ok()) {
    std::fprintf(stderr, "%s\n", noisy.status().ToString().c_str());
    return 1;
  }
  if (Status s = WriteMarginalsCsv(*noisy, dataset->schema(), dir,
                                   "marginal");
      !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::ofstream answers(dir + "/answers.csv");
  if (Status s = WriteAnswersCsv(mw->workload(), *out, 0.95, answers);
      !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf(
      "published %zu marginals (epsilon %.5f, overall error %.4f) to %s\n",
      noisy->size(), out->epsilon_spent,
      OverallError(mw->workload(), out->answers, delta), dir.c_str());
  return 0;
}

int CmdCompare(const std::map<std::string, std::string>& flags) {
  auto dataset = MakeCensus(flags);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  const int k = std::atoi(FlagOr(flags, "k", "1").c_str());
  auto specs = AllKWaySpecs(dataset->schema(), k);
  auto marginals = ComputeMarginals(*dataset, *specs);
  auto mw = MarginalWorkload::Create(std::move(*marginals));
  if (!mw.ok()) {
    std::fprintf(stderr, "%s\n", mw.status().ToString().c_str());
    return 1;
  }
  const double epsilon =
      std::strtod(FlagOr(flags, "epsilon", "0.01").c_str(), nullptr);
  const double n = static_cast<double>(dataset->num_rows());
  const double delta = 1e-4 * n;
  const int trials = std::atoi(FlagOr(flags, "trials", "3").c_str());
  const uint64_t seed =
      std::strtoull(FlagOr(flags, "seed", "1").c_str(), nullptr, 10);

  // Semicolon-separated mechanism specs; default is the Section 6 suite.
  std::vector<std::string> spec_texts;
  {
    std::string list = FlagOr(flags, "mechanisms",
                              "oracle;ireduct;two_phase;iresamp;dwork");
    size_t start = 0;
    while (start <= list.size()) {
      const size_t semi = list.find(';', start);
      const std::string item = list.substr(
          start, semi == std::string::npos ? std::string::npos
                                           : semi - start);
      if (!item.empty()) spec_texts.push_back(item);
      if (semi == std::string::npos) break;
      start = semi + 1;
    }
  }

  std::vector<ComparisonRow> rows;
  TablePrinter table({"mechanism", "overall_error", "max_rel_error",
                      "mean_abs_error", "epsilon"});
  for (const std::string& text : spec_texts) {
    auto spec = MechanismSpec::Parse(text);
    if (!spec.ok()) {
      std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
      return 1;
    }
    const std::string name = spec->ToString();
    ComparisonRow mean_row;
    mean_row.mechanism = name;
    for (int t = 0; t < trials; ++t) {
      BitGen gen(seed + 31 * t);
      auto out = RunSpecMechanism(*spec, mw->workload(), epsilon, delta,
                                  n / 10, 200, gen);
      if (!out.ok()) {
        std::fprintf(stderr, "%s: %s\n", name.c_str(),
                     out.status().ToString().c_str());
        return 1;
      }
      const ComparisonRow row = Evaluate(name, mw->workload(), *out, delta);
      mean_row.overall_error += row.overall_error / trials;
      mean_row.max_relative_error += row.max_relative_error / trials;
      mean_row.mean_absolute_error += row.mean_absolute_error / trials;
      mean_row.epsilon_spent = row.epsilon_spent;
    }
    rows.push_back(mean_row);
    table.AddRow({mean_row.mechanism,
                  TablePrinter::Cell(mean_row.overall_error, 5),
                  TablePrinter::Cell(mean_row.max_relative_error, 5),
                  TablePrinter::Cell(mean_row.mean_absolute_error, 5),
                  TablePrinter::Cell(mean_row.epsilon_spent, 4)});
  }
  table.Print(std::cout);
  std::ofstream csv("comparison.csv");
  if (Status s = WriteComparisonCsv(rows, csv); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("\nwrote comparison.csv\n");
  return 0;
}

// ---- serve / client: the NDJSON wire protocol over a Unix socket ----

std::atomic<bool> g_serve_stop{false};

void HandleStopSignal(int) { g_serve_stop.store(true); }

// "0,1;2" → {{0,1},{2}} (semicolon-separated specs, comma-separated
// attribute indices).
Result<std::vector<MarginalSpec>> ParseSpecsArg(const std::string& text) {
  std::vector<MarginalSpec> specs;
  std::string token;
  MarginalSpec current;
  auto flush_attr = [&]() -> Status {
    if (token.empty()) {
      return Status::InvalidArgument("--specs has an empty attribute index");
    }
    char* end = nullptr;
    const unsigned long v = std::strtoul(token.c_str(), &end, 10);
    if (end == token.c_str() || *end != '\0') {
      return Status::InvalidArgument("--specs index '" + token +
                                     "' is not a number");
    }
    current.attributes.push_back(static_cast<uint32_t>(v));
    token.clear();
    return Status::OK();
  };
  for (const char c : text) {
    if (c == ',') {
      IREDUCT_RETURN_NOT_OK(flush_attr());
    } else if (c == ';') {
      IREDUCT_RETURN_NOT_OK(flush_attr());
      specs.push_back(std::move(current));
      current = MarginalSpec{};
    } else {
      token.push_back(c);
    }
  }
  IREDUCT_RETURN_NOT_OK(flush_attr());
  specs.push_back(std::move(current));
  return specs;
}

// "0=3,1=1" → predicates {attr 0 == 3, attr 1 == 1}. Empty counts all rows.
Result<ConjunctiveQuery> ParsePredicatesArg(const std::string& text) {
  ConjunctiveQuery query;
  if (text.empty()) return query;
  size_t start = 0;
  while (start <= text.size()) {
    size_t comma = text.find(',', start);
    if (comma == std::string::npos) comma = text.size();
    const std::string pair = text.substr(start, comma - start);
    const size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("--predicates entry '" + pair +
                                     "' is not attr=value");
    }
    query.predicates.push_back(
        {static_cast<uint32_t>(std::strtoul(pair.substr(0, eq).c_str(),
                                            nullptr, 10)),
         static_cast<uint16_t>(std::strtoul(pair.substr(eq + 1).c_str(),
                                            nullptr, 10))});
    start = comma + 1;
  }
  return query;
}

int CmdServe(const std::map<std::string, std::string>& flags) {
  const std::string socket = FlagOr(flags, "socket", "");
  if (socket.empty()) {
    std::fprintf(stderr, "serve requires --socket PATH\n");
    return 2;
  }
  QueryServerConfig config;
  config.workers = std::atoi(FlagOr(flags, "workers", "1").c_str());
  config.max_queue =
      std::strtoull(FlagOr(flags, "max-queue", "256").c_str(), nullptr, 10);
  config.max_inflight_per_tenant =
      std::atoi(FlagOr(flags, "tenant-cap", "8").c_str());
  config.max_batch =
      std::strtoull(FlagOr(flags, "max-batch", "16").c_str(), nullptr, 10);
  config.batching = FlagOr(flags, "no-batch", "0") == "0";
  config.journal_dir = FlagOr(flags, "journal-dir", "");
  config.retry_after_ms =
      std::atoi(FlagOr(flags, "retry-after-ms", "50").c_str());
  auto server = QueryServer::Create(config);
  if (!server.ok()) {
    std::fprintf(stderr, "%s\n", server.status().ToString().c_str());
    return 1;
  }
  const std::string dataset_name = FlagOr(flags, "dataset-name", "default");
  const std::string data = FlagOr(flags, "data", "");
  Status load = Status::OK();
  if (!data.empty()) {
    load = (*server)->AddDatasetFile(dataset_name, data);
  } else {
    auto dataset = MakeProfileDataset(flags);
    load = dataset.ok()
               ? (*server)->AddDataset(dataset_name, std::move(*dataset))
               : dataset.status();
  }
  if (!load.ok()) {
    std::fprintf(stderr, "%s\n", load.ToString().c_str());
    return 1;
  }
  auto wire = WireServer::Start(server->get(), socket);
  if (!wire.ok()) {
    std::fprintf(stderr, "%s\n", wire.status().ToString().c_str());
    return 1;
  }
  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
  // The ready file signals scripted callers (tools/check.sh, CI smoke
  // tests) that the socket is accepting; written after Start so a reader
  // never races the bind.
  if (const std::string ready = FlagOr(flags, "ready-file", "");
      !ready.empty()) {
    std::ofstream file(ready, std::ios::trunc);
    file << socket << '\n';
    if (!file.flush()) {
      std::fprintf(stderr, "failed writing ready file %s\n", ready.c_str());
      return 1;
    }
  }
  std::printf("serving dataset '%s' on %s (workers=%d queue=%zu batch=%s)\n",
              dataset_name.c_str(), socket.c_str(), config.workers,
              config.max_queue, config.batching ? "on" : "off");
  std::fflush(stdout);
  while (!g_serve_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  (*wire)->Stop();
  std::printf("%s\n", ServerStatsToJson((*server)->Stats()).c_str());
  return 0;
}

int CmdClient(const std::map<std::string, std::string>& flags) {
  const std::string socket = FlagOr(flags, "socket", "");
  if (socket.empty()) {
    std::fprintf(stderr, "client requires --socket PATH\n");
    return 2;
  }
  WireRequest request;
  request.id = std::strtoull(FlagOr(flags, "id", "1").c_str(), nullptr, 10);
  request.op = FlagOr(flags, "op", "ping");
  request.tenant = FlagOr(flags, "tenant", "");
  request.dataset = FlagOr(flags, "dataset", "default");
  request.budget = std::strtod(FlagOr(flags, "budget", "1").c_str(), nullptr);
  request.seed =
      std::strtoull(FlagOr(flags, "seed", "1").c_str(), nullptr, 10);
  request.epsilon =
      std::strtod(FlagOr(flags, "epsilon", "0.1").c_str(), nullptr);
  request.delta = std::strtod(FlagOr(flags, "delta", "0.05").c_str(), nullptr);
  request.lambda_steps = std::atoi(FlagOr(flags, "steps", "200").c_str());
  request.mechanism = FlagOr(flags, "mechanism", "ireduct");
  if (const std::string specs = FlagOr(flags, "specs", ""); !specs.empty()) {
    auto parsed = ParseSpecsArg(specs);
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
      return 2;
    }
    request.specs = std::move(*parsed);
  }
  if (request.op == "count") {
    auto parsed = ParsePredicatesArg(FlagOr(flags, "predicates", ""));
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
      return 2;
    }
    request.query = std::move(*parsed);
  }
  auto client = WireClient::Connect(socket);
  if (!client.ok()) {
    std::fprintf(stderr, "%s\n", client.status().ToString().c_str());
    return 1;
  }
  auto response = client->Call(request);
  if (!response.ok()) {
    std::fprintf(stderr, "%s\n", response.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", response->ToJson().c_str());
  return response->ok ? 0 : 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage: ireduct_tool generate|csv2col|col2csv|col-info|"
               "marginals|compare|serve|client|list-mechanisms "
               "[--flag value ...]\n"
               "[--log-level L] "
               "[--trace-out F] [--metrics-out F] [--events-out F] "
               "[--prom-out F] [--report-out F] work with every command."
               "\n(see the header comment of tools/ireduct_tool.cc for "
               "details)\n");
  return 2;
}

// Pops `name` from `flags`, returning its value or "".
std::string TakeFlag(std::map<std::string, std::string>* flags,
                     const std::string& name) {
  const auto it = flags->find(name);
  if (it == flags->end()) return "";
  std::string value = it->second;
  flags->erase(it);
  return value;
}

}  // namespace

int main(int argc, char** argv) {
  // --list-mechanisms is valueless and position-independent; honor it
  // before flag parsing so `ireduct_tool --list-mechanisms` just works.
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--list-mechanisms") ||
        !std::strcmp(argv[i], "list-mechanisms")) {
      return CmdListMechanisms();
    }
  }
  if (argc < 2) return Usage();
  std::map<std::string, std::string> flags;
  if (!ParseFlags(argc, argv, 2, &flags)) return 2;
  const std::string command = argv[1];

  if (const std::string level = TakeFlag(&flags, "log-level");
      !level.empty()) {
    auto parsed = obs::ParseLogLevel(level);
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
      return 2;
    }
    obs::SetLogLevel(*parsed);
  }
  const std::string trace_out = TakeFlag(&flags, "trace-out");
  const std::string metrics_out = TakeFlag(&flags, "metrics-out");
  const std::string events_out = TakeFlag(&flags, "events-out");
  const std::string prom_out = TakeFlag(&flags, "prom-out");
  const std::string report_out = TakeFlag(&flags, "report-out");
  // Static so instrumentation can reach it for the whole run; installed
  // only when a trace was asked for, so tracing stays off otherwise.
  static obs::TraceRecorder recorder;
  if (!trace_out.empty()) {
#if !IREDUCT_ENABLE_TRACING
    std::fprintf(stderr,
                 "note: built with IREDUCT_ENABLE_TRACING=OFF; the trace "
                 "will be empty\n");
#endif
    obs::TraceRecorder::Install(&recorder);
  }
  // Same lifetime story as the trace recorder: events flow only while a
  // log is installed, and only the edge that asked for an artifact pays.
  static obs::EventLog event_log;
  if (!events_out.empty() || !report_out.empty()) {
#if !IREDUCT_ENABLE_TRACING
    std::fprintf(stderr,
                 "note: built with IREDUCT_ENABLE_TRACING=OFF; the event "
                 "stream will be empty\n");
#endif
    obs::EventLog::Install(&event_log);
  }
  // Pre-register the full metric schema so artifacts list every metric the
  // build knows about, not just the ones this particular run touched.
  obs::RegisterStandardMetrics();

  RunReport report(command);
  int rc;
  if (command == "generate") {
    rc = CmdGenerate(flags);
  } else if (command == "csv2col") {
    rc = CmdCsv2Col(flags);
  } else if (command == "col2csv") {
    rc = CmdCol2Csv(flags);
  } else if (command == "col-info") {
    rc = CmdColInfo(flags);
  } else if (command == "marginals") {
    rc = CmdMarginals(flags, &report);
  } else if (command == "compare") {
    rc = CmdCompare(flags);
  } else if (command == "serve") {
    rc = CmdServe(flags);
  } else if (command == "client") {
    rc = CmdClient(flags);
  } else {
    return Usage();
  }

  // Emit observability artifacts even for failed runs — a trace of a
  // failure is exactly when you want one.
  auto write_json = [](const std::string& path, const std::string& body,
                       const char* what) {
    std::ofstream file(path, std::ios::binary | std::ios::trunc);
    file << body << '\n';
    if (!file.flush()) {
      std::fprintf(stderr, "failed writing %s to %s\n", what, path.c_str());
      return false;
    }
    return true;
  };
  if (!trace_out.empty()) {
    if (!write_json(trace_out, recorder.ToJson(), "trace")) return 1;
    std::printf("wrote trace (%zu events) to %s\n", recorder.event_count(),
                trace_out.c_str());
  }
  if (!metrics_out.empty()) {
    if (!write_json(metrics_out,
                    obs::MetricsRegistry::Global().SnapshotJson(),
                    "metrics")) {
      return 1;
    }
    std::printf("wrote metrics snapshot to %s\n", metrics_out.c_str());
  }
  // The report snapshots the event stream *before* --events-out drains it,
  // so a failed (or fault-injected) drain cannot corrupt the report.
  if (!report_out.empty()) {
    report.AttachMetrics();
    if (obs::EventLog* events = obs::EventLog::Get()) {
      report.AttachEvents(*events);
    }
    if (Status s = report.WriteFile(report_out); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("wrote run report to %s\n", report_out.c_str());
  }
  if (!events_out.empty()) {
    const size_t buffered = event_log.size();
    if (Status s = event_log.WriteFile(events_out); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
#if !IREDUCT_ENABLE_TRACING
    // The stub drains nothing; still leave the (empty) artifact behind so
    // downstream tooling finds the file it asked for.
    std::ofstream(events_out, std::ios::trunc);
#endif
    std::printf("wrote %zu events to %s\n", buffered, events_out.c_str());
  }
  if (!prom_out.empty()) {
    if (Status s = obs::WritePrometheusFile(prom_out); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("wrote prometheus exposition to %s\n", prom_out.c_str());
  }
  return rc;
}
