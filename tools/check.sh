#!/bin/sh
# Build-and-test driver. Usage:
#
#   tools/check.sh            # Release build + full test suite
#   tools/check.sh san        # ASan+UBSan build + full test suite
#   tools/check.sh no-tracing # IREDUCT_ENABLE_TRACING=OFF build + tests
#
# Each mode maps to the CMakePresets.json preset of the same name, so the
# builds land in separate directories and never fight over a cache.
set -eu

cd "$(dirname "$0")/.."

mode="${1:-default}"
case "$mode" in
  default|san|no-tracing) ;;
  *)
    echo "usage: tools/check.sh [san|no-tracing]" >&2
    exit 2
    ;;
esac
preset="$mode"
[ "$mode" = san ] && preset=asan-ubsan

cmake --preset "$preset"
cmake --build --preset "$preset" -j "$(nproc)"
ctest --preset "$preset" -j "$(nproc)"
