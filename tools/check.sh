#!/bin/sh
# Build-and-test driver. Usage:
#
#   tools/check.sh            # Release build + full test suite
#   tools/check.sh san        # ASan+UBSan build + full test suite
#   tools/check.sh no-tracing # IREDUCT_ENABLE_TRACING=OFF build + tests
#   tools/check.sh perf       # Release perf smoke: iReduct engine scaling
#                             # bench at small m, asserting naive/incremental
#                             # parity and that the incremental fast path
#                             # actually engaged (see docs/PERFORMANCE.md)
#
# Each mode maps to the CMakePresets.json preset of the same name, so the
# builds land in separate directories and never fight over a cache. The
# san mode also covers the thread-pool and batched-iReduct tests under
# ASan/UBSan, which is the race check for the parallel NoiseDown path.
set -eu

cd "$(dirname "$0")/.."

mode="${1:-default}"
case "$mode" in
  default|san|no-tracing|perf) ;;
  *)
    echo "usage: tools/check.sh [san|no-tracing|perf]" >&2
    exit 2
    ;;
esac
preset="$mode"
[ "$mode" = san ] && preset=asan-ubsan
[ "$mode" = perf ] && preset=default

cmake --preset "$preset"

if [ "$mode" = perf ]; then
  cmake --build --preset "$preset" -j "$(nproc)" --target scaling_study
  # Small-m sweep keeps the smoke under a few seconds; the bench itself
  # exits nonzero on engine-parity or fast-path failures.
  (cd build/bench &&
   SCALING_IREDUCT_ONLY=1 SCALING_M=100,1000 NAIVE_MAX_M=1000 \
     ./scaling_study)
  exit 0
fi

cmake --build --preset "$preset" -j "$(nproc)"
ctest --preset "$preset" -j "$(nproc)"
