#!/bin/sh
# Build-and-test driver. Usage:
#
#   tools/check.sh            # Release build + full test suite
#   tools/check.sh san        # ASan+UBSan build + full test suite
#   tools/check.sh no-tracing # IREDUCT_ENABLE_TRACING=OFF build + tests
#   tools/check.sh perf       # Release perf smoke: iReduct engine scaling
#                             # bench at small m, asserting naive/incremental
#                             # parity and that the incremental fast path
#                             # actually engaged (see docs/PERFORMANCE.md),
#                             # plus the SIMD kernel micro benches — on AVX2
#                             # hardware the dispatched batch-Laplace kernel
#                             # must beat the pinned scalar reference, and
#                             # the counting kernel the per-marginal
#                             # reference loop, by >= 2x (KERNEL_MIN_SPEEDUP)
#   tools/check.sh registry   # Mechanism-registry smoke: builds ireduct_tool
#                             # under the default and no-tracing presets,
#                             # asserts --list-mechanisms enumerates the
#                             # builtin set, and runs two spec-driven
#                             # marginal releases end-to-end
#   tools/check.sh queries    # Linear-query-algebra smoke: runs the
#                             # workload/strategy test binaries, the
#                             # strategy_comparison bench at reduced
#                             # scale (asserting BENCH_STRATEGY.json
#                             # carries every matrix strategy), and a
#                             # matrix-mechanism CLI release
#   tools/check.sh data       # Columnar dataset-engine smoke: round-trip
#                             # and streaming-parity tests under the
#                             # default preset and again under ASan+UBSan,
#                             # the columnar_io bench at reduced scale with
#                             # its load-speedup / streaming-ratio / parity
#                             # gates live (BENCH_COLUMNAR.json asserted),
#                             # and a CLI csv2col/col2csv round trip that
#                             # must reproduce the CSV byte for byte
#   tools/check.sh threads    # ThreadSanitizer build of the concurrent
#                             # evaluation paths: thread pool, fused
#                             # marginal evaluator, marginal cache,
#                             # metrics registry, the parallel trial
#                             # runner, and the multi-tenant query server
#                             # (admission pipeline + wire protocol)
#   tools/check.sh service    # Query-service smoke: the admission /
#                             # batching / crash-recovery suites, the
#                             # service_throughput bench at reduced scale
#                             # with its gates live (batched >= 1.5x
#                             # unbatched qps at 8 tenants, byte parity
#                             # against the serial golden; export
#                             # SERVICE_MIN_SPEEDUP=0 to disable the
#                             # speedup gate), and an end-to-end
#                             # serve/client NDJSON round trip over a
#                             # real Unix socket
#   tools/check.sh obs        # Telemetry smoke: runs the event-log /
#                             # exposition / run-report tests, drives
#                             # ireduct_tool with --report-out/--events-out/
#                             # --prom-out and validates the artifacts, and
#                             # proves the report survives a fault-injected
#                             # event drain and a no-tracing build
#   tools/check.sh format     # clang-format style gate over src/tests/
#                             # tools/bench/examples (skips locally when
#                             # clang-format is missing; CI enforces it)
#   tools/check.sh ci         # local reproduction of the CI pipeline:
#                             # format + default + registry + evaluator
#                             # parity smoke with the fig08/09 speedup
#                             # gate at its default (>= 3x)
#
# Each mode maps to the CMakePresets.json preset of the same name, so the
# builds land in separate directories and never fight over a cache. The
# san mode also covers the thread-pool and batched-iReduct tests under
# ASan/UBSan, which is the race check for the parallel NoiseDown path.
set -eu

cd "$(dirname "$0")/.."

mode="${1:-default}"
case "$mode" in
  default|san|no-tracing|perf|registry|queries|data|threads|service|obs|format|ci) ;;
  *)
    echo "usage: tools/check.sh [san|no-tracing|perf|registry|queries|data|" \
         "threads|service|obs|format|ci]" >&2
    exit 2
    ;;
esac
preset="$mode"
[ "$mode" = san ] && preset=asan-ubsan
[ "$mode" = perf ] && preset=default
[ "$mode" = threads ] && preset=tsan

if [ "$mode" = format ]; then
  # Style gate over every first-party C++ file. clang-format is optional
  # locally (skip, CI enforces it) but the CI job installs it, so a
  # missing binary never turns the gate green up there.
  if ! command -v clang-format >/dev/null 2>&1; then
    if [ -n "${CI:-}" ]; then
      echo "format: clang-format missing in CI" >&2
      exit 1
    fi
    echo "format: clang-format not installed; skipping (CI enforces it)"
    exit 0
  fi
  find src tests tools bench examples \
    \( -name '*.cc' -o -name '*.h' \) -print0 |
    xargs -0 clang-format --dry-run --Werror
  echo "format: OK ($(clang-format --version))"
  exit 0
fi

if [ "$mode" = ci ]; then
  # The full local reproduction of the CI pipeline, minus the sanitizer
  # builds (run those with `san` / `threads` when touching memory or
  # concurrency): style gate, Release build + tests, registry smoke, and
  # the evaluator parity smoke. The fig08/09 speedup gate runs at its
  # default (>= 3x): the measured ratio is architectural (five setups
  # amortized through one cached evaluation), so it holds even on slow
  # shared machines.
  "$0" format
  "$0" default
  "$0" registry
  cmake --build --preset default -j "$(nproc)" --target eval_scaling
  (cd build/bench &&
   EVAL_ROWS=20000 EVAL_THREADS=1,2 CENSUS_ROWS=200000 \
     ./eval_scaling)
  echo "ci: all gates passed"
  exit 0
fi

if [ "$mode" = data ]; then
  # Columnar engine smoke. The bench runs with every gate live (load
  # speedup >= 5x, streaming within 1.25x, memcmp parity) at reduced
  # scale; the CLI round trip is the end-to-end byte-equality check; the
  # ASan+UBSan pass re-runs the round-trip and streaming suites over the
  # mmap/bit-twiddling code where a latent overflow would hide.
  out_dir="$(mktemp -d)"
  trap 'rm -rf "$out_dir"' EXIT
  data_tests="columnar_test streaming_evaluator_test dataset_test \
              csv_test census_generator_test"
  cmake --preset default
  # shellcheck disable=SC2086  # word splitting is the point
  cmake --build --preset default -j "$(nproc)" \
    --target ireduct_tool columnar_io $data_tests
  for t in $data_tests; do
    echo "== data: $t =="
    ./build/tests/"$t"
  done
  (cd build/bench &&
   CENSUS_ROWS=60000 TRIALS=2 COLUMNAR_PROFILE_ROWS=20000 \
     COLUMNAR_THREADS=1,2 ./columnar_io)
  for key in '"load_ok":true' '"stream_ok":true' '"parity_ok":true'; do
    if ! grep -q "$key" build/bench/BENCH_COLUMNAR.json; then
      echo "data smoke: $key missing from BENCH_COLUMNAR.json" >&2
      exit 1
    fi
  done
  tool=./build/tools/ireduct_tool
  "$tool" generate --profile sparse-events --rows 5000 --seed 3 \
    --out "$out_dir/a.csv" > /dev/null
  "$tool" csv2col --profile sparse-events --in "$out_dir/a.csv" \
    --out "$out_dir/a.col" > /dev/null
  "$tool" col2csv --in "$out_dir/a.col" --out "$out_dir/b.csv" > /dev/null
  cmp "$out_dir/a.csv" "$out_dir/b.csv"
  "$tool" col-info --in "$out_dir/a.col" | grep -q fingerprint
  echo "data smoke [default]: tests + gates + CLI round trip OK"
  cmake --preset asan-ubsan
  cmake --build --preset asan-ubsan -j "$(nproc)" \
    --target columnar_test streaming_evaluator_test
  for t in columnar_test streaming_evaluator_test; do
    echo "== data (asan-ubsan): $t =="
    ./build-asan-ubsan/tests/"$t"
  done
  echo "data smoke [asan-ubsan]: round-trip + streaming suites clean"
  exit 0
fi

if [ "$mode" = threads ]; then
  # Only the concurrency-bearing tests; a full TSan suite is far slower
  # and the sequential code has no threads for TSan to observe. Test
  # binaries run directly so unbuilt targets can't confuse ctest
  # discovery. IREDUCT_THREADS forces the pooled paths on.
  cmake --preset tsan
  tsan_tests="thread_pool_test marginal_evaluator_test marginal_cache_test \
              experiment_test ireduct_batch_test obs_metrics_test \
              event_log_test query_server_test wire_test"
  # shellcheck disable=SC2086  # word splitting is the point
  cmake --build --preset tsan -j "$(nproc)" --target $tsan_tests
  for t in $tsan_tests; do
    echo "== TSan: $t =="
    IREDUCT_THREADS=4 ./build-tsan/tests/"$t"
  done
  exit 0
fi

if [ "$mode" = service ]; then
  # Query-service smoke. The bench runs with the batched-vs-unbatched
  # speedup gate live (>= 1.5x at 8 tenants): the ratio is architectural —
  # one fused true-table pass plus MarginalCache hits replace per-request
  # per-spec dataset scans — so it holds on one-core shared runners.
  # SERVICE_MIN_SPEEDUP=0 disables the gate for pathological machines;
  # the byte-parity check against the serial golden always runs. The
  # serve/client leg drives the real binary over a real Unix socket.
  out_dir="$(mktemp -d)"
  serve_pid=""
  trap 'rm -rf "$out_dir"; [ -n "$serve_pid" ] && kill "$serve_pid" 2>/dev/null' EXIT
  service_tests="private_session_test query_server_test wire_test \
                 service_crash_test"
  cmake --preset default
  # shellcheck disable=SC2086  # word splitting is the point
  cmake --build --preset default -j "$(nproc)" \
    --target ireduct_tool service_throughput $service_tests
  for t in $service_tests; do
    echo "== service: $t =="
    ./build/tests/"$t"
  done
  (cd build/bench &&
   CENSUS_ROWS=120000 SERVICE_WAVES=3 ./service_throughput)
  for key in '"speedup_ok":true' '"parity_ok":true'; do
    if ! grep -q "$key" build/bench/BENCH_SERVICE.json; then
      echo "service smoke: $key missing from BENCH_SERVICE.json" >&2
      exit 1
    fi
  done
  tool=./build/tools/ireduct_tool
  sock="$out_dir/service.sock"
  "$tool" serve --socket "$sock" --ready-file "$out_dir/ready" \
    --rows 20000 --seed 7 --journal-dir "$out_dir/journals" &
  serve_pid=$!
  i=0
  while [ ! -f "$out_dir/ready" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
      echo "service smoke: server never wrote its ready file" >&2
      exit 1
    fi
    sleep 0.1
  done
  "$tool" client --socket "$sock" --op ping | grep -q '"pong":true'
  "$tool" client --socket "$sock" --op open --tenant smoke \
    --budget 1 --seed 3 > /dev/null
  "$tool" client --socket "$sock" --op marginals --tenant smoke \
    --specs "0;1" --mechanism ireduct --epsilon 0.2 --delta 5 --steps 40 |
    grep -q '"epsilon_spent"'
  "$tool" client --socket "$sock" --op count --tenant smoke \
    --predicates "1=1" --epsilon 0.1 | grep -q '"value"'
  "$tool" client --socket "$sock" --op budget --tenant smoke |
    grep -q '"remaining"'
  # The journal the server kept must already hold both grants.
  grep -c '"type":"grant"' "$out_dir/journals/smoke.journal" | grep -qx 2
  kill "$serve_pid"
  wait "$serve_pid"
  serve_pid=""
  echo "service smoke: tests + gated bench + socket round trip OK"
  exit 0
fi

if [ "$mode" = obs ]; then
  # Telemetry smoke: unit-test the pipeline, then prove the end-to-end
  # artifacts (--report-out / --events-out / --prom-out) carry what the
  # docs promise — and that the run report still works with tracing
  # compiled out.
  out_dir="$(mktemp -d)"
  trap 'rm -rf "$out_dir"' EXIT
  obs_tests="obs_metrics_test event_log_test export_prometheus_test \
             run_report_test"
  cmake --preset default
  # shellcheck disable=SC2086  # word splitting is the point
  cmake --build --preset default -j "$(nproc)" \
    --target ireduct_tool $obs_tests
  for t in $obs_tests; do
    echo "== obs: $t =="
    ./build/tests/"$t"
  done
  ./build/tools/ireduct_tool marginals --rows 2000 --seed 7 \
    --epsilon 0.5 --mechanism ireduct --out-dir "$out_dir" \
    --report-out "$out_dir/report.json" \
    --events-out "$out_dir/events.jsonl" \
    --prom-out "$out_dir/metrics.prom" > /dev/null
  grep -q '"report_version"' "$out_dir/report.json"
  grep -q '"overall_error"' "$out_dir/report.json"
  grep -q '^# TYPE ' "$out_dir/metrics.prom"
  grep -q '"type":"ireduct.round"' "$out_dir/events.jsonl"
  echo "obs smoke [default]: report + events + exposition OK"
  cmake --preset no-tracing
  cmake --build --preset no-tracing -j "$(nproc)" --target ireduct_tool
  ./build-no-tracing/tools/ireduct_tool marginals --rows 2000 --seed 7 \
    --epsilon 0.5 --mechanism ireduct --out-dir "$out_dir" \
    --report-out "$out_dir/report-nt.json" > /dev/null
  grep -q '"report_version"' "$out_dir/report-nt.json"
  grep -q '"overall_error"' "$out_dir/report-nt.json"
  echo "obs smoke [no-tracing]: run report still written"
  exit 0
fi

if [ "$mode" = registry ]; then
  # Spec dispatch must behave identically with tracing compiled out, so the
  # smoke runs under both presets.
  out_dir="$(mktemp -d)"
  trap 'rm -rf "$out_dir"' EXIT
  for p in default no-tracing; do
    cmake --preset "$p"
    cmake --build --preset "$p" -j "$(nproc)" --target ireduct_tool
    build_dir=build
    [ "$p" = no-tracing ] && build_dir=build-no-tracing
    tool="$build_dir/tools/ireduct_tool"
    count="$("$tool" --list-mechanisms |
             sed -n 's/^registered mechanisms (\([0-9]*\)):$/\1/p')"
    if [ -z "$count" ] || [ "$count" -lt 6 ]; then
      echo "registry smoke [$p]: expected >=6 registered mechanisms," \
           "got '${count:-none}'" >&2
      exit 1
    fi
    mkdir -p "$out_dir/$p"
    for spec in "two_phase:epsilon=0.5" \
                "ireduct:lambda_steps=16,engine=incremental"; do
      "$tool" marginals --mechanism "$spec" --rows 2000 --seed 7 \
        --epsilon 0.5 --out-dir "$out_dir/$p" > /dev/null
    done
    echo "registry smoke [$p]: $count mechanisms, spec-driven runs OK"
  done
  exit 0
fi

if [ "$mode" = queries ]; then
  # Linear-query-algebra smoke: the strategy/workload unit + property +
  # golden-parity tests, the strategy_comparison bench at reduced scale
  # (every matrix strategy must land in BENCH_STRATEGY.json), and one
  # matrix-mechanism release through the real CLI.
  out_dir="$(mktemp -d)"
  trap 'rm -rf "$out_dir"' EXIT
  query_tests="linear_workload_test strategy_test range_workload_test \
               strategy_golden_test mechanism_parity_test \
               marginal_workload_test hierarchical_test wavelet_test"
  cmake --preset default
  # shellcheck disable=SC2086  # word splitting is the point
  cmake --build --preset default -j "$(nproc)" \
    --target ireduct_tool strategy_comparison $query_tests
  for t in $query_tests; do
    echo "== queries: $t =="
    ./build/tests/"$t"
  done
  (cd build/bench &&
   CENSUS_ROWS=60000 TRIALS=2 IREDUCT_STEPS=60 ./strategy_comparison)
  for m in "matrix:identity" "matrix:tree" "matrix:wavelet" \
           "matrix_greedy:tree" "ireduct"; do
    if ! grep -q "\"name\":\"$m\"" build/bench/BENCH_STRATEGY.json; then
      echo "queries smoke: $m missing from BENCH_STRATEGY.json" >&2
      exit 1
    fi
  done
  ./build/tools/ireduct_tool marginals \
    --mechanism "matrix:strategy=tree,tune=greedy" --rows 2000 --seed 7 \
    --epsilon 0.5 --out-dir "$out_dir" > /dev/null
  echo "queries smoke: tests + BENCH_STRATEGY.json + CLI release OK"
  exit 0
fi

cmake --preset "$preset"

if [ "$mode" = perf ]; then
  cmake --build --preset "$preset" -j "$(nproc)" \
    --target scaling_study micro_primitives
  # Small-m sweep keeps the smoke under a few seconds; the bench itself
  # exits nonzero on engine-parity or fast-path failures.
  (cd build/bench &&
   SCALING_IREDUCT_ONLY=1 SCALING_M=100,1000 NAIVE_MAX_M=1000 \
     ./scaling_study)
  # SIMD kernel micro benches: the dispatched batch-Laplace kernel vs its
  # pinned scalar reference, and the dispatched counting kernel vs the
  # per-marginal reference loop (Marginal::Compute). The >= 2x gate
  # (KERNEL_MIN_SPEEDUP) only applies on AVX2 hardware with dispatch
  # unrestricted — elsewhere the kernels fall back toward the references
  # and the run is informational.
  (cd build/bench &&
   ./micro_primitives \
     --benchmark_filter='BM_BatchLaplace|BM_CountPlan' \
     --benchmark_out=BENCH_KERNELS.json --benchmark_out_format=json)
  if grep -q avx2 /proc/cpuinfo 2>/dev/null &&
     [ -z "${IREDUCT_SIMD:-}" ]; then
    awk -v min="${KERNEL_MIN_SPEEDUP:-2}" '
      BEGIN {
        pair["BM_BatchLaplaceKernel/65536"] = "BM_BatchLaplaceScalarRef/65536"
        pair["BM_CountPlanKernel"] = "BM_CountPlanReferenceLoop"
      }
      /"name":/ { gsub(/[",]/, ""); name = $2 }
      /"real_time":/ && !(name in t) { gsub(/,/, ""); t[name] = $2 + 0 }
      END {
        ok = 1
        for (kern in pair) {
          ref = pair[kern]
          if (!(kern in t) || !(ref in t) || t[kern] <= 0) {
            printf "KERNEL GATE: missing bench %s or %s\n", kern, ref
            ok = 0
            continue
          }
          s = t[ref] / t[kern]
          printf "kernel speedup %s: %.2fx (ref %.0f ns, simd %.0f ns)\n",
                 kern, s, t[ref], t[kern]
          if (s < min) {
            printf "KERNEL GATE FAILURE: %s %.2fx < %.1fx\n", kern, s, min
            ok = 0
          }
        }
        exit ok ? 0 : 1
      }' build/bench/BENCH_KERNELS.json
  else
    echo "perf: no AVX2 (or IREDUCT_SIMD set) — kernel gate skipped"
  fi
  exit 0
fi

cmake --build --preset "$preset" -j "$(nproc)"
ctest --preset "$preset" -j "$(nproc)"
