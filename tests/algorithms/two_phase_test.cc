#include "algorithms/two_phase.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "algorithms/dwork.h"
#include "eval/metrics.h"
#include "eval/stats.h"

namespace ireduct {
namespace {

Workload SkewedWorkload() {
  auto r = Workload::Create(
      {2, 3, 4, 5000, 6000, 7000},
      {QueryGroup{"tiny", 0, 3, 2.0}, QueryGroup{"large", 3, 6, 2.0}});
  EXPECT_TRUE(r.ok());
  return std::move(r).value();
}

TEST(TwoPhaseTest, ValidatesEpsilons) {
  BitGen gen(1);
  const Workload w = SkewedWorkload();
  EXPECT_FALSE(RunTwoPhase(w, TwoPhaseParams{0, 0.1, 1.0}, gen).ok());
  EXPECT_FALSE(RunTwoPhase(w, TwoPhaseParams{0.1, -0.1, 1.0}, gen).ok());
}

TEST(TwoPhaseTest, EpsilonSpentIsSumOfPhases) {
  BitGen gen(2);
  const Workload w = SkewedWorkload();
  auto out = RunTwoPhase(w, TwoPhaseParams{0.02, 0.18, 1.0}, gen);
  ASSERT_TRUE(out.ok());
  EXPECT_DOUBLE_EQ(out->epsilon_spent, 0.2);
  // Phase-2 scales consume exactly ε2.
  EXPECT_NEAR(w.GeneralizedSensitivity(out->group_scales), 0.18, 1e-12);
}

TEST(TwoPhaseTest, SecondPhaseScalesReflectFirstPhaseMagnitudes) {
  BitGen gen(3);
  const Workload w = SkewedWorkload();
  auto out = RunTwoPhase(w, TwoPhaseParams{0.05, 0.15, 1.0}, gen);
  ASSERT_TRUE(out.ok());
  // With ε1 large enough to see the 3-vs-6000 gap, the large group must be
  // assigned the larger scale.
  EXPECT_GT(out->group_scales[1], out->group_scales[0]);
}

TEST(TwoPhaseTest, CombinationIsMinimumVariance) {
  // Verify line 8's weighted average empirically: the combined estimate
  // should have variance 2·λ1²λ2²/(λ1²+λ2²), which is below both phases'.
  auto w = Workload::Create({100}, {QueryGroup{"q", 0, 1, 1.0}});
  ASSERT_TRUE(w.ok());
  BitGen gen(4);
  std::vector<double> combined;
  const TwoPhaseParams params{0.5, 0.5, 1.0};
  for (int t = 0; t < 30'000; ++t) {
    auto out = RunTwoPhase(*w, params, gen);
    ASSERT_TRUE(out.ok());
    combined.push_back(out->answers[0]);
  }
  const SampleSummary s = Summarize(combined);
  // One query, one group: λ1 = 1/ε1 = 2, and Rescale gives λ2 = 1/ε2 = 2.
  const double l1 = 2, l2 = 2;
  const double expected_var = 2 * l1 * l1 * l2 * l2 / (l1 * l1 + l2 * l2);
  EXPECT_NEAR(s.mean, 100.0, 0.05);
  EXPECT_NEAR(s.variance, expected_var, 0.2);
  EXPECT_LT(s.variance, 2 * l1 * l1);  // better than either phase alone
}

TEST(TwoPhaseTest, BeatsDworkOnSkewedCounts) {
  const Workload w = SkewedWorkload();
  const double eps = 0.2, delta = 1.0;
  double two_phase_err = 0, dwork_err = 0;
  BitGen gen(5);
  const int trials = 400;
  for (int t = 0; t < trials; ++t) {
    auto tp = RunTwoPhase(w, TwoPhaseParams{0.05 * eps, 0.95 * eps, delta},
                          gen);
    auto d = RunDwork(w, DworkParams{eps}, gen);
    ASSERT_TRUE(tp.ok());
    ASSERT_TRUE(d.ok());
    two_phase_err += OverallError(w, tp->answers, delta);
    dwork_err += OverallError(w, d->answers, delta);
  }
  EXPECT_LT(two_phase_err, dwork_err);
}

TEST(TwoPhaseTest, DeterministicGivenSeed) {
  const Workload w = SkewedWorkload();
  BitGen g1(7), g2(7);
  auto a = RunTwoPhase(w, TwoPhaseParams{0.05, 0.15, 1.0}, g1);
  auto b = RunTwoPhase(w, TwoPhaseParams{0.05, 0.15, 1.0}, g2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->answers, b->answers);
}

}  // namespace
}  // namespace ireduct
