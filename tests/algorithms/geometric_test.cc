#include "algorithms/geometric.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "eval/stats.h"

namespace ireduct {
namespace {

TEST(GeometricTest, TwoSidedGeometricValidatesAlpha) {
  BitGen gen(1);
  EXPECT_FALSE(TwoSidedGeometric(0.0, gen).ok());
  EXPECT_FALSE(TwoSidedGeometric(1.0, gen).ok());
  EXPECT_FALSE(TwoSidedGeometric(-0.5, gen).ok());
  EXPECT_TRUE(TwoSidedGeometric(0.5, gen).ok());
}

TEST(GeometricTest, TwoSidedGeometricMatchesPmf) {
  // Pr[k] = (1-α)/(1+α) · α^{|k|}.
  const double alpha = 0.6;
  BitGen gen(2);
  std::map<int64_t, int> counts;
  const int n = 400'000;
  for (int i = 0; i < n; ++i) {
    auto k = TwoSidedGeometric(alpha, gen);
    ASSERT_TRUE(k.ok());
    ++counts[*k];
  }
  const double norm = (1 - alpha) / (1 + alpha);
  for (int64_t k = -3; k <= 3; ++k) {
    const double expected = norm * std::pow(alpha, std::abs(k));
    const double observed = counts[k] / static_cast<double>(n);
    EXPECT_NEAR(observed, expected, 4 * std::sqrt(expected / n))
        << "k=" << k;
  }
}

TEST(GeometricTest, TwoSidedGeometricIsSymmetricAndCentered) {
  BitGen gen(3);
  std::vector<double> sample(200'000);
  for (double& s : sample) {
    auto k = TwoSidedGeometric(0.8, gen);
    ASSERT_TRUE(k.ok());
    s = static_cast<double>(*k);
  }
  const SampleSummary summary = Summarize(sample);
  EXPECT_NEAR(summary.mean, 0.0, 0.05);
  // Var = 2α/(1-α)² = 1.6/0.04 = 40.
  EXPECT_NEAR(summary.variance, 40.0, 2.0);
}

TEST(GeometricTest, RunGeometricPublishesIntegers) {
  auto w = Workload::PerQuery({10, 200, 3000});
  ASSERT_TRUE(w.ok());
  BitGen gen(4);
  auto out = RunGeometric(*w, GeometricParams{0.5}, gen);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->answers.size(), 3u);
  for (double a : out->answers) {
    EXPECT_DOUBLE_EQ(a, std::round(a));
  }
  EXPECT_DOUBLE_EQ(out->epsilon_spent, 0.5);
  // Equivalent Laplace scale S/ε = 3/0.5.
  EXPECT_DOUBLE_EQ(out->group_scales[0], 6.0);
}

TEST(GeometricTest, RunGeometricValidatesEpsilon) {
  auto w = Workload::PerQuery({1});
  ASSERT_TRUE(w.ok());
  BitGen gen(5);
  EXPECT_FALSE(RunGeometric(*w, GeometricParams{0}, gen).ok());
}

TEST(GeometricTest, NoiseMagnitudeTracksLaplaceEquivalent) {
  // E|two-sided geometric(α)| = 2α/(1-α²); with α = e^{-ε/S} this sits
  // close to the Laplace scale S/ε for small ε.
  auto w = Workload::PerQuery({1000});
  ASSERT_TRUE(w.ok());
  const double epsilon = 0.2;  // α = e^{-0.2}
  BitGen gen(6);
  std::vector<double> noise;
  for (int t = 0; t < 60'000; ++t) {
    auto out = RunGeometric(*w, GeometricParams{epsilon}, gen);
    ASSERT_TRUE(out.ok());
    noise.push_back(out->answers[0] - 1000);
  }
  const double alpha = std::exp(-epsilon);
  const double expected_mad = 2 * alpha / (1 - alpha * alpha);
  EXPECT_NEAR(Summarize(noise).mean_abs_deviation, expected_mad,
              0.05 * expected_mad);
}

TEST(GeometricTest, EmpiricallyEpsilonDp) {
  // Direct ratio check on the pmf of outputs for neighboring counts.
  auto w1 = Workload::PerQuery({50});
  auto w2 = Workload::PerQuery({51});
  ASSERT_TRUE(w1.ok() && w2.ok());
  const double epsilon = 0.4;
  BitGen g1(7), g2(8);
  std::map<int64_t, int> c1, c2;
  const int n = 300'000;
  for (int t = 0; t < n; ++t) {
    auto o1 = RunGeometric(*w1, GeometricParams{epsilon}, g1);
    auto o2 = RunGeometric(*w2, GeometricParams{epsilon}, g2);
    ++c1[static_cast<int64_t>(o1->answers[0])];
    ++c2[static_cast<int64_t>(o2->answers[0])];
  }
  for (const auto& [k, count] : c1) {
    if (count < 2000 || c2[k] < 2000) continue;
    const double ratio =
        std::fabs(std::log(static_cast<double>(count) / c2[k]));
    EXPECT_LE(ratio, epsilon + 0.1) << "output " << k;
  }
}

}  // namespace
}  // namespace ireduct
