// GroupScoreHeap must reproduce the linear-scan Pick* functions' group
// sequence exactly — same scores, same deterministic tie-break — across
// randomized refinement descents with scale moves, answer resamples,
// retirements and irreducible groups.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "algorithms/selection.h"
#include "common/random.h"
#include "dp/workload.h"

namespace ireduct {
namespace {

Workload RandomWorkload(BitGen& gen, size_t num_groups, bool force_ties) {
  std::vector<double> answers;
  std::vector<QueryGroup> groups;
  uint32_t begin = 0;
  for (size_t g = 0; g < num_groups; ++g) {
    const uint32_t size = 1 + static_cast<uint32_t>(gen.UniformInt(4));
    for (uint32_t i = 0; i < size; ++i) {
      // A tiny value alphabet makes identical group scores (ties) common.
      answers.push_back(force_ties
                            ? static_cast<double>(1 + gen.UniformInt(3))
                            : gen.Uniform(0.5, 300.0));
    }
    groups.push_back(QueryGroup{"g", begin, begin + size,
                                force_ties ? 2.0 : gen.Uniform(0.5, 3.0)});
    begin += size;
  }
  auto w = Workload::Create(std::move(answers), std::move(groups));
  EXPECT_TRUE(w.ok()) << w.status();
  return std::move(w).value();
}

// Reference linear scan for `rule` with the signatures unified.
size_t LinearPick(const Workload& w, SelectionRule rule,
                  std::span<const double> noisy,
                  std::span<const double> scales,
                  std::span<const uint8_t> active, double delta,
                  double lambda_delta) {
  switch (rule) {
    case SelectionRule::kIReductRatio:
      return PickGroupIReduct(w, noisy, scales, active, delta, lambda_delta);
    case SelectionRule::kMaxRelativeError:
      return PickGroupMaxRelativeError(w, noisy, scales, active, delta,
                                       lambda_delta);
    case SelectionRule::kIResampRatio:
      return PickGroupIResamp(w, noisy, scales, active, delta);
  }
  return kNoGroup;
}

// Drives heap and scan side by side through a random descent and asserts
// the pick sequences are identical (including the final kNoGroup).
void RunDescentParity(SelectionRule rule, uint64_t seed, bool force_ties) {
  BitGen gen(seed);
  const Workload w = RandomWorkload(gen, 60, force_ties);
  const double delta = 1.0;
  const double lambda_delta =
      rule == SelectionRule::kIResampRatio ? 0.0 : 2.0;
  std::vector<double> noisy(w.num_queries());
  for (double& y : noisy) y = gen.Uniform(-5.0, 400.0);
  std::vector<double> scales(w.num_groups(), 40.0);
  std::vector<uint8_t> active(w.num_groups(), 1);

  GroupScoreHeap heap(w, rule, delta, lambda_delta);
  heap.Build(noisy, scales, active);

  int picks = 0;
  for (int step = 0; step < 5000; ++step) {
    const size_t expected =
        LinearPick(w, rule, noisy, scales, active, delta, lambda_delta);
    const size_t got = heap.PopBest();
    ASSERT_EQ(got, expected) << "rule " << static_cast<int>(rule)
                             << " seed " << seed << " step " << step;
    if (got == kNoGroup) break;
    ++picks;
    // Random transition, mirrored into both representations. Retirement
    // probability keeps the kIResampRatio descent (which never becomes
    // irreducible) finite.
    if (gen.Bernoulli(rule == SelectionRule::kIResampRatio ? 0.25 : 0.1)) {
      active[got] = 0;
      heap.Retire(got);
      continue;
    }
    scales[got] = rule == SelectionRule::kIResampRatio
                      ? scales[got] / 2.0
                      : scales[got] - lambda_delta;
    const QueryGroup& group = w.group(got);
    for (uint32_t i = group.begin; i < group.end; ++i) {
      noisy[i] = force_ties ? static_cast<double>(1 + gen.UniformInt(3))
                            : gen.Uniform(-5.0, 400.0);
    }
    heap.Update(got, noisy, scales);
  }
  EXPECT_GT(picks, 10) << "descent ended before exercising the heap";
  // Both views agree that nothing admissible remains.
  EXPECT_EQ(LinearPick(w, rule, noisy, scales, active, delta, lambda_delta),
            heap.PopBest());
}

TEST(GroupScoreHeapTest, IReductRuleMatchesLinearScan) {
  for (uint64_t seed : {101, 102, 103}) {
    RunDescentParity(SelectionRule::kIReductRatio, seed, false);
  }
}

TEST(GroupScoreHeapTest, IReductRuleMatchesLinearScanUnderTies) {
  for (uint64_t seed : {201, 202, 203}) {
    RunDescentParity(SelectionRule::kIReductRatio, seed, true);
  }
}

TEST(GroupScoreHeapTest, MaxRelativeErrorRuleMatchesLinearScan) {
  for (uint64_t seed : {301, 302}) {
    RunDescentParity(SelectionRule::kMaxRelativeError, seed, false);
    RunDescentParity(SelectionRule::kMaxRelativeError, seed + 10, true);
  }
}

TEST(GroupScoreHeapTest, IResampRuleMatchesLinearScan) {
  for (uint64_t seed : {401, 402}) {
    RunDescentParity(SelectionRule::kIResampRatio, seed, false);
    RunDescentParity(SelectionRule::kIResampRatio, seed + 10, true);
  }
}

TEST(GroupScoreHeapTest, ExactTiesBreakToLowestIndex) {
  // Four byte-identical groups: every score ties; both selectors must pick
  // group 0.
  auto w = Workload::Create(
      {7, 7, 7, 7},
      {QueryGroup{"a", 0, 1, 2.0}, QueryGroup{"b", 1, 2, 2.0},
       QueryGroup{"c", 2, 3, 2.0}, QueryGroup{"d", 3, 4, 2.0}});
  ASSERT_TRUE(w.ok());
  const std::vector<double> noisy{7, 7, 7, 7};
  const std::vector<double> scales{50, 50, 50, 50};
  const std::vector<uint8_t> active{1, 1, 1, 1};
  EXPECT_EQ(PickGroupIReduct(*w, noisy, scales, active, 1.0, 1.0), 0u);
  GroupScoreHeap heap(*w, SelectionRule::kIReductRatio, 1.0, 1.0);
  heap.Build(noisy, scales, active);
  EXPECT_EQ(heap.PopBest(), 0u);
  // Consuming 0 moves the tie to the next-lowest index.
  EXPECT_EQ(heap.PopBest(), 1u);
  EXPECT_EQ(heap.PopBest(), 2u);
  EXPECT_EQ(heap.PopBest(), 3u);
  EXPECT_EQ(heap.PopBest(), kNoGroup);
}

TEST(GroupScoreHeapTest, IrreducibleGroupsAreNeverReturned) {
  auto w = Workload::Create(
      {5, 5}, {QueryGroup{"a", 0, 1, 2.0}, QueryGroup{"b", 1, 2, 2.0}});
  ASSERT_TRUE(w.ok());
  const std::vector<double> noisy{5, 5};
  // Group 0 sits at λ ≤ λΔ: not reducible, excluded at Build.
  const std::vector<double> scales{1.0, 50.0};
  const std::vector<uint8_t> active{1, 1};
  GroupScoreHeap heap(*w, SelectionRule::kIReductRatio, 1.0, 1.0);
  heap.Build(noisy, scales, active);
  EXPECT_EQ(heap.PopBest(), 1u);
  EXPECT_EQ(heap.PopBest(), kNoGroup);
}

TEST(GroupScoreHeapTest, SelectionScoreMatchesDocumentedFormulas) {
  auto w = Workload::Create({10, 20}, {QueryGroup{"A", 0, 2, 2.0}});
  ASSERT_TRUE(w.ok());
  const std::vector<double> noisy{10, 20};
  // iReduct: λΔ·W/(m·|G|) over c/(λ-λΔ) - c/λ with W = 1/10 + 1/20.
  const double benefit = 1.0 * (0.1 + 0.05) / (1.0 * 2.0);
  const double cost = 2.0 / 49.0 - 2.0 / 50.0;
  EXPECT_DOUBLE_EQ(
      SelectionScore(*w, SelectionRule::kIReductRatio, 0, noisy, 50.0, 1.0,
                     1.0),
      benefit / cost);
  // Max-relative-error: worst cell is λ/max{10, δ}.
  EXPECT_DOUBLE_EQ(
      SelectionScore(*w, SelectionRule::kMaxRelativeError, 0, noisy, 50.0,
                     1.0, 1.0),
      5.0);
}

}  // namespace
}  // namespace ireduct
