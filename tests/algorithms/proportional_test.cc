#include "algorithms/proportional.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "eval/metrics.h"

namespace ireduct {
namespace {

TEST(ProportionalTest, MarkedNonPrivate) {
  auto w = Workload::PerQuery({2, 5});
  ASSERT_TRUE(w.ok());
  BitGen gen(1);
  auto out = RunProportional(*w, ProportionalParams{1.0, 1.0}, gen);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(std::isinf(out->epsilon_spent));
}

TEST(ProportionalTest, ScalesMatchExampleOne) {
  auto w = Workload::PerQuery({2, 5});
  ASSERT_TRUE(w.ok());
  BitGen gen(2);
  auto out = RunProportional(*w, ProportionalParams{1.0, 1.0}, gen);
  ASSERT_TRUE(out.ok());
  EXPECT_NEAR(out->group_scales[0], 1.4, 1e-12);
  EXPECT_NEAR(out->group_scales[1], 3.5, 1e-12);
}

TEST(ProportionalTest, EqualizesExpectedRelativeError) {
  // With λ_i ∝ max{q_i, δ}, expected relative error λ_i/max{q_i, δ} is
  // identical across queries.
  auto w = Workload::PerQuery({4, 40, 400});
  ASSERT_TRUE(w.ok());
  BitGen gen(3);
  auto out = RunProportional(*w, ProportionalParams{1.0, 1.0}, gen);
  ASSERT_TRUE(out.ok());
  const double r0 = out->group_scales[0] / 4;
  const double r1 = out->group_scales[1] / 40;
  const double r2 = out->group_scales[2] / 400;
  EXPECT_NEAR(r0, r1, 1e-12);
  EXPECT_NEAR(r1, r2, 1e-12);
}

TEST(ProportionalTest, NominalBudgetConstraintHolds) {
  auto w = Workload::PerQuery({3, 7, 11});
  ASSERT_TRUE(w.ok());
  BitGen gen(4);
  auto out = RunProportional(*w, ProportionalParams{0.7, 1.0}, gen);
  ASSERT_TRUE(out.ok());
  EXPECT_NEAR(w->GeneralizedSensitivity(out->group_scales), 0.7, 1e-12);
}

TEST(ProportionalTest, ScaleDependsOnData) {
  // The privacy defect: neighboring datasets produce different scales.
  auto w1 = Workload::PerQuery({2, 5});
  auto w2 = Workload::PerQuery({1, 5});  // neighboring: q1 differs by 1
  ASSERT_TRUE(w1.ok());
  ASSERT_TRUE(w2.ok());
  BitGen gen(5);
  auto o1 = RunProportional(*w1, ProportionalParams{1.0, 1.0}, gen);
  auto o2 = RunProportional(*w2, ProportionalParams{1.0, 1.0}, gen);
  ASSERT_TRUE(o1.ok());
  ASSERT_TRUE(o2.ok());
  EXPECT_NE(o1->group_scales[0], o2->group_scales[0]);
}

}  // namespace
}  // namespace ireduct
