#include "algorithms/oracle.h"

#include <gtest/gtest.h>

#include <cmath>

#include "algorithms/dwork.h"
#include "eval/metrics.h"

namespace ireduct {
namespace {

Workload SkewedWorkload() {
  // Two marginal-style groups: tiny counts vs large counts.
  auto r = Workload::Create(
      {2, 3, 4, 5000, 6000, 7000},
      {QueryGroup{"tiny", 0, 3, 2.0}, QueryGroup{"large", 3, 6, 2.0}});
  EXPECT_TRUE(r.ok());
  return std::move(r).value();
}

TEST(OracleTest, MarkedNonPrivateAndBudgetShaped) {
  const Workload w = SkewedWorkload();
  BitGen gen(1);
  auto out = RunOracle(w, OracleParams{0.4, 1.0}, gen);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(std::isinf(out->epsilon_spent));
  EXPECT_NEAR(w.GeneralizedSensitivity(out->group_scales), 0.4, 1e-12);
  // Larger counts get more noise.
  EXPECT_GT(out->group_scales[1], out->group_scales[0]);
}

TEST(OracleTest, BeatsDworkOnSkewedCounts) {
  const Workload w = SkewedWorkload();
  const double eps = 0.2, delta = 1.0;
  double oracle_err = 0, dwork_err = 0;
  BitGen gen(2);
  const int trials = 400;
  for (int t = 0; t < trials; ++t) {
    auto o = RunOracle(w, OracleParams{eps, delta}, gen);
    auto d = RunDwork(w, DworkParams{eps}, gen);
    ASSERT_TRUE(o.ok());
    ASSERT_TRUE(d.ok());
    oracle_err += OverallError(w, o->answers, delta);
    dwork_err += OverallError(w, d->answers, delta);
  }
  EXPECT_LT(oracle_err, dwork_err * 0.8);
}

TEST(OracleTest, UniformCountsReduceToDworkAllocation) {
  // When every group looks the same, the optimal allocation is uniform.
  auto w = Workload::Create(
      {50, 50, 50, 50},
      {QueryGroup{"A", 0, 2, 2.0}, QueryGroup{"B", 2, 4, 2.0}});
  ASSERT_TRUE(w.ok());
  BitGen gen(3);
  auto out = RunOracle(*w, OracleParams{1.0, 1.0}, gen);
  ASSERT_TRUE(out.ok());
  EXPECT_NEAR(out->group_scales[0], out->group_scales[1], 1e-12);
  EXPECT_NEAR(out->group_scales[0], 4.0, 1e-12);  // S(Q)/ε = 4
}

}  // namespace
}  // namespace ireduct
