// Golden bit-parity with the deleted bespoke publishers. Before
// algorithms/hierarchical.cc and algorithms/wavelet.cc were replaced by
// Strategy::Tree / Strategy::Haar behind the shared strategy runner,
// their outputs were captured on two fixed histograms at three seeds
// (hex-encoded doubles below, from the pre-refactor build). The registry
// specs must keep reproducing every bit: base scale arithmetic, noise
// draw order, and the BLUE / inverse-Haar reconstructions are all
// floating-point-exact re-expressions of the legacy code, and this test
// is what keeps them that way.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "algorithms/mechanism_registry.h"
#include "common/random.h"
#include "dp/workload.h"

namespace ireduct {
namespace {

// Skewed power-of-two histogram (8 bins) and an unpadded one (5 bins) —
// the padding path and the exact-fit path of both strategies.
const std::vector<double> kSkewed{501.25, 301.5, 100.75, 50.25,
                                  25.5,   10.125, 5.0625, 1.0};
const std::vector<double> kUneven{10, 20, 30, 40, 50};

double FromBits(uint64_t bits) {
  double d;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

struct GoldenCase {
  const char* spec;
  uint64_t seed;
  const std::vector<double>* input;
  std::vector<uint64_t> expected_bits;
};

const GoldenCase kGolden[] = {
    {"hierarchical:epsilon=0.5", 101, &kSkewed,
     {0x407fc7c83ab88dbeull, 0x4072b3317a3aa0b0ull, 0x4061f3487a7fb12full,
      0x401c1a26ef5cdde8ull, 0x40306418c7d812bfull, 0x4033ff69c7ec010dull,
      0xc0180aada0146a58ull, 0x401d5ac0b7cda670ull}},
    {"hierarchical:epsilon=0.5", 101, &kUneven,
     {0x40313c83ab88dbd0ull, 0x4031b317a3aa0b01ull, 0x40523690f4ff625cull,
      0xc009cbb221464450ull, 0x4044720c63ec095full}},
    {"wavelet:epsilon=0.5", 101, &kSkewed,
     {0x408011bf7e095a46ull, 0x40722bbe3d50de54ull, 0x40584f5eba1ff25aull,
      0x404b11452418457dull, 0x40338b76352692fcull, 0x4039cbd8f2b33408ull,
      0x40090e84415b6046ull, 0xbfcd5dd6342a4668ull}},
    {"wavelet:epsilon=0.5", 101, &kUneven,
     {0x4036f7efc12b48b6ull, 0x402277c7aa1bca88ull, 0x403a7d7ae87fc96aull,
      0x4045f1452418457full, 0x404605bb1a93497eull}},
    {"hierarchical:epsilon=0.5", 202, &kSkewed,
     {0x40801a533f8c706eull, 0x40719eede48c31caull, 0x4056aa5c0a5532b8ull,
      0x40402c1ca43f4114ull, 0x402f2f32fdaa9a30ull, 0x400cebb4b321dfb8ull,
      0x40324bac85d72847ull, 0xc030317060e69a4dull}},
    {"hierarchical:epsilon=0.5", 202, &kUneven,
     {0x40380a67f18e0daeull, 0x3fdbb79230c720c0ull, 0x4033e9702954cadcull,
      0x40361839487e8220ull, 0x40440bccbf6aa68full}},
    {"wavelet:epsilon=0.5", 202, &kSkewed,
     {0x407d4cf196da64c1ull, 0x4072306d18713393ull, 0x4056715102e582b2ull,
      0x4046dd1fb6598734ull, 0x403cd15333cf2442ull, 0xbfea53175eed68b0ull,
      0x40277513bd42b6f8ull, 0xc035c7a135baa3d8ull}},
    {"wavelet:epsilon=0.5", 202, &kUneven,
     {0xc03670e69259b402ull, 0x40230da30e26724full, 0x403305440b960ac7ull,
      0x4041bd1fb6598734ull, 0x404aa8a999e79221ull}},
    {"hierarchical:epsilon=0.5", 303, &kSkewed,
     {0x4080062dfe2066f7ull, 0x4072c95bced71c5cull, 0x405dc6e918cfcc73ull,
      0x4047a04abef3c842ull, 0x402cedcca20f0864ull, 0x3fe7d5fa1736efc0ull,
      0x403f6441b83f4e9bull, 0xc0277c4d9fd91ef8ull}},
    {"hierarchical:epsilon=0.5", 303, &kUneven,
     {0x403585bfc40cdeefull, 0x403315bced71c5bdull, 0x40482dd2319f98e4ull,
      0x4042804abef3c840ull, 0x40437b732883c21aull}},
    {"wavelet:epsilon=0.5", 303, &kSkewed,
     {0x407fddeb9c4b62c6ull, 0x4073463ebf073f28ull, 0x40568c89c7cb2260ull,
      0x4052230f0a10b0a8ull, 0x40346831c947ccb0ull, 0x402077b07bec7fd8ull,
      0x400765691d0e3758ull, 0xc021b63ea47969ceull}},
    {"wavelet:epsilon=0.5", 303, &kUneven,
     {0x40329eb9c4b62c5full, 0x403ae3ebf073f27dull, 0x403372271f2c897full,
      0x404f261e1421614eull, 0x40467418e4a3e659ull}},
};

TEST(StrategyGoldenTest, MatchesPreRefactorPublishersBitForBit) {
  for (const GoldenCase& c : kGolden) {
    const std::string what = std::string(c.spec) + " @seed " +
                             std::to_string(c.seed) + " bins=" +
                             std::to_string(c.input->size());
    auto w = Workload::PerQuery(*c.input, 1.0);
    ASSERT_TRUE(w.ok()) << what;
    BitGen gen(c.seed);
    auto out = MechanismRegistry::Global().Run(*w, c.spec, gen);
    ASSERT_TRUE(out.ok()) << what << ": " << out.status();
    ASSERT_EQ(out->answers.size(), c.expected_bits.size()) << what;
    for (size_t i = 0; i < c.expected_bits.size(); ++i) {
      uint64_t got;
      std::memcpy(&got, &out->answers[i], sizeof(got));
      EXPECT_EQ(got, c.expected_bits[i])
          << what << " bin " << i << ": expected "
          << FromBits(c.expected_bits[i]) << ", got " << out->answers[i];
    }
  }
}

TEST(StrategyGoldenTest, GoldenEpsilonIsSpentExactly) {
  for (const GoldenCase& c : kGolden) {
    auto w = Workload::PerQuery(*c.input, 1.0);
    ASSERT_TRUE(w.ok());
    BitGen gen(c.seed);
    auto out = MechanismRegistry::Global().Run(*w, c.spec, gen);
    ASSERT_TRUE(out.ok());
    EXPECT_DOUBLE_EQ(out->epsilon_spent, 0.5);
  }
}

}  // namespace
}  // namespace ireduct
