// The hierarchical (tree-strategy) mechanism, now served by the shared
// strategy runner: registry spec "hierarchical:epsilon=..." routes
// through Strategy::Tree + RunStrategyMechanism. The statistical claims
// of the old bespoke publisher (unbiasedness, consistency, padding,
// range variance polylog in the domain) must survive the refactor;
// bit-parity with the deleted code is locked separately by
// strategy_golden_test.cc.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "algorithms/mechanism_registry.h"
#include "algorithms/strategy_mechanism.h"
#include "common/random.h"
#include "dp/workload.h"
#include "eval/stats.h"
#include "queries/strategy.h"

namespace ireduct {
namespace {

std::vector<double> SkewedHistogram(size_t bins) {
  std::vector<double> counts(bins);
  for (size_t b = 0; b < bins; ++b) {
    counts[b] = 10'000.0 / (1 + b * b);  // heavy head, tiny tail
  }
  return counts;
}

Result<MechanismOutput> PublishTree(const std::vector<double>& counts,
                                    const std::string& spec, BitGen& gen) {
  IREDUCT_ASSIGN_OR_RETURN(Workload w, Workload::PerQuery(counts, 1.0));
  return MechanismRegistry::Global().Run(w, spec, gen);
}

TEST(HierarchicalTest, Validates) {
  BitGen gen(1);
  const std::vector<double> counts{1, 2, 3};
  EXPECT_FALSE(PublishTree(counts, "hierarchical:epsilon=0", gen).ok());
  EXPECT_FALSE(PublishTree(counts, "hierarchical:epsilon=-1", gen).ok());
  StrategyMechanismConfig config;
  config.strategy = "nonesuch";
  auto w = Workload::PerQuery(counts, 1.0);
  ASSERT_TRUE(w.ok());
  EXPECT_FALSE(RunStrategyMechanism(*w, config, gen).ok());
}

TEST(HierarchicalTest, PadsToPowerOfTwo) {
  const Strategy tree = Strategy::Tree(5);
  EXPECT_EQ(tree.domain_size(), 5u);
  EXPECT_EQ(tree.num_rows(), 15u);  // 8 padded leaves -> 15 heap nodes
  BitGen gen(2);
  const std::vector<double> counts{1, 2, 3, 4, 5};
  auto out = PublishTree(counts, "hierarchical:epsilon=1", gen);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->answers.size(), 5u);  // padding never leaks out
  EXPECT_DOUBLE_EQ(out->epsilon_spent, 1.0);
}

TEST(HierarchicalTest, ReconstructionIsConsistent) {
  // The two-pass BLUE lands on a *consistent* tree: re-answering the
  // strategy from the published histogram and reconstructing again is a
  // fixed point, so every range decomposition agrees with the leaf sums.
  const Strategy tree = Strategy::Tree(16);
  const std::vector<double> counts = SkewedHistogram(16);
  BitGen gen(3);
  std::vector<double> scales;
  auto published = tree.Publish(counts, 0.5, 2.0, tree.row_multipliers(),
                                gen, &scales);
  ASSERT_TRUE(published.ok());
  auto again = tree.Reconstruct(tree.RowAnswers(*published), scales);
  ASSERT_TRUE(again.ok());
  for (size_t b = 0; b < 16; ++b) {
    EXPECT_NEAR((*again)[b], (*published)[b], 1e-9) << "bin " << b;
  }
}

TEST(HierarchicalTest, EstimatesAreUnbiased) {
  const std::vector<double> counts{500, 300, 100, 50, 25, 10, 5, 1};
  std::vector<double> bin0, range25;
  BitGen gen(5);
  for (int t = 0; t < 4000; ++t) {
    auto out = PublishTree(counts, "hierarchical:epsilon=1", gen);
    ASSERT_TRUE(out.ok());
    bin0.push_back(out->answers[0]);
    range25.push_back(out->answers[2] + out->answers[3] + out->answers[4] +
                      out->answers[5]);
  }
  EXPECT_NEAR(Summarize(bin0).mean, 500, 3);
  EXPECT_NEAR(Summarize(range25).mean, 100 + 50 + 25 + 10, 5);
}

TEST(HierarchicalTest, ConsistencyBeatsFlatLeavesOnWideRanges) {
  // The whole point of the hierarchy: a wide range aggregates O(log n)
  // noisy nodes instead of O(n) noisy leaves.
  const size_t bins = 64;
  const std::vector<double> counts(bins, 100.0);
  const double epsilon = 0.5;
  std::vector<double> tree_err, flat_err;
  BitGen gen(6);
  for (int t = 0; t < 1500; ++t) {
    auto out = PublishTree(counts, "hierarchical:epsilon=0.5", gen);
    ASSERT_TRUE(out.ok());
    double range = 0;
    for (size_t b = 0; b + 1 < bins; ++b) range += out->answers[b];
    tree_err.push_back(std::fabs(range - 100.0 * (bins - 1)));
    // Flat mechanism: Laplace(2/eps) per bin (sensitivity 2 for one moved
    // tuple), summed over the same range.
    double flat = 0;
    for (size_t b = 0; b + 1 < bins; ++b) {
      flat += 100.0 + gen.Laplace(2.0 / epsilon);
    }
    flat_err.push_back(std::fabs(flat - 100.0 * (bins - 1)));
  }
  EXPECT_LT(Summarize(tree_err).mean, Summarize(flat_err).mean);
}

TEST(HierarchicalTest, SmallBinsStillDrownInNoise) {
  // The Section 7 argument for iReduct: absolute-error methods spread the
  // same noise over every bin, so a tiny bin's *relative* error dwarfs a
  // large bin's by orders of magnitude.
  const std::vector<double> counts = SkewedHistogram(32);
  double tail_rel_err = 0, head_rel_err = 0;
  const int trials = 800;
  BitGen gen(7);
  for (int t = 0; t < trials; ++t) {
    auto out = PublishTree(counts, "hierarchical:epsilon=0.5", gen);
    ASSERT_TRUE(out.ok());
    tail_rel_err += std::fabs(out->answers[31] - counts[31]) /
                    std::fmax(counts[31], 1.0) / trials;
    head_rel_err += std::fabs(out->answers[0] - counts[0]) /
                    std::fmax(counts[0], 1.0) / trials;
  }
  EXPECT_GT(tail_rel_err, 1.0);                 // >100% error on the tail
  EXPECT_GT(tail_rel_err, 50 * head_rel_err);   // vs near-exact head
}

TEST(HierarchicalTest, DeterministicGivenSeed) {
  const std::vector<double> counts{10, 20, 30, 40};
  BitGen g1(8), g2(8);
  auto a = PublishTree(counts, "hierarchical:epsilon=1", g1);
  auto b = PublishTree(counts, "hierarchical:epsilon=1", g2);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->answers, b->answers);
}

}  // namespace
}  // namespace ireduct
