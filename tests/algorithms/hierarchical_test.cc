#include "algorithms/hierarchical.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "eval/stats.h"

namespace ireduct {
namespace {

std::vector<double> SkewedHistogram(size_t bins) {
  std::vector<double> counts(bins);
  for (size_t b = 0; b < bins; ++b) {
    counts[b] = 10'000.0 / (1 + b * b);  // heavy head, tiny tail
  }
  return counts;
}

TEST(HierarchicalTest, Validates) {
  BitGen gen(1);
  EXPECT_FALSE(
      HierarchicalHistogram::Publish({}, HierarchicalParams{1.0}, gen).ok());
  const std::vector<double> counts{1, 2, 3};
  EXPECT_FALSE(
      HierarchicalHistogram::Publish(counts, HierarchicalParams{0}, gen)
          .ok());
}

TEST(HierarchicalTest, PadsToPowerOfTwo) {
  BitGen gen(2);
  const std::vector<double> counts{1, 2, 3, 4, 5};
  auto h = HierarchicalHistogram::Publish(counts, HierarchicalParams{1.0},
                                          gen);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->num_bins(), 5u);
  EXPECT_EQ(h->height(), 4);  // 8 leaves -> 4 levels
  EXPECT_EQ(h->BinCounts().size(), 5u);
}

TEST(HierarchicalTest, ConsistencyChildrenSumToParent) {
  // The consistent estimates must make every range decomposition agree:
  // sum of leaves == any canonical decomposition of the same range.
  BitGen gen(3);
  const std::vector<double> counts = SkewedHistogram(16);
  auto h = HierarchicalHistogram::Publish(counts, HierarchicalParams{0.5},
                                          gen);
  ASSERT_TRUE(h.ok());
  double leaf_sum = 0;
  for (size_t b = 0; b < 16; ++b) leaf_sum += h->BinCount(b);
  auto full_range = h->RangeCount(0, 15);
  ASSERT_TRUE(full_range.ok());
  EXPECT_NEAR(*full_range, leaf_sum, 1e-9);
  // Arbitrary sub-ranges also match their leaf sums.
  for (auto [lo, hi] : std::vector<std::pair<size_t, size_t>>{
           {0, 0}, {3, 9}, {5, 15}, {7, 8}}) {
    double expected = 0;
    for (size_t b = lo; b <= hi; ++b) expected += h->BinCount(b);
    auto range = h->RangeCount(lo, hi);
    ASSERT_TRUE(range.ok());
    EXPECT_NEAR(*range, expected, 1e-9) << lo << ".." << hi;
  }
}

TEST(HierarchicalTest, RangeCountValidatesBounds) {
  BitGen gen(4);
  const std::vector<double> counts{1, 2, 3, 4};
  auto h = HierarchicalHistogram::Publish(counts, HierarchicalParams{1.0},
                                          gen);
  ASSERT_TRUE(h.ok());
  EXPECT_FALSE(h->RangeCount(2, 1).ok());
  EXPECT_FALSE(h->RangeCount(0, 4).ok());
  EXPECT_TRUE(h->RangeCount(0, 3).ok());
}

TEST(HierarchicalTest, EstimatesAreUnbiased) {
  const std::vector<double> counts{500, 300, 100, 50, 25, 10, 5, 1};
  std::vector<double> bin0, range25;
  BitGen gen(5);
  for (int t = 0; t < 4000; ++t) {
    auto h = HierarchicalHistogram::Publish(counts, HierarchicalParams{1.0},
                                            gen);
    ASSERT_TRUE(h.ok());
    bin0.push_back(h->BinCount(0));
    range25.push_back(*h->RangeCount(2, 5));
  }
  EXPECT_NEAR(Summarize(bin0).mean, 500, 3);
  EXPECT_NEAR(Summarize(range25).mean, 100 + 50 + 25 + 10, 5);
}

TEST(HierarchicalTest, ConsistencyBeatsFlatLeavesOnWideRanges) {
  // The whole point of the hierarchy: a wide range aggregates O(log n)
  // noisy nodes instead of O(n) noisy leaves.
  const size_t bins = 64;
  const std::vector<double> counts(bins, 100.0);
  const double epsilon = 0.5;
  std::vector<double> tree_err, flat_err;
  BitGen gen(6);
  for (int t = 0; t < 1500; ++t) {
    auto h = HierarchicalHistogram::Publish(counts, HierarchicalParams{
                                                        epsilon},
                                            gen);
    ASSERT_TRUE(h.ok());
    tree_err.push_back(std::fabs(*h->RangeCount(0, bins - 2) -
                                 100.0 * (bins - 1)));
    // Flat mechanism: Laplace(2/eps) per bin (sensitivity 2 for one moved
    // tuple), summed over the same range.
    double flat = 0;
    for (size_t b = 0; b + 1 < bins; ++b) {
      flat += 100.0 + gen.Laplace(2.0 / epsilon);
    }
    flat_err.push_back(std::fabs(flat - 100.0 * (bins - 1)));
  }
  EXPECT_LT(Summarize(tree_err).mean, Summarize(flat_err).mean);
}

TEST(HierarchicalTest, SmallBinsStillDrownInNoise) {
  // The Section 7 argument for iReduct: absolute-error methods spread the
  // same noise over every bin, so a tiny bin's *relative* error dwarfs a
  // large bin's by orders of magnitude.
  const std::vector<double> counts = SkewedHistogram(32);
  double tail_rel_err = 0, head_rel_err = 0;
  const int trials = 800;
  BitGen gen(7);
  for (int t = 0; t < trials; ++t) {
    auto h = HierarchicalHistogram::Publish(counts, HierarchicalParams{0.5},
                                            gen);
    ASSERT_TRUE(h.ok());
    tail_rel_err += std::fabs(h->BinCount(31) - counts[31]) /
                    std::fmax(counts[31], 1.0) / trials;
    head_rel_err += std::fabs(h->BinCount(0) - counts[0]) /
                    std::fmax(counts[0], 1.0) / trials;
  }
  EXPECT_GT(tail_rel_err, 1.0);                 // >100% error on the tail
  EXPECT_GT(tail_rel_err, 50 * head_rel_err);   // vs near-exact head
}

TEST(HierarchicalTest, DeterministicGivenSeed) {
  const std::vector<double> counts{10, 20, 30, 40};
  BitGen g1(8), g2(8);
  auto a = HierarchicalHistogram::Publish(counts, HierarchicalParams{1.0},
                                          g1);
  auto b = HierarchicalHistogram::Publish(counts, HierarchicalParams{1.0},
                                          g2);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->BinCounts(), b->BinCounts());
}

}  // namespace
}  // namespace ireduct
