// Crash matrix for checkpoint/resume: interrupt a refinement run at every
// checkpoint boundary, resume from the serialized bytes, and require the
// resumed run to be bit-identical to the uninterrupted one — same answers,
// scales, iteration counts and ε accounting. This is the property that
// makes re-execution after a crash free of additional privacy cost.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "algorithms/ireduct.h"
#include "algorithms/iresamp.h"
#include "common/random.h"
#include "dp/checkpoint.h"
#include "dp/privacy_accountant.h"
#include "dp/workload.h"

namespace ireduct {
namespace {

constexpr uint64_t kSeed = 7;

Workload SkewedWorkload() {
  auto r = Workload::Create(
      {2, 3, 4, 5000, 6000, 7000},
      {QueryGroup{"tiny", 0, 3, 2.0}, QueryGroup{"large", 3, 6, 2.0}});
  EXPECT_TRUE(r.ok());
  return std::move(r).value();
}

IReductParams BaseParams() {
  IReductParams p;
  p.epsilon = 0.2;
  p.delta = 1.0;
  p.lambda_max = 1000;
  p.lambda_delta = 50;
  return p;
}

// Keeps the serialized bytes of every checkpoint — what a crash at any
// later point would leave on disk.
class CaptureSink : public CheckpointSink {
 public:
  Status Write(const RunCheckpoint& checkpoint) override {
    records_.push_back(SerializeCheckpoint(checkpoint));
    return Status::OK();
  }
  const std::vector<std::string>& records() const { return records_; }

 private:
  std::vector<std::string> records_;
};

void ExpectBitIdentical(const MechanismOutput& a, const MechanismOutput& b) {
  EXPECT_EQ(a.answers, b.answers);
  EXPECT_EQ(a.group_scales, b.group_scales);
  EXPECT_EQ(a.epsilon_spent, b.epsilon_spent);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.resample_calls, b.resample_calls);
}

TEST(IReductResumeTest, CheckpointingDoesNotPerturbTheRun) {
  const Workload w = SkewedWorkload();
  BitGen plain_gen(kSeed);
  auto plain = RunIReduct(w, BaseParams(), plain_gen);
  ASSERT_TRUE(plain.ok()) << plain.status();

  CaptureSink capture;
  IReductParams p = BaseParams();
  p.checkpoint.sink = &capture;
  p.checkpoint.every = 1;
  BitGen gen(kSeed);
  auto checkpointed = RunIReduct(w, p, gen);
  ASSERT_TRUE(checkpointed.ok()) << checkpointed.status();
  ExpectBitIdentical(*plain, *checkpointed);
  EXPECT_EQ(capture.records().size(), plain->iterations);
}

TEST(IReductResumeTest, EveryBoundaryResumesBitIdentically) {
  const Workload w = SkewedWorkload();
  CaptureSink capture;
  IReductParams p = BaseParams();
  p.checkpoint.sink = &capture;
  p.checkpoint.every = 1;
  BitGen gen(kSeed);
  auto baseline = RunIReduct(w, p, gen);
  ASSERT_TRUE(baseline.ok()) << baseline.status();
  ASSERT_GE(capture.records().size(), 10u) << "matrix needs real coverage";

  double prev_epsilon = 0;
  for (size_t k = 0; k < capture.records().size(); ++k) {
    // A crash after boundary k leaves exactly these bytes; resume must
    // parse them and finish the run as if nothing happened.
    auto checkpoint = ParseCheckpoint(capture.records()[k]);
    ASSERT_TRUE(checkpoint.ok()) << "boundary " << k;
    // ε at the boundaries is monotone: recovery can only over-count.
    EXPECT_GE(checkpoint->epsilon_spent, prev_epsilon) << "boundary " << k;
    prev_epsilon = checkpoint->epsilon_spent;

    IReductParams rp = BaseParams();
    rp.resume = &*checkpoint;
    // The seed is deliberately wrong: resume must take its stream from the
    // checkpoint's engine words, not from the fresh generator.
    BitGen resume_gen(kSeed + 1000 + k);
    auto resumed = RunIReduct(w, rp, resume_gen);
    ASSERT_TRUE(resumed.ok()) << "boundary " << k << ": "
                              << resumed.status().ToString();
    ExpectBitIdentical(*baseline, *resumed);
  }
}

TEST(IReductResumeTest, BatchedRoundsResumeBitIdentically) {
  const Workload w = SkewedWorkload();
  CaptureSink capture;
  IReductParams p = BaseParams();
  p.batch_size = 4;
  p.checkpoint.sink = &capture;
  p.checkpoint.every = 2;
  BitGen gen(kSeed);
  auto baseline = RunIReduct(w, p, gen);
  ASSERT_TRUE(baseline.ok()) << baseline.status();
  ASSERT_GE(capture.records().size(), 2u);

  for (size_t k = 0; k < capture.records().size(); ++k) {
    auto checkpoint = ParseCheckpoint(capture.records()[k]);
    ASSERT_TRUE(checkpoint.ok());
    IReductParams rp = p;
    rp.checkpoint = CheckpointOptions{};
    rp.resume = &*checkpoint;
    BitGen resume_gen(kSeed + 1);
    auto resumed = RunIReduct(w, rp, resume_gen);
    ASSERT_TRUE(resumed.ok()) << "boundary " << k;
    ExpectBitIdentical(*baseline, *resumed);
  }
}

TEST(IReductResumeTest, LedgerEndsIdenticalAfterInterruption) {
  const Workload w = SkewedWorkload();

  // Uninterrupted journaled run: each boundary charges its ε growth.
  auto uninterrupted = PrivacyAccountant::Create(1.0);
  ASSERT_TRUE(uninterrupted.ok());
  CaptureSink capture;
  JournalingCheckpointSink journaled(&*uninterrupted, &capture);
  IReductParams p = BaseParams();
  p.checkpoint.sink = &journaled;
  p.checkpoint.every = 1;
  BitGen gen(kSeed);
  auto baseline = RunIReduct(w, p, gen);
  ASSERT_TRUE(baseline.ok()) << baseline.status();
  const size_t boundaries = capture.records().size();
  ASSERT_GE(boundaries, 3u);

  for (const size_t k : {size_t{0}, boundaries / 2, boundaries - 1}) {
    // Crash after boundary k: the journal holds the first k+1 boundary
    // charges, the checkpoint file holds boundary k's state.
    auto recovered = PrivacyAccountant::Restore(
        1.0, std::vector<PrivacyCharge>(
                 uninterrupted->ledger().begin(),
                 uninterrupted->ledger().begin() + static_cast<long>(k) + 1));
    ASSERT_TRUE(recovered.ok());
    auto checkpoint = ParseCheckpoint(capture.records()[k]);
    ASSERT_TRUE(checkpoint.ok());
    // The recovered spend covers the checkpoint exactly — never less than
    // what the run actually consumed up to the boundary.
    EXPECT_EQ(recovered->spent(), checkpoint->epsilon_spent);

    CaptureSink resumed_capture;
    JournalingCheckpointSink resumed_journaled(&*recovered, &resumed_capture);
    IReductParams rp = BaseParams();
    rp.checkpoint.sink = &resumed_journaled;
    rp.checkpoint.every = 1;
    rp.resume = &*checkpoint;
    BitGen resume_gen(kSeed + 99);
    auto resumed = RunIReduct(w, rp, resume_gen);
    ASSERT_TRUE(resumed.ok()) << "boundary " << k;
    ExpectBitIdentical(*baseline, *resumed);
    // Bit-identical ledger totals: the interrupted-and-resumed pair of
    // processes paid exactly what the uninterrupted process paid.
    EXPECT_EQ(recovered->spent(), uninterrupted->spent()) << "boundary " << k;
  }
}

TEST(IReductResumeTest, NaiveEngineRefusesCheckpointAndResume) {
  const Workload w = SkewedWorkload();
  CaptureSink capture;
  IReductParams p = BaseParams();
  p.engine = IReductEngine::kNaive;
  p.checkpoint.sink = &capture;
  p.checkpoint.every = 1;
  BitGen gen(kSeed);
  EXPECT_EQ(RunIReduct(w, p, gen).status().code(),
            StatusCode::kInvalidArgument);

  RunCheckpoint checkpoint;
  checkpoint.algorithm = "ireduct";
  IReductParams rp = BaseParams();
  rp.engine = IReductEngine::kNaive;
  rp.resume = &checkpoint;
  EXPECT_EQ(RunIReduct(w, rp, gen).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(IReductResumeTest, ResumeRefusesForeignCheckpoint) {
  const Workload w = SkewedWorkload();
  CaptureSink capture;
  IReductParams p = BaseParams();
  p.checkpoint.sink = &capture;
  p.checkpoint.every = 1;
  BitGen gen(kSeed);
  ASSERT_TRUE(RunIReduct(w, p, gen).ok());
  auto checkpoint = ParseCheckpoint(capture.records()[0]);
  ASSERT_TRUE(checkpoint.ok());

  // Same structure, different group name: a different workload.
  auto other = Workload::Create(
      {2, 3, 4, 5000, 6000, 7000},
      {QueryGroup{"renamed", 0, 3, 2.0}, QueryGroup{"large", 3, 6, 2.0}});
  ASSERT_TRUE(other.ok());
  IReductParams rp = BaseParams();
  rp.resume = &*checkpoint;
  BitGen resume_gen(kSeed);
  EXPECT_EQ(RunIReduct(*other, rp, resume_gen).status().code(),
            StatusCode::kInvalidArgument);

  // An iResamp checkpoint cannot resume an iReduct run.
  checkpoint->algorithm = "iresamp";
  EXPECT_EQ(RunIReduct(w, rp, resume_gen).status().code(),
            StatusCode::kInvalidArgument);
}

IResampParams BaseResampParams() {
  IResampParams p;
  p.epsilon = 0.2;
  p.delta = 1.0;
  p.lambda_max = 1000;
  return p;
}

TEST(IResampResumeTest, EveryBoundaryResumesBitIdentically) {
  const Workload w = SkewedWorkload();
  CaptureSink capture;
  IResampParams p = BaseResampParams();
  p.checkpoint.sink = &capture;
  p.checkpoint.every = 1;
  BitGen gen(kSeed);
  auto baseline = RunIResamp(w, p, gen);
  ASSERT_TRUE(baseline.ok()) << baseline.status();
  ASSERT_GE(capture.records().size(), 2u);

  for (size_t k = 0; k < capture.records().size(); ++k) {
    auto checkpoint = ParseCheckpoint(capture.records()[k]);
    ASSERT_TRUE(checkpoint.ok()) << "boundary " << k;
    IResampParams rp = BaseResampParams();
    rp.resume = &*checkpoint;
    BitGen resume_gen(kSeed + 1000 + k);
    auto resumed = RunIResamp(w, rp, resume_gen);
    ASSERT_TRUE(resumed.ok()) << "boundary " << k << ": "
                              << resumed.status().ToString();
    ExpectBitIdentical(*baseline, *resumed);
  }
}

TEST(IResampResumeTest, CheckpointingDoesNotPerturbTheRun) {
  const Workload w = SkewedWorkload();
  BitGen plain_gen(kSeed);
  auto plain = RunIResamp(w, BaseResampParams(), plain_gen);
  ASSERT_TRUE(plain.ok()) << plain.status();

  CaptureSink capture;
  IResampParams p = BaseResampParams();
  p.checkpoint.sink = &capture;
  p.checkpoint.every = 1;
  BitGen gen(kSeed);
  auto checkpointed = RunIResamp(w, p, gen);
  ASSERT_TRUE(checkpointed.ok());
  ExpectBitIdentical(*plain, *checkpointed);
}

}  // namespace
}  // namespace ireduct
