// Parameterized contract suite: every publication mechanism in the
// library must satisfy the same behavioural invariants — determinism
// under a fixed seed, answer-vector arity, unbiasedness per query, budget
// bookkeeping, and graceful rejection of invalid ε. Runs the full
// mechanism matrix over several workload shapes via TEST_P.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <string>
#include <vector>

#include "algorithms/dwork.h"
#include "algorithms/geometric.h"
#include "algorithms/ireduct.h"
#include "algorithms/iresamp.h"
#include "algorithms/oracle.h"
#include "algorithms/proportional.h"
#include "algorithms/two_phase.h"
#include "common/numeric.h"
#include "eval/stats.h"

namespace ireduct {
namespace {

struct MechanismCase {
  std::string name;
  // Runs the mechanism at the given ε on the workload.
  std::function<Result<MechanismOutput>(const Workload&, double epsilon,
                                        BitGen&)>
      run;
  bool is_private = true;
};

std::vector<MechanismCase> AllMechanisms() {
  std::vector<MechanismCase> cases;
  cases.push_back({"Dwork",
                   [](const Workload& w, double eps, BitGen& gen) {
                     return RunDwork(w, DworkParams{eps}, gen);
                   },
                   true});
  cases.push_back({"Geometric",
                   [](const Workload& w, double eps, BitGen& gen) {
                     return RunGeometric(w, GeometricParams{eps}, gen);
                   },
                   true});
  cases.push_back({"TwoPhase",
                   [](const Workload& w, double eps, BitGen& gen) {
                     return RunTwoPhase(
                         w, TwoPhaseParams{0.1 * eps, 0.9 * eps, 1.0}, gen);
                   },
                   true});
  cases.push_back({"iReduct",
                   [](const Workload& w, double eps, BitGen& gen) {
                     IReductParams p;
                     p.epsilon = eps;
                     p.delta = 1.0;
                     p.lambda_max = 4 * w.Sensitivity() / eps;
                     p.lambda_delta = p.lambda_max / 64;
                     return RunIReduct(w, p, gen);
                   },
                   true});
  cases.push_back({"iReductCoupled",
                   [](const Workload& w, double eps, BitGen& gen) {
                     IReductParams p;
                     p.epsilon = eps;
                     p.delta = 1.0;
                     p.lambda_max = 4 * w.Sensitivity() / eps;
                     p.lambda_delta = p.lambda_max / 64;
                     p.reducer = NoiseReducer::kExactCoupling;
                     return RunIReduct(w, p, gen);
                   },
                   true});
  cases.push_back({"iResamp",
                   [](const Workload& w, double eps, BitGen& gen) {
                     IResampParams p;
                     p.epsilon = eps;
                     p.delta = 1.0;
                     p.lambda_max = 4 * w.Sensitivity() / eps;
                     return RunIResamp(w, p, gen);
                   },
                   true});
  cases.push_back({"Oracle",
                   [](const Workload& w, double eps, BitGen& gen) {
                     return RunOracle(w, OracleParams{eps, 1.0}, gen);
                   },
                   false});
  cases.push_back({"Proportional",
                   [](const Workload& w, double eps, BitGen& gen) {
                     return RunProportional(w, ProportionalParams{eps, 1.0},
                                            gen);
                   },
                   false});
  return cases;
}

struct ContractCase {
  MechanismCase mechanism;
  int workload_shape;  // 0: per-query, 1: two groups, 2: single group
};

Workload ShapedWorkload(int shape) {
  Result<Workload> w = Status::Internal("unset");
  switch (shape) {
    case 0:
      w = Workload::PerQuery({7, 80, 900, 4000});
      break;
    case 1:
      w = Workload::Create({5, 6, 7, 5000, 6000},
                           {QueryGroup{"small", 0, 3, 2.0},
                            QueryGroup{"large", 3, 5, 2.0}});
      break;
    default:
      w = Workload::Create({10, 20, 30}, {QueryGroup{"all", 0, 3, 2.0}});
      break;
  }
  EXPECT_TRUE(w.ok());
  return std::move(w).value();
}

class MechanismContractTest : public testing::TestWithParam<ContractCase> {};

TEST_P(MechanismContractTest, ProducesOneAnswerPerQuery) {
  const Workload w = ShapedWorkload(GetParam().workload_shape);
  BitGen gen(1);
  auto out = GetParam().mechanism.run(w, 0.5, gen);
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(out->answers.size(), w.num_queries());
  EXPECT_EQ(out->group_scales.size(), w.num_groups());
  for (double a : out->answers) EXPECT_TRUE(std::isfinite(a));
  for (double s : out->group_scales) EXPECT_GT(s, 0);
}

TEST_P(MechanismContractTest, DeterministicUnderFixedSeed) {
  const Workload w = ShapedWorkload(GetParam().workload_shape);
  BitGen g1(42), g2(42);
  auto a = GetParam().mechanism.run(w, 0.5, g1);
  auto b = GetParam().mechanism.run(w, 0.5, g2);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->answers, b->answers);
  EXPECT_EQ(a->group_scales, b->group_scales);
}

TEST_P(MechanismContractTest, RejectsNonPositiveEpsilon) {
  const Workload w = ShapedWorkload(GetParam().workload_shape);
  BitGen gen(2);
  EXPECT_FALSE(GetParam().mechanism.run(w, 0.0, gen).ok());
  EXPECT_FALSE(GetParam().mechanism.run(w, -1.0, gen).ok());
}

TEST_P(MechanismContractTest, PrivateMechanismsReportSpendWithinBudget) {
  const Workload w = ShapedWorkload(GetParam().workload_shape);
  BitGen gen(3);
  const double eps = 0.4;
  auto out = GetParam().mechanism.run(w, eps, gen);
  ASSERT_TRUE(out.ok());
  if (GetParam().mechanism.is_private) {
    EXPECT_LE(out->epsilon_spent, eps * (1 + 1e-9));
    EXPECT_GT(out->epsilon_spent, 0);
    // The reported group scales must themselves fit the budget.
    EXPECT_LE(w.GeneralizedSensitivity(out->group_scales),
              eps * (1 + 1e-9));
  } else {
    EXPECT_TRUE(std::isinf(out->epsilon_spent));
  }
}

TEST_P(MechanismContractTest, AnswersAreUnbiased) {
  const Workload w = ShapedWorkload(GetParam().workload_shape);
  const int trials = 3000;
  std::vector<KahanSum> sums(w.num_queries());
  BitGen gen(4);
  std::vector<double> scales_snapshot;
  for (int t = 0; t < trials; ++t) {
    auto out = GetParam().mechanism.run(w, 0.8, gen);
    ASSERT_TRUE(out.ok());
    for (size_t i = 0; i < w.num_queries(); ++i) {
      sums[i].Add(out->answers[i]);
    }
    if (t == 0) scales_snapshot = out->group_scales;
  }
  for (size_t i = 0; i < w.num_queries(); ++i) {
    const double mean = sums[i].value() / trials;
    // Tolerance ~ 5σ of the trial mean; the per-answer scale is bounded by
    // the largest group scale observed.
    double scale_bound = 0;
    for (double s : scales_snapshot) scale_bound = std::fmax(scale_bound, s);
    const double tol =
        5 * std::sqrt(2.0) * scale_bound / std::sqrt(trials) + 0.3;
    EXPECT_NEAR(mean, w.true_answer(i), tol) << "query " << i;
  }
}

std::vector<ContractCase> AllCases() {
  std::vector<ContractCase> cases;
  for (const MechanismCase& m : AllMechanisms()) {
    for (int shape = 0; shape < 3; ++shape) {
      cases.push_back(ContractCase{m, shape});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllMechanismsAndShapes, MechanismContractTest,
    testing::ValuesIn(AllCases()),
    [](const testing::TestParamInfo<ContractCase>& info) {
      return info.param.mechanism.name + "_shape" +
             std::to_string(info.param.workload_shape);
    });

}  // namespace
}  // namespace ireduct
