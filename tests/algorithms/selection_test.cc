#include "algorithms/selection.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace ireduct {
namespace {

Workload MakeWorkload(std::vector<double> answers,
                      std::vector<QueryGroup> groups) {
  auto r = Workload::Create(std::move(answers), std::move(groups));
  EXPECT_TRUE(r.ok()) << r.status();
  return std::move(r).value();
}

TEST(SelectionTest, ErrorOptimalScalesSatisfyBudgetExactly) {
  const Workload w = MakeWorkload(
      {5, 10, 1000, 2000, 3000},
      {QueryGroup{"small", 0, 2, 2.0}, QueryGroup{"big", 2, 5, 2.0}});
  const double epsilon = 0.5;
  auto scales = ErrorOptimalScales(w, w.true_answers(), 1.0, epsilon);
  ASSERT_TRUE(scales.ok()) << scales.status();
  EXPECT_NEAR(w.GeneralizedSensitivity(*scales), epsilon, 1e-12);
}

TEST(SelectionTest, ErrorOptimalShapeMatchesLagrangeFormula) {
  // λ_g ∝ sqrt(|G_g| / Σ 1/max{δ, v_j}).
  const Workload w = MakeWorkload(
      {4, 4, 100, 100},
      {QueryGroup{"A", 0, 2, 2.0}, QueryGroup{"B", 2, 4, 2.0}});
  auto scales = ErrorOptimalScales(w, w.true_answers(), 1.0, 1.0);
  ASSERT_TRUE(scales.ok());
  const double shape_a = std::sqrt(2.0 / (2.0 / 4));    // sqrt(|A| / W_A)
  const double shape_b = std::sqrt(2.0 / (2.0 / 100));  // sqrt(|B| / W_B)
  EXPECT_NEAR((*scales)[0] / (*scales)[1], shape_a / shape_b, 1e-12);
  // Larger counts tolerate more noise.
  EXPECT_GT((*scales)[1], (*scales)[0]);
}

TEST(SelectionTest, ErrorOptimalClampsSmallValuesWithDelta) {
  const Workload w = MakeWorkload(
      {-50, 0.001}, {QueryGroup{"A", 0, 1, 1.0}, QueryGroup{"B", 1, 2, 1.0}});
  auto scales = ErrorOptimalScales(w, w.true_answers(), 10.0, 1.0);
  ASSERT_TRUE(scales.ok());
  // Both values clamp to δ=10, so both groups get identical scales.
  EXPECT_NEAR((*scales)[0], (*scales)[1], 1e-12);
}

TEST(SelectionTest, ErrorOptimalValidatesInputs) {
  const Workload w = MakeWorkload({1}, {QueryGroup{"A", 0, 1, 1.0}});
  const std::vector<double> wrong_size{1, 2};
  EXPECT_FALSE(ErrorOptimalScales(w, wrong_size, 1.0, 1.0).ok());
  EXPECT_FALSE(ErrorOptimalScales(w, w.true_answers(), 0.0, 1.0).ok());
  EXPECT_FALSE(ErrorOptimalScales(w, w.true_answers(), 1.0, 0.0).ok());
}

TEST(SelectionTest, ProportionalScalesTrackSmallestGroupValue) {
  const Workload w = MakeWorkload(
      {2, 50, 5, 40},
      {QueryGroup{"A", 0, 2, 1.0}, QueryGroup{"B", 2, 4, 1.0}});
  auto scales = ProportionalScales(w, w.true_answers(), 1.0, 1.0);
  ASSERT_TRUE(scales.ok());
  // Shapes are max{min answer, δ} = 2 and 5.
  EXPECT_NEAR((*scales)[1] / (*scales)[0], 5.0 / 2.0, 1e-12);
  EXPECT_NEAR(w.GeneralizedSensitivity(*scales), 1.0, 1e-12);
}

TEST(SelectionTest, ProportionalMatchesPaperExampleOne) {
  // Example 1: q1(T1)=2, q2(T1)=5, δ=1, ε=1 gives λ1=1.4, λ2=3.5.
  const Workload w = MakeWorkload(
      {2, 5}, {QueryGroup{"q1", 0, 1, 1.0}, QueryGroup{"q2", 1, 2, 1.0}});
  auto scales = ProportionalScales(w, w.true_answers(), 1.0, 1.0);
  ASSERT_TRUE(scales.ok());
  EXPECT_NEAR((*scales)[0], 1.4, 1e-12);
  EXPECT_NEAR((*scales)[1], 3.5, 1e-12);
}

TEST(SelectionTest, EstimatedGroupErrorFormula) {
  const Workload w = MakeWorkload(
      {10, 20}, {QueryGroup{"A", 0, 2, 2.0}});
  const std::vector<double> noisy{10, 20};
  // scale/|G| * (1/10 + 1/20) = 4/2 * 0.15.
  EXPECT_NEAR(EstimatedGroupError(w, 0, noisy, 4.0, 1.0), 0.3, 1e-12);
}

TEST(SelectionTest, PickGroupIReductPrefersHighBenefitPerCost) {
  // Two same-size groups at the same scale: the one with smaller noisy
  // answers (higher estimated relative error) must win.
  const Workload w = MakeWorkload(
      {3, 3, 500, 500},
      {QueryGroup{"small", 0, 2, 2.0}, QueryGroup{"big", 2, 4, 2.0}});
  const std::vector<double> noisy{3, 3, 500, 500};
  const std::vector<double> scales{50, 50};
  const std::vector<uint8_t> active{1, 1};
  EXPECT_EQ(PickGroupIReduct(w, noisy, scales, active, 1.0, 1.0), 0u);
}

TEST(SelectionTest, PickGroupIReductSkipsInactiveAndIrreducible) {
  const Workload w = MakeWorkload(
      {3, 500},
      {QueryGroup{"small", 0, 1, 2.0}, QueryGroup{"big", 1, 2, 2.0}});
  const std::vector<double> noisy{3, 500};
  const std::vector<double> scales{50, 50};
  const std::vector<double> tiny_scale{50, 0.5};
  const std::vector<uint8_t> only_big{0, 1};
  const std::vector<uint8_t> none{0, 0};
  // Group 0 inactive; group 1 still reducible.
  EXPECT_EQ(PickGroupIReduct(w, noisy, scales, only_big, 1.0, 1.0), 1u);
  // Group 1 at scale <= λΔ cannot be reduced.
  EXPECT_EQ(PickGroupIReduct(w, noisy, tiny_scale, only_big, 1.0, 1.0),
            kNoGroup);
  // Nothing active.
  EXPECT_EQ(PickGroupIReduct(w, noisy, scales, none, 1.0, 1.0), kNoGroup);
}

TEST(SelectionTest, PickGroupIReductPrefersCheaperReduction) {
  // Same answers, but one group sits at a larger scale, where shaving λΔ
  // costs less sensitivity (Equation 14 is convex in λ).
  const Workload w = MakeWorkload(
      {10, 10},
      {QueryGroup{"lo", 0, 1, 2.0}, QueryGroup{"hi", 1, 2, 2.0}});
  const std::vector<double> noisy{10, 10};
  const std::vector<double> scales{5, 100};
  const std::vector<uint8_t> active{1, 1};
  EXPECT_EQ(PickGroupIReduct(w, noisy, scales, active, 1.0, 1.0), 1u);
}

TEST(SelectionTest, PickGroupMaxRelativeErrorTargetsWorstCell) {
  // Group 1 holds the cell with the largest λ/max{y, δ} ratio even though
  // its average is better.
  const Workload w = MakeWorkload(
      {50, 50, 2, 900},
      {QueryGroup{"balanced", 0, 2, 2.0}, QueryGroup{"spiky", 2, 4, 2.0}});
  const std::vector<double> noisy{50, 50, 2, 900};
  const std::vector<double> scales{30, 30};
  const std::vector<uint8_t> active{1, 1};
  EXPECT_EQ(PickGroupMaxRelativeError(w, noisy, scales, active, 1.0, 1.0),
            1u);
  // Once the spiky group retires, the other is chosen.
  const std::vector<uint8_t> only_first{1, 0};
  EXPECT_EQ(
      PickGroupMaxRelativeError(w, noisy, scales, only_first, 1.0, 1.0),
      0u);
  // Non-reducible scales disqualify.
  const std::vector<double> tiny{0.5, 0.5};
  EXPECT_EQ(PickGroupMaxRelativeError(w, noisy, tiny, active, 1.0, 1.0),
            kNoGroup);
}

TEST(SelectionTest, PickGroupIResampBasics) {
  const Workload w = MakeWorkload(
      {3, 3, 500, 500},
      {QueryGroup{"small", 0, 2, 2.0}, QueryGroup{"big", 2, 4, 2.0}});
  const std::vector<double> noisy{3, 3, 500, 500};
  const std::vector<double> scales{50, 50};
  const std::vector<uint8_t> both{1, 1};
  const std::vector<uint8_t> none{0, 0};
  const std::vector<uint8_t> only_big{0, 1};
  EXPECT_EQ(PickGroupIResamp(w, noisy, scales, both, 1.0), 0u);
  EXPECT_EQ(PickGroupIResamp(w, noisy, scales, none, 1.0), kNoGroup);
  EXPECT_EQ(PickGroupIResamp(w, noisy, scales, only_big, 1.0), 1u);
}

}  // namespace
}  // namespace ireduct
