#include "algorithms/mechanism_registry.h"

#include <gtest/gtest.h>

#include <cmath>

#include "dp/workload.h"

namespace ireduct {
namespace {

TEST(MechanismSpecTest, ParsesBareName) {
  auto spec = MechanismSpec::Parse("ireduct");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->name(), "ireduct");
  EXPECT_TRUE(spec->params().empty());
  EXPECT_EQ(spec->ToString(), "ireduct");
}

TEST(MechanismSpecTest, ParsesParams) {
  auto spec =
      MechanismSpec::Parse("ireduct: lambda_steps=16 , engine=naive");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->name(), "ireduct");
  ASSERT_EQ(spec->params().size(), 2u);
  auto steps = spec->GetInt("lambda_steps", 0);
  ASSERT_TRUE(steps.ok());
  EXPECT_EQ(*steps, 16);
  EXPECT_EQ(spec->GetString("engine", ""), "naive");
  // Canonical rendering drops the whitespace and re-parses identically.
  EXPECT_EQ(spec->ToString(), "ireduct:lambda_steps=16,engine=naive");
  auto again = MechanismSpec::Parse(spec->ToString());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->ToString(), spec->ToString());
}

TEST(MechanismSpecTest, RejectsMalformedSpecs) {
  EXPECT_FALSE(MechanismSpec::Parse("").ok());
  EXPECT_FALSE(MechanismSpec::Parse(":epsilon=1").ok());
  EXPECT_FALSE(MechanismSpec::Parse("ireduct:epsilon").ok());
  EXPECT_FALSE(MechanismSpec::Parse("ireduct:epsilon=").ok());
  EXPECT_FALSE(MechanismSpec::Parse("ireduct:=1").ok());
  EXPECT_FALSE(MechanismSpec::Parse("bad name:epsilon=1").ok());
  // Duplicate keys are a typo, not an override chain.
  EXPECT_FALSE(MechanismSpec::Parse("ireduct:epsilon=1,epsilon=2").ok());
}

TEST(MechanismSpecTest, DoubleRoundTripIsExact) {
  const double value = 0.07 * 0.01;  // not exactly representable in decimal
  MechanismSpec spec("dwork");
  spec.Set("epsilon", value);
  auto parsed = MechanismSpec::Parse(spec.ToString());
  ASSERT_TRUE(parsed.ok());
  auto back = parsed->GetDouble("epsilon", 0.0);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, value);  // bitwise, not approximately
}

TEST(MechanismSpecTest, TypedGettersValidate) {
  auto spec = MechanismSpec::Parse("ireduct:epsilon=abc,lambda_steps=1.5");
  ASSERT_TRUE(spec.ok());
  EXPECT_FALSE(spec->GetDouble("epsilon", 0.0).ok());
  EXPECT_FALSE(spec->GetInt("lambda_steps", 0).ok());
  auto missing = spec->GetDouble("delta", 7.5);
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(*missing, 7.5);
}

TEST(MechanismSpecTest, SetDefaultKeepsExplicitValues) {
  MechanismSpec spec("dwork");
  spec.Set("epsilon", 2.0);
  spec.SetDefault("epsilon", 1.0);
  spec.SetDefault("other", "x");
  auto eps = spec.GetDouble("epsilon", 0.0);
  ASSERT_TRUE(eps.ok());
  EXPECT_EQ(*eps, 2.0);
  EXPECT_EQ(spec.GetString("other", ""), "x");
}

TEST(MechanismSpecTest, FromJsonParsesNameAndParams) {
  auto spec = MechanismSpec::FromJson(
      R"({"name": "ireduct", "params": {"lambda_steps": 16,)"
      R"( "engine": "naive", "epsilon": 0.01}})");
  ASSERT_TRUE(spec.ok()) << spec.status();
  EXPECT_EQ(spec->name(), "ireduct");
  auto steps = spec->GetInt("lambda_steps", 0);
  ASSERT_TRUE(steps.ok());
  EXPECT_EQ(*steps, 16);
  EXPECT_EQ(spec->GetString("engine", ""), "naive");
  auto eps = spec->GetDouble("epsilon", 0.0);
  ASSERT_TRUE(eps.ok());
  EXPECT_EQ(*eps, 0.01);
  // Integer-looking JSON numbers keep their spelling.
  EXPECT_EQ(spec->GetString("lambda_steps", ""), "16");
}

TEST(MechanismSpecTest, FromJsonRejectsBadDocuments) {
  EXPECT_FALSE(MechanismSpec::FromJson("[]").ok());
  EXPECT_FALSE(MechanismSpec::FromJson(R"({"params": {}})").ok());
  EXPECT_FALSE(MechanismSpec::FromJson(R"({"name": 3})").ok());
  EXPECT_FALSE(
      MechanismSpec::FromJson(R"({"name": "dwork", "extra": 1})").ok());
  EXPECT_FALSE(
      MechanismSpec::FromJson(R"({"name": "dwork", "params": []})").ok());
  EXPECT_FALSE(MechanismSpec::FromJson(
                   R"({"name": "dwork", "params": {"epsilon": [1]}})")
                   .ok());
  EXPECT_FALSE(MechanismSpec::FromJson(R"({"name": "dwork"} trailing)").ok());
}

TEST(MechanismRegistryTest, GlobalHasAtLeastSixMechanismsInPaperOrder) {
  const std::vector<std::string> names = MechanismRegistry::Global().Names();
  ASSERT_GE(names.size(), 6u);
  // Paper reporting order first (Section 6 tables).
  EXPECT_EQ(names[0], "oracle");
  EXPECT_EQ(names[1], "ireduct");
  EXPECT_EQ(names[2], "two_phase");
  EXPECT_EQ(names[3], "iresamp");
  EXPECT_EQ(names[4], "dwork");
  for (const std::string& name : names) {
    const Mechanism* m = MechanismRegistry::Global().Find(name);
    ASSERT_NE(m, nullptr) << name;
    const MechanismInfo info = m->Describe();
    EXPECT_EQ(info.name, name);
    EXPECT_FALSE(info.display_name.empty()) << name;
    EXPECT_FALSE(info.summary.empty()) << name;
  }
}

TEST(MechanismRegistryTest, GetUnknownNamesKnownMechanisms) {
  auto missing = MechanismRegistry::Global().Get("no_such_mechanism");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  EXPECT_NE(missing.status().message().find("ireduct"), std::string::npos);
}

TEST(MechanismRegistryTest, ValidateSpecRejectsUnknownKeysAndWrongName) {
  const Mechanism* dwork = MechanismRegistry::Global().Find("dwork");
  ASSERT_NE(dwork, nullptr);
  auto typo = MechanismSpec::Parse("dwork:epslion=1");
  ASSERT_TRUE(typo.ok());
  const Status bad_key = dwork->ValidateSpec(*typo);
  ASSERT_FALSE(bad_key.ok());
  // The error teaches the accepted keys.
  EXPECT_NE(bad_key.message().find("epsilon"), std::string::npos);
  auto wrong = MechanismSpec::Parse("ireduct");
  ASSERT_TRUE(wrong.ok());
  EXPECT_FALSE(dwork->ValidateSpec(*wrong).ok());
}

TEST(MechanismRegistryTest, TwoPhaseRejectsConflictingBudgetForms) {
  const Mechanism* two_phase = MechanismRegistry::Global().Find("two_phase");
  ASSERT_NE(two_phase, nullptr);
  auto both = MechanismSpec::Parse("two_phase:epsilon=1,epsilon1=0.1");
  ASSERT_TRUE(both.ok());
  EXPECT_FALSE(two_phase->ValidateSpec(*both).ok());
  auto half = MechanismSpec::Parse("two_phase:epsilon1=0.1");
  ASSERT_TRUE(half.ok());
  EXPECT_FALSE(two_phase->ValidateSpec(*half).ok());
  auto split = MechanismSpec::Parse("two_phase:epsilon1=0.1,epsilon2=0.9");
  ASSERT_TRUE(split.ok());
  EXPECT_TRUE(two_phase->ValidateSpec(*split).ok());
}

TEST(MechanismRegistryTest, IReductRejectsBothLambdaForms) {
  const Mechanism* ireduct = MechanismRegistry::Global().Find("ireduct");
  ASSERT_NE(ireduct, nullptr);
  auto both =
      MechanismSpec::Parse("ireduct:lambda_delta=1,lambda_steps=10");
  ASSERT_TRUE(both.ok());
  EXPECT_FALSE(ireduct->ValidateSpec(*both).ok());
}

TEST(MechanismRegistryTest, SetSpecDefaultOnlyFillsDeclaredKeys) {
  const Mechanism* dwork = MechanismRegistry::Global().Find("dwork");
  ASSERT_NE(dwork, nullptr);
  MechanismSpec spec("dwork");
  dwork->SetSpecDefault(&spec, "epsilon", 0.5);
  dwork->SetSpecDefault(&spec, "lambda_max", 100.0);  // not declared
  EXPECT_TRUE(spec.Has("epsilon"));
  EXPECT_FALSE(spec.Has("lambda_max"));
  // A later default never overwrites.
  dwork->SetSpecDefault(&spec, "epsilon", 9.0);
  auto eps = spec.GetDouble("epsilon", 0.0);
  ASSERT_TRUE(eps.ok());
  EXPECT_EQ(*eps, 0.5);
}

Workload SmallWorkload() {
  auto w = Workload::Create(
      {40.0, 60.0, 5.0, 95.0},
      {QueryGroup{"a", 0, 2, 1.0}, QueryGroup{"b", 2, 4, 1.0}});
  EXPECT_TRUE(w.ok());
  return std::move(*w);
}

TEST(MechanismRegistryTest, RunDispatchesBySpecText) {
  const Workload w = SmallWorkload();
  BitGen gen(3);
  auto out = MechanismRegistry::Global().Run(w, "dwork:epsilon=0.5", gen);
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(out->answers.size(), 4u);
  EXPECT_DOUBLE_EQ(out->epsilon_spent, 0.5);
  EXPECT_TRUE(out->is_private());
}

TEST(MechanismRegistryTest, RunRejectsInvalidSpecBeforeSampling) {
  const Workload w = SmallWorkload();
  BitGen gen(3);
  EXPECT_FALSE(
      MechanismRegistry::Global().Run(w, "dwork:bogus=1", gen).ok());
  EXPECT_FALSE(MechanismRegistry::Global().Run(w, "nope", gen).ok());
  EXPECT_FALSE(
      MechanismRegistry::Global()
          .Run(w, "ireduct:engine=warp_drive", gen)
          .ok());
}

TEST(MechanismRegistryTest, NonPrivateBaselinesSaySo) {
  const Workload w = SmallWorkload();
  for (const char* name : {"oracle", "proportional"}) {
    const Mechanism* m = MechanismRegistry::Global().Find(name);
    ASSERT_NE(m, nullptr) << name;
    EXPECT_EQ(m->Describe().privacy, MechanismPrivacy::kNonPrivate) << name;
    BitGen gen(5);
    auto out = m->Run(w, MechanismSpec(name), gen);
    ASSERT_TRUE(out.ok()) << name;
    EXPECT_FALSE(out->is_private()) << name;
    EXPECT_TRUE(std::isinf(out->epsilon_spent)) << name;
  }
}

}  // namespace
}  // namespace ireduct
