// Engine-parity and batched-mode tests for RunIReduct: the incremental
// engine must reproduce the naive reference bit for bit, and batched
// rounds must be deterministic in the thread count.
#include <gtest/gtest.h>

#include <cmath>
#include <span>
#include <vector>

#include "algorithms/ireduct.h"
#include "algorithms/selection.h"
#include "common/numeric.h"
#include "dp/workload.h"
#include "obs/metrics.h"

namespace ireduct {
namespace {

Workload ManyGroupWorkload(size_t num_groups) {
  std::vector<double> answers;
  std::vector<QueryGroup> groups;
  uint32_t begin = 0;
  for (uint32_t g = 0; g < num_groups; ++g) {
    const uint32_t size = 1 + g % 3;
    for (uint32_t i = 0; i < size; ++i) {
      answers.push_back(2.0 + 37.0 * ((g * 7 + i) % 29));
    }
    groups.push_back(QueryGroup{"g", begin, begin + size, 2.0});
    begin += size;
  }
  auto w = Workload::Create(std::move(answers), std::move(groups));
  EXPECT_TRUE(w.ok());
  return std::move(w).value();
}

IReductParams BaseParams() {
  IReductParams p;
  p.epsilon = 2.0;
  p.delta = 1.0;
  p.lambda_max = 200;
  p.lambda_delta = 5;
  return p;
}

void ExpectIdenticalOutputs(const MechanismOutput& a,
                            const MechanismOutput& b) {
  EXPECT_EQ(a.answers, b.answers);
  EXPECT_EQ(a.group_scales, b.group_scales);
  EXPECT_EQ(a.epsilon_spent, b.epsilon_spent);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.resample_calls, b.resample_calls);
}

TEST(IReductEngineParityTest, IncrementalMatchesNaiveBitForBit) {
  const Workload w = ManyGroupWorkload(40);
  for (uint64_t seed : {1, 2, 3, 4, 5}) {
    IReductParams naive = BaseParams();
    naive.engine = IReductEngine::kNaive;
    BitGen g1(seed), g2(seed);
    auto a = RunIReduct(w, naive, g1);
    auto b = RunIReduct(w, BaseParams(), g2);  // kAuto → incremental
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ExpectIdenticalOutputs(*a, *b);
  }
}

TEST(IReductEngineParityTest, MaxRelativeErrorObjectiveMatchesNaive) {
  const Workload w = ManyGroupWorkload(25);
  IReductParams p = BaseParams();
  p.objective = IReductObjective::kMaxRelativeError;
  IReductParams naive = p;
  naive.engine = IReductEngine::kNaive;
  BitGen g1(7), g2(7);
  auto a = RunIReduct(w, naive, g1);
  auto b = RunIReduct(w, p, g2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ExpectIdenticalOutputs(*a, *b);
}

TEST(IReductEngineParityTest, CustomSensitivityWorkloadFallsBackAndMatches) {
  // A custom (non-additive-typed) GS routes the tracker through full
  // recomputes; decisions still match the naive engine exactly.
  std::vector<double> answers{4, 9, 250, 800};
  std::vector<QueryGroup> groups{QueryGroup{"a", 0, 2, 2.0},
                                 QueryGroup{"b", 2, 4, 2.0}};
  auto custom = [](std::span<const double> scales) {
    KahanSum acc;
    for (double s : scales) acc.Add(2.0 / s);
    return acc.value();
  };
  auto w = Workload::CreateWithSensitivityFn(answers, groups, custom);
  ASSERT_TRUE(w.ok());
  IReductParams naive = BaseParams();
  naive.engine = IReductEngine::kNaive;
  BitGen g1(11), g2(11);
  auto a = RunIReduct(*w, naive, g1);
  auto b = RunIReduct(*w, BaseParams(), g2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ExpectIdenticalOutputs(*a, *b);
}

TEST(IReductBatchTest, ThreadCountDoesNotChangeResults) {
  const Workload w = ManyGroupWorkload(40);
  IReductParams p = BaseParams();
  p.batch_size = 4;
  p.num_threads = 1;
  IReductParams parallel = p;
  parallel.num_threads = 4;
  for (uint64_t seed : {21, 22, 23}) {
    BitGen g1(seed), g2(seed);
    auto serial = RunIReduct(w, p, g1);
    auto threaded = RunIReduct(w, parallel, g2);
    ASSERT_TRUE(serial.ok());
    ASSERT_TRUE(threaded.ok());
    ExpectIdenticalOutputs(*serial, *threaded);
    EXPECT_GT(serial->iterations, 0u);
  }
}

TEST(IReductBatchTest, BatchedRunRespectsBudgetAndScaleBounds) {
  const Workload w = ManyGroupWorkload(40);
  IReductParams p = BaseParams();
  p.batch_size = 8;
  p.num_threads = 3;
  BitGen gen(31);
  auto out = RunIReduct(w, p, gen);
  ASSERT_TRUE(out.ok());
  EXPECT_LE(w.GeneralizedSensitivity(out->group_scales),
            p.epsilon * (1 + 1e-12));
  EXPECT_EQ(out->epsilon_spent,
            w.GeneralizedSensitivity(out->group_scales));
  for (double s : out->group_scales) {
    EXPECT_GT(s, 0);
    EXPECT_LE(s, p.lambda_max);
  }
  // Budget is nearly exhausted: no group can absorb another λΔ.
  for (size_t g = 0; g < w.num_groups(); ++g) {
    std::vector<double> scales = out->group_scales;
    if (scales[g] <= p.lambda_delta) continue;
    scales[g] -= p.lambda_delta;
    EXPECT_GT(w.GeneralizedSensitivity(scales), p.epsilon);
  }
}

TEST(IReductBatchTest, BatchedModeUsesSubstreamsDeterministically) {
  // Two identical batched runs at the same seed are identical even though
  // each round forks per-group substreams.
  const Workload w = ManyGroupWorkload(30);
  IReductParams p = BaseParams();
  p.batch_size = 3;
  p.num_threads = 2;
  BitGen g1(41), g2(41);
  auto a = RunIReduct(w, p, g1);
  auto b = RunIReduct(w, p, g2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ExpectIdenticalOutputs(*a, *b);
}

TEST(IReductBatchTest, ValidatesBatchParams) {
  const Workload w = ManyGroupWorkload(4);
  BitGen gen(1);
  IReductParams p = BaseParams();
  p.batch_size = 0;
  EXPECT_FALSE(RunIReduct(w, p, gen).ok());
  p = BaseParams();
  p.num_threads = 0;
  EXPECT_FALSE(RunIReduct(w, p, gen).ok());
}

#if IREDUCT_ENABLE_TRACING
TEST(IReductBatchTest, ExercisesIncrementalInstrumentation) {
  const Workload w = ManyGroupWorkload(20);
  auto& registry = obs::MetricsRegistry::Global();
  const uint64_t hits_before =
      registry.counter("ireduct.gs_incremental_hits").value();
  BitGen gen(51);
  auto out = RunIReduct(w, BaseParams(), gen);
  ASSERT_TRUE(out.ok());
  EXPECT_GT(registry.counter("ireduct.gs_incremental_hits").value(),
            hits_before);
}
#endif  // IREDUCT_ENABLE_TRACING

}  // namespace
}  // namespace ireduct
