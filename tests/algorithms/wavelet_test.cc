// The wavelet (Haar-strategy) mechanism, now served by the shared
// strategy runner: registry spec "wavelet:epsilon=..." routes through
// Strategy::Haar + RunStrategyMechanism. HaarTransform/HaarReconstruct
// moved to queries/strategy.h with the refactor; the Privelet claims
// (per-level weights, unbiasedness, polylog range variance) must hold
// unchanged. Bit-parity with the deleted bespoke publisher is locked by
// strategy_golden_test.cc.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "algorithms/mechanism_registry.h"
#include "common/random.h"
#include "dp/workload.h"
#include "eval/stats.h"
#include "queries/strategy.h"

namespace ireduct {
namespace {

Result<MechanismOutput> PublishWavelet(const std::vector<double>& counts,
                                       const std::string& spec, BitGen& gen) {
  IREDUCT_ASSIGN_OR_RETURN(Workload w, Workload::PerQuery(counts, 1.0));
  return MechanismRegistry::Global().Run(w, spec, gen);
}

TEST(WaveletTest, TransformValidatesLength) {
  const std::vector<double> not_pow2{1, 2, 3};
  EXPECT_FALSE(HaarTransform(not_pow2).ok());
  EXPECT_FALSE(HaarReconstruct(not_pow2).ok());
  const std::vector<double> empty;
  EXPECT_FALSE(HaarTransform(empty).ok());
}

TEST(WaveletTest, TransformKnownValues) {
  // [4, 2, 5, 1]: average 3; root detail = (3 - 3)/2 = 0;
  // left detail = (4-2)/2 = 1; right detail = (5-1)/2 = 2.
  const std::vector<double> values{4, 2, 5, 1};
  auto coeffs = HaarTransform(values);
  ASSERT_TRUE(coeffs.ok());
  EXPECT_DOUBLE_EQ((*coeffs)[0], 3);
  EXPECT_DOUBLE_EQ((*coeffs)[1], 0);
  EXPECT_DOUBLE_EQ((*coeffs)[2], 1);
  EXPECT_DOUBLE_EQ((*coeffs)[3], 2);
}

TEST(WaveletTest, TransformRoundTripsExactly) {
  BitGen gen(1);
  for (size_t m : {1u, 2u, 8u, 64u}) {
    std::vector<double> values(m);
    for (double& v : values) v = gen.Uniform(-50, 50);
    auto coeffs = HaarTransform(values);
    ASSERT_TRUE(coeffs.ok());
    auto back = HaarReconstruct(*coeffs);
    ASSERT_TRUE(back.ok());
    for (size_t i = 0; i < m; ++i) {
      EXPECT_NEAR((*back)[i], values[i], 1e-9) << "m=" << m << " i=" << i;
    }
  }
}

TEST(WaveletTest, NaturalMultipliersArePriveletWeights) {
  // Per-row noise multipliers 1/W(c): the average row and the root
  // detail get 1/m, each detail level below doubles the weight.
  const Strategy haar = Strategy::Haar(8);
  ASSERT_EQ(haar.num_rows(), 8u);
  const std::vector<double> expected{1.0 / 8, 1.0 / 8, 1.0 / 4, 1.0 / 4,
                                     1.0 / 2, 1.0 / 2, 1.0 / 2, 1.0 / 2};
  for (size_t j = 0; j < 8; ++j) {
    EXPECT_DOUBLE_EQ(haar.row_multipliers()[j], expected[j]) << "row " << j;
  }
}

TEST(WaveletTest, PublishValidates) {
  BitGen gen(2);
  const std::vector<double> counts{1, 2};
  EXPECT_FALSE(PublishWavelet(counts, "wavelet:epsilon=0", gen).ok());
  const Strategy haar = Strategy::Haar(2);
  // Wrong multiplier count and non-positive epsilon are rejected.
  EXPECT_FALSE(haar.Publish(counts, 1.0, 2.0, {}, gen).ok());
  EXPECT_FALSE(
      haar.Publish(counts, 0.0, 2.0, haar.row_multipliers(), gen).ok());
}

TEST(WaveletTest, PublishPadsAndUnpads) {
  BitGen gen(3);
  const std::vector<double> counts{5, 6, 7, 8, 9};
  auto out = PublishWavelet(counts, "wavelet:epsilon=2", gen);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->answers.size(), 5u);
  EXPECT_DOUBLE_EQ(out->epsilon_spent, 2.0);
}

TEST(WaveletTest, EstimatesAreUnbiased) {
  const std::vector<double> counts{400, 100, 50, 10, 5, 2, 1, 0};
  std::vector<double> bin0, range;
  BitGen gen(4);
  for (int t = 0; t < 5000; ++t) {
    auto out = PublishWavelet(counts, "wavelet:epsilon=1", gen);
    ASSERT_TRUE(out.ok());
    bin0.push_back(out->answers[0]);
    range.push_back(out->answers[1] + out->answers[2] + out->answers[3] +
                    out->answers[4]);
  }
  EXPECT_NEAR(Summarize(bin0).mean, 400, 2.5);
  EXPECT_NEAR(Summarize(range).mean, 165, 2.5);
}

TEST(WaveletTest, WideRangesBeatFlatLaplace) {
  // The Privelet claim: range variance is polylog in m, not linear.
  const size_t bins = 128;
  const std::vector<double> counts(bins, 50.0);
  const double epsilon = 0.5;
  std::vector<double> wavelet_err, flat_err;
  BitGen gen(6);
  for (int t = 0; t < 1200; ++t) {
    auto out = PublishWavelet(counts, "wavelet:epsilon=0.5", gen);
    ASSERT_TRUE(out.ok());
    double range = 0;
    for (size_t b = 0; b + 1 < bins; ++b) range += out->answers[b];
    wavelet_err.push_back(std::fabs(range - 50.0 * (bins - 1)));
    double flat = 0;
    for (size_t b = 0; b + 1 < bins; ++b) {
      flat += 50.0 + gen.Laplace(2.0 / epsilon);
    }
    flat_err.push_back(std::fabs(flat - 50.0 * (bins - 1)));
  }
  EXPECT_LT(Summarize(wavelet_err).mean, Summarize(flat_err).mean);
}

TEST(WaveletTest, DeterministicGivenSeed) {
  const std::vector<double> counts{10, 20, 30, 40};
  BitGen g1(7), g2(7);
  auto a = PublishWavelet(counts, "wavelet:epsilon=1", g1);
  auto b = PublishWavelet(counts, "wavelet:epsilon=1", g2);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->answers, b->answers);
}

}  // namespace
}  // namespace ireduct
