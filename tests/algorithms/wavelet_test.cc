#include "algorithms/wavelet.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "eval/stats.h"

namespace ireduct {
namespace {

TEST(WaveletTest, TransformValidatesLength) {
  const std::vector<double> not_pow2{1, 2, 3};
  EXPECT_FALSE(HaarTransform(not_pow2).ok());
  EXPECT_FALSE(HaarReconstruct(not_pow2).ok());
  const std::vector<double> empty;
  EXPECT_FALSE(HaarTransform(empty).ok());
}

TEST(WaveletTest, TransformKnownValues) {
  // [4, 2, 5, 1]: average 3; root detail = (3 - 3)/2 = 0;
  // left detail = (4-2)/2 = 1; right detail = (5-1)/2 = 2.
  const std::vector<double> values{4, 2, 5, 1};
  auto coeffs = HaarTransform(values);
  ASSERT_TRUE(coeffs.ok());
  EXPECT_DOUBLE_EQ((*coeffs)[0], 3);
  EXPECT_DOUBLE_EQ((*coeffs)[1], 0);
  EXPECT_DOUBLE_EQ((*coeffs)[2], 1);
  EXPECT_DOUBLE_EQ((*coeffs)[3], 2);
}

TEST(WaveletTest, TransformRoundTripsExactly) {
  BitGen gen(1);
  for (size_t m : {1u, 2u, 8u, 64u}) {
    std::vector<double> values(m);
    for (double& v : values) v = gen.Uniform(-50, 50);
    auto coeffs = HaarTransform(values);
    ASSERT_TRUE(coeffs.ok());
    auto back = HaarReconstruct(*coeffs);
    ASSERT_TRUE(back.ok());
    for (size_t i = 0; i < m; ++i) {
      EXPECT_NEAR((*back)[i], values[i], 1e-9) << "m=" << m << " i=" << i;
    }
  }
}

TEST(WaveletTest, PublishValidates) {
  BitGen gen(2);
  EXPECT_FALSE(WaveletHistogram::Publish({}, WaveletParams{1.0}, gen).ok());
  const std::vector<double> counts{1, 2};
  EXPECT_FALSE(
      WaveletHistogram::Publish(counts, WaveletParams{0}, gen).ok());
}

TEST(WaveletTest, PublishPadsAndUnpads) {
  BitGen gen(3);
  const std::vector<double> counts{5, 6, 7, 8, 9};
  auto h = WaveletHistogram::Publish(counts, WaveletParams{2.0}, gen);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->num_bins(), 5u);
  EXPECT_EQ(h->BinCounts().size(), 5u);
  EXPECT_DOUBLE_EQ(h->epsilon_spent(), 2.0);
}

TEST(WaveletTest, EstimatesAreUnbiased) {
  const std::vector<double> counts{400, 100, 50, 10, 5, 2, 1, 0};
  std::vector<double> bin0, range;
  BitGen gen(4);
  for (int t = 0; t < 5000; ++t) {
    auto h = WaveletHistogram::Publish(counts, WaveletParams{1.0}, gen);
    ASSERT_TRUE(h.ok());
    bin0.push_back(h->BinCount(0));
    range.push_back(*h->RangeCount(1, 4));
  }
  EXPECT_NEAR(Summarize(bin0).mean, 400, 2.5);
  EXPECT_NEAR(Summarize(range).mean, 165, 2.5);
}

TEST(WaveletTest, RangeCountsMatchLeafSums) {
  BitGen gen(5);
  const std::vector<double> counts{3, 1, 4, 1, 5, 9, 2, 6, 5, 3};
  auto h = WaveletHistogram::Publish(counts, WaveletParams{0.7}, gen);
  ASSERT_TRUE(h.ok());
  double expected = 0;
  for (size_t b = 2; b <= 7; ++b) expected += h->BinCount(b);
  auto range = h->RangeCount(2, 7);
  ASSERT_TRUE(range.ok());
  EXPECT_NEAR(*range, expected, 1e-9);
  EXPECT_FALSE(h->RangeCount(5, 4).ok());
  EXPECT_FALSE(h->RangeCount(0, 10).ok());
}

TEST(WaveletTest, WideRangesBeatFlatLaplace) {
  // The Privelet claim: range variance is polylog in m, not linear.
  const size_t bins = 128;
  const std::vector<double> counts(bins, 50.0);
  const double epsilon = 0.5;
  std::vector<double> wavelet_err, flat_err;
  BitGen gen(6);
  for (int t = 0; t < 1200; ++t) {
    auto h = WaveletHistogram::Publish(counts, WaveletParams{epsilon}, gen);
    ASSERT_TRUE(h.ok());
    wavelet_err.push_back(
        std::fabs(*h->RangeCount(0, bins - 2) - 50.0 * (bins - 1)));
    double flat = 0;
    for (size_t b = 0; b + 1 < bins; ++b) {
      flat += 50.0 + gen.Laplace(2.0 / epsilon);
    }
    flat_err.push_back(std::fabs(flat - 50.0 * (bins - 1)));
  }
  EXPECT_LT(Summarize(wavelet_err).mean, Summarize(flat_err).mean);
}

TEST(WaveletTest, DeterministicGivenSeed) {
  const std::vector<double> counts{10, 20, 30, 40};
  BitGen g1(7), g2(7);
  auto a = WaveletHistogram::Publish(counts, WaveletParams{1.0}, g1);
  auto b = WaveletHistogram::Publish(counts, WaveletParams{1.0}, g2);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->BinCounts(), b->BinCounts());
}

}  // namespace
}  // namespace ireduct
