#include "algorithms/ireduct.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "algorithms/dwork.h"
#include "algorithms/selection.h"
#include "eval/metrics.h"

namespace ireduct {
namespace {

Workload SkewedWorkload() {
  auto r = Workload::Create(
      {2, 3, 4, 5000, 6000, 7000},
      {QueryGroup{"tiny", 0, 3, 2.0}, QueryGroup{"large", 3, 6, 2.0}});
  EXPECT_TRUE(r.ok());
  return std::move(r).value();
}

IReductParams DefaultParams() {
  // λmax = |T|/10 with |T| ≈ 10000; λΔ a 1/100 step for test speed.
  IReductParams p;
  p.epsilon = 0.2;
  p.delta = 1.0;
  p.lambda_max = 1000;
  p.lambda_delta = 10;
  return p;
}

TEST(IReductTest, ValidatesParameters) {
  BitGen gen(1);
  const Workload w = SkewedWorkload();
  IReductParams p = DefaultParams();
  p.epsilon = 0;
  EXPECT_FALSE(RunIReduct(w, p, gen).ok());
  p = DefaultParams();
  p.delta = 0;
  EXPECT_FALSE(RunIReduct(w, p, gen).ok());
  p = DefaultParams();
  p.lambda_delta = p.lambda_max;
  EXPECT_FALSE(RunIReduct(w, p, gen).ok());
  p = DefaultParams();
  p.lambda_delta = 0;
  EXPECT_FALSE(RunIReduct(w, p, gen).ok());
}

TEST(IReductTest, RefusesWhenLambdaMaxAlreadyTooNoisy) {
  // Figure 4 line 3: GS at λmax exceeding ε means no acceptable release.
  BitGen gen(2);
  const Workload w = SkewedWorkload();
  IReductParams p = DefaultParams();
  p.epsilon = 0.001;  // GS(λmax) = 4/1000 = 0.004 > 0.001
  auto out = RunIReduct(w, p, gen);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kPrivacyBudgetExceeded);
}

TEST(IReductTest, FinalAllocationRespectsBudget) {
  BitGen gen(3);
  const Workload w = SkewedWorkload();
  auto out = RunIReduct(w, DefaultParams(), gen);
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_LE(w.GeneralizedSensitivity(out->group_scales),
            DefaultParams().epsilon * (1 + 1e-12));
  EXPECT_LE(out->epsilon_spent, DefaultParams().epsilon * (1 + 1e-12));
  for (double s : out->group_scales) {
    EXPECT_GT(s, 0);
    EXPECT_LE(s, DefaultParams().lambda_max);
  }
}

TEST(IReductTest, ExhaustsBudgetNearly) {
  // The loop should keep reducing until no group can absorb another λΔ, so
  // the final GS must be within one step of ε.
  BitGen gen(4);
  const Workload w = SkewedWorkload();
  const IReductParams p = DefaultParams();
  auto out = RunIReduct(w, p, gen);
  ASSERT_TRUE(out.ok());
  // Undoing one λΔ step on any group would overshoot ε.
  for (size_t g = 0; g < w.num_groups(); ++g) {
    std::vector<double> scales = out->group_scales;
    if (scales[g] <= p.lambda_delta) continue;
    scales[g] -= p.lambda_delta;
    EXPECT_GT(w.GeneralizedSensitivity(scales), p.epsilon)
        << "group " << g << " could still be reduced";
  }
}

TEST(IReductTest, SmallGroupGetsSmallerScale) {
  BitGen gen(5);
  const Workload w = SkewedWorkload();
  // Fine λΔ steps: with coarse steps the last admissible reduction can
  // quantize both groups onto the same scale (see the λΔ ablation bench).
  IReductParams p = DefaultParams();
  p.lambda_delta = 1;
  auto out = RunIReduct(w, p, gen);
  ASSERT_TRUE(out.ok());
  EXPECT_LT(out->group_scales[0], out->group_scales[1]);
  EXPECT_GT(out->iterations, 0u);
  EXPECT_GT(out->resample_calls, 0u);
}

TEST(IReductTest, BeatsDworkOnSkewedCounts) {
  const Workload w = SkewedWorkload();
  const double delta = 1.0;
  double ireduct_err = 0, dwork_err = 0;
  BitGen gen(6);
  const int trials = 150;
  for (int t = 0; t < trials; ++t) {
    auto ir = RunIReduct(w, DefaultParams(), gen);
    auto d = RunDwork(w, DworkParams{DefaultParams().epsilon}, gen);
    ASSERT_TRUE(ir.ok());
    ASSERT_TRUE(d.ok());
    ireduct_err += OverallError(w, ir->answers, delta);
    dwork_err += OverallError(w, d->answers, delta);
  }
  EXPECT_LT(ireduct_err, dwork_err);
}

TEST(IReductTest, DeterministicGivenSeed) {
  const Workload w = SkewedWorkload();
  BitGen g1(7), g2(7);
  auto a = RunIReduct(w, DefaultParams(), g1);
  auto b = RunIReduct(w, DefaultParams(), g2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->answers, b->answers);
  EXPECT_EQ(a->group_scales, b->group_scales);
}

TEST(IReductTest, CustomPickQueriesHookIsUsed) {
  // A hook that refuses immediately leaves every group at λmax.
  const Workload w = SkewedWorkload();
  BitGen gen(8);
  auto out = RunIReduct(
      w, DefaultParams(), gen,
      [](const Workload&, std::span<const double>, std::span<const double>,
         std::span<const uint8_t>, double, double) { return kNoGroup; });
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->iterations, 0u);
  for (double s : out->group_scales) {
    EXPECT_DOUBLE_EQ(s, DefaultParams().lambda_max);
  }
}

TEST(IReductTest, RoundRobinHookStillRespectsBudget) {
  // Any private PickQueries choice must keep the invariants.
  const Workload w = SkewedWorkload();
  BitGen gen(9);
  size_t next = 0;
  auto round_robin = [&next](const Workload& wl, std::span<const double>,
                             std::span<const double> scales,
                             std::span<const uint8_t> active, double,
                             double lambda_delta) -> size_t {
    for (size_t tries = 0; tries < wl.num_groups(); ++tries) {
      const size_t g = (next++) % wl.num_groups();
      if (active[g] && scales[g] > lambda_delta) return g;
    }
    return kNoGroup;
  };
  auto out = RunIReduct(w, DefaultParams(), gen, round_robin);
  ASSERT_TRUE(out.ok());
  EXPECT_LE(w.GeneralizedSensitivity(out->group_scales),
            DefaultParams().epsilon * (1 + 1e-12));
}

TEST(IReductTest, ExactCouplingReducerMatchesInvariants) {
  // The kExactCoupling resampler (extension) must satisfy the same budget
  // and ordering invariants as the paper's NoiseDown.
  const Workload w = SkewedWorkload();
  IReductParams p = DefaultParams();
  p.lambda_delta = 1;
  p.reducer = NoiseReducer::kExactCoupling;
  BitGen gen(12);
  auto out = RunIReduct(w, p, gen);
  ASSERT_TRUE(out.ok());
  EXPECT_LE(w.GeneralizedSensitivity(out->group_scales),
            p.epsilon * (1 + 1e-12));
  EXPECT_LT(out->group_scales[0], out->group_scales[1]);
}

TEST(IReductTest, SingleGroupConvergesToBudgetScale) {
  // One group with coefficient 2: final λ should approach 2/ε from above.
  auto w = Workload::Create({10, 20}, {QueryGroup{"M", 0, 2, 2.0}});
  ASSERT_TRUE(w.ok());
  IReductParams p;
  p.epsilon = 0.1;
  p.delta = 1.0;
  p.lambda_max = 1000;
  p.lambda_delta = 1;
  BitGen gen(10);
  auto out = RunIReduct(*w, p, gen);
  ASSERT_TRUE(out.ok());
  const double floor = 2.0 / p.epsilon;  // 20
  EXPECT_GE(out->group_scales[0], floor - 1e-9);
  EXPECT_LT(out->group_scales[0], floor + p.lambda_delta + 1e-9);
}

}  // namespace
}  // namespace ireduct
