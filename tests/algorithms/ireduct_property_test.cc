// Parameterized invariant sweep for iReduct across privacy budgets,
// starting scales, reduction resolutions and both resamplers: the Figure 4
// loop must always terminate with a budget-feasible, budget-saturating,
// λmax-bounded allocation, and tighter budgets must never produce smaller
// final scales.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "algorithms/ireduct.h"
#include "eval/metrics.h"

namespace ireduct {
namespace {

struct SweepCase {
  double epsilon;
  double lambda_max_factor;  // λmax = factor · S(Q)/ε
  int steps;
  NoiseReducer reducer;
};

std::string CaseName(const testing::TestParamInfo<SweepCase>& info) {
  auto fmt = [](double v) {
    std::string s = std::to_string(v);
    for (char& c : s) {
      if (c == '.' || c == '-') c = '_';
    }
    return s;
  };
  return "eps" + fmt(info.param.epsilon) + "_f" +
         fmt(info.param.lambda_max_factor) + "_s" +
         std::to_string(info.param.steps) +
         (info.param.reducer == NoiseReducer::kPaperNoiseDown ? "_paper"
                                                              : "_coupled");
}

class IReductSweepTest : public testing::TestWithParam<SweepCase> {
 protected:
  static Workload MakeWorkload() {
    auto w = Workload::Create(
        {3, 5, 8, 200, 350, 7000, 9000, 11000},
        {QueryGroup{"tiny", 0, 3, 2.0}, QueryGroup{"mid", 3, 5, 2.0},
         QueryGroup{"large", 5, 8, 2.0}});
    EXPECT_TRUE(w.ok());
    return std::move(w).value();
  }

  IReductParams Params() const {
    const SweepCase& c = GetParam();
    IReductParams p;
    p.epsilon = c.epsilon;
    p.delta = 2.0;
    p.lambda_max =
        c.lambda_max_factor * MakeWorkload().Sensitivity() / c.epsilon;
    p.lambda_delta = p.lambda_max / c.steps;
    p.reducer = c.reducer;
    return p;
  }
};

TEST_P(IReductSweepTest, TerminatesWithFeasibleAllocation) {
  const Workload w = MakeWorkload();
  const IReductParams p = Params();
  BitGen gen(101);
  auto out = RunIReduct(w, p, gen);
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_LE(w.GeneralizedSensitivity(out->group_scales),
            p.epsilon * (1 + 1e-12));
  for (double s : out->group_scales) {
    EXPECT_GT(s, 0);
    EXPECT_LE(s, p.lambda_max * (1 + 1e-12));
  }
}

TEST_P(IReductSweepTest, BudgetIsSaturatedUpToOneStep) {
  const Workload w = MakeWorkload();
  const IReductParams p = Params();
  BitGen gen(202);
  auto out = RunIReduct(w, p, gen);
  ASSERT_TRUE(out.ok());
  // No single further λΔ step fits on any group.
  for (size_t g = 0; g < w.num_groups(); ++g) {
    std::vector<double> scales = out->group_scales;
    if (scales[g] <= p.lambda_delta) continue;
    scales[g] -= p.lambda_delta;
    EXPECT_GT(w.GeneralizedSensitivity(scales), p.epsilon)
        << "group " << g << " still reducible";
  }
}

TEST_P(IReductSweepTest, AnswersStayNearTruthAtFinalScales) {
  const Workload w = MakeWorkload();
  const IReductParams p = Params();
  BitGen gen(303);
  auto out = RunIReduct(w, p, gen);
  ASSERT_TRUE(out.ok());
  // Every answer within 20 final noise scales of the truth (overwhelming
  // probability; catches scale-bookkeeping bugs, not noise).
  for (size_t i = 0; i < w.num_queries(); ++i) {
    const double scale = out->group_scales[w.group_of(i)];
    EXPECT_LT(std::fabs(out->answers[i] - w.true_answer(i)), 20 * scale)
        << "query " << i;
  }
}

TEST_P(IReductSweepTest, ResampleAccountingIsConsistent) {
  const Workload w = MakeWorkload();
  const IReductParams p = Params();
  BitGen gen(404);
  auto out = RunIReduct(w, p, gen);
  ASSERT_TRUE(out.ok());
  // Each iteration resamples exactly one group's cells, so the number of
  // resample calls is bounded by iterations times the largest group and
  // bounded below by iterations (every group has >= 1 cell).
  uint32_t largest = 0;
  for (const QueryGroup& g : w.groups()) {
    largest = std::max(largest, g.size());
  }
  EXPECT_GE(out->resample_calls, out->iterations);
  EXPECT_LE(out->resample_calls, out->iterations * largest);
  // Total scale reduction implies the iteration count.
  double total_reduction_steps = 0;
  for (double s : out->group_scales) {
    total_reduction_steps += (p.lambda_max - s) / p.lambda_delta;
  }
  EXPECT_NEAR(static_cast<double>(out->iterations), total_reduction_steps,
              0.5 * w.num_groups());
}

INSTANTIATE_TEST_SUITE_P(
    ParameterGrid, IReductSweepTest,
    testing::Values(
        SweepCase{0.05, 2.0, 50, NoiseReducer::kPaperNoiseDown},
        SweepCase{0.05, 2.0, 50, NoiseReducer::kExactCoupling},
        SweepCase{0.5, 4.0, 100, NoiseReducer::kPaperNoiseDown},
        SweepCase{0.5, 4.0, 100, NoiseReducer::kExactCoupling},
        SweepCase{1.0, 10.0, 300, NoiseReducer::kPaperNoiseDown},
        SweepCase{0.01, 1.5, 20, NoiseReducer::kPaperNoiseDown},
        SweepCase{2.0, 8.0, 500, NoiseReducer::kExactCoupling}),
    CaseName);

}  // namespace
}  // namespace ireduct
