#include "algorithms/iresamp.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "algorithms/ireduct.h"
#include "eval/metrics.h"
#include "eval/stats.h"

namespace ireduct {
namespace {

Workload SkewedWorkload() {
  auto r = Workload::Create(
      {2, 3, 4, 5000, 6000, 7000},
      {QueryGroup{"tiny", 0, 3, 2.0}, QueryGroup{"large", 3, 6, 2.0}});
  EXPECT_TRUE(r.ok());
  return std::move(r).value();
}

IResampParams DefaultParams() {
  IResampParams p;
  p.epsilon = 0.2;
  p.delta = 1.0;
  p.lambda_max = 1000;
  return p;
}

TEST(IResampTest, ValidatesParameters) {
  BitGen gen(1);
  const Workload w = SkewedWorkload();
  IResampParams p = DefaultParams();
  p.epsilon = 0;
  EXPECT_FALSE(RunIResamp(w, p, gen).ok());
  p = DefaultParams();
  p.delta = -1;
  EXPECT_FALSE(RunIResamp(w, p, gen).ok());
  p = DefaultParams();
  p.lambda_max = 0;
  EXPECT_FALSE(RunIResamp(w, p, gen).ok());
}

TEST(IResampTest, RefusesWhenLambdaMaxAlreadyTooNoisy) {
  BitGen gen(2);
  const Workload w = SkewedWorkload();
  IResampParams p = DefaultParams();
  p.epsilon = 0.001;
  auto out = RunIResamp(w, p, gen);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kPrivacyBudgetExceeded);
}

TEST(IResampTest, EffectiveScalesRespectBudget) {
  BitGen gen(3);
  const Workload w = SkewedWorkload();
  auto out = RunIResamp(w, DefaultParams(), gen);
  ASSERT_TRUE(out.ok());
  EXPECT_LE(out->epsilon_spent, DefaultParams().epsilon * (1 + 1e-12));
  EXPECT_LE(w.GeneralizedSensitivity(out->group_scales),
            DefaultParams().epsilon * (1 + 1e-12));
  EXPECT_GT(out->iterations, 0u);
}

TEST(IResampTest, HalvingCannotBeContinuedWithinBudget) {
  // At termination, halving any group's nominal scale must overshoot ε.
  // Effective scale after k halvings of group g: 1/(2/λ_g - 1/λmax); we
  // verify via epsilon_spent being within a halving step of ε.
  BitGen gen(4);
  const Workload w = SkewedWorkload();
  const IResampParams p = DefaultParams();
  auto out = RunIResamp(w, p, gen);
  ASSERT_TRUE(out.ok());
  // Another halving of the cheaper group adds at least
  // min_g coeff/λ'_g to GS; make sure that would exceed ε.
  double min_step = std::numeric_limits<double>::infinity();
  for (size_t g = 0; g < w.num_groups(); ++g) {
    // Halving nominal λ doubles 2/λ: new effective inverse = old inverse +
    // 2/λ_nominal >= old inverse + 1/λ'_g (since 1/λ' = 2/λ - 1/λmax).
    min_step = std::fmin(min_step, w.group(g).sensitivity_coeff /
                                       out->group_scales[g]);
  }
  EXPECT_GT(out->epsilon_spent + min_step, p.epsilon);
}

TEST(IResampTest, CombinedEstimateUsesAllSamples) {
  // A single group halved k times has combined variance below the variance
  // of the last raw sample alone.
  auto w = Workload::Create({1000}, {QueryGroup{"q", 0, 1, 1.0}});
  ASSERT_TRUE(w.ok());
  IResampParams p;
  p.epsilon = 0.05;
  p.delta = 1.0;
  p.lambda_max = 500;
  BitGen gen(5);
  std::vector<double> estimates;
  double final_nominal_var = 0;
  for (int t = 0; t < 20'000; ++t) {
    auto out = RunIResamp(*w, p, gen);
    ASSERT_TRUE(out.ok());
    estimates.push_back(out->answers[0]);
    // Effective scale reported; recover nominal λ = 2/(1/λ' + 1/λmax).
    const double lp = out->group_scales[0];
    const double nominal = 2.0 / (1.0 / lp + 1.0 / p.lambda_max);
    final_nominal_var = 2 * nominal * nominal;
  }
  const SampleSummary s = Summarize(estimates);
  EXPECT_NEAR(s.mean, 1000.0, 3.0);
  EXPECT_LT(s.variance, final_nominal_var);
}

TEST(IResampTest, NoisierThanIReductAtEqualBudget) {
  // Appendix A's point: for the same ε, iReduct's final scales are about
  // half of iResamp's effective scales, so iReduct's error is lower.
  const Workload w = SkewedWorkload();
  double iresamp_err = 0, ireduct_err = 0;
  BitGen gen(6);
  IReductParams irp;
  irp.epsilon = 0.2;
  irp.delta = 1.0;
  irp.lambda_max = 1000;
  irp.lambda_delta = 5;
  const int trials = 150;
  for (int t = 0; t < trials; ++t) {
    auto rs = RunIResamp(w, DefaultParams(), gen);
    auto ir = RunIReduct(w, irp, gen);
    ASSERT_TRUE(rs.ok());
    ASSERT_TRUE(ir.ok());
    iresamp_err += OverallError(w, rs->answers, 1.0);
    ireduct_err += OverallError(w, ir->answers, 1.0);
  }
  EXPECT_LT(ireduct_err, iresamp_err);
}

TEST(IResampTest, DeterministicGivenSeed) {
  const Workload w = SkewedWorkload();
  BitGen g1(7), g2(7);
  auto a = RunIResamp(w, DefaultParams(), g1);
  auto b = RunIResamp(w, DefaultParams(), g2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->answers, b->answers);
}

}  // namespace
}  // namespace ireduct
