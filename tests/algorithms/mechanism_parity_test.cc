// Golden bit-parity: dispatching a mechanism through the registry must
// produce a MechanismOutput byte-identical to calling the underlying free
// function directly with the same parameters and seed. This is what makes
// the two entry styles interchangeable — a bench or service switched to
// spec dispatch reproduces its pre-registry numbers exactly.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "algorithms/dwork.h"
#include "algorithms/geometric.h"
#include "algorithms/ireduct.h"
#include "algorithms/iresamp.h"
#include "algorithms/mechanism_registry.h"
#include "algorithms/oracle.h"
#include "algorithms/proportional.h"
#include "algorithms/strategy_mechanism.h"
#include "algorithms/two_phase.h"
#include "common/random.h"
#include "dp/workload.h"

namespace ireduct {
namespace {

constexpr uint64_t kSeeds[] = {11, 12, 13};

Workload TestWorkload() {
  // Three groups with skewed counts (small cells exercise the relative-
  // error machinery) and non-unit sensitivity coefficients.
  auto w = Workload::Create(
      {4.0, 120.0, 76.0, 1.0, 900.0, 33.0, 210.0, 8.0, 55.0},
      {QueryGroup{"g0", 0, 3, 1.0}, QueryGroup{"g1", 3, 6, 2.0},
       QueryGroup{"g2", 6, 9, 1.0}});
  EXPECT_TRUE(w.ok());
  return std::move(*w);
}

void ExpectBitIdentical(const std::vector<double>& direct,
                        const std::vector<double>& registry,
                        const std::string& what) {
  ASSERT_EQ(direct.size(), registry.size()) << what;
  if (!direct.empty()) {
    EXPECT_EQ(std::memcmp(direct.data(), registry.data(),
                          direct.size() * sizeof(double)),
              0)
        << what << ": payload bits differ";
  }
}

void ExpectParity(const MechanismOutput& direct,
                  const MechanismOutput& registry, const std::string& what) {
  ExpectBitIdentical(direct.answers, registry.answers, what + " answers");
  ExpectBitIdentical(direct.group_scales, registry.group_scales,
                     what + " group_scales");
  EXPECT_EQ(std::memcmp(&direct.epsilon_spent, &registry.epsilon_spent,
                        sizeof(double)),
            0)
      << what << " epsilon_spent";
  EXPECT_EQ(direct.iterations, registry.iterations) << what;
  EXPECT_EQ(direct.resample_calls, registry.resample_calls) << what;
}

// Runs `spec_text` through the registry and the given direct call at the
// same seed, for every golden seed.
template <typename DirectFn>
void CheckSpecAgainst(const std::string& spec_text, DirectFn direct_fn) {
  const Workload w = TestWorkload();
  for (const uint64_t seed : kSeeds) {
    BitGen direct_gen(seed);
    auto direct = direct_fn(w, direct_gen);
    ASSERT_TRUE(direct.ok()) << spec_text << ": " << direct.status();
    BitGen registry_gen(seed);
    auto registry =
        MechanismRegistry::Global().Run(w, spec_text, registry_gen);
    ASSERT_TRUE(registry.ok()) << spec_text << ": " << registry.status();
    ExpectParity(*direct, *registry,
                 spec_text + " @seed " + std::to_string(seed));
  }
}

TEST(MechanismParityTest, Dwork) {
  CheckSpecAgainst("dwork:epsilon=0.25", [](const Workload& w, BitGen& gen) {
    return RunDwork(w, DworkParams{0.25}, gen);
  });
}

TEST(MechanismParityTest, Geometric) {
  CheckSpecAgainst("geometric:epsilon=0.5",
                   [](const Workload& w, BitGen& gen) {
                     return RunGeometric(w, GeometricParams{0.5}, gen);
                   });
}

TEST(MechanismParityTest, Proportional) {
  CheckSpecAgainst("proportional:epsilon=0.25,delta=2",
                   [](const Workload& w, BitGen& gen) {
                     return RunProportional(w, ProportionalParams{0.25, 2.0},
                                            gen);
                   });
}

TEST(MechanismParityTest, Oracle) {
  CheckSpecAgainst("oracle:epsilon=0.25,delta=2",
                   [](const Workload& w, BitGen& gen) {
                     return RunOracle(w, OracleParams{0.25, 2.0}, gen);
                   });
}

TEST(MechanismParityTest, TwoPhaseExplicitSplit) {
  CheckSpecAgainst("two_phase:epsilon1=0.02,epsilon2=0.23,delta=2",
                   [](const Workload& w, BitGen& gen) {
                     return RunTwoPhase(w, TwoPhaseParams{0.02, 0.23, 2.0},
                                        gen);
                   });
}

TEST(MechanismParityTest, TwoPhaseFractionSplit) {
  // The adapter computes ε1 = f·ε, ε2 = (1−f)·ε from the decimal strings;
  // FormatDouble round-trips both factors exactly, so the products match
  // the direct computation bit for bit.
  const double epsilon = 0.25, fraction = 0.07;
  CheckSpecAgainst(
      "two_phase:epsilon=0.25,epsilon1_fraction=0.07,delta=2",
      [=](const Workload& w, BitGen& gen) {
        return RunTwoPhase(
            w,
            TwoPhaseParams{fraction * epsilon, (1 - fraction) * epsilon, 2.0},
            gen);
      });
}

TEST(MechanismParityTest, IResamp) {
  CheckSpecAgainst("iresamp:epsilon=0.5,delta=2,lambda_max=40",
                   [](const Workload& w, BitGen& gen) {
                     IResampParams p;
                     p.epsilon = 0.5;
                     p.delta = 2.0;
                     p.lambda_max = 40.0;
                     return RunIResamp(w, p, gen);
                   });
}

IReductParams BaseIReductParams() {
  IReductParams p;
  p.epsilon = 0.5;
  p.delta = 2.0;
  p.lambda_max = 40.0;
  p.lambda_delta = 2.0;
  return p;
}

TEST(MechanismParityTest, IReductDefaultEngine) {
  CheckSpecAgainst(
      "ireduct:epsilon=0.5,delta=2,lambda_max=40,lambda_delta=2",
      [](const Workload& w, BitGen& gen) {
        return RunIReduct(w, BaseIReductParams(), gen);
      });
}

TEST(MechanismParityTest, IReductNaiveEngine) {
  CheckSpecAgainst(
      "ireduct:epsilon=0.5,delta=2,lambda_max=40,lambda_delta=2,"
      "engine=naive",
      [](const Workload& w, BitGen& gen) {
        IReductParams p = BaseIReductParams();
        p.engine = IReductEngine::kNaive;
        return RunIReduct(w, p, gen);
      });
}

TEST(MechanismParityTest, IReductLambdaStepsForm) {
  // lambda_steps=20 must reproduce lambda_delta = 40/20 exactly.
  CheckSpecAgainst(
      "ireduct:epsilon=0.5,delta=2,lambda_max=40,lambda_steps=20",
      [](const Workload& w, BitGen& gen) {
        IReductParams p = BaseIReductParams();
        p.lambda_delta = p.lambda_max / 20.0;
        return RunIReduct(w, p, gen);
      });
}

TEST(MechanismParityTest, IReductExactCouplingObjectiveMaxRel) {
  CheckSpecAgainst(
      "ireduct:epsilon=0.5,delta=2,lambda_max=40,lambda_delta=2,"
      "reducer=exact_coupling,objective=max_rel",
      [](const Workload& w, BitGen& gen) {
        IReductParams p = BaseIReductParams();
        p.reducer = NoiseReducer::kExactCoupling;
        p.objective = IReductObjective::kMaxRelativeError;
        return RunIReduct(w, p, gen);
      });
}

TEST(MechanismParityTest, Hierarchical) {
  CheckSpecAgainst("hierarchical:epsilon=0.5",
                   [](const Workload& w, BitGen& gen) {
                     StrategyMechanismConfig config;
                     config.strategy = "tree";
                     config.epsilon = 0.5;
                     return RunStrategyMechanism(w, config, gen);
                   });
}

TEST(MechanismParityTest, Wavelet) {
  CheckSpecAgainst("wavelet:epsilon=0.5", [](const Workload& w, BitGen& gen) {
    StrategyMechanismConfig config;
    config.strategy = "wavelet";
    config.epsilon = 0.5;
    return RunStrategyMechanism(w, config, gen);
  });
}

TEST(MechanismParityTest, MatrixIdentityStrategy) {
  CheckSpecAgainst("matrix:epsilon=0.5,strategy=identity",
                   [](const Workload& w, BitGen& gen) {
                     StrategyMechanismConfig config;
                     config.strategy = "identity";
                     config.epsilon = 0.5;
                     return RunStrategyMechanism(w, config, gen);
                   });
}

TEST(MechanismParityTest, MatrixTreeGreedyTune) {
  CheckSpecAgainst(
      "matrix:epsilon=0.5,strategy=tree,tune=greedy,"
      "epsilon1_fraction=0.25,delta=2,tune_passes=4",
      [](const Workload& w, BitGen& gen) {
        StrategyMechanismConfig config;
        config.strategy = "tree";
        config.epsilon = 0.5;
        config.greedy = true;
        config.epsilon1_fraction = 0.25;
        config.relative_floor = 2.0;
        config.tune_passes = 4;
        return RunStrategyMechanism(w, config, gen);
      });
}

TEST(MechanismParityTest, MatrixGreedyDefaultsToGreedyTune) {
  CheckSpecAgainst("matrix_greedy:epsilon=0.5,strategy=wavelet",
                   [](const Workload& w, BitGen& gen) {
                     StrategyMechanismConfig config;
                     config.strategy = "wavelet";
                     config.epsilon = 0.5;
                     config.greedy = true;
                     return RunStrategyMechanism(w, config, gen);
                   });
}

}  // namespace
}  // namespace ireduct
