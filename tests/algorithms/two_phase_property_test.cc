// Parameterized invariants of TwoPhase across the ε1/ε split: exact
// budget accounting, phase-2 allocation feasibility, and the combination
// formula's variance dominance over either phase alone.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "algorithms/two_phase.h"
#include "eval/stats.h"

namespace ireduct {
namespace {

class TwoPhaseSweepTest : public testing::TestWithParam<double> {
 protected:
  static Workload MakeWorkload() {
    auto w = Workload::Create(
        {4, 9, 2, 3000, 4500},
        {QueryGroup{"small", 0, 3, 2.0}, QueryGroup{"large", 3, 5, 2.0}});
    EXPECT_TRUE(w.ok());
    return std::move(w).value();
  }

  TwoPhaseParams Params() const {
    const double fraction = GetParam();
    return TwoPhaseParams{fraction * 0.2, (1 - fraction) * 0.2, 2.0};
  }
};

TEST_P(TwoPhaseSweepTest, BudgetSplitsExactly) {
  const Workload w = MakeWorkload();
  BitGen gen(1);
  auto out = RunTwoPhase(w, Params(), gen);
  ASSERT_TRUE(out.ok());
  EXPECT_NEAR(out->epsilon_spent, 0.2, 1e-12);
  EXPECT_NEAR(w.GeneralizedSensitivity(out->group_scales),
              Params().epsilon2, 1e-12);
}

TEST_P(TwoPhaseSweepTest, SecondPhaseScalesArePositiveFinite) {
  const Workload w = MakeWorkload();
  BitGen gen(2);
  auto out = RunTwoPhase(w, Params(), gen);
  ASSERT_TRUE(out.ok());
  for (double s : out->group_scales) {
    EXPECT_GT(s, 0);
    EXPECT_TRUE(std::isfinite(s));
  }
}

TEST_P(TwoPhaseSweepTest, CombinedVarianceBeatsSecondPhaseAlone) {
  // The line-8 inverse-variance combination must not be worse than the
  // phase-2 estimate by itself: Var(combined) <= Var(phase2) = 2λ2².
  const Workload w = MakeWorkload();
  BitGen gen(3);
  std::vector<double> answers;
  double lambda2 = 0;
  const int trials = 12'000;
  for (int t = 0; t < trials; ++t) {
    auto out = RunTwoPhase(w, Params(), gen);
    ASSERT_TRUE(out.ok());
    answers.push_back(out->answers[3]);  // a large-count cell
    lambda2 += out->group_scales[1] / trials;
  }
  const SampleSummary s = Summarize(answers);
  // TwoPhase is *nearly* unbiased: the combination weights depend on the
  // phase-2 scales, which Rescale derives from the phase-1 noise, so the
  // weights correlate with the noise and a small bias (~1% at extreme
  // splits like ε1/ε = 0.02) remains — a property of the paper's
  // algorithm itself, not of this implementation.
  EXPECT_NEAR(s.mean, 3000, 0.02 * 3000);
  // Allow sampling slack: λ2 varies per run, so compare against the mean
  // scale with 15% headroom.
  EXPECT_LT(s.variance, 2 * lambda2 * lambda2 * 1.15);
}

INSTANTIATE_TEST_SUITE_P(SplitGrid, TwoPhaseSweepTest,
                         testing::Values(0.02, 0.07, 0.15, 0.3, 0.5, 0.8),
                         [](const testing::TestParamInfo<double>& info) {
                           return "split" +
                                  std::to_string(static_cast<int>(
                                      info.param * 100));
                         });

}  // namespace
}  // namespace ireduct
