#include "algorithms/dwork.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "eval/metrics.h"
#include "eval/stats.h"

namespace ireduct {
namespace {

Workload MakeWorkload() {
  auto r = Workload::Create(
      {10, 10000},
      {QueryGroup{"rare", 0, 1, 1.0}, QueryGroup{"common", 1, 2, 1.0}});
  EXPECT_TRUE(r.ok());
  return std::move(r).value();
}

TEST(DworkTest, ValidatesEpsilon) {
  BitGen gen(1);
  const Workload w = MakeWorkload();
  EXPECT_FALSE(RunDwork(w, DworkParams{0}, gen).ok());
  EXPECT_FALSE(RunDwork(w, DworkParams{-1}, gen).ok());
}

TEST(DworkTest, UniformScaleEqualsSensitivityOverEpsilon) {
  BitGen gen(2);
  const Workload w = MakeWorkload();
  auto out = RunDwork(w, DworkParams{0.5}, gen);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->group_scales.size(), 2u);
  EXPECT_DOUBLE_EQ(out->group_scales[0], 2.0 / 0.5);  // S(Q)=2
  EXPECT_DOUBLE_EQ(out->group_scales[0], out->group_scales[1]);
  EXPECT_DOUBLE_EQ(out->epsilon_spent, 0.5);
}

TEST(DworkTest, BudgetIsFullyUsed) {
  BitGen gen(3);
  const Workload w = MakeWorkload();
  auto out = RunDwork(w, DworkParams{0.25}, gen);
  ASSERT_TRUE(out.ok());
  EXPECT_NEAR(w.GeneralizedSensitivity(out->group_scales), 0.25, 1e-12);
}

TEST(DworkTest, SmallAnswersSufferLargerRelativeError) {
  // The motivating observation of the paper: uniform noise drowns small
  // counts. Average over many runs.
  const Workload w = MakeWorkload();
  double rare_err = 0, common_err = 0;
  const int trials = 3000;
  BitGen gen(4);
  for (int t = 0; t < trials; ++t) {
    auto out = RunDwork(w, DworkParams{0.1}, gen);
    ASSERT_TRUE(out.ok());
    rare_err += RelativeError(out->answers[0], 10, 1.0);
    common_err += RelativeError(out->answers[1], 10000, 1.0);
  }
  EXPECT_GT(rare_err / trials, 100 * (common_err / trials));
}

TEST(DworkTest, NoiseMagnitudeMatchesScale) {
  const Workload w = MakeWorkload();
  BitGen gen(5);
  std::vector<double> noise;
  for (int t = 0; t < 20000; ++t) {
    auto out = RunDwork(w, DworkParams{1.0}, gen);
    ASSERT_TRUE(out.ok());
    noise.push_back(out->answers[0] - 10);
  }
  EXPECT_NEAR(Summarize(noise).mean_abs_deviation, 2.0, 0.1);  // S/ε = 2
}

}  // namespace
}  // namespace ireduct
