#!/bin/sh
# End-to-end crash/recovery check for the journaled `marginals` run, driven
# through the real binary with a real injected crash (IREDUCT_FAULT's crash
# action _Exits the process mid-run, destructors and all):
#
#   1. a journaled run answers byte-identically to a plain run;
#   2. a run killed at a round boundary exits with the fault harness's
#      crash code and leaves a recoverable journal + checkpoint;
#   3. --resume 1 finishes the run and the published answers are
#      byte-identical to the uninterrupted baseline;
#   4. a journal with recorded grants but no surviving checkpoint refuses
#      to resume (re-running from scratch would double-spend ε);
#   5. rerunning without --resume over an existing journal is refused
#      (truncating a crashed run's ledger would also double-spend ε).
#
# Usage: crash_recovery_test.sh /path/to/ireduct_tool
set -eu

tool="$1"
work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

run() {
  out_dir="$1"
  shift
  mkdir -p "$work/$out_dir"
  "$tool" marginals --rows 2000 --seed 7 --epsilon 0.5 \
    --out-dir "$work/$out_dir" "$@"
}

echo "== baseline: plain vs journaled =="
run plain > /dev/null
run journaled --journal "$work/journaled.wal" > /dev/null
cmp "$work/plain/answers.csv" "$work/journaled/answers.csv"

echo "== crash at a round boundary =="
status=0
IREDUCT_FAULT="ireduct.round:crash@100" \
  run crashed --journal "$work/crashed.wal" > /dev/null 2>&1 || status=$?
if [ "$status" -ne 86 ]; then
  echo "expected the injected crash exit code 86, got $status" >&2
  exit 1
fi
if [ ! -s "$work/crashed.wal" ] || [ ! -s "$work/crashed.wal.ckpt" ]; then
  echo "crash left no journal/checkpoint to recover from" >&2
  exit 1
fi

echo "== resume finishes bit-identically =="
run crashed --journal "$work/crashed.wal" --resume 1 > /dev/null
cmp "$work/plain/answers.csv" "$work/crashed/answers.csv"

echo "== recovered ledger covers every grant exactly once =="
# The resumed run's journal must close at the same total ε as the
# uninterrupted journaled run's (grep the grant records' epsilons).
total() {
  sed -n 's/.*"epsilon":\([0-9.e+-]*\),.*/\1/p' "$1" |
    awk '{ sum += $1 } END { printf "%.12g\n", sum }'
}
if [ "$(total "$work/crashed.wal")" != "$(total "$work/journaled.wal")" ]; then
  echo "resumed journal total ε differs from uninterrupted journal:" >&2
  echo "  resumed:       $(total "$work/crashed.wal")" >&2
  echo "  uninterrupted: $(total "$work/journaled.wal")" >&2
  exit 1
fi

echo "== missing checkpoint refuses resume =="
status=0
IREDUCT_FAULT="ireduct.round:crash@100" \
  run refused --journal "$work/refused.wal" > /dev/null 2>&1 || status=$?
[ "$status" -eq 86 ]
rm "$work/refused.wal.ckpt"
status=0
run refused --journal "$work/refused.wal" --resume 1 \
  > /dev/null 2> "$work/refused.err" || status=$?
if [ "$status" -eq 0 ]; then
  echo "resume without a checkpoint must be refused" >&2
  exit 1
fi
grep -q "checkpoint" "$work/refused.err"

echo "== rerun without --resume over an existing journal is refused =="
status=0
run journaled --journal "$work/journaled.wal" \
  > /dev/null 2> "$work/rerun.err" || status=$?
if [ "$status" -eq 0 ]; then
  echo "a fresh run must not truncate an existing journal" >&2
  exit 1
fi
grep -q "resume" "$work/rerun.err"

echo "crash_recovery_test: OK"
