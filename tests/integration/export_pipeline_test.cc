// Integration: PrivateQuerySession release -> CSV export pipeline, checked
// against the on-disk artifacts a downstream consumer would read.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "data/census_generator.h"
#include "eval/report.h"
#include "marginals/marginal_set.h"
#include "service/private_session.h"

namespace ireduct {
namespace {

TEST(ExportPipelineTest, SessionReleaseExportsReadableCsv) {
  CensusConfig config;
  config.rows = 30'000;
  config.seed = 4;
  auto dataset = GenerateCensus(config);
  ASSERT_TRUE(dataset.ok());

  auto session = PrivateQuerySession::Create(&*dataset, 0.2, 11);
  ASSERT_TRUE(session.ok());
  auto specs = AllKWaySpecs(dataset->schema(), 1);
  ASSERT_TRUE(specs.ok());
  auto release = session->PublishMarginals(*specs, 0.2,
                                           1e-4 * dataset->num_rows(), 64);
  ASSERT_TRUE(release.ok()) << release.status();

  const std::string dir = testing::TempDir();
  ASSERT_TRUE(WriteMarginalsCsv(release->marginals, dataset->schema(), dir,
                                "export_pipeline")
                  .ok());

  // Every file exists, has the right header, and one line per cell.
  for (size_t i = 0; i < release->marginals.size(); ++i) {
    const std::string path =
        dir + "/export_pipeline_" + std::to_string(i) + ".csv";
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << path;
    std::string header;
    ASSERT_TRUE(std::getline(in, header));
    const std::string attr =
        dataset->schema()
            .attribute(release->marginals[i].spec().attributes[0])
            .name;
    EXPECT_EQ(header, attr + ",count");
    size_t lines = 0;
    std::string line;
    while (std::getline(in, line)) ++lines;
    EXPECT_EQ(lines, release->marginals[i].num_cells());
    std::remove(path.c_str());
  }

  // The ledger documents exactly what was released.
  ASSERT_EQ(session->ledger().size(), 1u);
  EXPECT_EQ(session->ledger()[0].label, "marginal release (iReduct)");
  EXPECT_NEAR(session->spent(), release->epsilon_spent, 1e-9);
}

TEST(ExportPipelineTest, ComparisonCsvRoundTripsThroughParsing) {
  std::vector<ComparisonRow> rows;
  rows.push_back(ComparisonRow{"ireduct", 0.5, 2.0, 10.0, 0.01});
  rows.push_back(ComparisonRow{"dwork", 1.5, 7.0, 30.0, 0.01});
  std::ostringstream out;
  ASSERT_TRUE(WriteComparisonCsv(rows, out).ok());

  std::istringstream in(out.str());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));  // header
  int parsed = 0;
  while (std::getline(in, line)) {
    std::istringstream cells(line);
    std::string name, field;
    ASSERT_TRUE(std::getline(cells, name, ','));
    int fields = 0;
    while (std::getline(cells, field, ',')) {
      EXPECT_NO_FATAL_FAILURE(std::stod(field));
      ++fields;
    }
    EXPECT_EQ(fields, 4);
    ++parsed;
  }
  EXPECT_EQ(parsed, 2);
}

}  // namespace
}  // namespace ireduct
