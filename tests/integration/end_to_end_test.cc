// Integration tests: the full pipeline from synthetic census data through
// marginal workloads to each publication mechanism, checking the orderings
// the paper's evaluation reports.
#include <gtest/gtest.h>

#include <vector>

#include "algorithms/dwork.h"
#include "algorithms/ireduct.h"
#include "algorithms/iresamp.h"
#include "algorithms/oracle.h"
#include "algorithms/two_phase.h"
#include "classifier/cross_validation.h"
#include "data/census_generator.h"
#include "eval/metrics.h"
#include "marginals/marginal_set.h"
#include "marginals/marginal_workload.h"

namespace ireduct {
namespace {

class EndToEndTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    CensusConfig config;
    config.kind = CensusKind::kBrazil;
    config.rows = 60'000;
    config.seed = 11;
    auto d = GenerateCensus(config);
    ASSERT_TRUE(d.ok());
    dataset_ = new Dataset(std::move(*d));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }

  static MarginalWorkload OneWayWorkload() {
    auto specs = AllKWaySpecs(dataset_->schema(), 1);
    EXPECT_TRUE(specs.ok());
    auto marginals = ComputeMarginals(*dataset_, *specs);
    EXPECT_TRUE(marginals.ok());
    auto mw = MarginalWorkload::Create(std::move(*marginals));
    EXPECT_TRUE(mw.ok());
    return std::move(mw).value();
  }

  static Dataset* dataset_;
};

Dataset* EndToEndTest::dataset_ = nullptr;

TEST_F(EndToEndTest, OneWayMarginalTotalsEqualRowCount) {
  const MarginalWorkload mw = OneWayWorkload();
  EXPECT_EQ(mw.num_marginals(), 9u);
  for (size_t i = 0; i < mw.num_marginals(); ++i) {
    EXPECT_DOUBLE_EQ(mw.marginal(i).Total(), 60'000.0);
  }
}

TEST_F(EndToEndTest, MechanismOrderingMatchesFigureSix) {
  // Figure 6: Oracle <= iReduct < TwoPhase < {iResamp, Dwork} on 1D
  // marginals. We assert the robust parts of the ordering on trial means.
  const MarginalWorkload mw = OneWayWorkload();
  const Workload& w = mw.workload();
  const double n = 60'000;
  const double epsilon = 0.01, delta = 1e-4 * n;
  const int trials = 5;

  double err_oracle = 0, err_ireduct = 0, err_two_phase = 0, err_iresamp = 0,
         err_dwork = 0;
  for (int t = 0; t < trials; ++t) {
    BitGen gen(100 + t);
    auto oracle = RunOracle(w, OracleParams{epsilon, delta}, gen);
    ASSERT_TRUE(oracle.ok());
    err_oracle += OverallError(w, oracle->answers, delta);

    IReductParams irp;
    irp.epsilon = epsilon;
    irp.delta = delta;
    irp.lambda_max = n / 10;
    irp.lambda_delta = n / 2000;  // coarse steps keep the test fast
    auto ir = RunIReduct(w, irp, gen);
    ASSERT_TRUE(ir.ok()) << ir.status();
    err_ireduct += OverallError(w, ir->answers, delta);

    auto tp = RunTwoPhase(
        w, TwoPhaseParams{0.07 * epsilon, 0.93 * epsilon, delta}, gen);
    ASSERT_TRUE(tp.ok());
    err_two_phase += OverallError(w, tp->answers, delta);

    IResampParams rsp;
    rsp.epsilon = epsilon;
    rsp.delta = delta;
    rsp.lambda_max = n / 10;
    auto rs = RunIResamp(w, rsp, gen);
    ASSERT_TRUE(rs.ok());
    err_iresamp += OverallError(w, rs->answers, delta);

    auto dw = RunDwork(w, DworkParams{epsilon}, gen);
    ASSERT_TRUE(dw.ok());
    err_dwork += OverallError(w, dw->answers, delta);
  }

  // Robust ordering claims from the paper.
  EXPECT_LE(err_oracle, err_ireduct * 1.1);
  EXPECT_LT(err_ireduct, err_two_phase);
  EXPECT_LT(err_two_phase, err_dwork);
  EXPECT_LT(err_ireduct, err_iresamp);
}

TEST_F(EndToEndTest, IReductBudgetInvariantHoldsOnRealWorkload) {
  const MarginalWorkload mw = OneWayWorkload();
  const Workload& w = mw.workload();
  const double n = 60'000;
  IReductParams p;
  p.epsilon = 0.01;
  p.delta = 1e-4 * n;
  p.lambda_max = n / 10;
  p.lambda_delta = n / 1000;
  BitGen gen(9);
  auto out = RunIReduct(w, p, gen);
  ASSERT_TRUE(out.ok());
  EXPECT_LE(out->epsilon_spent, p.epsilon * (1 + 1e-9));
  // The budget should be nearly exhausted (within one step per group).
  EXPECT_GT(out->epsilon_spent, 0.9 * p.epsilon);
}

TEST_F(EndToEndTest, NoisyMarginalsRebuildAndClassify) {
  // Smoke the classifier path end to end on a subsample.
  std::vector<uint32_t> rows;
  for (uint32_t r = 0; r < 20'000; ++r) rows.push_back(r);
  const Dataset sample = dataset_->Select(rows);
  BitGen gen(21);
  BitGen noise_gen(22);
  PublishFn publish = [&noise_gen](const MarginalWorkload& m) {
    auto out = RunDwork(m.workload(), DworkParams{0.05}, noise_gen);
    EXPECT_TRUE(out.ok());
    return Result<std::vector<double>>(std::move(out->answers));
  };
  auto cv = CrossValidateClassifier(sample, kEducation, 5,
                                    1e-4 * sample.num_rows(), publish, gen);
  ASSERT_TRUE(cv.ok()) << cv.status();
  EXPECT_GT(cv->mean_accuracy, 0.2);  // above 1/5 chance
  EXPECT_LE(cv->mean_accuracy, 1.0);
}

TEST_F(EndToEndTest, NoiseFreeClassifierBeatsNoisyOne) {
  std::vector<uint32_t> rows;
  for (uint32_t r = 0; r < 20'000; ++r) rows.push_back(r);
  const Dataset sample = dataset_->Select(rows);

  PublishFn identity = [](const MarginalWorkload& m) {
    const auto a = m.workload().true_answers();
    return Result<std::vector<double>>(std::vector<double>(a.begin(),
                                                           a.end()));
  };
  BitGen g1(31);
  auto clean = CrossValidateClassifier(sample, kEducation, 5, 1.0, identity,
                                       g1);
  ASSERT_TRUE(clean.ok());

  BitGen noise_gen(32);
  PublishFn destroyed = [&noise_gen](const MarginalWorkload& m) {
    auto out = RunDwork(m.workload(), DworkParams{1e-5}, noise_gen);
    EXPECT_TRUE(out.ok());
    return Result<std::vector<double>>(std::move(out->answers));
  };
  BitGen g2(31);
  auto noisy = CrossValidateClassifier(sample, kEducation, 5, 1.0, destroyed,
                                       g2);
  ASSERT_TRUE(noisy.ok());
  EXPECT_GT(clean->mean_accuracy, noisy->mean_accuracy);
}

}  // namespace
}  // namespace ireduct
