// End-to-end pipeline of the paper's concluding proposal: census data →
// iReduct-published classifier marginals → post-processing repairs →
// synthetic record release → downstream model quality.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "algorithms/ireduct.h"
#include "classifier/naive_bayes.h"
#include "data/census_generator.h"
#include "marginals/marginal_set.h"
#include "marginals/marginal_workload.h"
#include "marginals/postprocess.h"
#include "marginals/synthetic.h"

namespace ireduct {
namespace {

class SyntheticPipelineTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    CensusConfig config;
    config.kind = CensusKind::kBrazil;
    config.rows = 50'000;
    config.seed = 77;
    auto d = GenerateCensus(config);
    ASSERT_TRUE(d.ok());
    dataset_ = new Dataset(std::move(*d));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }

  static Dataset* dataset_;
};

Dataset* SyntheticPipelineTest::dataset_ = nullptr;

TEST_F(SyntheticPipelineTest, FullPipelinePreservesSignal) {
  const double n = static_cast<double>(dataset_->num_rows());
  auto specs = ClassifierSpecs(dataset_->schema(), kEducation);
  ASSERT_TRUE(specs.ok());
  auto marginals = ComputeMarginals(*dataset_, *specs);
  ASSERT_TRUE(marginals.ok());
  auto mw = MarginalWorkload::Create(std::move(*marginals));
  ASSERT_TRUE(mw.ok());

  // Publish with a healthy budget so the pipeline's signal survives.
  IReductParams params;
  params.epsilon = 0.5;
  params.delta = 1e-4 * n;
  params.lambda_max = n / 10;
  params.lambda_delta = params.lambda_max / 200;
  BitGen gen(5);
  auto out = RunIReduct(mw->workload(), params, gen);
  ASSERT_TRUE(out.ok());

  // Repair.
  auto noisy = mw->ToMarginals(out->answers);
  ASSERT_TRUE(noisy.ok());
  std::vector<Marginal> repaired = EnforceTotal(std::move(*noisy), n);
  for (Marginal& m : repaired) m = RoundCounts(ClampNonNegative(m));
  for (const Marginal& m : repaired) {
    for (size_t c = 0; c < m.num_cells(); ++c) {
      ASSERT_GE(m.count(c), 0.0);
    }
    // Clamping negative cells after the total alignment re-adds mass, so
    // only a loose total bound survives (the sparse marginals gain the
    // most — exactly the "infeasibility" the paper's conclusion flags).
    EXPECT_GT(m.Total(), 0.8 * n);
    EXPECT_LT(m.Total(), 2.0 * n);
  }

  // Synthesize and check fidelity.
  auto synthetic = SynthesizeFromClassifierMarginals(
      dataset_->schema(), kEducation, repaired, 50'000, gen);
  ASSERT_TRUE(synthetic.ok());
  auto fidelity = SyntheticMarginalError(*dataset_, *synthetic, *specs,
                                         params.delta);
  ASSERT_TRUE(fidelity.ok());
  EXPECT_LT(*fidelity, 1.5);

  // A classifier trained purely on synthetic rows must beat the majority
  // class on real data.
  auto synth_marginals = ComputeMarginals(*synthetic, *specs);
  ASSERT_TRUE(synth_marginals.ok());
  auto model = NaiveBayesModel::FromMarginals(dataset_->schema(),
                                              kEducation, *synth_marginals);
  ASSERT_TRUE(model.ok());
  auto education = Marginal::Compute(*dataset_, MarginalSpec{{kEducation}});
  ASSERT_TRUE(education.ok());
  double majority = 0;
  for (size_t c = 0; c < education->num_cells(); ++c) {
    majority = std::fmax(majority, education->count(c));
  }
  EXPECT_GT(model->Accuracy(*dataset_),
            majority / n + 0.03);  // clearly above the majority baseline
}

TEST_F(SyntheticPipelineTest, TinyBudgetDegradesGracefully) {
  const double n = static_cast<double>(dataset_->num_rows());
  auto specs = ClassifierSpecs(dataset_->schema(), kEducation);
  ASSERT_TRUE(specs.ok());
  auto marginals = ComputeMarginals(*dataset_, *specs);
  ASSERT_TRUE(marginals.ok());
  auto mw = MarginalWorkload::Create(std::move(*marginals));
  ASSERT_TRUE(mw.ok());

  IReductParams params;
  params.epsilon = 1e-4;  // marginals will be mostly noise
  params.delta = 1e-4 * n;
  // λmax must satisfy GS(λmax) = 2·|M|/λmax <= ε, i.e. λmax >= 18/1e-4.
  params.lambda_max = 20 * n;
  params.lambda_delta = params.lambda_max / 50;
  BitGen gen(6);
  auto out = RunIReduct(mw->workload(), params, gen);
  ASSERT_TRUE(out.ok()) << out.status();
  auto noisy = mw->ToMarginals(out->answers);
  ASSERT_TRUE(noisy.ok());
  std::vector<Marginal> repaired = EnforceTotal(std::move(*noisy), n);
  for (Marginal& m : repaired) m = RoundCounts(ClampNonNegative(m));
  auto synthetic = SynthesizeFromClassifierMarginals(
      dataset_->schema(), kEducation, repaired, 5'000, gen);
  // The pipeline must stay well-defined even when the signal is gone.
  ASSERT_TRUE(synthetic.ok());
  EXPECT_EQ(synthetic->num_rows(), 5'000u);
}

}  // namespace
}  // namespace ireduct
