#include "marginals/postprocess.h"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

namespace ireduct {
namespace {

Marginal Make1D(std::vector<double> counts) {
  const uint32_t domain = static_cast<uint32_t>(counts.size());
  auto m = Marginal::FromCounts(MarginalSpec{{0}}, {domain},
                                std::move(counts));
  EXPECT_TRUE(m.ok());
  return std::move(m).value();
}

Marginal Make2D(uint32_t d0, uint32_t d1, std::vector<double> counts,
                std::vector<uint32_t> attrs = {0, 1}) {
  auto m = Marginal::FromCounts(MarginalSpec{std::move(attrs)}, {d0, d1},
                                std::move(counts));
  EXPECT_TRUE(m.ok());
  return std::move(m).value();
}

TEST(PostprocessTest, ClampNonNegative) {
  const Marginal clamped = ClampNonNegative(Make1D({-3.5, 0.0, 2.5}));
  EXPECT_DOUBLE_EQ(clamped.count(0), 0.0);
  EXPECT_DOUBLE_EQ(clamped.count(1), 0.0);
  EXPECT_DOUBLE_EQ(clamped.count(2), 2.5);
}

TEST(PostprocessTest, RoundCounts) {
  const Marginal rounded = RoundCounts(Make1D({-1.4, 2.5, 2.49, -2.5}));
  EXPECT_DOUBLE_EQ(rounded.count(0), -1.0);
  EXPECT_DOUBLE_EQ(rounded.count(1), 3.0);
  EXPECT_DOUBLE_EQ(rounded.count(2), 2.0);
  EXPECT_DOUBLE_EQ(rounded.count(3), -3.0);
}

TEST(PostprocessTest, ProjectTwoDimensionalOntoEachAxis) {
  // 2x3 table: rows sum {6, 15}, columns sum {5, 7, 9}.
  const Marginal m = Make2D(2, 3, {1, 2, 3, 4, 5, 6});
  auto rows = ProjectMarginal(m, std::array<uint32_t, 1>{0});
  ASSERT_TRUE(rows.ok());
  EXPECT_DOUBLE_EQ(rows->count(0), 6);
  EXPECT_DOUBLE_EQ(rows->count(1), 15);
  auto cols = ProjectMarginal(m, std::array<uint32_t, 1>{1});
  ASSERT_TRUE(cols.ok());
  EXPECT_DOUBLE_EQ(cols->count(0), 5);
  EXPECT_DOUBLE_EQ(cols->count(1), 7);
  EXPECT_DOUBLE_EQ(cols->count(2), 9);
}

TEST(PostprocessTest, ProjectOntoAllAttributesIsIdentity) {
  const Marginal m = Make2D(2, 2, {1, 2, 3, 4});
  auto same = ProjectMarginal(m, std::array<uint32_t, 2>{0, 1});
  ASSERT_TRUE(same.ok());
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(same->count(i), m.count(i));
  }
}

TEST(PostprocessTest, ProjectRejectsNonSubsequence) {
  const Marginal m = Make2D(2, 3, {1, 2, 3, 4, 5, 6});
  EXPECT_FALSE(ProjectMarginal(m, std::array<uint32_t, 1>{7}).ok());
  // Out of order is not a subsequence.
  EXPECT_FALSE(ProjectMarginal(m, std::array<uint32_t, 2>{1, 0}).ok());
}

TEST(PostprocessTest, EnforceTotalShiftsUniformly) {
  std::vector<Marginal> marginals;
  marginals.push_back(Make1D({1, 2, 3}));    // total 6
  marginals.push_back(Make1D({10, 10}));     // total 20
  auto fixed = EnforceTotal(std::move(marginals), 12.0);
  EXPECT_NEAR(fixed[0].Total(), 12.0, 1e-9);
  EXPECT_NEAR(fixed[1].Total(), 12.0, 1e-9);
  // Uniform additive shift: +2 per cell for the first, -4 for the second.
  EXPECT_DOUBLE_EQ(fixed[0].count(0), 3);
  EXPECT_DOUBLE_EQ(fixed[1].count(0), 6);
}

TEST(PostprocessTest, MeanTotal) {
  std::vector<Marginal> marginals;
  marginals.push_back(Make1D({1, 2, 3}));
  marginals.push_back(Make1D({10, 10}));
  EXPECT_DOUBLE_EQ(MeanTotal(marginals), 13.0);
}

TEST(PostprocessTest, FitProjectionMatchesCoarseExactly) {
  // Fine 2x3 with noisy counts; coarse over attribute 0 demands {10, 20}.
  const Marginal fine = Make2D(2, 3, {1, 2, 3, 4, 5, 6});
  const Marginal coarse = Make1D({10, 20});
  auto fitted = FitProjection(fine, coarse);
  ASSERT_TRUE(fitted.ok());
  auto projected = ProjectMarginal(*fitted, std::array<uint32_t, 1>{0});
  ASSERT_TRUE(projected.ok());
  EXPECT_NEAR(projected->count(0), 10.0, 1e-9);
  EXPECT_NEAR(projected->count(1), 20.0, 1e-9);
  // Residual spread evenly: row 0 had sum 6, gets +4/3 per cell.
  EXPECT_NEAR(fitted->count(0), 1 + 4.0 / 3, 1e-9);
  // Unprojected structure preserved (differences within a row unchanged).
  EXPECT_NEAR(fitted->count(1) - fitted->count(0), 1.0, 1e-9);
}

TEST(PostprocessTest, FitProjectionOnSecondAttribute) {
  const Marginal fine = Make2D(2, 2, {1, 2, 3, 4});
  auto coarse = Marginal::FromCounts(MarginalSpec{{1}}, {2}, {8, 8});
  ASSERT_TRUE(coarse.ok());
  auto fitted = FitProjection(fine, *coarse);
  ASSERT_TRUE(fitted.ok());
  auto projected = ProjectMarginal(*fitted, std::array<uint32_t, 1>{1});
  ASSERT_TRUE(projected.ok());
  EXPECT_NEAR(projected->count(0), 8.0, 1e-9);
  EXPECT_NEAR(projected->count(1), 8.0, 1e-9);
}

TEST(PostprocessTest, FitProjectionValidates) {
  const Marginal fine = Make2D(2, 2, {1, 2, 3, 4});
  // Wrong domain size.
  auto coarse = Marginal::FromCounts(MarginalSpec{{0}}, {3}, {1, 2, 3});
  ASSERT_TRUE(coarse.ok());
  EXPECT_FALSE(FitProjection(fine, *coarse).ok());
  // Not a subsequence.
  auto other = Marginal::FromCounts(MarginalSpec{{5}}, {2}, {1, 2});
  ASSERT_TRUE(other.ok());
  EXPECT_FALSE(FitProjection(fine, *other).ok());
}

TEST(PostprocessTest, PipelineNonNegativeConsistentIntegral) {
  // Typical cleanup pipeline on a noisy marginal set.
  std::vector<Marginal> noisy;
  noisy.push_back(Make1D({-2.3, 11.7, 90.1}));
  noisy.push_back(Make1D({48.2, 52.9}));
  auto cleaned = EnforceTotal(std::move(noisy), 100.0);
  for (auto& m : cleaned) {
    m = RoundCounts(ClampNonNegative(m));
    for (size_t c = 0; c < m.num_cells(); ++c) {
      EXPECT_GE(m.count(c), 0.0);
      EXPECT_DOUBLE_EQ(m.count(c), std::round(m.count(c)));
    }
  }
}

}  // namespace
}  // namespace ireduct
