// Out-of-core evaluation parity: MarginalSetEvaluator::ComputeStreaming
// over a columnar file must be bit-identical to per-spec Marginal::Compute
// (and to the in-memory fused pass) at every thread count, block size,
// layout, and seed. Counts are integers, so "bit-identical" is the right
// bar — any divergence is a real bug, not rounding.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "data/census_generator.h"
#include "data/columnar.h"
#include "marginals/marginal.h"
#include "marginals/marginal_evaluator.h"
#include "marginals/marginal_set.h"

namespace ireduct {
namespace {

class StreamingEvaluatorTest : public testing::Test {
 protected:
  void SetUp() override {
    path_ = testing::TempDir() + "/ireduct_streaming_test.col";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
};

Dataset MakeCensus(uint64_t seed, uint64_t rows = 9'000) {
  CensusConfig config;
  config.rows = rows;
  config.seed = seed;
  auto d = GenerateCensus(config);
  EXPECT_TRUE(d.ok());
  return std::move(d).value();
}

std::vector<Marginal> Reference(const Dataset& dataset,
                                const std::vector<MarginalSpec>& specs) {
  std::vector<Marginal> out;
  out.reserve(specs.size());
  for (const MarginalSpec& spec : specs) {
    auto m = Marginal::Compute(dataset, spec);
    EXPECT_TRUE(m.ok());
    out.push_back(std::move(*m));
  }
  return out;
}

void ExpectBitIdentical(const std::vector<Marginal>& got,
                        const std::vector<Marginal>& want,
                        const std::string& what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i].num_cells(), want[i].num_cells()) << what;
    ASSERT_EQ(std::memcmp(got[i].counts().data(), want[i].counts().data(),
                          got[i].num_cells() * sizeof(double)),
              0)
        << what << ": marginal " << i << " diverges";
  }
}

TEST_F(StreamingEvaluatorTest, MatchesPerSpecComputeAcrossEverything) {
  // Thread counts, block sizes (including a non-power-of-two and one
  // leaving a short last block), both layouts, three seeds.
  for (const uint64_t seed : {1ull, 2ull, 3ull}) {
    const Dataset dataset = MakeCensus(seed);
    auto specs = AllKWaySpecs(dataset.schema(), 2);
    ASSERT_TRUE(specs.ok());
    const std::vector<Marginal> reference = Reference(dataset, *specs);
    auto evaluator = MarginalSetEvaluator::Create(dataset.schema(), *specs);
    ASSERT_TRUE(evaluator.ok());

    for (const uint32_t block_rows : {512u, 2'000u, 16'384u}) {
      for (const bool zero_copy : {false, true}) {
        ColumnarWriteOptions options;
        options.block_rows = block_rows;
        options.zero_copy_layout = zero_copy;
        ASSERT_TRUE(WriteColumnar(dataset, path_, options).ok());
        auto file = ColumnarFile::Open(path_);
        ASSERT_TRUE(file.ok()) << file.status();

        for (const int threads : {1, 2, 8}) {
          ThreadPool pool(threads);
          auto streamed = evaluator->ComputeStreaming(
              *file, threads > 1 ? &pool : nullptr);
          ASSERT_TRUE(streamed.ok()) << streamed.status();
          ExpectBitIdentical(
              *streamed, reference,
              "seed " + std::to_string(seed) + " block_rows " +
                  std::to_string(block_rows) + " zero_copy " +
                  std::to_string(zero_copy) + " threads " +
                  std::to_string(threads));
        }
      }
    }
  }
}

TEST_F(StreamingEvaluatorTest, HighArityPlansStreamIdentically) {
  // 3-way and 4-way specs exercise the general-arity counting kernel
  // inside the streaming pass.
  const Dataset dataset = MakeCensus(4, 6'000);
  std::vector<MarginalSpec> specs = {
      MarginalSpec{{kAge, kGender, kMaritalStatus}},
      MarginalSpec{{kGender, kMaritalStatus, kEducation, kClassOfWorker}},
      MarginalSpec{{kState}},
  };
  const std::vector<Marginal> reference = Reference(dataset, specs);
  auto evaluator = MarginalSetEvaluator::Create(dataset.schema(), specs);
  ASSERT_TRUE(evaluator.ok());

  ColumnarWriteOptions options;
  options.block_rows = 1'024;
  ASSERT_TRUE(WriteColumnar(dataset, path_, options).ok());
  auto file = ColumnarFile::Open(path_);
  ASSERT_TRUE(file.ok());
  for (const int threads : {1, 4}) {
    ThreadPool pool(threads);
    auto streamed =
        evaluator->ComputeStreaming(*file, threads > 1 ? &pool : nullptr);
    ASSERT_TRUE(streamed.ok()) << streamed.status();
    ExpectBitIdentical(*streamed, reference,
                       "high-arity threads " + std::to_string(threads));
  }
}

TEST_F(StreamingEvaluatorTest, MatchesInMemoryComputeOverBackedDataset) {
  // The same file consumed three ways — streaming, materialized zero-copy
  // dataset, owned decode — must agree bit for bit.
  const Dataset dataset = MakeCensus(5, 4'000);
  auto specs = AllKWaySpecs(dataset.schema(), 1);
  ASSERT_TRUE(specs.ok());
  auto evaluator = MarginalSetEvaluator::Create(dataset.schema(), *specs);
  ASSERT_TRUE(evaluator.ok());

  ColumnarWriteOptions options;
  options.zero_copy_layout = true;
  options.block_rows = 1'000;
  ASSERT_TRUE(WriteColumnar(dataset, path_, options).ok());
  auto file = ColumnarFile::Open(path_);
  ASSERT_TRUE(file.ok());
  auto backed = file->ToDataset();
  ASSERT_TRUE(backed.ok());

  auto inmem = evaluator->Compute(dataset);
  auto from_backed = evaluator->Compute(*backed);
  auto streamed = evaluator->ComputeStreaming(*file);
  ASSERT_TRUE(inmem.ok() && from_backed.ok() && streamed.ok());
  ExpectBitIdentical(*from_backed, *inmem, "backed vs owned");
  ExpectBitIdentical(*streamed, *inmem, "streamed vs owned");
}

TEST_F(StreamingEvaluatorTest, RejectsMismatchedSchema) {
  const Dataset dataset = MakeCensus(6, 2'000);
  ASSERT_TRUE(WriteColumnar(dataset, path_).ok());
  auto file = ColumnarFile::Open(path_);
  ASSERT_TRUE(file.ok());

  // An evaluator planned over a wider schema must refuse the file.
  auto wide = Schema::Create({{"A", 4},
                              {"B", 4},
                              {"C", 4},
                              {"D", 4},
                              {"E", 4},
                              {"F", 4},
                              {"G", 4},
                              {"H", 4},
                              {"I", 4},
                              {"J", 4}});
  ASSERT_TRUE(wide.ok());
  auto evaluator = MarginalSetEvaluator::Create(
      *wide, {MarginalSpec{{9}}});
  ASSERT_TRUE(evaluator.ok());
  EXPECT_FALSE(evaluator->ComputeStreaming(*file).ok());

  // And one planned over larger domains than the file provides.
  auto big = Schema::Create({{"Age", 50'000}});
  ASSERT_TRUE(big.ok());
  auto evaluator2 =
      MarginalSetEvaluator::Create(*big, {MarginalSpec{{0}}});
  ASSERT_TRUE(evaluator2.ok());
  EXPECT_FALSE(evaluator2->ComputeStreaming(*file).ok());
}

TEST_F(StreamingEvaluatorTest, EmptyFileYieldsZeroTables) {
  auto schema = CensusSchema(CensusKind::kBrazil);
  ASSERT_TRUE(schema.ok());
  const Dataset empty(*schema);
  ASSERT_TRUE(WriteColumnar(empty, path_).ok());
  auto file = ColumnarFile::Open(path_);
  ASSERT_TRUE(file.ok());
  auto specs = AllKWaySpecs(*schema, 1);
  ASSERT_TRUE(specs.ok());
  auto evaluator = MarginalSetEvaluator::Create(*schema, *specs);
  ASSERT_TRUE(evaluator.ok());
  auto streamed = evaluator->ComputeStreaming(*file);
  ASSERT_TRUE(streamed.ok()) << streamed.status();
  ASSERT_EQ(streamed->size(), specs->size());
  for (const Marginal& m : *streamed) {
    for (size_t i = 0; i < m.num_cells(); ++i) {
      ASSERT_EQ(m.count(i), 0.0);
    }
  }
}

}  // namespace
}  // namespace ireduct
