#include "marginals/marginal_evaluator.h"

#include <gtest/gtest.h>

#include <array>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "common/random.h"
#include "common/simd.h"
#include "common/thread_pool.h"
#include "data/census_generator.h"
#include "marginals/marginal_set.h"

namespace ireduct {
namespace {

Dataset RandomDataset(uint64_t seed, size_t rows) {
  auto schema = Schema::Create({{"A", 3}, {"B", 5}, {"C", 2}, {"D", 7}});
  EXPECT_TRUE(schema.ok());
  Dataset d(std::move(schema).value());
  BitGen gen(seed);
  for (size_t r = 0; r < rows; ++r) {
    const std::array<uint16_t, 4> row{
        static_cast<uint16_t>(gen.UniformInt(3)),
        static_cast<uint16_t>(gen.UniformInt(5)),
        static_cast<uint16_t>(gen.UniformInt(2)),
        static_cast<uint16_t>(gen.UniformInt(7))};
    EXPECT_TRUE(d.AppendRow(row).ok());
  }
  return d;
}

std::vector<MarginalSpec> OneAndTwoWaySpecs(const Schema& schema) {
  auto one = AllKWaySpecs(schema, 1);
  auto two = AllKWaySpecs(schema, 2);
  EXPECT_TRUE(one.ok() && two.ok());
  std::vector<MarginalSpec> specs = std::move(*one);
  for (MarginalSpec& s : *two) specs.push_back(std::move(s));
  return specs;
}

void ExpectBitIdentical(const std::vector<Marginal>& got,
                        const std::vector<Marginal>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i].spec().attributes, want[i].spec().attributes);
    ASSERT_EQ(got[i].domain_sizes(), want[i].domain_sizes());
    ASSERT_EQ(got[i].num_cells(), want[i].num_cells());
    EXPECT_EQ(std::memcmp(got[i].counts().data(), want[i].counts().data(),
                          got[i].num_cells() * sizeof(double)),
              0)
        << "marginal " << i << " differs";
  }
}

// The hard parity bar: fused evaluation must match per-marginal
// Marginal::Compute bit for bit at every thread count, across seeds.
TEST(MarginalEvaluatorTest, FusedMatchesPerMarginalAtEveryThreadCount) {
  for (const uint64_t seed : {1ull, 42ull, 2011ull}) {
    const Dataset d = RandomDataset(seed, 4096);
    const std::vector<MarginalSpec> specs = OneAndTwoWaySpecs(d.schema());
    std::vector<Marginal> reference;
    for (const MarginalSpec& spec : specs) {
      reference.push_back(std::move(*Marginal::Compute(d, spec)));
    }
    auto evaluator = MarginalSetEvaluator::Create(d.schema(), specs);
    ASSERT_TRUE(evaluator.ok());
    for (const int threads : {1, 2, 8}) {
      ThreadPool pool(threads);
      auto fused = evaluator->Compute(d, {}, threads > 1 ? &pool : nullptr);
      ASSERT_TRUE(fused.ok()) << "seed " << seed << " threads " << threads;
      ExpectBitIdentical(*fused, reference);
    }
  }
}

// The SIMD counting kernels must not change a single count: forcing the
// scalar tier has to reproduce the default dispatch bit for bit at every
// thread count. (Counts are integers, so this is exact, not approximate.)
TEST(MarginalEvaluatorTest, ForcedScalarTierMatchesDispatchAtEveryThreadCount) {
  const Dataset d = RandomDataset(42, 4096);
  const std::vector<MarginalSpec> specs = OneAndTwoWaySpecs(d.schema());
  auto evaluator = MarginalSetEvaluator::Create(d.schema(), specs);
  ASSERT_TRUE(evaluator.ok());

  auto reference = evaluator->Compute(d);
  ASSERT_TRUE(reference.ok());

  const char* prev = std::getenv("IREDUCT_SIMD");
  ::setenv("IREDUCT_SIMD", "off", 1);
  simd::ResetDispatchForTesting();
  ASSERT_EQ(simd::ActiveTier(), simd::Tier::kScalar);
  for (const int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    auto scalar = evaluator->Compute(d, {}, threads > 1 ? &pool : nullptr);
    ASSERT_TRUE(scalar.ok());
    ExpectBitIdentical(*scalar, *reference);
  }
  if (prev != nullptr) {
    ::setenv("IREDUCT_SIMD", prev, 1);
  } else {
    ::unsetenv("IREDUCT_SIMD");
  }
  simd::ResetDispatchForTesting();
}

TEST(MarginalEvaluatorTest, RowSubsetMatchesPerMarginal) {
  const Dataset d = RandomDataset(7, 2000);
  std::vector<uint32_t> rows;
  for (uint32_t r = 0; r < d.num_rows(); r += 3) rows.push_back(r);
  const std::vector<MarginalSpec> specs = OneAndTwoWaySpecs(d.schema());
  std::vector<Marginal> reference;
  for (const MarginalSpec& spec : specs) {
    reference.push_back(std::move(*Marginal::Compute(d, spec, rows)));
  }
  auto evaluator = MarginalSetEvaluator::Create(d.schema(), specs);
  ASSERT_TRUE(evaluator.ok());
  for (const int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    auto fused = evaluator->Compute(d, rows, threads > 1 ? &pool : nullptr);
    ASSERT_TRUE(fused.ok());
    ExpectBitIdentical(*fused, reference);
  }
}

TEST(MarginalEvaluatorTest, CensusParityMatchesComputeMarginals) {
  CensusConfig config;
  config.rows = 10'000;
  auto dataset = GenerateCensus(config);
  ASSERT_TRUE(dataset.ok());
  auto specs = AllKWaySpecs(dataset->schema(), 2);
  ASSERT_TRUE(specs.ok());
  std::vector<Marginal> reference;
  for (const MarginalSpec& spec : *specs) {
    reference.push_back(std::move(*Marginal::Compute(*dataset, spec)));
  }
  // ComputeMarginals is itself routed through the evaluator now; its
  // contract with the per-marginal path must hold.
  auto via_set = ComputeMarginals(*dataset, *specs);
  ASSERT_TRUE(via_set.ok());
  ExpectBitIdentical(*via_set, reference);
  ThreadPool pool(8);
  auto evaluator = MarginalSetEvaluator::Create(dataset->schema(), *specs);
  ASSERT_TRUE(evaluator.ok());
  auto fused = evaluator->Compute(*dataset, {}, &pool);
  ASSERT_TRUE(fused.ok());
  ExpectBitIdentical(*fused, reference);
}

TEST(MarginalEvaluatorTest, RejectsWhatMarginalComputeRejects) {
  const Dataset d = RandomDataset(1, 16);
  EXPECT_FALSE(
      MarginalSetEvaluator::Create(d.schema(), {MarginalSpec{{}}}).ok());
  EXPECT_EQ(MarginalSetEvaluator::Create(d.schema(), {MarginalSpec{{9}}})
                .status()
                .code(),
            StatusCode::kOutOfRange);
  EXPECT_FALSE(
      MarginalSetEvaluator::Create(d.schema(), {MarginalSpec{{1, 1}}}).ok());

  auto evaluator =
      MarginalSetEvaluator::Create(d.schema(), {MarginalSpec{{0, 1}}});
  ASSERT_TRUE(evaluator.ok());
  const std::vector<uint32_t> bad_rows{999};
  EXPECT_EQ(evaluator->Compute(d, bad_rows).status().code(),
            StatusCode::kOutOfRange);
}

TEST(MarginalEvaluatorTest, RejectsMismatchedDomains) {
  const Dataset d = RandomDataset(1, 16);
  auto other_schema = Schema::Create({{"A", 3}, {"B", 4}});
  ASSERT_TRUE(other_schema.ok());
  auto evaluator = MarginalSetEvaluator::Create(*other_schema,
                                                {MarginalSpec{{0, 1}}});
  ASSERT_TRUE(evaluator.ok());
  // d's attribute 1 has domain 5, the plan expects 4.
  EXPECT_FALSE(evaluator->Compute(d).ok());
}

TEST(MarginalEvaluatorTest, EmptySpecSetAndEmptyDataset) {
  const Dataset d = RandomDataset(1, 0);
  auto evaluator = MarginalSetEvaluator::Create(
      d.schema(), OneAndTwoWaySpecs(d.schema()));
  ASSERT_TRUE(evaluator.ok());
  auto fused = evaluator->Compute(d);
  ASSERT_TRUE(fused.ok());
  for (const Marginal& m : *fused) EXPECT_EQ(m.Total(), 0.0);

  auto empty = MarginalSetEvaluator::Create(d.schema(), {});
  ASSERT_TRUE(empty.ok());
  auto none = empty->Compute(d);
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
}

}  // namespace
}  // namespace ireduct
