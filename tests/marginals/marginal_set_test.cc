#include "marginals/marginal_set.h"

#include <gtest/gtest.h>

namespace ireduct {
namespace {

Schema NineAttributeSchema() {
  std::vector<Attribute> attrs;
  for (int i = 0; i < 9; ++i) {
    attrs.push_back({"A" + std::to_string(i), static_cast<uint32_t>(i + 2)});
  }
  auto s = Schema::Create(std::move(attrs));
  EXPECT_TRUE(s.ok());
  return std::move(s).value();
}

TEST(MarginalSetTest, AllOneWayCount) {
  const Schema s = NineAttributeSchema();
  auto specs = AllKWaySpecs(s, 1);
  ASSERT_TRUE(specs.ok());
  EXPECT_EQ(specs->size(), 9u);  // the paper's 1D task: 9 marginals
  for (size_t i = 0; i < specs->size(); ++i) {
    EXPECT_EQ((*specs)[i].attributes,
              std::vector<uint32_t>{static_cast<uint32_t>(i)});
  }
}

TEST(MarginalSetTest, AllTwoWayCount) {
  const Schema s = NineAttributeSchema();
  auto specs = AllKWaySpecs(s, 2);
  ASSERT_TRUE(specs.ok());
  EXPECT_EQ(specs->size(), 36u);  // C(9,2), the paper's 2D task
  // Lexicographic order, distinct sorted attributes.
  EXPECT_EQ((*specs)[0].attributes, (std::vector<uint32_t>{0, 1}));
  EXPECT_EQ((*specs)[35].attributes, (std::vector<uint32_t>{7, 8}));
}

TEST(MarginalSetTest, AllNineWayIsTheFullContingencyTable) {
  const Schema s = NineAttributeSchema();
  auto specs = AllKWaySpecs(s, 9);
  ASSERT_TRUE(specs.ok());
  EXPECT_EQ(specs->size(), 1u);
  EXPECT_EQ((*specs)[0].attributes.size(), 9u);
}

TEST(MarginalSetTest, KValidation) {
  const Schema s = NineAttributeSchema();
  EXPECT_FALSE(AllKWaySpecs(s, 0).ok());
  EXPECT_FALSE(AllKWaySpecs(s, 10).ok());
}

TEST(MarginalSetTest, ClassifierSpecsLayout) {
  // Section 6.5: 1 one-dimensional marginal on the class plus 8
  // two-dimensional {feature, class} marginals.
  const Schema s = NineAttributeSchema();
  auto specs = ClassifierSpecs(s, 6);
  ASSERT_TRUE(specs.ok());
  ASSERT_EQ(specs->size(), 9u);
  EXPECT_EQ((*specs)[0].attributes, std::vector<uint32_t>{6});
  EXPECT_EQ((*specs)[1].attributes, (std::vector<uint32_t>{0, 6}));
  EXPECT_EQ((*specs)[6].attributes, (std::vector<uint32_t>{5, 6}));
  EXPECT_EQ((*specs)[7].attributes, (std::vector<uint32_t>{7, 6}));
  EXPECT_EQ((*specs)[8].attributes, (std::vector<uint32_t>{8, 6}));
  EXPECT_FALSE(ClassifierSpecs(s, 9).ok());
}

TEST(MarginalSetTest, ComputeMarginalsProducesOnePerSpec) {
  auto schema = Schema::Create({{"A", 2}, {"B", 3}});
  ASSERT_TRUE(schema.ok());
  Dataset d(std::move(schema).value());
  ASSERT_TRUE(d.AppendRow(std::vector<uint16_t>{0, 2}).ok());
  ASSERT_TRUE(d.AppendRow(std::vector<uint16_t>{1, 1}).ok());
  auto specs = AllKWaySpecs(d.schema(), 1);
  ASSERT_TRUE(specs.ok());
  auto marginals = ComputeMarginals(d, *specs);
  ASSERT_TRUE(marginals.ok());
  ASSERT_EQ(marginals->size(), 2u);
  EXPECT_EQ((*marginals)[0].count(0), 1);
  EXPECT_EQ((*marginals)[1].count(2), 1);
}

}  // namespace
}  // namespace ireduct
