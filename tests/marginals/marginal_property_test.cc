// Property suite over randomly generated datasets and marginal specs:
// marginal computation must agree with a brute-force row scan, totals are
// invariant, projections of finer marginals reproduce coarser ones, and
// the workload round trip is lossless.
#include <gtest/gtest.h>

#include <array>
#include <map>
#include <vector>

#include "common/random.h"
#include "marginals/marginal.h"
#include "marginals/marginal_set.h"
#include "marginals/marginal_workload.h"
#include "marginals/postprocess.h"

namespace ireduct {
namespace {

struct FuzzCase {
  uint64_t seed;
  int rows;
};

class MarginalPropertyTest : public testing::TestWithParam<FuzzCase> {
 protected:
  // Random schema of 3-5 attributes with domains 2..9 and random rows.
  Dataset RandomDataset() {
    BitGen gen(GetParam().seed);
    const size_t attrs = 3 + gen.UniformInt(3);
    std::vector<Attribute> schema_attrs;
    for (size_t a = 0; a < attrs; ++a) {
      schema_attrs.push_back(
          {"A" + std::to_string(a),
           static_cast<uint32_t>(2 + gen.UniformInt(8))});
    }
    auto schema = Schema::Create(std::move(schema_attrs));
    EXPECT_TRUE(schema.ok());
    Dataset d(std::move(schema).value());
    std::vector<uint16_t> row(attrs);
    for (int r = 0; r < GetParam().rows; ++r) {
      for (size_t a = 0; a < attrs; ++a) {
        row[a] = static_cast<uint16_t>(
            gen.UniformInt(d.schema().attribute(a).domain_size));
      }
      EXPECT_TRUE(d.AppendRow(row).ok());
    }
    return d;
  }
};

TEST_P(MarginalPropertyTest, CountsMatchBruteForce) {
  const Dataset d = RandomDataset();
  BitGen gen(GetParam().seed + 1);
  // Random 2-attribute spec.
  const uint32_t a = static_cast<uint32_t>(
      gen.UniformInt(d.schema().num_attributes()));
  uint32_t b = static_cast<uint32_t>(
      gen.UniformInt(d.schema().num_attributes()));
  if (b == a) b = (b + 1) % d.schema().num_attributes();
  auto m = Marginal::Compute(d, MarginalSpec{{a, b}});
  ASSERT_TRUE(m.ok());

  std::map<std::pair<uint16_t, uint16_t>, double> brute;
  for (size_t r = 0; r < d.num_rows(); ++r) {
    brute[{d.value(r, a), d.value(r, b)}] += 1;
  }
  for (size_t cell = 0; cell < m->num_cells(); ++cell) {
    const std::vector<uint16_t> coords = m->CellCoordinates(cell);
    const auto it = brute.find({coords[0], coords[1]});
    const double expected = it == brute.end() ? 0.0 : it->second;
    ASSERT_DOUBLE_EQ(m->count(cell), expected) << "cell " << cell;
  }
}

TEST_P(MarginalPropertyTest, EveryMarginalSumsToRowCount) {
  const Dataset d = RandomDataset();
  for (int k = 1; k <= 2; ++k) {
    auto specs = AllKWaySpecs(d.schema(), k);
    ASSERT_TRUE(specs.ok());
    auto marginals = ComputeMarginals(d, *specs);
    ASSERT_TRUE(marginals.ok());
    for (const Marginal& m : *marginals) {
      ASSERT_DOUBLE_EQ(m.Total(), static_cast<double>(d.num_rows()));
    }
  }
}

TEST_P(MarginalPropertyTest, ProjectionOfFineEqualsDirectCoarse) {
  // ProjectMarginal(Compute({a, b}), {a}) == Compute({a}) — ties the
  // marginal engine and the post-processing module together.
  const Dataset d = RandomDataset();
  const uint32_t attrs =
      static_cast<uint32_t>(d.schema().num_attributes());
  for (uint32_t a = 0; a + 1 < attrs; ++a) {
    auto fine = Marginal::Compute(d, MarginalSpec{{a, a + 1}});
    ASSERT_TRUE(fine.ok());
    for (uint32_t keep : {a, a + 1}) {
      auto projected = ProjectMarginal(*fine, std::array<uint32_t, 1>{keep});
      ASSERT_TRUE(projected.ok());
      auto direct = Marginal::Compute(d, MarginalSpec{{keep}});
      ASSERT_TRUE(direct.ok());
      for (size_t c = 0; c < direct->num_cells(); ++c) {
        ASSERT_DOUBLE_EQ(projected->count(c), direct->count(c))
            << "attr " << keep << " cell " << c;
      }
    }
  }
}

TEST_P(MarginalPropertyTest, WorkloadRoundTripIsLossless) {
  const Dataset d = RandomDataset();
  auto specs = AllKWaySpecs(d.schema(), 2);
  ASSERT_TRUE(specs.ok());
  auto marginals = ComputeMarginals(d, *specs);
  ASSERT_TRUE(marginals.ok());
  const std::vector<Marginal> original = *marginals;
  auto mw = MarginalWorkload::Create(std::move(*marginals));
  ASSERT_TRUE(mw.ok());
  const auto answers = mw->workload().true_answers();
  auto rebuilt =
      mw->ToMarginals(std::vector<double>(answers.begin(), answers.end()));
  ASSERT_TRUE(rebuilt.ok());
  ASSERT_EQ(rebuilt->size(), original.size());
  for (size_t m = 0; m < original.size(); ++m) {
    for (size_t c = 0; c < original[m].num_cells(); ++c) {
      ASSERT_DOUBLE_EQ((*rebuilt)[m].count(c), original[m].count(c));
    }
  }
}

TEST_P(MarginalPropertyTest, FitProjectionIsExactAndMinimal) {
  const Dataset d = RandomDataset();
  auto fine = Marginal::Compute(d, MarginalSpec{{0, 1}});
  ASSERT_TRUE(fine.ok());
  // Fabricate a coarse target: the true attribute-0 marginal shifted.
  auto coarse = Marginal::Compute(d, MarginalSpec{{0}});
  ASSERT_TRUE(coarse.ok());
  std::vector<double> target(coarse->counts().begin(),
                             coarse->counts().end());
  for (size_t i = 0; i < target.size(); ++i) target[i] += 3.0 * (i + 1);
  auto coarse_shifted =
      Marginal::FromCounts(coarse->spec(), coarse->domain_sizes(), target);
  ASSERT_TRUE(coarse_shifted.ok());

  auto fitted = FitProjection(*fine, *coarse_shifted);
  ASSERT_TRUE(fitted.ok());
  auto projected = ProjectMarginal(*fitted, std::array<uint32_t, 1>{0});
  ASSERT_TRUE(projected.ok());
  for (size_t c = 0; c < projected->num_cells(); ++c) {
    ASSERT_NEAR(projected->count(c), target[c], 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomDatasets, MarginalPropertyTest,
    testing::Values(FuzzCase{11, 200}, FuzzCase{22, 777}, FuzzCase{33, 64},
                    FuzzCase{44, 1500}, FuzzCase{55, 9}),
    [](const testing::TestParamInfo<FuzzCase>& info) {
      return "seed" + std::to_string(info.param.seed) + "_rows" +
             std::to_string(info.param.rows);
    });

}  // namespace
}  // namespace ireduct
