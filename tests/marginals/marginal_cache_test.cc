#include "marginals/marginal_cache.h"

#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "marginals/marginal_set.h"

namespace ireduct {
namespace {

Dataset RandomDataset(uint64_t seed, size_t rows) {
  auto schema = Schema::Create({{"A", 4}, {"B", 3}, {"C", 5}});
  EXPECT_TRUE(schema.ok());
  Dataset d(std::move(schema).value());
  BitGen gen(seed);
  for (size_t r = 0; r < rows; ++r) {
    const std::array<uint16_t, 3> row{
        static_cast<uint16_t>(gen.UniformInt(4)),
        static_cast<uint16_t>(gen.UniformInt(3)),
        static_cast<uint16_t>(gen.UniformInt(5))};
    EXPECT_TRUE(d.AppendRow(row).ok());
  }
  return d;
}

void ExpectBitIdentical(const std::vector<Marginal>& got,
                        const std::vector<Marginal>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i].num_cells(), want[i].num_cells());
    EXPECT_EQ(std::memcmp(got[i].counts().data(), want[i].counts().data(),
                          got[i].num_cells() * sizeof(double)),
              0);
  }
}

TEST(MarginalCacheTest, CachedResultsMatchDirectComputation) {
  MarginalCache cache;
  const Dataset d = RandomDataset(3, 1000);
  auto specs = AllKWaySpecs(d.schema(), 2);
  ASSERT_TRUE(specs.ok());
  auto direct = ComputeMarginals(d, *specs);
  ASSERT_TRUE(direct.ok());

  auto cold = cache.GetOrCompute(d, *specs);
  ASSERT_TRUE(cold.ok());
  ExpectBitIdentical(*cold, *direct);
  EXPECT_EQ(cache.size(), specs->size());

  auto warm = cache.GetOrCompute(d, *specs);
  ASSERT_TRUE(warm.ok());
  ExpectBitIdentical(*warm, *direct);
  EXPECT_EQ(cache.size(), specs->size());
}

TEST(MarginalCacheTest, PartialHitsComputeOnlyMissingSpecs) {
  MarginalCache cache;
  const Dataset d = RandomDataset(5, 500);
  const std::vector<MarginalSpec> first{MarginalSpec{{0}},
                                        MarginalSpec{{0, 1}}};
  ASSERT_TRUE(cache.GetOrCompute(d, first).ok());
  EXPECT_EQ(cache.size(), 2u);

  const std::vector<MarginalSpec> second{
      MarginalSpec{{0, 1}}, MarginalSpec{{2}}, MarginalSpec{{1, 2}}};
  auto got = cache.GetOrCompute(d, second);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(cache.size(), 4u);
  auto direct = ComputeMarginals(d, second);
  ASSERT_TRUE(direct.ok());
  ExpectBitIdentical(*got, *direct);
}

TEST(MarginalCacheTest, DistinguishesDatasetsByFingerprint) {
  MarginalCache cache;
  Dataset a = RandomDataset(1, 300);
  const Dataset b = RandomDataset(2, 300);
  ASSERT_NE(a.Fingerprint(), b.Fingerprint());
  const std::vector<MarginalSpec> specs{MarginalSpec{{0, 2}}};

  auto from_a = cache.GetOrCompute(a, specs);
  auto from_b = cache.GetOrCompute(b, specs);
  ASSERT_TRUE(from_a.ok() && from_b.ok());
  EXPECT_EQ(cache.size(), 2u);
  auto direct_b = ComputeMarginals(b, specs);
  ASSERT_TRUE(direct_b.ok());
  ExpectBitIdentical(*from_b, *direct_b);

  // Appending a row changes the fingerprint, so the stale entry can
  // never be served for the grown dataset.
  const uint64_t before = a.Fingerprint();
  const std::array<uint16_t, 3> row{0, 0, 0};
  ASSERT_TRUE(a.AppendRow(row).ok());
  EXPECT_NE(a.Fingerprint(), before);
  auto regrown = cache.GetOrCompute(a, specs);
  ASSERT_TRUE(regrown.ok());
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ((*regrown)[0].Total(), 301.0);
}

TEST(MarginalCacheTest, PooledComputationIsBitIdentical) {
  MarginalCache cache;
  ThreadPool pool(8);
  const Dataset d = RandomDataset(9, 4000);
  auto specs = AllKWaySpecs(d.schema(), 2);
  ASSERT_TRUE(specs.ok());
  auto pooled = cache.GetOrCompute(d, *specs, &pool);
  ASSERT_TRUE(pooled.ok());
  auto direct = ComputeMarginals(d, *specs);
  ASSERT_TRUE(direct.ok());
  ExpectBitIdentical(*pooled, *direct);
}

TEST(MarginalCacheTest, ClearDropsEntries) {
  MarginalCache cache;
  const Dataset d = RandomDataset(4, 100);
  const std::vector<MarginalSpec> specs{MarginalSpec{{1}}};
  ASSERT_TRUE(cache.GetOrCompute(d, specs).ok());
  EXPECT_EQ(cache.size(), 1u);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
}

TEST(MarginalCacheTest, GlobalInstanceIsShared) {
  MarginalCache& a = MarginalCache::Global();
  MarginalCache& b = MarginalCache::Global();
  EXPECT_EQ(&a, &b);
}

TEST(MarginalCacheTest, ByteBudgetEvictsLeastRecentlyUsed) {
  MarginalCache cache;
  const Dataset d = RandomDataset(11, 400);
  const std::vector<MarginalSpec> a{MarginalSpec{{0}}};
  const std::vector<MarginalSpec> b{MarginalSpec{{1}}};
  const std::vector<MarginalSpec> c{MarginalSpec{{2}}};
  auto direct_a = ComputeMarginals(d, a);
  auto direct_c = ComputeMarginals(d, c);
  ASSERT_TRUE(direct_a.ok() && direct_c.ok());
  ASSERT_TRUE(cache.GetOrCompute(d, a).ok());
  ASSERT_TRUE(cache.GetOrCompute(d, b).ok());
  ASSERT_EQ(cache.size(), 2u);
  // Exactly enough room for the survivors of the upcoming insert: tables
  // have different domain sizes, so size the budget from the estimates the
  // eviction logic uses.
  const size_t budget = EstimateMarginalBytes((*direct_a)[0]) +
                        EstimateMarginalBytes((*direct_c)[0]);

  // Touch `a` so `b` becomes the LRU victim, then insert a third table.
  ASSERT_TRUE(cache.GetOrCompute(d, a).ok());
  cache.set_byte_budget(budget);
  auto from_c = cache.GetOrCompute(d, c);
  ASSERT_TRUE(from_c.ok());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_LE(cache.bytes(), budget);
  EXPECT_EQ(cache.evictions(), 1u);

  // `a` (recently used) and `c` (just inserted) are warm hits; `b` was
  // evicted and is recomputed — still correct, just not cached-hot.
  const size_t evictions_before = cache.evictions();
  ASSERT_TRUE(cache.GetOrCompute(d, a).ok());
  ASSERT_TRUE(cache.GetOrCompute(d, c).ok());
  auto from_b = cache.GetOrCompute(d, b);
  ASSERT_TRUE(from_b.ok());
  auto direct_b = ComputeMarginals(d, b);
  ASSERT_TRUE(direct_b.ok());
  ExpectBitIdentical(*from_b, *direct_b);
  // Recomputing `b` displaced the then-LRU entry to stay within budget.
  EXPECT_GT(cache.evictions(), evictions_before);
  EXPECT_LE(cache.bytes(), budget);
}

TEST(MarginalCacheTest, EvictionPreservesPartialHitCorrectness) {
  MarginalCache cache;
  const Dataset d = RandomDataset(13, 600);
  auto all = AllKWaySpecs(d.schema(), 2);
  ASSERT_TRUE(all.ok());
  // A budget big enough for roughly half the tables forces the request's
  // own inserts to evict each other; the returned batch must still be
  // complete and bit-identical to direct computation.
  ASSERT_TRUE(cache.GetOrCompute(d, *all).ok());
  cache.set_byte_budget(cache.bytes() / 2);
  EXPECT_LT(cache.size(), all->size());
  auto partial = cache.GetOrCompute(d, *all);
  ASSERT_TRUE(partial.ok());
  auto direct = ComputeMarginals(d, *all);
  ASSERT_TRUE(direct.ok());
  ExpectBitIdentical(*partial, *direct);
  EXPECT_LE(cache.bytes(), cache.byte_budget());
}

TEST(MarginalCacheTest, ZeroBudgetMeansUnlimited) {
  MarginalCache cache;
  EXPECT_EQ(cache.byte_budget(), 0u);
  const Dataset d = RandomDataset(17, 200);
  auto all = AllKWaySpecs(d.schema(), 2);
  ASSERT_TRUE(all.ok());
  ASSERT_TRUE(cache.GetOrCompute(d, *all).ok());
  EXPECT_EQ(cache.size(), all->size());
  EXPECT_EQ(cache.evictions(), 0u);
  EXPECT_GT(cache.bytes(), 0u);
  cache.Clear();
  EXPECT_EQ(cache.bytes(), 0u);
}

}  // namespace
}  // namespace ireduct
