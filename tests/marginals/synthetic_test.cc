#include "marginals/synthetic.h"

#include <gtest/gtest.h>

#include <vector>

#include "marginals/marginal_set.h"

namespace ireduct {
namespace {

Schema SmallSchema() {
  auto s = Schema::Create({{"F1", 3}, {"C", 2}, {"F2", 4}});
  EXPECT_TRUE(s.ok());
  return std::move(s).value();
}

// A dependent population: F1 tracks the class, F2 is uniform.
Dataset SourceData(int rows, uint64_t seed) {
  Dataset d(SmallSchema());
  BitGen gen(seed);
  for (int r = 0; r < rows; ++r) {
    const uint16_t cls = gen.Bernoulli(0.3) ? 1 : 0;
    const uint16_t f1 =
        gen.Bernoulli(0.9) ? (cls == 0 ? 0 : 2) : 1;  // strongly class-linked
    const uint16_t f2 = static_cast<uint16_t>(gen.UniformInt(4));
    EXPECT_TRUE(
        d.AppendRow(std::vector<uint16_t>{f1, cls, f2}).ok());
  }
  return d;
}

std::vector<Marginal> TrueMarginals(const Dataset& d) {
  auto specs = ClassifierSpecs(d.schema(), 1);
  EXPECT_TRUE(specs.ok());
  auto marginals = ComputeMarginals(d, *specs);
  EXPECT_TRUE(marginals.ok());
  return std::move(marginals).value();
}

TEST(SyntheticTest, ValidatesInputs) {
  const Dataset d = SourceData(100, 1);
  const std::vector<Marginal> marginals = TrueMarginals(d);
  BitGen gen(2);
  EXPECT_FALSE(SynthesizeFromClassifierMarginals(d.schema(), 9, marginals,
                                                 10, gen)
                   .ok());
  EXPECT_FALSE(SynthesizeFromClassifierMarginals(d.schema(), 1, marginals,
                                                 0, gen)
                   .ok());
  std::vector<Marginal> truncated(marginals.begin(), marginals.end() - 1);
  EXPECT_FALSE(SynthesizeFromClassifierMarginals(d.schema(), 1, truncated,
                                                 10, gen)
                   .ok());
}

TEST(SyntheticTest, ProducesRequestedRowsInSchema) {
  const Dataset d = SourceData(5000, 3);
  BitGen gen(4);
  auto synth = SynthesizeFromClassifierMarginals(d.schema(), 1,
                                                 TrueMarginals(d), 1234, gen);
  ASSERT_TRUE(synth.ok()) << synth.status();
  EXPECT_EQ(synth->num_rows(), 1234u);
  for (size_t r = 0; r < synth->num_rows(); ++r) {
    for (size_t c = 0; c < 3; ++c) {
      ASSERT_LT(synth->value(r, c), d.schema().attribute(c).domain_size);
    }
  }
}

TEST(SyntheticTest, PreservesClassDistributionAndDependence) {
  const Dataset d = SourceData(20'000, 5);
  BitGen gen(6);
  auto synth = SynthesizeFromClassifierMarginals(
      d.schema(), 1, TrueMarginals(d), 20'000, gen);
  ASSERT_TRUE(synth.ok());

  // Class fraction ≈ 0.3.
  size_t ones = 0;
  for (size_t r = 0; r < synth->num_rows(); ++r) {
    ones += synth->value(r, 1);
  }
  EXPECT_NEAR(ones / 20'000.0, 0.3, 0.02);

  // Dependence survives: class 0 rows mostly have F1 = 0.
  size_t class0 = 0, class0_f1_0 = 0;
  for (size_t r = 0; r < synth->num_rows(); ++r) {
    if (synth->value(r, 1) == 0) {
      ++class0;
      class0_f1_0 += synth->value(r, 0) == 0;
    }
  }
  EXPECT_GT(class0_f1_0 / static_cast<double>(class0), 0.8);
}

TEST(SyntheticTest, HandlesNegativeNoisyCounts) {
  const Dataset d = SourceData(500, 7);
  std::vector<Marginal> marginals = TrueMarginals(d);
  // Corrupt every count with a large negative offset.
  std::vector<Marginal> noisy;
  for (const Marginal& m : marginals) {
    std::vector<double> counts(m.counts().begin(), m.counts().end());
    for (double& c : counts) c -= 1000;
    auto rebuilt = Marginal::FromCounts(m.spec(), m.domain_sizes(),
                                        std::move(counts));
    ASSERT_TRUE(rebuilt.ok());
    noisy.push_back(std::move(*rebuilt));
  }
  BitGen gen(8);
  auto synth = SynthesizeFromClassifierMarginals(d.schema(), 1, noisy, 100,
                                                 gen);
  ASSERT_TRUE(synth.ok());  // degraded to near-uniform, but valid
  EXPECT_EQ(synth->num_rows(), 100u);
}

TEST(SyntheticTest, MarginalErrorSmallForNoiseFreeInputs) {
  const Dataset d = SourceData(30'000, 9);
  BitGen gen(10);
  auto synth = SynthesizeFromClassifierMarginals(
      d.schema(), 1, TrueMarginals(d), 30'000, gen);
  ASSERT_TRUE(synth.ok());
  auto specs = ClassifierSpecs(d.schema(), 1);
  ASSERT_TRUE(specs.ok());
  auto err = SyntheticMarginalError(d, *synth, *specs, 30.0);
  ASSERT_TRUE(err.ok());
  // Only sampling noise remains.
  EXPECT_LT(*err, 0.1);
}

TEST(SyntheticTest, MarginalErrorDetectsMismatch) {
  const Dataset d = SourceData(20'000, 11);
  // A synthetic table from an *independent* (class-free) model must show a
  // larger marginal error on the class-linked F1 x C marginal.
  Dataset independent(SmallSchema());
  BitGen gen(12);
  for (int r = 0; r < 20'000; ++r) {
    ASSERT_TRUE(independent
                    .AppendRow(std::vector<uint16_t>{
                        static_cast<uint16_t>(gen.UniformInt(3)),
                        static_cast<uint16_t>(gen.UniformInt(2)),
                        static_cast<uint16_t>(gen.UniformInt(4))})
                    .ok());
  }
  auto specs = ClassifierSpecs(d.schema(), 1);
  ASSERT_TRUE(specs.ok());
  auto err = SyntheticMarginalError(d, independent, *specs, 30.0);
  ASSERT_TRUE(err.ok());
  EXPECT_GT(*err, 0.3);
}

}  // namespace
}  // namespace ireduct
