#include "marginals/consistency.h"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

#include "common/random.h"
#include "marginals/marginal_set.h"
#include "marginals/postprocess.h"

namespace ireduct {
namespace {

Dataset TinyDataset() {
  auto schema = Schema::Create({{"A", 3}, {"B", 2}, {"C", 2}});
  EXPECT_TRUE(schema.ok());
  Dataset d(std::move(schema).value());
  BitGen gen(3);
  for (int r = 0; r < 600; ++r) {
    EXPECT_TRUE(
        d.AppendRow(std::vector<uint16_t>{
             static_cast<uint16_t>(gen.UniformInt(3)),
             static_cast<uint16_t>(gen.Bernoulli(0.3) ? 1 : 0),
             static_cast<uint16_t>(gen.Bernoulli(0.6) ? 1 : 0)})
            .ok());
  }
  return d;
}

// All 1D marginals plus all 2D marginals of the tiny dataset.
std::vector<Marginal> AllMarginals(const Dataset& d) {
  std::vector<Marginal> all;
  for (int k = 1; k <= 2; ++k) {
    auto specs = AllKWaySpecs(d.schema(), k);
    EXPECT_TRUE(specs.ok());
    auto marginals = ComputeMarginals(d, *specs);
    EXPECT_TRUE(marginals.ok());
    for (Marginal& m : *marginals) all.push_back(std::move(m));
  }
  return all;
}

TEST(ConsistencyTest, ExactMarginalsHaveZeroDiscrepancy) {
  const Dataset d = TinyDataset();
  const std::vector<Marginal> marginals = AllMarginals(d);
  EXPECT_DOUBLE_EQ(MaxProjectionDiscrepancy(marginals), 0.0);
}

TEST(ConsistencyTest, ExactSetIsAFixpoint) {
  const Dataset d = TinyDataset();
  std::vector<Marginal> marginals = AllMarginals(d);
  ConsistencyOptions options;
  options.target_total = static_cast<double>(d.num_rows());
  auto repaired = MakeMutuallyConsistent(marginals, options);
  ASSERT_TRUE(repaired.ok());
  for (size_t m = 0; m < marginals.size(); ++m) {
    for (size_t c = 0; c < marginals[m].num_cells(); ++c) {
      EXPECT_NEAR((*repaired)[m].count(c), marginals[m].count(c), 1e-6);
    }
  }
}

TEST(ConsistencyTest, NoisyMarginalsBecomeConsistent) {
  const Dataset d = TinyDataset();
  std::vector<Marginal> noisy;
  BitGen gen(9);
  for (const Marginal& m : AllMarginals(d)) {
    std::vector<double> counts(m.counts().begin(), m.counts().end());
    for (double& c : counts) c += gen.Laplace(8.0);
    auto rebuilt =
        Marginal::FromCounts(m.spec(), m.domain_sizes(), std::move(counts));
    ASSERT_TRUE(rebuilt.ok());
    noisy.push_back(std::move(*rebuilt));
  }
  const double before = MaxProjectionDiscrepancy(noisy);
  EXPECT_GT(before, 1.0);  // the noise breaks consistency

  ConsistencyOptions options;
  options.target_total = static_cast<double>(d.num_rows());
  options.tolerance = 1e-6;
  auto repaired = MakeMutuallyConsistent(std::move(noisy), options);
  ASSERT_TRUE(repaired.ok());
  EXPECT_LT(MaxProjectionDiscrepancy(*repaired), 1e-4);
  // Totals align with |T|.
  for (const Marginal& m : *repaired) {
    EXPECT_NEAR(m.Total(), 600.0, 1e-6);
  }
}

TEST(ConsistencyTest, RepairStaysNearTheNoisyInput) {
  // Consistency is a repair, not a rewrite: cells move by amounts
  // comparable to the injected noise, not by the count magnitudes.
  const Dataset d = TinyDataset();
  std::vector<Marginal> noisy;
  BitGen gen(10);
  for (const Marginal& m : AllMarginals(d)) {
    std::vector<double> counts(m.counts().begin(), m.counts().end());
    for (double& c : counts) c += gen.Laplace(3.0);
    auto rebuilt =
        Marginal::FromCounts(m.spec(), m.domain_sizes(), std::move(counts));
    ASSERT_TRUE(rebuilt.ok());
    noisy.push_back(std::move(*rebuilt));
  }
  ConsistencyOptions options;
  options.target_total = 600;
  auto repaired = MakeMutuallyConsistent(noisy, options);
  ASSERT_TRUE(repaired.ok());
  for (size_t m = 0; m < noisy.size(); ++m) {
    for (size_t c = 0; c < noisy[m].num_cells(); ++c) {
      EXPECT_LT(std::fabs((*repaired)[m].count(c) - noisy[m].count(c)),
                60.0)
          << "marginal " << m << " cell " << c;
    }
  }
}

TEST(ConsistencyTest, SetsWithoutSubsetPairsOnlyGetTotalAlignment) {
  const Dataset d = TinyDataset();
  auto specs = AllKWaySpecs(d.schema(), 1);
  ASSERT_TRUE(specs.ok());
  auto marginals = ComputeMarginals(d, *specs);
  ASSERT_TRUE(marginals.ok());
  EXPECT_DOUBLE_EQ(MaxProjectionDiscrepancy(*marginals), 0.0);
  ConsistencyOptions options;
  options.target_total = 900;  // deliberately different from |T|
  auto repaired = MakeMutuallyConsistent(*marginals, options);
  ASSERT_TRUE(repaired.ok());
  for (const Marginal& m : *repaired) {
    EXPECT_NEAR(m.Total(), 900.0, 1e-9);
  }
}

TEST(ConsistencyTest, ValidatesOptions) {
  EXPECT_FALSE(MakeMutuallyConsistent({}, ConsistencyOptions{}).ok());
  const Dataset d = TinyDataset();
  ConsistencyOptions bad;
  bad.max_rounds = 0;
  EXPECT_FALSE(MakeMutuallyConsistent(AllMarginals(d), bad).ok());
}

}  // namespace
}  // namespace ireduct
