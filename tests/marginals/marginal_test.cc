#include "marginals/marginal.h"

#include <gtest/gtest.h>

#include <array>
#include <vector>

namespace ireduct {
namespace {

// The paper's running example (Tables 2 and 3): five people with Age,
// (Marital) Status and Gender; the {Status, Gender} marginal.
Dataset PaperDataset() {
  auto schema =
      Schema::Create({{"Age", 101}, {"Status", 4}, {"Gender", 2}});
  EXPECT_TRUE(schema.ok());
  Dataset d(std::move(schema).value());
  // Status coding: 0=Single, 1=Married, 2=Divorced, 3=Widowed.
  // Gender coding: 0=M, 1=F.
  const std::array<std::array<uint16_t, 3>, 5> rows{{
      {23, 0, 0},  // 23, Single, M
      {25, 0, 1},  // 25, Single, F
      {35, 1, 1},  // 35, Married, F
      {37, 1, 1},  // 37, Married, F
      {85, 3, 1},  // 85, Widowed, F
  }};
  for (const auto& row : rows) EXPECT_TRUE(d.AppendRow(row).ok());
  return d;
}

TEST(MarginalTest, MatchesPaperTableThree) {
  const Dataset d = PaperDataset();
  auto m = Marginal::Compute(d, MarginalSpec{{1, 2}});  // Status x Gender
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->num_cells(), 8u);
  auto cell = [&](uint16_t status, uint16_t gender) {
    return m->count(m->CellIndex(std::array<uint16_t, 2>{status, gender}));
  };
  EXPECT_EQ(cell(0, 0), 1);  // Single M
  EXPECT_EQ(cell(0, 1), 1);  // Single F
  EXPECT_EQ(cell(1, 0), 0);  // Married M
  EXPECT_EQ(cell(1, 1), 2);  // Married F
  EXPECT_EQ(cell(2, 0), 0);  // Divorced M
  EXPECT_EQ(cell(2, 1), 0);  // Divorced F
  EXPECT_EQ(cell(3, 0), 0);  // Widowed M
  EXPECT_EQ(cell(3, 1), 1);  // Widowed F
  EXPECT_DOUBLE_EQ(m->Total(), 5.0);
}

TEST(MarginalTest, OneDimensionalCounts) {
  const Dataset d = PaperDataset();
  auto m = Marginal::Compute(d, MarginalSpec{{1}});
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->count(0), 2);
  EXPECT_EQ(m->count(1), 2);
  EXPECT_EQ(m->count(2), 0);
  EXPECT_EQ(m->count(3), 1);
}

TEST(MarginalTest, RowSubsetRestrictsCounts) {
  const Dataset d = PaperDataset();
  const std::vector<uint32_t> rows{0, 4};
  auto m = Marginal::Compute(d, MarginalSpec{{2}}, rows);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->count(0), 1);  // one male in the subset
  EXPECT_EQ(m->count(1), 1);
}

TEST(MarginalTest, ComputeValidatesSpec) {
  const Dataset d = PaperDataset();
  EXPECT_FALSE(Marginal::Compute(d, MarginalSpec{{}}).ok());
  EXPECT_FALSE(Marginal::Compute(d, MarginalSpec{{7}}).ok());
  EXPECT_FALSE(Marginal::Compute(d, MarginalSpec{{1, 1}}).ok());
  const std::vector<uint32_t> bad_rows{99};
  EXPECT_FALSE(Marginal::Compute(d, MarginalSpec{{1}}, bad_rows).ok());
}

TEST(MarginalTest, CellIndexRoundTripsCoordinates) {
  const Dataset d = PaperDataset();
  auto m = Marginal::Compute(d, MarginalSpec{{1, 2}});
  ASSERT_TRUE(m.ok());
  for (size_t cell = 0; cell < m->num_cells(); ++cell) {
    const std::vector<uint16_t> coords = m->CellCoordinates(cell);
    EXPECT_EQ(m->CellIndex(coords), cell);
  }
}

TEST(MarginalTest, TotalInvariantAcrossSpecs) {
  // Every marginal of the same dataset sums to |T|.
  const Dataset d = PaperDataset();
  for (const MarginalSpec& spec :
       {MarginalSpec{{0}}, MarginalSpec{{1, 2}}, MarginalSpec{{0, 1, 2}}}) {
    auto m = Marginal::Compute(d, spec);
    ASSERT_TRUE(m.ok());
    EXPECT_DOUBLE_EQ(m->Total(), 5.0);
  }
}

TEST(MarginalTest, FromCountsValidates) {
  EXPECT_FALSE(
      Marginal::FromCounts(MarginalSpec{{0}}, {2, 3}, {1, 2}).ok());
  EXPECT_FALSE(Marginal::FromCounts(MarginalSpec{{0}}, {3}, {1, 2}).ok());
  auto m = Marginal::FromCounts(MarginalSpec{{0, 1}}, {2, 2}, {1, 2, 3, 4});
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->count(m->CellIndex(std::array<uint16_t, 2>{1, 0})), 3);
}

TEST(MarginalTest, SpecNameUsesSchema) {
  const Dataset d = PaperDataset();
  const MarginalSpec spec{{1, 2}};
  EXPECT_EQ(spec.Name(d.schema()), "Status x Gender");
}

}  // namespace
}  // namespace ireduct
