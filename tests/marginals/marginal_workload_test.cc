#include "marginals/marginal_workload.h"

#include <gtest/gtest.h>

#include <vector>

#include "marginals/marginal_set.h"

namespace ireduct {
namespace {

Dataset TinyDataset() {
  auto schema = Schema::Create({{"A", 2}, {"B", 3}});
  EXPECT_TRUE(schema.ok());
  Dataset d(std::move(schema).value());
  EXPECT_TRUE(d.AppendRow(std::vector<uint16_t>{0, 0}).ok());
  EXPECT_TRUE(d.AppendRow(std::vector<uint16_t>{0, 2}).ok());
  EXPECT_TRUE(d.AppendRow(std::vector<uint16_t>{1, 2}).ok());
  return d;
}

MarginalWorkload MakeWorkload() {
  const Dataset d = TinyDataset();
  auto specs = AllKWaySpecs(d.schema(), 1);
  EXPECT_TRUE(specs.ok());
  auto marginals = ComputeMarginals(d, *specs);
  EXPECT_TRUE(marginals.ok());
  auto mw = MarginalWorkload::Create(std::move(*marginals));
  EXPECT_TRUE(mw.ok());
  return std::move(mw).value();
}

TEST(MarginalWorkloadTest, FlattensCellsInOrder) {
  const MarginalWorkload mw = MakeWorkload();
  const Workload& w = mw.workload();
  EXPECT_EQ(w.num_queries(), 5u);  // |A| + |B| = 2 + 3
  EXPECT_EQ(w.num_groups(), 2u);
  // A-marginal counts: {2, 1}; B-marginal counts: {1, 0, 2}.
  EXPECT_DOUBLE_EQ(w.true_answer(0), 2);
  EXPECT_DOUBLE_EQ(w.true_answer(1), 1);
  EXPECT_DOUBLE_EQ(w.true_answer(2), 1);
  EXPECT_DOUBLE_EQ(w.true_answer(3), 0);
  EXPECT_DOUBLE_EQ(w.true_answer(4), 2);
}

TEST(MarginalWorkloadTest, SensitivityIsTwoPerMarginal) {
  const MarginalWorkload mw = MakeWorkload();
  // S(Q) = 2·|M| (Section 5.1).
  EXPECT_DOUBLE_EQ(mw.workload().Sensitivity(), 4.0);
  // GS with uniform λ: 2·|M|/λ.
  const std::vector<double> scales{10, 10};
  EXPECT_DOUBLE_EQ(mw.workload().GeneralizedSensitivity(scales), 0.4);
}

TEST(MarginalWorkloadTest, ToMarginalsRoundTrips) {
  const MarginalWorkload mw = MakeWorkload();
  const std::vector<double> answers{2.5, 0.5, 1.5, -0.5, 2.0};
  auto noisy = mw.ToMarginals(answers);
  ASSERT_TRUE(noisy.ok());
  ASSERT_EQ(noisy->size(), 2u);
  EXPECT_DOUBLE_EQ((*noisy)[0].count(0), 2.5);
  EXPECT_DOUBLE_EQ((*noisy)[1].count(1), -0.5);
  EXPECT_EQ((*noisy)[0].spec().attributes, std::vector<uint32_t>{0});
}

TEST(MarginalWorkloadTest, ToMarginalsValidatesSize) {
  const MarginalWorkload mw = MakeWorkload();
  const std::vector<double> wrong{1, 2, 3};
  EXPECT_FALSE(mw.ToMarginals(wrong).ok());
}

TEST(MarginalWorkloadTest, CreateRejectsEmpty) {
  EXPECT_FALSE(MarginalWorkload::Create({}).ok());
}

TEST(MarginalWorkloadTest, ToLinearAnswersMatchTrueAnswers) {
  // The cell-indicator lowering: answering the marginal workload through
  // the joint histogram reproduces the flattened true answers exactly.
  const Dataset d = TinyDataset();
  const MarginalWorkload mw = MakeWorkload();
  auto lw = mw.ToLinear(d);
  ASSERT_TRUE(lw.ok());
  EXPECT_EQ(lw->domain_size(), 6u);  // joint domain |A|·|B|
  EXPECT_EQ(lw->num_queries(), mw.workload().num_queries());
  EXPECT_EQ(lw->neighbor_model(), NeighborModel::kMove);
  const std::vector<double> answers = lw->Answers();
  for (size_t i = 0; i < answers.size(); ++i) {
    EXPECT_DOUBLE_EQ(answers[i], mw.workload().true_answer(i)) << i;
  }
  // Each joint cell projects onto exactly one cell of each marginal, so
  // the unweighted column L1 norm is the marginal count; one *moved*
  // tuple changes two cells per marginal, matching Sensitivity() = 2|M|.
  EXPECT_DOUBLE_EQ(lw->tuple_factor() * lw->MaxColumnL1(),
                   mw.workload().Sensitivity());
}

TEST(MarginalWorkloadTest, ToLinearRefusesHugeJointDomains) {
  const Dataset d = TinyDataset();
  const MarginalWorkload mw = MakeWorkload();
  EXPECT_FALSE(mw.ToLinear(d, /*max_cells=*/5).ok());
  EXPECT_TRUE(mw.ToLinear(d, /*max_cells=*/6).ok());
}

TEST(MarginalWorkloadTest, ToLinearValidatesSchema) {
  const MarginalWorkload mw = MakeWorkload();
  // A dataset whose schema lacks attribute 1 cannot host the lowering.
  auto schema = Schema::Create({{"A", 2}});
  ASSERT_TRUE(schema.ok());
  Dataset narrow(std::move(schema).value());
  ASSERT_TRUE(narrow.AppendRow(std::vector<uint16_t>{0}).ok());
  EXPECT_FALSE(mw.ToLinear(narrow).ok());
}

TEST(MarginalWorkloadTest, TwoWayMarginalFlattening) {
  const Dataset d = TinyDataset();
  auto marginals = ComputeMarginals(
      d, std::vector<MarginalSpec>{MarginalSpec{{0, 1}}});
  ASSERT_TRUE(marginals.ok());
  auto mw = MarginalWorkload::Create(std::move(*marginals));
  ASSERT_TRUE(mw.ok());
  EXPECT_EQ(mw->workload().num_queries(), 6u);
  // Row-major: (0,0)=1 (0,1)=0 (0,2)=1 (1,0)=0 (1,1)=0 (1,2)=1.
  EXPECT_DOUBLE_EQ(mw->workload().true_answer(0), 1);
  EXPECT_DOUBLE_EQ(mw->workload().true_answer(2), 1);
  EXPECT_DOUBLE_EQ(mw->workload().true_answer(5), 1);
}

}  // namespace
}  // namespace ireduct
