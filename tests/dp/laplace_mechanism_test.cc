#include "dp/laplace_mechanism.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "eval/stats.h"

namespace ireduct {
namespace {

TEST(LaplaceMechanismTest, RejectsSizeMismatch) {
  BitGen gen(1);
  const std::vector<double> values{1, 2};
  const std::vector<double> scales{1};
  EXPECT_FALSE(AddLaplaceNoise(values, scales, gen).ok());
}

TEST(LaplaceMechanismTest, RejectsNonPositiveScales) {
  BitGen gen(1);
  const std::vector<double> values{1};
  EXPECT_FALSE(AddLaplaceNoise(values, std::vector<double>{0.0}, gen).ok());
  EXPECT_FALSE(AddLaplaceNoise(values, std::vector<double>{-1.0}, gen).ok());
}

TEST(LaplaceMechanismTest, NoiseIsCenteredWithRequestedScale) {
  BitGen gen(42);
  const int n = 100'000;
  const std::vector<double> values(n, 50.0);
  const std::vector<double> scales(n, 3.0);
  auto noisy = AddLaplaceNoise(values, scales, gen);
  ASSERT_TRUE(noisy.ok());
  std::vector<double> noise(n);
  for (int i = 0; i < n; ++i) noise[i] = (*noisy)[i] - 50.0;
  const SampleSummary s = Summarize(noise);
  EXPECT_NEAR(s.mean, 0.0, 0.05);
  EXPECT_NEAR(s.mean_abs_deviation, 3.0, 0.05);  // E|Lap(b)| = b
}

TEST(LaplaceMechanismTest, PerQueryScalesAreHonored) {
  BitGen gen(7);
  const int n = 60'000;
  std::vector<double> values(2 * n, 0.0);
  std::vector<double> scales(2 * n);
  for (int i = 0; i < n; ++i) {
    scales[i] = 1.0;
    scales[n + i] = 10.0;
  }
  auto noisy = AddLaplaceNoise(values, scales, gen);
  ASSERT_TRUE(noisy.ok());
  const SampleSummary small =
      Summarize(std::span<const double>(*noisy).subspan(0, n));
  const SampleSummary big =
      Summarize(std::span<const double>(*noisy).subspan(n, n));
  EXPECT_NEAR(small.mean_abs_deviation, 1.0, 0.05);
  EXPECT_NEAR(big.mean_abs_deviation, 10.0, 0.5);
}

TEST(LaplaceMechanismTest, WorkloadVersionExpandsGroupScales) {
  BitGen gen(9);
  auto w = Workload::Create(
      {100, 200, 300},
      {QueryGroup{"A", 0, 1, 1.0}, QueryGroup{"B", 1, 3, 1.0}});
  ASSERT_TRUE(w.ok());
  auto noisy = LaplaceNoise(*w, std::vector<double>{1.0, 5.0}, gen);
  ASSERT_TRUE(noisy.ok());
  EXPECT_EQ(noisy->size(), 3u);
  // One scale per group, not per query.
  EXPECT_FALSE(LaplaceNoise(*w, std::vector<double>{1.0, 2.0, 3.0}, gen).ok());
}

TEST(LaplaceMechanismTest, DeterministicGivenSeed) {
  const std::vector<double> values{1, 2, 3};
  const std::vector<double> scales{1, 1, 1};
  BitGen g1(5), g2(5);
  auto a = AddLaplaceNoise(values, scales, g1);
  auto b = AddLaplaceNoise(values, scales, g2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
}

}  // namespace
}  // namespace ireduct
