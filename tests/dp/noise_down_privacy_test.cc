// Verifies the privacy structure of NoiseDown (Section 4.1, Theorem 1).
//
// Structural identities of the *raw* Equation 6 density (exact):
//  * The joint Lap(y; μ, λ)·f_raw(y'|y) factors as Lap(y'; μ, λ')·γ(y-y')
//    with γ independent of μ — an adversary seeing both answers learns
//    exactly what the single reduced-noise answer reveals.
//  * Consequently the raw joint likelihood ratio between adjacent datasets
//    (μ vs μ±1 for a unit count query) is bounded by e^{1/λ'} exactly.
//  * Independent resampling (the iResamp approach) pays e^{1/λ'+1/λ}
//    instead — the gap iReduct exploits.
//
// The *actual* sampler normalizes Equation 6 (see the reproduction notes
// in dp/noise_down.h), which perturbs the bound by O(1/λ'²): we check the
// slack is tiny at the paper's operating scales and bounded at toy scales.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/numeric.h"
#include "dp/noise_down.h"

namespace ireduct {
namespace {

double LaplaceLogPdf(double x, double mu, double b) {
  return -std::log(2 * b) - std::fabs(x - mu) / b;
}

// log joint density of observing first Y=y then Y'=y' when the true answer
// is mu, under the *raw* (unnormalized) Equation 6 conditional.
double LogJointRaw(double mu, double y, double yp, double lambda, double lp) {
  auto dist = NoiseDownDistribution::Create(mu, y, lambda, lp);
  EXPECT_TRUE(dist.ok()) << dist.status();
  return LaplaceLogPdf(y, mu, lambda) + dist->LogPdf(yp) +
         std::log(dist->normalization());
}

// Same under the actual normalized conditional the sampler draws from.
double LogJointActual(double mu, double y, double yp, double lambda,
                      double lp) {
  auto dist = NoiseDownDistribution::Create(mu, y, lambda, lp);
  EXPECT_TRUE(dist.ok()) << dist.status();
  return LaplaceLogPdf(y, mu, lambda) + dist->LogPdf(yp);
}

TEST(NoiseDownPrivacyTest, RawJointFactorsThroughMuIndependentGamma) {
  // J_mu(y, y') / Lap(y'; mu, λ') must not depend on mu.
  const double lambda = 2.0, lp = 1.0;
  for (double y : {-1.5, 0.0, 2.25}) {
    for (double yp : {-2.0, -0.5, 0.0, 0.7, 1.5, 3.0}) {
      const double g0 = LogJointRaw(0.0, y, yp, lambda, lp) -
                        LaplaceLogPdf(yp, 0.0, lp);
      for (double mu : {-3.0, 0.4, 1.0, 5.5}) {
        const double gm = LogJointRaw(mu, y, yp, lambda, lp) -
                          LaplaceLogPdf(yp, mu, lp);
        ASSERT_NEAR(gm, g0, 1e-9)
            << "mu=" << mu << " y=" << y << " y'=" << yp;
      }
    }
  }
}

TEST(NoiseDownPrivacyTest, GammaIsAProbabilityKernelOverY) {
  // γ(λ',λ,y',·) = Pr[Y = y | Y' = y'] must integrate to 1 over y.
  const double lambda = 2.0, lp = 1.0;
  for (double yp : {-1.0, 0.0, 2.5}) {
    auto gamma = [&](double y) {
      return std::exp(LogJointRaw(0.0, y, yp, lambda, lp) -
                      LaplaceLogPdf(yp, 0.0, lp));
    };
    // Kinks at y = yp, yp±1 and at y = mu = 0.
    std::vector<double> cuts{-60.0, 0.0, yp - 1, yp, yp + 1, 60.0};
    std::sort(cuts.begin(), cuts.end());
    double total = 0;
    for (size_t i = 0; i + 1 < cuts.size(); ++i) {
      if (cuts[i + 1] > cuts[i]) {
        total += SimpsonIntegrate(gamma, cuts[i], cuts[i + 1], 4000);
      }
    }
    EXPECT_NEAR(total, 1.0, 1e-6) << "y'=" << yp;
  }
}

TEST(NoiseDownPrivacyTest, RawJointRatioBoundedByReducedScaleOnly) {
  // For a unit count query (adjacent datasets shift mu by 1), the raw pair
  // (Y, Y') satisfies (1/λ')-DP: |log J_c - log J_{c+1}| <= 1/λ'.
  const double lambda = 3.0, lp = 1.25;
  const double bound = 1.0 / lp + 1e-9;
  for (double c : {-2.0, 0.0, 4.0}) {
    for (double y : {c - 4.0, c - 0.4, c + 0.6, c + 4.0}) {
      for (double yp : {c - 5.0, c - 1.0, c + 0.25, c + 1.3, c + 6.0}) {
        const double ratio = LogJointRaw(c, y, yp, lambda, lp) -
                             LogJointRaw(c + 1, y, yp, lambda, lp);
        ASSERT_LE(std::fabs(ratio), bound)
            << "c=" << c << " y=" << y << " y'=" << yp;
      }
    }
  }
}

TEST(NoiseDownPrivacyTest, ActualJointRatioWithinDocumentedSlack) {
  // The normalized sampler's privacy cost is (1 + c)/λ' with c ≤ ~0.06:
  // the normalizer Z(|y-μ|) shifts by O(1/λ') between adjacent datasets
  // when the noisy answer lands within unit distance of the true count.
  struct Case {
    double lambda, lp;
  };
  for (const Case& c : {Case{3.0, 1.25}, Case{30.0, 12.5},
                        Case{3000.0, 1250.0}}) {
    const double bound = 1.06 / c.lp;
    for (double y : {-4.0, -0.4, 0.6, 4.0}) {
      for (double yp : {-5.0, -1.0, 0.25, 1.3, 6.0}) {
        const double ratio = LogJointActual(0.0, y, yp, c.lambda, c.lp) -
                             LogJointActual(1.0, y, yp, c.lambda, c.lp);
        ASSERT_LE(std::fabs(ratio), bound)
            << "lambda'=" << c.lp << " y=" << y << " y'=" << yp;
      }
    }
  }
}

TEST(NoiseDownPrivacyTest, RawJointRatioIsTightSomewhere) {
  // The bound e^{1/λ'} is achieved (e.g. both answers far below both
  // candidate means) — the mechanism spends exactly its budget.
  const double lambda = 3.0, lp = 1.25;
  const double ratio = LogJointRaw(1.0, -8.0, -9.0, lambda, lp) -
                       LogJointRaw(0.0, -8.0, -9.0, lambda, lp);
  EXPECT_NEAR(std::fabs(ratio), 1.0 / lp, 1e-6);
}

TEST(NoiseDownPrivacyTest, IndependentResamplingLeaksMore) {
  // Section 4.1's opening computation: independent samples at scales λ and
  // λ' have joint ratio e^{1/λ + 1/λ'} when both answers sit below both
  // means — strictly worse than NoiseDown's e^{1/λ'}.
  const double lambda = 3.0, lp = 1.25;
  const double y = -8.0, yp = -9.0;
  auto log_joint_indep = [&](double mu) {
    return LaplaceLogPdf(y, mu, lambda) + LaplaceLogPdf(yp, mu, lp);
  };
  const double indep_ratio =
      std::fabs(log_joint_indep(1.0) - log_joint_indep(0.0));
  EXPECT_NEAR(indep_ratio, 1.0 / lambda + 1.0 / lp, 1e-9);
  EXPECT_GT(indep_ratio, 1.0 / lp + 1e-6);
}

TEST(NoiseDownPrivacyTest, RawConditionalMarginalizesToLaplace) {
  // ∫ Lap(y; μ, λ) f_raw(y'|y) dy = Lap(y'; μ, λ') — the y-marginalization
  // companion of Theorem 1(i), checked numerically.
  const double mu = 0.7, lambda = 2.0, lp = 0.9;
  for (double yp : {-2.0, 0.0, 0.7, 1.1, 3.5}) {
    auto integrand = [&](double y) {
      return std::exp(LogJointRaw(mu, y, yp, lambda, lp));
    };
    std::vector<double> cuts{mu - 60, mu, yp - 1, yp, yp + 1, mu + 60};
    std::sort(cuts.begin(), cuts.end());
    double total = 0;
    for (size_t i = 0; i + 1 < cuts.size(); ++i) {
      if (cuts[i + 1] > cuts[i]) {
        total += SimpsonIntegrate(integrand, cuts[i], cuts[i + 1], 4000);
      }
    }
    EXPECT_NEAR(total, std::exp(LaplaceLogPdf(yp, mu, lp)), 1e-6)
        << "y'=" << yp;
  }
}

}  // namespace
}  // namespace ireduct
