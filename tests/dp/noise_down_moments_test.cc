// Moment and shape properties of the NoiseDown conditional distribution:
// where the conditional mass concentrates, how the conditional mean
// interpolates between the previous answer and the true answer, and how
// variance contracts along a chain.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/numeric.h"
#include "dp/noise_down.h"
#include "eval/stats.h"

namespace ireduct {
namespace {

// Numeric conditional mean of Y' | Y = y via the normalized pdf.
double ConditionalMean(const NoiseDownDistribution& dist) {
  const double span = 60 * dist.lambda();
  auto integrand = [&](double x) { return x * dist.Pdf(x); };
  // Split at the kinks.
  std::vector<double> cuts{dist.mu() - span, dist.mu(), dist.y() - 1,
                           dist.y(), dist.y() + 1, dist.mu() + span};
  std::sort(cuts.begin(), cuts.end());
  double mean = 0;
  for (size_t i = 0; i + 1 < cuts.size(); ++i) {
    if (cuts[i + 1] > cuts[i]) {
      mean += SimpsonIntegrate(integrand, cuts[i], cuts[i + 1], 6000);
    }
  }
  return mean;
}

TEST(NoiseDownMomentsTest, ConditionalMeanPullsTowardTruth) {
  // Given a noisy answer far from the truth, the refined answer's
  // conditional mean sits strictly between y and μ: resampling shrinks
  // toward the true answer (that is where the accuracy gain comes from).
  const double mu = 0.0, lambda = 3.0, lp = 1.0;
  for (double y : {4.0, 8.0, -6.0}) {
    auto dist = NoiseDownDistribution::Create(mu, y, lambda, lp);
    ASSERT_TRUE(dist.ok());
    const double mean = ConditionalMean(*dist);
    if (y > mu) {
      EXPECT_LT(mean, y);
      EXPECT_GT(mean, mu);
    } else {
      EXPECT_GT(mean, y);
      EXPECT_LT(mean, mu);
    }
  }
}

TEST(NoiseDownMomentsTest, ConditionalMeanNearYWhenScalesClose) {
  // A tiny reduction barely moves the estimate (the mollified-atom
  // regime: most mass stays within the unit interval around y).
  auto dist = NoiseDownDistribution::Create(0.0, 5.0, 10.0, 9.9);
  ASSERT_TRUE(dist.ok());
  EXPECT_NEAR(ConditionalMean(*dist), 5.0, 0.35);
  EXPECT_GT(dist->middle_mass(), 0.9);
}

TEST(NoiseDownMomentsTest, BigReductionMovesMassTowardTruth) {
  // A large reduction (λ' << λ) re-centers most of the mass near μ.
  auto dist = NoiseDownDistribution::Create(0.0, 9.0, 10.0, 1.0);
  ASSERT_TRUE(dist.ok());
  EXPECT_NEAR(ConditionalMean(*dist), 0.0, 1.2);
}

TEST(NoiseDownMomentsTest, ChainVarianceMatchesFinalScale) {
  // The unconditional variance after a chain equals the final Laplace
  // variance 2λ'², not an accumulation of the steps.
  const double mu = 0.0;
  BitGen gen(5);
  std::vector<double> sample(50'000);
  for (double& s : sample) {
    double y = gen.Laplace(mu, 40.0);
    double prev = 40.0;
    for (double target : {25.0, 16.0, 10.0}) {
      auto yp = NoiseDown(mu, y, prev, target, gen);
      ASSERT_TRUE(yp.ok());
      y = *yp;
      prev = target;
    }
    s = y;
  }
  const SampleSummary summary = Summarize(sample);
  EXPECT_NEAR(summary.variance, 2 * 10.0 * 10.0, 8.0);
  EXPECT_NEAR(summary.mean_abs_deviation, 10.0, 0.3);
}

TEST(NoiseDownMomentsTest, ConditionalVarianceBelowFreshResample) {
  // Conditioning on the previous sample is what saves budget, but it also
  // means the per-step conditional variance is below a fresh Laplace(λ')
  // draw whenever y is informative (close to μ).
  auto dist = NoiseDownDistribution::Create(0.0, 0.5, 3.0, 1.5);
  ASSERT_TRUE(dist.ok());
  BitGen gen(6);
  std::vector<double> sample(60'000);
  for (double& s : sample) s = dist->Sample(gen);
  const SampleSummary summary = Summarize(sample);
  EXPECT_LT(summary.variance, 2 * 1.5 * 1.5);
}

TEST(NoiseDownMomentsTest, SampleMomentsMatchPdfMoments) {
  const auto dist = NoiseDownDistribution::Create(1.0, 3.5, 4.0, 2.0);
  ASSERT_TRUE(dist.ok());
  BitGen gen(7);
  std::vector<double> sample(120'000);
  for (double& s : sample) s = dist->Sample(gen);
  const SampleSummary summary = Summarize(sample);
  EXPECT_NEAR(summary.mean, ConditionalMean(*dist),
              5 * std::sqrt(summary.variance / sample.size()));
}

}  // namespace
}  // namespace ireduct
