#include "dp/privacy_accountant.h"

#include <gtest/gtest.h>

namespace ireduct {
namespace {

TEST(PrivacyAccountantTest, CreateValidatesBudget) {
  EXPECT_FALSE(PrivacyAccountant::Create(0).ok());
  EXPECT_FALSE(PrivacyAccountant::Create(-1).ok());
  EXPECT_TRUE(PrivacyAccountant::Create(0.01).ok());
}

TEST(PrivacyAccountantTest, ChargesAccumulate) {
  auto acct = PrivacyAccountant::Create(1.0);
  ASSERT_TRUE(acct.ok());
  EXPECT_TRUE(acct->Charge("phase1", 0.3).ok());
  EXPECT_TRUE(acct->Charge("phase2", 0.5).ok());
  EXPECT_DOUBLE_EQ(acct->spent(), 0.8);
  EXPECT_NEAR(acct->remaining(), 0.2, 1e-12);
  EXPECT_EQ(acct->ledger().size(), 2u);
  EXPECT_EQ(acct->ledger()[0].label, "phase1");
}

TEST(PrivacyAccountantTest, RefusesOverspend) {
  auto acct = PrivacyAccountant::Create(1.0);
  ASSERT_TRUE(acct.ok());
  ASSERT_TRUE(acct->Charge("big", 0.9).ok());
  const Status s = acct->Charge("too much", 0.2);
  EXPECT_EQ(s.code(), StatusCode::kPrivacyBudgetExceeded);
  // A refused charge records nothing.
  EXPECT_DOUBLE_EQ(acct->spent(), 0.9);
  EXPECT_EQ(acct->ledger().size(), 1u);
}

TEST(PrivacyAccountantTest, RefusesInvalidCharges) {
  auto acct = PrivacyAccountant::Create(1.0);
  ASSERT_TRUE(acct.ok());
  EXPECT_EQ(acct->Charge("zero", 0).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(acct->Charge("neg", -0.1).code(), StatusCode::kInvalidArgument);
}

TEST(PrivacyAccountantTest, ExactlyFullBudgetFitsDespiteRounding) {
  auto acct = PrivacyAccountant::Create(1.0);
  ASSERT_TRUE(acct.ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(acct->Charge("slice", 0.1).ok()) << "slice " << i;
  }
  EXPECT_FALSE(acct->Charge("extra", 0.01).ok());
}

TEST(PrivacyAccountantTest, CanAffordPredictsCharge) {
  auto acct = PrivacyAccountant::Create(0.5);
  ASSERT_TRUE(acct.ok());
  EXPECT_TRUE(acct->CanAfford(0.5));
  EXPECT_FALSE(acct->CanAfford(0.51));
}

}  // namespace
}  // namespace ireduct
