#include "dp/privacy_accountant.h"

#include <gtest/gtest.h>

#include <string>

#include "../obs/minijson.h"

namespace ireduct {
namespace {

TEST(PrivacyAccountantTest, CreateValidatesBudget) {
  EXPECT_FALSE(PrivacyAccountant::Create(0).ok());
  EXPECT_FALSE(PrivacyAccountant::Create(-1).ok());
  EXPECT_TRUE(PrivacyAccountant::Create(0.01).ok());
}

TEST(PrivacyAccountantTest, ChargesAccumulate) {
  auto acct = PrivacyAccountant::Create(1.0);
  ASSERT_TRUE(acct.ok());
  EXPECT_TRUE(acct->Charge("phase1", 0.3).ok());
  EXPECT_TRUE(acct->Charge("phase2", 0.5).ok());
  EXPECT_DOUBLE_EQ(acct->spent(), 0.8);
  EXPECT_NEAR(acct->remaining(), 0.2, 1e-12);
  EXPECT_EQ(acct->ledger().size(), 2u);
  EXPECT_EQ(acct->ledger()[0].label, "phase1");
}

TEST(PrivacyAccountantTest, RefusesOverspend) {
  auto acct = PrivacyAccountant::Create(1.0);
  ASSERT_TRUE(acct.ok());
  ASSERT_TRUE(acct->Charge("big", 0.9).ok());
  const Status s = acct->Charge("too much", 0.2);
  EXPECT_EQ(s.code(), StatusCode::kPrivacyBudgetExceeded);
  // A refused charge records nothing.
  EXPECT_DOUBLE_EQ(acct->spent(), 0.9);
  EXPECT_EQ(acct->ledger().size(), 1u);
}

TEST(PrivacyAccountantTest, RefusesInvalidCharges) {
  auto acct = PrivacyAccountant::Create(1.0);
  ASSERT_TRUE(acct.ok());
  EXPECT_EQ(acct->Charge("zero", 0).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(acct->Charge("neg", -0.1).code(), StatusCode::kInvalidArgument);
}

TEST(PrivacyAccountantTest, ExactlyFullBudgetFitsDespiteRounding) {
  auto acct = PrivacyAccountant::Create(1.0);
  ASSERT_TRUE(acct.ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(acct->Charge("slice", 0.1).ok()) << "slice " << i;
  }
  EXPECT_FALSE(acct->Charge("extra", 0.01).ok());
}

TEST(PrivacyAccountantTest, CanAffordPredictsCharge) {
  auto acct = PrivacyAccountant::Create(0.5);
  ASSERT_TRUE(acct.ok());
  EXPECT_TRUE(acct->CanAfford(0.5));
  EXPECT_FALSE(acct->CanAfford(0.51));
}

TEST(PrivacyAccountantTest, ExportLedgerJsonIsByteExact) {
  auto acct = PrivacyAccountant::Create(1.0);
  ASSERT_TRUE(acct.ok());
  ASSERT_TRUE(acct->Charge("count (a)", 0.25).ok());
  ASSERT_TRUE(acct->Charge("marginals", 0.5).ok());
  // Fixed field order, charges in admission order, shortest round-trip
  // doubles — the whole export is deterministic down to the byte.
  EXPECT_EQ(acct->ExportLedgerJson(),
            "{\"budget\":1,\"spent\":0.75,\"remaining\":0.25,\"charges\":"
            "[{\"label\":\"count (a)\",\"epsilon\":0.25},"
            "{\"label\":\"marginals\",\"epsilon\":0.5}]}");
  EXPECT_EQ(acct->ExportLedgerJson(), acct->ExportLedgerJson());
}

TEST(PrivacyAccountantTest, ExportClampsRemainingAtZero) {
  // The boundary-slack admission rule can push spent a hair past budget;
  // the export must never advertise a negative balance.
  auto acct = PrivacyAccountant::Create(1.0);
  ASSERT_TRUE(acct.ok());
  ASSERT_TRUE(acct->Charge("all plus slack", 1.0 + 1e-10).ok());
  EXPECT_LT(acct->remaining(), 0.0);

  auto parsed = minijson::Parse(acct->ExportLedgerJson());
  ASSERT_TRUE(parsed.has_value()) << acct->ExportLedgerJson();
  EXPECT_DOUBLE_EQ(parsed->Find("remaining")->number, 0.0);
  EXPECT_GT(parsed->Find("spent")->number, 1.0);
}

TEST(PrivacyAccountantTest, ExportRoundTripsThroughParser) {
  auto acct = PrivacyAccountant::Create(2.0);
  ASSERT_TRUE(acct.ok());
  ASSERT_TRUE(acct->Charge("phase \"one\"", 0.125).ok());
  ASSERT_TRUE(acct->Charge("phase\ntwo", 0.375).ok());

  auto parsed = minijson::Parse(acct->ExportLedgerJson());
  ASSERT_TRUE(parsed.has_value()) << acct->ExportLedgerJson();
  ASSERT_EQ(parsed->kind, minijson::Value::kObject);
  // Field order is part of the contract.
  ASSERT_EQ(parsed->object.size(), 4u);
  EXPECT_EQ(parsed->object[0].first, "budget");
  EXPECT_EQ(parsed->object[1].first, "spent");
  EXPECT_EQ(parsed->object[2].first, "remaining");
  EXPECT_EQ(parsed->object[3].first, "charges");

  // Replaying the parsed charges into a fresh accountant reproduces the
  // export byte for byte.
  auto replay = PrivacyAccountant::Create(parsed->Find("budget")->number);
  ASSERT_TRUE(replay.ok());
  for (const minijson::Value& charge : parsed->Find("charges")->array) {
    ASSERT_TRUE(replay
                    ->Charge(charge.Find("label")->text,
                             charge.Find("epsilon")->number)
                    .ok());
  }
  EXPECT_EQ(replay->ExportLedgerJson(), acct->ExportLedgerJson());
}

}  // namespace
}  // namespace ireduct
