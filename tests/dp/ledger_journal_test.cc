#include "dp/ledger_journal.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/fault.h"
#include "dp/privacy_accountant.h"

namespace ireduct {
namespace {

std::string TestPath(const std::string& name) {
  return testing::TempDir() + "/ireduct_journal_" + name + ".wal";
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void WriteFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << contents;
}

TEST(CrcSealTest, SealThenUnsealRoundTrips) {
  const std::string body = "{\"type\":\"grant\",\"epsilon\":0.25}";
  const std::string record = SealJsonRecord(body);
  EXPECT_NE(record, body);
  std::string recovered;
  ASSERT_TRUE(UnsealJsonRecord(record, &recovered));
  EXPECT_EQ(recovered, body);
}

TEST(CrcSealTest, UnsealRejectsTamperedPayload) {
  std::string record = SealJsonRecord("{\"epsilon\":0.25}");
  const size_t at = record.find("0.25");
  ASSERT_NE(at, std::string::npos);
  record[at] = '9';  // 9.25: the CRC no longer matches
  std::string body;
  EXPECT_FALSE(UnsealJsonRecord(record, &body));
}

TEST(CrcSealTest, UnsealRejectsMissingOrMalformedSeal) {
  std::string body;
  EXPECT_FALSE(UnsealJsonRecord("{\"epsilon\":0.25}", &body));
  EXPECT_FALSE(UnsealJsonRecord("", &body));
  // Non-hex CRC digits.
  std::string record = SealJsonRecord("{\"a\":1}");
  record[record.size() - 3] = 'z';
  EXPECT_FALSE(UnsealJsonRecord(record, &body));
}

TEST(CrcSealTest, Crc32MatchesKnownVector) {
  // The canonical IEEE 802.3 check value.
  EXPECT_EQ(Crc32("123456789"), 0xcbf43926u);
  EXPECT_EQ(Crc32(""), 0x00000000u);
}

TEST(LedgerJournalTest, CreateAppendRecoverRoundTrips) {
  const std::string path = TestPath("roundtrip");
  {
    auto journal = LedgerJournal::Create(path, 1.5);
    ASSERT_TRUE(journal.ok()) << journal.status().ToString();
    ASSERT_TRUE(journal->AppendGrant("first", 0.25).ok());
    ASSERT_TRUE(journal->AppendGrant("second", 0.125).ok());
    EXPECT_EQ(journal->next_seq(), 3u);
  }
  auto recovered = LedgerJournal::Recover(path);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->budget, 1.5);
  EXPECT_FALSE(recovered->torn_tail);
  ASSERT_EQ(recovered->charges.size(), 2u);
  EXPECT_EQ(recovered->charges[0].label, "first");
  EXPECT_EQ(recovered->charges[0].epsilon, 0.25);
  EXPECT_EQ(recovered->charges[1].label, "second");
  EXPECT_EQ(recovered->charges[1].epsilon, 0.125);
  std::remove(path.c_str());
}

TEST(LedgerJournalTest, ReplayBuildsSpentAccountant) {
  const std::string path = TestPath("replay");
  {
    auto journal = LedgerJournal::Create(path, 1.0);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE(journal->AppendGrant("a", 0.5).ok());
  }
  auto recovered = LedgerJournal::Recover(path);
  ASSERT_TRUE(recovered.ok());
  auto accountant = LedgerJournal::Replay(*recovered);
  ASSERT_TRUE(accountant.ok());
  EXPECT_EQ(accountant->budget(), 1.0);
  EXPECT_EQ(accountant->spent(), 0.5);
  ASSERT_EQ(accountant->ledger().size(), 1u);
  EXPECT_EQ(accountant->ledger()[0].label, "a");
  std::remove(path.c_str());
}

TEST(LedgerJournalTest, OpenForAppendContinuesSequence) {
  const std::string path = TestPath("reopen");
  {
    auto journal = LedgerJournal::Create(path, 2.0);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE(journal->AppendGrant("before crash", 0.5).ok());
  }
  {
    auto journal = LedgerJournal::OpenForAppend(path);
    ASSERT_TRUE(journal.ok()) << journal.status().ToString();
    EXPECT_EQ(journal->next_seq(), 2u);
    ASSERT_TRUE(journal->AppendGrant("after restart", 0.25).ok());
  }
  auto recovered = LedgerJournal::Recover(path);
  ASSERT_TRUE(recovered.ok());
  ASSERT_EQ(recovered->charges.size(), 2u);
  EXPECT_EQ(recovered->charges[1].label, "after restart");
  std::remove(path.c_str());
}

TEST(LedgerJournalTest, TornTailWithCompleteEpsilonCountsAsSpent) {
  const std::string path = TestPath("torn");
  {
    auto journal = LedgerJournal::Create(path, 1.0);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE(journal->AppendGrant("complete", 0.25).ok());
  }
  // Tear the record mid-label: ε is followed by a comma, so it is provably
  // complete, and conservative recovery must count it.
  WriteFile(path, ReadFile(path) +
                      "{\"type\":\"grant\",\"seq\":2,\"epsilon\":0.125,\"lab");
  auto recovered = LedgerJournal::Recover(path);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_TRUE(recovered->torn_tail);
  EXPECT_EQ(recovered->torn_epsilon, 0.125);
  ASSERT_EQ(recovered->charges.size(), 2u);
  EXPECT_EQ(recovered->charges[1].label, "torn grant (unconfirmed)");
  EXPECT_EQ(recovered->charges[1].epsilon, 0.125);
  std::remove(path.c_str());
}

TEST(LedgerJournalTest, TornTailWithUnconfirmableEpsilonIsRefused) {
  const std::string path = TestPath("torn_eps");
  {
    auto journal = LedgerJournal::Create(path, 1.0);
    ASSERT_TRUE(journal.ok());
  }
  // The tear lands inside the number itself: 0.12 of what may have been
  // 0.125. Counting it would under-report; recovery must refuse.
  WriteFile(path,
            ReadFile(path) + "{\"type\":\"grant\",\"seq\":1,\"epsilon\":0.12");
  auto recovered = LedgerJournal::Recover(path);
  ASSERT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status().code(), StatusCode::kIoError);
  std::remove(path.c_str());
}

TEST(LedgerJournalTest, MidJournalCorruptionIsRefused) {
  const std::string path = TestPath("corrupt");
  {
    auto journal = LedgerJournal::Create(path, 1.0);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE(journal->AppendGrant("a", 0.25).ok());
    ASSERT_TRUE(journal->AppendGrant("b", 0.25).ok());
  }
  // Flip a byte inside the first grant record (not the final line).
  std::string contents = ReadFile(path);
  const size_t at = contents.find("\"a\"");
  ASSERT_NE(at, std::string::npos);
  contents[at + 1] = 'z';
  WriteFile(path, contents);
  auto recovered = LedgerJournal::Recover(path);
  ASSERT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status().code(), StatusCode::kIoError);
  std::remove(path.c_str());
}

TEST(LedgerJournalTest, OutOfOrderSequenceIsRefused) {
  const std::string pathA = TestPath("seq_a");
  const std::string pathB = TestPath("seq_b");
  {
    auto a = LedgerJournal::Create(pathA, 1.0);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(a->AppendGrant("first", 0.25).ok());
    auto b = LedgerJournal::Create(pathB, 1.0);
    ASSERT_TRUE(b.ok());
    ASSERT_TRUE(b->AppendGrant("first", 0.25).ok());
    ASSERT_TRUE(b->AppendGrant("second", 0.25).ok());
  }
  // Graft journal B's seq-2 record after journal A's seq-1 record twice:
  // A + B2 replays seq 1,2 fine, but duplicating B2 yields 1,2,2.
  std::string b_contents = ReadFile(pathB);
  const size_t second = b_contents.find("\"seq\":2");
  ASSERT_NE(second, std::string::npos);
  const size_t line_start = b_contents.rfind('\n', second) + 1;
  const std::string seq2 = b_contents.substr(line_start);
  WriteFile(pathA, ReadFile(pathA) + seq2 + seq2);
  auto recovered = LedgerJournal::Recover(pathA);
  ASSERT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status().code(), StatusCode::kIoError);
  std::remove(pathA.c_str());
  std::remove(pathB.c_str());
}

TEST(LedgerJournalTest, OpenForAppendRefusesTornTail) {
  const std::string path = TestPath("reopen_torn");
  {
    auto journal = LedgerJournal::Create(path, 1.0);
    ASSERT_TRUE(journal.ok());
  }
  WriteFile(path, ReadFile(path) +
                      "{\"type\":\"grant\",\"seq\":1,\"epsilon\":0.25,\"la");
  auto journal = LedgerJournal::OpenForAppend(path);
  ASSERT_FALSE(journal.ok());
  EXPECT_EQ(journal.status().code(), StatusCode::kIoError);
  std::remove(path.c_str());
}

TEST(LedgerJournalTest, RewriteCompactedSealsTornLiability) {
  const std::string path = TestPath("compact");
  {
    auto journal = LedgerJournal::Create(path, 1.0);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE(journal->AppendGrant("kept", 0.25).ok());
  }
  WriteFile(path, ReadFile(path) +
                      "{\"type\":\"grant\",\"seq\":2,\"epsilon\":0.5,\"lab");
  auto recovered = LedgerJournal::Recover(path);
  ASSERT_TRUE(recovered.ok());
  ASSERT_TRUE(recovered->torn_tail);
  auto journal = LedgerJournal::RewriteCompacted(path, *recovered);
  ASSERT_TRUE(journal.ok()) << journal.status().ToString();
  ASSERT_TRUE(journal->AppendGrant("after compaction", 0.1).ok());
  // The rewritten journal recovers cleanly: the torn liability is now an
  // ordinary CRC-valid grant, and appends continue after it.
  auto again = LedgerJournal::Recover(path);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_FALSE(again->torn_tail);
  ASSERT_EQ(again->charges.size(), 3u);
  EXPECT_EQ(again->charges[0].label, "kept");
  EXPECT_EQ(again->charges[1].label, "torn grant (unconfirmed)");
  EXPECT_EQ(again->charges[1].epsilon, 0.5);
  EXPECT_EQ(again->charges[2].label, "after compaction");
  std::remove(path.c_str());
}

TEST(LedgerJournalTest, EmptyAndMissingFilesAreRefused) {
  const std::string path = TestPath("empty");
  WriteFile(path, "");
  EXPECT_FALSE(LedgerJournal::Recover(path).ok());
  std::remove(path.c_str());
  EXPECT_FALSE(LedgerJournal::Recover(path).ok());
}

TEST(LedgerJournalTest, RecoveredOverspendRefusesFurtherCharges) {
  // A conservatively recovered journal may exceed its budget; Replay must
  // accept that (never under-report) while refusing new charges.
  LedgerJournal::Recovered recovered;
  recovered.budget = 1.0;
  recovered.charges.push_back(PrivacyCharge{"a", 0.8});
  recovered.charges.push_back(PrivacyCharge{"torn grant (unconfirmed)", 0.5});
  auto accountant = LedgerJournal::Replay(recovered);
  ASSERT_TRUE(accountant.ok()) << accountant.status().ToString();
  EXPECT_EQ(accountant->spent(), 1.3);
  EXPECT_FALSE(accountant->CanAfford(0.01));
  EXPECT_EQ(accountant->Charge("more", 0.01).code(),
            StatusCode::kPrivacyBudgetExceeded);
}

TEST(LedgerJournalTest, FailedAppendLeavesJournaledAccountantUnchanged) {
  const std::string path = TestPath("wal_fail");
  auto journal = LedgerJournal::Create(path, 1.0);
  ASSERT_TRUE(journal.ok());
  auto accountant = PrivacyAccountant::Create(1.0);
  ASSERT_TRUE(accountant.ok());
  accountant->AttachJournal(&*journal);
  ASSERT_TRUE(accountant->Charge("durable", 0.25).ok());

  // Arm the global injector: the next append fails before any byte lands.
  ASSERT_TRUE(
      FaultInjector::Global().Configure("journal.append:fail@1").ok());
  const Status refused = accountant->Charge("lost", 0.25);
  FaultInjector::Global().Reset();
  EXPECT_EQ(refused.code(), StatusCode::kIoError);
  // Write-ahead discipline: the refused grant is visible nowhere.
  EXPECT_EQ(accountant->spent(), 0.25);
  ASSERT_EQ(accountant->ledger().size(), 1u);
  auto recovered = LedgerJournal::Recover(path);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->charges.size(), 1u);
  std::remove(path.c_str());
}

TEST(LedgerJournalTest, FailedAppendPoisonsJournalAgainstGluedRecords) {
  const std::string path = TestPath("poison");
  auto journal = LedgerJournal::Create(path, 1.0);
  ASSERT_TRUE(journal.ok());
  auto accountant = PrivacyAccountant::Create(1.0);
  ASSERT_TRUE(accountant.ok());
  accountant->AttachJournal(&*journal);
  ASSERT_TRUE(accountant->Charge("durable", 0.25).ok());

  // Tear the next append mid-label: the file now ends in a torn record.
  ASSERT_TRUE(
      FaultInjector::Global().Configure("journal.append:truncate@1=40").ok());
  EXPECT_EQ(accountant->Charge("torn", 0.5).code(), StatusCode::kIoError);
  FaultInjector::Global().Reset();

  // The journal poisons itself: appending again would glue a new record
  // onto the torn prefix, making one line that recovery reads as a single
  // torn record — silently dropping the later grant's epsilon. Both direct
  // appends and journaled charges must be refused.
  EXPECT_EQ(journal->AppendGrant("glued", 0.125).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(accountant->Charge("after poison", 0.125).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(accountant->spent(), 0.25);

  // The on-disk state stays a salvageable torn tail, counted conservatively.
  auto recovered = LedgerJournal::Recover(path);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_TRUE(recovered->torn_tail);
  ASSERT_EQ(recovered->charges.size(), 2u);
  EXPECT_EQ(recovered->charges[0].epsilon, 0.25);
  EXPECT_EQ(recovered->charges[1].epsilon, 0.5);
  std::remove(path.c_str());
}

TEST(LedgerJournalTest, RewriteCompactedCleansUpAndPreservesOnFailure) {
  const std::string path = TestPath("compact_fail");
  {
    auto journal = LedgerJournal::Create(path, 1.0);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE(journal->AppendGrant("kept", 0.25).ok());
  }
  WriteFile(path, ReadFile(path) +
                      "{\"type\":\"grant\",\"seq\":2,\"epsilon\":0.5,\"lab");
  auto recovered = LedgerJournal::Recover(path);
  ASSERT_TRUE(recovered.ok());
  ASSERT_TRUE(recovered->torn_tail);
  // Fail the rewrite's first grant append (hit 1 is the tmp open record).
  ASSERT_TRUE(
      FaultInjector::Global().Configure("journal.append:fail@2").ok());
  auto rewritten = LedgerJournal::RewriteCompacted(path, *recovered);
  FaultInjector::Global().Reset();
  ASSERT_FALSE(rewritten.ok());
  // The half-written rewrite is unlinked, not leaked...
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());
  // ...and the original torn journal is untouched and still recoverable.
  auto again = LedgerJournal::Recover(path);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_TRUE(again->torn_tail);
  ASSERT_EQ(again->charges.size(), 2u);
  std::remove(path.c_str());
}

TEST(LedgerJournalTest, TruncatedAppendLeavesRecoverableTornTail) {
  const std::string path = TestPath("wal_torn");
  auto journal = LedgerJournal::Create(path, 1.0);
  ASSERT_TRUE(journal.ok());
  // Keep enough bytes that ε (field order puts it before the label)
  // survives the tear: {"type":"grant","seq":1,"epsilon":0.25,"label":...
  ASSERT_TRUE(
      FaultInjector::Global().Configure("journal.append:truncate@1=40").ok());
  const Status torn = journal->AppendGrant("casualty", 0.25);
  FaultInjector::Global().Reset();
  EXPECT_EQ(torn.code(), StatusCode::kIoError);
  auto recovered = LedgerJournal::Recover(path);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_TRUE(recovered->torn_tail);
  EXPECT_EQ(recovered->torn_epsilon, 0.25);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ireduct
