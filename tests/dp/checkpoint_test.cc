#include "dp/checkpoint.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/fault.h"
#include "dp/privacy_accountant.h"
#include "dp/workload.h"

namespace ireduct {
namespace {

std::string TestPath(const std::string& name) {
  return testing::TempDir() + "/ireduct_checkpoint_" + name + ".ckpt";
}

Workload TestWorkload() {
  auto w = Workload::Create(
      {100, 200, 300, 40, 50, 60},
      {QueryGroup{"tiny", 0, 3, 2.0}, QueryGroup{"large", 3, 6, 2.0}});
  EXPECT_TRUE(w.ok());
  return std::move(*w);
}

// State with awkward doubles (denormal-adjacent, negative-zero Kahan carry,
// full-precision irrationals) to prove serialization is bit-exact.
RunCheckpoint TestCheckpoint() {
  RunCheckpoint c;
  c.algorithm = "ireduct";
  c.workload_fingerprint = 0x9e3779b97f4a7c15ull;
  c.round = 12;
  c.iterations = 96;
  c.resample_calls = 3;
  c.epsilon_spent = 0.30000000000000004;  // 0.1 + 0.2: not representable
  c.rng_state = {0xdeadbeefcafef00dull, 1, 0xffffffffffffffffull, 42};
  c.gs.value = 0.1234567890123456789;
  c.gs.compensation = -4.440892098500626e-16;
  c.gs.commits_since_resync = 7;
  c.answers = {101.5, 198.25, 301.0078125, 39.0, 50.5, 61.25};
  c.group_scales = {12.5, 17.75};
  c.active = {1, 0};
  return c;
}

TEST(CheckpointSerializationTest, RoundTripIsBitExact) {
  const RunCheckpoint original = TestCheckpoint();
  const std::string text = SerializeCheckpoint(original);
  auto parsed = ParseCheckpoint(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->algorithm, original.algorithm);
  EXPECT_EQ(parsed->workload_fingerprint, original.workload_fingerprint);
  EXPECT_EQ(parsed->round, original.round);
  EXPECT_EQ(parsed->iterations, original.iterations);
  EXPECT_EQ(parsed->resample_calls, original.resample_calls);
  EXPECT_EQ(parsed->epsilon_spent, original.epsilon_spent);
  EXPECT_EQ(parsed->rng_state, original.rng_state);
  EXPECT_EQ(parsed->gs.value, original.gs.value);
  EXPECT_EQ(parsed->gs.compensation, original.gs.compensation);
  EXPECT_EQ(parsed->gs.commits_since_resync, original.gs.commits_since_resync);
  EXPECT_EQ(parsed->answers, original.answers);
  EXPECT_EQ(parsed->group_scales, original.group_scales);
  EXPECT_EQ(parsed->active, original.active);
  // Determinism: equal states serialize to identical bytes.
  EXPECT_EQ(SerializeCheckpoint(*parsed), text);
}

TEST(CheckpointSerializationTest, IResampVectorsRoundTrip) {
  RunCheckpoint c = TestCheckpoint();
  c.algorithm = "iresamp";
  c.nominal_scales = {25.0, 35.5};
  c.weighted_sum = {0.125, -3.75, 2.0, 0.0, 1.0, 9.5};
  c.weight = {0.0064, 0.0064, 0.0064, 0.0032, 0.0032, 0.0032};
  auto parsed = ParseCheckpoint(SerializeCheckpoint(c));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->nominal_scales, c.nominal_scales);
  EXPECT_EQ(parsed->weighted_sum, c.weighted_sum);
  EXPECT_EQ(parsed->weight, c.weight);
}

TEST(CheckpointSerializationTest, TamperedRecordIsRefused) {
  std::string text = SerializeCheckpoint(TestCheckpoint());
  const size_t at = text.find("\"round\":12");
  ASSERT_NE(at, std::string::npos);
  text[at + 9] = '9';  // round 12 -> 92 without updating the CRC
  auto parsed = ParseCheckpoint(text);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kIoError);
}

TEST(CheckpointSerializationTest, TruncatedRecordIsRefused) {
  const std::string text = SerializeCheckpoint(TestCheckpoint());
  EXPECT_FALSE(ParseCheckpoint(text.substr(0, text.size() / 2)).ok());
  EXPECT_FALSE(ParseCheckpoint("").ok());
  EXPECT_FALSE(ParseCheckpoint("{}").ok());
}

TEST(CheckpointFileSinkTest, WriteThenLoadRoundTrips) {
  const std::string path = TestPath("file");
  FileCheckpointSink sink(path);
  const RunCheckpoint original = TestCheckpoint();
  ASSERT_TRUE(sink.Write(original).ok());
  auto loaded = FileCheckpointSink::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(SerializeCheckpoint(*loaded), SerializeCheckpoint(original));
  // A second Write atomically replaces the first.
  RunCheckpoint next = original;
  next.round = 13;
  ASSERT_TRUE(sink.Write(next).ok());
  loaded = FileCheckpointSink::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->round, 13u);
  std::remove(path.c_str());
}

TEST(CheckpointFileSinkTest, LoadRefusesMissingFile) {
  EXPECT_FALSE(FileCheckpointSink::Load(TestPath("missing")).ok());
}

TEST(CheckpointFileSinkTest, InjectedFailWritesNothing) {
  const std::string path = TestPath("fail");
  FileCheckpointSink sink(path);
  ASSERT_TRUE(sink.Write(TestCheckpoint()).ok());
  ASSERT_TRUE(
      FaultInjector::Global().Configure("checkpoint.write:fail@1").ok());
  RunCheckpoint next = TestCheckpoint();
  next.round = 99;
  const Status failed = sink.Write(next);
  FaultInjector::Global().Reset();
  EXPECT_EQ(failed.code(), StatusCode::kIoError);
  // The previous checkpoint survives untouched.
  auto loaded = FileCheckpointSink::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->round, 12u);
  std::remove(path.c_str());
}

TEST(CheckpointFileSinkTest, InjectedTruncationYieldsUnloadableFile) {
  const std::string path = TestPath("trunc");
  FileCheckpointSink sink(path);
  ASSERT_TRUE(FaultInjector::Global()
                  .Configure("checkpoint.write:truncate@1=64")
                  .ok());
  const Status torn = sink.Write(TestCheckpoint());
  FaultInjector::Global().Reset();
  EXPECT_EQ(torn.code(), StatusCode::kIoError);
  // The truncated record landed, and Load refuses it outright rather than
  // resuming from half a state.
  auto loaded = FileCheckpointSink::Load(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
  std::remove(path.c_str());
}

TEST(CheckpointValidateTest, AcceptsMatchingState) {
  const Workload workload = TestWorkload();
  RunCheckpoint c = TestCheckpoint();
  c.workload_fingerprint = FingerprintWorkload(workload);
  EXPECT_TRUE(ValidateResume(c, "ireduct", workload).ok());
}

TEST(CheckpointValidateTest, RefusesMismatches) {
  const Workload workload = TestWorkload();
  RunCheckpoint good = TestCheckpoint();
  good.workload_fingerprint = FingerprintWorkload(workload);

  RunCheckpoint wrong_algorithm = good;
  wrong_algorithm.algorithm = "iresamp";
  EXPECT_EQ(ValidateResume(wrong_algorithm, "ireduct", workload).code(),
            StatusCode::kInvalidArgument);

  RunCheckpoint wrong_workload = good;
  wrong_workload.workload_fingerprint ^= 1;
  EXPECT_EQ(ValidateResume(wrong_workload, "ireduct", workload).code(),
            StatusCode::kInvalidArgument);

  RunCheckpoint wrong_answers = good;
  wrong_answers.answers.pop_back();
  EXPECT_EQ(ValidateResume(wrong_answers, "ireduct", workload).code(),
            StatusCode::kInvalidArgument);

  RunCheckpoint wrong_groups = good;
  wrong_groups.group_scales.push_back(1.0);
  EXPECT_EQ(ValidateResume(wrong_groups, "ireduct", workload).code(),
            StatusCode::kInvalidArgument);
}

TEST(CheckpointFingerprintTest, StructureSensitiveAnswerBlind) {
  auto base = Workload::Create({1, 2, 3}, {QueryGroup{"g", 0, 3, 2.0}});
  ASSERT_TRUE(base.ok());
  // Different true answers, same structure: identical fingerprint — the
  // checkpoint must not leak a digest of the private data.
  auto other_answers =
      Workload::Create({7, 8, 9}, {QueryGroup{"g", 0, 3, 2.0}});
  ASSERT_TRUE(other_answers.ok());
  EXPECT_EQ(FingerprintWorkload(*base), FingerprintWorkload(*other_answers));
  // Different structure: different fingerprint.
  auto other_coeff = Workload::Create({1, 2, 3}, {QueryGroup{"g", 0, 3, 1.0}});
  ASSERT_TRUE(other_coeff.ok());
  EXPECT_NE(FingerprintWorkload(*base), FingerprintWorkload(*other_coeff));
  auto other_name = Workload::Create({1, 2, 3}, {QueryGroup{"h", 0, 3, 2.0}});
  ASSERT_TRUE(other_name.ok());
  EXPECT_NE(FingerprintWorkload(*base), FingerprintWorkload(*other_name));
}

TEST(JournalingCheckpointSinkTest, ChargesGrowthBeforeForwarding) {
  // An inner sink that records what it saw and whether the accountant had
  // already been charged when the write arrived.
  class ProbeSink : public CheckpointSink {
   public:
    explicit ProbeSink(const PrivacyAccountant* accountant)
        : accountant_(accountant) {}
    Status Write(const RunCheckpoint& checkpoint) override {
      ++writes_;
      spent_at_write_ = accountant_->spent();
      last_round_ = checkpoint.round;
      return Status::OK();
    }
    int writes_ = 0;
    double spent_at_write_ = -1;
    uint64_t last_round_ = 0;

   private:
    const PrivacyAccountant* accountant_;
  };

  auto accountant = PrivacyAccountant::Create(1.0);
  ASSERT_TRUE(accountant.ok());
  ProbeSink probe(&*accountant);
  JournalingCheckpointSink sink(&*accountant, &probe);

  RunCheckpoint c = TestCheckpoint();
  c.epsilon_spent = 0.25;
  ASSERT_TRUE(sink.Write(c).ok());
  EXPECT_EQ(accountant->spent(), 0.25);
  // Ledger-first: by the time the inner sink ran, the charge was visible.
  EXPECT_EQ(probe.spent_at_write_, 0.25);

  // A later boundary charges only the growth.
  c.round = 13;
  c.epsilon_spent = 0.4;
  ASSERT_TRUE(sink.Write(c).ok());
  EXPECT_EQ(accountant->spent(), 0.4);
  ASSERT_EQ(accountant->ledger().size(), 2u);
  EXPECT_EQ(accountant->ledger()[1].epsilon, 0.4 - 0.25);

  // A re-executed boundary after resume (spend already covers it) charges
  // nothing but still forwards the checkpoint.
  c.epsilon_spent = 0.3;
  ASSERT_TRUE(sink.Write(c).ok());
  EXPECT_EQ(accountant->spent(), 0.4);
  EXPECT_EQ(accountant->ledger().size(), 2u);
  EXPECT_EQ(probe.writes_, 3);
}

TEST(JournalingCheckpointSinkTest, RefusedChargeAbortsBeforeInnerWrite) {
  class CountingSink : public CheckpointSink {
   public:
    Status Write(const RunCheckpoint&) override {
      ++writes_;
      return Status::OK();
    }
    int writes_ = 0;
  };
  auto accountant = PrivacyAccountant::Create(0.1);
  ASSERT_TRUE(accountant.ok());
  CountingSink inner;
  JournalingCheckpointSink sink(&*accountant, &inner);
  RunCheckpoint c = TestCheckpoint();
  c.epsilon_spent = 0.5;  // exceeds the 0.1 budget
  const Status refused = sink.Write(c);
  EXPECT_EQ(refused.code(), StatusCode::kPrivacyBudgetExceeded);
  // The checkpoint never became visible: no durable state without a
  // durable record of its cost.
  EXPECT_EQ(inner.writes_, 0);
}

}  // namespace
}  // namespace ireduct
