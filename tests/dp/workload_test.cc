#include "dp/workload.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace ireduct {
namespace {

Workload MakeTwoGroupWorkload() {
  // Group A: 2 queries with coefficient 2; group B: 3 queries, coefficient 1.
  auto result = Workload::Create(
      {10, 20, 30, 40, 50},
      {QueryGroup{"A", 0, 2, 2.0}, QueryGroup{"B", 2, 5, 1.0}});
  EXPECT_TRUE(result.ok()) << result.status();
  return std::move(result).value();
}

TEST(WorkloadTest, CreateValidatesContiguity) {
  EXPECT_FALSE(Workload::Create({1, 2}, {QueryGroup{"A", 0, 1, 1.0},
                                         QueryGroup{"B", 0, 2, 1.0}})
                   .ok());
  EXPECT_FALSE(Workload::Create({1, 2}, {QueryGroup{"A", 1, 2, 1.0}}).ok());
  EXPECT_FALSE(Workload::Create({1, 2}, {QueryGroup{"A", 0, 1, 1.0}}).ok());
}

TEST(WorkloadTest, CreateRejectsEmptyGroupsAndBadCoefficients) {
  EXPECT_FALSE(Workload::Create({1}, {}).ok());
  EXPECT_FALSE(Workload::Create({1}, {QueryGroup{"A", 0, 0, 1.0}}).ok());
  EXPECT_FALSE(Workload::Create({1}, {QueryGroup{"A", 0, 1, 0.0}}).ok());
  EXPECT_FALSE(Workload::Create({1}, {QueryGroup{"A", 0, 1, -2.0}}).ok());
}

TEST(WorkloadTest, CreateRejectsNonFiniteAnswers) {
  EXPECT_FALSE(Workload::Create({std::nan("")},
                                {QueryGroup{"A", 0, 1, 1.0}})
                   .ok());
}

TEST(WorkloadTest, AccessorsReflectStructure) {
  const Workload w = MakeTwoGroupWorkload();
  EXPECT_EQ(w.num_queries(), 5u);
  EXPECT_EQ(w.num_groups(), 2u);
  EXPECT_EQ(w.group(0).name, "A");
  EXPECT_EQ(w.group(1).size(), 3u);
  EXPECT_EQ(w.group_of(0), 0u);
  EXPECT_EQ(w.group_of(1), 0u);
  EXPECT_EQ(w.group_of(4), 1u);
  EXPECT_DOUBLE_EQ(w.true_answer(3), 40);
}

TEST(WorkloadTest, SensitivityIsSumOfCoefficients) {
  EXPECT_DOUBLE_EQ(MakeTwoGroupWorkload().Sensitivity(), 3.0);
}

TEST(WorkloadTest, GeneralizedSensitivityMatchesDefinition) {
  const Workload w = MakeTwoGroupWorkload();
  const std::vector<double> scales{4.0, 2.0};
  // 2/4 + 1/2 = 1.
  EXPECT_DOUBLE_EQ(w.GeneralizedSensitivity(scales), 1.0);
}

TEST(WorkloadTest, GeneralizedSensitivityInfiniteForNonPositiveScale) {
  const Workload w = MakeTwoGroupWorkload();
  EXPECT_TRUE(std::isinf(w.GeneralizedSensitivity({1.0, 0.0})));
  EXPECT_TRUE(std::isinf(w.GeneralizedSensitivity({-1.0, 1.0})));
}

TEST(WorkloadTest, PerQueryScalesExpandGroups) {
  const Workload w = MakeTwoGroupWorkload();
  const std::vector<double> per_query = w.PerQueryScales({4.0, 2.0});
  EXPECT_EQ(per_query, (std::vector<double>{4, 4, 2, 2, 2}));
}

TEST(WorkloadTest, PerQueryFactoryMakesSingletonGroups) {
  auto w = Workload::PerQuery({1, 2, 3}, 2.0);
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w->num_groups(), 3u);
  EXPECT_DOUBLE_EQ(w->Sensitivity(), 6.0);
  // Uniform scale λ: GS = 3·2/λ.
  EXPECT_DOUBLE_EQ(w->GeneralizedSensitivity({2.0, 2.0, 2.0}), 3.0);
}

TEST(WorkloadTest, MarginalStyleSensitivityMatchesPaper) {
  // Section 5.1: |M| marginals with uniform scale λ have GS = 2|M|/λ.
  auto w = Workload::Create(
      {1, 2, 3, 4, 5, 6},
      {QueryGroup{"M1", 0, 3, 2.0}, QueryGroup{"M2", 3, 6, 2.0}});
  ASSERT_TRUE(w.ok());
  const double lambda = 8.0;
  EXPECT_DOUBLE_EQ(w->GeneralizedSensitivity({lambda, lambda}),
                   2.0 * 2 / lambda);
}

}  // namespace
}  // namespace ireduct
