// Parameterized property sweeps of the NoiseDown distribution over a grid
// of (λ, λ') pairs and μ-to-y offsets, covering both unit-scale and the
// paper's |T|/10-scale regimes.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/numeric.h"
#include "dp/noise_down.h"
#include "eval/stats.h"

namespace ireduct {
namespace {

struct NoiseDownCase {
  double lambda;
  double lambda_prime;
  double offset;  // y - mu
};

std::string CaseName(const testing::TestParamInfo<NoiseDownCase>& info) {
  auto fmt = [](double v) {
    std::string s = std::to_string(v);
    for (char& c : s) {
      if (c == '.' || c == '-') c = '_';
    }
    return s;
  };
  return "l" + fmt(info.param.lambda) + "_lp" + fmt(info.param.lambda_prime) +
         "_off" + fmt(info.param.offset);
}

class NoiseDownPropertyTest : public testing::TestWithParam<NoiseDownCase> {
 protected:
  NoiseDownDistribution Dist(double mu = 0.0) const {
    const NoiseDownCase& c = GetParam();
    auto r = NoiseDownDistribution::Create(mu, mu + c.offset, c.lambda,
                                           c.lambda_prime);
    EXPECT_TRUE(r.ok()) << r.status();
    return std::move(r).value();
  }
};

TEST_P(NoiseDownPropertyTest, ThetasAreProbabilities) {
  const auto dist = Dist();
  EXPECT_GE(dist.theta1(), 0.0);
  EXPECT_GE(dist.theta2(), -1e-15);
  EXPECT_GE(dist.theta3(), 0.0);
  EXPECT_LE(dist.theta1() + dist.theta2() + dist.theta3(), 1.0 + 1e-9);
}

TEST_P(NoiseDownPropertyTest, TotalMassIsOne) {
  const auto dist = Dist();
  const NoiseDownCase& c = GetParam();
  // θ1/θ2/θ3 are closed-form; integrate the central interval and the θ2
  // segment numerically and require the pieces to sum to 1, cross-checking
  // the Equation 8-10 formulas at every parameter combination (including
  // the λ ~ 10^5 regime where naive evaluation loses all precision). The θ
  // masses and ξ live in the canonical μ <= y orientation, so mirror the
  // pdf when this case is inverted.
  const bool inverted = dist.mu() > dist.y();
  const double y = inverted ? -dist.y() : dist.y();
  const double mu = inverted ? -dist.mu() : dist.mu();
  auto pdf = [&](double x) { return dist.Pdf(inverted ? -x : x); };
  // Split the central interval at the kinks μ and y.
  std::vector<double> cuts{y - 1, y + 1};
  if (mu > y - 1 && mu < y + 1) cuts.insert(cuts.begin() + 1, mu);
  double mid = 0;
  for (size_t i = 0; i + 1 < cuts.size(); ++i) {
    mid += SimpsonIntegrate(pdf, cuts[i], cuts[i + 1], 2000);
  }
  const double seg2 =
      dist.xi() < y - 1
          ? SimpsonIntegrate(pdf, dist.xi(), y - 1,
                             std::max(2000, static_cast<int>(
                                                20 * (y - 1 - dist.xi()) /
                                                c.lambda_prime)))
          : 0.0;
  EXPECT_NEAR(seg2, dist.theta2(), 2e-5);
  EXPECT_NEAR(dist.theta1() + seg2 + dist.theta3() + mid, 1.0, 5e-5);
}

TEST_P(NoiseDownPropertyTest, PhiDominatesCentralRawPdf) {
  const auto dist = Dist();
  const double y = dist.y();
  const double phi = dist.phi();
  for (int i = 1; i < 1000; ++i) {
    const double x = y - 1 + 2.0 * i / 1000;
    ASSERT_LE(dist.Pdf(x) * dist.normalization(), phi * (1 + 1e-9))
        << "x=" << x;
  }
}

TEST_P(NoiseDownPropertyTest, NormalizationWithinDocumentedBound) {
  // |Z - 1| ≤ ~0.05/λ' (worst case, |y-μ| < 1) + O(1/λ'²) (see the
  // dp/noise_down.h reproduction notes). The 1e-9 additive term covers
  // floating-point noise in the closed-form middle mass at 10^5..10^6
  // scales.
  const NoiseDownCase& c = GetParam();
  const double z = Dist().normalization();
  EXPECT_GT(z, 0);
  EXPECT_LE(std::fabs(z - 1.0),
            0.05 / c.lambda_prime +
                0.25 / (c.lambda_prime * c.lambda_prime) + 1e-9);
}

TEST_P(NoiseDownPropertyTest, PdfNonNegativeOnWideGrid) {
  const auto dist = Dist();
  const NoiseDownCase& c = GetParam();
  const double span = 10 * c.lambda;
  for (int i = 0; i <= 2000; ++i) {
    const double x = dist.mu() - span + 2 * span * i / 2000;
    ASSERT_GE(dist.Pdf(x), 0.0) << "x=" << x;
  }
}

TEST_P(NoiseDownPropertyTest, SamplesAreFiniteAndDeterministic) {
  const auto dist = Dist(3.0);
  BitGen g1(11), g2(11);
  for (int i = 0; i < 500; ++i) {
    const double a = dist.Sample(g1);
    const double b = dist.Sample(g2);
    ASSERT_TRUE(std::isfinite(a));
    ASSERT_EQ(a, b);
  }
}

TEST_P(NoiseDownPropertyTest, ChainMarginalIsLaplaceAtReducedScale) {
  const NoiseDownCase& c = GetParam();
  const double mu = 7.0;
  BitGen gen(1234);
  const int n = 30'000;
  std::vector<double> sample(n);
  for (double& s : sample) {
    const double y = gen.Laplace(mu, c.lambda);
    auto yp = NoiseDown(mu, y, c.lambda, c.lambda_prime, gen);
    ASSERT_TRUE(yp.ok());
    s = *yp;
  }
  const double ks = KsStatistic(sample, [&](double x) {
    return LaplaceCdf(x, mu, c.lambda_prime);
  });
  // KS noise floor plus the O(1/λ'²) marginal slack of the normalized
  // sampler (exact only in the λ' -> ∞ limit; see dp/noise_down.h).
  EXPECT_LT(ks, 1.63 / std::sqrt(n) +
                    0.25 / (c.lambda_prime * c.lambda_prime));
}

INSTANTIATE_TEST_SUITE_P(
    ScaleAndOffsetGrid, NoiseDownPropertyTest,
    testing::Values(
        // Unit-scale regime, y on both sides of and straddling mu.
        NoiseDownCase{1.0, 0.5, 0.0}, NoiseDownCase{1.0, 0.5, 2.5},
        NoiseDownCase{1.0, 0.5, -2.5}, NoiseDownCase{2.0, 1.9, 0.7},
        NoiseDownCase{2.0, 0.1, -0.7}, NoiseDownCase{10.0, 1.0, 4.0},
        // Nearly-equal scales (slow (1/λ' - 1/λ) decay on the middle-left
        // segment) and a long μ..y gap.
        NoiseDownCase{5.0, 4.999, 12.0},
        // Paper-scale parameters: λmax = |T|/10 with small decrements.
        NoiseDownCase{1e5, 9.9e4, 300.0}, NoiseDownCase{1e5, 5e4, -800.0},
        NoiseDownCase{1e6, 9.99e5, 0.5}),
    CaseName);

}  // namespace
}  // namespace ireduct
