// Property suite over randomly generated group structures: generalized
// sensitivity, scale expansion and group lookup must stay mutually
// consistent, and the mechanisms' budget arithmetic must agree with the
// workload's own.
#include <gtest/gtest.h>

#include <vector>

#include "common/numeric.h"
#include "common/random.h"
#include "dp/workload.h"

namespace ireduct {
namespace {

class WorkloadPropertyTest : public testing::TestWithParam<uint64_t> {
 protected:
  Workload RandomWorkload(BitGen& gen) {
    const size_t groups = 1 + gen.UniformInt(12);
    std::vector<QueryGroup> group_list;
    std::vector<double> answers;
    uint32_t offset = 0;
    for (size_t g = 0; g < groups; ++g) {
      const uint32_t size = 1 + static_cast<uint32_t>(gen.UniformInt(20));
      for (uint32_t i = 0; i < size; ++i) {
        answers.push_back(gen.Uniform(0, 10'000));
      }
      group_list.push_back(QueryGroup{"g" + std::to_string(g), offset,
                                      offset + size,
                                      0.5 + gen.Uniform() * 4});
      offset += size;
    }
    auto w = Workload::Create(std::move(answers), std::move(group_list));
    EXPECT_TRUE(w.ok());
    return std::move(w).value();
  }
};

TEST_P(WorkloadPropertyTest, SensitivityEqualsGsAtUnitScales) {
  BitGen gen(GetParam());
  const Workload w = RandomWorkload(gen);
  const std::vector<double> unit(w.num_groups(), 1.0);
  EXPECT_NEAR(w.GeneralizedSensitivity(unit), w.Sensitivity(), 1e-9);
}

TEST_P(WorkloadPropertyTest, GsMatchesDirectSum) {
  BitGen gen(GetParam() + 1);
  const Workload w = RandomWorkload(gen);
  std::vector<double> scales(w.num_groups());
  for (double& s : scales) s = 0.1 + gen.Uniform() * 100;
  KahanSum expected;
  for (size_t g = 0; g < w.num_groups(); ++g) {
    expected.Add(w.group(g).sensitivity_coeff / scales[g]);
  }
  EXPECT_NEAR(w.GeneralizedSensitivity(scales), expected.value(), 1e-12);
}

TEST_P(WorkloadPropertyTest, GsIsMonotoneInScales) {
  BitGen gen(GetParam() + 2);
  const Workload w = RandomWorkload(gen);
  std::vector<double> scales(w.num_groups());
  for (double& s : scales) s = 1 + gen.Uniform() * 50;
  const double before = w.GeneralizedSensitivity(scales);
  // Growing any scale cannot increase GS.
  const size_t g = gen.UniformInt(w.num_groups());
  scales[g] *= 2;
  EXPECT_LE(w.GeneralizedSensitivity(scales), before);
}

TEST_P(WorkloadPropertyTest, PerQueryScalesAgreeWithGroupOf) {
  BitGen gen(GetParam() + 3);
  const Workload w = RandomWorkload(gen);
  std::vector<double> scales(w.num_groups());
  for (double& s : scales) s = 1 + gen.Uniform() * 10;
  const std::vector<double> per_query = w.PerQueryScales(scales);
  ASSERT_EQ(per_query.size(), w.num_queries());
  for (size_t i = 0; i < w.num_queries(); ++i) {
    EXPECT_DOUBLE_EQ(per_query[i], scales[w.group_of(i)]);
    const QueryGroup& g = w.group(w.group_of(i));
    EXPECT_GE(i, g.begin);
    EXPECT_LT(i, g.end);
  }
}

TEST_P(WorkloadPropertyTest, GroupsTileQueriesExactly) {
  BitGen gen(GetParam() + 4);
  const Workload w = RandomWorkload(gen);
  size_t covered = 0;
  for (const QueryGroup& g : w.groups()) covered += g.size();
  EXPECT_EQ(covered, w.num_queries());
}

INSTANTIATE_TEST_SUITE_P(Seeds, WorkloadPropertyTest,
                         testing::Values(1u, 7u, 42u, 1234u, 99999u));

}  // namespace
}  // namespace ireduct
