#include "dp/noise_down.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/numeric.h"
#include "eval/stats.h"

namespace ireduct {
namespace {

// Integrates `pdf` over [lo, hi], splitting at the density's interior kink
// points (μ, y, y±1) for Simpson accuracy.
double IntegratePdf(const NoiseDownDistribution& dist, double lo, double hi,
                    int points_per_segment = 4000) {
  std::vector<double> cuts{lo, hi, dist.mu(), dist.y(), dist.y() - 1,
                           dist.y() + 1};
  std::sort(cuts.begin(), cuts.end());
  double total = 0;
  for (size_t i = 0; i + 1 < cuts.size(); ++i) {
    const double a = std::max(cuts[i], lo);
    const double b = std::min(cuts[i + 1], hi);
    if (b <= a) continue;
    total += SimpsonIntegrate([&](double x) { return dist.Pdf(x); }, a, b,
                              points_per_segment);
  }
  return total;
}

NoiseDownDistribution MakeDist(double mu, double y, double lambda,
                               double lambda_prime) {
  auto result = NoiseDownDistribution::Create(mu, y, lambda, lambda_prime);
  EXPECT_TRUE(result.ok()) << result.status();
  return std::move(result).value();
}

TEST(NoiseDownTest, CreateValidatesParameters) {
  EXPECT_FALSE(NoiseDownDistribution::Create(0, 1, 1.0, 1.0).ok());  // λ'=λ
  EXPECT_FALSE(NoiseDownDistribution::Create(0, 1, 1.0, 2.0).ok());  // λ'>λ
  EXPECT_FALSE(NoiseDownDistribution::Create(0, 1, 1.0, 0.0).ok());
  EXPECT_FALSE(NoiseDownDistribution::Create(0, 1, 1.0, -1.0).ok());
  EXPECT_FALSE(
      NoiseDownDistribution::Create(std::nan(""), 1, 2.0, 1.0).ok());
  EXPECT_TRUE(NoiseDownDistribution::Create(0, 1, 2.0, 1.0).ok());
}

TEST(NoiseDownTest, PdfIsNonNegativeEverywhere) {
  const auto dist = MakeDist(0.0, 1.5, 2.0, 1.0);
  for (double x = -20; x <= 20; x += 0.01) {
    ASSERT_GE(dist.Pdf(x), 0.0) << "at " << x;
  }
}

TEST(NoiseDownTest, PdfIntegratesToOne) {
  const auto dist = MakeDist(0.0, 1.5, 2.0, 1.0);
  // Tails beyond ±60 are below 1e-25 here.
  EXPECT_NEAR(IntegratePdf(dist, -60, 60), 1.0, 1e-6);
}

TEST(NoiseDownTest, ThetaMassesMatchNumericIntegrals) {
  // μ < y - 1 so all three closed-form segments are non-degenerate.
  const double mu = 0.0, y = 3.0, lambda = 2.0, lp = 1.2;
  const auto dist = MakeDist(mu, y, lambda, lp);
  EXPECT_NEAR(dist.theta1(), IntegratePdf(dist, -80, dist.xi()), 1e-7);
  EXPECT_NEAR(dist.theta2(), IntegratePdf(dist, dist.xi(), y - 1), 1e-7);
  EXPECT_NEAR(dist.theta3(), IntegratePdf(dist, y + 1, y + 80), 1e-7);
  EXPECT_NEAR(dist.middle_mass(), IntegratePdf(dist, y - 1, y + 1), 1e-7);
  EXPECT_NEAR(dist.theta1() + dist.theta2() + dist.theta3() +
                  dist.middle_mass(),
              1.0, 1e-12);
}

TEST(NoiseDownTest, NormalizationNearOneAndShrinksWithScale) {
  // The raw Equation 6 density is only O(1/λ'²)-normalized (see the
  // header's reproduction notes); the deficit must vanish as the scales
  // grow toward the paper's regime.
  const double z_unit = MakeDist(0.0, 1.5, 2.0, 1.0).normalization();
  EXPECT_NEAR(z_unit, 1.0, 0.05);
  EXPECT_GT(std::fabs(z_unit - 1.0), 1e-4);  // genuinely not exact
  const double z_mid = MakeDist(0.0, 15, 20.0, 10.0).normalization();
  EXPECT_NEAR(z_mid, 1.0, 5e-4);
  const double z_paper = MakeDist(0.0, 1500, 2000.0, 1000.0).normalization();
  EXPECT_NEAR(z_paper, 1.0, 5e-8);
}

TEST(NoiseDownTest, Theta2VanishesWhenMuIsNearY) {
  // ξ = y-1 when μ >= y-1, so the (ξ, y-1] segment is empty.
  const auto dist = MakeDist(5.0, 5.2, 2.0, 1.0);
  EXPECT_DOUBLE_EQ(dist.xi(), 4.2);
  EXPECT_NEAR(dist.theta2(), 0.0, 1e-15);
}

TEST(NoiseDownTest, PhiBoundsRawPdfOnCentralInterval) {
  // Proposition 4: raw f(y') < φ on (y-1, y+1) (the envelope bounds the
  // unnormalized Equation 6 density, which is what rejection samples).
  for (double mu : {-2.0, 0.0, 1.2, 2.9}) {
    const double y = 2.0;
    const auto dist = MakeDist(mu, y, 3.0, 1.5);
    const double phi = dist.phi();
    for (double t = -0.999; t <= 0.999; t += 0.001) {
      ASSERT_LE(dist.Pdf(y + t) * dist.normalization(), phi * (1 + 1e-9))
          << "mu=" << mu << " y'=" << y + t;
    }
  }
}

TEST(NoiseDownTest, MirrorSymmetry) {
  // f_{μ,λ,λ'}(y' | y) = f_{-μ,λ,λ'}(-y' | -y), the identity behind the
  // μ > y reduction (Figure 3, lines 1-3).
  const auto pos = MakeDist(1.0, 3.0, 2.0, 1.0);
  const auto neg = MakeDist(-1.0, -3.0, 2.0, 1.0);
  for (double x = -12; x <= 12; x += 0.37) {
    EXPECT_NEAR(pos.Pdf(x), neg.Pdf(-x), 1e-12) << "at " << x;
  }
}

TEST(NoiseDownTest, InvertedCaseIntegratesToOne) {
  const auto dist = MakeDist(5.0, 2.0, 2.0, 1.0);  // μ > y
  EXPECT_NEAR(IntegratePdf(dist, -60, 70), 1.0, 1e-6);
}

TEST(NoiseDownTest, LogPdfConsistentWithPdf) {
  const auto dist = MakeDist(0.0, 2.0, 2.5, 1.5);
  for (double x : {-5.0, -1.0, 0.0, 1.5, 2.0, 2.5, 8.0}) {
    EXPECT_NEAR(std::exp(dist.LogPdf(x)), dist.Pdf(x), 1e-12);
  }
}

TEST(NoiseDownTest, PdfContinuousAtSegmentBoundaries) {
  const auto dist = MakeDist(0.0, 3.0, 2.0, 1.0);
  for (double b : {dist.xi(), dist.y() - 1, dist.y() + 1, dist.mu()}) {
    const double eps = 1e-9;
    EXPECT_NEAR(dist.Pdf(b - eps), dist.Pdf(b + eps),
                1e-6 * std::max(1.0, dist.Pdf(b)))
        << "boundary " << b;
  }
}

TEST(NoiseDownTest, SampleRegionFrequenciesMatchThetas) {
  const double mu = 0.0, y = 3.0, lambda = 2.0, lp = 1.2;
  const auto dist = MakeDist(mu, y, lambda, lp);
  BitGen gen(99);
  const int n = 200'000;
  int left = 0, mid_left = 0, center = 0, right = 0;
  for (int i = 0; i < n; ++i) {
    const double s = dist.Sample(gen);
    if (s <= dist.xi()) {
      ++left;
    } else if (s <= y - 1) {
      ++mid_left;
    } else if (s < y + 1) {
      ++center;
    } else {
      ++right;
    }
  }
  const double tol = 4.0 / std::sqrt(n);  // ~4 sigma on a proportion
  EXPECT_NEAR(left / static_cast<double>(n), dist.theta1(), tol);
  EXPECT_NEAR(mid_left / static_cast<double>(n), dist.theta2(), tol);
  EXPECT_NEAR(right / static_cast<double>(n), dist.theta3(), tol);
  EXPECT_NEAR(center / static_cast<double>(n),
              1 - dist.theta1() - dist.theta2() - dist.theta3(), tol);
}

TEST(NoiseDownTest, SamplesMatchConditionalPdfByKs) {
  const auto dist = MakeDist(0.5, 2.0, 2.0, 1.0);
  BitGen gen(7);
  const int n = 60'000;
  std::vector<double> sample(n);
  for (double& s : sample) s = dist.Sample(gen);

  // Numeric CDF on a fine grid; the far tails carry < 1e-10 mass at ±40.
  const double lo = -40, hi = 40;
  const int grid = 8000;
  std::vector<double> xs(grid + 1), cdf(grid + 1);
  double acc = 0;
  xs[0] = lo;
  cdf[0] = 0;
  for (int i = 1; i <= grid; ++i) {
    xs[i] = lo + (hi - lo) * i / grid;
    acc += SimpsonIntegrate([&](double x) { return dist.Pdf(x); }, xs[i - 1],
                            xs[i], 8);
    cdf[i] = acc;
  }
  auto numeric_cdf = [&](double x) {
    if (x <= lo) return 0.0;
    if (x >= hi) return 1.0;
    const int i = static_cast<int>((x - lo) / (hi - lo) * grid);
    const int j = std::min(i + 1, grid);
    const double frac = (x - xs[i]) / (xs[j] - xs[i] + 1e-300);
    return cdf[i] + frac * (cdf[j] - cdf[i]);
  };
  EXPECT_LT(KsStatistic(sample, numeric_cdf), 1.63 / std::sqrt(n));
}

TEST(NoiseDownTest, MarginalOfChainIsLaplaceAtReducedScale) {
  // Theorem 1(i): Y ~ Lap(μ, λ), Y'|Y ~ NoiseDown  =>  Y' ~ Lap(μ, λ').
  // Exact up to the O(1/λ'²) normalization slack, so test at a scale
  // where that slack (~1e-4) sits far below the KS resolution.
  const double mu = 10.0, lambda = 60.0, lp = 25.0;
  BitGen gen(31);
  const int n = 60'000;
  std::vector<double> sample(n);
  for (double& s : sample) {
    const double y = gen.Laplace(mu, lambda);
    auto yp = NoiseDown(mu, y, lambda, lp, gen);
    ASSERT_TRUE(yp.ok());
    s = *yp;
  }
  const double ks = KsStatistic(
      sample, [&](double x) { return LaplaceCdf(x, mu, lp); });
  EXPECT_LT(ks, 1.63 / std::sqrt(n));
}

TEST(NoiseDownTest, MarginalDeviationBoundedAtUnitScale) {
  // At toy scales the chain marginal deviates from Laplace(λ') by the
  // documented O(1/λ'²) amount — detectable, but small.
  const double mu = 0.0, lambda = 4.0, lp = 1.5;
  BitGen gen(33);
  const int n = 60'000;
  std::vector<double> sample(n);
  for (double& s : sample) {
    auto yp = NoiseDown(mu, gen.Laplace(mu, lambda), lambda, lp, gen);
    ASSERT_TRUE(yp.ok());
    s = *yp;
  }
  const double ks = KsStatistic(
      sample, [&](double x) { return LaplaceCdf(x, mu, lp); });
  EXPECT_LT(ks, 0.03);
}

TEST(NoiseDownTest, RepeatedChainStillLaplace) {
  // Three successive reductions 400 -> 300 -> 200 -> 150 keep the Laplace
  // marginal (per-step slack ~1e-6 at these scales).
  const double mu = -30.0;
  BitGen gen(53);
  const int n = 40'000;
  std::vector<double> sample(n);
  for (double& s : sample) {
    double prev_scale = 400.0;
    double y = gen.Laplace(mu, prev_scale);
    for (double target : {300.0, 200.0, 150.0}) {
      auto yp = NoiseDown(mu, y, prev_scale, target, gen);
      ASSERT_TRUE(yp.ok());
      y = *yp;
      prev_scale = target;
    }
    s = y;
  }
  const double ks = KsStatistic(
      sample, [&](double x) { return LaplaceCdf(x, mu, 150.0); });
  EXPECT_LT(ks, 1.63 / std::sqrt(n));
}

TEST(NoiseDownTest, LargePaperScaleParametersAreStable) {
  // The experiments run λ ≈ |T|/10 = 10^5 with steps of |T|/10^6; make sure
  // nothing degenerates numerically there.
  const double lambda = 1e5, lp = 9.9e4;
  const auto dist = MakeDist(1234.0, 5678.0, lambda, lp);
  // A small scale reduction keeps y' close to y: the central interval
  // carries the smooth analogue of the exact coupling's atom at y' = y,
  // whose mass λ'²/λ² ≈ 0.98 dominates for λ' ≈ λ.
  EXPECT_GT(dist.middle_mass(), 0.9);
  EXPECT_NEAR(dist.theta1() + dist.theta2() + dist.theta3() +
                  dist.middle_mass(),
              1.0, 1e-12);
  EXPECT_NEAR(dist.normalization(), 1.0, 1e-6);
  BitGen gen(3);
  for (int i = 0; i < 200; ++i) {
    const double s = dist.Sample(gen);
    ASSERT_TRUE(std::isfinite(s));
  }
  // Mean of many samples should be near μ (scale dominates, loose check).
  std::vector<double> sample(20'000);
  for (double& s : sample) s = dist.Sample(gen);
  const SampleSummary sum = Summarize(sample);
  EXPECT_NEAR(sum.mean, 1234.0, 5 * lp / std::sqrt(20'000.0) * 1.5);
}

TEST(NoiseDownTest, FreeFunctionRejectsBadParameters) {
  BitGen gen(1);
  EXPECT_FALSE(NoiseDown(0, 1, 1.0, 2.0, gen).ok());
  EXPECT_TRUE(NoiseDown(0, 1, 2.0, 1.0, gen).ok());
}

TEST(NoiseDownTest, WithStepMatchesRescaledUnitProblem) {
  // NoiseDownWithStep(.., step) must equal step * NoiseDown(../step ..):
  // with identical generator state the draws coincide exactly.
  const double mu = 20, y = 26, lambda = 8, lp = 4, step = 2;
  BitGen g1(5), g2(5);
  auto scaled = NoiseDownWithStep(mu, y, lambda, lp, step, g1);
  auto unit = NoiseDown(mu / step, y / step, lambda / step, lp / step, g2);
  ASSERT_TRUE(scaled.ok());
  ASSERT_TRUE(unit.ok());
  EXPECT_DOUBLE_EQ(*scaled, *unit * step);
}

TEST(NoiseDownTest, WithStepValidatesStep) {
  BitGen gen(1);
  EXPECT_FALSE(NoiseDownWithStep(0, 1, 2.0, 1.0, 0.0, gen).ok());
  EXPECT_FALSE(NoiseDownWithStep(0, 1, 2.0, 1.0, -1.0, gen).ok());
}

TEST(NoiseDownTest, WithStepPreservesLaplaceMarginal) {
  const double mu = 50, lambda = 360, lp = 150, step = 3;
  BitGen gen(71);
  const int n = 40'000;
  std::vector<double> sample(n);
  for (double& s : sample) {
    const double y = gen.Laplace(mu, lambda);
    auto yp = NoiseDownWithStep(mu, y, lambda, lp, step, gen);
    ASSERT_TRUE(yp.ok());
    s = *yp;
  }
  const double ks = KsStatistic(
      sample, [&](double x) { return LaplaceCdf(x, mu, lp); });
  EXPECT_LT(ks, 1.63 / std::sqrt(n));
}

}  // namespace
}  // namespace ireduct
