#include "dp/noise_down_chain.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "eval/stats.h"

namespace ireduct {
namespace {

NoiseDownChainOptions ExactOptions() {
  NoiseDownChainOptions o;
  o.reducer = ChainReducer::kExactCoupling;
  return o;
}

TEST(NoiseDownChainTest, StartValidatesInputs) {
  auto acct = PrivacyAccountant::Create(1.0);
  ASSERT_TRUE(acct.ok());
  BitGen gen(1);
  EXPECT_FALSE(
      NoiseDownChain::Start(10, 0, ExactOptions(), *acct, gen).ok());
  NoiseDownChainOptions bad = ExactOptions();
  bad.sensitivity = 0;
  EXPECT_FALSE(NoiseDownChain::Start(10, 5, bad, *acct, gen).ok());
}

TEST(NoiseDownChainTest, StartChargesInitialScale) {
  auto acct = PrivacyAccountant::Create(1.0);
  ASSERT_TRUE(acct.ok());
  BitGen gen(2);
  auto chain = NoiseDownChain::Start(100, 10, ExactOptions(), *acct, gen);
  ASSERT_TRUE(chain.ok());
  EXPECT_DOUBLE_EQ(chain->epsilon_spent(), 0.1);
  EXPECT_DOUBLE_EQ(acct->spent(), 0.1);
  EXPECT_DOUBLE_EQ(chain->scale(), 10);
}

TEST(NoiseDownChainTest, TotalChargeEqualsFinalScaleRelease) {
  auto acct = PrivacyAccountant::Create(1.0);
  ASSERT_TRUE(acct.ok());
  BitGen gen(3);
  auto chain = NoiseDownChain::Start(100, 50, ExactOptions(), *acct, gen);
  ASSERT_TRUE(chain.ok());
  ASSERT_TRUE(chain->Reduce(20, gen).ok());
  ASSERT_TRUE(chain->Reduce(5, gen).ok());
  // Whole chain = one release at scale 5.
  EXPECT_NEAR(chain->epsilon_spent(), 1.0 / 5, 1e-12);
  EXPECT_NEAR(acct->spent(), 1.0 / 5, 1e-12);
  EXPECT_EQ(chain->reductions(), 2);
}

TEST(NoiseDownChainTest, PaperReducerChargesSlack) {
  auto acct = PrivacyAccountant::Create(1.0);
  ASSERT_TRUE(acct.ok());
  NoiseDownChainOptions options;
  options.reducer = ChainReducer::kPaperNoiseDown;
  BitGen gen(4);
  auto chain = NoiseDownChain::Start(100, 50, options, *acct, gen);
  ASSERT_TRUE(chain.ok());
  ASSERT_TRUE(chain->Reduce(10, gen).ok());
  EXPECT_NEAR(chain->epsilon_spent(), 1.06 / 10, 1e-12);
}

TEST(NoiseDownChainTest, ReduceValidatesScale) {
  auto acct = PrivacyAccountant::Create(1.0);
  ASSERT_TRUE(acct.ok());
  BitGen gen(5);
  auto chain = NoiseDownChain::Start(100, 10, ExactOptions(), *acct, gen);
  ASSERT_TRUE(chain.ok());
  EXPECT_FALSE(chain->Reduce(10, gen).ok());  // not smaller
  EXPECT_FALSE(chain->Reduce(0, gen).ok());
  EXPECT_FALSE(chain->Reduce(-3, gen).ok());
}

TEST(NoiseDownChainTest, BudgetExhaustionLeavesChainIntact) {
  auto acct = PrivacyAccountant::Create(0.11);
  ASSERT_TRUE(acct.ok());
  BitGen gen(6);
  auto chain = NoiseDownChain::Start(100, 10, ExactOptions(), *acct, gen);
  ASSERT_TRUE(chain.ok());  // 0.1 spent
  const double before_answer = chain->answer();
  const Status s = chain->Reduce(1, gen);  // would need +0.9
  EXPECT_EQ(s.code(), StatusCode::kPrivacyBudgetExceeded);
  EXPECT_DOUBLE_EQ(chain->answer(), before_answer);
  EXPECT_DOUBLE_EQ(chain->scale(), 10);
  EXPECT_NEAR(acct->spent(), 0.1, 1e-12);
}

TEST(NoiseDownChainTest, SensitivityScalesCharges) {
  auto acct = PrivacyAccountant::Create(5.0);
  ASSERT_TRUE(acct.ok());
  NoiseDownChainOptions options = ExactOptions();
  options.sensitivity = 2.0;
  BitGen gen(7);
  auto chain = NoiseDownChain::Start(100, 10, options, *acct, gen);
  ASSERT_TRUE(chain.ok());
  EXPECT_DOUBLE_EQ(chain->epsilon_spent(), 0.2);
  ASSERT_TRUE(chain->Reduce(2, gen).ok());
  EXPECT_NEAR(chain->epsilon_spent(), 1.0, 1e-12);
}

TEST(NoiseDownChainTest, FinalAnswerIsLaplaceAtFinalScale) {
  const double mu = 42.0;
  std::vector<double> sample(40'000);
  BitGen gen(8);
  for (double& s : sample) {
    auto acct = PrivacyAccountant::Create(10.0);
    auto chain = NoiseDownChain::Start(mu, 8.0, ExactOptions(), *acct, gen);
    ASSERT_TRUE(chain.ok());
    ASSERT_TRUE(chain->Reduce(4.0, gen).ok());
    ASSERT_TRUE(chain->Reduce(1.5, gen).ok());
    s = chain->answer();
  }
  const double ks = KsStatistic(
      sample, [&](double x) { return LaplaceCdf(x, mu, 1.5); });
  EXPECT_LT(ks, 1.63 / std::sqrt(40'000.0));
}

}  // namespace
}  // namespace ireduct
