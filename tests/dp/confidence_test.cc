#include "dp/confidence.h"

#include <gtest/gtest.h>

#include <cmath>

#include "algorithms/dwork.h"
#include "common/random.h"
#include "eval/stats.h"

namespace ireduct {
namespace {

TEST(ConfidenceTest, QuantileBasics) {
  EXPECT_DOUBLE_EQ(LaplaceQuantile(0.5, 3.0, 2.0), 3.0);
  // CDF(quantile(p)) = p.
  for (double p : {0.01, 0.2, 0.5, 0.8, 0.99}) {
    const double q = LaplaceQuantile(p, -1.0, 1.7);
    EXPECT_NEAR(LaplaceCdf(q, -1.0, 1.7), p, 1e-12) << "p=" << p;
  }
  // Symmetry.
  EXPECT_NEAR(LaplaceQuantile(0.9, 0, 1), -LaplaceQuantile(0.1, 0, 1),
              1e-12);
}

TEST(ConfidenceTest, IntervalValidates) {
  EXPECT_FALSE(LaplaceConfidenceInterval(0, 1, 0).ok());
  EXPECT_FALSE(LaplaceConfidenceInterval(0, 1, 1).ok());
  EXPECT_FALSE(LaplaceConfidenceInterval(0, 0, 0.9).ok());
}

TEST(ConfidenceTest, IntervalWidthMatchesFormula) {
  auto ci = LaplaceConfidenceInterval(100, 5, 0.95);
  ASSERT_TRUE(ci.ok());
  // half width = 5·ln(20).
  EXPECT_NEAR(ci->width(), 2 * 5 * std::log(20.0), 1e-9);
  EXPECT_TRUE(ci->Contains(100));
  EXPECT_NEAR((ci->lo + ci->hi) / 2, 100, 1e-12);
}

TEST(ConfidenceTest, EmpiricalCoverageMatchesLevel) {
  // A 90% interval around the noisy answer must contain the true answer
  // ~90% of the time (Laplace noise is symmetric, so posterior and
  // sampling intervals coincide).
  const double truth = 500, scale = 7, level = 0.9;
  BitGen gen(1);
  int covered = 0;
  const int trials = 100'000;
  for (int t = 0; t < trials; ++t) {
    const double answer = truth + gen.Laplace(scale);
    auto ci = LaplaceConfidenceInterval(answer, scale, level);
    ASSERT_TRUE(ci.ok());
    covered += ci->Contains(truth);
  }
  EXPECT_NEAR(covered / static_cast<double>(trials), level, 0.005);
}

TEST(ConfidenceTest, PerQueryIntervalsUseGroupScales) {
  auto w = Workload::Create(
      {10, 20, 30},
      {QueryGroup{"a", 0, 1, 1.0}, QueryGroup{"b", 1, 3, 1.0}});
  ASSERT_TRUE(w.ok());
  MechanismOutput out;
  out.answers = {11, 19, 31};
  out.group_scales = {2, 8};
  auto intervals = ConfidenceIntervals(*w, out, 0.95);
  ASSERT_TRUE(intervals.ok());
  ASSERT_EQ(intervals->size(), 3u);
  EXPECT_NEAR((*intervals)[0].width() * 4, (*intervals)[1].width(), 1e-9);
  EXPECT_DOUBLE_EQ((*intervals)[1].width(), (*intervals)[2].width());
}

TEST(ConfidenceTest, PerQueryIntervalsValidateShape) {
  auto w = Workload::PerQuery({1, 2});
  ASSERT_TRUE(w.ok());
  MechanismOutput out;
  out.answers = {1};
  out.group_scales = {1, 1};
  EXPECT_FALSE(ConfidenceIntervals(*w, out, 0.9).ok());
}

TEST(ConfidenceTest, EndToEndWithDwork) {
  auto w = Workload::PerQuery({100, 2000});
  ASSERT_TRUE(w.ok());
  BitGen gen(2);
  int covered = 0;
  const int trials = 20'000;
  for (int t = 0; t < trials; ++t) {
    auto out = RunDwork(*w, DworkParams{0.5}, gen);
    ASSERT_TRUE(out.ok());
    auto intervals = ConfidenceIntervals(*w, *out, 0.95);
    ASSERT_TRUE(intervals.ok());
    covered += (*intervals)[0].Contains(100);
  }
  EXPECT_NEAR(covered / static_cast<double>(trials), 0.95, 0.01);
}

}  // namespace
}  // namespace ireduct
