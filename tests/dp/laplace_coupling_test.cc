#include "dp/laplace_coupling.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "eval/stats.h"

namespace ireduct {
namespace {

TEST(LaplaceCouplingTest, ValidatesParameters) {
  BitGen gen(1);
  EXPECT_FALSE(CoupledNoiseDown(0, 1, 1.0, 1.0, gen).ok());
  EXPECT_FALSE(CoupledNoiseDown(0, 1, 1.0, 2.0, gen).ok());
  EXPECT_FALSE(CoupledNoiseDown(std::nan(""), 1, 2.0, 1.0, gen).ok());
  EXPECT_TRUE(CoupledNoiseDown(0, 1, 2.0, 1.0, gen).ok());
}

TEST(LaplaceCouplingTest, StickProbabilityFormula) {
  // p = (λ'/λ)·e^{-|y-μ|(1/λ'-1/λ)}.
  EXPECT_NEAR(CoupledNoiseDownStickProbability(0, 0, 2.0, 1.0), 0.5, 1e-12);
  EXPECT_NEAR(CoupledNoiseDownStickProbability(0, 3, 2.0, 1.0),
              0.5 * std::exp(-3 * 0.5), 1e-12);
  // Symmetric in the sign of y - μ.
  EXPECT_DOUBLE_EQ(CoupledNoiseDownStickProbability(0, 3, 2.0, 1.0),
                   CoupledNoiseDownStickProbability(0, -3, 2.0, 1.0));
  EXPECT_LE(CoupledNoiseDownStickProbability(0, 0, 2.0, 1.0), 1.0);
}

TEST(LaplaceCouplingTest, MarginalIsExactlyLaplaceEvenAtUnitScale) {
  // Unlike the paper's NoiseDown (O(1/λ') slack at toy scales), the atom
  // coupling is exact at every scale; KS passes at λ' = 1.
  const double mu = -2.0, lambda = 3.0, lp = 1.0;
  BitGen gen(7);
  const int n = 60'000;
  std::vector<double> sample(n);
  for (double& s : sample) {
    const double y = gen.Laplace(mu, lambda);
    auto yp = CoupledNoiseDown(mu, y, lambda, lp, gen);
    ASSERT_TRUE(yp.ok());
    s = *yp;
  }
  const double ks = KsStatistic(
      sample, [&](double x) { return LaplaceCdf(x, mu, lp); });
  EXPECT_LT(ks, 1.63 / std::sqrt(n));
}

TEST(LaplaceCouplingTest, ChainOfReductionsStaysLaplace) {
  const double mu = 5.0;
  BitGen gen(11);
  const int n = 40'000;
  std::vector<double> sample(n);
  for (double& s : sample) {
    double prev = 4.0;
    double y = gen.Laplace(mu, prev);
    for (double target : {2.5, 1.5, 0.8}) {
      auto yp = CoupledNoiseDown(mu, y, prev, target, gen);
      ASSERT_TRUE(yp.ok());
      y = *yp;
      prev = target;
    }
    s = y;
  }
  const double ks = KsStatistic(
      sample, [&](double x) { return LaplaceCdf(x, mu, 0.8); });
  EXPECT_LT(ks, 1.63 / std::sqrt(n));
}

TEST(LaplaceCouplingTest, SticksWithPositiveProbability) {
  BitGen gen(13);
  const double mu = 0, lambda = 2.0, lp = 1.5, y = 0.5;
  int stuck = 0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) {
    auto yp = CoupledNoiseDown(mu, y, lambda, lp, gen);
    ASSERT_TRUE(yp.ok());
    stuck += (*yp == y);
  }
  const double expected =
      CoupledNoiseDownStickProbability(mu, y, lambda, lp);
  EXPECT_NEAR(stuck / static_cast<double>(n), expected,
              4 / std::sqrt(static_cast<double>(n)));
}

TEST(LaplaceCouplingTest, FarFromTruthRarelySticks) {
  // |y - μ| >> λ' makes sticking exponentially unlikely, and the sampler
  // must stay numerically healthy (no underflow NaNs).
  BitGen gen(17);
  for (int i = 0; i < 1000; ++i) {
    auto yp = CoupledNoiseDown(0.0, 5000.0, 2.0, 1.0, gen);
    ASSERT_TRUE(yp.ok());
    ASSERT_TRUE(std::isfinite(*yp));
  }
}

TEST(LaplaceCouplingTest, ExactJointPrivacyFactorization) {
  // Continuous-branch joint density: Lap(y)·f_cont(y'|y) must equal
  // Lap'(y')·(1-α)·Lap_λ(y-y') — the μ appears only through Lap'(y').
  // We verify via the closed-form pieces: the analytic continuous density
  //   f_cont(y') = (1-α)·Lap(y';μ,λ')·Lap(y-y';0,λ)/((1-p)·Lap(y;μ,λ))
  // integrates to 1 together with the atom mass p.
  const double mu = 0.3, lambda = 2.0, lp = 0.9, y = 1.7;
  const double alpha = (lp * lp) / (lambda * lambda);
  const double p = CoupledNoiseDownStickProbability(mu, y, lambda, lp);
  auto lap = [](double x, double m, double b) {
    return std::exp(-std::fabs(x - m) / b) / (2 * b);
  };
  // Numeric integral of the unnormalized continuous joint over y'.
  double integral = 0;
  const int steps = 400'000;
  const double lo = -40, hi = 40;
  for (int i = 0; i < steps; ++i) {
    const double x = lo + (hi - lo) * (i + 0.5) / steps;
    integral += lap(x, mu, lp) * lap(y - x, 0, lambda);
  }
  integral *= (hi - lo) / steps;
  // Total probability: p + (1-α)·integral / Lap(y;μ,λ) = 1.
  EXPECT_NEAR(p + (1 - alpha) * integral / lap(y, mu, lambda), 1.0, 1e-5);
}

}  // namespace
}  // namespace ireduct
