#include "dp/incremental_sensitivity.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/numeric.h"
#include "common/random.h"
#include "dp/workload.h"

namespace ireduct {
namespace {

Workload RandomGroupedWorkload(BitGen& gen, size_t num_groups) {
  std::vector<double> answers;
  std::vector<QueryGroup> groups;
  uint32_t begin = 0;
  for (size_t g = 0; g < num_groups; ++g) {
    const uint32_t size = 1 + static_cast<uint32_t>(gen.UniformInt(4));
    for (uint32_t i = 0; i < size; ++i) {
      answers.push_back(gen.Uniform(0.5, 5000.0));
    }
    groups.push_back(QueryGroup{"g", begin, begin + size,
                                gen.Uniform(0.5, 4.0)});
    begin += size;
  }
  auto w = Workload::Create(std::move(answers), std::move(groups));
  EXPECT_TRUE(w.ok()) << w.status();
  return std::move(w).value();
}

TEST(IncrementalSensitivityTest, MatchesInitialFullComputation) {
  BitGen gen(1);
  const Workload w = RandomGroupedWorkload(gen, 50);
  const std::vector<double> scales(w.num_groups(), 1000.0);
  IncrementalSensitivity tracker(w, scales);
  EXPECT_TRUE(tracker.incremental());
  EXPECT_EQ(tracker.value(), w.GeneralizedSensitivity(scales));
}

TEST(IncrementalSensitivityTest, TrialIsNonDestructive) {
  BitGen gen(2);
  const Workload w = RandomGroupedWorkload(gen, 20);
  const std::vector<double> scales(w.num_groups(), 500.0);
  IncrementalSensitivity tracker(w, scales);
  const double before = tracker.value();
  tracker.Trial(3, 400.0);
  tracker.TrialExact(3, 400.0);
  EXPECT_EQ(tracker.value(), before);
  EXPECT_EQ(tracker.scales()[3], 500.0);
}

TEST(IncrementalSensitivityTest, TrialRejectsNonPositiveScales) {
  BitGen gen(3);
  const Workload w = RandomGroupedWorkload(gen, 5);
  const std::vector<double> scales(w.num_groups(), 100.0);
  IncrementalSensitivity tracker(w, scales);
  EXPECT_EQ(tracker.Trial(0, 0.0), std::numeric_limits<double>::infinity());
  EXPECT_EQ(tracker.Trial(0, -5.0),
            std::numeric_limits<double>::infinity());
}

TEST(IncrementalSensitivityTest, TrialExactMatchesWorkloadBitForBit) {
  BitGen gen(4);
  const Workload w = RandomGroupedWorkload(gen, 80);
  std::vector<double> scales(w.num_groups());
  for (double& s : scales) s = gen.Uniform(10.0, 2000.0);
  IncrementalSensitivity tracker(w, scales);
  for (int t = 0; t < 50; ++t) {
    const size_t g = gen.UniformInt(w.num_groups());
    const double trial_scale = gen.Uniform(5.0, 2000.0);
    std::vector<double> expected_scales = scales;
    expected_scales[g] = trial_scale;
    EXPECT_EQ(tracker.TrialExact(g, trial_scale),
              w.GeneralizedSensitivity(expected_scales));
  }
}

// The tentpole property: across long random λ-move sequences, the running
// compensated sum stays within 1e-9 relative of a full Kahan recompute.
TEST(IncrementalSensitivityTest, LongMoveSequenceStaysWithinDriftEnvelope) {
  for (uint64_t seed : {11u, 12u, 13u}) {
    BitGen gen(seed);
    const Workload w = RandomGroupedWorkload(gen, 200);
    std::vector<double> scales(w.num_groups());
    for (double& s : scales) s = gen.Uniform(100.0, 5000.0);
    // A huge resync interval disables the periodic full recompute so the
    // test exercises genuine incremental drift, not the resync.
    IncrementalSensitivity tracker(
        w, scales, /*resync_interval=*/std::numeric_limits<size_t>::max());
    for (int move = 0; move < 20000; ++move) {
      const size_t g = gen.UniformInt(w.num_groups());
      const double new_scale = scales[g] * gen.Uniform(0.7, 0.999);
      const double trial = tracker.Trial(g, new_scale);
      tracker.Commit(g, new_scale);
      scales[g] = new_scale;
      const double full = w.GeneralizedSensitivity(scales);
      EXPECT_NEAR(tracker.value(), full, 1e-9 * full)
          << "seed " << seed << " move " << move;
      EXPECT_NEAR(trial, full, 1e-9 * full);
    }
  }
}

TEST(IncrementalSensitivityTest, PeriodicResyncErasesDrift) {
  BitGen gen(21);
  const Workload w = RandomGroupedWorkload(gen, 64);
  std::vector<double> scales(w.num_groups(), 3000.0);
  IncrementalSensitivity tracker(w, scales, /*resync_interval=*/16);
  for (int move = 0; move < 16; ++move) {
    const size_t g = gen.UniformInt(w.num_groups());
    const double new_scale = scales[g] * 0.9;
    tracker.Commit(g, new_scale);
    scales[g] = new_scale;
  }
  // The 16th commit triggered a resync: the value is bit-identical to a
  // from-scratch recompute.
  EXPECT_EQ(tracker.value(), w.GeneralizedSensitivity(scales));
}

TEST(IncrementalSensitivityTest, ResyncReturnsExactValue) {
  BitGen gen(22);
  const Workload w = RandomGroupedWorkload(gen, 64);
  std::vector<double> scales(w.num_groups(), 3000.0);
  IncrementalSensitivity tracker(
      w, scales, /*resync_interval=*/std::numeric_limits<size_t>::max());
  for (int move = 0; move < 500; ++move) {
    const size_t g = gen.UniformInt(w.num_groups());
    const double new_scale = scales[g] * gen.Uniform(0.8, 0.99);
    tracker.Commit(g, new_scale);
    scales[g] = new_scale;
  }
  EXPECT_EQ(tracker.Resync(), w.GeneralizedSensitivity(scales));
  EXPECT_EQ(tracker.value(), w.GeneralizedSensitivity(scales));
}

TEST(IncrementalSensitivityTest, CustomSensitivityFallsBackToFullRecompute) {
  // A non-additive GS: the additive sum doubled. Monotone non-increasing
  // in every scale, so a valid SensitivityFn.
  auto custom = [](std::span<const double> scales) {
    KahanSum acc;
    for (double s : scales) acc.Add(2.0 / s);
    return acc.value();
  };
  auto w = Workload::CreateWithSensitivityFn(
      {10, 20, 30},
      {QueryGroup{"a", 0, 1, 1.0}, QueryGroup{"b", 1, 2, 1.0},
       QueryGroup{"c", 2, 3, 1.0}},
      custom);
  ASSERT_TRUE(w.ok());
  std::vector<double> scales{100.0, 200.0, 300.0};
  IncrementalSensitivity tracker(*w, scales);
  EXPECT_FALSE(tracker.incremental());
  EXPECT_EQ(tracker.value(), w->GeneralizedSensitivity(scales));
  // Trials and commits route through the custom fn; value stays exact.
  std::vector<double> moved = scales;
  moved[1] = 150.0;
  EXPECT_EQ(tracker.Trial(1, 150.0), w->GeneralizedSensitivity(moved));
  tracker.Commit(1, 150.0);
  EXPECT_EQ(tracker.value(), w->GeneralizedSensitivity(moved));
}

}  // namespace
}  // namespace ireduct
