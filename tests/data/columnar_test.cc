#include "data/columnar.h"

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "common/random.h"
#include "data/census_generator.h"
#include "data/csv.h"

namespace ireduct {
namespace {

using columnar_internal::BitPack;
using columnar_internal::BitUnpack;
using columnar_internal::BitWidthFor;
using columnar_internal::Crc32;
using columnar_internal::PackedBytes;
using columnar_internal::RleDecode;
using columnar_internal::RleEncode;
using columnar_internal::RleMaxEncoded;

class ColumnarTest : public testing::Test {
 protected:
  void SetUp() override {
    path_ = testing::TempDir() + "/ireduct_columnar_test.col";
  }
  void TearDown() override {
    std::remove(path_.c_str());
    std::remove((path_ + ".b").c_str());
  }

  std::string path_;
};

// A dataset with every pack-width regime the format cares about: 1-bit,
// mid-width, and a >8-bit domain whose codes byte-RLE well (heavy head).
Dataset MakeDataset(size_t rows, uint64_t seed = 5) {
  auto schema =
      Schema::Create({{"Bit", 2}, {"Mid", 37}, {"Wide", 40'000}, {"Tri", 3}});
  EXPECT_TRUE(schema.ok());
  Dataset d(std::move(schema).value());
  BitGen gen(seed);
  for (size_t r = 0; r < rows; ++r) {
    const std::array<uint16_t, 4> row{
        static_cast<uint16_t>(gen.UniformInt(2)),
        static_cast<uint16_t>(gen.UniformInt(37)),
        // Mostly a handful of hot codes, occasionally the full domain.
        static_cast<uint16_t>(gen.UniformInt(10) < 8 ? gen.UniformInt(4)
                                                     : gen.UniformInt(40'000)),
        static_cast<uint16_t>(gen.UniformInt(3))};
    EXPECT_TRUE(d.AppendRow(row).ok());
  }
  return d;
}

std::vector<char> Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good());
  return std::vector<char>(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
}

void Dump(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

void ExpectSameContent(const Dataset& a, const Dataset& b) {
  ASSERT_EQ(a.num_rows(), b.num_rows());
  ASSERT_EQ(a.num_columns(), b.num_columns());
  for (size_t c = 0; c < a.num_columns(); ++c) {
    EXPECT_EQ(a.schema().attribute(c).name, b.schema().attribute(c).name);
    EXPECT_EQ(a.schema().attribute(c).domain_size,
              b.schema().attribute(c).domain_size);
    for (size_t r = 0; r < a.num_rows(); ++r) {
      ASSERT_EQ(a.value(r, c), b.value(r, c)) << "row " << r << " col " << c;
    }
  }
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
}

// ---------------------------------------------------------------------------
// Internal codecs.

TEST(ColumnarCodecTest, BitWidthCoversDomainRange) {
  EXPECT_EQ(BitWidthFor(1), 1u);  // degenerate single-value domain
  EXPECT_EQ(BitWidthFor(2), 1u);
  EXPECT_EQ(BitWidthFor(3), 2u);
  EXPECT_EQ(BitWidthFor(4), 2u);
  EXPECT_EQ(BitWidthFor(5), 3u);
  EXPECT_EQ(BitWidthFor(256), 8u);
  EXPECT_EQ(BitWidthFor(257), 9u);
  EXPECT_EQ(BitWidthFor(65'535), 16u);
}

TEST(ColumnarCodecTest, PackedBytesMatchesBitMath) {
  EXPECT_EQ(PackedBytes(0, 7), 0u);
  EXPECT_EQ(PackedBytes(8, 1), 1u);
  EXPECT_EQ(PackedBytes(9, 1), 2u);
  EXPECT_EQ(PackedBytes(3, 16), 6u);
  EXPECT_EQ(PackedBytes(5, 3), 2u);  // 15 bits -> 2 bytes
}

TEST(ColumnarCodecTest, BitPackRoundTripsEveryWidth) {
  BitGen gen(11);
  for (unsigned width = 1; width <= 16; ++width) {
    const uint32_t limit = 1u << width;
    for (const size_t n : {size_t{0}, size_t{1}, size_t{7}, size_t{64},
                           size_t{1000}}) {
      std::vector<uint16_t> values(n);
      for (auto& v : values) {
        v = static_cast<uint16_t>(gen.UniformInt(limit));
      }
      std::vector<uint8_t> packed(PackedBytes(n, width), 0xAB);
      BitPack(values.data(), n, width, packed.data());
      std::vector<uint16_t> back(n, 0xFFFF);
      BitUnpack(packed.data(), n, width, back.data());
      ASSERT_EQ(back, values) << "width " << width << " n " << n;
    }
  }
}

TEST(ColumnarCodecTest, RleRoundTripsRunsAndNoise) {
  BitGen gen(12);
  std::vector<std::vector<uint8_t>> inputs;
  inputs.push_back({});                         // empty
  inputs.push_back({42});                       // single byte
  inputs.push_back(std::vector<uint8_t>(5, 9)); // short run
  inputs.push_back(std::vector<uint8_t>(1000, 0));  // long run (> max run)
  {
    std::vector<uint8_t> noise(777);  // incompressible
    for (auto& b : noise) b = static_cast<uint8_t>(gen.UniformInt(256));
    inputs.push_back(std::move(noise));
  }
  {
    std::vector<uint8_t> mixed;  // literal/run alternation at boundaries
    for (int i = 0; i < 130; ++i) mixed.push_back(static_cast<uint8_t>(i));
    mixed.insert(mixed.end(), 130, 7);
    mixed.push_back(1);
    mixed.push_back(2);
    mixed.insert(mixed.end(), 3, 3);  // minimum-length run
    inputs.push_back(std::move(mixed));
  }
  for (const auto& input : inputs) {
    std::vector<uint8_t> encoded(RleMaxEncoded(input.size()) + 1, 0xCD);
    const size_t n = RleEncode(input.data(), input.size(), encoded.data());
    ASSERT_LE(n, RleMaxEncoded(input.size()));
    std::vector<uint8_t> back(input.size(), 0xEF);
    ASSERT_TRUE(RleDecode(encoded.data(), n, back.data(), input.size()).ok());
    ASSERT_EQ(back, input);
  }
}

TEST(ColumnarCodecTest, RleDecodeRefusesMalformedStreams) {
  std::vector<uint8_t> input(100, 5);
  std::vector<uint8_t> encoded(RleMaxEncoded(input.size()));
  const size_t n = RleEncode(input.data(), input.size(), encoded.data());
  std::vector<uint8_t> out(200);
  // Wrong expected length (both directions).
  EXPECT_FALSE(RleDecode(encoded.data(), n, out.data(), 99).ok());
  EXPECT_FALSE(RleDecode(encoded.data(), n, out.data(), 101).ok());
  // Truncated stream.
  EXPECT_FALSE(RleDecode(encoded.data(), n - 1, out.data(), 100).ok());
  // A run control byte with no payload byte after it.
  const uint8_t dangling[] = {0x90};
  EXPECT_FALSE(RleDecode(dangling, 1, out.data(), 10).ok());
}

TEST(ColumnarCodecTest, Crc32MatchesKnownVector) {
  // The IEEE CRC-32 check value ("123456789").
  const uint8_t check[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(Crc32(check, sizeof(check)), 0xCBF43926u);
  EXPECT_EQ(Crc32(nullptr, 0), 0u);
}

// ---------------------------------------------------------------------------
// File round trips.

TEST_F(ColumnarTest, PackedRoundTripAcrossBlockSizes) {
  const Dataset d = MakeDataset(1'000);
  // 333 leaves a short last block; 1000 exactly one block; 64 many blocks.
  for (const uint32_t block_rows : {64u, 333u, 1000u, 4096u}) {
    ColumnarWriteOptions options;
    options.block_rows = block_rows;
    ASSERT_TRUE(WriteColumnar(d, path_, options).ok());
    auto file = ColumnarFile::Open(path_);
    ASSERT_TRUE(file.ok()) << file.status();
    EXPECT_EQ(file->num_rows(), d.num_rows());
    EXPECT_EQ(file->block_rows(), block_rows);
    EXPECT_EQ(file->num_blocks(),
              (d.num_rows() + block_rows - 1) / block_rows);
    EXPECT_EQ(file->fingerprint(), d.Fingerprint());
    EXPECT_FALSE(file->zero_copy());
    auto back = file->ToDataset();
    ASSERT_TRUE(back.ok()) << back.status();
    EXPECT_TRUE(back->owns_storage());
    ExpectSameContent(d, *back);
  }
}

TEST_F(ColumnarTest, ZeroCopyRoundTripServesMmapSpans) {
  const Dataset d = MakeDataset(1'000);
  ColumnarWriteOptions options;
  options.block_rows = 256;
  options.zero_copy_layout = true;
  ASSERT_TRUE(WriteColumnar(d, path_, options).ok());
  auto file = ColumnarFile::Open(path_);
  ASSERT_TRUE(file.ok()) << file.status();
  EXPECT_TRUE(file->zero_copy());
  for (uint32_t c = 0; c < d.num_columns(); ++c) {
    EXPECT_EQ(file->chunk_encoding(c, 0), ChunkEncoding::kRaw16);
    const auto span = file->ColumnSpan(c);
    ASSERT_EQ(span.size(), d.num_rows());
    for (size_t r = 0; r < d.num_rows(); ++r) {
      ASSERT_EQ(span[r], d.value(r, c));
    }
  }
  auto back = file->ToDataset();
  ASSERT_TRUE(back.ok()) << back.status();
  // Zero-copy files materialize as mmap-backed (read-only) datasets.
  EXPECT_FALSE(back->owns_storage());
  const std::array<uint16_t, 4> row{0, 0, 0, 0};
  EXPECT_FALSE(back->AppendRow(row).ok());
  ExpectSameContent(d, *back);
}

TEST_F(ColumnarTest, BackedDatasetOutlivesTheColumnarFileHandle) {
  const Dataset d = MakeDataset(200);
  ColumnarWriteOptions options;
  options.zero_copy_layout = true;
  ASSERT_TRUE(WriteColumnar(d, path_, options).ok());
  Result<Dataset> back = Status::Internal("unset");
  {
    auto file = ColumnarFile::Open(path_);
    ASSERT_TRUE(file.ok());
    back = file->ToDataset();
  }  // file handle gone; the dataset must keep the mapping alive
  ASSERT_TRUE(back.ok());
  ExpectSameContent(d, *back);
}

TEST_F(ColumnarTest, EmptyDatasetRoundTrips) {
  auto schema = Schema::Create({{"A", 3}, {"B", 9}});
  ASSERT_TRUE(schema.ok());
  const Dataset d(std::move(schema).value());
  for (const bool zero_copy : {false, true}) {
    ColumnarWriteOptions options;
    options.zero_copy_layout = zero_copy;
    ASSERT_TRUE(WriteColumnar(d, path_, options).ok());
    auto back = ReadColumnar(path_);
    ASSERT_TRUE(back.ok()) << back.status();
    EXPECT_EQ(back->num_rows(), 0u);
    EXPECT_EQ(back->num_columns(), 2u);
    EXPECT_EQ(back->Fingerprint(), d.Fingerprint());
  }
}

TEST_F(ColumnarTest, CsvColumnarCsvIsByteIdentical) {
  const Dataset d = MakeDataset(500);
  const std::string csv_a = path_ + ".b";
  ASSERT_TRUE(WriteCsv(d, csv_a).ok());
  ASSERT_TRUE(WriteColumnar(d, path_).ok());
  auto back = ReadColumnar(path_);
  ASSERT_TRUE(back.ok());
  const std::string csv_b = testing::TempDir() + "/ireduct_columnar_rt.csv";
  ASSERT_TRUE(WriteCsv(*back, csv_b).ok());
  EXPECT_EQ(Slurp(csv_a), Slurp(csv_b));
  std::remove(csv_b.c_str());
}

TEST_F(ColumnarTest, FingerprintIsStableAcrossBackingStores) {
  // The same content must fingerprint identically whether it lives in
  // owned vectors, decoded packed columns, or the mmap'd zero-copy file —
  // MarginalCache keys on this.
  auto d = GenerateProfile({DataProfile::kZipfHeavy, CensusKind::kBrazil,
                            5'000, 3});
  ASSERT_TRUE(d.ok());
  const uint64_t want = d->Fingerprint();

  ASSERT_TRUE(WriteColumnar(*d, path_).ok());
  auto packed = ReadColumnar(path_);
  ASSERT_TRUE(packed.ok());
  EXPECT_TRUE(packed->owns_storage());
  EXPECT_EQ(packed->Fingerprint(), want);

  ColumnarWriteOptions zc;
  zc.zero_copy_layout = true;
  ASSERT_TRUE(WriteColumnar(*d, path_, zc).ok());
  auto file = ColumnarFile::Open(path_);
  ASSERT_TRUE(file.ok());
  EXPECT_EQ(file->fingerprint(), want);
  auto backed = file->ToDataset();
  ASSERT_TRUE(backed.ok());
  EXPECT_FALSE(backed->owns_storage());
  EXPECT_EQ(backed->Fingerprint(), want);
}

TEST_F(ColumnarTest, CompressionCanBeDisabled) {
  const Dataset d = MakeDataset(2'000);
  ASSERT_TRUE(WriteColumnar(d, path_).ok());
  const uint64_t compressed = Slurp(path_).size();
  ColumnarWriteOptions raw;
  raw.compress = false;
  ASSERT_TRUE(WriteColumnar(d, path_, raw).ok());
  const uint64_t uncompressed = Slurp(path_).size();
  // The hot-coded Wide column RLEs well, so compression must have helped.
  EXPECT_LT(compressed, uncompressed);
  auto file = ColumnarFile::Open(path_);
  ASSERT_TRUE(file.ok());
  for (uint32_t c = 0; c < d.num_columns(); ++c) {
    for (uint32_t b = 0; b < file->num_blocks(); ++b) {
      EXPECT_EQ(file->chunk_encoding(c, b), ChunkEncoding::kPacked);
    }
  }
  auto back = file->ToDataset();
  ASSERT_TRUE(back.ok());
  ExpectSameContent(d, *back);
}

// ---------------------------------------------------------------------------
// Corruption refusal.

TEST_F(ColumnarTest, RefusesTruncatedFiles) {
  const Dataset d = MakeDataset(300);
  for (const bool zero_copy : {false, true}) {
    ColumnarWriteOptions options;
    options.zero_copy_layout = zero_copy;
    ASSERT_TRUE(WriteColumnar(d, path_, options).ok());
    const std::vector<char> bytes = Slurp(path_);
    for (const size_t keep :
         {size_t{0}, size_t{10}, size_t{55}, bytes.size() / 2,
          bytes.size() - 1}) {
      Dump(path_, std::vector<char>(bytes.begin(), bytes.begin() + keep));
      auto file = ColumnarFile::Open(path_);
      if (file.ok()) {
        // A prefix that still parses must at least fail to decode.
        EXPECT_FALSE(file->ToDataset().ok())
            << "accepted a " << keep << "-byte truncation";
      }
    }
  }
}

TEST_F(ColumnarTest, RefusesCorruptHeaderAndIndex) {
  const Dataset d = MakeDataset(300);
  ASSERT_TRUE(WriteColumnar(d, path_).ok());
  const std::vector<char> bytes = Slurp(path_);

  // Bad magic.
  std::vector<char> bad = bytes;
  bad[0] ^= 0x01;
  Dump(path_, bad);
  EXPECT_FALSE(ColumnarFile::Open(path_).ok());

  // Header CRC catches a flipped schema byte (attribute name region).
  bad = bytes;
  bad[60] ^= 0x10;
  Dump(path_, bad);
  EXPECT_FALSE(ColumnarFile::Open(path_).ok());

  // Index CRC catches a flipped trailing index byte.
  bad = bytes;
  bad[bad.size() - 1] ^= 0x04;
  Dump(path_, bad);
  EXPECT_FALSE(ColumnarFile::Open(path_).ok());
}

TEST_F(ColumnarTest, RefusesFlippedDataBytes) {
  const Dataset d = MakeDataset(300);
  for (const bool zero_copy : {false, true}) {
    ColumnarWriteOptions options;
    options.zero_copy_layout = zero_copy;
    ASSERT_TRUE(WriteColumnar(d, path_, options).ok());
    std::vector<char> bytes = Slurp(path_);
    bytes[bytes.size() / 2] ^= 0x20;  // middle of the chunk section
    Dump(path_, bytes);
    auto file = ColumnarFile::Open(path_);
    if (zero_copy) {
      // Zero-copy files verify every chunk CRC up front.
      EXPECT_FALSE(file.ok());
    } else {
      // Packed files verify chunk CRCs on decode.
      ASSERT_TRUE(file.ok()) << file.status();
      EXPECT_FALSE(file->ToDataset().ok());
    }
  }
}

TEST_F(ColumnarTest, RefusesMissingFile) {
  EXPECT_EQ(ColumnarFile::Open(path_ + ".nope").status().code(),
            StatusCode::kIoError);
}

}  // namespace
}  // namespace ireduct
