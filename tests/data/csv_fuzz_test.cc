// Randomized CSV round-trip coverage across schema shapes and dataset
// sizes, plus hostile-input rejection.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/random.h"
#include "data/csv.h"

namespace ireduct {
namespace {

class CsvFuzzTest : public testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    path_ = testing::TempDir() + "/ireduct_csv_fuzz_" +
            std::to_string(GetParam()) + ".csv";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
};

TEST_P(CsvFuzzTest, RandomDatasetRoundTrips) {
  BitGen gen(GetParam());
  const size_t attrs = 1 + gen.UniformInt(6);
  std::vector<Attribute> schema_attrs;
  for (size_t a = 0; a < attrs; ++a) {
    schema_attrs.push_back(
        {"col" + std::to_string(a),
         static_cast<uint32_t>(1 + gen.UniformInt(5000))});
  }
  auto schema = Schema::Create(schema_attrs);
  ASSERT_TRUE(schema.ok());
  Dataset original(*schema);
  const size_t rows = gen.UniformInt(400);
  std::vector<uint16_t> row(attrs);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t a = 0; a < attrs; ++a) {
      row[a] = static_cast<uint16_t>(
          gen.UniformInt(schema->attribute(a).domain_size));
    }
    ASSERT_TRUE(original.AppendRow(row).ok());
  }

  ASSERT_TRUE(WriteCsv(original, path_).ok());
  auto loaded = ReadCsv(*schema, path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->num_rows(), original.num_rows());
  for (size_t r = 0; r < rows; ++r) {
    for (size_t a = 0; a < attrs; ++a) {
      ASSERT_EQ(loaded->value(r, a), original.value(r, a))
          << "row " << r << " col " << a;
    }
  }
}

TEST_P(CsvFuzzTest, CorruptedFilesAreRejectedNotCrashed) {
  auto schema = Schema::Create({{"A", 10}, {"B", 10}});
  ASSERT_TRUE(schema.ok());
  BitGen gen(GetParam() + 77);
  // Assemble a hostile file: valid header then garbage lines.
  std::ofstream out(path_);
  out << "A,B\n";
  const char* garbage[] = {"1,2,3", "x,y", "-1,5", "99999,0", "5", ",,",
                           "3,abc"};
  out << garbage[gen.UniformInt(7)] << "\n";
  out.close();
  auto loaded = ReadCsv(*schema, path_);
  EXPECT_FALSE(loaded.ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsvFuzzTest,
                         testing::Values(3u, 17u, 2024u, 555u));

}  // namespace
}  // namespace ireduct
