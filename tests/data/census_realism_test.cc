// Statistical-realism checks of the synthetic census generators: the
// properties that make the paper's experiments meaningful (near-empty
// cells for δ to act on, retired occupation codes, attribute coupling,
// population differences between the two datasets).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "data/census_generator.h"
#include "marginals/marginal.h"

namespace ireduct {
namespace {

Dataset Generate(CensusKind kind, uint64_t rows = 60'000) {
  CensusConfig config;
  config.kind = kind;
  config.rows = rows;
  config.seed = 99;
  auto d = GenerateCensus(config);
  EXPECT_TRUE(d.ok());
  return std::move(d).value();
}

std::vector<double> Counts(const Dataset& d, CensusAttribute attr) {
  auto m = Marginal::Compute(
      d, MarginalSpec{{static_cast<uint32_t>(attr)}});
  EXPECT_TRUE(m.ok());
  return std::vector<double>(m->counts().begin(), m->counts().end());
}

TEST(CensusRealismTest, TopAgesAreNearEmpty) {
  // The sanity bound δ = 1e-4·|T| = 6 must actually bind somewhere:
  // centenarian cells hold a handful of rows at most.
  const Dataset d = Generate(CensusKind::kBrazil);
  const std::vector<double> ages = Counts(d, kAge);
  double top_five = 0;
  for (size_t a = ages.size() - 5; a < ages.size(); ++a) {
    top_five += ages[a];
  }
  EXPECT_LT(top_five, 20);
  // While prime ages are populous.
  EXPECT_GT(ages[20], 500);
}

TEST(CensusRealismTest, RetiredOccupationCodesAreExactlyEmpty) {
  const Dataset d = Generate(CensusKind::kBrazil);
  const std::vector<double> occupations = Counts(d, kOccupation);
  size_t empty = 0;
  for (double c : occupations) empty += (c == 0);
  // ~25% of codes are retired by the deterministic hash classes.
  EXPECT_GT(empty, occupations.size() / 6);
  EXPECT_LT(empty, occupations.size() / 2);
}

TEST(CensusRealismTest, OccupationMarginalIsHeavyTailed) {
  const Dataset d = Generate(CensusKind::kUs);
  std::vector<double> occupations = Counts(d, kOccupation);
  std::sort(occupations.rbegin(), occupations.rend());
  // Top decile carries the majority of the mass.
  double top = 0, total = 0;
  for (size_t i = 0; i < occupations.size(); ++i) {
    total += occupations[i];
    if (i < occupations.size() / 10) top += occupations[i];
  }
  EXPECT_GT(top / total, 0.5);
}

TEST(CensusRealismTest, EducationCouplesWithAge) {
  // Children overwhelmingly sit in the lowest education level.
  const Dataset d = Generate(CensusKind::kBrazil);
  size_t children = 0, low_edu_children = 0;
  for (size_t r = 0; r < d.num_rows(); ++r) {
    if (d.value(r, kAge) < 15) {
      ++children;
      low_edu_children += d.value(r, kEducation) == 0;
    }
  }
  ASSERT_GT(children, 1000u);
  EXPECT_GT(static_cast<double>(low_edu_children) / children, 0.7);
}

TEST(CensusRealismTest, PopulationsDifferInAgeStructure) {
  // Brazil-like is younger than US-like (the slope knob).
  auto mean_age = [](const Dataset& d) {
    double sum = 0;
    for (size_t r = 0; r < d.num_rows(); ++r) sum += d.value(r, kAge);
    return sum / d.num_rows();
  };
  const double brazil = mean_age(Generate(CensusKind::kBrazil));
  const double us = mean_age(Generate(CensusKind::kUs));
  EXPECT_LT(brazil + 2, us);
}

TEST(CensusRealismTest, ClassOfWorkerDependsOnEducation) {
  // Unpaid/family work concentrates at the lowest education level.
  const Dataset d = Generate(CensusKind::kBrazil);
  auto joint = Marginal::Compute(
      d, MarginalSpec{{kEducation, kClassOfWorker}});
  ASSERT_TRUE(joint.ok());
  auto rate = [&](uint16_t edu) {
    double unpaid = joint->count(
        joint->CellIndex(std::vector<uint16_t>{edu, 3}));
    double total = 0;
    for (uint16_t w = 0; w < 4; ++w) {
      total += joint->count(
          joint->CellIndex(std::vector<uint16_t>{edu, w}));
    }
    return unpaid / total;
  };
  EXPECT_GT(rate(0), 3 * rate(4));
}

}  // namespace
}  // namespace ireduct
