#include "data/csv.h"

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <string>

namespace ireduct {
namespace {

class CsvTest : public testing::Test {
 protected:
  void SetUp() override {
    path_ = testing::TempDir() + "/ireduct_csv_test.csv";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
};

Schema MakeSchema() {
  auto s = Schema::Create({{"A", 3}, {"B", 5}});
  EXPECT_TRUE(s.ok());
  return std::move(s).value();
}

TEST_F(CsvTest, RoundTrip) {
  Dataset d(MakeSchema());
  ASSERT_TRUE(d.AppendRow(std::array<uint16_t, 2>{0, 4}).ok());
  ASSERT_TRUE(d.AppendRow(std::array<uint16_t, 2>{2, 1}).ok());
  ASSERT_TRUE(WriteCsv(d, path_).ok());

  auto back = ReadCsv(MakeSchema(), path_);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->num_rows(), 2u);
  EXPECT_EQ(back->value(0, 1), 4);
  EXPECT_EQ(back->value(1, 0), 2);
}

TEST_F(CsvTest, ReadRejectsMissingFile) {
  EXPECT_EQ(ReadCsv(MakeSchema(), path_ + ".nope").status().code(),
            StatusCode::kIoError);
}

TEST_F(CsvTest, ReadRejectsWrongHeader) {
  std::ofstream(path_) << "A,X\n0,0\n";
  EXPECT_FALSE(ReadCsv(MakeSchema(), path_).ok());
}

TEST_F(CsvTest, ReadRejectsOutOfDomainValue) {
  std::ofstream(path_) << "A,B\n0,9\n";
  EXPECT_FALSE(ReadCsv(MakeSchema(), path_).ok());
}

TEST_F(CsvTest, ReadRejectsMalformedCells) {
  std::ofstream(path_) << "A,B\n0\n";
  EXPECT_FALSE(ReadCsv(MakeSchema(), path_).ok());
  std::ofstream(path_) << "A,B\nx,1\n";
  EXPECT_FALSE(ReadCsv(MakeSchema(), path_).ok());
}

TEST_F(CsvTest, EmptyDatasetRoundTrips) {
  Dataset d(MakeSchema());
  ASSERT_TRUE(WriteCsv(d, path_).ok());
  auto back = ReadCsv(MakeSchema(), path_);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_rows(), 0u);
}

}  // namespace
}  // namespace ireduct
