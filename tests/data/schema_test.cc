#include "data/schema.h"

#include <gtest/gtest.h>

namespace ireduct {
namespace {

TEST(SchemaTest, CreateValidates) {
  EXPECT_FALSE(Schema::Create({}).ok());
  EXPECT_FALSE(Schema::Create({{"", 2}}).ok());
  EXPECT_FALSE(Schema::Create({{"A", 0}}).ok());
  EXPECT_FALSE(Schema::Create({{"A", 70000}}).ok());
  EXPECT_FALSE(Schema::Create({{"A", 2}, {"A", 3}}).ok());
  EXPECT_TRUE(Schema::Create({{"A", 2}, {"B", 65535}}).ok());
}

TEST(SchemaTest, AccessorsAndLookup) {
  auto s = Schema::Create({{"Age", 101}, {"Gender", 2}});
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->num_attributes(), 2u);
  EXPECT_EQ(s->attribute(0).name, "Age");
  EXPECT_EQ(s->attribute(1).domain_size, 2u);
  auto idx = s->IndexOf("Gender");
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(*idx, 1u);
  EXPECT_EQ(s->IndexOf("Missing").status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace ireduct
