#include "data/census_generator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <vector>

#include "marginals/marginal.h"

namespace ireduct {
namespace {

CensusConfig SmallConfig(CensusKind kind) {
  CensusConfig c;
  c.kind = kind;
  c.rows = 30'000;
  c.seed = 7;
  return c;
}

TEST(CensusGeneratorTest, SchemaMatchesTableFour) {
  auto brazil = CensusSchema(CensusKind::kBrazil);
  ASSERT_TRUE(brazil.ok());
  ASSERT_EQ(brazil->num_attributes(), 9u);
  EXPECT_EQ(brazil->attribute(kAge).domain_size, 101u);
  EXPECT_EQ(brazil->attribute(kGender).domain_size, 2u);
  EXPECT_EQ(brazil->attribute(kMaritalStatus).domain_size, 4u);
  EXPECT_EQ(brazil->attribute(kState).domain_size, 26u);
  EXPECT_EQ(brazil->attribute(kBirthPlace).domain_size, 29u);
  EXPECT_EQ(brazil->attribute(kRace).domain_size, 5u);
  EXPECT_EQ(brazil->attribute(kEducation).domain_size, 5u);
  EXPECT_EQ(brazil->attribute(kOccupation).domain_size, 512u);
  EXPECT_EQ(brazil->attribute(kClassOfWorker).domain_size, 4u);

  auto us = CensusSchema(CensusKind::kUs);
  ASSERT_TRUE(us.ok());
  EXPECT_EQ(us->attribute(kAge).domain_size, 92u);
  EXPECT_EQ(us->attribute(kState).domain_size, 51u);
  EXPECT_EQ(us->attribute(kBirthPlace).domain_size, 52u);
  EXPECT_EQ(us->attribute(kRace).domain_size, 14u);
  EXPECT_EQ(us->attribute(kOccupation).domain_size, 477u);
}

TEST(CensusGeneratorTest, GeneratesRequestedRows) {
  auto d = GenerateCensus(SmallConfig(CensusKind::kBrazil));
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->num_rows(), 30'000u);
  EXPECT_EQ(d->num_columns(), 9u);
}

TEST(CensusGeneratorTest, RejectsZeroRows) {
  CensusConfig c;
  c.rows = 0;
  EXPECT_FALSE(GenerateCensus(c).ok());
}

TEST(CensusGeneratorTest, DeterministicForSeed) {
  auto a = GenerateCensus(SmallConfig(CensusKind::kUs));
  auto b = GenerateCensus(SmallConfig(CensusKind::kUs));
  ASSERT_TRUE(a.ok() && b.ok());
  for (size_t r = 0; r < 100; ++r) {
    for (size_t c = 0; c < 9; ++c) {
      ASSERT_EQ(a->value(r, c), b->value(r, c));
    }
  }
}

TEST(CensusGeneratorTest, DifferentSeedsProduceDifferentData) {
  CensusConfig c1 = SmallConfig(CensusKind::kBrazil);
  CensusConfig c2 = c1;
  c2.seed = 8;
  auto a = GenerateCensus(c1);
  auto b = GenerateCensus(c2);
  ASSERT_TRUE(a.ok() && b.ok());
  int diffs = 0;
  for (size_t r = 0; r < 200; ++r) diffs += a->value(r, kAge) != b->value(r, kAge);
  EXPECT_GT(diffs, 50);
}

TEST(CensusGeneratorTest, ChildrenAreOverwhelminglySingle) {
  auto d = GenerateCensus(SmallConfig(CensusKind::kBrazil));
  ASSERT_TRUE(d.ok());
  int children = 0, single_children = 0;
  for (size_t r = 0; r < d->num_rows(); ++r) {
    if (d->value(r, kAge) < 15) {
      ++children;
      single_children += d->value(r, kMaritalStatus) == 0;
    }
  }
  ASSERT_GT(children, 1000);
  EXPECT_GT(single_children / static_cast<double>(children), 0.95);
}

TEST(CensusGeneratorTest, OccupationCorrelatesWithEducation) {
  // The generator concentrates each education level's occupations around
  // its own head; mutual information must be visible as a shifted modal
  // occupation across education levels.
  auto d = GenerateCensus(SmallConfig(CensusKind::kBrazil));
  ASSERT_TRUE(d.ok());
  auto marginal = Marginal::Compute(
      *d, MarginalSpec{{kEducation, kOccupation}});
  ASSERT_TRUE(marginal.ok());
  // Modal occupation per education level.
  std::vector<size_t> mode(5, 0);
  for (uint16_t e = 0; e < 5; ++e) {
    double best = -1;
    for (uint16_t o = 0; o < 512; ++o) {
      const double c = marginal->count(static_cast<size_t>(e) * 512 + o);
      if (c > best) {
        best = c;
        mode[e] = o;
      }
    }
  }
  // Heads are spread across the domain (centers at e*512/5); distance is
  // circular and the exact center code may be a retired (zero-weight) one.
  for (int e = 0; e < 5; ++e) {
    const int center = e * 512 / 5;
    const int diff = std::abs(static_cast<int>(mode[e]) - center);
    EXPECT_LE(std::min(diff, 512 - diff), 16) << "education " << e;
  }
}

TEST(CensusGeneratorTest, MarginalsAreHeavyTailed) {
  // Zipf-style states: the top state should dwarf the median one.
  auto d = GenerateCensus(SmallConfig(CensusKind::kUs));
  ASSERT_TRUE(d.ok());
  auto states = Marginal::Compute(*d, MarginalSpec{{kState}});
  ASSERT_TRUE(states.ok());
  std::vector<double> counts(states->counts().begin(),
                             states->counts().end());
  std::sort(counts.rbegin(), counts.rend());
  EXPECT_GT(counts[0], 5 * counts[25]);
}

// ---------------------------------------------------------------------------
// Generation profiles.

TEST(DataProfileTest, ParseAndNameRoundTrip) {
  for (const DataProfile p :
       {DataProfile::kCensus, DataProfile::kZipfHeavy,
        DataProfile::kSparseEvents, DataProfile::kWideSchema}) {
    auto parsed = ParseDataProfile(DataProfileName(p));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, p);
  }
  EXPECT_FALSE(ParseDataProfile("zipf").ok());
  EXPECT_FALSE(ParseDataProfile("").ok());
}

TEST(DataProfileTest, GeneratedDataMatchesProfileSchema) {
  for (const DataProfile p :
       {DataProfile::kZipfHeavy, DataProfile::kSparseEvents,
        DataProfile::kWideSchema}) {
    ProfileConfig config;
    config.profile = p;
    config.rows = 5'000;
    auto schema = ProfileSchema(p, CensusKind::kBrazil);
    ASSERT_TRUE(schema.ok());
    auto d = GenerateProfile(config);
    ASSERT_TRUE(d.ok()) << DataProfileName(p);
    EXPECT_EQ(d->num_rows(), 5'000u);
    ASSERT_EQ(d->num_columns(), schema->num_attributes());
    for (size_t c = 0; c < schema->num_attributes(); ++c) {
      EXPECT_EQ(d->schema().attribute(c).domain_size,
                schema->attribute(c).domain_size);
    }
  }
}

TEST(DataProfileTest, CensusProfileDelegatesToGenerateCensus) {
  ProfileConfig config;
  config.profile = DataProfile::kCensus;
  config.kind = CensusKind::kUs;
  config.rows = 3'000;
  config.seed = 7;
  auto via_profile = GenerateProfile(config);
  auto direct = GenerateCensus({CensusKind::kUs, 3'000, 7});
  ASSERT_TRUE(via_profile.ok() && direct.ok());
  EXPECT_EQ(via_profile->Fingerprint(), direct->Fingerprint());
}

TEST(DataProfileTest, ProfilesAreSeedDeterministic) {
  for (const DataProfile p :
       {DataProfile::kZipfHeavy, DataProfile::kSparseEvents,
        DataProfile::kWideSchema}) {
    ProfileConfig config;
    config.profile = p;
    config.rows = 4'000;
    config.seed = 9;
    auto a = GenerateProfile(config);
    auto b = GenerateProfile(config);
    config.seed = 10;
    auto c = GenerateProfile(config);
    ASSERT_TRUE(a.ok() && b.ok() && c.ok());
    EXPECT_EQ(a->Fingerprint(), b->Fingerprint()) << DataProfileName(p);
    EXPECT_NE(a->Fingerprint(), c->Fingerprint()) << DataProfileName(p);
  }
}

TEST(DataProfileTest, ZipfHeavyIsHeadHeavy) {
  ProfileConfig config;
  config.profile = DataProfile::kZipfHeavy;
  config.rows = 20'000;
  auto d = GenerateProfile(config);
  ASSERT_TRUE(d.ok());
  // Item is the large Zipf domain: the hottest code must dwarf the mean.
  std::vector<uint32_t> counts(d->schema().attribute(1).domain_size, 0);
  for (size_t r = 0; r < d->num_rows(); ++r) ++counts[d->value(r, 1)];
  const uint32_t hottest = *std::max_element(counts.begin(), counts.end());
  EXPECT_GT(hottest, 20'000u / counts.size() * 50);
}

TEST(DataProfileTest, SparseEventsLeaveMostCodesCold) {
  ProfileConfig config;
  config.profile = DataProfile::kSparseEvents;
  config.rows = 20'000;
  auto d = GenerateProfile(config);
  ASSERT_TRUE(d.ok());
  const size_t code_col = d->num_columns() - 1;
  std::vector<uint32_t> counts(
      d->schema().attribute(code_col).domain_size, 0);
  for (size_t r = 0; r < d->num_rows(); ++r) ++counts[d->value(r, code_col)];
  size_t cold = 0;
  for (uint32_t c : counts) cold += c == 0;
  // The profile's point: most of the code domain never appears.
  EXPECT_GT(cold, counts.size() / 4);
}

TEST(CensusGeneratorTest, BirthPlaceMostlyMatchesState) {
  auto d = GenerateCensus(SmallConfig(CensusKind::kBrazil));
  ASSERT_TRUE(d.ok());
  size_t match = 0;
  for (size_t r = 0; r < d->num_rows(); ++r) {
    match += d->value(r, kState) == d->value(r, kBirthPlace);
  }
  const double frac = match / static_cast<double>(d->num_rows());
  EXPECT_GT(frac, 0.6);
  EXPECT_LT(frac, 0.95);
}

}  // namespace
}  // namespace ireduct
