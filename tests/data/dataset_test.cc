#include "data/dataset.h"

#include <gtest/gtest.h>

#include <array>
#include <vector>

namespace ireduct {
namespace {

Dataset MakeDataset() {
  auto schema = Schema::Create({{"A", 3}, {"B", 2}});
  EXPECT_TRUE(schema.ok());
  Dataset d(std::move(schema).value());
  for (uint16_t a = 0; a < 3; ++a) {
    for (uint16_t b = 0; b < 2; ++b) {
      const std::array<uint16_t, 2> row{a, b};
      EXPECT_TRUE(d.AppendRow(row).ok());
    }
  }
  return d;
}

TEST(DatasetTest, AppendAndRead) {
  const Dataset d = MakeDataset();
  EXPECT_EQ(d.num_rows(), 6u);
  EXPECT_EQ(d.num_columns(), 2u);
  EXPECT_EQ(d.value(0, 0), 0);
  EXPECT_EQ(d.value(5, 0), 2);
  EXPECT_EQ(d.value(5, 1), 1);
  EXPECT_EQ(d.column(1).size(), 6u);
}

TEST(DatasetTest, AppendValidatesArityAndDomain) {
  auto schema = Schema::Create({{"A", 3}});
  ASSERT_TRUE(schema.ok());
  Dataset d(std::move(schema).value());
  const std::array<uint16_t, 2> too_wide{0, 0};
  EXPECT_FALSE(d.AppendRow(too_wide).ok());
  const std::array<uint16_t, 1> out_of_domain{3};
  EXPECT_EQ(d.AppendRow(out_of_domain).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(d.num_rows(), 0u);
}

TEST(DatasetTest, AppendRowsBulkMatchesRowByRow) {
  auto schema = Schema::Create({{"A", 3}, {"B", 2}});
  ASSERT_TRUE(schema.ok());
  Dataset bulk(schema.value());
  const std::vector<uint16_t> rows{0, 1, 2, 0, 1, 1};  // three rows
  ASSERT_TRUE(bulk.AppendRows(rows).ok());
  EXPECT_EQ(bulk.num_rows(), 3u);

  Dataset single(std::move(schema).value());
  for (size_t r = 0; r < 3; ++r) {
    ASSERT_TRUE(
        single.AppendRow(std::span(rows).subspan(r * 2, 2)).ok());
  }
  EXPECT_EQ(bulk.Fingerprint(), single.Fingerprint());

  // Appending nothing is a no-op, not an error.
  ASSERT_TRUE(bulk.AppendRows({}).ok());
  EXPECT_EQ(bulk.num_rows(), 3u);
}

TEST(DatasetTest, AppendRowsValidatesBeforeMutating) {
  auto schema = Schema::Create({{"A", 3}, {"B", 2}});
  ASSERT_TRUE(schema.ok());
  Dataset d(std::move(schema).value());
  // Not a multiple of the arity.
  EXPECT_FALSE(d.AppendRows(std::vector<uint16_t>{0, 1, 2}).ok());
  // Out-of-domain value in the *second* row: the first row must not land.
  const std::vector<uint16_t> bad{0, 1, 9, 0};
  EXPECT_EQ(d.AppendRows(bad).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(d.num_rows(), 0u);
}

TEST(DatasetTest, FromColumnsBuildsOwnedDataset) {
  auto schema = Schema::Create({{"A", 3}, {"B", 2}});
  ASSERT_TRUE(schema.ok());
  auto d = Dataset::FromColumns(schema.value(), {{0, 1, 2}, {1, 0, 1}});
  ASSERT_TRUE(d.ok());
  EXPECT_TRUE(d->owns_storage());
  EXPECT_EQ(d->num_rows(), 3u);
  EXPECT_EQ(d->value(2, 0), 2);
  EXPECT_EQ(d->value(1, 1), 0);

  // Ragged columns and out-of-domain values are refused.
  EXPECT_FALSE(
      Dataset::FromColumns(schema.value(), {{0, 1}, {1}}).ok());
  EXPECT_FALSE(
      Dataset::FromColumns(std::move(schema).value(), {{0, 3}, {1, 1}}).ok());
}

// Minimal backing: owned vectors served through the DatasetBacking
// interface — the in-memory stand-in for an mmap'd columnar file.
class VectorBacking : public DatasetBacking {
 public:
  explicit VectorBacking(std::vector<std::vector<uint16_t>> cols)
      : cols_(std::move(cols)) {}
  size_t num_rows() const override {
    return cols_.empty() ? 0 : cols_[0].size();
  }
  std::span<const uint16_t> column(size_t c) const override {
    return cols_[c];
  }

 private:
  std::vector<std::vector<uint16_t>> cols_;
};

TEST(DatasetTest, FromBackingServesReadOnlyViews) {
  auto schema = Schema::Create({{"A", 3}, {"B", 2}});
  ASSERT_TRUE(schema.ok());
  auto backing = std::make_shared<VectorBacking>(
      std::vector<std::vector<uint16_t>>{{0, 1, 2}, {1, 0, 1}});
  auto d = Dataset::FromBacking(schema.value(), backing);
  ASSERT_TRUE(d.ok());
  EXPECT_FALSE(d->owns_storage());
  EXPECT_EQ(d->num_rows(), 3u);
  EXPECT_EQ(d->value(2, 0), 2);
  EXPECT_EQ(d->column(1).size(), 3u);

  // Backed datasets are immutable.
  const std::array<uint16_t, 2> row{0, 0};
  EXPECT_FALSE(d->AppendRow(row).ok());
  EXPECT_FALSE(d->AppendRows(row).ok());

  // Same content, same fingerprint as an owned build; Select always
  // materializes into owned storage.
  auto owned =
      Dataset::FromColumns(schema.value(), {{0, 1, 2}, {1, 0, 1}});
  ASSERT_TRUE(owned.ok());
  EXPECT_EQ(d->Fingerprint(), owned->Fingerprint());
  const Dataset sub = d->Select(std::vector<uint32_t>{2, 0});
  EXPECT_TRUE(sub.owns_storage());
  EXPECT_EQ(sub.value(0, 0), 2);

  // Copies of a backed dataset share the backing and keep it alive.
  const Dataset copy = *d;
  EXPECT_FALSE(copy.owns_storage());
  EXPECT_EQ(copy.value(1, 1), 0);

  // A backing that disagrees with the schema is refused.
  EXPECT_FALSE(Dataset::FromBacking(
                   std::move(schema).value(),
                   std::make_shared<VectorBacking>(
                       std::vector<std::vector<uint16_t>>{{0, 3}, {1, 1}}))
                   .ok());
}

TEST(DatasetTest, FoldAssignmentPartitionsEvenly) {
  const Dataset d = MakeDataset();
  BitGen gen(1);
  auto folds = d.FoldAssignment(3, gen);
  ASSERT_TRUE(folds.ok());
  std::vector<int> counts(3, 0);
  for (uint8_t f : *folds) {
    ASSERT_LT(f, 3);
    ++counts[f];
  }
  EXPECT_EQ(counts[0], 2);
  EXPECT_EQ(counts[1], 2);
  EXPECT_EQ(counts[2], 2);
}

TEST(DatasetTest, FoldAssignmentValidatesK) {
  const Dataset d = MakeDataset();
  BitGen gen(1);
  EXPECT_FALSE(d.FoldAssignment(1, gen).ok());
  EXPECT_FALSE(d.FoldAssignment(7, gen).ok());
}

TEST(DatasetTest, FoldAssignmentIsSeedDeterministicAndShuffled) {
  const Dataset d = MakeDataset();
  BitGen g1(5), g2(5), g3(6);
  auto a = d.FoldAssignment(2, g1);
  auto b = d.FoldAssignment(2, g2);
  auto c = d.FoldAssignment(2, g3);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_EQ(*a, *b);
  // Different seeds usually differ (6 rows, 20 balanced splits).
  EXPECT_TRUE(*a != *c || true);  // at minimum it must not crash
}

TEST(DatasetTest, SelectMaterializesSubset) {
  const Dataset d = MakeDataset();
  const std::vector<uint32_t> rows{5, 0, 3};
  const Dataset sub = d.Select(rows);
  EXPECT_EQ(sub.num_rows(), 3u);
  EXPECT_EQ(sub.value(0, 0), 2);  // original row 5
  EXPECT_EQ(sub.value(1, 0), 0);  // original row 0
  EXPECT_EQ(sub.value(2, 0), 1);  // original row 3
}

// The column-wise gather fast path must match a row-by-row AppendRow
// rebuild exactly (duplicates and arbitrary order included).
TEST(DatasetTest, SelectMatchesAppendRowReference) {
  const Dataset d = MakeDataset();
  const std::vector<uint32_t> rows{3, 3, 0, 5, 1, 0};
  const Dataset sub = d.Select(rows);

  Dataset reference(d.schema());
  for (uint32_t r : rows) {
    std::vector<uint16_t> row(d.num_columns());
    for (size_t c = 0; c < d.num_columns(); ++c) row[c] = d.value(r, c);
    ASSERT_TRUE(reference.AppendRow(row).ok());
  }
  ASSERT_EQ(sub.num_rows(), reference.num_rows());
  for (size_t c = 0; c < d.num_columns(); ++c) {
    for (size_t r = 0; r < sub.num_rows(); ++r) {
      EXPECT_EQ(sub.value(r, c), reference.value(r, c))
          << "row " << r << " col " << c;
    }
  }
  EXPECT_EQ(sub.Fingerprint(), reference.Fingerprint());
}

TEST(DatasetTest, SelectOfNothingIsEmpty) {
  const Dataset d = MakeDataset();
  const Dataset sub = d.Select({});
  EXPECT_EQ(sub.num_rows(), 0u);
  EXPECT_EQ(sub.num_columns(), d.num_columns());
}

TEST(DatasetTest, FingerprintIsStableAndContentSensitive) {
  const Dataset a = MakeDataset();
  const Dataset b = MakeDataset();
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());

  Dataset c = MakeDataset();
  const std::array<uint16_t, 2> row{1, 1};
  ASSERT_TRUE(c.AppendRow(row).ok());
  EXPECT_NE(c.Fingerprint(), a.Fingerprint());

  // Same multiset of rows in a different order is different content.
  const std::vector<uint32_t> reversed{5, 4, 3, 2, 1, 0};
  EXPECT_NE(a.Select(reversed).Fingerprint(), a.Fingerprint());

  // Empty datasets over different schemas differ too.
  auto s1 = Schema::Create({{"A", 3}});
  auto s2 = Schema::Create({{"A", 4}});
  ASSERT_TRUE(s1.ok() && s2.ok());
  EXPECT_NE(Dataset(std::move(s1).value()).Fingerprint(),
            Dataset(std::move(s2).value()).Fingerprint());
}

}  // namespace
}  // namespace ireduct
