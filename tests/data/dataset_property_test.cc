// Randomized invariants for dataset fold assignment and row selection.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "common/random.h"
#include "data/dataset.h"

namespace ireduct {
namespace {

class DatasetPropertyTest : public testing::TestWithParam<uint64_t> {
 protected:
  Dataset RandomDataset(BitGen& gen, size_t rows) {
    auto schema = Schema::Create({{"A", 7}, {"B", 3}});
    EXPECT_TRUE(schema.ok());
    Dataset d(std::move(schema).value());
    for (size_t r = 0; r < rows; ++r) {
      EXPECT_TRUE(d.AppendRow(std::vector<uint16_t>{
                       static_cast<uint16_t>(gen.UniformInt(7)),
                       static_cast<uint16_t>(gen.UniformInt(3))})
                      .ok());
    }
    return d;
  }
};

TEST_P(DatasetPropertyTest, FoldsAreBalancedForAnyK) {
  BitGen gen(GetParam());
  const size_t rows = 50 + gen.UniformInt(500);
  const Dataset d = RandomDataset(gen, rows);
  for (int k : {2, 3, 5, 10}) {
    auto folds = d.FoldAssignment(k, gen);
    ASSERT_TRUE(folds.ok());
    std::vector<size_t> counts(k, 0);
    for (uint8_t f : *folds) {
      ASSERT_LT(f, k);
      ++counts[f];
    }
    size_t lo = rows, hi = 0;
    for (size_t c : counts) {
      lo = std::min(lo, c);
      hi = std::max(hi, c);
    }
    EXPECT_LE(hi - lo, 1u) << "k=" << k << " rows=" << rows;
  }
}

TEST_P(DatasetPropertyTest, FoldsShuffle) {
  // Rows assigned to fold 0 should not simply be the first block: with a
  // few hundred rows, the probability of that under a real shuffle is
  // astronomically small.
  BitGen gen(GetParam() + 1);
  const Dataset d = RandomDataset(gen, 300);
  auto folds = d.FoldAssignment(3, gen);
  ASSERT_TRUE(folds.ok());
  bool prefix_only = true;
  for (size_t r = 0; r < 100; ++r) prefix_only &= ((*folds)[r] == 0);
  EXPECT_FALSE(prefix_only);
}

TEST_P(DatasetPropertyTest, SelectPreservesRowContentAndOrder) {
  BitGen gen(GetParam() + 2);
  const Dataset d = RandomDataset(gen, 200);
  // A random subset of indices.
  std::vector<uint32_t> rows;
  for (uint32_t r = 0; r < 200; ++r) {
    if (gen.Bernoulli(0.3)) rows.push_back(r);
  }
  if (rows.empty()) rows.push_back(0);
  const Dataset subset = d.Select(rows);
  ASSERT_EQ(subset.num_rows(), rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    for (size_t c = 0; c < d.num_columns(); ++c) {
      ASSERT_EQ(subset.value(i, c), d.value(rows[i], c));
    }
  }
}

TEST_P(DatasetPropertyTest, SelectOfAllRowsIsIdentity) {
  BitGen gen(GetParam() + 3);
  const Dataset d = RandomDataset(gen, 120);
  std::vector<uint32_t> all(d.num_rows());
  std::iota(all.begin(), all.end(), 0);
  const Dataset copy = d.Select(all);
  for (size_t r = 0; r < d.num_rows(); ++r) {
    for (size_t c = 0; c < d.num_columns(); ++c) {
      ASSERT_EQ(copy.value(r, c), d.value(r, c));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DatasetPropertyTest,
                         testing::Values(2u, 13u, 77u, 4096u));

}  // namespace
}  // namespace ireduct
