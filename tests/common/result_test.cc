#include "common/result.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace ireduct {
namespace {

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("x");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, ValueOrFallsBack) {
  EXPECT_EQ(ParsePositive(7).value_or(-1), 7);
  EXPECT_EQ(ParsePositive(-7).value_or(-1), -1);
}

TEST(ResultTest, ArrowOperatorReachesMembers) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(r->size(), 5u);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> r = std::vector<int>{1, 2, 3};
  std::vector<int> v = std::move(r).value();
  EXPECT_EQ(v.size(), 3u);
}

TEST(ResultTest, AssignOrReturnPropagatesError) {
  auto chain = [](int x) -> Result<int> {
    IREDUCT_ASSIGN_OR_RETURN(int v, ParsePositive(x));
    return v * 2;
  };
  ASSERT_TRUE(chain(5).ok());
  EXPECT_EQ(chain(5).value(), 10);
  EXPECT_EQ(chain(-5).status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, CopyableWhenValueIsCopyable) {
  Result<int> a = 9;
  Result<int> b = a;
  EXPECT_EQ(b.value(), 9);
}

}  // namespace
}  // namespace ireduct
