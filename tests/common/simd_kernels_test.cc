#include "common/simd_kernels.h"

#include <gtest/gtest.h>

#include <bit>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/simd.h"
#include "eval/stats.h"

namespace ireduct {
namespace simd {
namespace {

// Lane states exactly as BitGen::LaplaceBatch builds them: four Fork
// substreams in lane order.
LaneStates StatesFromSeed(uint64_t seed) {
  BitGen gen(seed);
  LaneStates states;
  for (auto& lane : states) lane = gen.Fork().SaveState();
  return states;
}

std::vector<double> VariedScales(size_t n) {
  std::vector<double> scales(n);
  for (size_t i = 0; i < n; ++i) {
    scales[i] = 0.25 + static_cast<double>(i % 7);
  }
  return scales;
}

// Bitwise comparison: double equality would let a +0.0 / -0.0 divergence
// (or a NaN) slip through the parity bar.
void ExpectBitEqual(const std::vector<double>& got,
                    const std::vector<double>& want, const char* what) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(std::bit_cast<uint64_t>(got[i]),
              std::bit_cast<uint64_t>(want[i]))
        << what << " diverges from the scalar reference at element " << i
        << " (got " << got[i] << ", want " << want[i] << ")";
  }
}

// Sets IREDUCT_SIMD for the enclosing scope and re-resolves dispatch;
// restores the previous environment (and dispatch) on destruction.
class ScopedSimdOverride {
 public:
  explicit ScopedSimdOverride(const char* value) {
    const char* prev = std::getenv("IREDUCT_SIMD");
    had_prev_ = prev != nullptr;
    if (had_prev_) prev_ = prev;
    ::setenv("IREDUCT_SIMD", value, 1);
    ResetDispatchForTesting();
  }
  ~ScopedSimdOverride() {
    if (had_prev_) {
      ::setenv("IREDUCT_SIMD", prev_.c_str(), 1);
    } else {
      ::unsetenv("IREDUCT_SIMD");
    }
    ResetDispatchForTesting();
  }

 private:
  bool had_prev_ = false;
  std::string prev_;
};

// Batch sizes chosen to hit the empty batch, sub-lane-count batches, exact
// multiples of the 4-lane block, and large odd tails.
const size_t kSizes[] = {0, 1, 2, 3, 4, 5, 7, 8, 16, 63, 1000, 1001};

TEST(SimdKernelsTest, BatchLaplaceMatchesScalarRefBitForBit) {
  for (const uint64_t seed : {1ull, 42ull, 9001ull}) {
    for (const size_t n : kSizes) {
      const LaneStates states = StatesFromSeed(seed);
      const std::vector<double> scales = VariedScales(n);
      std::vector<double> got(n), want(n);
      BatchLaplace(states, scales.data(), got.data(), n);
      BatchLaplaceScalarRef(states, scales.data(), want.data(), n);
      ExpectBitEqual(got, want, "BatchLaplace");
    }
  }
}

TEST(SimdKernelsTest, BatchExponentialMatchesScalarRefBitForBit) {
  for (const uint64_t seed : {1ull, 42ull, 9001ull}) {
    for (const size_t n : kSizes) {
      const LaneStates states = StatesFromSeed(seed);
      std::vector<double> got(n), want(n);
      BatchExponential(states, 2.5, got.data(), n);
      BatchExponentialScalarRef(states, 2.5, want.data(), n);
      ExpectBitEqual(got, want, "BatchExponential");
    }
  }
}

// Every lane advances once per 4-element block including the padded tail,
// so a batch's outputs are a prefix of any longer batch from the same
// states — the batch size never changes which variate lands at index i.
TEST(SimdKernelsTest, BatchOutputIsPrefixStableAcrossLengths) {
  const LaneStates states = StatesFromSeed(7);
  const std::vector<double> scales = VariedScales(1001);
  std::vector<double> full(1001);
  BatchLaplace(states, scales.data(), full.data(), full.size());
  for (const size_t n : {1ul, 5ul, 64ul, 999ul}) {
    std::vector<double> part(n);
    BatchLaplace(states, scales.data(), part.data(), n);
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(std::bit_cast<uint64_t>(part[i]),
                std::bit_cast<uint64_t>(full[i]))
          << "batch of " << n << " diverges at " << i;
    }
  }
}

TEST(SimdKernelsTest, ForcedScalarOverrideDispatchesScalarTier) {
  ScopedSimdOverride off("off");
  EXPECT_EQ(ActiveTier(), Tier::kScalar);

  const LaneStates states = StatesFromSeed(3);
  const std::vector<double> scales = VariedScales(257);
  std::vector<double> got(257), want(257);
  BatchLaplace(states, scales.data(), got.data(), got.size());
  BatchLaplaceScalarRef(states, scales.data(), want.data(), want.size());
  ExpectBitEqual(got, want, "forced-scalar BatchLaplace");
}

TEST(SimdKernelsTest, OverrideCapsButNeverExceedsDetection) {
  {
    ScopedSimdOverride cap("scalar");
    EXPECT_EQ(ActiveTier(), Tier::kScalar);
  }
  {
    ScopedSimdOverride cap("sse2");
    EXPECT_LE(static_cast<int>(ActiveTier()),
              static_cast<int>(Tier::kSse2));
  }
  {
    // avx2 is a cap, not a demand: detection still rules.
    ScopedSimdOverride cap("avx2");
    EXPECT_LE(static_cast<int>(ActiveTier()),
              static_cast<int>(DetectedTier()));
  }
  EXPECT_LE(static_cast<int>(ActiveTier()),
            static_cast<int>(DetectedTier()));
}

// The batch consumes exactly kBatchLanes Fork draws from the parent
// regardless of the batch size — the resume/checkpoint contract.
TEST(SimdKernelsTest, LaplaceBatchAdvancesParentByExactlyFourDraws) {
  for (const size_t n : {1ul, 5ul, 1000ul}) {
    BitGen batched(123), manual(123);
    std::vector<double> scales(n, 2.0), out(n);
    batched.LaplaceBatch(scales, out);
    for (size_t i = 0; i < kBatchLanes; ++i) manual.Fork();
    for (int i = 0; i < 16; ++i) {
      ASSERT_EQ(batched(), manual()) << "after batch of " << n;
    }
  }
}

// The batch stream is distinct from the per-element Laplace stream, but it
// must still be a Laplace(scale) sample: check the first two moments.
TEST(SimdKernelsTest, BatchLaplaceMatchesDistributionMoments) {
  constexpr size_t kSamples = 200'000;
  const double scale = 3.0;
  BitGen gen(2011);
  std::vector<double> scales(kSamples, scale), sample(kSamples);
  gen.LaplaceBatch(scales, sample);
  const SampleSummary s = Summarize(sample);
  EXPECT_NEAR(s.mean, 0.0, 0.05);
  EXPECT_NEAR(s.variance, 2 * scale * scale, 0.5);
}

TEST(SimdKernelsTest, BatchExponentialMatchesDistributionMoments) {
  constexpr size_t kSamples = 200'000;
  const double mean = 2.5;
  BitGen gen(2012);
  std::vector<double> sample(kSamples);
  gen.ExponentialBatch(mean, sample);
  const SampleSummary s = Summarize(sample);
  EXPECT_NEAR(s.mean, mean, 0.05);
  EXPECT_NEAR(s.variance, mean * mean, 0.25);
  EXPECT_GE(s.min, 0.0);
}

// ---------------------------------------------------------------------------
// Counting kernels.

struct CountFixture {
  std::vector<uint16_t> col0, col1;
  std::vector<uint32_t> odd_rows;
  size_t d0 = 13, d1 = 9;

  explicit CountFixture(size_t rows) {
    BitGen gen(99);
    col0.resize(rows);
    col1.resize(rows);
    for (size_t r = 0; r < rows; ++r) {
      col0[r] = static_cast<uint16_t>(gen.UniformInt(d0));
      col1[r] = static_cast<uint16_t>(gen.UniformInt(d1));
      if (r % 2 == 1) odd_rows.push_back(static_cast<uint32_t>(r));
    }
  }
};

CountPlanArgs Arity2Args(const CountFixture& f, std::vector<uint32_t>& counts,
                         std::vector<uint32_t>* scratch) {
  CountPlanArgs args;
  args.col0 = f.col0.data();
  args.col1 = f.col1.data();
  args.begin = 0;
  args.end = f.col0.size();
  args.stride0 = f.d1;
  args.cells = f.d0 * f.d1;
  counts.assign(args.cells, 0);
  args.counts = counts.data();
  if (scratch != nullptr) {
    scratch->resize(kBatchLanes * args.cells);
    args.lane_scratch = scratch->data();
  }
  return args;
}

TEST(SimdKernelsTest, CountPlanStripedMatchesDirectArity2) {
  const CountFixture f(10'000);
  std::vector<uint32_t> direct, striped, scratch;
  CountPlanScalarRef(Arity2Args(f, direct, nullptr));
  CountPlan(Arity2Args(f, striped, &scratch));
  EXPECT_EQ(striped, direct);
  uint64_t total = 0;
  for (uint32_t c : direct) total += c;
  EXPECT_EQ(total, f.col0.size());
}

TEST(SimdKernelsTest, CountPlanMatchesOnRowSubsets) {
  const CountFixture f(10'000);
  std::vector<uint32_t> direct, dispatched, scratch;
  CountPlanArgs ref = Arity2Args(f, direct, nullptr);
  ref.row_idx = f.odd_rows.data();
  ref.begin = 0;
  ref.end = f.odd_rows.size();
  CountPlanScalarRef(ref);
  CountPlanArgs got = Arity2Args(f, dispatched, &scratch);
  got.row_idx = f.odd_rows.data();
  got.begin = 0;
  got.end = f.odd_rows.size();
  CountPlan(got);
  EXPECT_EQ(dispatched, direct);
}

TEST(SimdKernelsTest, CountPlanArity1AndAccumulateSemantics) {
  const CountFixture f(4'096);
  std::vector<uint32_t> direct(f.d0, 7), dispatched(f.d0, 7), scratch;
  CountPlanArgs args;
  args.col0 = f.col0.data();
  args.begin = 17;  // non-zero offset exercises the range handling
  args.end = f.col0.size() - 5;
  args.stride0 = 1;
  args.cells = f.d0;

  args.counts = direct.data();
  CountPlanScalarRef(args);

  args.counts = dispatched.data();
  scratch.resize(kBatchLanes * args.cells);
  args.lane_scratch = scratch.data();
  CountPlan(args);

  // Both paths must have *added to* the pre-existing 7s, not overwritten.
  EXPECT_EQ(dispatched, direct);
  uint64_t total = 0;
  for (uint32_t c : direct) total += c;
  EXPECT_EQ(total, (args.end - args.begin) + 7 * f.d0);
}

TEST(SimdKernelsTest, CountPlanForcedScalarMatchesDispatch) {
  const CountFixture f(20'000);
  std::vector<uint32_t> fast, slow, scratch_a, scratch_b;
  CountPlan(Arity2Args(f, fast, &scratch_a));
  {
    ScopedSimdOverride off("off");
    CountPlan(Arity2Args(f, slow, &scratch_b));
  }
  EXPECT_EQ(fast, slow);
}

// ---------------------------------------------------------------------------
// General-arity counting kernel (CountPlanN).

struct CountNFixture {
  std::vector<std::vector<uint16_t>> cols;
  std::vector<const uint16_t*> ptrs;
  std::vector<size_t> strides;
  std::vector<uint32_t> odd_rows;
  std::vector<size_t> domains;
  size_t cells = 1;

  CountNFixture(size_t rows, std::vector<size_t> d) : domains(std::move(d)) {
    BitGen gen(77);
    cols.resize(domains.size());
    strides.resize(domains.size());
    for (size_t k = 0; k < domains.size(); ++k) {
      cols[k].resize(rows);
      for (auto& v : cols[k]) {
        v = static_cast<uint16_t>(gen.UniformInt(domains[k]));
      }
      cells *= domains[k];
    }
    // Row-major strides, last attribute fastest.
    size_t stride = 1;
    for (size_t k = domains.size(); k-- > 0;) {
      strides[k] = stride;
      stride *= domains[k];
    }
    for (const auto& col : cols) ptrs.push_back(col.data());
    for (size_t r = 1; r < rows; r += 2) {
      odd_rows.push_back(static_cast<uint32_t>(r));
    }
  }

  CountPlanNArgs Args(std::vector<uint32_t>& counts,
                      std::vector<uint32_t>* scratch) const {
    CountPlanNArgs args;
    args.cols = ptrs.data();
    args.strides = strides.data();
    args.arity = domains.size();
    args.begin = 0;
    args.end = cols[0].size();
    args.cells = cells;
    counts.assign(cells, 0);
    args.counts = counts.data();
    if (scratch != nullptr) {
      scratch->resize(kBatchLanes * cells);
      args.lane_scratch = scratch->data();
    }
    return args;
  }
};

TEST(SimdKernelsTest, CountPlanNMatchesScalarRefAcrossArities) {
  for (const auto& domains :
       {std::vector<size_t>{5, 3, 7}, std::vector<size_t>{4, 2, 3, 5},
        std::vector<size_t>{2, 2, 2, 3, 3, 2}}) {
    const CountNFixture f(10'000, domains);
    std::vector<uint32_t> want, direct, striped, scratch;
    CountPlanNScalarRef(f.Args(want, nullptr));
    CountPlanN(f.Args(direct, nullptr));
    CountPlanN(f.Args(striped, &scratch));
    EXPECT_EQ(direct, want) << "arity " << domains.size();
    EXPECT_EQ(striped, want) << "arity " << domains.size();
    uint64_t total = 0;
    for (uint32_t c : want) total += c;
    EXPECT_EQ(total, f.cols[0].size());
  }
}

TEST(SimdKernelsTest, CountPlanNMatchesOnRowSubsets) {
  const CountNFixture f(8'000, {6, 4, 5});
  std::vector<uint32_t> want, got, scratch;
  CountPlanNArgs ref = f.Args(want, nullptr);
  ref.row_idx = f.odd_rows.data();
  ref.end = f.odd_rows.size();
  CountPlanNScalarRef(ref);
  CountPlanNArgs args = f.Args(got, &scratch);
  args.row_idx = f.odd_rows.data();
  args.end = f.odd_rows.size();
  CountPlanN(args);
  EXPECT_EQ(got, want);
}

TEST(SimdKernelsTest, CountPlanNAccumulatesAndHonorsRanges) {
  const CountNFixture f(4'096, {3, 3, 3});
  std::vector<uint32_t> want, got, scratch;
  CountPlanNArgs ref = f.Args(want, nullptr);
  ref.begin = 13;
  ref.end = 4'000;
  want.assign(f.cells, 5);  // pre-existing counts must be added to
  CountPlanNScalarRef(ref);
  CountPlanNArgs args = f.Args(got, &scratch);
  args.begin = 13;
  args.end = 4'000;
  got.assign(f.cells, 5);
  CountPlanN(args);
  EXPECT_EQ(got, want);
  uint64_t total = 0;
  for (uint32_t c : got) total += c;
  EXPECT_EQ(total, (4'000 - 13) + 5 * f.cells);
}

TEST(SimdKernelsTest, CountPlanNForcedTiersAllAgree) {
  const CountNFixture f(20'000, {7, 3, 4});
  std::vector<uint32_t> want, scratch;
  CountPlanNScalarRef(f.Args(want, nullptr));
  for (const char* tier : {"off", "sse2", "avx2"}) {
    ScopedSimdOverride cap(tier);
    std::vector<uint32_t> direct, striped;
    CountPlanN(f.Args(direct, nullptr));
    CountPlanN(f.Args(striped, &scratch));
    EXPECT_EQ(direct, want) << "tier " << tier;
    EXPECT_EQ(striped, want) << "tier " << tier;
  }
}

}  // namespace
}  // namespace simd
}  // namespace ireduct
