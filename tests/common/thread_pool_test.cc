#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

namespace ireduct {
namespace {

TEST(ThreadPoolTest, RunsEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 1000; ++i) {
    pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPoolTest, ClampsToAtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  std::atomic<int> count{0};
  pool.Submit([&count] { ++count; });
  pool.Wait();
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPoolTest, WaitIsReusableAcrossRounds) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 7; ++i) {
      pool.Submit([&count] { ++count; });
    }
    pool.Wait();
    EXPECT_EQ(count.load(), (round + 1) * 7);
  }
}

TEST(ThreadPoolTest, WaitWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // must not deadlock
  SUCCEED();
}

TEST(ThreadPoolTest, TasksWriteDisjointSlotsWithoutRaces) {
  // Mirrors the batched-iReduct usage: tasks write disjoint ranges of one
  // shared vector. ASan/UBSan builds watch for racy stores.
  ThreadPool pool(4);
  std::vector<double> values(400, 0.0);
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&values, i] {
      for (int j = 0; j < 4; ++j) values[4 * i + j] = i + j * 0.25;
    });
  }
  pool.Wait();
  for (int i = 0; i < 100; ++i) {
    for (int j = 0; j < 4; ++j) {
      EXPECT_EQ(values[4 * i + j], i + j * 0.25);
    }
  }
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 200; ++i) {
      pool.Submit([&count] { ++count; });
    }
    // No Wait: the destructor must finish everything before joining.
  }
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPoolTest, UsesMultipleThreads) {
  ThreadPool pool(4);
  std::mutex mu;
  std::set<std::thread::id> seen;
  std::atomic<int> rendezvous{0};
  for (int i = 0; i < 4; ++i) {
    pool.Submit([&] {
      ++rendezvous;
      // Hold every worker briefly so tasks cannot all run on one thread.
      while (rendezvous.load() < 4) std::this_thread::yield();
      std::lock_guard<std::mutex> lock(mu);
      seen.insert(std::this_thread::get_id());
    });
  }
  pool.Wait();
  EXPECT_EQ(seen.size(), 4u);
}

}  // namespace
}  // namespace ireduct
