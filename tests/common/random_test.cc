#include "common/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "eval/stats.h"

namespace ireduct {
namespace {

constexpr int kSamples = 200'000;

TEST(BitGenTest, DeterministicForSameSeed) {
  BitGen a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(BitGenTest, DifferentSeedsDiverge) {
  BitGen a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b());
  EXPECT_LT(equal, 3);
}

TEST(BitGenTest, UniformInUnitInterval) {
  BitGen gen(7);
  double sum = 0;
  for (int i = 0; i < kSamples; ++i) {
    const double u = gen.Uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / kSamples, 0.5, 0.005);
}

TEST(BitGenTest, UniformPositiveNeverZero) {
  BitGen gen(7);
  for (int i = 0; i < 10'000; ++i) ASSERT_GT(gen.UniformPositive(), 0.0);
}

TEST(BitGenTest, UniformRangeRespectsBounds) {
  BitGen gen(9);
  for (int i = 0; i < 10'000; ++i) {
    const double x = gen.Uniform(-3.0, 5.0);
    ASSERT_GE(x, -3.0);
    ASSERT_LT(x, 5.0);
  }
}

TEST(BitGenTest, UniformIntCoversRangeUniformly) {
  BitGen gen(11);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < kSamples; ++i) {
    const uint64_t v = gen.UniformInt(10);
    ASSERT_LT(v, 10u);
    ++counts[v];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kSamples / 10.0, 5 * std::sqrt(kSamples / 10.0));
  }
}

TEST(BitGenTest, ExponentialMatchesMeanAndVariance) {
  BitGen gen(13);
  std::vector<double> sample(kSamples);
  for (double& x : sample) x = gen.Exponential(2.5);
  const SampleSummary s = Summarize(sample);
  EXPECT_NEAR(s.mean, 2.5, 0.05);
  EXPECT_NEAR(s.variance, 2.5 * 2.5, 0.25);
  EXPECT_GE(s.min, 0.0);
}

TEST(BitGenTest, LaplaceMatchesMomentsAndMad) {
  BitGen gen(17);
  const double scale = 3.0;
  std::vector<double> sample(kSamples);
  for (double& x : sample) x = gen.Laplace(scale);
  const SampleSummary s = Summarize(sample);
  // Laplace(b): mean 0, variance 2b², expected absolute deviation b.
  EXPECT_NEAR(s.mean, 0.0, 0.05);
  EXPECT_NEAR(s.variance, 2 * scale * scale, 0.5);
  EXPECT_NEAR(s.mean_abs_deviation, scale, 0.05);
}

TEST(BitGenTest, LaplaceWithLocationShiftsMean) {
  BitGen gen(19);
  double sum = 0;
  for (int i = 0; i < kSamples; ++i) sum += gen.Laplace(100.0, 1.0);
  EXPECT_NEAR(sum / kSamples, 100.0, 0.05);
}

TEST(BitGenTest, LaplacePassesKsAgainstAnalyticCdf) {
  BitGen gen(23);
  std::vector<double> sample(50'000);
  for (double& x : sample) x = gen.Laplace(5.0, 2.0);
  const double ks = KsStatistic(
      sample, [](double x) { return LaplaceCdf(x, 5.0, 2.0); });
  // 1.63/sqrt(n) is the 1% critical value of the one-sample KS test.
  EXPECT_LT(ks, 1.63 / std::sqrt(50'000.0));
}

TEST(BitGenTest, TruncatedExponentialStaysInInterval) {
  BitGen gen(29);
  for (int i = 0; i < 20'000; ++i) {
    const double x = gen.TruncatedExponential(1.5, 2.0, 4.5);
    ASSERT_GE(x, 2.0);
    ASSERT_LE(x, 4.5);
  }
}

TEST(BitGenTest, TruncatedExponentialMatchesAnalyticCdf) {
  BitGen gen(31);
  const double mean = 2.0, lo = 1.0, hi = 6.0;
  std::vector<double> sample(50'000);
  for (double& x : sample) x = gen.TruncatedExponential(mean, lo, hi);
  auto cdf = [&](double x) {
    return std::expm1(-(x - lo) / mean) / std::expm1(-(hi - lo) / mean);
  };
  EXPECT_LT(KsStatistic(sample, cdf), 1.63 / std::sqrt(50'000.0));
}

TEST(BitGenTest, TruncatedExponentialUnboundedMatchesShiftedExponential) {
  BitGen gen(37);
  std::vector<double> sample(50'000);
  const double inf = std::numeric_limits<double>::infinity();
  for (double& x : sample) x = gen.TruncatedExponential(3.0, 10.0, inf);
  const SampleSummary s = Summarize(sample);
  EXPECT_NEAR(s.mean, 13.0, 0.1);
  EXPECT_GE(s.min, 10.0);
}

TEST(BitGenTest, ForkIsDeterministic) {
  // Same-seeded parents produce identical substreams, and forking costs
  // the parent exactly one draw — the substream-determinism contract the
  // batched iReduct round mode depends on.
  BitGen a(55), b(55);
  BitGen fa = a.Fork();
  BitGen fb = b.Fork();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(fa(), fb());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(BitGenTest, ForkDivergesFromParentAndSiblings) {
  BitGen parent(77);
  BitGen child1 = parent.Fork();
  BitGen child2 = parent.Fork();
  int parent_eq = 0, sibling_eq = 0;
  BitGen reference(77);
  reference();  // skip the draw consumed by the first fork
  reference();  // ... and the second
  for (int i = 0; i < 100; ++i) {
    const uint64_t c1 = child1(), c2 = child2();
    parent_eq += (c1 == reference());
    sibling_eq += (c1 == c2);
  }
  EXPECT_LT(parent_eq, 3);
  EXPECT_LT(sibling_eq, 3);
}

TEST(BitGenTest, ForkAdvancesParentByOneDraw) {
  BitGen forked(91), plain(91);
  forked.Fork();
  plain();  // one manual draw
  for (int i = 0; i < 50; ++i) EXPECT_EQ(forked(), plain());
}

TEST(BitGenTest, BernoulliMatchesProbability) {
  BitGen gen(41);
  int hits = 0;
  for (int i = 0; i < kSamples; ++i) hits += gen.Bernoulli(0.3);
  EXPECT_NEAR(hits / static_cast<double>(kSamples), 0.3, 0.01);
  EXPECT_FALSE(gen.Bernoulli(0.0));
  EXPECT_TRUE(gen.Bernoulli(1.0));
}

}  // namespace
}  // namespace ireduct
