#include "common/numeric.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

namespace ireduct {
namespace {

TEST(NumericTest, CoshMinusOneMatchesNaiveAtModerateArguments) {
  for (double x : {0.5, 1.0, 2.0, 5.0}) {
    EXPECT_NEAR(CoshMinusOne(x), std::cosh(x) - 1.0,
                1e-12 * (std::cosh(x) - 1.0));
  }
}

TEST(NumericTest, CoshMinusOneAccurateForTinyArguments) {
  // cosh(x) - 1 = x²/2 + x⁴/24 + ...; at x = 1e-6 the naive form retains
  // only ~3 significant digits while ours keeps full precision.
  const double x = 1e-6;
  const double expected = x * x / 2 + x * x * x * x / 24;
  EXPECT_NEAR(CoshMinusOne(x), expected, 1e-15 * expected);
}

TEST(NumericTest, CoshMinusOneIsEven) {
  EXPECT_DOUBLE_EQ(CoshMinusOne(0.3), CoshMinusOne(-0.3));
  EXPECT_EQ(CoshMinusOne(0.0), 0.0);
}

TEST(NumericTest, CoshDiffMatchesNaive) {
  EXPECT_NEAR(CoshDiff(2.0, 1.0), std::cosh(2.0) - std::cosh(1.0), 1e-12);
  EXPECT_NEAR(CoshDiff(1.0, 2.0), std::cosh(1.0) - std::cosh(2.0), 1e-12);
}

TEST(NumericTest, CoshDiffAccurateForTinyNearbyArguments) {
  // cosh(a)-cosh(b) ≈ (a²-b²)/2 for small a, b.
  const double a = 2e-6, b = 1e-6;
  const double expected = (a * a - b * b) / 2;
  EXPECT_NEAR(CoshDiff(a, b), expected, 1e-12 * expected);
}

TEST(NumericTest, ExpDiffMatchesNaive) {
  EXPECT_NEAR(ExpDiff(1.0, 0.5), std::exp(1.0) - std::exp(0.5), 1e-12);
}

TEST(NumericTest, ExpDiffAccurateWhenArgumentsAreClose) {
  // e^{1e-9} - 1 = 1e-9 + (1e-9)²/2 + ... to full precision.
  const double a = 1e-9, b = 0.0;
  EXPECT_NEAR(ExpDiff(a, b), 1e-9 + 5e-19, 1e-24);
}

TEST(NumericTest, LogAddExpBasics) {
  EXPECT_NEAR(LogAddExp(std::log(2.0), std::log(3.0)), std::log(5.0), 1e-12);
  // Does not overflow for large inputs.
  EXPECT_NEAR(LogAddExp(1000.0, 1000.0), 1000.0 + std::log(2.0), 1e-9);
  const double neg_inf = -std::numeric_limits<double>::infinity();
  EXPECT_DOUBLE_EQ(LogAddExp(neg_inf, 3.0), 3.0);
  EXPECT_DOUBLE_EQ(LogAddExp(3.0, neg_inf), 3.0);
}

TEST(NumericTest, LogSubExpBasics) {
  EXPECT_NEAR(LogSubExp(std::log(5.0), std::log(3.0)), std::log(2.0), 1e-12);
  EXPECT_TRUE(std::isinf(LogSubExp(1.0, 1.0)));
  EXPECT_LT(LogSubExp(1.0, 2.0), 0);  // -inf for a <= b
}

TEST(NumericTest, KahanSumBeatsNaiveSummation) {
  // 1 + 1e-16 added 1e7 times: naive summation loses the small addends.
  KahanSum acc;
  acc.Add(1.0);
  for (int i = 0; i < 10'000'000; ++i) acc.Add(1e-16);
  EXPECT_NEAR(acc.value(), 1.0 + 1e-9, 1e-12);
}

TEST(NumericTest, StableSumMatchesExpected) {
  std::vector<double> v{0.1, 0.2, 0.3, 0.4};
  EXPECT_NEAR(StableSum(v), 1.0, 1e-15);
}

TEST(NumericTest, SimpsonIntegratesPolynomialsExactly) {
  // Simpson is exact for cubics.
  auto cubic = [](double x) { return x * x * x - 2 * x + 1; };
  // ∫₀² = 4 - 4 + 2 = 2.
  EXPECT_NEAR(SimpsonIntegrate(cubic, 0.0, 2.0, 10), 2.0, 1e-12);
}

TEST(NumericTest, SimpsonConvergesOnExponential) {
  auto f = [](double x) { return std::exp(-x); };
  EXPECT_NEAR(SimpsonIntegrate(f, 0.0, 10.0, 2000), 1.0 - std::exp(-10.0),
              1e-10);
}

TEST(NumericTest, SimpsonHandlesOddIntervalRequest) {
  auto f = [](double) { return 1.0; };
  EXPECT_NEAR(SimpsonIntegrate(f, 0.0, 1.0, 3), 1.0, 1e-12);
  EXPECT_NEAR(SimpsonIntegrate(f, 0.0, 1.0, 1), 1.0, 1e-12);
}

}  // namespace
}  // namespace ireduct
