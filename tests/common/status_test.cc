#include "common/status.h"

#include <gtest/gtest.h>

#include <sstream>

namespace ireduct {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsCarryCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("bad").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::OutOfRange("oob").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("fp").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::PrivacyBudgetExceeded("pb").code(),
            StatusCode::kPrivacyBudgetExceeded);
  EXPECT_EQ(Status::IoError("io").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::NotFound("nf").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::Internal("in").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::ResourceExhausted("full").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::InvalidArgument("bad").message(), "bad");
  EXPECT_FALSE(Status::InvalidArgument("bad").ok());
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  const Status s = Status::PrivacyBudgetExceeded("over by 0.5");
  EXPECT_EQ(s.ToString(), "Privacy budget exceeded: over by 0.5");
}

TEST(StatusTest, StreamInsertionMatchesToString) {
  std::ostringstream os;
  os << Status::NotFound("thing");
  EXPECT_EQ(os.str(), "Not found: thing");
}

TEST(StatusTest, CopyPreservesState) {
  const Status original = Status::IoError("disk");
  const Status copy = original;  // NOLINT(performance-unnecessary-copy)
  EXPECT_EQ(copy.code(), StatusCode::kIoError);
  EXPECT_EQ(copy.message(), "disk");
}

TEST(StatusTest, OkConstructedWithExplicitCodeIsOk) {
  const Status s(StatusCode::kOk, "ignored");
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.message(), "");
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = [] { return Status::Internal("boom"); };
  auto wrapper = [&]() -> Status {
    IREDUCT_RETURN_NOT_OK(fails());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kInternal);

  auto succeeds = [] { return Status::OK(); };
  auto wrapper_ok = [&]() -> Status {
    IREDUCT_RETURN_NOT_OK(succeeds());
    return Status::NotFound("sentinel");
  };
  EXPECT_EQ(wrapper_ok().code(), StatusCode::kNotFound);
}

TEST(StatusTest, StatusCodeToStringCoversAllCodes) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInternal), "Internal");
  EXPECT_EQ(StatusCodeToString(StatusCode::kResourceExhausted),
            "Resource exhausted");
}

}  // namespace
}  // namespace ireduct
