#include "common/fault.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace ireduct {
namespace {

// Every test drives its own injector instance so the process-global one
// (and any IREDUCT_FAULT from the environment) stays untouched.

TEST(FaultInjectorTest, DisarmedHitsAreNoOps) {
  FaultInjector injector;
  EXPECT_FALSE(injector.armed());
  EXPECT_FALSE(injector.Hit("journal.append").fired());
  // The disarmed fast path skips even the counter: zero overhead when off.
  EXPECT_EQ(injector.hit_count("journal.append"), 0u);
}

TEST(FaultInjectorTest, FailFiresOnExactlyTheNthHit) {
  FaultInjector injector;
  ASSERT_TRUE(injector.Configure("journal.append:fail@3").ok());
  EXPECT_TRUE(injector.armed());
  EXPECT_FALSE(injector.Hit("journal.append").fired());
  EXPECT_FALSE(injector.Hit("journal.append").fired());
  const FaultDecision third = injector.Hit("journal.append");
  EXPECT_EQ(third.action, FaultAction::kFail);
  EXPECT_FALSE(injector.Hit("journal.append").fired());
  EXPECT_EQ(injector.hit_count("journal.append"), 4u);
}

TEST(FaultInjectorTest, PointsAreIndependent) {
  FaultInjector injector;
  ASSERT_TRUE(injector.Configure("checkpoint.write:fail@1").ok());
  EXPECT_FALSE(injector.Hit("journal.append").fired());
  EXPECT_EQ(injector.Hit("checkpoint.write").action, FaultAction::kFail);
}

TEST(FaultInjectorTest, TruncateCarriesByteCount) {
  FaultInjector injector;
  ASSERT_TRUE(injector.Configure("journal.append:truncate@2=17").ok());
  EXPECT_FALSE(injector.Hit("journal.append").fired());
  const FaultDecision d = injector.Hit("journal.append");
  EXPECT_EQ(d.action, FaultAction::kTruncate);
  EXPECT_EQ(d.truncate_bytes, 17u);
}

TEST(FaultInjectorTest, MultipleArmsCommaSeparated) {
  FaultInjector injector;
  ASSERT_TRUE(
      injector
          .Configure("journal.append:fail@1,checkpoint.write:truncate@1=5")
          .ok());
  EXPECT_EQ(injector.Hit("journal.append").action, FaultAction::kFail);
  const FaultDecision d = injector.Hit("checkpoint.write");
  EXPECT_EQ(d.action, FaultAction::kTruncate);
  EXPECT_EQ(d.truncate_bytes, 5u);
}

TEST(FaultInjectorTest, ConfigureRejectsMalformedSpecs) {
  FaultInjector injector;
  EXPECT_FALSE(injector.Configure("nonsense").ok());
  EXPECT_FALSE(injector.Configure("point:fail").ok());
  EXPECT_FALSE(injector.Configure("point:fail@zero").ok());
  EXPECT_FALSE(injector.Configure("point:explode@1").ok());
  EXPECT_FALSE(injector.Configure("point:truncate@1").ok());
  EXPECT_FALSE(injector.Configure("point:fail@0").ok());
  // A failed Configure leaves the injector disarmed.
  EXPECT_FALSE(injector.armed());
}

TEST(FaultInjectorTest, ResetDisarmsAndClearsCounters) {
  FaultInjector injector;
  ASSERT_TRUE(injector.Configure("p:fail@2").ok());
  EXPECT_FALSE(injector.Hit("p").fired());
  injector.Reset();
  EXPECT_FALSE(injector.armed());
  EXPECT_EQ(injector.hit_count("p"), 0u);
  // After re-configuring, counting starts over: the next hit is #1.
  ASSERT_TRUE(injector.Configure("p:fail@2").ok());
  EXPECT_FALSE(injector.Hit("p").fired());
  EXPECT_TRUE(injector.Hit("p").fired());
}

TEST(FaultInjectorTest, ReconfigureReplacesArms) {
  FaultInjector injector;
  ASSERT_TRUE(injector.Configure("a:fail@1").ok());
  ASSERT_TRUE(injector.Configure("b:fail@1").ok());
  EXPECT_FALSE(injector.Hit("a").fired());
  EXPECT_TRUE(injector.Hit("b").fired());
}

TEST(FaultInjectorTest, ConcurrentHitsWhileReconfiguringAreRaceFree) {
  // Fault points sit on code paths that run from worker threads (e.g.
  // journal appends driven by parallel trials), so Hit must be safe
  // against a concurrent Configure/Reset — under TSan this test is the
  // regression check that the armed flag is a real atomic.
  FaultInjector injector;
  ASSERT_TRUE(injector.Configure("p:fail@1000000").ok());
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&injector] {
      for (int i = 0; i < 1000; ++i) injector.Hit("p");
    });
  }
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(injector.Configure("p:fail@1000000").ok());
  }
  injector.Reset();
  for (std::thread& worker : workers) worker.join();
  EXPECT_FALSE(injector.armed());
  EXPECT_FALSE(injector.Hit("p").fired());
}

}  // namespace
}  // namespace ireduct
