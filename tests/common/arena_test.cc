#include "common/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>

namespace ireduct {
namespace {

TEST(ArenaTest, AllocReturnsUsableAlignedStorage) {
  Arena arena;
  char* c = arena.Alloc<char>(3);
  ASSERT_NE(c, nullptr);
  double* d = arena.Alloc<double>(4);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(d) % alignof(double), 0u);
  for (int i = 0; i < 4; ++i) d[i] = i * 1.5;
  c[0] = 'x';
  for (int i = 0; i < 4; ++i) EXPECT_EQ(d[i], i * 1.5);
}

TEST(ArenaTest, AllocZeroedClears) {
  Arena arena;
  // Dirty a cycle, rewind, and re-carve the same bytes.
  auto dirty = arena.AllocZeroed<uint64_t>(64);
  for (auto& v : dirty) v = ~0ull;
  arena.Reset();
  auto clean = arena.AllocZeroed<uint64_t>(64);
  for (uint64_t v : clean) EXPECT_EQ(v, 0u);
}

TEST(ArenaTest, ResetKeepsCapacityAndZeroesUsage) {
  Arena arena;
  arena.Alloc<char>(1000);
  const size_t reserved = arena.bytes_reserved();
  EXPECT_GE(reserved, 1000u);
  EXPECT_GE(arena.bytes_used(), 1000u);
  arena.Reset();
  EXPECT_EQ(arena.bytes_used(), 0u);
  EXPECT_EQ(arena.bytes_reserved(), reserved);
  // The steady state: same-shaped cycle, no growth.
  arena.Alloc<char>(1000);
  EXPECT_EQ(arena.bytes_reserved(), reserved);
}

TEST(ArenaTest, MinimumChunkAbsorbsSmallCycles) {
  Arena arena;
  arena.Alloc<char>(1);
  EXPECT_GE(arena.bytes_reserved(), 4096u);
}

TEST(ArenaTest, SpillGrowsThenResetCoalesces) {
  Arena arena(4096);
  // Outgrow the initial chunk: this cycle spans multiple chunks.
  arena.Alloc<char>(100);
  int* spill = arena.Alloc<int>(8192);
  std::iota(spill, spill + 8192, 0);
  EXPECT_EQ(spill[8191], 8191);
  const size_t high_water = arena.bytes_reserved();
  EXPECT_GE(high_water, 4096u + 8192 * sizeof(int));

  // After Reset the footprint is one chunk of the high-water size, so the
  // same cycle re-runs without any further growth.
  arena.Reset();
  arena.Alloc<char>(100);
  arena.Alloc<int>(8192);
  EXPECT_EQ(arena.bytes_reserved(), high_water);
}

TEST(ArenaTest, WritesDoNotOverlapAcrossAllocations) {
  Arena arena;
  uint32_t* a = arena.Alloc<uint32_t>(100);
  uint32_t* b = arena.Alloc<uint32_t>(100);
  for (int i = 0; i < 100; ++i) {
    a[i] = 1;
    b[i] = 2;
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a[i], 1u);
    EXPECT_EQ(b[i], 2u);
  }
}

}  // namespace
}  // namespace ireduct
