#include "classifier/naive_bayes.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"
#include "marginals/marginal_set.h"

namespace ireduct {
namespace {

// A two-feature dataset where class = 0 implies feature values near 0 and
// class = 1 implies values near the top of the domain.
Dataset SeparableDataset(int rows_per_class, double flip_prob,
                         uint64_t seed) {
  auto schema = Schema::Create({{"F1", 4}, {"F2", 4}, {"C", 2}});
  EXPECT_TRUE(schema.ok());
  Dataset d(std::move(schema).value());
  BitGen gen(seed);
  for (int c = 0; c < 2; ++c) {
    for (int r = 0; r < rows_per_class; ++r) {
      auto draw = [&](int cls) -> uint16_t {
        const bool flip = gen.Bernoulli(flip_prob);
        const int base = (cls == 0) ? 0 : 2;
        return static_cast<uint16_t>(flip ? 3 - base - gen.UniformInt(2)
                                          : base + gen.UniformInt(2));
      };
      const std::vector<uint16_t> row{draw(c), draw(c),
                                      static_cast<uint16_t>(c)};
      EXPECT_TRUE(d.AppendRow(row).ok());
    }
  }
  return d;
}

std::vector<Marginal> TrainMarginals(const Dataset& d, size_t class_attr) {
  auto specs = ClassifierSpecs(d.schema(), class_attr);
  EXPECT_TRUE(specs.ok());
  auto marginals = ComputeMarginals(d, *specs);
  EXPECT_TRUE(marginals.ok());
  return std::move(marginals).value();
}

TEST(NaiveBayesTest, LearnsSeparableConcept) {
  const Dataset d = SeparableDataset(2000, 0.05, 1);
  auto model =
      NaiveBayesModel::FromMarginals(d.schema(), 2, TrainMarginals(d, 2));
  ASSERT_TRUE(model.ok()) << model.status();
  EXPECT_GT(model->Accuracy(d), 0.9);
}

TEST(NaiveBayesTest, PredictUsesFeatures) {
  const Dataset d = SeparableDataset(2000, 0.02, 2);
  auto model =
      NaiveBayesModel::FromMarginals(d.schema(), 2, TrainMarginals(d, 2));
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->Predict(std::vector<uint16_t>{0, 0, 0}), 0);
  EXPECT_EQ(model->Predict(std::vector<uint16_t>{3, 3, 0}), 1);
}

TEST(NaiveBayesTest, RandomLabelsYieldChanceAccuracy) {
  const Dataset d = SeparableDataset(3000, 0.5, 3);  // features carry no signal
  auto model =
      NaiveBayesModel::FromMarginals(d.schema(), 2, TrainMarginals(d, 2));
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(model->Accuracy(d), 0.5, 0.07);
}

TEST(NaiveBayesTest, ValidatesMarginalLayout) {
  const Dataset d = SeparableDataset(10, 0.1, 4);
  std::vector<Marginal> marginals = TrainMarginals(d, 2);
  // Wrong class attribute index.
  EXPECT_FALSE(
      NaiveBayesModel::FromMarginals(d.schema(), 0, marginals).ok());
  // Missing one marginal.
  std::vector<Marginal> truncated(marginals.begin(), marginals.end() - 1);
  EXPECT_FALSE(
      NaiveBayesModel::FromMarginals(d.schema(), 2, truncated).ok());
  // Out-of-range class attribute.
  EXPECT_FALSE(
      NaiveBayesModel::FromMarginals(d.schema(), 9, marginals).ok());
}

TEST(NaiveBayesTest, HandlesNegativeNoisyCountsViaPostprocessing) {
  // All counts negative: post-processing clamps to 1, the model degrades
  // to the prior without producing NaN or crashing.
  auto schema = Schema::Create({{"F", 2}, {"C", 2}});
  ASSERT_TRUE(schema.ok());
  auto class_marginal =
      Marginal::FromCounts(MarginalSpec{{1}}, {2}, {-5.0, 3.0});
  auto feature_marginal = Marginal::FromCounts(MarginalSpec{{0, 1}}, {2, 2},
                                               {-2.0, -9.0, -1.0, -3.0});
  ASSERT_TRUE(class_marginal.ok());
  ASSERT_TRUE(feature_marginal.ok());
  auto model = NaiveBayesModel::FromMarginals(
      *schema, 1, {*class_marginal, *feature_marginal});
  ASSERT_TRUE(model.ok());
  // Class 1 has the larger post-processed prior (4 vs 1).
  EXPECT_EQ(model->Predict(std::vector<uint16_t>{0, 0}), 1);
}

TEST(NaiveBayesTest, AccuracyOnRowSubset) {
  const Dataset d = SeparableDataset(500, 0.02, 5);
  auto model =
      NaiveBayesModel::FromMarginals(d.schema(), 2, TrainMarginals(d, 2));
  ASSERT_TRUE(model.ok());
  const std::vector<uint32_t> subset{0, 1, 2, 3, 4};
  EXPECT_GE(model->Accuracy(d, subset), 0.0);
  EXPECT_LE(model->Accuracy(d, subset), 1.0);
}

}  // namespace
}  // namespace ireduct
