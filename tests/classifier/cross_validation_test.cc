#include "classifier/cross_validation.h"

#include <gtest/gtest.h>

#include <vector>

#include "algorithms/dwork.h"

namespace ireduct {
namespace {

Dataset SeparableDataset(int rows_per_class, uint64_t seed) {
  auto schema = Schema::Create({{"F1", 4}, {"F2", 4}, {"C", 2}});
  EXPECT_TRUE(schema.ok());
  Dataset d(std::move(schema).value());
  BitGen gen(seed);
  for (int c = 0; c < 2; ++c) {
    for (int r = 0; r < rows_per_class; ++r) {
      auto draw = [&](int cls) -> uint16_t {
        const bool flip = gen.Bernoulli(0.05);
        const int base = (cls == 0) ? 0 : 2;
        return static_cast<uint16_t>(flip ? (2 - base) + gen.UniformInt(2)
                                          : base + gen.UniformInt(2));
      };
      const std::vector<uint16_t> row{draw(c), draw(c),
                                      static_cast<uint16_t>(c)};
      EXPECT_TRUE(d.AppendRow(row).ok());
    }
  }
  return d;
}

PublishFn IdentityPublish() {
  return [](const MarginalWorkload& mw) -> Result<std::vector<double>> {
    const auto answers = mw.workload().true_answers();
    return std::vector<double>(answers.begin(), answers.end());
  };
}

TEST(CrossValidationTest, NoiseFreePublishGivesHighAccuracyAndZeroError) {
  const Dataset d = SeparableDataset(1500, 1);
  BitGen gen(2);
  auto cv = CrossValidateClassifier(d, 2, 10, 1.0, IdentityPublish(), gen);
  ASSERT_TRUE(cv.ok()) << cv.status();
  EXPECT_EQ(cv->folds, 10);
  EXPECT_GT(cv->mean_accuracy, 0.9);
  EXPECT_NEAR(cv->mean_overall_error, 0.0, 1e-12);
}

TEST(CrossValidationTest, HeavyNoiseHurtsAccuracy) {
  const Dataset d = SeparableDataset(1500, 3);
  BitGen gen(4);
  auto clean = CrossValidateClassifier(d, 2, 5, 1.0, IdentityPublish(), gen);
  ASSERT_TRUE(clean.ok());

  BitGen noise_gen(5);
  PublishFn noisy = [&noise_gen](const MarginalWorkload& mw) {
    // Tiny ε: answers are all but destroyed.
    auto out = RunDwork(mw.workload(), DworkParams{1e-4}, noise_gen);
    EXPECT_TRUE(out.ok());
    return Result<std::vector<double>>(std::move(out->answers));
  };
  BitGen gen2(4);
  auto degraded = CrossValidateClassifier(d, 2, 5, 1.0, noisy, gen2);
  ASSERT_TRUE(degraded.ok());
  EXPECT_GT(degraded->mean_overall_error, clean->mean_overall_error);
  EXPECT_LT(degraded->mean_accuracy, clean->mean_accuracy);
}

TEST(CrossValidationTest, ValidatesFoldCount) {
  const Dataset d = SeparableDataset(50, 6);
  BitGen gen(7);
  EXPECT_FALSE(
      CrossValidateClassifier(d, 2, 1, 1.0, IdentityPublish(), gen).ok());
}

TEST(CrossValidationTest, PublishErrorsPropagate) {
  const Dataset d = SeparableDataset(50, 8);
  BitGen gen(9);
  PublishFn failing = [](const MarginalWorkload&) {
    return Result<std::vector<double>>(Status::Internal("boom"));
  };
  auto cv = CrossValidateClassifier(d, 2, 5, 1.0, failing, gen);
  ASSERT_FALSE(cv.ok());
  EXPECT_EQ(cv.status().code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace ireduct
