#include "eval/table_printer.h"

#include <gtest/gtest.h>

#include <sstream>

namespace ireduct {
namespace {

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"method", "error"});
  t.AddRow({"Dwork", "0.5"});
  t.AddRow({"iReduct", "0.01"});
  std::ostringstream os;
  t.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("method"), std::string::npos);
  EXPECT_NE(out.find("iReduct"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  // Every line of the body starts at column 0 with the first cell.
  EXPECT_EQ(out.find("Dwork"), out.find('\n', out.find("---")) + 1);
}

TEST(TablePrinterTest, CellFormatsDoubles) {
  EXPECT_EQ(TablePrinter::Cell(0.123456, 3), "0.123");
  EXPECT_EQ(TablePrinter::Cell(2.0, 4), "2");
}

}  // namespace
}  // namespace ireduct
