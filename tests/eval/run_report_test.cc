#include "eval/run_report.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/fault.h"
#include "dp/privacy_accountant.h"
#include "dp/workload.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "../obs/minijson.h"

namespace ireduct {
namespace {

Workload TwoGroupWorkload() {
  auto r = Workload::Create(
      {10, 20, 100, 200},
      {QueryGroup{"small", 0, 2, 1.0}, QueryGroup{"big", 2, 4, 1.0}});
  EXPECT_TRUE(r.ok());
  return std::move(r).value();
}

TEST(QueryErrorStatsTest, ComputesDeterministicPercentiles) {
  const Workload w = TwoGroupWorkload();
  // Published = truth + {0, 10, 0, 100}: relative errors with delta=1 are
  // 0, 10/20, 0, 100/200 -> sorted {0, 0, 0.5, 0.5}.
  const std::vector<double> published = {10, 30, 100, 300};
  const QueryErrorStats stats = ComputeQueryErrorStats(w, published, 1.0);
  EXPECT_EQ(stats.queries, 4u);
  EXPECT_DOUBLE_EQ(stats.mean_relative_error, 0.25);
  EXPECT_DOUBLE_EQ(stats.max_relative_error, 0.5);
  EXPECT_DOUBLE_EQ(stats.p50_relative_error, 0.0);   // nearest-rank: 2nd
  EXPECT_DOUBLE_EQ(stats.p90_relative_error, 0.5);   // 4th
  EXPECT_DOUBLE_EQ(stats.p99_relative_error, 0.5);
  EXPECT_DOUBLE_EQ(stats.mean_absolute_error, (10.0 + 100.0) / 4.0);
  // Overall error (Definition 6): mean over groups of per-group means.
  EXPECT_DOUBLE_EQ(stats.overall_error, (0.25 + 0.25) / 2.0);
}

TEST(RunReportTest, SerializesOnlyAttachedSections) {
  RunReport report("bare");
  auto parsed = minijson::Parse(report.ToJson());
  ASSERT_TRUE(parsed.has_value()) << report.ToJson();
  ASSERT_EQ(parsed->object.size(), 2u);
  EXPECT_EQ(parsed->object[0].first, "report_version");
  EXPECT_DOUBLE_EQ(parsed->object[0].second.number, 1.0);
  EXPECT_EQ(parsed->object[1].first, "run");
  EXPECT_EQ(parsed->object[1].second.Find("name")->text, "bare");
}

TEST(RunReportTest, FullReportShape) {
  const Workload w = TwoGroupWorkload();
  const std::vector<double> published = {10, 30, 100, 300};

  RunReport report("full");
  report.SetRunField("mechanism", "ireduct");
  report.SetRunField("rows", uint64_t{1000});
  report.SetRunField("epsilon", 0.25);
  report.SetErrors(w, published, 1.0);

  auto accountant = PrivacyAccountant::Create(1.0);
  ASSERT_TRUE(accountant.ok());
  ASSERT_TRUE(accountant->Charge("release", 0.25).ok());
  report.AttachLedger(*accountant);

  obs::MetricsRegistry registry;
  registry.counter("report.counter").Increment(5);
  report.AttachMetrics(registry);

  obs::EventLog events;
  events.Emit("report.event", {{"i", 1}});
  report.AttachEvents(events);

  const std::string json = report.ToJson();
  auto parsed = minijson::Parse(json);
  ASSERT_TRUE(parsed.has_value()) << json;

  const minijson::Value* run = parsed->Find("run");
  ASSERT_NE(run, nullptr);
  EXPECT_EQ(run->Find("mechanism")->text, "ireduct");
  EXPECT_DOUBLE_EQ(run->Find("rows")->number, 1000.0);
  EXPECT_DOUBLE_EQ(run->Find("epsilon")->number, 0.25);

  const minijson::Value* errors = parsed->Find("errors");
  ASSERT_NE(errors, nullptr);
  EXPECT_DOUBLE_EQ(errors->Find("queries")->number, 4.0);
  EXPECT_DOUBLE_EQ(errors->Find("overall_error")->number, 0.25);
  const minijson::Value* per_group = errors->Find("per_group");
  ASSERT_NE(per_group, nullptr);
  ASSERT_EQ(per_group->array.size(), 2u);
  EXPECT_EQ(per_group->array[0].Find("group")->text, "small");
  EXPECT_DOUBLE_EQ(per_group->array[0].Find("queries")->number, 2.0);
  EXPECT_DOUBLE_EQ(per_group->array[1].Find("max_relative_error")->number,
                   0.5);

  const minijson::Value* ledger = parsed->Find("ledger");
  ASSERT_NE(ledger, nullptr);
  EXPECT_DOUBLE_EQ(ledger->Find("budget")->number, 1.0);
  EXPECT_DOUBLE_EQ(ledger->Find("spent")->number, 0.25);
  ASSERT_EQ(ledger->Find("charges")->array.size(), 1u);

  const minijson::Value* metrics = parsed->Find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_DOUBLE_EQ(
      metrics->Find("counters")->Find("report.counter")->number, 5.0);

#if IREDUCT_ENABLE_TRACING
  const minijson::Value* evts = parsed->Find("events");
  ASSERT_NE(evts, nullptr);
  EXPECT_DOUBLE_EQ(evts->Find("summary")->Find("emitted")->number, 1.0);
  ASSERT_EQ(evts->Find("stream")->array.size(), 1u);
  EXPECT_EQ(evts->Find("stream")->array[0].Find("type")->text,
            "report.event");
  // Attaching copied, never drained.
  EXPECT_EQ(events.size(), 1u);
#endif
}

TEST(RunReportTest, TableListsEverySection) {
  const Workload w = TwoGroupWorkload();
  RunReport report("tabled");
  report.SetRunField("mechanism", "ireduct");
  const std::vector<double> published = {10, 20, 100, 200};
  report.SetErrors(w, published, 1.0);
  std::ostringstream os;
  report.PrintTable(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("tabled"), std::string::npos) << text;
  EXPECT_NE(text.find("mechanism"), std::string::npos);
  EXPECT_NE(text.find("overall"), std::string::npos);
}

TEST(RunReportTest, WriteFileRoundTrips) {
  const std::string path = testing::TempDir() + "/run_report.json";
  RunReport report("file");
  ASSERT_TRUE(report.WriteFile(path).ok());
  std::ifstream in(path, std::ios::binary);
  std::ostringstream read;
  read << in.rdbuf();
  EXPECT_EQ(read.str(), report.ToJson() + "\n");
  std::remove(path.c_str());
}

#if IREDUCT_ENABLE_TRACING
// The crash-safety contract: the report snapshots the event stream before
// any drain, so a drain that fails partway (fault-injected truncation)
// cannot corrupt an already-assembled report.
TEST(RunReportTest, PartiallyDrainedEventLogNeverCorruptsReport) {
  obs::EventLog events;
  for (int i = 0; i < 8; ++i) {
    events.Emit("crash.event", {{"i", i}});
  }
  RunReport report("crashy");
  report.AttachEvents(events);
  const std::string before = report.ToJson();

  const std::string path = testing::TempDir() + "/crashy_events.jsonl";
  std::remove(path.c_str());
  ASSERT_TRUE(FaultInjector::Global()
                  .Configure("event_log.write:truncate@1=10")
                  .ok());
  EXPECT_FALSE(events.WriteFile(path).ok());  // drain dies mid-write
  FaultInjector::Global().Reset();

  // The artifact on disk really is torn...
  std::ifstream in(path, std::ios::binary);
  std::ostringstream torn;
  torn << in.rdbuf();
  EXPECT_EQ(torn.str().size(), 10u);

  // ...but the report is byte-identical to the pre-crash one and every
  // event line inside it still parses.
  EXPECT_EQ(report.ToJson(), before);
  auto parsed = minijson::Parse(report.ToJson());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->Find("events")->Find("stream")->array.size(), 8u);
  std::remove(path.c_str());
}
#endif  // IREDUCT_ENABLE_TRACING

}  // namespace
}  // namespace ireduct
