#include "eval/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/random.h"

namespace ireduct {
namespace {

TEST(StatsTest, SummarizeBasics) {
  const std::vector<double> v{1, 2, 3, 4};
  const SampleSummary s = Summarize(v);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_NEAR(s.variance, 5.0 / 3, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.mean_abs_deviation, 1.0);
  EXPECT_DOUBLE_EQ(s.min, 1);
  EXPECT_DOUBLE_EQ(s.max, 4);
  EXPECT_EQ(s.count, 4u);
}

TEST(StatsTest, SummarizeSingleton) {
  const std::vector<double> v{7};
  const SampleSummary s = Summarize(v);
  EXPECT_DOUBLE_EQ(s.mean, 7);
  EXPECT_DOUBLE_EQ(s.variance, 0);
}

TEST(StatsTest, LaplaceCdfProperties) {
  EXPECT_DOUBLE_EQ(LaplaceCdf(0, 0, 1), 0.5);
  EXPECT_NEAR(LaplaceCdf(1, 0, 1), 1 - 0.5 * std::exp(-1), 1e-12);
  EXPECT_NEAR(LaplaceCdf(-1, 0, 1), 0.5 * std::exp(-1), 1e-12);
  EXPECT_LT(LaplaceCdf(-50, 0, 1), 1e-20);
  EXPECT_GE(LaplaceCdf(50, 0, 1), 1 - 1e-20);
}

TEST(StatsTest, KsStatisticDetectsWrongDistribution) {
  BitGen gen(1);
  std::vector<double> sample(20'000);
  for (double& x : sample) x = gen.Laplace(0.0, 1.0);
  const double ks_right =
      KsStatistic(sample, [](double x) { return LaplaceCdf(x, 0, 1); });
  const double ks_wrong =
      KsStatistic(sample, [](double x) { return LaplaceCdf(x, 0.5, 1); });
  EXPECT_LT(ks_right, 0.015);
  EXPECT_GT(ks_wrong, 0.1);
}

TEST(StatsTest, KsStatisticExactOnTinySample) {
  // Single point at the median of the reference: D = 1/2.
  const std::vector<double> v{0.0};
  EXPECT_DOUBLE_EQ(
      KsStatistic(v, [](double x) { return LaplaceCdf(x, 0, 1); }), 0.5);
}

TEST(StatsTest, MaxLogFrequencyRatioSeesLaplaceShift) {
  // Lap(0,1) vs Lap(1,1) have log-density ratio up to 1; the empirical
  // probe should land near 1 and never wildly above.
  BitGen ga(2), gb(3);
  const double ratio = MaxLogFrequencyRatio(
      [&] { return ga.Laplace(0.0, 1.0); },
      [&] { return gb.Laplace(1.0, 1.0); }, 400'000, -4, 5, 30, 200);
  EXPECT_GT(ratio, 0.5);
  EXPECT_LT(ratio, 1.35);
}

TEST(StatsTest, MaxLogFrequencyRatioNearZeroForIdenticalMechanisms) {
  BitGen ga(4), gb(5);
  const double ratio = MaxLogFrequencyRatio(
      [&] { return ga.Laplace(0.0, 1.0); },
      [&] { return gb.Laplace(0.0, 1.0); }, 200'000, -4, 4, 20, 200);
  EXPECT_LT(ratio, 0.2);
}

}  // namespace
}  // namespace ireduct
