#include "eval/experiment.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <mutex>
#include <set>

#include "common/random.h"

namespace ireduct {
namespace {

TEST(ExperimentTest, RunTrialsAggregates) {
  int calls = 0;
  const TrialAggregate agg = RunTrials(5, 1, [&](uint64_t) {
    return static_cast<double>(++calls);  // 1..5
  });
  EXPECT_EQ(calls, 5);
  EXPECT_EQ(agg.trials, 5);
  EXPECT_DOUBLE_EQ(agg.mean, 3.0);
  EXPECT_NEAR(agg.stddev, std::sqrt(2.5), 1e-12);
}

TEST(ExperimentTest, SeedsAreDistinctAndDeterministic) {
  std::set<uint64_t> seeds_a, seeds_b;
  RunTrials(8, 42, [&](uint64_t s) {
    seeds_a.insert(s);
    return 0.0;
  });
  RunTrials(8, 42, [&](uint64_t s) {
    seeds_b.insert(s);
    return 0.0;
  });
  EXPECT_EQ(seeds_a.size(), 8u);
  EXPECT_EQ(seeds_a, seeds_b);
}

// A deterministic, thread-safe trial: a few PRNG draws folded together,
// so any scheduling difference in a parallel run would be visible.
double SyntheticTrial(uint64_t seed) {
  BitGen gen(seed);
  double v = 0;
  for (int i = 0; i < 16; ++i) v += gen.Laplace(1.0 + i);
  return v;
}

TEST(ExperimentTest, ParallelAggregateIsBitIdenticalToSequential) {
  for (const uint64_t base_seed : {1ull, 42ull, 1000ull}) {
    TrialOptions sequential;
    sequential.num_threads = 1;
    const TrialAggregate ref =
        RunTrials(9, base_seed, SyntheticTrial, sequential);
    for (const int threads : {2, 8}) {
      TrialOptions parallel;
      parallel.num_threads = threads;
      const TrialAggregate agg =
          RunTrials(9, base_seed, SyntheticTrial, parallel);
      EXPECT_EQ(agg.mean, ref.mean)
          << "base_seed " << base_seed << " threads " << threads;
      EXPECT_EQ(agg.stddev, ref.stddev)
          << "base_seed " << base_seed << " threads " << threads;
      EXPECT_EQ(agg.trials, ref.trials);
    }
  }
}

TEST(ExperimentTest, ParallelSeedsMatchSequentialSeeds) {
  std::set<uint64_t> sequential_seeds;
  TrialOptions opts;
  opts.num_threads = 1;
  RunTrials(8, 42, [&](uint64_t s) {
    sequential_seeds.insert(s);
    return 0.0;
  }, opts);
  std::mutex mu;
  std::set<uint64_t> parallel_seeds;
  opts.num_threads = 4;
  RunTrials(8, 42, [&](uint64_t s) {
    std::lock_guard<std::mutex> lock(mu);
    parallel_seeds.insert(s);
    return 0.0;
  }, opts);
  EXPECT_EQ(parallel_seeds, sequential_seeds);
}

TEST(ExperimentTest, ThreadsEnvKnobIsHonored) {
  TrialOptions sequential;
  sequential.num_threads = 1;
  const TrialAggregate ref = RunTrials(5, 7, SyntheticTrial, sequential);
  setenv("IREDUCT_THREADS", "4", 1);
  const TrialAggregate agg = RunTrials(5, 7, SyntheticTrial);
  unsetenv("IREDUCT_THREADS");
  EXPECT_EQ(agg.mean, ref.mean);
  EXPECT_EQ(agg.stddev, ref.stddev);
}

TEST(ExperimentTest, MoreThreadsThanTrialsIsFine) {
  TrialOptions opts;
  opts.num_threads = 16;
  const TrialAggregate agg = RunTrials(2, 3, SyntheticTrial, opts);
  TrialOptions sequential;
  sequential.num_threads = 1;
  const TrialAggregate ref = RunTrials(2, 3, SyntheticTrial, sequential);
  EXPECT_EQ(agg.mean, ref.mean);
  EXPECT_EQ(agg.stddev, ref.stddev);
}

TEST(ExperimentTest, EnvInt64FallsBackWhenUnsetOrInvalid) {
  unsetenv("IREDUCT_TEST_ENV");
  EXPECT_EQ(EnvInt64("IREDUCT_TEST_ENV", 7), 7);
  setenv("IREDUCT_TEST_ENV", "not a number", 1);
  EXPECT_EQ(EnvInt64("IREDUCT_TEST_ENV", 7), 7);
  setenv("IREDUCT_TEST_ENV", "-3", 1);
  EXPECT_EQ(EnvInt64("IREDUCT_TEST_ENV", 7), 7);
  setenv("IREDUCT_TEST_ENV", "123", 1);
  EXPECT_EQ(EnvInt64("IREDUCT_TEST_ENV", 7), 123);
  unsetenv("IREDUCT_TEST_ENV");
}

}  // namespace
}  // namespace ireduct
