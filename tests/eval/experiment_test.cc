#include "eval/experiment.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <set>

namespace ireduct {
namespace {

TEST(ExperimentTest, RunTrialsAggregates) {
  int calls = 0;
  const TrialAggregate agg = RunTrials(5, 1, [&](uint64_t) {
    return static_cast<double>(++calls);  // 1..5
  });
  EXPECT_EQ(calls, 5);
  EXPECT_EQ(agg.trials, 5);
  EXPECT_DOUBLE_EQ(agg.mean, 3.0);
  EXPECT_NEAR(agg.stddev, std::sqrt(2.5), 1e-12);
}

TEST(ExperimentTest, SeedsAreDistinctAndDeterministic) {
  std::set<uint64_t> seeds_a, seeds_b;
  RunTrials(8, 42, [&](uint64_t s) {
    seeds_a.insert(s);
    return 0.0;
  });
  RunTrials(8, 42, [&](uint64_t s) {
    seeds_b.insert(s);
    return 0.0;
  });
  EXPECT_EQ(seeds_a.size(), 8u);
  EXPECT_EQ(seeds_a, seeds_b);
}

TEST(ExperimentTest, EnvInt64FallsBackWhenUnsetOrInvalid) {
  unsetenv("IREDUCT_TEST_ENV");
  EXPECT_EQ(EnvInt64("IREDUCT_TEST_ENV", 7), 7);
  setenv("IREDUCT_TEST_ENV", "not a number", 1);
  EXPECT_EQ(EnvInt64("IREDUCT_TEST_ENV", 7), 7);
  setenv("IREDUCT_TEST_ENV", "-3", 1);
  EXPECT_EQ(EnvInt64("IREDUCT_TEST_ENV", 7), 7);
  setenv("IREDUCT_TEST_ENV", "123", 1);
  EXPECT_EQ(EnvInt64("IREDUCT_TEST_ENV", 7), 123);
  unsetenv("IREDUCT_TEST_ENV");
}

}  // namespace
}  // namespace ireduct
