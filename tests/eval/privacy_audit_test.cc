#include "eval/privacy_audit.h"

#include <gtest/gtest.h>

#include <cmath>

#include "algorithms/dwork.h"
#include "algorithms/proportional.h"
#include "common/random.h"
#include "dp/workload.h"

namespace ireduct {
namespace {

TEST(PrivacyAuditTest, ValidatesOptions) {
  auto zero = [] { return 0.0; };
  AuditOptions options;
  options.trials = 0;
  EXPECT_FALSE(AuditMechanismPair(zero, zero, options).ok());
  options = AuditOptions{};
  options.hi = options.lo;
  EXPECT_FALSE(AuditMechanismPair(zero, zero, options).ok());
}

TEST(PrivacyAuditTest, DworkRespectsItsBudget) {
  // Two neighboring single-query datasets: counts 10 vs 11, ε = 0.5.
  // Dwork publishes q + Lap(S/ε) with S = 1, so the true per-output ratio
  // bound is exactly ε.
  const double epsilon = 0.5;
  auto w1 = Workload::PerQuery({10});
  auto w2 = Workload::PerQuery({11});
  ASSERT_TRUE(w1.ok() && w2.ok());
  BitGen g1(1), g2(2);
  auto run = [&](const Workload& w, BitGen& gen) {
    auto out = RunDwork(w, DworkParams{epsilon}, gen);
    EXPECT_TRUE(out.ok());
    return out->answers[0];
  };
  AuditOptions options;
  options.lo = 0;
  options.hi = 21;
  options.bins = 30;
  auto report = AuditMechanismPair([&] { return run(*w1, g1); },
                                   [&] { return run(*w2, g2); }, options);
  ASSERT_TRUE(report.ok());
  // Lower bound must not exceed ε (plus sampling slack) and should come
  // close to it: the ratio is tight in the tails.
  EXPECT_LT(report->epsilon_lower_bound, epsilon * 1.5);
  EXPECT_GT(report->epsilon_lower_bound, epsilon * 0.5);
}

TEST(PrivacyAuditTest, HigherBudgetLeaksProportionallyMore) {
  auto w1 = Workload::PerQuery({10});
  auto w2 = Workload::PerQuery({11});
  ASSERT_TRUE(w1.ok() && w2.ok());
  auto audit_at = [&](double epsilon, uint64_t seed) {
    BitGen g1(seed), g2(seed + 1);
    AuditOptions options;
    options.lo = 4;
    options.hi = 17;
    options.bins = 26;
    auto report = AuditMechanismPair(
        [&] {
          auto out = RunDwork(*w1, DworkParams{epsilon}, g1);
          return out->answers[0];
        },
        [&] {
          auto out = RunDwork(*w2, DworkParams{epsilon}, g2);
          return out->answers[0];
        },
        options);
    EXPECT_TRUE(report.ok());
    return report->epsilon_lower_bound;
  };
  const double leak_small = audit_at(0.5, 10);
  const double leak_big = audit_at(1.5, 20);
  EXPECT_GT(leak_big, 1.8 * leak_small);
}

TEST(PrivacyAuditTest, ProportionalViolationIsCaughtEmpirically) {
  // The paper's Example 1: on neighboring datasets with q answers (2, 5)
  // vs (1, 5) at nominal ε = 1, Proportional assigns q1 scales 1.4 vs 1.2.
  // The analytic log density ratio diverges in the tails (the paper
  // evaluates it at output 102)...
  auto log_ratio = [](double y) {
    const double log_p1 = -std::log(2 * 1.4) - std::fabs(y - 2) / 1.4;
    const double log_p2 = -std::log(2 * 1.2) - std::fabs(y - 1) / 1.2;
    return std::fabs(log_p1 - log_p2);
  };
  EXPECT_GT(log_ratio(102), 10.0);   // the paper's own output choice
  EXPECT_GT(log_ratio(-100), 10.0);
  EXPECT_GT(log_ratio(1000), log_ratio(100));  // diverging, not capped

  // ...and the violation is already visible a few scales to the right of
  // the means (ratio > 1 around y ≈ 6.5 with ~1% output probability), so
  // the empirical audit catches Proportional red-handed.
  BitGen g1(30), g2(31);
  auto w1 = Workload::PerQuery({2, 5});
  auto w2 = Workload::PerQuery({1, 5});
  ASSERT_TRUE(w1.ok() && w2.ok());
  AuditOptions options;
  options.lo = -4;
  options.hi = 7;
  options.bins = 22;
  auto report = AuditMechanismPair(
      [&] {
        auto out = RunProportional(*w1, ProportionalParams{1.0, 1.0}, g1);
        return out->answers[0];
      },
      [&] {
        auto out = RunProportional(*w2, ProportionalParams{1.0, 1.0}, g2);
        return out->answers[0];
      },
      options);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->epsilon_lower_bound, 1.05);
}

}  // namespace
}  // namespace ireduct
