#include "eval/sanity_bounds.h"

#include <gtest/gtest.h>

#include <vector>

#include "algorithms/selection.h"
#include "eval/metrics.h"

namespace ireduct {
namespace {

TEST(SanityBoundsTest, UniformValidatesAndEvaluates) {
  EXPECT_FALSE(SanityBounds::Uniform(0).ok());
  EXPECT_FALSE(SanityBounds::Uniform(-1).ok());
  auto bounds = SanityBounds::Uniform(5.0);
  ASSERT_TRUE(bounds.ok());
  EXPECT_TRUE(bounds->is_uniform());
  EXPECT_DOUBLE_EQ(bounds->at(0), 5.0);
  EXPECT_DOUBLE_EQ(bounds->at(99), 5.0);
}

TEST(SanityBoundsTest, PerQueryValidatesAndEvaluates) {
  EXPECT_FALSE(SanityBounds::PerQuery({}).ok());
  EXPECT_FALSE(SanityBounds::PerQuery({1.0, 0.0}).ok());
  auto bounds = SanityBounds::PerQuery({1.0, 10.0, 100.0});
  ASSERT_TRUE(bounds.ok());
  EXPECT_FALSE(bounds->is_uniform());
  EXPECT_EQ(bounds->size(), 3u);
  EXPECT_DOUBLE_EQ(bounds->at(1), 10.0);
}

TEST(SanityBoundsTest, OverallErrorUniformMatchesScalarOverload) {
  auto w = Workload::PerQuery({10, 100});
  ASSERT_TRUE(w.ok());
  const std::vector<double> published{15, 90};
  auto bounds = SanityBounds::Uniform(2.0);
  ASSERT_TRUE(bounds.ok());
  EXPECT_DOUBLE_EQ(OverallError(*w, published, *bounds),
                   OverallError(*w, published, 2.0));
}

TEST(SanityBoundsTest, PerQueryBoundsChangeTheMetric) {
  // A query with a generous sanity bound tolerates absolute noise that a
  // strict one does not.
  auto w = Workload::PerQuery({0, 0});
  ASSERT_TRUE(w.ok());
  const std::vector<double> published{5, 5};
  auto bounds = SanityBounds::PerQuery({1.0, 100.0});
  ASSERT_TRUE(bounds.ok());
  // Query 0: 5/1 = 5; query 1: 5/100 = 0.05; mean = 2.525.
  EXPECT_NEAR(OverallError(*w, published, *bounds), 2.525, 1e-12);
}

TEST(SanityBoundsTest, ErrorOptimalScalesRespectPerQueryBounds) {
  // Both groups have the same tiny answers; only the bounds differ. The
  // generously-bounded group tolerates more noise, so it must get the
  // larger scale.
  auto w = Workload::Create(
      {0, 0, 0, 0},
      {QueryGroup{"strict", 0, 2, 1.0}, QueryGroup{"loose", 2, 4, 1.0}});
  ASSERT_TRUE(w.ok());
  auto bounds = SanityBounds::PerQuery({1.0, 1.0, 100.0, 100.0});
  ASSERT_TRUE(bounds.ok());
  auto scales = ErrorOptimalScales(*w, w->true_answers(), *bounds, 1.0);
  ASSERT_TRUE(scales.ok());
  EXPECT_GT((*scales)[1], (*scales)[0]);
  // λ ∝ sqrt(max{v, δ}): ratio sqrt(100/1) = 10.
  EXPECT_NEAR((*scales)[1] / (*scales)[0], 10.0, 1e-9);
  EXPECT_NEAR(w->GeneralizedSensitivity(*scales), 1.0, 1e-12);
}

TEST(SanityBoundsTest, ErrorOptimalScalesValidateSize) {
  auto w = Workload::PerQuery({1, 2});
  ASSERT_TRUE(w.ok());
  auto bounds = SanityBounds::PerQuery({1.0});
  ASSERT_TRUE(bounds.ok());
  EXPECT_FALSE(
      ErrorOptimalScales(*w, w->true_answers(), *bounds, 1.0).ok());
}

}  // namespace
}  // namespace ireduct
