// Metric invariants over randomized workloads: Definition 6's averaging
// structure, monotonicity in the sanity bound, invariance under exact
// answers, and the relationship between the overall, max and absolute
// error metrics.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/random.h"
#include "eval/metrics.h"

namespace ireduct {
namespace {

class MetricsPropertyTest : public testing::TestWithParam<uint64_t> {
 protected:
  Workload RandomWorkload(BitGen& gen) {
    const size_t groups = 1 + gen.UniformInt(6);
    std::vector<QueryGroup> group_list;
    std::vector<double> answers;
    uint32_t offset = 0;
    for (size_t g = 0; g < groups; ++g) {
      const uint32_t size = 1 + static_cast<uint32_t>(gen.UniformInt(8));
      for (uint32_t i = 0; i < size; ++i) {
        answers.push_back(gen.Uniform(0, 5000));
      }
      group_list.push_back(
          QueryGroup{"g", offset, offset + size, 1.0});
      offset += size;
    }
    auto w = Workload::Create(std::move(answers), std::move(group_list));
    EXPECT_TRUE(w.ok());
    return std::move(w).value();
  }

  std::vector<double> NoisyAnswers(const Workload& w, BitGen& gen) {
    std::vector<double> noisy(w.true_answers().begin(),
                              w.true_answers().end());
    for (double& a : noisy) a += gen.Laplace(30.0);
    return noisy;
  }
};

TEST_P(MetricsPropertyTest, ExactAnswersScoreZero) {
  BitGen gen(GetParam());
  const Workload w = RandomWorkload(gen);
  const std::vector<double> exact(w.true_answers().begin(),
                                  w.true_answers().end());
  EXPECT_DOUBLE_EQ(OverallError(w, exact, 7.0), 0.0);
  EXPECT_DOUBLE_EQ(MaxRelativeError(w, exact, 7.0), 0.0);
  EXPECT_DOUBLE_EQ(MeanAbsoluteError(w, exact), 0.0);
}

TEST_P(MetricsPropertyTest, OverallErrorDecreasesInDelta) {
  BitGen gen(GetParam() + 1);
  const Workload w = RandomWorkload(gen);
  const std::vector<double> noisy = NoisyAnswers(w, gen);
  double prev = OverallError(w, noisy, 0.5);
  for (double delta : {5.0, 50.0, 500.0, 5000.0}) {
    const double err = OverallError(w, noisy, delta);
    EXPECT_LE(err, prev * (1 + 1e-12)) << "delta " << delta;
    prev = err;
  }
}

TEST_P(MetricsPropertyTest, MaxDominatesOverall) {
  BitGen gen(GetParam() + 2);
  const Workload w = RandomWorkload(gen);
  const std::vector<double> noisy = NoisyAnswers(w, gen);
  EXPECT_GE(MaxRelativeError(w, noisy, 10.0) * (1 + 1e-12),
            OverallError(w, noisy, 10.0));
}

TEST_P(MetricsPropertyTest, OverallErrorMatchesManualDefinitionSix) {
  BitGen gen(GetParam() + 3);
  const Workload w = RandomWorkload(gen);
  const std::vector<double> noisy = NoisyAnswers(w, gen);
  const double delta = 12.0;
  double manual = 0;
  for (const QueryGroup& g : w.groups()) {
    double in_group = 0;
    for (uint32_t i = g.begin; i < g.end; ++i) {
      in_group += std::fabs(noisy[i] - w.true_answer(i)) /
                  std::fmax(w.true_answer(i), delta);
    }
    manual += in_group / g.size();
  }
  manual /= w.num_groups();
  EXPECT_NEAR(OverallError(w, noisy, delta), manual, 1e-12);
}

TEST_P(MetricsPropertyTest, UniformBoundsOverloadAgrees) {
  BitGen gen(GetParam() + 4);
  const Workload w = RandomWorkload(gen);
  const std::vector<double> noisy = NoisyAnswers(w, gen);
  auto bounds = SanityBounds::Uniform(9.0);
  ASSERT_TRUE(bounds.ok());
  EXPECT_DOUBLE_EQ(OverallError(w, noisy, *bounds),
                   OverallError(w, noisy, 9.0));
}

TEST_P(MetricsPropertyTest, LargerDeviationNeverReducesAnyMetric) {
  // Doubling every deviation doubles the relative metrics exactly.
  BitGen gen(GetParam() + 5);
  const Workload w = RandomWorkload(gen);
  const std::vector<double> noisy = NoisyAnswers(w, gen);
  std::vector<double> doubled(noisy.size());
  for (size_t i = 0; i < noisy.size(); ++i) {
    doubled[i] = w.true_answer(i) + 2 * (noisy[i] - w.true_answer(i));
  }
  EXPECT_NEAR(OverallError(w, doubled, 10.0),
              2 * OverallError(w, noisy, 10.0), 1e-9);
  EXPECT_NEAR(MeanAbsoluteError(w, doubled),
              2 * MeanAbsoluteError(w, noisy), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricsPropertyTest,
                         testing::Values(5u, 19u, 333u, 8080u));

}  // namespace
}  // namespace ireduct
