#include "eval/metrics.h"

#include <gtest/gtest.h>

#include <vector>

namespace ireduct {
namespace {

TEST(MetricsTest, RelativeErrorBasics) {
  EXPECT_DOUBLE_EQ(RelativeError(110, 100, 1.0), 0.1);
  EXPECT_DOUBLE_EQ(RelativeError(90, 100, 1.0), 0.1);
  EXPECT_DOUBLE_EQ(RelativeError(100, 100, 1.0), 0.0);
}

TEST(MetricsTest, SanityBoundCapsSmallDenominators) {
  // Equation 1: err = |r* - r| / max{r, δ}.
  EXPECT_DOUBLE_EQ(RelativeError(5, 0, 10.0), 0.5);
  EXPECT_DOUBLE_EQ(RelativeError(5, 2, 10.0), 0.3);
  // Negative true answers also clamp to δ.
  EXPECT_DOUBLE_EQ(RelativeError(5, -20, 10.0), 2.5);
}

TEST(MetricsTest, OverallErrorAveragesPerGroupMeans) {
  // Definition 6: mean over groups of within-group mean relative error.
  auto w = Workload::Create(
      {10, 10, 100},
      {QueryGroup{"A", 0, 2, 1.0}, QueryGroup{"B", 2, 3, 1.0}});
  ASSERT_TRUE(w.ok());
  const std::vector<double> published{11, 12, 150};
  // Group A: (0.1 + 0.2)/2 = 0.15; group B: 0.5; overall (0.15+0.5)/2.
  EXPECT_NEAR(OverallError(*w, published, 1.0), 0.325, 1e-12);
}

TEST(MetricsTest, OverallErrorZeroForExactAnswers) {
  auto w = Workload::PerQuery({5, 10, 20});
  ASSERT_TRUE(w.ok());
  const std::vector<double> exact{5, 10, 20};
  EXPECT_DOUBLE_EQ(OverallError(*w, exact, 1.0), 0.0);
}

TEST(MetricsTest, MaxRelativeErrorPicksWorstQuery) {
  auto w = Workload::PerQuery({10, 100});
  ASSERT_TRUE(w.ok());
  const std::vector<double> published{15, 101};
  EXPECT_DOUBLE_EQ(MaxRelativeError(*w, published, 1.0), 0.5);
}

TEST(MetricsTest, MeanAbsoluteError) {
  auto w = Workload::PerQuery({10, 100});
  ASSERT_TRUE(w.ok());
  const std::vector<double> published{12, 96};
  EXPECT_DOUBLE_EQ(MeanAbsoluteError(*w, published), 3.0);
}

}  // namespace
}  // namespace ireduct
