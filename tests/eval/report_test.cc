#include "eval/report.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "algorithms/dwork.h"
#include "common/random.h"

namespace ireduct {
namespace {

Schema TwoAttrSchema() {
  auto s = Schema::Create({{"Age", 3}, {"Gender", 2}});
  EXPECT_TRUE(s.ok());
  return std::move(s).value();
}

TEST(ReportTest, MarginalCsvLayout) {
  const Schema schema = TwoAttrSchema();
  auto m = Marginal::FromCounts(MarginalSpec{{0, 1}}, {3, 2},
                                {1, 2, 3, 4, 5, 6});
  ASSERT_TRUE(m.ok());
  std::ostringstream out;
  ASSERT_TRUE(WriteMarginalCsv(*m, schema, out).ok());
  const std::string csv = out.str();
  EXPECT_NE(csv.find("Age,Gender,count\n"), std::string::npos);
  EXPECT_NE(csv.find("0,0,1\n"), std::string::npos);
  EXPECT_NE(csv.find("2,1,6\n"), std::string::npos);
  // 1 header + 6 cells.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 7);
}

TEST(ReportTest, MarginalCsvValidatesSchema) {
  auto tiny = Schema::Create({{"OnlyOne", 2}});
  ASSERT_TRUE(tiny.ok());
  auto m = Marginal::FromCounts(MarginalSpec{{0, 1}}, {2, 2}, {1, 2, 3, 4});
  ASSERT_TRUE(m.ok());
  std::ostringstream out;
  EXPECT_FALSE(WriteMarginalCsv(*m, *tiny, out).ok());
}

TEST(ReportTest, MarginalsCsvWritesFiles) {
  const Schema schema = TwoAttrSchema();
  std::vector<Marginal> marginals;
  auto m1 = Marginal::FromCounts(MarginalSpec{{0}}, {3}, {1, 2, 3});
  auto m2 = Marginal::FromCounts(MarginalSpec{{1}}, {2}, {4, 5});
  ASSERT_TRUE(m1.ok() && m2.ok());
  marginals.push_back(std::move(*m1));
  marginals.push_back(std::move(*m2));
  const std::string dir = testing::TempDir();
  ASSERT_TRUE(
      WriteMarginalsCsv(marginals, schema, dir, "report_test").ok());
  for (int i = 0; i < 2; ++i) {
    const std::string path =
        dir + "/report_test_" + std::to_string(i) + ".csv";
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::remove(path.c_str());
  }
}

TEST(ReportTest, AnswersCsvIncludesIntervals) {
  auto w = Workload::PerQuery({100, 200});
  ASSERT_TRUE(w.ok());
  BitGen gen(1);
  auto out = RunDwork(*w, DworkParams{1.0}, gen);
  ASSERT_TRUE(out.ok());
  std::ostringstream csv;
  ASSERT_TRUE(WriteAnswersCsv(*w, *out, 0.95, csv).ok());
  const std::string text = csv.str();
  EXPECT_NE(text.find("query_index,group,answer,noise_scale,ci_lo,ci_hi"),
            std::string::npos);
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 3);
}

TEST(ReportTest, ComparisonRowsAndCsv) {
  auto w = Workload::PerQuery({10, 1000});
  ASSERT_TRUE(w.ok());
  MechanismOutput out;
  out.answers = {12, 990};
  out.group_scales = {2, 2};
  out.epsilon_spent = 0.7;
  const ComparisonRow row = Evaluate("test", *w, out, 1.0);
  EXPECT_EQ(row.mechanism, "test");
  EXPECT_NEAR(row.overall_error, (0.2 + 0.01) / 2, 1e-12);
  EXPECT_NEAR(row.max_relative_error, 0.2, 1e-12);
  EXPECT_NEAR(row.mean_absolute_error, 6.0, 1e-12);
  EXPECT_DOUBLE_EQ(row.epsilon_spent, 0.7);

  std::ostringstream csv;
  ASSERT_TRUE(WriteComparisonCsv({row}, csv).ok());
  EXPECT_NE(csv.str().find("test,0.105,0.2,6,0.7"), std::string::npos);
}

}  // namespace
}  // namespace ireduct
