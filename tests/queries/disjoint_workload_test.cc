// Exact-sensitivity histogram workloads (custom GS functions on Workload).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "algorithms/dwork.h"
#include "algorithms/ireduct.h"
#include "eval/metrics.h"
#include "queries/range_workload.h"

namespace ireduct {
namespace {

const std::vector<double> kHistogram{500, 300, 100, 50, 20, 10, 5, 1};

TEST(DisjointWorkloadTest, Validates) {
  EXPECT_FALSE(DisjointHistogramWorkload({}, 1).ok());
  EXPECT_FALSE(DisjointHistogramWorkload(kHistogram, 0).ok());
}

TEST(DisjointWorkloadTest, ExactSensitivityIsTwoOverMinScale) {
  auto w = DisjointHistogramWorkload(kHistogram, 2);
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w->num_groups(), 4u);
  // GS = 2/min λ, NOT Σ 2/λ.
  const std::vector<double> scales{10, 20, 5, 40};
  EXPECT_DOUBLE_EQ(w->GeneralizedSensitivity(scales), 2.0 / 5);
  // Sensitivity (unit scales) = 2, independent of group count.
  EXPECT_DOUBLE_EQ(w->Sensitivity(), 2.0);
  auto flat = DisjointHistogramWorkload(kHistogram, 1);
  ASSERT_TRUE(flat.ok());
  EXPECT_DOUBLE_EQ(flat->Sensitivity(), 2.0);
}

TEST(DisjointWorkloadTest, NonPositiveScaleStillInfinite) {
  auto w = DisjointHistogramWorkload(kHistogram, 4);
  ASSERT_TRUE(w.ok());
  EXPECT_TRUE(std::isinf(w->GeneralizedSensitivity({1.0, 0.0})));
}

TEST(DisjointWorkloadTest, DworkUsesTheExactSensitivity) {
  // With the exact model, Dwork's uniform scale is S/ε = 2/ε — 8× less
  // noise than the additive per-bin modeling would charge here.
  auto w = DisjointHistogramWorkload(kHistogram, 1);
  ASSERT_TRUE(w.ok());
  BitGen gen(1);
  auto out = RunDwork(*w, DworkParams{0.5}, gen);
  ASSERT_TRUE(out.ok());
  EXPECT_DOUBLE_EQ(out->group_scales[0], 4.0);  // 2/0.5
}

TEST(DisjointWorkloadTest, CustomFnRequiredToBeSet) {
  EXPECT_FALSE(
      Workload::CreateWithSensitivityFn({1.0}, {QueryGroup{"g", 0, 1, 1.0}},
                                        nullptr)
          .ok());
}

TEST(DisjointWorkloadTest, IReductRespectsExactBudget) {
  // iReduct's GS checks go through the custom function: the final
  // allocation must satisfy 2/min λ <= ε (all groups can descend to the
  // uniform floor 2/ε together, since only the minimum scale costs).
  auto w = DisjointHistogramWorkload(kHistogram, 2);
  ASSERT_TRUE(w.ok());
  IReductParams p;
  p.epsilon = 0.5;
  p.delta = 2.0;
  p.lambda_max = 100;
  p.lambda_delta = 1;
  BitGen gen(2);
  auto out = RunIReduct(*w, p, gen);
  ASSERT_TRUE(out.ok());
  EXPECT_LE(w->GeneralizedSensitivity(out->group_scales),
            p.epsilon * (1 + 1e-12));
  // Every group should have walked essentially to the uniform floor 2/ε
  // (= 4), because reductions above the minimum are budget-free.
  for (double s : out->group_scales) {
    EXPECT_LE(s, 4.0 + p.lambda_delta + 1e-9);
  }
  // Accuracy follows: with λ ≈ 4 everywhere, even mid-size bins resolve.
  EXPECT_LT(OverallError(*w, out->answers, 2.0), 1.0);
}

}  // namespace
}  // namespace ireduct
