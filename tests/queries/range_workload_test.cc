#include "queries/range_workload.h"

#include <gtest/gtest.h>

#include <vector>

namespace ireduct {
namespace {

const std::vector<double> kHistogram{10, 20, 30, 40, 50};

TEST(RangeWorkloadTest, RangeCountAnswerBasics) {
  auto full = RangeCountAnswer(kHistogram, BinRange{0, 4});
  ASSERT_TRUE(full.ok());
  EXPECT_DOUBLE_EQ(*full, 150);
  auto point = RangeCountAnswer(kHistogram, BinRange{2, 2});
  ASSERT_TRUE(point.ok());
  EXPECT_DOUBLE_EQ(*point, 30);
  auto mid = RangeCountAnswer(kHistogram, BinRange{1, 3});
  ASSERT_TRUE(mid.ok());
  EXPECT_DOUBLE_EQ(*mid, 90);
}

TEST(RangeWorkloadTest, RangeCountAnswerValidates) {
  EXPECT_FALSE(RangeCountAnswer(kHistogram, BinRange{3, 2}).ok());
  EXPECT_FALSE(RangeCountAnswer(kHistogram, BinRange{0, 5}).ok());
}

TEST(RangeWorkloadTest, BuildsPerQueryWorkload) {
  const std::vector<BinRange> ranges{{0, 1}, {2, 4}, {0, 4}};
  auto w = BuildRangeWorkload(kHistogram, ranges);
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w->num_queries(), 3u);
  EXPECT_EQ(w->num_groups(), 3u);
  EXPECT_DOUBLE_EQ(w->true_answer(0), 30);
  EXPECT_DOUBLE_EQ(w->true_answer(1), 120);
  EXPECT_DOUBLE_EQ(w->true_answer(2), 150);
  // Exact column bound: no bin is covered by more than two of the three
  // ranges, so GS at uniform λ is 2/λ (the additive bound said 3/λ).
  const std::vector<double> scales{10, 10, 10};
  EXPECT_DOUBLE_EQ(w->GeneralizedSensitivity(scales), 0.2);
  auto additive =
      BuildRangeWorkload(kHistogram, ranges, RangeSensitivity::kAdditive);
  ASSERT_TRUE(additive.ok());
  EXPECT_DOUBLE_EQ(additive->GeneralizedSensitivity(scales), 0.3);
}

TEST(RangeWorkloadTest, LinearViewMatchesRangeAnswers) {
  const std::vector<BinRange> ranges{{0, 1}, {2, 4}, {0, 4}};
  auto lw = RangeLinearWorkload(kHistogram, ranges);
  ASSERT_TRUE(lw.ok());
  EXPECT_EQ(lw->num_queries(), 3u);
  EXPECT_EQ(lw->domain_size(), 5u);
  EXPECT_EQ(lw->neighbor_model(), NeighborModel::kAddRemove);
  const std::vector<double> answers = lw->Answers();
  for (size_t i = 0; i < ranges.size(); ++i) {
    auto direct = RangeCountAnswer(kHistogram, ranges[i]);
    ASSERT_TRUE(direct.ok());
    EXPECT_DOUBLE_EQ(answers[i], *direct) << "range " << i;
  }
  // BuildRangeWorkload attaches the same view for strategy mechanisms.
  auto w = BuildRangeWorkload(kHistogram, ranges);
  ASSERT_TRUE(w.ok());
  ASSERT_NE(w->linear(), nullptr);
  EXPECT_EQ(w->linear()->domain_size(), 5u);
}

TEST(RangeWorkloadTest, SlidingWindowRangesWrapAndClamp) {
  const std::vector<BinRange> windows = SlidingWindowRanges(8, 3, 10);
  ASSERT_EQ(windows.size(), 10u);
  for (size_t i = 0; i < windows.size(); ++i) {
    EXPECT_EQ(windows[i].lo, i % 6) << i;  // 6 = 8 - 3 + 1 start positions
    EXPECT_EQ(windows[i].hi, windows[i].lo + 2) << i;
  }
  // Width wider than the domain clamps to the full range.
  const std::vector<BinRange> wide = SlidingWindowRanges(4, 9, 2);
  ASSERT_EQ(wide.size(), 2u);
  EXPECT_EQ(wide[0].lo, 0u);
  EXPECT_EQ(wide[0].hi, 3u);
}

TEST(RangeWorkloadTest, BuildRejectsEmptyAndInvalid) {
  EXPECT_FALSE(BuildRangeWorkload(kHistogram, {}).ok());
  const std::vector<BinRange> bad{{0, 9}};
  EXPECT_FALSE(BuildRangeWorkload(kHistogram, bad).ok());
}

TEST(RangeWorkloadTest, PrefixRangesCoverAllPrefixes) {
  const std::vector<BinRange> prefixes = PrefixRanges(4);
  ASSERT_EQ(prefixes.size(), 4u);
  for (uint32_t b = 0; b < 4; ++b) {
    EXPECT_EQ(prefixes[b].lo, 0u);
    EXPECT_EQ(prefixes[b].hi, b);
  }
}

TEST(RangeWorkloadTest, RandomRangesAreValidAndDiverse) {
  BitGen gen(1);
  const std::vector<BinRange> ranges = RandomRanges(128, 200, gen);
  ASSERT_EQ(ranges.size(), 200u);
  size_t narrow = 0, wide = 0;
  for (const BinRange& r : ranges) {
    ASSERT_LE(r.lo, r.hi);
    ASSERT_LT(r.hi, 128u);
    narrow += (r.hi - r.lo) < 4;
    wide += (r.hi - r.lo) > 32;
  }
  EXPECT_GT(narrow, 20u);
  EXPECT_GT(wide, 20u);
}

}  // namespace
}  // namespace ireduct
