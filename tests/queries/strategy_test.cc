#include "queries/strategy.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/random.h"
#include "queries/linear_workload.h"
#include "queries/range_workload.h"

namespace ireduct {
namespace {

std::vector<double> RandomHistogram(size_t n, BitGen& gen) {
  std::vector<double> x(n);
  for (double& v : x) v = gen.Uniform(-100, 100);
  return x;
}

Strategy SmallExplicit() {
  // Full-column-rank 4×3: identity rows plus one mixing row.
  SparseMatrix::Builder builder(4, 3);
  builder.Add(0, 0, 1.0);
  builder.Add(1, 1, 1.0);
  builder.Add(2, 2, 1.0);
  builder.Add(3, 0, 1.0);
  builder.Add(3, 1, 2.0);
  builder.Add(3, 2, -1.0);
  return Strategy::Explicit(std::move(builder).Build().value()).value();
}

// The property behind the whole matrix mechanism: reconstruction is a
// left inverse of the strategy on noiseless answers, x = A⁺·(A·x) — so
// W·A⁺·A = W for every workload W over the same domain.
TEST(StrategyTest, NoiselessReconstructionIsExact) {
  BitGen gen(1);
  struct Case {
    const char* name;
    Strategy strategy;
  };
  const Case cases[] = {
      {"identity7", Strategy::Identity(7)},
      {"tree11", Strategy::Tree(11)},
      {"tree8", Strategy::Tree(8)},
      {"haar8", Strategy::Haar(8)},
      {"haar5", Strategy::Haar(5)},
      {"explicit", SmallExplicit()},
  };
  for (const Case& c : cases) {
    for (int trial = 0; trial < 5; ++trial) {
      const std::vector<double> x =
          RandomHistogram(c.strategy.domain_size(), gen);
      const std::vector<double> rows = c.strategy.RowAnswers(x);
      ASSERT_EQ(rows.size(), c.strategy.num_rows()) << c.name;
      const std::vector<double> scales(c.strategy.num_rows(), 1.0);
      auto back = c.strategy.Reconstruct(rows, scales);
      ASSERT_TRUE(back.ok()) << c.name << ": " << back.status();
      for (size_t b = 0; b < x.size(); ++b) {
        EXPECT_NEAR((*back)[b], x[b], 1e-9)
            << c.name << " trial " << trial << " bin " << b;
      }
    }
  }
}

TEST(StrategyTest, RowAnswersMatchMaterializedMatrix) {
  // The kind-specialized fast paths must agree with A·x computed from
  // the materialized matrix (to rounding).
  BitGen gen(2);
  for (const Strategy& s :
       {Strategy::Tree(6), Strategy::Haar(8), Strategy::Identity(4)}) {
    const std::vector<double> x = RandomHistogram(s.domain_size(), gen);
    const std::vector<double> fast = s.RowAnswers(x);
    std::vector<double> slow(s.num_rows());
    s.matrix().MatVec(x, slow);
    for (size_t j = 0; j < slow.size(); ++j) {
      EXPECT_NEAR(fast[j], slow[j], 1e-9) << "row " << j;
    }
  }
}

TEST(StrategyTest, BaseScaleMatchesLegacyFormulas) {
  // Tree over 8 leaves: every bin lies on a root-to-leaf path of 4
  // nodes, so base = 2·4/ε — the old hierarchical λ = 2·height/ε.
  const Strategy tree = Strategy::Tree(8);
  EXPECT_DOUBLE_EQ(
      tree.BaseScale(0.5, 2.0, tree.row_multipliers()), 2.0 * 4 / 0.5);
  // Haar over 8 leaves at the Privelet weights: each of the 4 rows
  // touching a bin contributes |A_jb|/t_j = 1, so base = 2·4/ε — the
  // old wavelet θ.
  const Strategy haar = Strategy::Haar(8);
  EXPECT_DOUBLE_EQ(
      haar.BaseScale(0.5, 2.0, haar.row_multipliers()), 2.0 * 4 / 0.5);
  // Identity: one row per bin, base = tuple_factor/ε.
  const Strategy id = Strategy::Identity(5);
  EXPECT_DOUBLE_EQ(id.BaseScale(1.0, 2.0, id.row_multipliers()), 2.0);
}

TEST(StrategyTest, ReconstructValidates) {
  const Strategy tree = Strategy::Tree(4);
  const std::vector<double> rows(tree.num_rows(), 1.0);
  const std::vector<double> short_rows(3, 1.0);
  std::vector<double> scales(tree.num_rows(), 1.0);
  EXPECT_FALSE(tree.Reconstruct(short_rows, scales).ok());
  scales[2] = 0.0;
  EXPECT_FALSE(tree.Reconstruct(rows, scales).ok());
}

TEST(StrategyTest, ExplicitRejectsRankDeficientAtReconstruct) {
  // Two copies of the same row never determine bin 1.
  SparseMatrix::Builder builder(2, 2);
  builder.Add(0, 0, 1.0);
  builder.Add(1, 0, 1.0);
  auto s = Strategy::Explicit(std::move(builder).Build().value());
  ASSERT_TRUE(s.ok());
  const std::vector<double> rows{1.0, 1.0};
  const std::vector<double> scales{1.0, 1.0};
  auto r = s->Reconstruct(rows, scales);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST(StrategyTest, ExplicitRejectsOversizedDomain) {
  SparseMatrix::Builder builder(1, Strategy::kExplicitDomainCap + 1);
  builder.Add(0, 0, 1.0);
  EXPECT_FALSE(Strategy::Explicit(std::move(builder).Build().value()).ok());
}

TEST(StrategyTest, QueryVariancesExactForIdentity) {
  // W = I, A = I: var_i = 2·scale_i² exactly.
  const Strategy id = Strategy::Identity(3);
  const std::vector<double> scales{1.0, 2.0, 4.0};
  auto var = StrategyQueryVariances(id, SparseMatrix::Identity(3), scales);
  ASSERT_TRUE(var.ok());
  EXPECT_DOUBLE_EQ((*var)[0], 2.0);
  EXPECT_DOUBLE_EQ((*var)[1], 8.0);
  EXPECT_DOUBLE_EQ((*var)[2], 32.0);
}

TEST(StrategyTest, TreeBeatsIdentityVarianceOnWideRanges) {
  // The full-domain range under the tree aggregates O(log n) nodes; the
  // identity pays n leaves. At matched per-row scales the tree's range
  // variance must come out lower once scales are ε-calibrated.
  const size_t n = 64;
  const double epsilon = 1.0;
  std::vector<double> histogram(n, 1.0);
  const std::vector<BinRange> full{{0, static_cast<uint32_t>(n - 1)}};
  auto lw = RangeLinearWorkload(histogram, full);
  ASSERT_TRUE(lw.ok());
  const Strategy tree = Strategy::Tree(n);
  const Strategy id = Strategy::Identity(n);
  std::vector<double> tree_scales(tree.num_rows());
  const double tree_base =
      tree.BaseScale(epsilon, 1.0, tree.row_multipliers());
  for (size_t j = 0; j < tree_scales.size(); ++j) {
    tree_scales[j] = tree.row_multipliers()[j] * tree_base;
  }
  std::vector<double> id_scales(n, id.BaseScale(epsilon, 1.0,
                                                id.row_multipliers()));
  auto tree_var = StrategyQueryVariances(tree, lw->matrix(), tree_scales);
  auto id_var = StrategyQueryVariances(id, lw->matrix(), id_scales);
  ASSERT_TRUE(tree_var.ok() && id_var.ok());
  EXPECT_LT((*tree_var)[0], (*id_var)[0]);
}

TEST(StrategyTest, GreedyTuneNeverWorsensTheObjective) {
  // Skewed query weights (relative error on a decaying histogram) give
  // the tuner real room; it must monotonically improve or stand pat.
  const size_t n = 32;
  std::vector<double> histogram(n);
  for (size_t b = 0; b < n; ++b) histogram[b] = 1000.0 / (1 + b * b);
  auto lw = RangeLinearWorkload(histogram, PrefixRanges(n));
  ASSERT_TRUE(lw.ok());
  std::vector<double> weights(n);
  const std::vector<double> answers = lw->Answers();
  for (size_t i = 0; i < n; ++i) {
    weights[i] = 1.0 / (answers[i] * answers[i]);
  }
  for (const Strategy& s :
       {Strategy::Tree(n), Strategy::Haar(n), Strategy::Identity(n)}) {
    auto tuned = GreedyTuneScales(s, lw->matrix(), weights, 8);
    ASSERT_TRUE(tuned.ok());
    EXPECT_LE(tuned->final_objective, tuned->initial_objective);
    EXPECT_GE(tuned->accepted_moves, 0);
    ASSERT_EQ(tuned->multipliers.size(), s.num_rows());
    for (double t : tuned->multipliers) EXPECT_GT(t, 0.0);
  }
}

TEST(StrategyTest, GreedyTuneValidates) {
  const Strategy tree = Strategy::Tree(4);
  const SparseMatrix w = SparseMatrix::Identity(4);
  const std::vector<double> short_weights(3, 1.0);
  EXPECT_FALSE(GreedyTuneScales(tree, w, short_weights, 4).ok());
  const std::vector<double> negative{1.0, -1.0, 1.0, 1.0};
  EXPECT_FALSE(GreedyTuneScales(tree, w, negative, 4).ok());
  const std::vector<double> ok(4, 1.0);
  EXPECT_FALSE(GreedyTuneScales(tree, w, ok, -1).ok());
  EXPECT_FALSE(
      GreedyTuneScales(tree, SparseMatrix::Identity(5), ok, 4).ok());
}

TEST(StrategyTest, PublishIsDeterministicGivenSeed) {
  const std::vector<double> histogram{40, 30, 20, 10};
  const Strategy haar = Strategy::Haar(4);
  BitGen g1(9), g2(9);
  auto a = haar.Publish(histogram, 1.0, 2.0, haar.row_multipliers(), g1);
  auto b = haar.Publish(histogram, 1.0, 2.0, haar.row_multipliers(), g2);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(*a, *b);
}

}  // namespace
}  // namespace ireduct
