#include "queries/predicate.h"

#include <gtest/gtest.h>

#include <vector>

namespace ireduct {
namespace {

Dataset MakeDataset() {
  auto schema = Schema::Create({{"Age", 100}, {"Gender", 2}});
  EXPECT_TRUE(schema.ok());
  Dataset d(std::move(schema).value());
  for (uint16_t age : {20, 20, 30, 30, 30, 40}) {
    EXPECT_TRUE(d.AppendRow(std::vector<uint16_t>{
                    age, static_cast<uint16_t>(age == 30 ? 1 : 0)})
                    .ok());
  }
  return d;
}

TEST(PredicateTest, EvaluateSinglePredicate) {
  const Dataset d = MakeDataset();
  auto count = EvaluateQuery(d, ConjunctiveQuery{{{0, 30}}});
  ASSERT_TRUE(count.ok());
  EXPECT_DOUBLE_EQ(*count, 3);
}

TEST(PredicateTest, EvaluateConjunction) {
  const Dataset d = MakeDataset();
  auto count = EvaluateQuery(d, ConjunctiveQuery{{{0, 30}, {1, 1}}});
  ASSERT_TRUE(count.ok());
  EXPECT_DOUBLE_EQ(*count, 3);
  auto none = EvaluateQuery(d, ConjunctiveQuery{{{0, 20}, {1, 1}}});
  ASSERT_TRUE(none.ok());
  EXPECT_DOUBLE_EQ(*none, 0);
}

TEST(PredicateTest, EmptyQueryCountsAllRows) {
  const Dataset d = MakeDataset();
  auto count = EvaluateQuery(d, ConjunctiveQuery{});
  ASSERT_TRUE(count.ok());
  EXPECT_DOUBLE_EQ(*count, 6);
}

TEST(PredicateTest, ContradictionCountsZero) {
  const Dataset d = MakeDataset();
  auto count = EvaluateQuery(d, ConjunctiveQuery{{{0, 20}, {0, 30}}});
  ASSERT_TRUE(count.ok());
  EXPECT_DOUBLE_EQ(*count, 0);
}

TEST(PredicateTest, ValidatesAttributeAndValue) {
  const Dataset d = MakeDataset();
  EXPECT_FALSE(EvaluateQuery(d, ConjunctiveQuery{{{5, 0}}}).ok());
  EXPECT_FALSE(EvaluateQuery(d, ConjunctiveQuery{{{1, 2}}}).ok());
}

TEST(PredicateTest, ToStringFormats) {
  const Dataset d = MakeDataset();
  EXPECT_EQ(ConjunctiveQuery{}.ToString(d.schema()), "TRUE");
  const ConjunctiveQuery q{{{0, 30}, {1, 1}}};
  EXPECT_EQ(q.ToString(d.schema()), "Age=30 AND Gender=1");
}

TEST(PredicateTest, BuildsWorkload) {
  const Dataset d = MakeDataset();
  const std::vector<ConjunctiveQuery> queries{
      ConjunctiveQuery{{{0, 20}}},
      ConjunctiveQuery{{{0, 30}}},
      ConjunctiveQuery{{{1, 0}}},
  };
  auto w = BuildPredicateWorkload(d, queries);
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w->num_queries(), 3u);
  EXPECT_DOUBLE_EQ(w->true_answer(0), 2);
  EXPECT_DOUBLE_EQ(w->true_answer(1), 3);
  EXPECT_DOUBLE_EQ(w->true_answer(2), 3);
  EXPECT_FALSE(BuildPredicateWorkload(d, {}).ok());
}

}  // namespace
}  // namespace ireduct
