#include "queries/linear_workload.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "queries/range_workload.h"

namespace ireduct {
namespace {

TEST(SparseMatrixTest, BuilderSortsMergesAndDropsZeros) {
  SparseMatrix::Builder builder(2, 3);
  builder.Add(1, 2, 4.0);
  builder.Add(0, 1, 1.5);
  builder.Add(0, 0, 2.0);
  builder.Add(0, 1, 0.5);   // duplicate: merged to 2.0
  builder.Add(1, 0, 3.0);
  builder.Add(1, 0, -3.0);  // cancels to zero: dropped
  auto m = std::move(builder).Build();
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->rows(), 2u);
  EXPECT_EQ(m->cols(), 3u);
  EXPECT_EQ(m->nnz(), 3u);
  ASSERT_EQ(m->row_cols(0).size(), 2u);
  EXPECT_EQ(m->row_cols(0)[0], 0u);  // sorted by column
  EXPECT_EQ(m->row_cols(0)[1], 1u);
  EXPECT_DOUBLE_EQ(m->row_values(0)[0], 2.0);
  EXPECT_DOUBLE_EQ(m->row_values(0)[1], 2.0);
  ASSERT_EQ(m->row_cols(1).size(), 1u);
  EXPECT_EQ(m->row_cols(1)[0], 2u);
}

TEST(SparseMatrixTest, BuilderValidates) {
  {
    SparseMatrix::Builder builder(2, 2);
    builder.Add(2, 0, 1.0);  // row out of range
    EXPECT_FALSE(std::move(builder).Build().ok());
  }
  {
    SparseMatrix::Builder builder(2, 2);
    builder.Add(0, 2, 1.0);  // column out of range
    EXPECT_FALSE(std::move(builder).Build().ok());
  }
  {
    SparseMatrix::Builder builder(2, 2);
    builder.Add(0, 0, std::numeric_limits<double>::infinity());
    EXPECT_FALSE(std::move(builder).Build().ok());
  }
}

TEST(SparseMatrixTest, MatVecAndTranspose) {
  SparseMatrix::Builder builder(2, 3);
  builder.Add(0, 0, 1.0);
  builder.Add(0, 2, 2.0);
  builder.Add(1, 1, -3.0);
  auto m = std::move(builder).Build();
  ASSERT_TRUE(m.ok());
  const std::vector<double> x{10, 20, 30};
  std::vector<double> y(2);
  m->MatVec(x, y);
  EXPECT_DOUBLE_EQ(y[0], 10 + 60);
  EXPECT_DOUBLE_EQ(y[1], -60);
  const std::vector<double> r{1, 2};
  std::vector<double> back(3);
  m->TMatVec(r, back);
  EXPECT_DOUBLE_EQ(back[0], 1.0);
  EXPECT_DOUBLE_EQ(back[1], -6.0);
  EXPECT_DOUBLE_EQ(back[2], 2.0);
}

TEST(SparseMatrixTest, ColumnAbsSumsWithAndWithoutWeights) {
  SparseMatrix::Builder builder(2, 2);
  builder.Add(0, 0, 1.0);
  builder.Add(0, 1, -2.0);
  builder.Add(1, 0, 3.0);
  auto m = std::move(builder).Build();
  ASSERT_TRUE(m.ok());
  std::vector<double> col(2);
  m->ColumnAbsSums({}, col);
  EXPECT_DOUBLE_EQ(col[0], 4.0);
  EXPECT_DOUBLE_EQ(col[1], 2.0);
  const std::vector<double> weights{0.5, 2.0};
  m->ColumnAbsSums(weights, col);
  EXPECT_DOUBLE_EQ(col[0], 0.5 + 6.0);
  EXPECT_DOUBLE_EQ(col[1], 1.0);
}

TEST(SparseMatrixTest, IdentityShape) {
  const SparseMatrix id = SparseMatrix::Identity(4);
  EXPECT_EQ(id.rows(), 4u);
  EXPECT_EQ(id.cols(), 4u);
  EXPECT_EQ(id.nnz(), 4u);
  const std::vector<double> x{1, 2, 3, 4};
  std::vector<double> y(4);
  id.MatVec(x, y);
  EXPECT_EQ(y, x);
}

Result<LinearWorkload> PrefixLinear(const std::vector<double>& histogram) {
  return RangeLinearWorkload(histogram,
                             PrefixRanges(histogram.size()));
}

TEST(LinearWorkloadTest, CreateValidatesShapes) {
  auto bad_cols =
      LinearWorkload::Create(SparseMatrix::Identity(3), {1.0, 2.0},
                             NeighborModel::kAddRemove);
  EXPECT_FALSE(bad_cols.ok());
  SparseMatrix::Builder empty(0, 2);
  auto no_queries = LinearWorkload::Create(
      std::move(empty).Build().value(), {1.0, 2.0},
      NeighborModel::kAddRemove);
  EXPECT_FALSE(no_queries.ok());
}

TEST(LinearWorkloadTest, AnswersMatchRangeCounts) {
  const std::vector<double> histogram{10, 20, 30, 40, 50};
  auto lw = PrefixLinear(histogram);
  ASSERT_TRUE(lw.ok());
  EXPECT_EQ(lw->num_queries(), 5u);
  EXPECT_EQ(lw->domain_size(), 5u);
  const std::vector<double> answers = lw->Answers();
  double acc = 0;
  for (size_t i = 0; i < 5; ++i) {
    acc += histogram[i];
    EXPECT_DOUBLE_EQ(answers[i], acc) << "prefix " << i;
  }
}

TEST(LinearWorkloadTest, TupleSensitivityIsMaxWeightedColumn) {
  // Prefixes over 3 bins: bin 0 is in all 3 queries, bin 1 in 2, bin 2
  // in 1. At scales {1, 2, 4} the exact bound is 1/1 + 1/2 + 1/4.
  const std::vector<double> histogram{5, 6, 7};
  auto lw = PrefixLinear(histogram);
  ASSERT_TRUE(lw.ok());
  EXPECT_DOUBLE_EQ(lw->tuple_factor(), 1.0);  // add/remove semantics
  EXPECT_DOUBLE_EQ(lw->MaxColumnL1(), 3.0);
  const std::vector<double> scales{1, 2, 4};
  EXPECT_DOUBLE_EQ(lw->TupleSensitivity(scales), 1.0 + 0.5 + 0.25);
  const std::vector<double> bad{1, 0, 4};
  EXPECT_TRUE(std::isinf(lw->TupleSensitivity(bad)));
}

TEST(LinearWorkloadTest, MoveSemanticsDoubleTheBound) {
  SparseMatrix::Builder builder(1, 2);
  builder.Add(0, 0, 1.0);
  auto lw = LinearWorkload::Create(std::move(builder).Build().value(),
                                   {3.0, 4.0}, NeighborModel::kMove);
  ASSERT_TRUE(lw.ok());
  EXPECT_DOUBLE_EQ(lw->tuple_factor(), 2.0);
  const std::vector<double> scales{2.0};
  EXPECT_DOUBLE_EQ(lw->TupleSensitivity(scales), 1.0);  // 2 * (1/2)
}

TEST(LinearWorkloadTest, ToWorkloadCarriesExactSensitivityAndLinearView) {
  const std::vector<double> histogram{10, 20, 30, 40};
  auto lw = PrefixLinear(histogram);
  ASSERT_TRUE(lw.ok());
  auto w = lw->ToWorkload();
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w->num_queries(), 4u);
  EXPECT_EQ(w->num_groups(), 4u);  // singleton groups
  EXPECT_TRUE(w->has_custom_sensitivity());
  ASSERT_NE(w->linear(), nullptr);
  EXPECT_EQ(w->linear()->domain_size(), 4u);
  // True answers flow through from Answers().
  EXPECT_DOUBLE_EQ(w->true_answer(0), 10);
  EXPECT_DOUBLE_EQ(w->true_answer(3), 100);
  // The installed SensitivityFn is the exact column bound, not Σ 1/λ.
  const std::vector<double> scales{10, 10, 10, 10};
  EXPECT_DOUBLE_EQ(w->GeneralizedSensitivity(scales),
                   lw->TupleSensitivity(scales));
  EXPECT_DOUBLE_EQ(w->GeneralizedSensitivity(scales), 0.4);
}

// Satellite regression: the old additive Σ 1/λ bound versus the exact
// column bound. On prefixes (bin 0 in every query) they coincide; on
// overlapping sliding windows the additive bound wastes ~count/width of
// the privacy budget.
TEST(LinearWorkloadTest, ExactBoundMatchesAdditiveOnPrefixes) {
  std::vector<double> histogram(16);
  for (size_t b = 0; b < 16; ++b) histogram[b] = 100.0 / (1 + b);
  const std::vector<BinRange> prefixes = PrefixRanges(16);
  auto exact =
      BuildRangeWorkload(histogram, prefixes, RangeSensitivity::kExactColumn);
  auto additive =
      BuildRangeWorkload(histogram, prefixes, RangeSensitivity::kAdditive);
  ASSERT_TRUE(exact.ok() && additive.ok());
  const std::vector<double> uniform(16, 7.0);
  EXPECT_DOUBLE_EQ(exact->GeneralizedSensitivity(uniform),
                   additive->GeneralizedSensitivity(uniform));
  EXPECT_DOUBLE_EQ(exact->GeneralizedSensitivity(uniform), 16.0 / 7.0);
}

TEST(LinearWorkloadTest, ExactBoundBeatsAdditiveOnSlidingWindows) {
  const size_t bins = 64, width = 4, count = 61;  // every window start once
  std::vector<double> histogram(bins, 50.0);
  const std::vector<BinRange> windows =
      SlidingWindowRanges(bins, width, count);
  ASSERT_EQ(windows.size(), count);
  auto exact =
      BuildRangeWorkload(histogram, windows, RangeSensitivity::kExactColumn);
  auto additive =
      BuildRangeWorkload(histogram, windows, RangeSensitivity::kAdditive);
  ASSERT_TRUE(exact.ok() && additive.ok());
  const std::vector<double> uniform(count, 10.0);
  // No bin lies in more than `width` windows, so the exact bound is
  // width/λ; the additive bound pays count/λ — 15× worse here.
  EXPECT_DOUBLE_EQ(exact->GeneralizedSensitivity(uniform),
                   static_cast<double>(width) / 10.0);
  EXPECT_DOUBLE_EQ(additive->GeneralizedSensitivity(uniform),
                   static_cast<double>(count) / 10.0);
}

}  // namespace
}  // namespace ireduct
