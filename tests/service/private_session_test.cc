#include "service/private_session.h"

#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cmath>
#include <string>
#include <vector>

#include "marginals/marginal_set.h"
#include "service/wire.h"

namespace ireduct {
namespace {

Dataset MakeDataset() {
  auto schema = Schema::Create({{"A", 4}, {"B", 2}});
  EXPECT_TRUE(schema.ok());
  Dataset d(std::move(schema).value());
  BitGen gen(1);
  for (int r = 0; r < 5000; ++r) {
    const uint16_t a = static_cast<uint16_t>(gen.UniformInt(4));
    const uint16_t b = gen.Bernoulli(0.25) ? 1 : 0;
    EXPECT_TRUE(d.AppendRow(std::vector<uint16_t>{a, b}).ok());
  }
  return d;
}

TEST(PrivateSessionTest, CreateValidates) {
  EXPECT_FALSE(PrivateQuerySession::Create(nullptr, 1.0, 1).ok());
  const Dataset d = MakeDataset();
  EXPECT_FALSE(PrivateQuerySession::Create(&d, 0.0, 1).ok());
  EXPECT_TRUE(PrivateQuerySession::Create(&d, 1.0, 1).ok());
}

TEST(PrivateSessionTest, CountQueryChargesAndAnswers) {
  const Dataset d = MakeDataset();
  auto session = PrivateQuerySession::Create(&d, 1.0, 2);
  ASSERT_TRUE(session.ok());
  auto count = session->CountQuery(ConjunctiveQuery{{{1, 1}}}, 0.4);
  ASSERT_TRUE(count.ok());
  // True count ~1250; Laplace(1/0.4) noise keeps it within ~±40.
  EXPECT_NEAR(*count, 1250, 150);
  EXPECT_NEAR(session->spent(), 0.4, 1e-12);
  EXPECT_EQ(session->ledger().size(), 1u);
}

TEST(PrivateSessionTest, GeometricCountIsInteger) {
  const Dataset d = MakeDataset();
  auto session = PrivateQuerySession::Create(&d, 1.0, 3);
  ASSERT_TRUE(session.ok());
  auto count = session->CountQuery(ConjunctiveQuery{{{0, 2}}}, 0.3,
                                   CountNoise::kGeometric);
  ASSERT_TRUE(count.ok());
  EXPECT_DOUBLE_EQ(*count, std::round(*count));
}

TEST(PrivateSessionTest, BudgetExhaustionRefusesFurtherQueries) {
  const Dataset d = MakeDataset();
  auto session = PrivateQuerySession::Create(&d, 0.5, 4);
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session->CountQuery(ConjunctiveQuery{}, 0.5).ok());
  auto refused = session->CountQuery(ConjunctiveQuery{}, 0.1);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kPrivacyBudgetExceeded);
  EXPECT_NEAR(session->spent(), 0.5, 1e-12);
}

TEST(PrivateSessionTest, InvalidQueryChargesNothing) {
  const Dataset d = MakeDataset();
  auto session = PrivateQuerySession::Create(&d, 1.0, 5);
  ASSERT_TRUE(session.ok());
  EXPECT_FALSE(session->CountQuery(ConjunctiveQuery{{{9, 0}}}, 0.2).ok());
  EXPECT_DOUBLE_EQ(session->spent(), 0.0);
  EXPECT_FALSE(session->CountQuery(ConjunctiveQuery{}, -1.0).ok());
  EXPECT_DOUBLE_EQ(session->spent(), 0.0);
}

TEST(PrivateSessionTest, PublishMarginalsChargesActualSpend) {
  const Dataset d = MakeDataset();
  auto session = PrivateQuerySession::Create(&d, 1.0, 6);
  ASSERT_TRUE(session.ok());
  auto specs = AllKWaySpecs(d.schema(), 1);
  ASSERT_TRUE(specs.ok());
  auto release = session->PublishMarginals(*specs, 0.6, 5.0, 64);
  ASSERT_TRUE(release.ok()) << release.status();
  EXPECT_EQ(release->marginals.size(), 2u);
  EXPECT_LE(release->epsilon_spent, 0.6 * (1 + 1e-9));
  EXPECT_NEAR(session->spent(), release->epsilon_spent, 1e-9);
  // Published counts track the truth loosely.
  EXPECT_NEAR(release->marginals[1].count(1), 1250, 400);
}

TEST(PrivateSessionTest, PublishMarginalsRefusedWhenOverBudget) {
  const Dataset d = MakeDataset();
  auto session = PrivateQuerySession::Create(&d, 0.1, 7);
  ASSERT_TRUE(session.ok());
  auto specs = AllKWaySpecs(d.schema(), 1);
  ASSERT_TRUE(specs.ok());
  auto release = session->PublishMarginals(*specs, 0.5, 5.0, 16);
  ASSERT_FALSE(release.ok());
  EXPECT_EQ(release.status().code(), StatusCode::kPrivacyBudgetExceeded);
  EXPECT_DOUBLE_EQ(session->spent(), 0.0);
}

TEST(PrivateSessionTest, RefinableCountDrawsFromSessionBudget) {
  const Dataset d = MakeDataset();
  auto session = PrivateQuerySession::Create(&d, 1.0, 8);
  ASSERT_TRUE(session.ok());
  auto chain = session->StartRefinableCount(ConjunctiveQuery{{{1, 1}}}, 100);
  ASSERT_TRUE(chain.ok());
  EXPECT_NEAR(session->spent(), 1.0 / 100, 1e-12);
  ASSERT_TRUE(chain->Reduce(10, session->rng()).ok());
  EXPECT_NEAR(session->spent(), 1.0 / 10, 1e-12);
  ASSERT_TRUE(chain->Reduce(2, session->rng()).ok());
  EXPECT_NEAR(session->spent(), 1.0 / 2, 1e-12);
  EXPECT_NEAR(chain->answer(), 1250, 40);  // scale-2 noise
  // Refining to scale 1 would need 1.0 total; only 0.5 remains... exactly
  // 0.5 more is needed for scale 1, which fits the 1.0 budget exactly.
  ASSERT_TRUE(chain->Reduce(1, session->rng()).ok());
  EXPECT_NEAR(session->spent(), 1.0, 1e-9);
  // Nothing further fits.
  EXPECT_FALSE(chain->Reduce(0.5, session->rng()).ok());
}

TEST(PrivateSessionTest, PublishMarginalsByNameLabelsLedgerEntries) {
  const Dataset d = MakeDataset();
  auto session = PrivateQuerySession::Create(&d, 1.0, 10);
  ASSERT_TRUE(session.ok());
  auto specs = AllKWaySpecs(d.schema(), 1);
  ASSERT_TRUE(specs.ok());
  auto release = session->PublishMarginals(*specs, MechanismSpec("two_phase"),
                                           0.4, 5.0, 64);
  ASSERT_TRUE(release.ok()) << release.status();
  ASSERT_EQ(session->ledger().size(), 1u);
  EXPECT_EQ(session->ledger()[0].label, "marginal release (TwoPhase)");
  // The legacy overload keeps the historical iReduct label.
  auto legacy = session->PublishMarginals(*specs, 0.3, 5.0, 64);
  ASSERT_TRUE(legacy.ok()) << legacy.status();
  ASSERT_EQ(session->ledger().size(), 2u);
  EXPECT_EQ(session->ledger()[1].label, "marginal release (iReduct)");
}

TEST(PrivateSessionTest, TwoMechanismsComposeSequentially) {
  const Dataset d = MakeDataset();
  auto session = PrivateQuerySession::Create(&d, 1.0, 11);
  ASSERT_TRUE(session.ok());
  auto specs = AllKWaySpecs(d.schema(), 1);
  ASSERT_TRUE(specs.ok());
  auto first = session->PublishMarginals(*specs, MechanismSpec("dwork"), 0.25,
                                         5.0, 64);
  ASSERT_TRUE(first.ok()) << first.status();
  auto second = session->PublishMarginals(
      *specs, MechanismSpec("ireduct"), 0.5, 5.0, 64);
  ASSERT_TRUE(second.ok()) << second.status();
  // Sequential composition: the accountant holds exactly the sum of the
  // two releases' actual spends, each within its requested ε.
  EXPECT_DOUBLE_EQ(session->spent(),
                   first->epsilon_spent + second->epsilon_spent);
  EXPECT_LE(first->epsilon_spent, 0.25 * (1 + 1e-9));
  EXPECT_LE(second->epsilon_spent, 0.5 * (1 + 1e-9));
  ASSERT_EQ(session->ledger().size(), 2u);
  EXPECT_EQ(session->ledger()[0].label, "marginal release (Dwork)");
  EXPECT_EQ(session->ledger()[1].label, "marginal release (iReduct)");
}

TEST(PrivateSessionTest, PublishMarginalsSpecParamsOverrideDefaults) {
  const Dataset d = MakeDataset();
  auto session = PrivateQuerySession::Create(&d, 1.0, 12);
  ASSERT_TRUE(session.ok());
  auto specs = AllKWaySpecs(d.schema(), 1);
  ASSERT_TRUE(specs.ok());
  // A spec-level epsilon wins over the argument and is what gets charged.
  MechanismSpec spec("dwork");
  spec.Set("epsilon", 0.125);
  auto release = session->PublishMarginals(*specs, spec, 0.9, 5.0, 64);
  ASSERT_TRUE(release.ok()) << release.status();
  EXPECT_DOUBLE_EQ(release->epsilon_spent, 0.125);
  EXPECT_DOUBLE_EQ(session->spent(), 0.125);
}

TEST(PrivateSessionTest, PublishMarginalsByNameRejectsBadRequests) {
  const Dataset d = MakeDataset();
  auto session = PrivateQuerySession::Create(&d, 1.0, 13);
  ASSERT_TRUE(session.ok());
  auto specs = AllKWaySpecs(d.schema(), 1);
  ASSERT_TRUE(specs.ok());
  auto unknown = session->PublishMarginals(
      *specs, MechanismSpec("no_such_mechanism"), 0.4, 5.0, 64);
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kNotFound);
  // Non-private baselines must not masquerade as a DP release.
  auto oracle = session->PublishMarginals(*specs, MechanismSpec("oracle"),
                                          0.4, 5.0, 64);
  ASSERT_FALSE(oracle.ok());
  EXPECT_EQ(oracle.status().code(), StatusCode::kInvalidArgument);
  auto typo = MechanismSpec::Parse("ireduct:epslion=1");
  ASSERT_TRUE(typo.ok());
  EXPECT_FALSE(session->PublishMarginals(*specs, *typo, 0.4, 5.0, 64).ok());
  EXPECT_DOUBLE_EQ(session->spent(), 0.0);  // nothing charged on any refusal
}

TEST(PrivateSessionTest, CreateWithJournalCreatesMissingParentDirectories) {
  const Dataset d = MakeDataset();
  // A fresh per-tenant directory tree that does not exist yet — this used
  // to fail with ENOENT before CreateWithJournal learned mkdir -p.
  const std::string journal_path =
      testing::TempDir() + "private_session_test_" +
      std::to_string(::getpid()) + "/tenants/alice/ledger.journal";
  auto session = PrivateQuerySession::CreateWithJournal(&d, 1.0, 14,
                                                        journal_path);
  ASSERT_TRUE(session.ok()) << session.status();
  ASSERT_TRUE(session->CountQuery(ConjunctiveQuery{{{1, 1}}}, 0.25).ok());
  struct stat st{};
  EXPECT_EQ(::stat(journal_path.c_str(), &st), 0);
  // The journal is live: recovery sees the charge.
  auto recovered = LedgerJournal::Recover(journal_path);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  ASSERT_EQ(recovered->charges.size(), 1u);
  EXPECT_DOUBLE_EQ(recovered->charges[0].epsilon, 0.25);
  // A second create at the same path still refuses (no truncation).
  EXPECT_EQ(PrivateQuerySession::CreateWithJournal(&d, 1.0, 14, journal_path)
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
}

TEST(PrivateSessionTest, PrecomputedTablesMatchClassicPathExactly) {
  const Dataset d = MakeDataset();
  auto specs = AllKWaySpecs(d.schema(), 1);
  ASSERT_TRUE(specs.ok());
  // Same seed, same request — one session computes its own tables, the
  // other receives them precomputed (the query server's batched path).
  // The releases must be bit-identical.
  auto classic = PrivateQuerySession::Create(&d, 1.0, 15);
  ASSERT_TRUE(classic.ok());
  auto classic_release = classic->PublishMarginals(
      *specs, MechanismSpec("ireduct"), 0.4, 5.0, 64);
  ASSERT_TRUE(classic_release.ok()) << classic_release.status();

  auto precomputed = PrivateQuerySession::Create(&d, 1.0, 15);
  ASSERT_TRUE(precomputed.ok());
  auto tables = ComputeMarginals(d, *specs);
  ASSERT_TRUE(tables.ok());
  auto precomputed_release = precomputed->PublishMarginalsPrecomputed(
      std::move(*tables), MechanismSpec("ireduct"), 0.4, 5.0, 64);
  ASSERT_TRUE(precomputed_release.ok()) << precomputed_release.status();

  EXPECT_EQ(MarginalReleaseToJson(*classic_release),
            MarginalReleaseToJson(*precomputed_release));
  EXPECT_DOUBLE_EQ(classic->spent(), precomputed->spent());
  ASSERT_EQ(classic->ledger().size(), precomputed->ledger().size());
  EXPECT_EQ(classic->ledger()[0].label, precomputed->ledger()[0].label);
}

TEST(PrivateSessionTest, MixedWorkflowComposes) {
  const Dataset d = MakeDataset();
  auto session = PrivateQuerySession::Create(&d, 1.0, 9);
  ASSERT_TRUE(session.ok());
  auto specs = AllKWaySpecs(d.schema(), 1);
  ASSERT_TRUE(specs.ok());
  ASSERT_TRUE(session->CountQuery(ConjunctiveQuery{}, 0.2).ok());
  ASSERT_TRUE(session->PublishMarginals(*specs, 0.3, 5.0, 32).ok());
  ASSERT_TRUE(session->StartRefinableCount(ConjunctiveQuery{}, 10).ok());
  EXPECT_GE(session->ledger().size(), 3u);
  EXPECT_LE(session->spent(), 1.0 + 1e-9);
}

}  // namespace
}  // namespace ireduct
