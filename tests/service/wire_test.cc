#include "service/wire.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <string>
#include <vector>

#include "common/status.h"
#include "obs/json.h"

namespace ireduct {
namespace {

Dataset MakeDataset(int rows = 2000) {
  auto schema = Schema::Create({{"A", 4}, {"B", 2}});
  EXPECT_TRUE(schema.ok());
  Dataset d(std::move(schema).value());
  BitGen gen(1);
  for (int r = 0; r < rows; ++r) {
    const uint16_t a = static_cast<uint16_t>(gen.UniformInt(4));
    const uint16_t b = gen.Bernoulli(0.25) ? 1 : 0;
    EXPECT_TRUE(d.AppendRow(std::vector<uint16_t>{a, b}).ok());
  }
  return d;
}

std::string UniqueSocketPath(const char* tag) {
  return testing::TempDir() + "wire_" + tag + "_" +
         std::to_string(::getpid()) + ".sock";
}

TEST(WireRequestTest, OpenRoundTrips) {
  WireRequest req;
  req.id = 7;
  req.op = "open";
  req.tenant = "alice";
  req.dataset = "census";
  req.budget = 1.5;
  req.seed = 42;
  auto parsed = WireRequest::Parse(req.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->id, 7u);
  EXPECT_EQ(parsed->op, "open");
  EXPECT_EQ(parsed->tenant, "alice");
  EXPECT_EQ(parsed->dataset, "census");
  EXPECT_DOUBLE_EQ(parsed->budget, 1.5);
  EXPECT_EQ(parsed->seed, 42u);
}

TEST(WireRequestTest, MarginalsRoundTrips) {
  WireRequest req;
  req.id = 2;
  req.op = "marginals";
  req.tenant = "t";
  req.specs = {MarginalSpec{{0, 1}}, MarginalSpec{{2}}};
  req.mechanism = "two_phase:epsilon1_fraction=0.1";
  req.epsilon = 0.5;
  req.delta = 0.05;
  req.lambda_steps = 128;
  auto parsed = WireRequest::Parse(req.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->specs.size(), 2u);
  EXPECT_EQ(parsed->specs[0].attributes, (std::vector<uint32_t>{0, 1}));
  EXPECT_EQ(parsed->specs[1].attributes, (std::vector<uint32_t>{2}));
  EXPECT_EQ(parsed->mechanism, "two_phase:epsilon1_fraction=0.1");
  EXPECT_DOUBLE_EQ(parsed->epsilon, 0.5);
  EXPECT_DOUBLE_EQ(parsed->delta, 0.05);
  EXPECT_EQ(parsed->lambda_steps, 128);
  // And serialization is a fixed point.
  EXPECT_EQ(parsed->ToJson(), req.ToJson());
}

TEST(WireRequestTest, CountRoundTrips) {
  WireRequest req;
  req.id = 3;
  req.op = "count";
  req.tenant = "t";
  req.query = ConjunctiveQuery{{{0, 3}, {1, 1}}};
  req.epsilon = 0.1;
  auto parsed = WireRequest::Parse(req.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->query.predicates.size(), 2u);
  EXPECT_EQ(parsed->query.predicates[0].attribute, 0u);
  EXPECT_EQ(parsed->query.predicates[0].value, 3);
  EXPECT_EQ(parsed->query.predicates[1].attribute, 1u);
  EXPECT_EQ(parsed->query.predicates[1].value, 1);
  EXPECT_DOUBLE_EQ(parsed->epsilon, 0.1);
}

TEST(WireRequestTest, SimpleOpsRoundTrip) {
  for (const char* op : {"ping", "stats"}) {
    WireRequest req;
    req.id = 9;
    req.op = op;
    auto parsed = WireRequest::Parse(req.ToJson());
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    EXPECT_EQ(parsed->op, op);
  }
  WireRequest budget;
  budget.id = 10;
  budget.op = "budget";
  budget.tenant = "t";
  auto parsed = WireRequest::Parse(budget.ToJson());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->tenant, "t");
}

TEST(WireRequestTest, ParseIsStrict) {
  // Not JSON at all.
  EXPECT_FALSE(WireRequest::Parse("not json").ok());
  // Must be an object.
  EXPECT_FALSE(WireRequest::Parse("[1,2]").ok());
  // id and op are mandatory.
  EXPECT_FALSE(WireRequest::Parse(R"({"op":"ping"})").ok());
  EXPECT_FALSE(WireRequest::Parse(R"({"id":1})").ok());
  // Unknown ops and unknown fields are refused, not ignored.
  EXPECT_FALSE(WireRequest::Parse(R"({"id":1,"op":"drop_tables"})").ok());
  EXPECT_FALSE(WireRequest::Parse(R"({"id":1,"op":"ping","shoe":9})").ok());
  // Wrong field types.
  EXPECT_FALSE(WireRequest::Parse(R"({"id":"one","op":"ping"})").ok());
  EXPECT_FALSE(WireRequest::Parse(R"({"id":1,"op":5})").ok());
  // Malformed spec / predicate shapes.
  EXPECT_FALSE(
      WireRequest::Parse(R"({"id":1,"op":"marginals","specs":[0]})").ok());
  EXPECT_FALSE(
      WireRequest::Parse(R"({"id":1,"op":"marginals","specs":[[]]})").ok());
  EXPECT_FALSE(
      WireRequest::Parse(R"({"id":1,"op":"marginals","specs":[[-1]]})").ok());
  EXPECT_FALSE(
      WireRequest::Parse(R"({"id":1,"op":"count","predicates":[[1]]})").ok());
  EXPECT_FALSE(
      WireRequest::Parse(R"({"id":1,"op":"count","predicates":[[1,2,3]]})")
          .ok());
}

TEST(WireResponseTest, OkRoundTrips) {
  WireResponse resp;
  resp.id = 12;
  resp.ok = true;
  resp.result_json = R"({"value":3.5,"tags":["a","b"],"nested":{"n":1}})";
  auto parsed = WireResponse::Parse(resp.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->id, 12u);
  EXPECT_TRUE(parsed->ok);
  EXPECT_EQ(parsed->result_json, resp.result_json);
  EXPECT_EQ(parsed->retry_after_ms, -1);
}

TEST(WireResponseTest, ErrorRoundTripsWithRetryHint) {
  WireResponse resp;
  resp.id = 13;
  resp.ok = false;
  resp.code = std::string(StatusCodeToString(StatusCode::kResourceExhausted));
  resp.message = "admission rejected (queue_full); retry after 50ms";
  resp.retry_after_ms = 50;
  auto parsed = WireResponse::Parse(resp.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_FALSE(parsed->ok);
  EXPECT_EQ(parsed->code, "Resource exhausted");
  EXPECT_EQ(parsed->message, resp.message);
  EXPECT_EQ(parsed->retry_after_ms, 50);
  // Non-shed errors omit the hint entirely.
  resp.retry_after_ms = -1;
  EXPECT_EQ(resp.ToJson().find("retry_after_ms"), std::string::npos);
}

TEST(WireResponseTest, ParseIsStrict) {
  EXPECT_FALSE(WireResponse::Parse(R"({"id":1})").ok());
  EXPECT_FALSE(WireResponse::Parse(R"({"ok":true})").ok());
  EXPECT_FALSE(WireResponse::Parse(R"({"id":1,"ok":1})").ok());
  EXPECT_FALSE(WireResponse::Parse(R"({"id":1,"ok":true,"zap":1})").ok());
}

TEST(WireServerTest, EndToEndOverUnixSocket) {
  const Dataset d = MakeDataset();
  auto server = QueryServer::Create(QueryServerConfig{});
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE((*server)->AddDataset("census", d).ok());
  const std::string socket_path = UniqueSocketPath("e2e");
  auto wire = WireServer::Start(server->get(), socket_path);
  ASSERT_TRUE(wire.ok()) << wire.status();
  auto client = WireClient::Connect(socket_path);
  ASSERT_TRUE(client.ok()) << client.status();

  WireRequest ping;
  ping.id = 1;
  ping.op = "ping";
  auto pong = client->Call(ping);
  ASSERT_TRUE(pong.ok()) << pong.status();
  EXPECT_TRUE(pong->ok);
  EXPECT_EQ(pong->result_json, R"({"pong":true})");

  WireRequest open;
  open.id = 2;
  open.op = "open";
  open.tenant = "alice";
  open.dataset = "census";
  open.budget = 1.0;
  open.seed = 21;
  auto opened = client->Call(open);
  ASSERT_TRUE(opened.ok()) << opened.status();
  EXPECT_TRUE(opened->ok) << opened->message;

  WireRequest marginals;
  marginals.id = 3;
  marginals.op = "marginals";
  marginals.tenant = "alice";
  marginals.specs = {MarginalSpec{{0}}, MarginalSpec{{1}}};
  marginals.mechanism = "ireduct";
  marginals.epsilon = 0.5;
  marginals.delta = 5.0;
  marginals.lambda_steps = 40;
  auto released = client->Call(marginals);
  ASSERT_TRUE(released.ok()) << released.status();
  ASSERT_TRUE(released->ok) << released->message;
  EXPECT_NE(released->result_json.find("\"epsilon_spent\""),
            std::string::npos);
  EXPECT_NE(released->result_json.find("\"counts\""), std::string::npos);

  WireRequest count;
  count.id = 4;
  count.op = "count";
  count.tenant = "alice";
  count.query = ConjunctiveQuery{{{1, 1}}};
  count.epsilon = 0.1;
  auto counted = client->Call(count);
  ASSERT_TRUE(counted.ok()) << counted.status();
  ASSERT_TRUE(counted->ok) << counted->message;
  EXPECT_NE(counted->result_json.find("\"value\""), std::string::npos);

  WireRequest budget;
  budget.id = 5;
  budget.op = "budget";
  budget.tenant = "alice";
  auto budgeted = client->Call(budget);
  ASSERT_TRUE(budgeted.ok()) << budgeted.status();
  ASSERT_TRUE(budgeted->ok) << budgeted->message;
  auto doc = obs::JsonParse(budgeted->result_json);
  ASSERT_TRUE(doc.ok());
  const obs::JsonValue* spent = doc->Find("spent");
  ASSERT_NE(spent, nullptr);
  EXPECT_GT(spent->number, 0.0);
  EXPECT_LE(spent->number, 0.6 + 1e-9);

  WireRequest stats;
  stats.id = 6;
  stats.op = "stats";
  auto statsed = client->Call(stats);
  ASSERT_TRUE(statsed.ok()) << statsed.status();
  ASSERT_TRUE(statsed->ok);
  auto stats_doc = obs::JsonParse(statsed->result_json);
  ASSERT_TRUE(stats_doc.ok());
  const obs::JsonValue* admitted = stats_doc->Find("admitted");
  ASSERT_NE(admitted, nullptr);
  EXPECT_DOUBLE_EQ(admitted->number, 2.0);  // marginals + count

  // Errors surface as structured responses, not dropped connections.
  WireRequest ghost;
  ghost.id = 7;
  ghost.op = "budget";
  ghost.tenant = "ghost";
  auto missing = client->Call(ghost);
  ASSERT_TRUE(missing.ok()) << missing.status();
  EXPECT_FALSE(missing->ok);
  EXPECT_EQ(missing->code, "Not found");

  EXPECT_EQ((*wire)->connections_served(), 1u);
  (*wire)->Stop();
  (*wire)->Stop();  // idempotent
}

TEST(WireServerTest, ResponsesCorrelateById) {
  const Dataset d = MakeDataset();
  auto server = QueryServer::Create(QueryServerConfig{});
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE((*server)->AddDataset("census", d).ok());
  ASSERT_TRUE((*server)->OpenTenant("t", "census", 1.0, 31).ok());
  const std::string socket_path = UniqueSocketPath("ooo");
  auto wire = WireServer::Start(server->get(), socket_path);
  ASSERT_TRUE(wire.ok()) << wire.status();
  auto client = WireClient::Connect(socket_path);
  ASSERT_TRUE(client.ok()) << client.status();

  // With the dispatcher paused the queued count cannot answer, but the
  // synchronous ping still must: its response arrives first and the
  // client's id correlation has to bridge the gap.
  (*server)->Pause();
  WireRequest count;
  count.id = 100;
  count.op = "count";
  count.tenant = "t";
  count.epsilon = 0.1;
  ASSERT_TRUE(client->Send(count).ok());
  WireRequest ping;
  ping.id = 101;
  ping.op = "ping";
  ASSERT_TRUE(client->Send(ping).ok());
  auto pong = client->Receive(101);
  ASSERT_TRUE(pong.ok()) << pong.status();
  EXPECT_TRUE(pong->ok);
  (*server)->Resume();
  auto counted = client->Receive(100);
  ASSERT_TRUE(counted.ok()) << counted.status();
  EXPECT_TRUE(counted->ok) << counted->message;
}

TEST(WireServerTest, AdmissionShedSurfacesRetryAfterOverTheWire) {
  const Dataset d = MakeDataset();
  QueryServerConfig config;
  config.max_queue = 1;
  config.max_inflight_per_tenant = 100;
  config.retry_after_ms = 40;
  auto server = QueryServer::Create(config);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE((*server)->AddDataset("census", d).ok());
  ASSERT_TRUE((*server)->OpenTenant("t", "census", 1.0, 41).ok());
  const std::string socket_path = UniqueSocketPath("shed");
  auto wire = WireServer::Start(server->get(), socket_path);
  ASSERT_TRUE(wire.ok()) << wire.status();
  auto client = WireClient::Connect(socket_path);
  ASSERT_TRUE(client.ok()) << client.status();

  (*server)->Pause();
  WireRequest count;
  count.op = "count";
  count.tenant = "t";
  count.epsilon = 0.1;
  count.id = 1;
  ASSERT_TRUE(client->Send(count).ok());  // fills the queue
  count.id = 2;
  ASSERT_TRUE(client->Send(count).ok());  // shed at admission
  auto shed = client->Receive(2);
  ASSERT_TRUE(shed.ok()) << shed.status();
  EXPECT_FALSE(shed->ok);
  EXPECT_EQ(shed->code,
            std::string(StatusCodeToString(StatusCode::kResourceExhausted)));
  EXPECT_EQ(shed->retry_after_ms, 40);
  (*server)->Resume();
  auto first = client->Receive(1);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_TRUE(first->ok) << first->message;
  // A verbatim retry after the hint succeeds and only then charges.
  count.id = 3;
  auto retried = client->Call(count);
  ASSERT_TRUE(retried.ok()) << retried.status();
  EXPECT_TRUE(retried->ok) << retried->message;
  auto budget = (*server)->GetBudget("t");
  ASSERT_TRUE(budget.ok());
  EXPECT_DOUBLE_EQ(budget->spent, 0.2);  // two admitted counts, no shed charge
}

TEST(WireServerTest, StartValidatesArguments) {
  EXPECT_FALSE(WireServer::Start(nullptr, "/tmp/x.sock").ok());
  auto server = QueryServer::Create(QueryServerConfig{});
  ASSERT_TRUE(server.ok());
  EXPECT_FALSE(WireServer::Start(server->get(), "").ok());
  EXPECT_FALSE(
      WireServer::Start(server->get(), std::string(200, 'x')).ok());
  EXPECT_FALSE(WireClient::Connect(testing::TempDir() + "no_such.sock").ok());
}

}  // namespace
}  // namespace ireduct
