// Crash-safety of the multi-tenant query server: a process killed mid-batch
// (deterministically, via the fault injector's "journal.append:crash@n" arm
// — the same arm IREDUCT_FAULT wires up from the environment) must leave
// every tenant's write-ahead journal recoverable, with recovered totals
// exactly equal to the charges that were confirmed durable before the kill.
//
// Each test forks: the child builds a journaled QueryServer, runs a scripted
// workload and is _Exit(86)'d by the injector mid-write; the parent waits,
// then recovers and replays every journal. There is no torn tail in these
// scenarios — kCrash fires before any bytes of the fatal record are written,
// which is exactly the write-ahead guarantee under test: a grant is either
// fully durable and counted, or absent and never admitted.
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/fault.h"
#include "dp/ledger_journal.h"
#include "service/query_server.h"

namespace ireduct {
namespace {

// Child-side exit codes for failures before the fault fires; anything but
// kFaultCrashExitCode fails the parent's assertion with a hint.
constexpr int kChildSetupFailed = 70;
constexpr int kChildRequestFailed = 71;
constexpr int kChildSurvived = 72;  // the injected crash never fired

Dataset MakeDataset() {
  auto schema = Schema::Create({{"A", 4}, {"B", 2}});
  if (!schema.ok()) ::_Exit(kChildSetupFailed);
  Dataset d(std::move(schema).value());
  BitGen gen(1);
  for (int r = 0; r < 1000; ++r) {
    const uint16_t a = static_cast<uint16_t>(gen.UniformInt(4));
    const uint16_t b = gen.Bernoulli(0.25) ? 1 : 0;
    if (!d.AppendRow(std::vector<uint16_t>{a, b}).ok()) {
      ::_Exit(kChildSetupFailed);
    }
  }
  return d;
}

std::string UniqueJournalDir(const char* tag) {
  return testing::TempDir() + "service_crash_" + tag + "_" +
         std::to_string(::getpid()) + "/journals";
}

// The child workload. Journal-append hit schedule (hits are 1-based and
// process-wide): two tenant opens write the journals' open records (hits
// 1-2), then each completed request appends exactly one grant, strictly in
// admission order on the dispatcher thread (hits 3+). `crash_at_hit` picks
// the first record that must NOT survive.
void RunChildWorkload(const std::string& journal_dir, int crash_at_hit) {
  const std::string spec =
      "journal.append:crash@" + std::to_string(crash_at_hit);
  if (!FaultInjector::Global().Configure(spec).ok()) {
    ::_Exit(kChildSetupFailed);
  }
  const Dataset d = MakeDataset();
  QueryServerConfig config;
  config.journal_dir = journal_dir;
  config.max_batch = 16;
  auto server = QueryServer::Create(config);
  if (!server.ok()) ::_Exit(kChildSetupFailed);
  if (!(*server)->AddDataset("census", d).ok()) ::_Exit(kChildSetupFailed);
  if (!(*server)->OpenTenant("t1", "census", 2.0, 11).ok()) {  // hit 1
    ::_Exit(kChildSetupFailed);
  }
  if (!(*server)->OpenTenant("t2", "census", 2.0, 22).ok()) {  // hit 2
    ::_Exit(kChildSetupFailed);
  }
  // Queue everything while paused so the dispatcher drains one coalesced
  // batch — the crash lands mid-batch, between two tenants' grants.
  (*server)->Pause();
  auto f1 = (*server)->SubmitCount("t1", ConjunctiveQuery{{{1, 1}}},
                                   0.25);  // hit 3
  auto f2 = (*server)->SubmitMarginals(
      "t2", {MarginalSpec{{0}}, MarginalSpec{{1}}}, MechanismSpec("ireduct"),
      0.5, 5.0, 40);  // hit 4
  auto f3 = (*server)->SubmitCount("t1", ConjunctiveQuery{{{0, 2}}},
                                   0.125);  // hit 5
  (*server)->Resume();
  // _Exit(kFaultCrashExitCode) fires on the dispatcher thread at the armed
  // hit; .get() only returns if the fault was mis-armed.
  if (!f1.get().ok()) ::_Exit(kChildRequestFailed);
  if (!f2.get().ok()) ::_Exit(kChildRequestFailed);
  if (!f3.get().ok()) ::_Exit(kChildRequestFailed);
  ::_Exit(kChildSurvived);
}

int ForkAndRun(const std::string& journal_dir, int crash_at_hit) {
  const pid_t pid = ::fork();
  EXPECT_GE(pid, 0);
  if (pid == 0) {
    RunChildWorkload(journal_dir, crash_at_hit);  // never returns
  }
  int wstatus = 0;
  EXPECT_EQ(::waitpid(pid, &wstatus, 0), pid);
  EXPECT_TRUE(WIFEXITED(wstatus));
  return WEXITSTATUS(wstatus);
}

double SumCharges(const LedgerJournal::Recovered& recovered) {
  double sum = 0;
  for (const PrivacyCharge& charge : recovered.charges) sum += charge.epsilon;
  return sum;
}

// Crash on the 5th append: t1's first count (hit 3) and t2's marginal
// release (hit 4) are durable; t1's second count dies before a byte of its
// grant is written. Both journals must recover cleanly with exactly the
// confirmed charges.
TEST(ServiceCrashTest, MidBatchCrashLeavesEveryJournalRecoverable) {
  const std::string journal_dir = UniqueJournalDir("mid_batch");
  ASSERT_EQ(ForkAndRun(journal_dir, 5), kFaultCrashExitCode);

  auto t1 = LedgerJournal::Recover(journal_dir + "/t1.journal");
  ASSERT_TRUE(t1.ok()) << t1.status();
  EXPECT_DOUBLE_EQ(t1->budget, 2.0);
  EXPECT_FALSE(t1->torn_tail);
  ASSERT_EQ(t1->charges.size(), 1u);
  EXPECT_DOUBLE_EQ(t1->charges[0].epsilon, 0.25);
  EXPECT_NE(t1->charges[0].label.find("count"), std::string::npos);
  auto t1_accountant = LedgerJournal::Replay(*t1);
  ASSERT_TRUE(t1_accountant.ok());
  EXPECT_DOUBLE_EQ(t1_accountant->spent(), 0.25);
  EXPECT_DOUBLE_EQ(t1_accountant->spent(), SumCharges(*t1));
  EXPECT_DOUBLE_EQ(t1_accountant->remaining(), 1.75);

  auto t2 = LedgerJournal::Recover(journal_dir + "/t2.journal");
  ASSERT_TRUE(t2.ok()) << t2.status();
  EXPECT_DOUBLE_EQ(t2->budget, 2.0);
  EXPECT_FALSE(t2->torn_tail);
  ASSERT_EQ(t2->charges.size(), 1u);
  EXPECT_NE(t2->charges[0].label.find("marginal release"), std::string::npos);
  EXPECT_GT(t2->charges[0].epsilon, 0.0);
  EXPECT_LE(t2->charges[0].epsilon, 0.5 * (1 + 1e-9));
  auto t2_accountant = LedgerJournal::Replay(*t2);
  ASSERT_TRUE(t2_accountant.ok());
  EXPECT_DOUBLE_EQ(t2_accountant->spent(), SumCharges(*t2));

  // And a restarted server resumes both tenants with the recovered spend.
  const Dataset d = []() {
    auto schema = Schema::Create({{"A", 4}, {"B", 2}});
    Dataset d(std::move(schema).value());
    BitGen gen(1);
    for (int r = 0; r < 1000; ++r) {
      const uint16_t a = static_cast<uint16_t>(gen.UniformInt(4));
      const uint16_t b = gen.Bernoulli(0.25) ? 1 : 0;
      EXPECT_TRUE(d.AppendRow(std::vector<uint16_t>{a, b}).ok());
    }
    return d;
  }();
  QueryServerConfig config;
  config.journal_dir = journal_dir;
  auto server = QueryServer::Create(config);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE((*server)->AddDataset("census", d).ok());
  ASSERT_TRUE((*server)->ResumeTenant("t1", "census", 11).ok());
  ASSERT_TRUE((*server)->ResumeTenant("t2", "census", 22).ok());
  auto b1 = (*server)->GetBudget("t1");
  ASSERT_TRUE(b1.ok());
  EXPECT_DOUBLE_EQ(b1->spent, 0.25);
  auto b2 = (*server)->GetBudget("t2");
  ASSERT_TRUE(b2.ok());
  EXPECT_DOUBLE_EQ(b2->spent, SumCharges(*t2));
  // The resumed tenants keep serving — and keep journaling.
  ASSERT_TRUE((*server)->CountQuery("t1", ConjunctiveQuery{}, 0.1).ok());
  auto after = LedgerJournal::Recover(journal_dir + "/t1.journal");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->charges.size(), 2u);
}

// Crash on the very first grant: both journals hold only their open
// records. Recovery finds zero charges — the doomed request was admitted
// but its charge never became durable, so nothing is owed.
TEST(ServiceCrashTest, CrashBeforeFirstGrantRecoversToZeroSpend) {
  const std::string journal_dir = UniqueJournalDir("first_grant");
  ASSERT_EQ(ForkAndRun(journal_dir, 3), kFaultCrashExitCode);
  for (const char* tenant : {"t1", "t2"}) {
    auto recovered =
        LedgerJournal::Recover(journal_dir + "/" + tenant + ".journal");
    ASSERT_TRUE(recovered.ok()) << tenant << ": " << recovered.status();
    EXPECT_DOUBLE_EQ(recovered->budget, 2.0);
    EXPECT_FALSE(recovered->torn_tail);
    EXPECT_TRUE(recovered->charges.empty());
    auto accountant = LedgerJournal::Replay(*recovered);
    ASSERT_TRUE(accountant.ok());
    EXPECT_DOUBLE_EQ(accountant->spent(), 0.0);
    EXPECT_DOUBLE_EQ(accountant->remaining(), 2.0);
  }
}

}  // namespace
}  // namespace ireduct
