#include "service/query_server.h"

#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <future>
#include <string>
#include <vector>

#include "marginals/marginal_set.h"
#include "obs/json.h"
#include "service/wire.h"

namespace ireduct {
namespace {

Dataset MakeDataset(int rows = 2000) {
  auto schema = Schema::Create({{"A", 4}, {"B", 2}});
  EXPECT_TRUE(schema.ok());
  Dataset d(std::move(schema).value());
  BitGen gen(1);
  for (int r = 0; r < rows; ++r) {
    const uint16_t a = static_cast<uint16_t>(gen.UniformInt(4));
    const uint16_t b = gen.Bernoulli(0.25) ? 1 : 0;
    EXPECT_TRUE(d.AppendRow(std::vector<uint16_t>{a, b}).ok());
  }
  return d;
}

std::string CountToJson(double v) {
  std::string out;
  obs::JsonWriter w(&out);
  w.Double(v);
  return out;
}

// The fixed 4-step script every parity tenant runs: two mechanism releases
// interleaved with two ad-hoc counts, so the parity check covers both RNG
// consumers and the accountant's sequential composition.
constexpr double kBudget = 2.0;

std::vector<MarginalSpec> OneWaySpecs() {
  return {MarginalSpec{{0}}, MarginalSpec{{1}}};
}

std::vector<MarginalSpec> TwoWaySpec() { return {MarginalSpec{{0, 1}}}; }

// Runs the script serially against a direct PrivateQuerySession — the
// golden the server must match byte-for-byte.
std::vector<std::string> RunScriptSerial(const Dataset& d, uint64_t seed) {
  auto session = PrivateQuerySession::Create(&d, kBudget, seed);
  EXPECT_TRUE(session.ok());
  std::vector<std::string> out;
  auto r1 = session->PublishMarginals(OneWaySpecs(), MechanismSpec("ireduct"),
                                      0.4, 5.0, 40);
  EXPECT_TRUE(r1.ok()) << r1.status();
  out.push_back(MarginalReleaseToJson(*r1));
  auto c1 = session->CountQuery(ConjunctiveQuery{{{1, 1}}}, 0.1);
  EXPECT_TRUE(c1.ok());
  out.push_back(CountToJson(*c1));
  auto r2 = session->PublishMarginals(TwoWaySpec(), MechanismSpec("two_phase"),
                                      0.3, 5.0, 40);
  EXPECT_TRUE(r2.ok()) << r2.status();
  out.push_back(MarginalReleaseToJson(*r2));
  auto c2 = session->CountQuery(ConjunctiveQuery{{{0, 2}}}, 0.05);
  EXPECT_TRUE(c2.ok());
  out.push_back(CountToJson(*c2));
  return out;
}

// Runs the same script for `num_tenants` tenants through a QueryServer,
// submitting every request while the dispatcher is paused (so batched
// configurations actually coalesce) with the steps interleaved across
// tenants. Returns per-tenant serialized outcomes.
std::vector<std::vector<std::string>> RunScriptThroughServer(
    const Dataset& d, uint64_t seed_base, int num_tenants, int workers,
    bool batching) {
  QueryServerConfig config;
  config.workers = workers;
  config.batching = batching;
  config.max_queue = 64;
  config.max_inflight_per_tenant = 8;
  config.max_batch = 64;
  auto server = QueryServer::Create(config);
  EXPECT_TRUE(server.ok());
  EXPECT_TRUE((*server)->AddDataset("census", d).ok());
  std::vector<std::string> names;
  for (int t = 0; t < num_tenants; ++t) {
    names.push_back("tenant" + std::to_string(t));
    EXPECT_TRUE(
        (*server)->OpenTenant(names.back(), "census", kBudget, seed_base + t)
            .ok());
  }
  (*server)->Pause();
  std::vector<std::vector<std::future<Result<MarginalRelease>>>> releases(
      num_tenants);
  std::vector<std::vector<std::future<Result<double>>>> counts(num_tenants);
  // Interleave by step: tenant order within a step is irrelevant (each
  // tenant has its own session), per-tenant order is what the contract
  // fixes.
  for (int t = 0; t < num_tenants; ++t) {
    releases[t].push_back((*server)->SubmitMarginals(
        names[t], OneWaySpecs(), MechanismSpec("ireduct"), 0.4, 5.0, 40));
  }
  for (int t = 0; t < num_tenants; ++t) {
    counts[t].push_back(
        (*server)->SubmitCount(names[t], ConjunctiveQuery{{{1, 1}}}, 0.1));
  }
  for (int t = 0; t < num_tenants; ++t) {
    releases[t].push_back((*server)->SubmitMarginals(
        names[t], TwoWaySpec(), MechanismSpec("two_phase"), 0.3, 5.0, 40));
  }
  for (int t = 0; t < num_tenants; ++t) {
    counts[t].push_back(
        (*server)->SubmitCount(names[t], ConjunctiveQuery{{{0, 2}}}, 0.05));
  }
  (*server)->Resume();
  std::vector<std::vector<std::string>> out(num_tenants);
  for (int t = 0; t < num_tenants; ++t) {
    auto r1 = releases[t][0].get();
    EXPECT_TRUE(r1.ok()) << r1.status();
    auto c1 = counts[t][0].get();
    EXPECT_TRUE(c1.ok()) << c1.status();
    auto r2 = releases[t][1].get();
    EXPECT_TRUE(r2.ok()) << r2.status();
    auto c2 = counts[t][1].get();
    EXPECT_TRUE(c2.ok()) << c2.status();
    out[t] = {MarginalReleaseToJson(*r1), CountToJson(*c1),
              MarginalReleaseToJson(*r2), CountToJson(*c2)};
  }
  (*server)->Drain();
  return out;
}

TEST(QueryServerTest, CreateValidatesConfig) {
  QueryServerConfig bad;
  bad.workers = 0;
  EXPECT_FALSE(QueryServer::Create(bad).ok());
  bad = QueryServerConfig{};
  bad.max_queue = 0;
  EXPECT_FALSE(QueryServer::Create(bad).ok());
  bad = QueryServerConfig{};
  bad.max_inflight_per_tenant = 0;
  EXPECT_FALSE(QueryServer::Create(bad).ok());
  bad = QueryServerConfig{};
  bad.max_batch = 0;
  EXPECT_FALSE(QueryServer::Create(bad).ok());
  bad = QueryServerConfig{};
  bad.retry_after_ms = -1;
  EXPECT_FALSE(QueryServer::Create(bad).ok());
  EXPECT_TRUE(QueryServer::Create(QueryServerConfig{}).ok());
}

TEST(QueryServerTest, DatasetAndTenantLifecycle) {
  const Dataset d = MakeDataset();
  auto server = QueryServer::Create(QueryServerConfig{});
  ASSERT_TRUE(server.ok());
  EXPECT_FALSE((*server)->AddDataset("", MakeDataset()).ok());
  ASSERT_TRUE((*server)->AddDataset("census", d).ok());
  EXPECT_EQ((*server)->AddDataset("census", MakeDataset()).code(),
            StatusCode::kFailedPrecondition);
  ASSERT_NE((*server)->dataset("census"), nullptr);
  EXPECT_EQ((*server)->dataset("nope"), nullptr);

  EXPECT_EQ((*server)->OpenTenant("t", "nope", 1.0, 1).code(),
            StatusCode::kNotFound);
  ASSERT_TRUE((*server)->OpenTenant("t", "census", 1.0, 1).ok());
  EXPECT_EQ((*server)->OpenTenant("t", "census", 1.0, 1).code(),
            StatusCode::kFailedPrecondition);

  auto budget = (*server)->GetBudget("t");
  ASSERT_TRUE(budget.ok());
  EXPECT_DOUBLE_EQ(budget->budget, 1.0);
  EXPECT_DOUBLE_EQ(budget->spent, 0.0);
  EXPECT_EQ((*server)->GetBudget("nope").status().code(),
            StatusCode::kNotFound);

  const QueryServerStats stats = (*server)->Stats();
  EXPECT_EQ(stats.num_datasets, 1u);
  EXPECT_EQ(stats.num_tenants, 1u);
}

TEST(QueryServerTest, SyncWrappersAnswerAndCharge) {
  const Dataset d = MakeDataset();
  auto server = QueryServer::Create(QueryServerConfig{});
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE((*server)->AddDataset("census", d).ok());
  ASSERT_TRUE((*server)->OpenTenant("t", "census", 1.0, 2).ok());
  auto count = (*server)->CountQuery("t", ConjunctiveQuery{{{1, 1}}}, 0.4);
  ASSERT_TRUE(count.ok()) << count.status();
  EXPECT_NEAR(*count, 500, 150);  // true count ~500 of 2000 rows
  auto release = (*server)->PublishMarginals(
      "t", OneWaySpecs(), MechanismSpec("ireduct"), 0.3, 5.0, 40);
  ASSERT_TRUE(release.ok()) << release.status();
  EXPECT_EQ(release->marginals.size(), 2u);
  auto budget = (*server)->GetBudget("t");
  ASSERT_TRUE(budget.ok());
  EXPECT_NEAR(budget->spent, 0.4 + release->epsilon_spent, 1e-9);
  // completed is bumped after the promise resolves; settle first.
  (*server)->Drain();
  const QueryServerStats stats = (*server)->Stats();
  EXPECT_EQ(stats.admitted, 2u);
  EXPECT_EQ(stats.completed, 2u);
}

// The acceptance-criteria lock: responses from the concurrent batched
// pipeline are bit-identical to a serial per-tenant run, across worker
// counts, batched and unbatched, at several seeds.
TEST(QueryServerTest, BatchedResponsesMatchSerialGolden) {
  const Dataset d = MakeDataset();
  constexpr int kTenants = 3;
  for (const uint64_t seed_base : {100u, 200u, 300u}) {
    std::vector<std::vector<std::string>> golden;
    for (int t = 0; t < kTenants; ++t) {
      golden.push_back(RunScriptSerial(d, seed_base + t));
    }
    for (const int workers : {1, 2, 8}) {
      for (const bool batching : {true, false}) {
        const auto got = RunScriptThroughServer(d, seed_base, kTenants,
                                                workers, batching);
        ASSERT_EQ(got.size(), golden.size());
        for (int t = 0; t < kTenants; ++t) {
          EXPECT_EQ(got[t], golden[t])
              << "tenant " << t << " diverged at seed_base " << seed_base
              << " workers " << workers << " batching " << batching;
        }
      }
    }
  }
}

TEST(QueryServerTest, BatchingCoalescesIntoFusedPasses) {
  const Dataset d = MakeDataset();
  QueryServerConfig config;
  config.max_batch = 16;
  auto server = QueryServer::Create(config);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE((*server)->AddDataset("census", d).ok());
  ASSERT_TRUE((*server)->OpenTenant("a", "census", 1.0, 1).ok());
  ASSERT_TRUE((*server)->OpenTenant("b", "census", 1.0, 2).ok());
  (*server)->Pause();
  auto fa = (*server)->SubmitMarginals("a", OneWaySpecs(),
                                       MechanismSpec("dwork"), 0.2, 5.0, 40);
  auto fb = (*server)->SubmitMarginals("b", OneWaySpecs(),
                                       MechanismSpec("dwork"), 0.2, 5.0, 40);
  (*server)->Resume();
  EXPECT_TRUE(fa.get().ok());
  EXPECT_TRUE(fb.get().ok());
  (*server)->Drain();
  const QueryServerStats stats = (*server)->Stats();
  // Both requests drained in one batch and shared one fused pass.
  EXPECT_EQ(stats.max_batch_width, 2u);
  EXPECT_EQ(stats.fused_passes, 1u);
  EXPECT_EQ(stats.completed, 2u);
}

TEST(QueryServerTest, QueueFullShedsWithResourceExhaustedAndNoCharge) {
  const Dataset d = MakeDataset();
  QueryServerConfig config;
  config.max_queue = 2;
  config.max_inflight_per_tenant = 100;
  config.retry_after_ms = 75;
  auto server = QueryServer::Create(config);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE((*server)->AddDataset("census", d).ok());
  ASSERT_TRUE((*server)->OpenTenant("t", "census", 1.0, 3).ok());
  (*server)->Pause();
  auto f1 = (*server)->SubmitCount("t", ConjunctiveQuery{}, 0.1);
  auto f2 = (*server)->SubmitCount("t", ConjunctiveQuery{}, 0.1);
  auto f3 = (*server)->SubmitCount("t", ConjunctiveQuery{}, 0.1);
  // The shed resolves immediately, before the dispatcher ever runs.
  ASSERT_EQ(f3.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  auto shed = f3.get();
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(shed.status().message().find("retry after 75ms"),
            std::string::npos);
  // Nothing was charged for the shed request — or for the queued ones yet.
  auto before = (*server)->GetBudget("t");
  ASSERT_TRUE(before.ok());
  EXPECT_DOUBLE_EQ(before->spent, 0.0);
  (*server)->Resume();
  EXPECT_TRUE(f1.get().ok());
  EXPECT_TRUE(f2.get().ok());
  (*server)->Drain();
  auto after = (*server)->GetBudget("t");
  ASSERT_TRUE(after.ok());
  EXPECT_DOUBLE_EQ(after->spent, 0.2);  // exactly the two admitted charges
  const QueryServerStats stats = (*server)->Stats();
  EXPECT_EQ(stats.admitted, 2u);
  EXPECT_EQ(stats.shed_queue_full, 1u);
  EXPECT_EQ(stats.completed, 2u);
}

TEST(QueryServerTest, TenantInflightCapShedsOnlyTheChattyTenant) {
  const Dataset d = MakeDataset();
  QueryServerConfig config;
  config.max_queue = 100;
  config.max_inflight_per_tenant = 1;
  auto server = QueryServer::Create(config);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE((*server)->AddDataset("census", d).ok());
  ASSERT_TRUE((*server)->OpenTenant("chatty", "census", 1.0, 4).ok());
  ASSERT_TRUE((*server)->OpenTenant("quiet", "census", 1.0, 5).ok());
  (*server)->Pause();
  auto f1 = (*server)->SubmitCount("chatty", ConjunctiveQuery{}, 0.1);
  auto f2 = (*server)->SubmitCount("chatty", ConjunctiveQuery{}, 0.1);
  auto f3 = (*server)->SubmitCount("quiet", ConjunctiveQuery{}, 0.1);
  ASSERT_EQ(f2.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  auto shed = f2.get();
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kResourceExhausted);
  // The other tenant still has queue room.
  ASSERT_NE(f3.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  (*server)->Resume();
  EXPECT_TRUE(f1.get().ok());
  EXPECT_TRUE(f3.get().ok());
  (*server)->Drain();
  const QueryServerStats stats = (*server)->Stats();
  EXPECT_EQ(stats.shed_tenant_cap, 1u);
  EXPECT_EQ(stats.shed_queue_full, 0u);
}

TEST(QueryServerTest, UnknownTenantIsNotFound) {
  const Dataset d = MakeDataset();
  auto server = QueryServer::Create(QueryServerConfig{});
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE((*server)->AddDataset("census", d).ok());
  auto count = (*server)->SubmitCount("ghost", ConjunctiveQuery{}, 0.1);
  ASSERT_EQ(count.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  auto result = count.get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

// A bad spec anywhere in a coalesced batch must not take its siblings
// down: the fused pass falls back to the classic per-request path, the
// broken request reports its own error and the valid one still succeeds.
TEST(QueryServerTest, InvalidSpecInBatchFallsBackPerRequest) {
  const Dataset d = MakeDataset();
  QueryServerConfig config;
  config.max_batch = 16;
  auto server = QueryServer::Create(config);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE((*server)->AddDataset("census", d).ok());
  ASSERT_TRUE((*server)->OpenTenant("bad", "census", 1.0, 6).ok());
  ASSERT_TRUE((*server)->OpenTenant("good", "census", 1.0, 7).ok());
  (*server)->Pause();
  auto fbad = (*server)->SubmitMarginals(
      "bad", {MarginalSpec{{9}}}, MechanismSpec("ireduct"), 0.2, 5.0, 40);
  auto fgood = (*server)->SubmitMarginals(
      "good", OneWaySpecs(), MechanismSpec("ireduct"), 0.2, 5.0, 40);
  (*server)->Resume();
  auto bad = fbad.get();
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kOutOfRange);
  auto good = fgood.get();
  EXPECT_TRUE(good.ok()) << good.status();
  (*server)->Drain();
  auto bad_budget = (*server)->GetBudget("bad");
  ASSERT_TRUE(bad_budget.ok());
  EXPECT_DOUBLE_EQ(bad_budget->spent, 0.0);
  // The poisoned union never ran a fused pass.
  EXPECT_EQ((*server)->Stats().fused_passes, 0u);
}

TEST(QueryServerTest, JournaledTenantsSurviveServerRestart) {
  const Dataset d = MakeDataset();
  const std::string journal_dir = testing::TempDir() + "query_server_test_" +
                                  std::to_string(::getpid()) +
                                  "/journals/nested";
  QueryServerConfig config;
  config.journal_dir = journal_dir;
  double spent = 0;
  {
    auto server = QueryServer::Create(config);
    ASSERT_TRUE(server.ok());
    ASSERT_TRUE((*server)->AddDataset("census", d).ok());
    // The journal directory does not exist yet; OpenTenant must create it.
    ASSERT_TRUE((*server)->OpenTenant("alice", "census", 1.0, 8).ok());
    ASSERT_TRUE(
        (*server)->CountQuery("alice", ConjunctiveQuery{{{1, 1}}}, 0.25).ok());
    struct stat st{};
    EXPECT_EQ(::stat((journal_dir + "/alice.journal").c_str(), &st), 0);
    auto budget = (*server)->GetBudget("alice");
    ASSERT_TRUE(budget.ok());
    spent = budget->spent;
    EXPECT_DOUBLE_EQ(spent, 0.25);
  }
  // A new server over the same journal_dir: re-opening would truncate the
  // ledger (refused); resuming recovers the recorded spend.
  auto server = QueryServer::Create(config);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE((*server)->AddDataset("census", d).ok());
  EXPECT_EQ((*server)->OpenTenant("alice", "census", 1.0, 8).code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE((*server)->ResumeTenant("alice", "census", 9).ok());
  auto budget = (*server)->GetBudget("alice");
  ASSERT_TRUE(budget.ok());
  EXPECT_DOUBLE_EQ(budget->spent, spent);
  EXPECT_DOUBLE_EQ(budget->remaining, 1.0 - spent);
  // And the resumed tenant keeps working.
  EXPECT_TRUE((*server)->CountQuery("alice", ConjunctiveQuery{}, 0.1).ok());
}

TEST(QueryServerTest, ResumeTenantRequiresJournaledServer) {
  const Dataset d = MakeDataset();
  auto server = QueryServer::Create(QueryServerConfig{});
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE((*server)->AddDataset("census", d).ok());
  EXPECT_EQ((*server)->ResumeTenant("t", "census", 1).code(),
            StatusCode::kFailedPrecondition);
}

TEST(QueryServerTest, UnbatchedModeDispatchesOneAtATime) {
  const Dataset d = MakeDataset();
  QueryServerConfig config;
  config.batching = false;
  auto server = QueryServer::Create(config);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE((*server)->AddDataset("census", d).ok());
  ASSERT_TRUE((*server)->OpenTenant("t", "census", 1.0, 10).ok());
  (*server)->Pause();
  std::vector<std::future<Result<double>>> futures;
  for (int i = 0; i < 4; ++i) {
    futures.push_back((*server)->SubmitCount("t", ConjunctiveQuery{}, 0.05));
  }
  (*server)->Resume();
  for (auto& f : futures) EXPECT_TRUE(f.get().ok());
  (*server)->Drain();
  const QueryServerStats stats = (*server)->Stats();
  EXPECT_EQ(stats.batches, 4u);
  EXPECT_EQ(stats.max_batch_width, 1u);
  EXPECT_EQ(stats.fused_passes, 0u);
}

TEST(QueryServerTest, DestructorRejectsStillQueuedRequests) {
  const Dataset d = MakeDataset();
  auto server = QueryServer::Create(QueryServerConfig{});
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE((*server)->AddDataset("census", d).ok());
  ASSERT_TRUE((*server)->OpenTenant("t", "census", 1.0, 11).ok());
  (*server)->Pause();
  auto f = (*server)->SubmitCount("t", ConjunctiveQuery{}, 0.1);
  server->reset();  // destroys the paused server with the request queued
  auto result = f.get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace ireduct
