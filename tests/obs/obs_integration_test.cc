// End-to-end observability: run the real iReduct mechanism and a real
// private session with a trace recorder installed, then assert that the
// trace/metrics/ledger views all agree with the mechanism's own outputs.
#include <gtest/gtest.h>

#include <cmath>
#include <optional>
#include <string>
#include <vector>

#include "algorithms/ireduct.h"
#include "dp/privacy_accountant.h"
#include "dp/workload.h"
#include "minijson.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/private_session.h"

namespace ireduct {
namespace {

Result<Workload> SmallWorkload() {
  return Workload::PerQuery({12, 40, 90, 250, 1200, 9000});
}

IReductParams SmallParams() {
  IReductParams params;
  params.epsilon = 0.5;
  params.delta = 5;
  params.lambda_max = 200;
  params.lambda_delta = 2;
  return params;
}

#if IREDUCT_ENABLE_TRACING

TEST(ObsIntegrationTest, OneTraceSpanPerIReductIteration) {
  auto workload = SmallWorkload();
  ASSERT_TRUE(workload.ok());

  obs::TraceRecorder recorder;
  obs::TraceRecorder::Install(&recorder);
  BitGen gen(2011);
  auto out = RunIReduct(*workload, SmallParams(), gen);
  obs::TraceRecorder::Install(nullptr);

  ASSERT_TRUE(out.ok());
  ASSERT_GT(out->iterations, 0u);
  EXPECT_EQ(recorder.CountEventsNamed("ireduct.iteration"),
            out->iterations);

  // Every iteration span carries the full annotation set, and the λ move
  // matches the configured step.
  auto parsed = minijson::Parse(recorder.ToJson());
  ASSERT_TRUE(parsed.has_value());
  size_t iteration_spans = 0;
  for (const minijson::Value& event :
       parsed->Find("traceEvents")->array) {
    if (event.Find("name")->text != "ireduct.iteration") continue;
    ++iteration_spans;
    const minijson::Value* args = event.Find("args");
    ASSERT_NE(args, nullptr);
    for (const char* key : {"group", "old_lambda", "new_lambda",
                            "est_rel_error", "gs_headroom"}) {
      ASSERT_NE(args->Find(key), nullptr) << key;
    }
    EXPECT_NEAR(args->Find("old_lambda")->number -
                    args->Find("new_lambda")->number,
                SmallParams().lambda_delta, 1e-9);
    EXPECT_GE(args->Find("gs_headroom")->number, 0.0);
  }
  EXPECT_EQ(iteration_spans, out->iterations);
}

TEST(ObsIntegrationTest, MetricsCountersTrackMechanismOutput) {
  auto workload = SmallWorkload();
  ASSERT_TRUE(workload.ok());
  auto& registry = obs::MetricsRegistry::Global();
  const uint64_t iterations_before =
      registry.counter("ireduct.iterations").value();
  const uint64_t draws_before =
      registry.counter("ireduct.resample_draws").value();

  BitGen gen(7);
  auto out = RunIReduct(*workload, SmallParams(), gen);
  ASSERT_TRUE(out.ok());

  EXPECT_EQ(registry.counter("ireduct.iterations").value(),
            iterations_before + out->iterations);
  EXPECT_EQ(registry.counter("ireduct.resample_draws").value(),
            draws_before + out->resample_calls);
}

TEST(ObsIntegrationTest, SessionTraceCarriesEpsilonAndLedgerMatches) {
  auto schema = Schema::Create({{"A", 3}});
  ASSERT_TRUE(schema.ok());
  Dataset dataset(std::move(schema).value());
  BitGen rows(3);
  for (int r = 0; r < 2000; ++r) {
    ASSERT_TRUE(dataset
                    .AppendRow(std::vector<uint16_t>{static_cast<uint16_t>(
                        rows.UniformInt(3))})
                    .ok());
  }

  obs::TraceRecorder recorder;
  obs::TraceRecorder::Install(&recorder);
  auto session = PrivateQuerySession::Create(&dataset, 1.0, 11);
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session->CountQuery(ConjunctiveQuery{{{0, 1}}}, 0.25).ok());
  const std::vector<MarginalSpec> specs = {MarginalSpec{{0}}};
  ASSERT_TRUE(session->PublishMarginals(specs, 0.5, 2.0, 50).ok());
  obs::TraceRecorder::Install(nullptr);

  EXPECT_EQ(recorder.CountEventsNamed("session.count_query"), 1u);
  EXPECT_EQ(recorder.CountEventsNamed("session.publish_marginals"), 1u);

  // The count-query span advertises exactly the ε slice charged.
  auto parsed = minijson::Parse(recorder.ToJson());
  ASSERT_TRUE(parsed.has_value());
  for (const minijson::Value& event :
       parsed->Find("traceEvents")->array) {
    if (event.Find("name")->text == "session.count_query") {
      EXPECT_DOUBLE_EQ(event.Find("args")->Find("epsilon")->number, 0.25);
    }
  }

  // The session ledger accounts for both releases and sums to spent().
  ASSERT_EQ(session->ledger().size(), 2u);
  double ledger_total = 0;
  for (const PrivacyCharge& charge : session->ledger()) {
    ledger_total += charge.epsilon;
  }
  EXPECT_DOUBLE_EQ(ledger_total, session->spent());
}

#endif  // IREDUCT_ENABLE_TRACING

TEST(ObsIntegrationTest, AccountantExportTotalsMatchSpent) {
  auto workload = SmallWorkload();
  ASSERT_TRUE(workload.ok());
  BitGen gen(5);
  auto out = RunIReduct(*workload, SmallParams(), gen);
  ASSERT_TRUE(out.ok());

  auto accountant = PrivacyAccountant::Create(1.0);
  ASSERT_TRUE(accountant.ok());
  ASSERT_TRUE(accountant->Charge("ireduct release", out->epsilon_spent).ok());
  ASSERT_TRUE(accountant->Charge("follow-up count", 0.01).ok());

  auto parsed = minijson::Parse(accountant->ExportLedgerJson());
  ASSERT_TRUE(parsed.has_value()) << accountant->ExportLedgerJson();
  double total = 0;
  for (const minijson::Value& charge : parsed->Find("charges")->array) {
    total += charge.Find("epsilon")->number;
  }
  EXPECT_DOUBLE_EQ(total, accountant->spent());
  EXPECT_DOUBLE_EQ(parsed->Find("spent")->number, accountant->spent());
  EXPECT_DOUBLE_EQ(parsed->Find("budget")->number, accountant->budget());
}

}  // namespace
}  // namespace ireduct
