#include "obs/log.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace ireduct {
namespace obs {
namespace {

// Captures sink output into a process-global buffer (the sink is a plain
// function pointer, so no lambdas with state).
std::vector<std::string>* g_captured = nullptr;

void CaptureSink(LogLevel /*level*/, std::string_view message) {
  g_captured->emplace_back(message);
}

class LogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    g_captured = &captured_;
    SetLogSink(&CaptureSink);
    previous_level_ = GetLogLevel();
  }
  void TearDown() override {
    SetLogSink(nullptr);
    SetLogLevel(previous_level_);
    g_captured = nullptr;
  }

  std::vector<std::string> captured_;
  LogLevel previous_level_ = LogLevel::kWarn;
};

TEST_F(LogTest, ParseLogLevelRoundTrips) {
  for (const LogLevel level :
       {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn, LogLevel::kError,
        LogLevel::kOff}) {
    auto parsed = ParseLogLevel(LogLevelName(level));
    ASSERT_TRUE(parsed.ok()) << LogLevelName(level);
    EXPECT_EQ(*parsed, level);
  }
  EXPECT_FALSE(ParseLogLevel("verbose").ok());
  EXPECT_FALSE(ParseLogLevel("INFO").ok());
  EXPECT_FALSE(ParseLogLevel("").ok());
}

TEST_F(LogTest, ThresholdFilters) {
  SetLogLevel(LogLevel::kWarn);
  IREDUCT_LOG(kDebug) << "dropped";
  IREDUCT_LOG(kInfo) << "dropped";
  IREDUCT_LOG(kWarn) << "kept-warn";
  IREDUCT_LOG(kError) << "kept-error";
  ASSERT_EQ(captured_.size(), 2u);
  EXPECT_NE(captured_[0].find("kept-warn"), std::string::npos);
  EXPECT_NE(captured_[1].find("kept-error"), std::string::npos);
}

TEST_F(LogTest, OffSilencesEverything) {
  SetLogLevel(LogLevel::kOff);
  IREDUCT_LOG(kError) << "dropped";
  EXPECT_TRUE(captured_.empty());
}

TEST_F(LogTest, MessageCarriesLevelAndLocation) {
  SetLogLevel(LogLevel::kInfo);
  IREDUCT_LOG(kInfo) << "the payload " << 42;
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_NE(captured_[0].find("[ireduct:info]"), std::string::npos);
  EXPECT_NE(captured_[0].find("log_test.cc"), std::string::npos);
  EXPECT_NE(captured_[0].find("the payload 42"), std::string::npos);
}

TEST_F(LogTest, FilteredStatementsDoNotEvaluateOperands) {
  SetLogLevel(LogLevel::kError);
  int evaluations = 0;
  const auto expensive = [&evaluations]() {
    ++evaluations;
    return "value";
  };
  IREDUCT_LOG(kDebug) << expensive();
  EXPECT_EQ(evaluations, 0);
  IREDUCT_LOG(kError) << expensive();
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LogTest, LogLevelEnabledMatchesThreshold) {
  SetLogLevel(LogLevel::kInfo);
  EXPECT_FALSE(LogLevelEnabled(LogLevel::kDebug));
  EXPECT_TRUE(LogLevelEnabled(LogLevel::kInfo));
  EXPECT_TRUE(LogLevelEnabled(LogLevel::kError));
  EXPECT_FALSE(LogLevelEnabled(LogLevel::kOff));
}

}  // namespace
}  // namespace obs
}  // namespace ireduct
