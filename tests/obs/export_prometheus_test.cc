#include "obs/export_prometheus.h"

#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace ireduct {
namespace obs {
namespace {

TEST(PrometheusNameTest, SanitizesToMetricCharset) {
  EXPECT_EQ(PrometheusName("ireduct.run_seconds"), "ireduct_run_seconds");
  EXPECT_EQ(PrometheusName("a.b-c d"), "a_b_c_d");
  EXPECT_EQ(PrometheusName("ns:sub"), "ns:sub");
  EXPECT_EQ(PrometheusName("2fast"), "_2fast");
}

// Byte-for-byte golden of the whole exposition for a small local registry:
// metadata lines, counter _total samples, gauge samples, cumulative
// histogram buckets with +Inf, _sum and _count.
TEST(ExportPrometheusTest, GoldenExposition) {
  MetricsRegistry registry;
  registry.counter("golden.runs").Increment(3);
  registry.gauge("golden.ratio").Set(0.5);
  // All observed values are exactly representable, so _sum is exact.
  const std::vector<double> bounds = {1.0, 8.0};
  Histogram& h = registry.histogram("golden.lat_seconds", bounds);
  h.Observe(0.5);
  h.Observe(0.5);
  h.Observe(4.0);
  h.Observe(16.0);

  const std::string expected =
      "# HELP golden_runs ireduct metric golden.runs\n"
      "# TYPE golden_runs counter\n"
      "golden_runs_total 3\n"
      "# HELP golden_ratio ireduct metric golden.ratio\n"
      "# TYPE golden_ratio gauge\n"
      "golden_ratio 0.5\n"
      "# HELP golden_lat_seconds ireduct metric golden.lat_seconds\n"
      "# TYPE golden_lat_seconds histogram\n"
      "# UNIT golden_lat_seconds seconds\n"
      "golden_lat_seconds_bucket{le=\"1\"} 2\n"
      "golden_lat_seconds_bucket{le=\"8\"} 3\n"
      "golden_lat_seconds_bucket{le=\"+Inf\"} 4\n"
      "golden_lat_seconds_sum 21\n"
      "golden_lat_seconds_count 4\n";
  EXPECT_EQ(ExportPrometheus(registry.Snapshot()), expected);
}

TEST(ExportPrometheusTest, StandardMetricsCarryHelpText) {
  MetricsRegistry registry;
  registry.counter("journal.appends").Increment();
  const std::string text = ExportPrometheus(registry.Snapshot());
  EXPECT_NE(
      text.find("# HELP journal_appends Durable ledger journal appends\n"),
      std::string::npos)
      << text;
}

TEST(ExportPrometheusTest, ByteHistogramsDeclareByteUnit) {
  MetricsRegistry registry;
  registry.histogram("unit.payload_bytes", ByteBucketBounds()).Observe(100);
  const std::string text = ExportPrometheus(registry.Snapshot());
  EXPECT_NE(text.find("# UNIT unit_payload_bytes bytes\n"),
            std::string::npos)
      << text;
}

TEST(ExportPrometheusTest, ExpositionIsDeterministicAndSorted) {
  MetricsRegistry registry;
  registry.counter("order.b").Increment();
  registry.counter("order.a").Increment();
  const std::string text = ExportPrometheus(registry.Snapshot());
  EXPECT_LT(text.find("order_a_total"), text.find("order_b_total"));
  EXPECT_EQ(text, ExportPrometheus(registry.Snapshot()));
}

// Every line of the full standard exposition obeys the text format: either
// a '#' metadata line or "name{labels} value" with a bare float value.
TEST(ExportPrometheusTest, GlobalExpositionParsesLineByLine) {
  RegisterStandardMetrics();
  const std::string text = ExportPrometheusGlobal();
  ASSERT_FALSE(text.empty());
  size_t samples = 0;
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    ASSERT_NE(end, std::string::npos) << "missing trailing newline";
    const std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.rfind("# HELP ", 0) == 0 || line.rfind("# TYPE ", 0) == 0 ||
        line.rfind("# UNIT ", 0) == 0) {
      continue;
    }
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string name = line.substr(0, space);
    const std::string value = line.substr(space + 1);
    for (const char c : name) {
      EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
                  c == ':' || c == '{' || c == '}' || c == '=' || c == '"' ||
                  c == '.' || c == '+' || c == '-')
          << line;
    }
    size_t parsed = 0;
    EXPECT_NO_THROW({ (void)std::stod(value, &parsed); }) << line;
    EXPECT_EQ(parsed, value.size()) << line;
    ++samples;
  }
  EXPECT_GT(samples, 50u);  // 31 counters + 7 gauges + 13 histograms' worth
}

}  // namespace
}  // namespace obs
}  // namespace ireduct
