#include "obs/event_log.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "algorithms/ireduct.h"
#include "common/fault.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "dp/workload.h"
#include "minijson.h"

namespace ireduct {
namespace obs {
namespace {

#if IREDUCT_ENABLE_TRACING

// Restores the (empty) installed state even when a test fails mid-body.
class ScopedInstall {
 public:
  explicit ScopedInstall(EventLog* log) { EventLog::Install(log); }
  ~ScopedInstall() { EventLog::Install(nullptr); }
};

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(EventLogTest, SerializesFieldsInOrderWithSeq) {
  EventLog log;
  log.Emit("test.alpha", {{"round", uint64_t{3}},
                          {"scale", 2.5},
                          {"label", std::string_view("x\"y")}});
  log.Emit("test.beta", {{"neg", int64_t{-4}}});
  const std::vector<std::string> lines = log.SnapshotLines();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0],
            "{\"seq\":0,\"type\":\"test.alpha\",\"round\":3,\"scale\":2.5,"
            "\"label\":\"x\\\"y\"}");
  EXPECT_EQ(lines[1], "{\"seq\":1,\"type\":\"test.beta\",\"neg\":-4}");
  for (const std::string& line : lines) {
    EXPECT_TRUE(minijson::Parse(line).has_value()) << line;
  }
}

TEST(EventLogTest, RingDropsOldestAndKeepsSeqMonotonic) {
  EventLog log(/*capacity=*/3);
  for (int i = 0; i < 7; ++i) {
    log.Emit("test.ring", {{"i", i}});
  }
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.total_emitted(), 7u);
  EXPECT_EQ(log.total_dropped(), 4u);
  const std::vector<std::string> lines = log.SnapshotLines();
  ASSERT_EQ(lines.size(), 3u);
  // The survivors are the newest three; their seq gap records the drops.
  EXPECT_EQ(lines[0].rfind("{\"seq\":4,", 0), 0u) << lines[0];
  EXPECT_EQ(lines[2].rfind("{\"seq\":6,", 0), 0u) << lines[2];
}

TEST(EventLogTest, DrainEmptiesBufferButCountersKeepRunning) {
  EventLog log;
  log.Emit("test.drain", {{"i", 1}});
  std::string out;
  log.Drain(&out);
  EXPECT_EQ(out, "{\"seq\":0,\"type\":\"test.drain\",\"i\":1}\n");
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.total_emitted(), 1u);
  log.Emit("test.drain", {{"i", 2}});
  const std::vector<std::string> lines = log.SnapshotLines();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].rfind("{\"seq\":1,", 0), 0u) << lines[0];
}

TEST(EventLogTest, SummaryCountsByTypeAcrossDrains) {
  EventLog log;
  log.Emit("test.a", {});
  log.Emit("test.b", {});
  log.Emit("test.a", {});
  std::string sink;
  log.Drain(&sink);
  log.Emit("test.a", {});
  EXPECT_EQ(log.CountType("test.a"), 3u);
  EXPECT_EQ(log.CountType("test.b"), 1u);
  EXPECT_EQ(log.SummaryJson(),
            "{\"emitted\":4,\"dropped\":0,\"buffered\":1,"
            "\"by_type\":{\"test.a\":3,\"test.b\":1}}");
}

TEST(EventLogTest, WallClockIsOptIn) {
  EventLog log;
  log.Emit("test.clock", {});
  log.set_wall_clock(true);
  log.Emit("test.clock", {});
  const std::vector<std::string> lines = log.SnapshotLines();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].find("unix_ms"), std::string::npos);
  EXPECT_NE(lines[1].find("\"unix_ms\":"), std::string::npos);
}

TEST(EventLogTest, InstallRoutesEmissionGlobally) {
  EXPECT_EQ(EventLog::Get(), nullptr);
  EventLog log;
  ScopedInstall install(&log);
  ASSERT_EQ(EventLog::Get(), &log);
  EventLog::Get()->Emit("test.global", {});
  EXPECT_EQ(log.total_emitted(), 1u);
}

// The determinism contract: a fixed workload and seed produce byte-equal
// event streams on every rerun, regardless of how many evaluator threads
// happen to exist in the process (events are only emitted from sequential
// code).
TEST(EventLogTest, MechanismEventStreamIsDeterministic) {
  auto workload = Workload::Create(
      {2, 3, 4, 5000, 6000, 7000},
      {QueryGroup{"tiny", 0, 3, 2.0}, QueryGroup{"large", 3, 6, 2.0}});
  ASSERT_TRUE(workload.ok());
  IReductParams params;
  params.epsilon = 0.2;
  params.delta = 1.0;
  params.lambda_max = 1000;
  params.lambda_delta = 10;

  auto run = [&](size_t busy_threads) {
    // Unrelated pool churn must not perturb the stream.
    ThreadPool pool(busy_threads);
    for (size_t i = 0; i < 4 * busy_threads; ++i) {
      pool.Submit([] {});
    }
    EventLog log;
    ScopedInstall install(&log);
    BitGen gen(7);
    auto out = RunIReduct(*workload, params, gen);
    EXPECT_TRUE(out.ok());
    pool.Wait();
    return log.SnapshotJsonl();
  };

  const std::string first = run(1);
  EXPECT_FALSE(first.empty());
  EXPECT_NE(first.find("\"type\":\"ireduct.round\""), std::string::npos);
  EXPECT_EQ(first, run(1));  // rerun
  EXPECT_EQ(first, run(4));  // thread count
}

TEST(EventLogTest, WriteFileAppendsAndDrains) {
  const std::string path = testing::TempDir() + "/event_log_write.jsonl";
  std::remove(path.c_str());
  EventLog log;
  log.Emit("test.write", {{"i", 1}});
  ASSERT_TRUE(log.WriteFile(path).ok());
  EXPECT_EQ(log.size(), 0u);
  log.Emit("test.write", {{"i", 2}});
  ASSERT_TRUE(log.WriteFile(path).ok());
  EXPECT_EQ(ReadAll(path),
            "{\"seq\":0,\"type\":\"test.write\",\"i\":1}\n"
            "{\"seq\":1,\"type\":\"test.write\",\"i\":2}\n");
  std::remove(path.c_str());
}

TEST(EventLogTest, FailedWriteKeepsBuffer) {
  const std::string path = testing::TempDir() + "/event_log_fail.jsonl";
  std::remove(path.c_str());
  EventLog log;
  log.Emit("test.fail", {{"i", 1}});
  ASSERT_TRUE(
      FaultInjector::Global().Configure("event_log.write:fail@1").ok());
  EXPECT_FALSE(log.WriteFile(path).ok());
  FaultInjector::Global().Reset();
  // Nothing was lost: the retry writes the same bytes.
  EXPECT_EQ(log.size(), 1u);
  ASSERT_TRUE(log.WriteFile(path).ok());
  EXPECT_EQ(ReadAll(path), "{\"seq\":0,\"type\":\"test.fail\",\"i\":1}\n");
  std::remove(path.c_str());
}

TEST(EventLogTest, ConcurrentEmitIsLossless) {
  EventLog log;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log, t] {
      for (int i = 0; i < kPerThread; ++i) {
        log.Emit("test.mt", {{"t", t}, {"i", i}});
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(log.total_emitted(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(log.size() + log.total_dropped(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  // Every buffered line has a distinct, increasing seq.
  const std::vector<std::string> lines = log.SnapshotLines();
  uint64_t prev = 0;
  bool first = true;
  for (const std::string& line : lines) {
    auto parsed = minijson::Parse(line);
    ASSERT_TRUE(parsed.has_value()) << line;
    const uint64_t seq =
        static_cast<uint64_t>(parsed->Find("seq")->number);
    if (!first) {
      EXPECT_GT(seq, prev);
    }
    prev = seq;
    first = false;
  }
}

#else  // !IREDUCT_ENABLE_TRACING

TEST(EventLogTest, StubsAreInertAndFree) {
  EventLog log;
  EXPECT_EQ(EventLog::Get(), nullptr);
  EXPECT_FALSE(EventLog::active());
  log.Emit("test.stub", {{"i", 1}});
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.total_emitted(), 0u);
  EXPECT_EQ(log.SummaryJson(),
            "{\"emitted\":0,\"dropped\":0,\"buffered\":0,\"by_type\":{}}");
  EXPECT_TRUE(log.WriteFile("/nonexistent/dir/file").ok());
}

#endif  // IREDUCT_ENABLE_TRACING

}  // namespace
}  // namespace obs
}  // namespace ireduct
