#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "minijson.h"

namespace ireduct {
namespace obs {
namespace {

// Each test registers under its own prefix: the global registry is
// process-lifetime and shared across the whole test binary.

TEST(CounterTest, IncrementsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  g.Set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.Add(-0.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
  g.Reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(HistogramTest, BucketsObservationsByUpperBound) {
  Histogram h({1.0, 10.0, 100.0});
  h.Observe(0.5);    // <= 1
  h.Observe(1.0);    // <= 1 (bounds are inclusive upper edges)
  h.Observe(5.0);    // <= 10
  h.Observe(100.5);  // overflow
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 107.0);
  const std::vector<uint64_t> counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 0u);
  EXPECT_EQ(counts[3], 1u);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
}

TEST(MetricsRegistryTest, SameNameReturnsSameMetric) {
  MetricsRegistry registry;
  Counter& a = registry.counter("reg.same");
  Counter& b = registry.counter("reg.same");
  EXPECT_EQ(&a, &b);
  a.Increment();
  EXPECT_EQ(b.value(), 1u);
}

TEST(MetricsRegistryTest, ConcurrentIncrementsAreLossless) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      // Lookup raced from every thread on purpose.
      Counter& c = registry.counter("reg.concurrent");
      Histogram& h = registry.histogram("reg.concurrent_hist");
      for (int i = 0; i < kPerThread; ++i) {
        c.Increment();
        h.Observe(1e-5);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(registry.counter("reg.concurrent").value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(registry.histogram("reg.concurrent_hist").count(),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsRegistryTest, SnapshotJsonShape) {
  MetricsRegistry registry;
  registry.counter("snap.b_counter").Increment(7);
  registry.counter("snap.a_counter").Increment(1);
  registry.gauge("snap.gauge").Set(0.25);
  const std::vector<double> bounds = {1.0, 2.0};
  registry.histogram("snap.hist", bounds).Observe(1.5);

  const std::string json = registry.SnapshotJson();
  auto parsed = minijson::Parse(json);
  ASSERT_TRUE(parsed.has_value()) << json;
  ASSERT_EQ(parsed->kind, minijson::Value::kObject);

  // Top-level kinds in fixed order.
  ASSERT_EQ(parsed->object.size(), 3u);
  EXPECT_EQ(parsed->object[0].first, "counters");
  EXPECT_EQ(parsed->object[1].first, "gauges");
  EXPECT_EQ(parsed->object[2].first, "histograms");

  const minijson::Value& counters = parsed->object[0].second;
  ASSERT_EQ(counters.object.size(), 2u);
  // Names sorted lexicographically.
  EXPECT_EQ(counters.object[0].first, "snap.a_counter");
  EXPECT_EQ(counters.object[1].first, "snap.b_counter");
  EXPECT_DOUBLE_EQ(counters.object[1].second.number, 7.0);

  const minijson::Value* gauge =
      parsed->object[1].second.Find("snap.gauge");
  ASSERT_NE(gauge, nullptr);
  EXPECT_DOUBLE_EQ(gauge->number, 0.25);

  const minijson::Value* hist =
      parsed->object[2].second.Find("snap.hist");
  ASSERT_NE(hist, nullptr);
  ASSERT_EQ(hist->object.size(), 3u);
  EXPECT_EQ(hist->object[0].first, "count");
  EXPECT_DOUBLE_EQ(hist->object[0].second.number, 1.0);
  EXPECT_EQ(hist->object[1].first, "sum");
  EXPECT_DOUBLE_EQ(hist->object[1].second.number, 1.5);
  const minijson::Value& buckets = hist->object[2].second;
  ASSERT_EQ(buckets.array.size(), 3u);  // two bounds + overflow
  EXPECT_DOUBLE_EQ(buckets.array[0].Find("count")->number, 0.0);
  EXPECT_DOUBLE_EQ(buckets.array[1].Find("count")->number, 1.0);
  EXPECT_DOUBLE_EQ(buckets.array[1].Find("le")->number, 2.0);
  EXPECT_EQ(buckets.array[2].Find("le")->text, "inf");
}

TEST(ExponentialBucketsTest, GeometricBounds) {
  const std::vector<double> bounds = ExponentialBuckets(64, 4, 4);
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_DOUBLE_EQ(bounds[0], 64);
  EXPECT_DOUBLE_EQ(bounds[1], 256);
  EXPECT_DOUBLE_EQ(bounds[2], 1024);
  EXPECT_DOUBLE_EQ(bounds[3], 4096);
}

TEST(ExponentialBucketsTest, ByteBoundsAreStableAcrossCalls) {
  // Bucket bounds bind at first registration; every byte-sized histogram
  // call site shares this helper, so it must return identical bounds (and
  // the same storage) every time.
  const auto a = ByteBucketBounds();
  const auto b = ByteBucketBounds();
  ASSERT_EQ(a.size(), 10u);
  EXPECT_EQ(a.data(), b.data());
  EXPECT_DOUBLE_EQ(a.front(), 64);
}

TEST(MetricsRegistryTest, StructuredSnapshotCarriesHistogramData) {
  MetricsRegistry registry;
  registry.counter("struct.count").Increment(2);
  registry.gauge("struct.gauge").Set(1.5);
  const std::vector<double> bounds = {1.0, 2.0};
  Histogram& h = registry.histogram("struct.hist", bounds);
  h.Observe(0.5);
  h.Observe(3.0);
  const MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.size(), 1u);
  EXPECT_EQ(snapshot.counters[0].first, "struct.count");
  EXPECT_EQ(snapshot.counters[0].second, 2u);
  ASSERT_EQ(snapshot.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snapshot.gauges[0].second, 1.5);
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  const HistogramSnapshot& hist = snapshot.histograms[0];
  EXPECT_EQ(hist.name, "struct.hist");
  ASSERT_EQ(hist.bounds.size(), 2u);
  ASSERT_EQ(hist.bucket_counts.size(), 3u);
  EXPECT_EQ(hist.bucket_counts[0], 1u);
  EXPECT_EQ(hist.bucket_counts[2], 1u);
  EXPECT_EQ(hist.count, 2u);
  EXPECT_DOUBLE_EQ(hist.sum, 3.5);
}

TEST(MetricsRegistryTest, RegisterStandardMetricsIsIdempotent) {
  RegisterStandardMetrics();
  const MetricsSnapshot first = MetricsRegistry::Global().Snapshot();
  RegisterStandardMetrics();
  const MetricsSnapshot second = MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(first.counters.size(), second.counters.size());
  EXPECT_EQ(first.gauges.size(), second.gauges.size());
  EXPECT_EQ(first.histograms.size(), second.histograms.size());
  EXPECT_GE(first.counters.size() + first.gauges.size() +
                first.histograms.size(),
            50u);
}

// Gauge::Add is a CAS loop (no atomic fetch_add for doubles); concurrent
// adds of exactly-representable values must be lossless.
TEST(GaugeTest, ConcurrentAddsAreLossless) {
  Gauge g;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&g] {
      for (int i = 0; i < kPerThread; ++i) g.Add(1.0);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_DOUBLE_EQ(g.value(), static_cast<double>(kThreads) * kPerThread);
}

// The torn-pair hazard: count() and sum() must always describe the same
// set of observations. Observing a constant while snapshotting makes any
// tear visible as sum != count * constant. TSan additionally proves the
// pair accesses are ordered (see tools/check.sh threads mode).
TEST(HistogramTest, SnapshotNeverTearsCountSumPair) {
  Histogram h({1.0});
  constexpr double kValue = 0.25;  // exactly representable
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&h, &stop] {
      while (!stop.load(std::memory_order_relaxed)) h.Observe(kValue);
    });
  }
  for (int i = 0; i < 2000; ++i) {
    uint64_t count = 0;
    double sum = 0;
    h.SnapshotData(&count, &sum);
    ASSERT_DOUBLE_EQ(sum, static_cast<double>(count) * kValue)
        << "torn count/sum pair at count=" << count;
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : writers) t.join();
}

TEST(HistogramTest, ResetRacingObserveKeepsPairCoherent) {
  Histogram h({1.0});
  constexpr double kValue = 0.5;
  std::atomic<bool> stop{false};
  std::thread writer([&h, &stop] {
    while (!stop.load(std::memory_order_relaxed)) h.Observe(kValue);
  });
  for (int i = 0; i < 500; ++i) {
    h.Reset();
    uint64_t count = 0;
    double sum = 0;
    h.SnapshotData(&count, &sum);
    ASSERT_DOUBLE_EQ(sum, static_cast<double>(count) * kValue);
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
}

TEST(MetricsRegistryTest, SnapshotRacingObserversStaysCoherent) {
  MetricsRegistry registry;
  constexpr double kValue = 2.0;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&registry, &stop] {
      Histogram& h = registry.histogram("race.hist");
      Gauge& g = registry.gauge("race.gauge");
      while (!stop.load(std::memory_order_relaxed)) {
        h.Observe(kValue);
        g.Add(1.0);
      }
    });
  }
  for (int i = 0; i < 500; ++i) {
    const MetricsSnapshot snapshot = registry.Snapshot();
    for (const HistogramSnapshot& hist : snapshot.histograms) {
      ASSERT_DOUBLE_EQ(hist.sum, static_cast<double>(hist.count) * kValue);
    }
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : writers) t.join();
}

TEST(MetricsRegistryTest, ResetAllZeroesWithoutInvalidating) {
  MetricsRegistry registry;
  Counter& c = registry.counter("reset.counter");
  c.Increment(5);
  registry.gauge("reset.gauge").Set(1.0);
  registry.ResetAll();
  EXPECT_EQ(c.value(), 0u);  // same object, zeroed
  EXPECT_DOUBLE_EQ(registry.gauge("reset.gauge").value(), 0.0);
}

TEST(MetricsRegistryTest, SnapshotIsDeterministic) {
  MetricsRegistry registry;
  registry.counter("det.one").Increment();
  registry.gauge("det.two").Set(0.5);
  EXPECT_EQ(registry.SnapshotJson(), registry.SnapshotJson());
}

#if IREDUCT_ENABLE_TRACING
TEST(MetricsMacroTest, CountsIntoGlobalRegistry) {
  const uint64_t before =
      MetricsRegistry::Global().counter("macro.count").value();
  IREDUCT_METRIC_COUNT("macro.count", 3);
  EXPECT_EQ(MetricsRegistry::Global().counter("macro.count").value(),
            before + 3);
}

TEST(MetricsMacroTest, RuntimeDisableSkipsRecording) {
  IREDUCT_METRIC_COUNT("macro.disabled", 1);  // registers the metric
  const uint64_t before =
      MetricsRegistry::Global().counter("macro.disabled").value();
  MetricsRegistry::set_enabled(false);
  IREDUCT_METRIC_COUNT("macro.disabled", 1);
  MetricsRegistry::set_enabled(true);
  EXPECT_EQ(MetricsRegistry::Global().counter("macro.disabled").value(),
            before);
}
#endif  // IREDUCT_ENABLE_TRACING

}  // namespace
}  // namespace obs
}  // namespace ireduct
