// Test-only minimal JSON parser: just enough to round-trip what the
// observability layer emits (objects, arrays, strings with basic escapes,
// numbers, booleans, null) and assert on its structure. Strict: rejects
// trailing garbage, unterminated containers, and bad escapes, so tests
// using it double as well-formedness checks on the writers.
#ifndef IREDUCT_TESTS_OBS_MINIJSON_H_
#define IREDUCT_TESTS_OBS_MINIJSON_H_

#include <cctype>
#include <cstdlib>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace minijson {

struct Value {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = kNull;
  bool boolean = false;
  double number = 0;
  std::string text;
  std::vector<Value> array;
  // Insertion-ordered, so tests can assert field order.
  std::vector<std::pair<std::string, Value>> object;

  const Value* Find(std::string_view key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class Parser {
 public:
  explicit Parser(std::string_view input) : input_(input) {}

  std::optional<Value> Parse() {
    std::optional<Value> value = ParseValue();
    SkipSpace();
    if (!value.has_value() || pos_ != input_.size()) return std::nullopt;
    return value;
  }

 private:
  void SkipSpace() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < input_.size() && input_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (input_.substr(pos_, literal.size()) == literal) {
      pos_ += literal.size();
      return true;
    }
    return false;
  }

  std::optional<std::string> ParseString() {
    if (!Consume('"')) return std::nullopt;
    std::string out;
    while (pos_ < input_.size()) {
      const char c = input_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= input_.size()) return std::nullopt;
      const char esc = input_[pos_++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > input_.size()) return std::nullopt;
          const std::string hex(input_.substr(pos_, 4));
          pos_ += 4;
          // Sufficient for the control characters the writer escapes.
          out += static_cast<char>(std::strtol(hex.c_str(), nullptr, 16));
          break;
        }
        default:
          return std::nullopt;
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<Value> ParseValue() {
    SkipSpace();
    if (pos_ >= input_.size()) return std::nullopt;
    const char c = input_[pos_];
    Value value;
    if (c == '{') {
      ++pos_;
      value.kind = Value::kObject;
      SkipSpace();
      if (Consume('}')) return value;
      for (;;) {
        std::optional<std::string> key = ParseString();
        if (!key.has_value() || !Consume(':')) return std::nullopt;
        std::optional<Value> member = ParseValue();
        if (!member.has_value()) return std::nullopt;
        value.object.emplace_back(std::move(*key), std::move(*member));
        if (Consume(',')) continue;
        if (Consume('}')) return value;
        return std::nullopt;
      }
    }
    if (c == '[') {
      ++pos_;
      value.kind = Value::kArray;
      SkipSpace();
      if (Consume(']')) return value;
      for (;;) {
        std::optional<Value> element = ParseValue();
        if (!element.has_value()) return std::nullopt;
        value.array.push_back(std::move(*element));
        if (Consume(',')) continue;
        if (Consume(']')) return value;
        return std::nullopt;
      }
    }
    if (c == '"') {
      std::optional<std::string> text = ParseString();
      if (!text.has_value()) return std::nullopt;
      value.kind = Value::kString;
      value.text = std::move(*text);
      return value;
    }
    if (ConsumeLiteral("true")) {
      value.kind = Value::kBool;
      value.boolean = true;
      return value;
    }
    if (ConsumeLiteral("false")) {
      value.kind = Value::kBool;
      return value;
    }
    if (ConsumeLiteral("null")) return value;
    // Number.
    const size_t start = pos_;
    while (pos_ < input_.size() &&
           (std::isdigit(static_cast<unsigned char>(input_[pos_])) ||
            input_[pos_] == '-' || input_[pos_] == '+' ||
            input_[pos_] == '.' || input_[pos_] == 'e' ||
            input_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return std::nullopt;
    const std::string token(input_.substr(start, pos_ - start));
    char* end = nullptr;
    value.number = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return std::nullopt;
    value.kind = Value::kNumber;
    return value;
  }

  std::string_view input_;
  size_t pos_ = 0;
};

inline std::optional<Value> Parse(std::string_view input) {
  return Parser(input).Parse();
}

}  // namespace minijson

#endif  // IREDUCT_TESTS_OBS_MINIJSON_H_
