#include "obs/trace.h"

#include <gtest/gtest.h>

#include <optional>
#include <string>

#include "minijson.h"

namespace ireduct {
namespace obs {
namespace {

#if IREDUCT_ENABLE_TRACING

// Installs a fresh recorder for the test and uninstalls on exit.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override { TraceRecorder::Install(&recorder_); }
  void TearDown() override { TraceRecorder::Install(nullptr); }

  std::optional<minijson::Value> ParsedTrace() const {
    return minijson::Parse(recorder_.ToJson());
  }

  TraceRecorder recorder_;
};

TEST_F(TraceTest, SpanRecordsCompleteEvent) {
  {
    TraceSpan span("unit.work");
    span.Arg("items", 3.0);
    span.Arg("mode", "fast");
  }
  EXPECT_EQ(recorder_.event_count(), 1u);
  EXPECT_EQ(recorder_.CountEventsNamed("unit.work"), 1u);

  auto parsed = ParsedTrace();
  ASSERT_TRUE(parsed.has_value()) << recorder_.ToJson();
  const minijson::Value* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->array.size(), 1u);
  const minijson::Value& event = events->array[0];
  EXPECT_EQ(event.Find("name")->text, "unit.work");
  EXPECT_EQ(event.Find("ph")->text, "X");
  ASSERT_NE(event.Find("ts"), nullptr);
  ASSERT_NE(event.Find("dur"), nullptr);
  const minijson::Value* args = event.Find("args");
  ASSERT_NE(args, nullptr);
  EXPECT_DOUBLE_EQ(args->Find("items")->number, 3.0);
  EXPECT_EQ(args->Find("mode")->text, "fast");
}

TEST_F(TraceTest, NestedSpansNestInTime) {
  {
    TraceSpan outer("unit.outer");
    {
      TraceSpan inner("unit.inner");
    }
  }
  auto parsed = ParsedTrace();
  ASSERT_TRUE(parsed.has_value());
  const minijson::Value* events = parsed->Find("traceEvents");
  ASSERT_EQ(events->array.size(), 2u);
  // Inner destructs first, so it is recorded first.
  const minijson::Value& inner = events->array[0];
  const minijson::Value& outer = events->array[1];
  EXPECT_EQ(inner.Find("name")->text, "unit.inner");
  EXPECT_EQ(outer.Find("name")->text, "unit.outer");
  // Containment: outer starts no later and ends no earlier than inner.
  const double outer_start = outer.Find("ts")->number;
  const double outer_end = outer_start + outer.Find("dur")->number;
  const double inner_start = inner.Find("ts")->number;
  const double inner_end = inner_start + inner.Find("dur")->number;
  EXPECT_LE(outer_start, inner_start);
  EXPECT_GE(outer_end, inner_end);
}

TEST_F(TraceTest, CancelledSpanRecordsNothing) {
  {
    TraceSpan span("unit.cancelled");
    span.Cancel();
  }
  EXPECT_EQ(recorder_.event_count(), 0u);
}

TEST_F(TraceTest, InstantEventsAndOtherData) {
  recorder_.AddInstantEvent("unit.instant", {{"k", 1.0}});
  recorder_.SetOtherData("ledger", "{\"spent\":0.5}");
  auto parsed = ParsedTrace();
  ASSERT_TRUE(parsed.has_value()) << recorder_.ToJson();
  const minijson::Value* events = parsed->Find("traceEvents");
  ASSERT_EQ(events->array.size(), 1u);
  EXPECT_EQ(events->array[0].Find("ph")->text, "i");
  const minijson::Value* other = parsed->Find("otherData");
  ASSERT_NE(other, nullptr);
  const minijson::Value* ledger = other->Find("ledger");
  ASSERT_NE(ledger, nullptr);
  EXPECT_DOUBLE_EQ(ledger->Find("spent")->number, 0.5);
}

TEST_F(TraceTest, EscapesSpecialCharacters) {
  {
    TraceSpan span("quote\"back\\slash\nnewline");
  }
  auto parsed = ParsedTrace();
  ASSERT_TRUE(parsed.has_value()) << recorder_.ToJson();
  EXPECT_EQ(parsed->Find("traceEvents")->array[0].Find("name")->text,
            "quote\"back\\slash\nnewline");
}

TEST(TraceDisabledTest, NoRecorderMeansNoRecording) {
  TraceRecorder::Install(nullptr);
  TraceRecorder bystander;
  {
    TraceSpan span("unit.unrecorded");
    span.Arg("ignored", 1.0);
    EXPECT_FALSE(span.recording());
  }
  EXPECT_EQ(bystander.event_count(), 0u);
  EXPECT_FALSE(TraceRecorder::active());
}

TEST(TraceDisabledTest, SpanBindsRecorderAtConstruction) {
  TraceRecorder recorder;
  TraceRecorder::Install(&recorder);
  {
    TraceSpan span("unit.bound");
    // Uninstalling mid-span must not lose the event (nor crash): the span
    // holds the recorder it started on.
    TraceRecorder::Install(nullptr);
  }
  EXPECT_EQ(recorder.CountEventsNamed("unit.bound"), 1u);
}

TEST(TraceJsonTest, EmptyRecorderIsValidChromeTrace) {
  TraceRecorder recorder;
  auto parsed = minijson::Parse(recorder.ToJson());
  ASSERT_TRUE(parsed.has_value());
  const minijson::Value* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_EQ(events->kind, minijson::Value::kArray);
  EXPECT_TRUE(events->array.empty());
  EXPECT_EQ(parsed->Find("displayTimeUnit")->text, "ms");
}

#else  // !IREDUCT_ENABLE_TRACING

TEST(TraceDisabledBuildTest, StubsCompileAndDoNothing) {
  TraceRecorder::Install(nullptr);
  EXPECT_FALSE(TraceRecorder::active());
  EXPECT_EQ(TraceRecorder::Get(), nullptr);
  TraceSpan span("unit.stub");
  span.Arg("k", 1.0);
  span.Cancel();
  EXPECT_FALSE(span.recording());
}

#endif  // IREDUCT_ENABLE_TRACING

}  // namespace
}  // namespace obs
}  // namespace ireduct
