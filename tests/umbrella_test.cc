// Verifies the umbrella header is self-contained and that the major
// subsystems interoperate when pulled in through it.
#include "ireduct.h"

#include <gtest/gtest.h>

namespace ireduct {
namespace {

TEST(UmbrellaTest, HeaderIsSelfContainedAndUsable) {
  auto workload = Workload::PerQuery({10, 1000});
  ASSERT_TRUE(workload.ok());
  BitGen gen(1);
  auto out = RunDwork(*workload, DworkParams{1.0}, gen);
  ASSERT_TRUE(out.ok());
  auto intervals = ConfidenceIntervals(*workload, *out, 0.9);
  ASSERT_TRUE(intervals.ok());
  EXPECT_EQ(intervals->size(), 2u);
  EXPECT_LT(OverallError(*workload, out->answers, 1.0), 10.0);
}

}  // namespace
}  // namespace ireduct
