// Minimal streaming JSON writer (and strict document parser) for the
// observability layer and config surfaces such as MechanismSpec.
//
// The writer emits compact JSON with deterministic formatting: keys appear
// exactly in the order the caller writes them, and doubles render via
// shortest round-trip (std::to_chars), so identical inputs serialize to
// identical bytes across runs. JSON has no encoding for non-finite
// numbers, so infinities and NaN are emitted as the strings
// "inf"/"-inf"/"nan" to keep every document parseable.
//
// The writer does not validate nesting beyond what its own bookkeeping
// needs; callers are expected to produce well-formed sequences (this is an
// internal serialization aid, not a general-purpose JSON library).
//
// The parser (JsonParse) covers exactly what the writer emits — objects,
// arrays, strings with basic escapes, numbers, booleans, null — and is
// strict: trailing garbage, unterminated containers and bad escapes are
// rejected with a Status, so round-trip users double as well-formedness
// checks.
#ifndef IREDUCT_OBS_JSON_H_
#define IREDUCT_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"

namespace ireduct {
namespace obs {

/// Shortest round-trip decimal rendering of `v` ("inf"/"-inf"/"nan" for
/// non-finite values, without quotes — used inside JsonWriter and for
/// human-readable log output).
std::string FormatDouble(double v);

/// JSON string escaping of `s` (quotes not included).
std::string EscapeJson(std::string_view s);

/// Streaming writer appending to a caller-owned buffer.
class JsonWriter {
 public:
  /// Appends to `*out` (borrowed; must outlive the writer).
  explicit JsonWriter(std::string* out) : out_(out) {}

  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  /// Writes an object key; the next value call provides its value.
  void Key(std::string_view key);

  void String(std::string_view value);
  void Double(double value);
  void Int(int64_t value);
  void UInt(uint64_t value);
  void Bool(bool value);
  /// Splices a pre-serialized JSON value verbatim.
  void RawValue(std::string_view json);

  /// Convenience: Key + value in one call.
  void KV(std::string_view key, std::string_view value) {
    Key(key);
    String(value);
  }
  void KV(std::string_view key, double value) {
    Key(key);
    Double(value);
  }
  void KV(std::string_view key, uint64_t value) {
    Key(key);
    UInt(value);
  }

 private:
  // Called before any value or key to insert the separating comma.
  void Separate();

  std::string* out_;
  // One flag per open container: has it emitted an element yet?
  std::vector<bool> has_element_;
  bool pending_key_ = false;
};

/// A parsed JSON document node. Object members keep insertion order so
/// consumers can assert on (or reproduce) field order.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  /// String payload for kString; the raw numeric token for kNumber (so
  /// integer-looking inputs can be re-emitted verbatim).
  std::string text;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is(Kind k) const { return kind == k; }

  /// First member with the given key, or nullptr (objects only).
  const JsonValue* Find(std::string_view key) const;
};

/// Parses one JSON document. Strict: the whole input must be consumed.
Result<JsonValue> JsonParse(std::string_view text);

}  // namespace obs
}  // namespace ireduct

#endif  // IREDUCT_OBS_JSON_H_
