#include "obs/export_prometheus.h"

#include <cctype>
#include <fstream>
#include <map>
#include <string_view>

#include "obs/json.h"

namespace ireduct {
namespace obs {

namespace {

// Help strings for the standard metric set (see RegisterStandardMetrics).
// Metrics outside the table fall back to a generated line so exposition is
// never missing mandatory metadata.
std::string_view MetricHelp(std::string_view name) {
  static const std::map<std::string_view, std::string_view>* help =
      new std::map<std::string_view, std::string_view>{
          {"bench.mechanism_runs", "Mechanism invocations by the bench harness"},
          {"checkpoint.bytes", "Serialized checkpoint payload size"},
          {"checkpoint.last_round", "Round index of the last checkpoint written"},
          {"checkpoint.serialize_seconds", "Checkpoint serialization latency"},
          {"checkpoint.write_seconds", "Durable checkpoint write latency (tmp+fsync+rename)"},
          {"checkpoint.writes", "Durable checkpoints written"},
          {"eval.parallel_trial_batches", "Trial batches dispatched to the eval pool"},
          {"eval.trials_run", "Mechanism trials executed"},
          {"events.dropped", "Structured events dropped by the ring buffer"},
          {"events.emitted", "Structured events emitted"},
          {"ireduct.batch_rounds", "Batched NoiseDown rounds (incremental engine)"},
          {"ireduct.group_retirements", "Query groups retired at their error target"},
          {"ireduct.gs_full_recomputes", "Generalized-sensitivity full recomputations"},
          {"ireduct.gs_incremental_hits", "Generalized-sensitivity incremental updates"},
          {"ireduct.heap_repushes", "Selection-heap re-pushes after stale pops"},
          {"ireduct.heap_stale_pops", "Selection-heap pops discarded as stale"},
          {"ireduct.iterations", "iReduct/iResamp refinement iterations"},
          {"ireduct.pick_seconds", "Next-group selection latency"},
          {"ireduct.resample_draws", "Per-query refinements (group size-weighted)"},
          {"ireduct.run_seconds", "End-to-end mechanism run latency"},
          {"journal.append_bytes", "Ledger journal record size"},
          {"journal.append_seconds", "Ledger journal append latency (write+fsync)"},
          {"journal.appends", "Durable ledger journal appends"},
          {"journal.fsync_seconds", "Ledger journal fsync latency"},
          {"journal.recoveries", "Ledger journal recovery scans"},
          {"marginals.cache_evictions", "Marginal cache entries evicted"},
          {"marginals.cache_hits", "Marginal cache spec hits"},
          {"marginals.cache_misses", "Marginal cache spec misses"},
          {"marginals.cache_resident_bytes", "Marginal cache resident payload bytes"},
          {"marginals.fused_passes", "Fused marginal evaluation passes"},
          {"marginals.fused_rows", "Rows scanned by fused marginal passes"},
          {"marginals.fused_seconds", "Fused marginal pass latency"},
          {"marginals.rows_per_second", "Rows/s of the last fused marginal pass"},
          {"marginals.shard_imbalance", "Max/mean shard time ratio of the last fused pass"},
          {"marginals.shard_seconds", "Per-shard fused marginal pass latency"},
          {"noise_down.envelope_draws", "NoiseDown rejection-sampler envelope draws"},
          {"noise_down.rejection_rounds", "NoiseDown rejection-sampler rounds"},
          {"noise_down.samples", "NoiseDown correlated re-samples"},
          {"noise_down_chain.reductions", "NoiseDown chain scale reductions"},
          {"noise_down_chain.starts", "NoiseDown chains started"},
          {"privacy.charges", "Privacy-accountant charges recorded"},
          {"privacy.epsilon_spent", "Cumulative epsilon spent by the accountant"},
          {"session.count_queries", "Private-session count queries served"},
          {"session.epsilon_remaining", "Epsilon remaining in the session budget"},
          {"session.marginal_releases", "Private-session marginal releases served"},
          {"session.refinable_counts", "Private-session refinable counts started"},
          {"session.request_seconds", "Private-session request latency"},
          {"thread_pool.queue_depth", "Tasks queued and not yet started"},
          {"thread_pool.task_run_seconds", "Task execution time on a worker"},
          {"thread_pool.task_wait_seconds", "Task queue-wait time before a worker picks it up"},
          {"thread_pool.tasks", "Tasks submitted to the shared pool"},
      };
  const auto it = help->find(name);
  return it == help->end() ? std::string_view() : it->second;
}

// The unit a name's suffix declares, or empty.
std::string_view MetricUnit(std::string_view prom_name) {
  if (prom_name.ends_with("_seconds")) return "seconds";
  if (prom_name.ends_with("_bytes")) return "bytes";
  return {};
}

void AppendMeta(std::string* out, const std::string& prom_name,
                std::string_view dotted_name, std::string_view type) {
  out->append("# HELP ").append(prom_name).push_back(' ');
  const std::string_view help = MetricHelp(dotted_name);
  if (help.empty()) {
    out->append("ireduct metric ");
    out->append(dotted_name);
  } else {
    out->append(help);
  }
  out->push_back('\n');
  out->append("# TYPE ").append(prom_name).push_back(' ');
  out->append(type);
  out->push_back('\n');
  const std::string_view unit = MetricUnit(prom_name);
  if (!unit.empty()) {
    out->append("# UNIT ").append(prom_name).push_back(' ');
    out->append(unit);
    out->push_back('\n');
  }
}

}  // namespace

std::string PrometheusName(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (const char c : name) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) != 0 ||
                    c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  if (!out.empty() && std::isdigit(static_cast<unsigned char>(out[0]))) {
    out.insert(out.begin(), '_');
  }
  return out;
}

std::string ExportPrometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string prom = PrometheusName(name);
    AppendMeta(&out, prom, name, "counter");
    out.append(prom).append("_total ");
    out.append(std::to_string(value));
    out.push_back('\n');
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string prom = PrometheusName(name);
    AppendMeta(&out, prom, name, "gauge");
    out.append(prom).push_back(' ');
    out.append(FormatDouble(value));
    out.push_back('\n');
  }
  for (const HistogramSnapshot& histogram : snapshot.histograms) {
    const std::string prom = PrometheusName(histogram.name);
    AppendMeta(&out, prom, histogram.name, "histogram");
    // Prometheus buckets are cumulative; the registry's are per-bucket.
    // The exposition format requires _count == the +Inf bucket, and the
    // registry's relaxed bucket counters may transiently disagree with the
    // coherent count by an in-flight observation — pin both to the larger.
    uint64_t cumulative = 0;
    for (size_t i = 0; i < histogram.bucket_counts.size(); ++i) {
      cumulative += histogram.bucket_counts[i];
      const bool last = i + 1 == histogram.bucket_counts.size();
      if (last && histogram.count > cumulative) cumulative = histogram.count;
      out.append(prom).append("_bucket{le=\"");
      out.append(i < histogram.bounds.size()
                     ? FormatDouble(histogram.bounds[i])
                     : std::string("+Inf"));
      out.append("\"} ");
      out.append(std::to_string(cumulative));
      out.push_back('\n');
    }
    out.append(prom).append("_sum ");
    out.append(FormatDouble(histogram.sum));
    out.push_back('\n');
    out.append(prom).append("_count ");
    out.append(std::to_string(cumulative));
    out.push_back('\n');
  }
  return out;
}

std::string ExportPrometheusGlobal() {
  return ExportPrometheus(MetricsRegistry::Global().Snapshot());
}

Status WritePrometheusFile(const std::string& path) {
  const std::string text = ExportPrometheusGlobal();
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) {
    return Status::IoError("opening prometheus export '" + path + "'");
  }
  file << text;
  if (!file.flush()) {
    return Status::IoError("writing prometheus export '" + path + "'");
  }
  return Status::OK();
}

}  // namespace obs
}  // namespace ireduct
