#include "obs/metrics.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/json.h"

namespace ireduct {
namespace obs {

namespace {
// Default histogram buckets: log decades covering microseconds to tens of
// seconds, the range of everything the library times.
constexpr double kDefaultSecondsBounds[] = {1e-6, 1e-5, 1e-4, 1e-3,
                                            1e-2, 0.1,  1.0,  10.0};
}  // namespace

std::atomic<bool> MetricsRegistry::enabled_{true};

void Gauge::Add(double delta) {
  double current = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  IREDUCT_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()));
  buckets_ =
      std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::Observe(double v) {
  // lower_bound keeps the edges inclusive: v == bounds_[i] belongs in the
  // bucket labelled "le": bounds_[i].
  const size_t bucket =
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin();
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double sum = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(sum, sum + v,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<uint64_t> Histogram::bucket_counts() const {
  std::vector<uint64_t> counts(bounds_.size() + 1);
  for (size_t i = 0; i < counts.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

void Histogram::Reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  IREDUCT_CHECK(gauges_.find(name) == gauges_.end() &&
                histograms_.find(name) == histograms_.end());
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  IREDUCT_CHECK(counters_.find(name) == counters_.end() &&
                histograms_.find(name) == histograms_.end());
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::span<const double> upper_bounds) {
  const std::lock_guard<std::mutex> lock(mu_);
  IREDUCT_CHECK(counters_.find(name) == counters_.end() &&
                gauges_.find(name) == gauges_.end());
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    std::vector<double> bounds(upper_bounds.begin(), upper_bounds.end());
    if (bounds.empty()) {
      bounds.assign(std::begin(kDefaultSecondsBounds),
                    std::end(kDefaultSecondsBounds));
    }
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return *it->second;
}

std::string MetricsRegistry::SnapshotJson() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  JsonWriter json(&out);
  json.BeginObject();

  json.Key("counters");
  json.BeginObject();
  for (const auto& [name, counter] : counters_) {
    json.KV(name, counter->value());
  }
  json.EndObject();

  json.Key("gauges");
  json.BeginObject();
  for (const auto& [name, gauge] : gauges_) {
    json.KV(name, gauge->value());
  }
  json.EndObject();

  json.Key("histograms");
  json.BeginObject();
  for (const auto& [name, histogram] : histograms_) {
    json.Key(name);
    json.BeginObject();
    json.KV("count", histogram->count());
    json.KV("sum", histogram->sum());
    json.Key("buckets");
    json.BeginArray();
    const std::vector<uint64_t> counts = histogram->bucket_counts();
    const std::vector<double>& bounds = histogram->bounds();
    for (size_t i = 0; i < counts.size(); ++i) {
      json.BeginObject();
      json.Key("le");
      if (i < bounds.size()) {
        json.Double(bounds[i]);
      } else {
        json.String("inf");
      }
      json.KV("count", counts[i]);
      json.EndObject();
    }
    json.EndArray();
    json.EndObject();
  }
  json.EndObject();

  json.EndObject();
  return out;
}

void MetricsRegistry::ResetAll() {
  const std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, counter] : counters_) counter->Reset();
  for (const auto& [name, gauge] : gauges_) gauge->Reset();
  for (const auto& [name, histogram] : histograms_) histogram->Reset();
}

}  // namespace obs
}  // namespace ireduct
