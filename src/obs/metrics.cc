#include "obs/metrics.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/json.h"

namespace ireduct {
namespace obs {

namespace {
// Default histogram buckets: log decades covering microseconds to tens of
// seconds, the range of everything the library times.
constexpr double kDefaultSecondsBounds[] = {1e-6, 1e-5, 1e-4, 1e-3,
                                            1e-2, 0.1,  1.0,  10.0};

// RAII guard over a Histogram's count/sum spin flag.
class PairLock {
 public:
  explicit PairLock(std::atomic_flag& flag) : flag_(flag) {
    while (flag_.test_and_set(std::memory_order_acquire)) {
    }
  }
  ~PairLock() { flag_.clear(std::memory_order_release); }
  PairLock(const PairLock&) = delete;
  PairLock& operator=(const PairLock&) = delete;

 private:
  std::atomic_flag& flag_;
};
}  // namespace

std::atomic<bool> MetricsRegistry::enabled_{true};

std::vector<double> ExponentialBuckets(double start, double factor,
                                       size_t count) {
  IREDUCT_CHECK(start > 0 && factor > 1 && count > 0);
  std::vector<double> bounds;
  bounds.reserve(count);
  double bound = start;
  for (size_t i = 0; i < count; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return bounds;
}

std::span<const double> ByteBucketBounds() {
  // 64 B .. ~16 MiB in powers of 4: wide enough for single journal grant
  // records at the low end and full checkpoint payloads at the high end.
  static const std::vector<double>* bounds =
      new std::vector<double>(ExponentialBuckets(64, 4, 10));
  return *bounds;
}

// There is no atomic fetch_add for doubles pre-C++20 (and no guarantee the
// target lowers one), so Add is the canonical CAS loop:
// compare_exchange_weak reloads `current` on failure, so each retry
// recomputes current + delta against the freshest value. Relaxed ordering
// is deliberate — gauges are monitoring data, not synchronization edges.
void Gauge::Add(double delta) {
  double current = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  IREDUCT_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()));
  buckets_ =
      std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::Observe(double v) {
  // lower_bound keeps the edges inclusive: v == bounds_[i] belongs in the
  // bucket labelled "le": bounds_[i].
  const size_t bucket =
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin();
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  const PairLock lock(pair_lock_);
  count_.store(count_.load(std::memory_order_relaxed) + 1,
               std::memory_order_relaxed);
  sum_.store(sum_.load(std::memory_order_relaxed) + v,
             std::memory_order_relaxed);
}

std::vector<uint64_t> Histogram::bucket_counts() const {
  std::vector<uint64_t> counts(bounds_.size() + 1);
  for (size_t i = 0; i < counts.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

void Histogram::SnapshotData(uint64_t* count, double* sum) const {
  const PairLock lock(pair_lock_);
  *count = count_.load(std::memory_order_relaxed);
  *sum = sum_.load(std::memory_order_relaxed);
}

void Histogram::Reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  const PairLock lock(pair_lock_);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  IREDUCT_CHECK(gauges_.find(name) == gauges_.end() &&
                histograms_.find(name) == histograms_.end());
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  IREDUCT_CHECK(counters_.find(name) == counters_.end() &&
                histograms_.find(name) == histograms_.end());
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::span<const double> upper_bounds) {
  const std::lock_guard<std::mutex> lock(mu_);
  IREDUCT_CHECK(counters_.find(name) == counters_.end() &&
                gauges_.find(name) == gauges_.end());
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    std::vector<double> bounds(upper_bounds.begin(), upper_bounds.end());
    if (bounds.empty()) {
      bounds.assign(std::begin(kDefaultSecondsBounds),
                    std::end(kDefaultSecondsBounds));
    }
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snapshot;
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.emplace_back(name, counter->value());
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.emplace_back(name, gauge->value());
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot h;
    h.name = name;
    h.bounds = histogram->bounds();
    h.bucket_counts = histogram->bucket_counts();
    histogram->SnapshotData(&h.count, &h.sum);
    snapshot.histograms.push_back(std::move(h));
  }
  return snapshot;
}

std::string MetricsRegistry::SnapshotJson() const {
  const MetricsSnapshot snapshot = Snapshot();
  std::string out;
  JsonWriter json(&out);
  json.BeginObject();

  json.Key("counters");
  json.BeginObject();
  for (const auto& [name, value] : snapshot.counters) {
    json.KV(name, value);
  }
  json.EndObject();

  json.Key("gauges");
  json.BeginObject();
  for (const auto& [name, value] : snapshot.gauges) {
    json.KV(name, value);
  }
  json.EndObject();

  json.Key("histograms");
  json.BeginObject();
  for (const HistogramSnapshot& histogram : snapshot.histograms) {
    json.Key(histogram.name);
    json.BeginObject();
    json.KV("count", histogram.count);
    json.KV("sum", histogram.sum);
    json.Key("buckets");
    json.BeginArray();
    for (size_t i = 0; i < histogram.bucket_counts.size(); ++i) {
      json.BeginObject();
      json.Key("le");
      if (i < histogram.bounds.size()) {
        json.Double(histogram.bounds[i]);
      } else {
        json.String("inf");
      }
      json.KV("count", histogram.bucket_counts[i]);
      json.EndObject();
    }
    json.EndArray();
    json.EndObject();
  }
  json.EndObject();

  json.EndObject();
  return out;
}

void MetricsRegistry::ResetAll() {
  const std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, counter] : counters_) counter->Reset();
  for (const auto& [name, gauge] : gauges_) gauge->Reset();
  for (const auto& [name, histogram] : histograms_) histogram->Reset();
}

void RegisterStandardMetrics() {
  MetricsRegistry& registry = MetricsRegistry::Global();
  // Mechanisms.
  registry.counter("bench.mechanism_runs");
  registry.counter("ireduct.iterations");
  registry.counter("ireduct.batch_rounds");
  registry.counter("ireduct.group_retirements");
  registry.counter("ireduct.resample_draws");
  registry.counter("ireduct.gs_full_recomputes");
  registry.counter("ireduct.gs_incremental_hits");
  registry.counter("ireduct.heap_repushes");
  registry.counter("ireduct.heap_stale_pops");
  registry.histogram("ireduct.run_seconds");
  registry.histogram("ireduct.pick_seconds");
  registry.counter("noise_down.samples");
  registry.counter("noise_down.rejection_rounds");
  registry.counter("noise_down.envelope_draws");
  registry.counter("noise_down_chain.starts");
  registry.counter("noise_down_chain.reductions");
  // Privacy accounting and durability.
  registry.counter("privacy.charges");
  registry.gauge("privacy.epsilon_spent");
  registry.counter("journal.appends");
  registry.counter("journal.recoveries");
  registry.histogram("journal.append_seconds");
  registry.histogram("journal.fsync_seconds");
  registry.histogram("journal.append_bytes", ByteBucketBounds());
  registry.counter("checkpoint.writes");
  registry.gauge("checkpoint.last_round");
  registry.histogram("checkpoint.serialize_seconds");
  registry.histogram("checkpoint.write_seconds");
  registry.histogram("checkpoint.bytes", ByteBucketBounds());
  // Marginal evaluation.
  registry.counter("marginals.cache_hits");
  registry.counter("marginals.cache_misses");
  registry.counter("marginals.cache_evictions");
  registry.gauge("marginals.cache_resident_bytes");
  registry.counter("marginals.fused_passes");
  registry.counter("marginals.fused_rows");
  registry.histogram("marginals.fused_seconds");
  registry.histogram("marginals.shard_seconds");
  registry.gauge("marginals.shard_imbalance");
  registry.gauge("marginals.rows_per_second");
  // Thread pool.
  registry.counter("thread_pool.tasks");
  registry.gauge("thread_pool.queue_depth");
  registry.histogram("thread_pool.task_wait_seconds");
  registry.histogram("thread_pool.task_run_seconds");
  // Serving layer.
  registry.counter("session.count_queries");
  registry.counter("session.marginal_releases");
  registry.counter("session.refinable_counts");
  registry.histogram("session.request_seconds");
  registry.gauge("session.epsilon_remaining");
  // Multi-tenant query server (service/query_server.h).
  registry.counter("server.admitted");
  registry.counter("server.shed_queue_full");
  registry.counter("server.shed_tenant_cap");
  registry.counter("server.batches");
  registry.gauge("server.queue_depth");
  registry.gauge("server.tenants");
  registry.histogram("server.request_seconds");
  // Bounds must match BatchWidthBounds() in service/query_server.cc (both
  // sides call ExponentialBuckets(1, 2, 8): widths 1..128).
  {
    const std::vector<double> width_bounds = ExponentialBuckets(1, 2, 8);
    registry.histogram("server.batch_width", width_bounds);
  }
  // Evaluation harness and telemetry self-accounting.
  registry.counter("eval.trials_run");
  registry.counter("eval.parallel_trial_batches");
  registry.counter("events.emitted");
  registry.counter("events.dropped");
}

}  // namespace obs
}  // namespace ireduct
