// Prometheus / OpenMetrics text exposition of the metrics registry.
//
// ExportPrometheus renders a MetricsSnapshot in the text format every
// Prometheus-compatible scraper ingests: one `# HELP` / `# TYPE` (and,
// where the name carries a unit suffix, `# UNIT`) comment block per metric
// family, followed by its samples. Dotted registry names map to the
// Prometheus grammar by replacing '.' with '_' (`ireduct.run_seconds` →
// `ireduct_run_seconds`); counter samples take the conventional `_total`
// suffix; histograms render cumulative `_bucket{le="..."}` series plus
// `_sum` and `_count`, ending with the mandatory `le="+Inf"` bucket.
//
// Output is deterministic: kinds in the fixed order counters/gauges/
// histograms and names sorted within each kind — exactly the snapshot
// order — so the format is golden-testable byte for byte.
#ifndef IREDUCT_OBS_EXPORT_PROMETHEUS_H_
#define IREDUCT_OBS_EXPORT_PROMETHEUS_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "obs/metrics.h"

namespace ireduct {
namespace obs {

/// Prometheus metric name for a dotted registry name (dots and any other
/// non-[a-zA-Z0-9_:] bytes become '_'; a leading digit gains a '_' prefix).
std::string PrometheusName(std::string_view name);

/// Renders `snapshot` in the Prometheus text exposition format.
std::string ExportPrometheus(const MetricsSnapshot& snapshot);

/// ExportPrometheus(MetricsRegistry::Global().Snapshot()).
std::string ExportPrometheusGlobal();

/// Writes ExportPrometheusGlobal() to `path` (truncating).
Status WritePrometheusFile(const std::string& path);

}  // namespace obs
}  // namespace ireduct

#endif  // IREDUCT_OBS_EXPORT_PROMETHEUS_H_
