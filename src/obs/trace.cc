#include "obs/trace.h"

#if IREDUCT_ENABLE_TRACING

#include <fstream>

#include "obs/json.h"

namespace ireduct {
namespace obs {

std::atomic<TraceRecorder*> TraceRecorder::installed_{nullptr};

TraceRecorder::TraceRecorder()
    : origin_(std::chrono::steady_clock::now()) {}

TraceRecorder* TraceRecorder::Get() {
  return installed_.load(std::memory_order_acquire);
}

void TraceRecorder::Install(TraceRecorder* recorder) {
  installed_.store(recorder, std::memory_order_release);
}

uint64_t TraceRecorder::NowMicros() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - origin_)
          .count());
}

void TraceRecorder::AddCompleteEvent(std::string name, uint64_t start_us,
                                     uint64_t duration_us,
                                     std::vector<TraceArg> args) {
  const std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(
      Event{std::move(name), 'X', start_us, duration_us, std::move(args)});
}

void TraceRecorder::AddInstantEvent(std::string name,
                                    std::vector<TraceArg> args) {
  const uint64_t now = NowMicros();
  const std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(Event{std::move(name), 'i', now, 0, std::move(args)});
}

void TraceRecorder::SetOtherData(std::string key, std::string json_value) {
  const std::lock_guard<std::mutex> lock(mu_);
  other_data_[std::move(key)] = std::move(json_value);
}

size_t TraceRecorder::event_count() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

size_t TraceRecorder::CountEventsNamed(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const Event& event : events_) {
    if (event.name == name) ++n;
  }
  return n;
}

std::string TraceRecorder::ToJson() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  JsonWriter json(&out);
  json.BeginObject();
  json.Key("traceEvents");
  json.BeginArray();
  for (const Event& event : events_) {
    json.BeginObject();
    json.KV("name", event.name);
    json.KV("ph", std::string_view(&event.phase, 1));
    // Single-process, single-track model: everything the library records
    // belongs to one timeline.
    json.Key("pid");
    json.Int(1);
    json.Key("tid");
    json.Int(1);
    json.KV("ts", event.start_us);
    if (event.phase == 'X') json.KV("dur", event.duration_us);
    if (event.phase == 'i') json.KV("s", "t");  // instant scope: thread
    if (!event.args.empty()) {
      json.Key("args");
      json.BeginObject();
      for (const TraceArg& arg : event.args) {
        json.Key(arg.key);
        if (arg.is_number) {
          json.Double(arg.number);
        } else {
          json.String(arg.text);
        }
      }
      json.EndObject();
    }
    json.EndObject();
  }
  json.EndArray();
  json.KV("displayTimeUnit", "ms");
  if (!other_data_.empty()) {
    json.Key("otherData");
    json.BeginObject();
    for (const auto& [key, value] : other_data_) {
      json.Key(key);
      json.RawValue(value);
    }
    json.EndObject();
  }
  json.EndObject();
  return out;
}

Status TraceRecorder::WriteFile(const std::string& path) const {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) {
    return Status::IoError("cannot open trace output '" + path + "'");
  }
  const std::string json = ToJson();
  file.write(json.data(), static_cast<std::streamsize>(json.size()));
  file.put('\n');
  if (!file.flush()) {
    return Status::IoError("failed writing trace output '" + path + "'");
  }
  return Status::OK();
}

}  // namespace obs
}  // namespace ireduct

#endif  // IREDUCT_ENABLE_TRACING
