#include "obs/log.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace ireduct {
namespace obs {

namespace {

LogLevel LevelFromEnv() {
  const char* env = std::getenv("IREDUCT_LOG_LEVEL");
  if (env != nullptr) {
    if (auto parsed = ParseLogLevel(env); parsed.ok()) return *parsed;
    std::fprintf(stderr,
                 "[ireduct:warn] ignoring invalid IREDUCT_LOG_LEVEL=%s\n",
                 env);
  }
  return LogLevel::kWarn;
}

std::atomic<int>& ThresholdStorage() {
  static std::atomic<int> threshold{static_cast<int>(LevelFromEnv())};
  return threshold;
}

std::atomic<LogSink>& SinkStorage() {
  static std::atomic<LogSink> sink{nullptr};
  return sink;
}

// Serializes stderr writes so concurrent messages stay line-atomic.
std::mutex& StderrMutex() {
  static std::mutex mu;
  return mu;
}

// Basename of a path, for compact source locations.
const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
    case LogLevel::kOff:
      return "off";
  }
  return "unknown";
}

Result<LogLevel> ParseLogLevel(std::string_view name) {
  for (const LogLevel level :
       {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn, LogLevel::kError,
        LogLevel::kOff}) {
    if (name == LogLevelName(level)) return level;
  }
  return Status::InvalidArgument("unknown log level '" + std::string(name) +
                                 "' (want debug|info|warn|error|off)");
}

void SetLogLevel(LogLevel level) {
  ThresholdStorage().store(static_cast<int>(level),
                           std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(
      ThresholdStorage().load(std::memory_order_relaxed));
}

bool LogLevelEnabled(LogLevel level) {
  return static_cast<int>(level) >=
             ThresholdStorage().load(std::memory_order_relaxed) &&
         level != LogLevel::kOff;
}

void SetLogSink(LogSink sink) {
  SinkStorage().store(sink, std::memory_order_release);
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[ireduct:" << LogLevelName(level) << "] " << Basename(file)
          << ':' << line << "] ";
}

LogMessage::~LogMessage() {
  const std::string message = stream_.str();
  if (const LogSink sink = SinkStorage().load(std::memory_order_acquire)) {
    sink(level_, message);
    return;
  }
  const std::lock_guard<std::mutex> lock(StderrMutex());
  std::fwrite(message.data(), 1, message.size(), stderr);
  std::fputc('\n', stderr);
}

}  // namespace obs
}  // namespace ireduct
