// Chrome trace_event recording: spans and instants that load directly into
// chrome://tracing or https://ui.perfetto.dev.
//
// A TraceRecorder is installed process-wide (TraceRecorder::Install) by the
// edge that wants a trace — the CLI behind --trace-out, a bench, a test.
// While none is installed, TraceSpan construction is a single atomic load
// and records nothing; with IREDUCT_ENABLE_TRACING=OFF the whole facility
// compiles to empty inline stubs, so instrumented call sites cost nothing.
//
// Recorded output is the JSON object format:
//   {"traceEvents":[{"name":...,"ph":"X","ts":...,"dur":...,...}, ...],
//    "displayTimeUnit":"ms",
//    "otherData":{...}}
// Timestamps are steady-clock microseconds since the recorder was created.
// Structured side data (e.g. the privacy accountant's ledger) rides along
// under otherData.
#ifndef IREDUCT_OBS_TRACE_H_
#define IREDUCT_OBS_TRACE_H_

// Normally injected by the build (PUBLIC on the ireduct target); default to
// enabled for out-of-tree includes.
#ifndef IREDUCT_ENABLE_TRACING
#define IREDUCT_ENABLE_TRACING 1
#endif

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

#if IREDUCT_ENABLE_TRACING

#include <atomic>
#include <chrono>
#include <map>
#include <mutex>

namespace ireduct {
namespace obs {

/// One "key": value annotation on a trace event. Only numeric and string
/// values — everything the instrumented call sites need.
struct TraceArg {
  TraceArg(std::string k, double v)
      : key(std::move(k)), number(v), is_number(true) {}
  TraceArg(std::string k, std::string v)
      : key(std::move(k)), text(std::move(v)), is_number(false) {}

  std::string key;
  double number = 0;
  std::string text;
  bool is_number;
};

/// Collects trace events; thread-safe. Install one globally to turn
/// instrumentation on.
class TraceRecorder {
 public:
  TraceRecorder();

  /// The installed recorder, or nullptr when tracing is off.
  static TraceRecorder* Get();
  /// Installs `recorder` (borrowed; caller keeps ownership and must
  /// uninstall with nullptr before destroying it).
  static void Install(TraceRecorder* recorder);
  static bool active() { return Get() != nullptr; }

  /// Microseconds since this recorder was created.
  uint64_t NowMicros() const;

  /// Complete event ("ph":"X"): a span with explicit start and duration.
  void AddCompleteEvent(std::string name, uint64_t start_us,
                        uint64_t duration_us, std::vector<TraceArg> args);
  /// Instant event ("ph":"i") at the current time.
  void AddInstantEvent(std::string name, std::vector<TraceArg> args);
  /// Attaches a pre-serialized JSON value under otherData.`key`.
  void SetOtherData(std::string key, std::string json_value);

  size_t event_count() const;
  /// Number of recorded events with the given name (test hook).
  size_t CountEventsNamed(std::string_view name) const;

  /// Serializes the Chrome trace object.
  std::string ToJson() const;
  /// Writes ToJson() to `path`.
  Status WriteFile(const std::string& path) const;

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

 private:
  struct Event {
    std::string name;
    char phase;  // 'X' or 'i'
    uint64_t start_us;
    uint64_t duration_us;  // complete events only
    std::vector<TraceArg> args;
  };

  static std::atomic<TraceRecorder*> installed_;

  std::chrono::steady_clock::time_point origin_;
  mutable std::mutex mu_;
  std::vector<Event> events_;
  std::map<std::string, std::string> other_data_;
};

/// RAII span: records a complete event from construction to destruction on
/// the recorder installed at construction time (if any).
class TraceSpan {
 public:
  explicit TraceSpan(std::string_view name)
      : recorder_(TraceRecorder::Get()), name_(name) {
    if (recorder_ != nullptr) start_us_ = recorder_->NowMicros();
  }
  ~TraceSpan() {
    if (recorder_ != nullptr && !cancelled_) {
      recorder_->AddCompleteEvent(std::move(name_), start_us_,
                                  recorder_->NowMicros() - start_us_,
                                  std::move(args_));
    }
  }

  /// Annotates the span; no-op when not recording.
  void Arg(std::string_view key, double value) {
    if (recorder_ != nullptr) args_.emplace_back(std::string(key), value);
  }
  void Arg(std::string_view key, std::string_view value) {
    if (recorder_ != nullptr) {
      args_.emplace_back(std::string(key), std::string(value));
    }
  }

  /// Drops the span: nothing is recorded at destruction.
  void Cancel() { cancelled_ = true; }

  bool recording() const { return recorder_ != nullptr; }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  TraceRecorder* recorder_;
  std::string name_;
  uint64_t start_us_ = 0;
  std::vector<TraceArg> args_;
  bool cancelled_ = false;
};

}  // namespace obs
}  // namespace ireduct

#else  // !IREDUCT_ENABLE_TRACING

namespace ireduct {
namespace obs {

// Compile-time-disabled stubs: every member is an inline no-op and
// TraceRecorder::active() is a constant false, so guarded instrumentation
// blocks fold away entirely.
struct TraceArg {
  TraceArg(std::string, double) {}
  TraceArg(std::string, std::string) {}
};

class TraceRecorder {
 public:
  static constexpr TraceRecorder* Get() { return nullptr; }
  static void Install(TraceRecorder*) {}
  static constexpr bool active() { return false; }

  uint64_t NowMicros() const { return 0; }
  void AddCompleteEvent(std::string, uint64_t, uint64_t,
                        std::vector<TraceArg>) {}
  void AddInstantEvent(std::string, std::vector<TraceArg>) {}
  void SetOtherData(std::string, std::string) {}
  size_t event_count() const { return 0; }
  size_t CountEventsNamed(std::string_view) const { return 0; }
  std::string ToJson() const { return "{\"traceEvents\":[]}"; }
  Status WriteFile(const std::string&) const { return Status::OK(); }
};

class TraceSpan {
 public:
  explicit TraceSpan(std::string_view) {}
  void Arg(std::string_view, double) {}
  void Arg(std::string_view, std::string_view) {}
  void Cancel() {}
  bool recording() const { return false; }
};

}  // namespace obs
}  // namespace ireduct

#endif  // IREDUCT_ENABLE_TRACING

#endif  // IREDUCT_OBS_TRACE_H_
