// Structured JSONL event stream: a bounded in-memory ring of serialized
// events, drained explicitly by the edge that wants them (the CLI behind
// --events-out, a bench, a test).
//
// An EventLog is installed process-wide (EventLog::Install) like a
// TraceRecorder; while none is installed, the EventLog::Get() check at each
// call site is a single atomic load and nothing is recorded. With
// IREDUCT_ENABLE_TRACING=OFF the whole facility compiles to empty inline
// stubs (Get() is a constant nullptr, so guarded emission blocks fold
// away).
//
// Each event is one JSON object on one line:
//   {"seq":12,"type":"ireduct.round","round":3,...}
// Sequence numbers are monotonic across the whole run — they keep counting
// through ring-buffer drops and drains, so a gap in `seq` is a drop, never
// a serialization bug. Content is deterministic for a fixed workload and
// seed: events are only emitted from sequential (post-parallel) code, field
// order is fixed at the call site, and doubles render shortest-round-trip.
// The one opt-in exception is set_wall_clock(true), which appends a
// "unix_ms" field for operators who want real timestamps and accept
// non-reproducible bytes.
#ifndef IREDUCT_OBS_EVENT_LOG_H_
#define IREDUCT_OBS_EVENT_LOG_H_

// Normally injected by the build (PUBLIC on the ireduct target); default to
// enabled for out-of-tree includes.
#ifndef IREDUCT_ENABLE_TRACING
#define IREDUCT_ENABLE_TRACING 1
#endif

#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

#if IREDUCT_ENABLE_TRACING

#include <atomic>
#include <deque>
#include <map>
#include <mutex>

namespace ireduct {
namespace obs {

/// One "key": value field on an event. Numeric and string values only —
/// everything the instrumented call sites need. Integer call sites should
/// pass uint64_t/int64_t explicitly; exact integers survive JSON
/// round-trips where doubles above 2^53 would not.
struct EventField {
  EventField(std::string_view k, uint64_t v);
  EventField(std::string_view k, int64_t v);
  EventField(std::string_view k, int v);
  EventField(std::string_view k, double v);
  EventField(std::string_view k, std::string_view v);

  std::string key;
  /// The field's value, already serialized as a JSON token.
  std::string json;
};

/// Bounded event collector; thread-safe. Install one globally to turn
/// event emission on.
class EventLog {
 public:
  /// `capacity` bounds the buffered (undrained) events; beyond it the
  /// oldest line is dropped and total_dropped() grows.
  explicit EventLog(size_t capacity = kDefaultCapacity);

  /// The installed log, or nullptr when event emission is off.
  static EventLog* Get();
  /// Installs `log` (borrowed; caller keeps ownership and must uninstall
  /// with nullptr before destroying it).
  static void Install(EventLog* log);
  static bool active() { return Get() != nullptr; }

  /// Records one event. `type` is a lowercase dotted identifier
  /// ("ireduct.round"); fields serialize in the given order.
  void Emit(std::string_view type, std::initializer_list<EventField> fields);

  /// Opt-in wall-clock stamping: appends "unix_ms" to every subsequent
  /// event. Off by default to keep event bytes reproducible.
  void set_wall_clock(bool on);

  /// Currently buffered (emitted, not yet drained or dropped) events.
  size_t size() const;
  /// All-time counts; unaffected by drains.
  uint64_t total_emitted() const;
  uint64_t total_dropped() const;
  /// All-time count of events with the given type.
  uint64_t CountType(std::string_view type) const;

  /// Copies the buffered lines without draining them (oldest first).
  std::vector<std::string> SnapshotLines() const;
  /// SnapshotLines() joined with '\n' (no trailing newline; empty string
  /// when nothing is buffered).
  std::string SnapshotJsonl() const;
  /// Deterministic summary object:
  /// {"emitted":N,"dropped":N,"buffered":N,"by_type":{...}} with type
  /// names sorted.
  std::string SummaryJson() const;

  /// Moves every buffered line (each newline-terminated) onto the end of
  /// `*out` and empties the buffer. Counters and sequence numbers keep
  /// running.
  void Drain(std::string* out);
  /// Appends all buffered lines to `path`, then empties the buffer — only
  /// on success, so a failed write never loses events. Honors the
  /// "event_log.write" fault point (fail/truncate/crash).
  Status WriteFile(const std::string& path);

  /// Drops buffered lines without writing them (counters keep running).
  void Clear();

  static constexpr size_t kDefaultCapacity = 65536;

  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

 private:
  static std::atomic<EventLog*> installed_;

  const size_t capacity_;
  mutable std::mutex mu_;
  std::deque<std::string> lines_;
  uint64_t next_seq_ = 0;
  uint64_t dropped_ = 0;
  bool wall_clock_ = false;
  std::map<std::string, uint64_t, std::less<>> by_type_;
};

}  // namespace obs
}  // namespace ireduct

#else  // !IREDUCT_ENABLE_TRACING

namespace ireduct {
namespace obs {

// Compile-time-disabled stubs: Get() is a constant nullptr, so
// `if (EventLog* log = EventLog::Get())` emission blocks fold away.
struct EventField {
  EventField(std::string_view, uint64_t) {}
  EventField(std::string_view, int64_t) {}
  EventField(std::string_view, int) {}
  EventField(std::string_view, double) {}
  EventField(std::string_view, std::string_view) {}
};

class EventLog {
 public:
  explicit EventLog(size_t = 0) {}
  static constexpr EventLog* Get() { return nullptr; }
  static void Install(EventLog*) {}
  static constexpr bool active() { return false; }

  void Emit(std::string_view, std::initializer_list<EventField>) {}
  void set_wall_clock(bool) {}
  size_t size() const { return 0; }
  uint64_t total_emitted() const { return 0; }
  uint64_t total_dropped() const { return 0; }
  uint64_t CountType(std::string_view) const { return 0; }
  std::vector<std::string> SnapshotLines() const { return {}; }
  std::string SnapshotJsonl() const { return std::string(); }
  std::string SummaryJson() const {
    return "{\"emitted\":0,\"dropped\":0,\"buffered\":0,\"by_type\":{}}";
  }
  void Drain(std::string*) {}
  Status WriteFile(const std::string&) { return Status::OK(); }
  void Clear() {}

  static constexpr size_t kDefaultCapacity = 0;
};

}  // namespace obs
}  // namespace ireduct

#endif  // IREDUCT_ENABLE_TRACING

#endif  // IREDUCT_OBS_EVENT_LOG_H_
