#include "obs/event_log.h"

#if IREDUCT_ENABLE_TRACING

#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <utility>

#include "common/fault.h"
#include "obs/json.h"
#include "obs/metrics.h"

namespace ireduct {
namespace obs {

namespace {
std::string JsonToken(double v) {
  // JSON has no non-finite numbers; quote them like JsonWriter::Double.
  if (!std::isfinite(v)) return '"' + FormatDouble(v) + '"';
  return FormatDouble(v);
}
}  // namespace

EventField::EventField(std::string_view k, uint64_t v)
    : key(k), json(std::to_string(v)) {}
EventField::EventField(std::string_view k, int64_t v)
    : key(k), json(std::to_string(v)) {}
EventField::EventField(std::string_view k, int v)
    : key(k), json(std::to_string(v)) {}
EventField::EventField(std::string_view k, double v)
    : key(k), json(JsonToken(v)) {}
EventField::EventField(std::string_view k, std::string_view v)
    : key(k), json('"' + EscapeJson(v) + '"') {}

std::atomic<EventLog*> EventLog::installed_{nullptr};

EventLog::EventLog(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

EventLog* EventLog::Get() {
  return installed_.load(std::memory_order_acquire);
}

void EventLog::Install(EventLog* log) {
  installed_.store(log, std::memory_order_release);
}

void EventLog::Emit(std::string_view type,
                    std::initializer_list<EventField> fields) {
  std::string line;
  bool dropped = false;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    JsonWriter json(&line);
    json.BeginObject();
    json.KV("seq", next_seq_);
    json.KV("type", type);
    for (const EventField& field : fields) {
      json.Key(field.key);
      json.RawValue(field.json);
    }
    if (wall_clock_) {
      const auto now = std::chrono::system_clock::now().time_since_epoch();
      json.KV("unix_ms",
              static_cast<uint64_t>(
                  std::chrono::duration_cast<std::chrono::milliseconds>(now)
                      .count()));
    }
    json.EndObject();
    ++next_seq_;
    ++by_type_[std::string(type)];
    if (lines_.size() == capacity_) {
      lines_.pop_front();
      ++dropped_;
      dropped = true;
    }
    lines_.push_back(std::move(line));
  }
  IREDUCT_METRIC_COUNT("events.emitted", 1);
  if (dropped) IREDUCT_METRIC_COUNT("events.dropped", 1);
}

void EventLog::set_wall_clock(bool on) {
  const std::lock_guard<std::mutex> lock(mu_);
  wall_clock_ = on;
}

size_t EventLog::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return lines_.size();
}

uint64_t EventLog::total_emitted() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return next_seq_;
}

uint64_t EventLog::total_dropped() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

uint64_t EventLog::CountType(std::string_view type) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = by_type_.find(type);
  return it == by_type_.end() ? 0 : it->second;
}

std::vector<std::string> EventLog::SnapshotLines() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return {lines_.begin(), lines_.end()};
}

std::string EventLog::SnapshotJsonl() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const std::string& line : lines_) {
    if (!out.empty()) out.push_back('\n');
    out += line;
  }
  return out;
}

std::string EventLog::SummaryJson() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  JsonWriter json(&out);
  json.BeginObject();
  json.KV("emitted", next_seq_);
  json.KV("dropped", dropped_);
  json.KV("buffered", static_cast<uint64_t>(lines_.size()));
  json.Key("by_type");
  json.BeginObject();
  for (const auto& [type, count] : by_type_) json.KV(type, count);
  json.EndObject();
  json.EndObject();
  return out;
}

void EventLog::Drain(std::string* out) {
  const std::lock_guard<std::mutex> lock(mu_);
  for (std::string& line : lines_) {
    out->append(line);
    out->push_back('\n');
  }
  lines_.clear();
}

Status EventLog::WriteFile(const std::string& path) {
  // Serialize outside any write so a failure leaves the buffer intact:
  // drained-on-success only.
  std::string payload;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    for (const std::string& line : lines_) {
      payload += line;
      payload.push_back('\n');
    }
  }
  const FaultDecision fault = FaultInjector::Global().Hit("event_log.write");
  if (fault.action == FaultAction::kFail) {
    return Status::IoError("injected fault: event log write failed");
  }
  if (fault.action == FaultAction::kTruncate) {
    // A crash mid-drain: a prefix of the stream reaches the disk. The
    // buffer is NOT cleared — nothing was acknowledged — so the next
    // drain (or the run report's own snapshot) still sees every event.
    const size_t keep =
        std::min<size_t>(fault.truncate_bytes, payload.size());
    std::ofstream file(path, std::ios::binary | std::ios::app);
    file.write(payload.data(), static_cast<std::streamsize>(keep));
    file.flush();
    return Status::IoError("injected fault: event log write torn after " +
                           std::to_string(keep) + " bytes");
  }
  std::ofstream file(path, std::ios::binary | std::ios::app);
  if (!file) {
    return Status::IoError("opening event log '" + path + "' for append");
  }
  file.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  if (!file.flush()) {
    return Status::IoError("writing event log '" + path + "'");
  }
  Clear();
  return Status::OK();
}

void EventLog::Clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  lines_.clear();
}

}  // namespace obs
}  // namespace ireduct

#endif  // IREDUCT_ENABLE_TRACING
