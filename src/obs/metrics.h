// Process-wide metrics: counters, gauges, and fixed-bucket histograms.
//
// Instrumented code records through the IREDUCT_METRIC_* macros below, which
// cache a pointer to the metric on first use (one mutex-guarded lookup per
// call site per process) and then cost a single atomic operation per event —
// cheap enough for the NoiseDown rejection loop. When the library is built
// with IREDUCT_ENABLE_TRACING=OFF the macros expand to nothing.
//
// Naming convention: lowercase dotted `subsystem.metric`, with a unit
// suffix where one applies (`_seconds`). Counters only go up; gauges hold a
// last-written value; histograms have fixed upper bucket bounds chosen at
// first registration.
//
// MetricsRegistry::Global().SnapshotJson() serializes everything with
// deterministic shape: kinds in the fixed order counters/gauges/histograms,
// metric names sorted lexicographically within each kind.
#ifndef IREDUCT_OBS_METRICS_H_
#define IREDUCT_OBS_METRICS_H_

// Normally injected by the build (PUBLIC on the ireduct target); default to
// enabled for out-of-tree includes.
#ifndef IREDUCT_ENABLE_TRACING
#define IREDUCT_ENABLE_TRACING 1
#endif

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ireduct {
namespace obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-written double value (set semantics; Add is a convenience on top).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta);
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0); }

 private:
  std::atomic<double> value_{0};
};

/// `count` geometrically spaced upper bounds starting at `start` and
/// multiplying by `factor` (> 1): {start, start*factor, ...}. The standard
/// way to build histogram bounds for quantities with a wide dynamic range
/// (bytes, rows) where log decades are too coarse or the wrong base.
std::vector<double> ExponentialBuckets(double start, double factor,
                                       size_t count);

/// Shared bounds for byte-sized histograms (journal appends, checkpoint
/// payloads): 64 B .. ~16 MiB in powers of 4. Call sites and
/// RegisterStandardMetrics must agree on bounds — they only apply at first
/// registration — so both use this one function.
std::span<const double> ByteBucketBounds();

/// Fixed-bucket histogram: bucket i counts observations <= bounds[i], with
/// an implicit final +inf bucket. Also tracks count and sum for mean
/// recovery.
class Histogram {
 public:
  /// `upper_bounds` must be strictly increasing and finite; the +inf
  /// overflow bucket is implicit.
  explicit Histogram(std::vector<double> upper_bounds);

  void Observe(double v);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts, bounds().size() + 1 entries (last is overflow).
  std::vector<uint64_t> bucket_counts() const;
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Reads count and sum as a coherent pair: never returns a count that
  /// includes an observation whose value is missing from sum (or vice
  /// versa), unlike calling count() and sum() back to back while another
  /// thread is in Observe. Bucket counts stay independently relaxed — a
  /// snapshot may be one observation ahead of or behind the pair, which is
  /// harmless for monitoring, but a torn count/sum pair would corrupt the
  /// derived mean.
  void SnapshotData(uint64_t* count, double* sum) const;
  void Reset();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0};
  // Guards the (count_, sum_) pair in Observe/Reset/SnapshotData. A spin
  // flag, not a mutex: the critical section is two relaxed stores, and
  // Observe sits on hot paths where a futex wait would be a pessimisation.
  mutable std::atomic_flag pair_lock_ = ATOMIC_FLAG_INIT;
};

/// Plain-data copy of one histogram, safe to hold after the registry lock
/// is released.
struct HistogramSnapshot {
  std::string name;
  std::vector<double> bounds;         // finite upper bounds
  std::vector<uint64_t> bucket_counts;  // bounds.size() + 1, last = +inf
  uint64_t count = 0;
  double sum = 0;
};

/// Point-in-time copy of the whole registry, names sorted within each kind.
/// The substrate for every exporter (JSON, Prometheus, run reports): taken
/// once under the registry lock, then formatted lock-free.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramSnapshot> histograms;
};

/// Owner of every metric in the process. Metrics are created on first
/// lookup and never destroyed or relocated, so references stay valid for
/// the process lifetime (Reset zeroes values without removing entries).
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  /// Runtime master switch consulted by the IREDUCT_METRIC_* macros
  /// (default on). Direct method calls are not gated.
  static bool enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }
  static void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Finds or creates the named metric. A name identifies one kind only;
  /// asking for an existing name under a different kind dies (programmer
  /// error).
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `upper_bounds` applies on first registration only; pass empty to use
  /// the default log-decade seconds buckets (1e-6 .. 10).
  Histogram& histogram(std::string_view name,
                       std::span<const double> upper_bounds = {});

  /// Coherent point-in-time copy of every metric (see MetricsSnapshot).
  MetricsSnapshot Snapshot() const;

  /// Deterministic JSON snapshot:
  /// {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string SnapshotJson() const;

  /// Zeroes every registered metric (entries and references survive).
  void ResetAll();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

 private:
  static std::atomic<bool> enabled_;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// RAII wall-clock timer recording elapsed seconds into a histogram.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& histogram)
      : histogram_(&histogram),
        start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() {
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start_;
    histogram_->Observe(elapsed.count());
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

/// Pre-registers every metric the library emits (names, kinds, bucket
/// bounds) in the global registry, so exporters and run reports show the
/// full schema — zero-valued — even for subsystems a given run never
/// exercised. Idempotent. Works in no-tracing builds too (the registry
/// always exists; only the recording macros compile away), so reports keep
/// a stable shape across build flavors.
void RegisterStandardMetrics();

}  // namespace obs
}  // namespace ireduct

// Instrumentation macros. `name` must be a string literal (it names a
// process-lifetime metric cached in a function-local static).
#if IREDUCT_ENABLE_TRACING

#define IREDUCT_METRIC_COUNT(name, n)                                      \
  do {                                                                     \
    if (::ireduct::obs::MetricsRegistry::enabled()) {                      \
      static ::ireduct::obs::Counter& ireduct_metric_counter =             \
          ::ireduct::obs::MetricsRegistry::Global().counter(name);         \
      ireduct_metric_counter.Increment(n);                                 \
    }                                                                      \
  } while (false)

#define IREDUCT_METRIC_GAUGE_SET(name, v)                                  \
  do {                                                                     \
    if (::ireduct::obs::MetricsRegistry::enabled()) {                      \
      static ::ireduct::obs::Gauge& ireduct_metric_gauge =                 \
          ::ireduct::obs::MetricsRegistry::Global().gauge(name);           \
      ireduct_metric_gauge.Set(v);                                         \
    }                                                                      \
  } while (false)

#define IREDUCT_METRIC_OBSERVE(name, v)                                    \
  do {                                                                     \
    if (::ireduct::obs::MetricsRegistry::enabled()) {                      \
      static ::ireduct::obs::Histogram& ireduct_metric_histogram =         \
          ::ireduct::obs::MetricsRegistry::Global().histogram(name);       \
      ireduct_metric_histogram.Observe(v);                                 \
    }                                                                      \
  } while (false)

// IREDUCT_METRIC_OBSERVE with explicit bucket bounds (a std::span<const
// double> or anything convertible). Bounds apply on first registration
// only, so every call site for a given name must pass the same bounds —
// share a helper like ByteBucketBounds() rather than inlining literals.
#define IREDUCT_METRIC_OBSERVE_BUCKETS(name, v, bounds)                    \
  do {                                                                     \
    if (::ireduct::obs::MetricsRegistry::enabled()) {                      \
      static ::ireduct::obs::Histogram& ireduct_metric_histogram =         \
          ::ireduct::obs::MetricsRegistry::Global().histogram(name,        \
                                                             bounds);      \
      ireduct_metric_histogram.Observe(v);                                 \
    }                                                                      \
  } while (false)

// Times the enclosing scope into histogram `name` (seconds).
#define IREDUCT_SCOPED_TIMER(var, name)                                    \
  ::ireduct::obs::ScopedTimer var(                                         \
      ::ireduct::obs::MetricsRegistry::Global().histogram(name))

#else  // !IREDUCT_ENABLE_TRACING

#define IREDUCT_METRIC_COUNT(name, n) \
  do {                                \
  } while (false)
#define IREDUCT_METRIC_GAUGE_SET(name, v) \
  do {                                    \
  } while (false)
#define IREDUCT_METRIC_OBSERVE(name, v) \
  do {                                  \
  } while (false)
#define IREDUCT_METRIC_OBSERVE_BUCKETS(name, v, bounds) \
  do {                                                  \
  } while (false)
#define IREDUCT_SCOPED_TIMER(var, name) \
  do {                                  \
  } while (false)

#endif  // IREDUCT_ENABLE_TRACING

#endif  // IREDUCT_OBS_METRICS_H_
