#include "obs/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace ireduct {
namespace obs {

std::string FormatDouble(double v) {
  if (std::isnan(v)) return "nan";
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, res.ptr);
}

std::string EscapeJson(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::Separate() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // key already wrote the ':' separator context
  }
  if (!has_element_.empty()) {
    if (has_element_.back()) out_->push_back(',');
    has_element_.back() = true;
  }
}

void JsonWriter::BeginObject() {
  Separate();
  out_->push_back('{');
  has_element_.push_back(false);
}

void JsonWriter::EndObject() {
  has_element_.pop_back();
  out_->push_back('}');
}

void JsonWriter::BeginArray() {
  Separate();
  out_->push_back('[');
  has_element_.push_back(false);
}

void JsonWriter::EndArray() {
  has_element_.pop_back();
  out_->push_back(']');
}

void JsonWriter::Key(std::string_view key) {
  Separate();
  out_->push_back('"');
  *out_ += EscapeJson(key);
  *out_ += "\":";
  pending_key_ = true;
}

void JsonWriter::String(std::string_view value) {
  Separate();
  out_->push_back('"');
  *out_ += EscapeJson(value);
  out_->push_back('"');
}

void JsonWriter::Double(double value) {
  if (!std::isfinite(value)) {
    String(FormatDouble(value));
    return;
  }
  Separate();
  *out_ += FormatDouble(value);
}

void JsonWriter::Int(int64_t value) {
  Separate();
  *out_ += std::to_string(value);
}

void JsonWriter::UInt(uint64_t value) {
  Separate();
  *out_ += std::to_string(value);
}

void JsonWriter::Bool(bool value) {
  Separate();
  *out_ += value ? "true" : "false";
}

void JsonWriter::RawValue(std::string_view json) {
  Separate();
  *out_ += json;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

// Recursive-descent parser over a string_view; every failure carries the
// byte offset it happened at.
class JsonParser {
 public:
  explicit JsonParser(std::string_view input) : input_(input) {}

  Result<JsonValue> Parse() {
    IREDUCT_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
    SkipSpace();
    if (pos_ != input_.size()) return Error("trailing characters");
    return value;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipSpace() {
    while (pos_ < input_.size() &&
           (input_[pos_] == ' ' || input_[pos_] == '\t' ||
            input_[pos_] == '\n' || input_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < input_.size() && input_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (input_.substr(pos_, literal.size()) == literal) {
      pos_ += literal.size();
      return true;
    }
    return false;
  }

  Result<std::string> ParseString() {
    if (!Consume('"')) return Error("expected string");
    std::string out;
    while (pos_ < input_.size()) {
      const char c = input_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= input_.size()) return Error("dangling escape");
      const char esc = input_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > input_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          const auto res = std::from_chars(
              input_.data() + pos_, input_.data() + pos_ + 4, code, 16);
          if (res.ec != std::errc() || res.ptr != input_.data() + pos_ + 4) {
            return Error("bad \\u escape");
          }
          pos_ += 4;
          // Sufficient for the control characters the writer escapes.
          out += static_cast<char>(code);
          break;
        }
        default:
          return Error("unknown escape");
      }
    }
    return Error("unterminated string");
  }

  Result<JsonValue> ParseValue() {
    SkipSpace();
    if (pos_ >= input_.size()) return Error("unexpected end of input");
    const char c = input_[pos_];
    JsonValue value;
    if (c == '{') {
      ++pos_;
      value.kind = JsonValue::Kind::kObject;
      if (Consume('}')) return value;
      for (;;) {
        SkipSpace();
        IREDUCT_ASSIGN_OR_RETURN(std::string key, ParseString());
        if (!Consume(':')) return Error("expected ':' after object key");
        IREDUCT_ASSIGN_OR_RETURN(JsonValue member, ParseValue());
        value.object.emplace_back(std::move(key), std::move(member));
        if (Consume(',')) continue;
        if (Consume('}')) return value;
        return Error("expected ',' or '}' in object");
      }
    }
    if (c == '[') {
      ++pos_;
      value.kind = JsonValue::Kind::kArray;
      if (Consume(']')) return value;
      for (;;) {
        IREDUCT_ASSIGN_OR_RETURN(JsonValue element, ParseValue());
        value.array.push_back(std::move(element));
        if (Consume(',')) continue;
        if (Consume(']')) return value;
        return Error("expected ',' or ']' in array");
      }
    }
    if (c == '"') {
      IREDUCT_ASSIGN_OR_RETURN(value.text, ParseString());
      value.kind = JsonValue::Kind::kString;
      return value;
    }
    if (ConsumeLiteral("true")) {
      value.kind = JsonValue::Kind::kBool;
      value.boolean = true;
      return value;
    }
    if (ConsumeLiteral("false")) {
      value.kind = JsonValue::Kind::kBool;
      return value;
    }
    if (ConsumeLiteral("null")) return value;
    const size_t start = pos_;
    while (pos_ < input_.size()) {
      const char d = input_[pos_];
      if ((d >= '0' && d <= '9') || d == '-' || d == '+' || d == '.' ||
          d == 'e' || d == 'E') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return Error("unexpected character");
    const std::string token(input_.substr(start, pos_ - start));
    char* end = nullptr;
    value.number = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return Error("malformed number");
    value.kind = JsonValue::Kind::kNumber;
    value.text = token;
    return value;
  }

  std::string_view input_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> JsonParse(std::string_view text) {
  return JsonParser(text).Parse();
}

}  // namespace obs
}  // namespace ireduct
