#include "obs/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace ireduct {
namespace obs {

std::string FormatDouble(double v) {
  if (std::isnan(v)) return "nan";
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, res.ptr);
}

std::string EscapeJson(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::Separate() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // key already wrote the ':' separator context
  }
  if (!has_element_.empty()) {
    if (has_element_.back()) out_->push_back(',');
    has_element_.back() = true;
  }
}

void JsonWriter::BeginObject() {
  Separate();
  out_->push_back('{');
  has_element_.push_back(false);
}

void JsonWriter::EndObject() {
  has_element_.pop_back();
  out_->push_back('}');
}

void JsonWriter::BeginArray() {
  Separate();
  out_->push_back('[');
  has_element_.push_back(false);
}

void JsonWriter::EndArray() {
  has_element_.pop_back();
  out_->push_back(']');
}

void JsonWriter::Key(std::string_view key) {
  Separate();
  out_->push_back('"');
  *out_ += EscapeJson(key);
  *out_ += "\":";
  pending_key_ = true;
}

void JsonWriter::String(std::string_view value) {
  Separate();
  out_->push_back('"');
  *out_ += EscapeJson(value);
  out_->push_back('"');
}

void JsonWriter::Double(double value) {
  if (!std::isfinite(value)) {
    String(FormatDouble(value));
    return;
  }
  Separate();
  *out_ += FormatDouble(value);
}

void JsonWriter::Int(int64_t value) {
  Separate();
  *out_ += std::to_string(value);
}

void JsonWriter::UInt(uint64_t value) {
  Separate();
  *out_ += std::to_string(value);
}

void JsonWriter::Bool(bool value) {
  Separate();
  *out_ += value ? "true" : "false";
}

void JsonWriter::RawValue(std::string_view json) {
  Separate();
  *out_ += json;
}

}  // namespace obs
}  // namespace ireduct
