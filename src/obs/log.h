// Leveled structured logger for the library and its tools.
//
//   IREDUCT_LOG(kInfo) << "published " << n << " marginals";
//
// The stream expression on the right is evaluated only when the message's
// level clears the process-wide threshold, so disabled log statements cost
// one relaxed atomic load. The threshold defaults to kWarn (the library is
// quiet unless something is off), can be raised/lowered programmatically
// via SetLogLevel, and is seeded once from the IREDUCT_LOG_LEVEL
// environment variable (debug|info|warn|error|off).
//
// Output goes to stderr as one line per message:
//
//   [ireduct:info] file.cc:42] published 12 marginals
//
// Tests (and embedders) can intercept messages with SetLogSink.
//
// This replaces ad-hoc std::fprintf(stderr, ...) reporting; the CHECK
// macros in common/logging.h intentionally keep their allocation-free
// fprintf path because they run on the way to abort().
#ifndef IREDUCT_OBS_LOG_H_
#define IREDUCT_OBS_LOG_H_

#include <sstream>
#include <string_view>

#include "common/result.h"

namespace ireduct {
namespace obs {

/// Severity levels, least to most severe. kOff is a threshold-only value
/// that silences everything.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

/// Lowercase name ("debug", "info", "warn", "error", "off").
const char* LogLevelName(LogLevel level);

/// Parses a case-sensitive lowercase level name.
Result<LogLevel> ParseLogLevel(std::string_view name);

/// Process-wide threshold: messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// True if a message at `level` would currently be emitted.
bool LogLevelEnabled(LogLevel level);

/// Redirects formatted messages (without trailing newline) away from
/// stderr; pass nullptr to restore the default stderr sink. The sink must
/// be callable from any thread.
using LogSink = void (*)(LogLevel level, std::string_view message);
void SetLogSink(LogSink sink);

/// One in-flight log statement; flushes on destruction. Use via
/// IREDUCT_LOG, not directly.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace obs
}  // namespace ireduct

/// IREDUCT_LOG(kInfo) << ...; — `level` is a LogLevel enumerator name.
/// The dangling-else construction skips evaluation of the streamed
/// operands entirely when the level is filtered out.
#define IREDUCT_LOG(level)                                                 \
  if (!::ireduct::obs::LogLevelEnabled(::ireduct::obs::LogLevel::level))   \
    ;                                                                      \
  else                                                                     \
    ::ireduct::obs::LogMessage(::ireduct::obs::LogLevel::level, __FILE__,  \
                               __LINE__)                                   \
        .stream()

#endif  // IREDUCT_OBS_LOG_H_
