// Binary columnar container for categorical tables — the on-disk substrate
// behind census-scale datasets (see docs/DATA.md for the byte-level spec).
//
// Layout in one sentence: a CRC-sealed header carrying the schema and the
// dataset fingerprint, then per-column value chunks grouped into fixed-size
// row blocks and laid out column-major (every chunk of column c precedes
// every chunk of column c+1), then a CRC-sealed chunk index that makes the
// whole file random-access. Values are stored as bit-packed codes (width
// chosen from the attribute's domain size) with optional per-chunk
// byte-RLE compression, or — in the zero-copy layout — as raw
// little-endian uint16 so an mmap'd file serves whole columns as
// `std::span<const uint16_t>` without copying a byte.
//
// Two consumption modes:
//  * load — ReadColumnar / ColumnarFile::ToDataset materializes a Dataset:
//    zero-copy-layout files become mmap-backed datasets (load cost is the
//    map + integrity scan, no per-value work), packed files are decoded
//    into owned columns (still far cheaper than CSV parsing);
//  * streaming — MarginalSetEvaluator::ComputeStreaming iterates
//    DecodeChunk block-by-block, so true-table evaluation never holds more
//    than two blocks of decoded values in memory (out-of-core evaluation).
//
// Integrity: the header and the chunk index carry CRC32s checked on Open;
// every chunk carries a CRC32 checked before its bytes are trusted; every
// decoded value is checked against its attribute's domain. Torn,
// truncated, or bit-flipped files are refused with a Status — never
// propagated into count tables.
#ifndef IREDUCT_DATA_COLUMNAR_H_
#define IREDUCT_DATA_COLUMNAR_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "common/result.h"
#include "data/dataset.h"

namespace ireduct {

struct ColumnarWriteOptions {
  /// Rows per block (the streaming-decode granularity). The last block may
  /// be short. Must be positive.
  uint32_t block_rows = 1u << 16;
  /// Store every chunk as raw little-endian uint16, uncompressed and
  /// column-contiguous, so Open can serve whole columns as zero-copy spans
  /// straight out of the mmap. Larger files, near-zero load cost.
  bool zero_copy_layout = false;
  /// Try byte-RLE on each bit-packed chunk and keep it when it is smaller
  /// (ignored by the zero-copy layout, which must stay raw).
  bool compress = true;
};

/// How one chunk's bytes are encoded on disk.
enum class ChunkEncoding : uint8_t {
  kRaw16 = 0,      // rows * 2 bytes of uint16 LE (zero-copy eligible)
  kPacked = 1,     // bit-packed at the column's width
  kPackedRle = 2,  // byte-RLE over the bit-packed stream
};

/// Writes `dataset` to `path` in the columnar format.
Status WriteColumnar(const Dataset& dataset, const std::string& path,
                     const ColumnarWriteOptions& options = {});

/// An open (mmap'd) columnar file. Cheap to copy — copies share the
/// mapping, which stays alive as long as any copy (or any Dataset
/// materialized from it via ToDataset) exists.
class ColumnarFile {
 public:
  /// Maps `path` and validates magic, version, header CRC, schema, and
  /// the chunk index CRC + bounds. Zero-copy-layout files additionally
  /// have every chunk CRC verified here, so ColumnSpan needs no further
  /// checks. Corrupt or truncated files are refused.
  static Result<ColumnarFile> Open(const std::string& path);

  const Schema& schema() const;
  uint64_t num_rows() const;
  uint32_t block_rows() const;
  uint32_t num_blocks() const;
  /// Dataset::Fingerprint of the content, as recorded at write time.
  uint64_t fingerprint() const;
  /// Total size of the file in bytes.
  uint64_t file_bytes() const;
  /// True for zero-copy-layout files (ColumnSpan available).
  bool zero_copy() const;
  /// Bit width column `c` is packed at.
  unsigned bit_width(uint32_t column) const;
  /// Encoding of one chunk (for introspection tooling).
  ChunkEncoding chunk_encoding(uint32_t column, uint32_t block) const;
  /// Encoded bytes of one chunk.
  uint64_t chunk_bytes(uint32_t column, uint32_t block) const;

  /// Rows in `block` (== block_rows() except possibly the last block).
  size_t RowsInBlock(uint32_t block) const;

  /// Decodes chunk (`column`, `block`) into out[0 .. RowsInBlock(block)).
  /// Verifies the chunk CRC and that every decoded value is inside the
  /// column's domain. Safe to call concurrently from multiple threads.
  Status DecodeChunk(uint32_t column, uint32_t block, uint16_t* out) const;

  /// Whole-column view straight out of the mmap. Only valid when
  /// zero_copy() is true; the span dies with the last ColumnarFile copy.
  std::span<const uint16_t> ColumnSpan(uint32_t column) const;

  /// Materializes the table: zero-copy files become mmap-backed Datasets
  /// (the mapping is kept alive by the dataset), packed files are decoded
  /// into owned columns. Either way the result's Fingerprint() equals
  /// fingerprint().
  Result<Dataset> ToDataset() const;

 private:
  struct Rep;
  explicit ColumnarFile(std::shared_ptr<const Rep> rep);
  std::shared_ptr<const Rep> rep_;
};

/// Convenience: Open + ToDataset.
Result<Dataset> ReadColumnar(const std::string& path);

namespace columnar_internal {

// Exposed for tests; not part of the public surface.

/// Bytes the bit-packed encoding of `rows` values at `width` bits needs.
size_t PackedBytes(size_t rows, unsigned width);
/// Bit width used for a domain of `domain_size` values (>= 1, <= 16).
unsigned BitWidthFor(uint32_t domain_size);
/// Packs `n` values at `width` bits into `dst` (PackedBytes(n, width)
/// bytes, need not be pre-zeroed).
void BitPack(const uint16_t* src, size_t n, unsigned width, uint8_t* dst);
/// Inverse of BitPack.
void BitUnpack(const uint8_t* src, size_t n, unsigned width, uint16_t* dst);
/// Worst-case byte-RLE output size for `n` input bytes.
size_t RleMaxEncoded(size_t n);
/// Byte-RLE encode; returns the encoded size (<= RleMaxEncoded(n)).
size_t RleEncode(const uint8_t* src, size_t n, uint8_t* dst);
/// Byte-RLE decode of exactly `want` output bytes; fails on malformed or
/// wrong-length streams.
Status RleDecode(const uint8_t* src, size_t n, uint8_t* dst, size_t want);
/// CRC32 (IEEE) over a byte range — slice-by-8, fast enough to seal
/// multi-gigabyte chunk sections.
uint32_t Crc32(const uint8_t* data, size_t n);

}  // namespace columnar_internal

}  // namespace ireduct

#endif  // IREDUCT_DATA_COLUMNAR_H_
