// Synthetic census microdata standing in for the IPUMS Brazil / US extracts
// used in Section 6 (which we cannot redistribute).
//
// The generator reproduces what matters for the paper's experiments:
//  * the exact attribute domains of Table 4 (9 attributes; e.g. 512
//    occupation codes for Brazil, 477 for the US), so the marginal
//    workloads have the paper's shapes and sparsity;
//  * heavy-tailed (Zipf-like) marginal distributions, so each marginal
//    mixes a few large counts with many small ones — the regime where
//    relative error separates the mechanisms;
//  * a dependency chain (Age → Marital status, Education → Occupation →
//    Class of worker, Age → Education, State → Birth place), so the Naive
//    Bayes task of Section 6.5 has real signal to lose to noise.
#ifndef IREDUCT_DATA_CENSUS_GENERATOR_H_
#define IREDUCT_DATA_CENSUS_GENERATOR_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "data/dataset.h"

namespace ireduct {

/// Which of the two paper populations to imitate (Table 4 domains).
enum class CensusKind { kBrazil, kUs };

/// Attribute order used by the generated datasets.
enum CensusAttribute : size_t {
  kAge = 0,
  kGender = 1,
  kMaritalStatus = 2,
  kState = 3,
  kBirthPlace = 4,
  kRace = 5,
  kEducation = 6,
  kOccupation = 7,
  kClassOfWorker = 8,
};

struct CensusConfig {
  CensusKind kind = CensusKind::kBrazil;
  /// Number of rows to generate. The paper's datasets hold ~10M (Brazil)
  /// and ~14M (US) records; all experiment parameters (δ, λmax, λΔ) are
  /// defined relative to |T|, so smaller replicas preserve curve shapes.
  uint64_t rows = 400'000;
  uint64_t seed = 2011;
};

/// Schema with the Table 4 domain sizes for the given population.
Result<Schema> CensusSchema(CensusKind kind);

/// Generates a synthetic census dataset per `config`.
Result<Dataset> GenerateCensus(const CensusConfig& config);

/// Workload-shaped generation profiles beyond the paper's census replica.
/// Each profile is a columnar/streaming benchmark scenario with a distinct
/// storage and counting character:
///  * census        — the Section 6 replica (GenerateCensus);
///  * zipf-heavy    — few attributes, one large domain under a steep Zipf:
///                    maximally hot count cells, high RLE compressibility;
///  * sparse-events — event-log shape (device/type/hour/severity/code)
///                    with retired codes: mostly near-zero cells;
///  * wide-schema   — 24 small-domain attributes: per-row work dominated
///                    by column count, 1-2 bit pack widths.
enum class DataProfile { kCensus, kZipfHeavy, kSparseEvents, kWideSchema };

/// Parses "census" / "zipf-heavy" / "sparse-events" / "wide-schema".
Result<DataProfile> ParseDataProfile(const std::string& name);

/// Inverse of ParseDataProfile.
const char* DataProfileName(DataProfile profile);

struct ProfileConfig {
  DataProfile profile = DataProfile::kCensus;
  /// Population imitated by the census profile; ignored by the others.
  CensusKind kind = CensusKind::kBrazil;
  uint64_t rows = 400'000;
  uint64_t seed = 2011;
};

/// Schema of the given profile (for the census profile, of `kind`).
Result<Schema> ProfileSchema(DataProfile profile, CensusKind kind);

/// Generates a dataset per `config`; deterministic in (profile, kind,
/// rows, seed).
Result<Dataset> GenerateProfile(const ProfileConfig& config);

}  // namespace ireduct

#endif  // IREDUCT_DATA_CENSUS_GENERATOR_H_
