#include "data/schema.h"

#include <unordered_set>

namespace ireduct {

Result<Schema> Schema::Create(std::vector<Attribute> attributes) {
  if (attributes.empty()) {
    return Status::InvalidArgument("schema requires at least one attribute");
  }
  std::unordered_set<std::string_view> seen;
  for (const Attribute& a : attributes) {
    if (a.name.empty()) {
      return Status::InvalidArgument("attribute names must be non-empty");
    }
    if (!seen.insert(a.name).second) {
      return Status::InvalidArgument("duplicate attribute name: " + a.name);
    }
    if (a.domain_size == 0 || a.domain_size > 65535) {
      return Status::InvalidArgument("attribute '" + a.name +
                                     "' domain size must be in [1, 65535]");
    }
  }
  return Schema(std::move(attributes));
}

Result<size_t> Schema::IndexOf(std::string_view name) const {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name == name) return i;
  }
  return Status::NotFound("no attribute named '" + std::string(name) + "'");
}

}  // namespace ireduct
