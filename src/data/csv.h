// CSV import/export for categorical datasets. The format is a header line
// with attribute names followed by one integer-coded row per line; domain
// sizes are validated on load against the supplied schema.
#ifndef IREDUCT_DATA_CSV_H_
#define IREDUCT_DATA_CSV_H_

#include <string>

#include "common/result.h"
#include "data/dataset.h"

namespace ireduct {

/// Writes `dataset` to `path` (attribute-name header + coded rows).
Status WriteCsv(const Dataset& dataset, const std::string& path);

/// Reads a dataset written by WriteCsv. The header must name exactly the
/// attributes of `schema` in order, and every value must be in-domain.
Result<Dataset> ReadCsv(const Schema& schema, const std::string& path);

/// Reads a CSV with no schema in hand: attribute names come from the
/// header, each domain size is inferred as (max observed code + 1). Meant
/// for importing foreign data (csv2col without --kind/--profile); a
/// dataset round-tripped through WriteCsv + ReadCsvInferred keeps its
/// values but may shrink domains to the observed support.
Result<Dataset> ReadCsvInferred(const std::string& path);

}  // namespace ireduct

#endif  // IREDUCT_DATA_CSV_H_
