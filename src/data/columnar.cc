#include "data/columnar.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <bit>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <limits>
#include <utility>
#include <vector>

#include "common/logging.h"

namespace ireduct {

// The zero-copy path serves file bytes directly as uint16_t, and the
// packed codecs rely on byte order when splitting values across bytes.
static_assert(std::endian::native == std::endian::little,
              "columnar format assumes a little-endian host");

namespace columnar_internal {

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3 polynomial, reflected), slice-by-8. The journal layer
// has a nibble-table Crc32 for its short records; chunk sections here are
// megabytes, so the 8-bytes-per-step variant earns its 8 KiB of tables.

namespace {

struct Crc32Tables {
  uint32_t t[8][256];
  Crc32Tables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int k = 0; k < 8; ++k) {
        crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
      }
      t[0][i] = crc;
    }
    for (int s = 1; s < 8; ++s) {
      for (uint32_t i = 0; i < 256; ++i) {
        t[s][i] = (t[s - 1][i] >> 8) ^ t[0][t[s - 1][i] & 0xffu];
      }
    }
  }
};

const Crc32Tables& Tables() {
  static const Crc32Tables tables;
  return tables;
}

}  // namespace

uint32_t Crc32(const uint8_t* data, size_t n) {
  const Crc32Tables& tb = Tables();
  uint32_t crc = 0xFFFFFFFFu;
  while (n >= 8) {
    uint32_t lo;
    uint32_t hi;
    std::memcpy(&lo, data, 4);
    std::memcpy(&hi, data + 4, 4);
    lo ^= crc;
    crc = tb.t[7][lo & 0xffu] ^ tb.t[6][(lo >> 8) & 0xffu] ^
          tb.t[5][(lo >> 16) & 0xffu] ^ tb.t[4][lo >> 24] ^
          tb.t[3][hi & 0xffu] ^ tb.t[2][(hi >> 8) & 0xffu] ^
          tb.t[1][(hi >> 16) & 0xffu] ^ tb.t[0][hi >> 24];
    data += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = (crc >> 8) ^ tb.t[0][(crc ^ *data++) & 0xffu];
  }
  return crc ^ 0xFFFFFFFFu;
}

// ---------------------------------------------------------------------------
// Bit packing: LSB-first into a little-endian bit stream, drained through a
// 64-bit accumulator so each value costs one shift/or and at most one
// 8-byte store.

unsigned BitWidthFor(uint32_t domain_size) {
  IREDUCT_DCHECK(domain_size >= 1 && domain_size <= 65535);
  const uint32_t max_code = domain_size - 1;
  const unsigned width = max_code == 0 ? 1u : 32u - std::countl_zero(max_code);
  return width;
}

size_t PackedBytes(size_t rows, unsigned width) {
  return (rows * width + 7) / 8;
}

void BitPack(const uint16_t* src, size_t n, unsigned width, uint8_t* dst) {
  uint64_t acc = 0;
  unsigned bits = 0;
  for (size_t i = 0; i < n; ++i) {
    acc |= static_cast<uint64_t>(src[i]) << bits;
    bits += width;
    if (bits >= 32) {
      std::memcpy(dst, &acc, 4);
      dst += 4;
      acc >>= 32;
      bits -= 32;
    }
  }
  while (bits > 0) {
    *dst++ = static_cast<uint8_t>(acc & 0xffu);
    acc >>= 8;
    bits = bits > 8 ? bits - 8 : 0;
  }
}

void BitUnpack(const uint8_t* src, size_t n, unsigned width, uint16_t* dst) {
  const uint64_t mask = (uint64_t{1} << width) - 1;
  uint64_t acc = 0;
  unsigned bits = 0;
  const uint8_t* end = src + PackedBytes(n, width);
  for (size_t i = 0; i < n; ++i) {
    while (bits < width) {
      if (end - src >= 4) {
        uint32_t word;
        std::memcpy(&word, src, 4);
        acc |= static_cast<uint64_t>(word) << bits;
        src += 4;
        bits += 32;
      } else {
        acc |= static_cast<uint64_t>(*src++) << bits;
        bits += 8;
      }
    }
    dst[i] = static_cast<uint16_t>(acc & mask);
    acc >>= width;
    bits -= width;
  }
}

// ---------------------------------------------------------------------------
// Byte-RLE framing (one control byte per run):
//   c in [0, 127]   -> the next c + 1 bytes are literals;
//   c in [128, 255] -> the next byte repeats c - 125 times (3 .. 130).
// Runs shorter than 3 never pay for a control byte, so the worst case
// (no runs at all) costs one control byte per 128 literals.

size_t RleMaxEncoded(size_t n) { return n + n / 128 + 2; }

size_t RleEncode(const uint8_t* src, size_t n, uint8_t* dst) {
  uint8_t* out = dst;
  size_t i = 0;
  size_t literal_start = 0;
  const auto flush_literals = [&](size_t end) {
    size_t pos = literal_start;
    while (pos < end) {
      const size_t take = std::min<size_t>(128, end - pos);
      *out++ = static_cast<uint8_t>(take - 1);
      std::memcpy(out, src + pos, take);
      out += take;
      pos += take;
    }
  };
  while (i < n) {
    size_t run = 1;
    while (i + run < n && src[i + run] == src[i] && run < 130) ++run;
    if (run >= 3) {
      flush_literals(i);
      *out++ = static_cast<uint8_t>(125 + run);
      *out++ = src[i];
      i += run;
      literal_start = i;
    } else {
      i += run;
    }
  }
  flush_literals(n);
  return static_cast<size_t>(out - dst);
}

Status RleDecode(const uint8_t* src, size_t n, uint8_t* dst, size_t want) {
  size_t produced = 0;
  size_t i = 0;
  while (i < n) {
    const uint8_t c = src[i++];
    if (c < 128) {
      const size_t take = static_cast<size_t>(c) + 1;
      if (i + take > n || produced + take > want) {
        return Status::IoError("malformed RLE stream: literal run overflows");
      }
      std::memcpy(dst + produced, src + i, take);
      i += take;
      produced += take;
    } else {
      const size_t run = static_cast<size_t>(c) - 125;
      if (i >= n || produced + run > want) {
        return Status::IoError("malformed RLE stream: repeat run overflows");
      }
      std::memset(dst + produced, src[i++], run);
      produced += run;
    }
  }
  if (produced != want) {
    return Status::IoError("malformed RLE stream: decoded " +
                           std::to_string(produced) + " bytes, expected " +
                           std::to_string(want));
  }
  return Status::OK();
}

}  // namespace columnar_internal

namespace {

using columnar_internal::BitPack;
using columnar_internal::BitUnpack;
using columnar_internal::BitWidthFor;
using columnar_internal::Crc32;
using columnar_internal::PackedBytes;
using columnar_internal::RleDecode;
using columnar_internal::RleEncode;
using columnar_internal::RleMaxEncoded;

// ---------------------------------------------------------------------------
// On-disk layout constants. All integers little-endian.
//
//   [ header: 56 bytes ][ schema section ][ pad to 64 ]
//   [ chunk data, column-major ]
//   [ chunk index: 20 bytes per chunk ]
//
// Header fields (offset: field):
//    0: u32 magic            8: u16 version         12: u32 num_columns
//    4: u32 data_offset     10: u16 flags
//   16: u64 num_rows        24: u32 block_rows      28: u32 num_blocks
//   32: u64 fingerprint     40: u64 index_offset
//   48: u32 index_crc       52: u32 header_crc
// header_crc covers bytes [0, data_offset) with its own field zeroed.
// Schema section: per column { u16 name_len, name bytes, u32 domain_size,
// u8 bit_width, u8 reserved }.

constexpr uint32_t kMagic = 0x4C435249u;  // "IRCL"
constexpr uint16_t kVersion = 1;
constexpr uint16_t kFlagZeroCopy = 1u << 0;
constexpr size_t kHeaderBytes = 56;
constexpr size_t kHeaderCrcOffset = 52;
constexpr size_t kIndexEntryBytes = 20;
constexpr size_t kColumnAlign = 64;

void PutU16(std::string& out, uint16_t v) {
  out.append(reinterpret_cast<const char*>(&v), 2);
}
void PutU32(std::string& out, uint32_t v) {
  out.append(reinterpret_cast<const char*>(&v), 4);
}
void PutU64(std::string& out, uint64_t v) {
  out.append(reinterpret_cast<const char*>(&v), 8);
}
uint16_t GetU16(const uint8_t* p) {
  uint16_t v;
  std::memcpy(&v, p, 2);
  return v;
}
uint32_t GetU32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
uint64_t GetU64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

struct ChunkEntry {
  uint64_t offset = 0;
  uint32_t encoded_bytes = 0;
  uint32_t crc = 0;
  ChunkEncoding encoding = ChunkEncoding::kRaw16;
};

Status WriteFailure(const std::string& path, const std::string& what) {
  return Status::IoError("columnar write to '" + path + "' failed: " + what);
}

Status OpenFailure(const std::string& path, const std::string& what) {
  return Status::IoError("columnar file '" + path + "': " + what);
}

}  // namespace

// ---------------------------------------------------------------------------
// Writer

Status WriteColumnar(const Dataset& dataset, const std::string& path,
                     const ColumnarWriteOptions& options) {
  if (options.block_rows == 0) {
    return Status::InvalidArgument("block_rows must be positive");
  }
  const Schema& schema = dataset.schema();
  const size_t num_cols = schema.num_attributes();
  const uint64_t num_rows = dataset.num_rows();
  const uint32_t block_rows = options.block_rows;
  const uint32_t num_blocks =
      static_cast<uint32_t>((num_rows + block_rows - 1) / block_rows);

  // Schema section + the final data offset (padded so the zero-copy
  // layout starts every column on a cache-line boundary; harmless
  // otherwise).
  std::string schema_bytes;
  for (size_t c = 0; c < num_cols; ++c) {
    const Attribute& attr = schema.attribute(c);
    if (attr.name.size() > 65535) {
      return WriteFailure(path, "attribute name too long");
    }
    PutU16(schema_bytes, static_cast<uint16_t>(attr.name.size()));
    schema_bytes.append(attr.name);
    PutU32(schema_bytes, attr.domain_size);
    schema_bytes.push_back(static_cast<char>(BitWidthFor(attr.domain_size)));
    schema_bytes.push_back('\0');
  }
  size_t data_offset = kHeaderBytes + schema_bytes.size();
  data_offset = (data_offset + kColumnAlign - 1) / kColumnAlign * kColumnAlign;

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return WriteFailure(path, "cannot open for writing");

  // Placeholder header + schema + padding; the real header lands last,
  // once the fingerprint, index offset, and CRCs are known.
  std::string prefix(data_offset, '\0');
  out.write(prefix.data(), static_cast<std::streamsize>(prefix.size()));

  // Chunk data, column-major, so each column of a zero-copy file is one
  // contiguous run the reader can span directly.
  std::vector<ChunkEntry> index;
  index.reserve(static_cast<size_t>(num_cols) * num_blocks);
  uint64_t pos = data_offset;
  std::vector<uint8_t> packed;
  std::vector<uint8_t> rle;
  for (size_t c = 0; c < num_cols; ++c) {
    const std::span<const uint16_t> col = dataset.column(c);
    const unsigned width = BitWidthFor(schema.attribute(c).domain_size);
    if (options.zero_copy_layout) {
      const uint64_t pad = (kColumnAlign - pos % kColumnAlign) % kColumnAlign;
      if (pad > 0) {
        static const std::array<char, kColumnAlign> zeros{};
        out.write(zeros.data(), static_cast<std::streamsize>(pad));
        pos += pad;
      }
    }
    for (uint32_t b = 0; b < num_blocks; ++b) {
      const size_t row0 = static_cast<size_t>(b) * block_rows;
      const size_t rows =
          std::min<size_t>(block_rows, static_cast<size_t>(num_rows) - row0);
      const uint8_t* bytes = nullptr;
      size_t nbytes = 0;
      ChunkEncoding encoding;
      if (options.zero_copy_layout) {
        encoding = ChunkEncoding::kRaw16;
        bytes = reinterpret_cast<const uint8_t*>(col.data() + row0);
        nbytes = rows * 2;
      } else {
        packed.resize(PackedBytes(rows, width));
        BitPack(col.data() + row0, rows, width, packed.data());
        encoding = ChunkEncoding::kPacked;
        bytes = packed.data();
        nbytes = packed.size();
        if (options.compress) {
          rle.resize(RleMaxEncoded(packed.size()));
          const size_t rle_bytes =
              RleEncode(packed.data(), packed.size(), rle.data());
          if (rle_bytes < nbytes) {
            encoding = ChunkEncoding::kPackedRle;
            bytes = rle.data();
            nbytes = rle_bytes;
          }
        }
      }
      ChunkEntry entry;
      entry.offset = pos;
      entry.encoded_bytes = static_cast<uint32_t>(nbytes);
      entry.crc = Crc32(bytes, nbytes);
      entry.encoding = encoding;
      index.push_back(entry);
      out.write(reinterpret_cast<const char*>(bytes),
                static_cast<std::streamsize>(nbytes));
      pos += nbytes;
    }
  }

  // Chunk index, sealed by its own CRC carried in the header.
  const uint64_t index_offset = pos;
  std::string index_bytes;
  index_bytes.reserve(index.size() * kIndexEntryBytes);
  for (const ChunkEntry& entry : index) {
    PutU64(index_bytes, entry.offset);
    PutU32(index_bytes, entry.encoded_bytes);
    PutU32(index_bytes, entry.crc);
    index_bytes.push_back(static_cast<char>(entry.encoding));
    index_bytes.append(3, '\0');
  }
  out.write(index_bytes.data(),
            static_cast<std::streamsize>(index_bytes.size()));
  if (!out) return WriteFailure(path, "short write");

  // Final header. header_crc is computed over [0, data_offset) with the
  // crc field zeroed, so any bit flip in the header or schema section is
  // caught before either is trusted.
  std::string header;
  header.reserve(kHeaderBytes);
  PutU32(header, kMagic);
  PutU32(header, static_cast<uint32_t>(data_offset));
  PutU16(header, kVersion);
  PutU16(header, options.zero_copy_layout ? kFlagZeroCopy : 0);
  PutU32(header, static_cast<uint32_t>(num_cols));
  PutU64(header, num_rows);
  PutU32(header, block_rows);
  PutU32(header, num_blocks);
  PutU64(header, dataset.Fingerprint());
  PutU64(header, index_offset);
  PutU32(header,
         Crc32(reinterpret_cast<const uint8_t*>(index_bytes.data()),
               index_bytes.size()));
  PutU32(header, 0);  // header_crc placeholder
  IREDUCT_DCHECK(header.size() == kHeaderBytes);
  std::string crc_input = header + schema_bytes;
  crc_input.resize(data_offset, '\0');
  const uint32_t header_crc =
      Crc32(reinterpret_cast<const uint8_t*>(crc_input.data()),
            crc_input.size());
  header.resize(kHeaderCrcOffset);
  PutU32(header, header_crc);

  out.seekp(0);
  out.write(header.data(), static_cast<std::streamsize>(header.size()));
  out.write(schema_bytes.data(),
            static_cast<std::streamsize>(schema_bytes.size()));
  out.flush();
  if (!out) return WriteFailure(path, "short write");
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Reader

struct ColumnarFile::Rep {
  std::string path;
  const uint8_t* data = nullptr;  // mmap base (nullptr for empty files)
  size_t size = 0;
  Schema schema;
  uint64_t num_rows = 0;
  uint32_t block_rows = 1;
  uint32_t num_blocks = 0;
  uint64_t fingerprint = 0;
  bool zero_copy = false;
  std::vector<ChunkEntry> chunks;       // column-major, num_cols*num_blocks
  std::vector<unsigned> bit_widths;     // per column
  std::vector<uint64_t> column_starts;  // zero-copy only: byte offsets

  explicit Rep(Schema s) : schema(std::move(s)) {}
  Rep(const Rep&) = delete;
  Rep& operator=(const Rep&) = delete;
  ~Rep() {
    if (data != nullptr) {
      ::munmap(const_cast<uint8_t*>(data), size);
    }
  }

  const ChunkEntry& chunk(uint32_t column, uint32_t block) const {
    return chunks[static_cast<size_t>(column) * num_blocks + block];
  }
  size_t RowsInBlock(uint32_t block) const {
    const uint64_t row0 = static_cast<uint64_t>(block) * block_rows;
    return static_cast<size_t>(
        std::min<uint64_t>(block_rows, num_rows - row0));
  }
};

ColumnarFile::ColumnarFile(std::shared_ptr<const Rep> rep)
    : rep_(std::move(rep)) {}

const Schema& ColumnarFile::schema() const { return rep_->schema; }
uint64_t ColumnarFile::num_rows() const { return rep_->num_rows; }
uint32_t ColumnarFile::block_rows() const { return rep_->block_rows; }
uint32_t ColumnarFile::num_blocks() const { return rep_->num_blocks; }
uint64_t ColumnarFile::fingerprint() const { return rep_->fingerprint; }
uint64_t ColumnarFile::file_bytes() const { return rep_->size; }
bool ColumnarFile::zero_copy() const { return rep_->zero_copy; }
unsigned ColumnarFile::bit_width(uint32_t column) const {
  return rep_->bit_widths[column];
}
ChunkEncoding ColumnarFile::chunk_encoding(uint32_t column,
                                           uint32_t block) const {
  return rep_->chunk(column, block).encoding;
}
uint64_t ColumnarFile::chunk_bytes(uint32_t column, uint32_t block) const {
  return rep_->chunk(column, block).encoded_bytes;
}
size_t ColumnarFile::RowsInBlock(uint32_t block) const {
  return rep_->RowsInBlock(block);
}

Result<ColumnarFile> ColumnarFile::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return OpenFailure(path, "cannot open: " + std::string(strerror(errno)));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const std::string err = strerror(errno);
    ::close(fd);
    return OpenFailure(path, "fstat failed: " + err);
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size < kHeaderBytes) {
    ::close(fd);
    return OpenFailure(path, "truncated: " + std::to_string(size) +
                                 " bytes is smaller than the header");
  }
  void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps the file alive
  if (map == MAP_FAILED) {
    return OpenFailure(path, "mmap failed: " + std::string(strerror(errno)));
  }
  const uint8_t* data = static_cast<const uint8_t*>(map);
  // From here on, any failure must unmap; wrap in a lambda and clean up on
  // error at the single exit below.
  auto fail = [&](const std::string& what) -> Result<ColumnarFile> {
    ::munmap(map, size);
    return OpenFailure(path, what);
  };

  if (GetU32(data) != kMagic) return fail("bad magic (not a columnar file)");
  const uint32_t data_offset = GetU32(data + 4);
  const uint16_t version = GetU16(data + 8);
  if (version != kVersion) {
    return fail("unsupported version " + std::to_string(version));
  }
  if (data_offset < kHeaderBytes || data_offset > size) {
    return fail("corrupt header: data offset out of bounds");
  }
  // Header CRC before trusting anything else in the prefix.
  {
    std::vector<uint8_t> prefix(data, data + data_offset);
    std::memset(prefix.data() + kHeaderCrcOffset, 0, 4);
    const uint32_t want = GetU32(data + kHeaderCrcOffset);
    const uint32_t got = Crc32(prefix.data(), prefix.size());
    if (want != got) return fail("header CRC mismatch");
  }
  const uint16_t flags = GetU16(data + 10);
  const uint32_t num_cols = GetU32(data + 12);
  const uint64_t num_rows = GetU64(data + 16);
  const uint32_t block_rows = GetU32(data + 24);
  const uint32_t num_blocks = GetU32(data + 28);
  const uint64_t fingerprint = GetU64(data + 32);
  const uint64_t index_offset = GetU64(data + 40);
  const uint32_t index_crc = GetU32(data + 48);
  if (block_rows == 0) return fail("corrupt header: zero block_rows");
  const uint64_t expect_blocks = (num_rows + block_rows - 1) / block_rows;
  if (expect_blocks != num_blocks) {
    return fail("corrupt header: block count does not match row count");
  }

  // Schema section.
  std::vector<Attribute> attributes;
  std::vector<unsigned> bit_widths;
  {
    const uint8_t* p = data + kHeaderBytes;
    const uint8_t* end = data + data_offset;
    for (uint32_t c = 0; c < num_cols; ++c) {
      if (end - p < 2) return fail("corrupt schema section");
      const uint16_t name_len = GetU16(p);
      p += 2;
      if (end - p < name_len + 6) return fail("corrupt schema section");
      Attribute attr;
      attr.name.assign(reinterpret_cast<const char*>(p), name_len);
      p += name_len;
      attr.domain_size = GetU32(p);
      p += 4;
      const unsigned width = *p;
      p += 2;
      if (attr.domain_size < 1 || attr.domain_size > 65535 ||
          width != BitWidthFor(attr.domain_size)) {
        return fail("corrupt schema: bad domain or bit width for column " +
                    std::to_string(c));
      }
      attributes.push_back(std::move(attr));
      bit_widths.push_back(width);
    }
  }
  Result<Schema> schema = Schema::Create(std::move(attributes));
  if (!schema.ok()) return fail("invalid schema: " + schema.status().message());

  // Chunk index: bounds, CRC, then per-entry validation.
  const uint64_t num_chunks = static_cast<uint64_t>(num_cols) * num_blocks;
  const uint64_t index_bytes = num_chunks * kIndexEntryBytes;
  if (index_offset < data_offset || index_offset > size ||
      index_bytes != size - index_offset) {
    return fail("corrupt header: chunk index out of bounds");
  }
  if (Crc32(data + index_offset, index_bytes) != index_crc) {
    return fail("chunk index CRC mismatch");
  }
  std::vector<ChunkEntry> chunks(num_chunks);
  for (uint64_t i = 0; i < num_chunks; ++i) {
    const uint8_t* p = data + index_offset + i * kIndexEntryBytes;
    ChunkEntry& entry = chunks[i];
    entry.offset = GetU64(p);
    entry.encoded_bytes = GetU32(p + 8);
    entry.crc = GetU32(p + 12);
    const uint8_t encoding = p[16];
    if (encoding > static_cast<uint8_t>(ChunkEncoding::kPackedRle)) {
      return fail("corrupt index: unknown chunk encoding");
    }
    entry.encoding = static_cast<ChunkEncoding>(encoding);
    if (entry.offset < data_offset ||
        entry.offset + entry.encoded_bytes > index_offset) {
      return fail("corrupt index: chunk bytes out of bounds");
    }
  }

  auto rep = std::make_shared<Rep>(std::move(schema).value());
  rep->path = path;
  rep->data = data;
  rep->size = size;
  rep->num_rows = num_rows;
  rep->block_rows = block_rows;
  rep->num_blocks = num_blocks;
  rep->fingerprint = fingerprint;
  rep->chunks = std::move(chunks);
  rep->bit_widths = std::move(bit_widths);

  if (flags & kFlagZeroCopy) {
    // Zero-copy contract: every chunk raw16, each column one contiguous
    // aligned run — verified here, along with every chunk CRC, so
    // ColumnSpan can hand out raw mapped bytes with no further checks.
    rep->column_starts.resize(num_cols, 0);
    for (uint32_t c = 0; c < num_cols; ++c) {
      uint64_t expect_offset = 0;
      for (uint32_t b = 0; b < num_blocks; ++b) {
        const ChunkEntry& entry = rep->chunk(c, b);
        const size_t rows = rep->RowsInBlock(b);
        if (entry.encoding != ChunkEncoding::kRaw16 ||
            entry.encoded_bytes != rows * 2) {
          return fail("zero-copy file holds a non-raw chunk");
        }
        if (b == 0) {
          if (entry.offset % 2 != 0) {
            return fail("zero-copy column start is misaligned");
          }
          rep->column_starts[c] = entry.offset;
        } else if (entry.offset != expect_offset) {
          return fail("zero-copy column is not contiguous");
        }
        expect_offset = entry.offset + entry.encoded_bytes;
        if (Crc32(data + entry.offset, entry.encoded_bytes) != entry.crc) {
          return fail("chunk CRC mismatch (column " + std::to_string(c) +
                      ", block " + std::to_string(b) + ")");
        }
      }
    }
    rep->zero_copy = true;
  }

  return ColumnarFile(std::move(rep));
}

Status ColumnarFile::DecodeChunk(uint32_t column, uint32_t block,
                                 uint16_t* out) const {
  const Rep& rep = *rep_;
  IREDUCT_DCHECK(column < rep.schema.num_attributes());
  IREDUCT_DCHECK(block < rep.num_blocks);
  const ChunkEntry& entry = rep.chunk(column, block);
  const uint8_t* bytes = rep.data + entry.offset;
  const size_t rows = rep.RowsInBlock(block);
  // Zero-copy files had every chunk CRC checked at Open; packed files pay
  // per chunk, on first touch.
  if (!rep.zero_copy && Crc32(bytes, entry.encoded_bytes) != entry.crc) {
    return OpenFailure(rep.path, "chunk CRC mismatch (column " +
                                     std::to_string(column) + ", block " +
                                     std::to_string(block) + ")");
  }
  const unsigned width = rep.bit_widths[column];
  const size_t packed_bytes = PackedBytes(rows, width);
  switch (entry.encoding) {
    case ChunkEncoding::kRaw16: {
      if (entry.encoded_bytes != rows * 2) {
        return OpenFailure(rep.path, "raw chunk has wrong size");
      }
      std::memcpy(out, bytes, rows * 2);
      break;
    }
    case ChunkEncoding::kPacked: {
      if (entry.encoded_bytes != packed_bytes) {
        return OpenFailure(rep.path, "packed chunk has wrong size");
      }
      BitUnpack(bytes, rows, width, out);
      break;
    }
    case ChunkEncoding::kPackedRle: {
      thread_local std::vector<uint8_t> scratch;
      scratch.resize(packed_bytes);
      IREDUCT_RETURN_NOT_OK(
          RleDecode(bytes, entry.encoded_bytes, scratch.data(), packed_bytes));
      BitUnpack(scratch.data(), rows, width, out);
      break;
    }
  }
  // Domain check: downstream counting kernels index tables by these codes,
  // so an out-of-domain value must never escape the decoder.
  const uint32_t domain = rep.schema.attribute(column).domain_size;
  uint16_t max_value = 0;
  for (size_t i = 0; i < rows; ++i) max_value = std::max(max_value, out[i]);
  if (rows > 0 && max_value >= domain) {
    return OpenFailure(rep.path,
                       "chunk holds value " + std::to_string(max_value) +
                           " outside domain of column '" +
                           rep.schema.attribute(column).name + "'");
  }
  return Status::OK();
}

std::span<const uint16_t> ColumnarFile::ColumnSpan(uint32_t column) const {
  const Rep& rep = *rep_;
  IREDUCT_DCHECK(rep.zero_copy);
  if (rep.num_rows == 0) return {};
  return {reinterpret_cast<const uint16_t*>(rep.data +
                                            rep.column_starts[column]),
          static_cast<size_t>(rep.num_rows)};
}

namespace {

// Adapter that routes a Dataset onto the mmap'd column spans; holds the
// Rep so the mapping outlives every dataset copy.
class ColumnarBacking final : public DatasetBacking {
 public:
  ColumnarBacking(ColumnarFile file, size_t num_cols) : file_(std::move(file)) {
    columns_.reserve(num_cols);
    for (size_t c = 0; c < num_cols; ++c) {
      columns_.push_back(file_.ColumnSpan(static_cast<uint32_t>(c)));
    }
  }
  size_t num_rows() const override {
    return static_cast<size_t>(file_.num_rows());
  }
  std::span<const uint16_t> column(size_t c) const override {
    return columns_[c];
  }

 private:
  ColumnarFile file_;
  std::vector<std::span<const uint16_t>> columns_;
};

}  // namespace

Result<Dataset> ColumnarFile::ToDataset() const {
  const Rep& rep = *rep_;
  const size_t num_cols = rep.schema.num_attributes();
  if (rep.num_rows > std::numeric_limits<size_t>::max() / 2) {
    return OpenFailure(rep.path, "row count exceeds addressable memory");
  }
  if (rep.zero_copy) {
    return Dataset::FromBacking(
        rep.schema, std::make_shared<ColumnarBacking>(*this, num_cols));
  }
  std::vector<std::vector<uint16_t>> columns(num_cols);
  for (uint32_t c = 0; c < num_cols; ++c) {
    columns[c].resize(static_cast<size_t>(rep.num_rows));
    for (uint32_t b = 0; b < rep.num_blocks; ++b) {
      IREDUCT_RETURN_NOT_OK(DecodeChunk(
          c, b, columns[c].data() + static_cast<size_t>(b) * rep.block_rows));
    }
  }
  // FromColumns re-validates domains; cheap relative to decode and keeps
  // one construction path.
  return Dataset::FromColumns(rep.schema, std::move(columns));
}

Result<Dataset> ReadColumnar(const std::string& path) {
  IREDUCT_ASSIGN_OR_RETURN(ColumnarFile file, ColumnarFile::Open(path));
  return file.ToDataset();
}

}  // namespace ireduct
