// Schema for categorical relational data: named attributes with finite
// integer-coded domains, matching the census microdata of Section 6
// (Table 4 lists the attribute domain sizes).
#ifndef IREDUCT_DATA_SCHEMA_H_
#define IREDUCT_DATA_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace ireduct {

/// One categorical attribute; values are coded 0 .. domain_size-1.
struct Attribute {
  std::string name;
  uint32_t domain_size = 0;
};

/// An ordered list of attributes with name lookup.
class Schema {
 public:
  /// Validates: at least one attribute, unique non-empty names, every
  /// domain size in [1, 65535] (values are stored as uint16_t).
  static Result<Schema> Create(std::vector<Attribute> attributes);

  size_t num_attributes() const { return attributes_.size(); }
  const Attribute& attribute(size_t i) const { return attributes_[i]; }
  const std::vector<Attribute>& attributes() const { return attributes_; }

  /// Index of the attribute with the given name.
  Result<size_t> IndexOf(std::string_view name) const;

 private:
  explicit Schema(std::vector<Attribute> attributes)
      : attributes_(std::move(attributes)) {}

  std::vector<Attribute> attributes_;
};

}  // namespace ireduct

#endif  // IREDUCT_DATA_SCHEMA_H_
