#include "data/csv.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

namespace ireduct {

Status WriteCsv(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open '" + path + "' for writing");
  const Schema& schema = dataset.schema();
  for (size_t c = 0; c < schema.num_attributes(); ++c) {
    out << (c ? "," : "") << schema.attribute(c).name;
  }
  out << '\n';
  for (size_t r = 0; r < dataset.num_rows(); ++r) {
    for (size_t c = 0; c < schema.num_attributes(); ++c) {
      out << (c ? "," : "") << dataset.value(r, c);
    }
    out << '\n';
  }
  if (!out) return Status::IoError("write to '" + path + "' failed");
  return Status::OK();
}

namespace {

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  std::istringstream ss(line);
  while (std::getline(ss, cell, ',')) cells.push_back(cell);
  if (!line.empty() && line.back() == ',') cells.emplace_back();
  return cells;
}

// Parses one data line's cells in place (no per-cell string splits — the
// import hot path) into `row`, `width` uint16 codes.
Status ParseCsvRow(const std::string& line, size_t line_no, size_t width,
                   uint16_t* row) {
  const char* p = line.c_str();
  for (size_t c = 0; c < width; ++c) {
    char* end = nullptr;
    const long parsed = std::strtol(p, &end, 10);
    const char sep = c + 1 < width ? ',' : '\0';
    if (end == p || *end != sep || parsed < 0 || parsed > 65535) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": bad value or wrong number of cells");
    }
    row[c] = static_cast<uint16_t>(parsed);
    p = end + (c + 1 < width ? 1 : 0);
  }
  return Status::OK();
}

// Rows appended per AppendRows call: large enough to amortize the bulk
// append's per-call work, small enough to stay cache-warm.
constexpr size_t kCsvBatchRows = 4096;

}  // namespace

Result<Dataset> ReadCsv(const Schema& schema, const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open '" + path + "' for reading");

  std::string line;
  if (!std::getline(in, line)) {
    return Status::IoError("'" + path + "' is empty");
  }
  const std::vector<std::string> header = SplitCsvLine(line);
  if (header.size() != schema.num_attributes()) {
    return Status::InvalidArgument("header arity does not match schema");
  }
  for (size_t c = 0; c < header.size(); ++c) {
    if (header[c] != schema.attribute(c).name) {
      return Status::InvalidArgument("header column '" + header[c] +
                                     "' does not match attribute '" +
                                     schema.attribute(c).name + "'");
    }
  }

  Dataset dataset(schema);
  const size_t width = schema.num_attributes();
  // Rows accumulate row-major and land through the bulk AppendRows path:
  // one domain-validation sweep and one contiguous copy per column per
  // batch, instead of per-row schema lookups.
  std::vector<uint16_t> batch;
  batch.reserve(kCsvBatchRows * width);
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    batch.resize(batch.size() + width);
    IREDUCT_RETURN_NOT_OK(ParseCsvRow(line, line_no, width,
                                      batch.data() + batch.size() - width));
    if (batch.size() >= kCsvBatchRows * width) {
      IREDUCT_RETURN_NOT_OK(dataset.AppendRows(batch));
      batch.clear();
    }
  }
  if (!batch.empty()) {
    IREDUCT_RETURN_NOT_OK(dataset.AppendRows(batch));
  }
  return dataset;
}

Result<Dataset> ReadCsvInferred(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open '" + path + "' for reading");

  std::string line;
  if (!std::getline(in, line)) {
    return Status::IoError("'" + path + "' is empty");
  }
  const std::vector<std::string> names = SplitCsvLine(line);
  if (names.empty()) {
    return Status::InvalidArgument("'" + path + "' has an empty header");
  }
  const size_t width = names.size();

  // One pass collecting the value stream column-major while tracking each
  // column's max code; the schema exists only after the data is read.
  std::vector<std::vector<uint16_t>> columns(width);
  std::vector<uint16_t> maxima(width, 0);
  std::vector<uint16_t> row(width);
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    IREDUCT_RETURN_NOT_OK(ParseCsvRow(line, line_no, width, row.data()));
    for (size_t c = 0; c < width; ++c) {
      columns[c].push_back(row[c]);
      maxima[c] = std::max(maxima[c], row[c]);
    }
  }

  std::vector<Attribute> attributes(width);
  for (size_t c = 0; c < width; ++c) {
    attributes[c].name = names[c];
    attributes[c].domain_size = static_cast<uint32_t>(maxima[c]) + 1;
  }
  IREDUCT_ASSIGN_OR_RETURN(Schema schema,
                           Schema::Create(std::move(attributes)));
  return Dataset::FromColumns(std::move(schema), std::move(columns));
}

}  // namespace ireduct
