#include "data/csv.h"

#include <fstream>
#include <sstream>
#include <vector>

namespace ireduct {

Status WriteCsv(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open '" + path + "' for writing");
  const Schema& schema = dataset.schema();
  for (size_t c = 0; c < schema.num_attributes(); ++c) {
    out << (c ? "," : "") << schema.attribute(c).name;
  }
  out << '\n';
  for (size_t r = 0; r < dataset.num_rows(); ++r) {
    for (size_t c = 0; c < schema.num_attributes(); ++c) {
      out << (c ? "," : "") << dataset.value(r, c);
    }
    out << '\n';
  }
  if (!out) return Status::IoError("write to '" + path + "' failed");
  return Status::OK();
}

namespace {

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  std::istringstream ss(line);
  while (std::getline(ss, cell, ',')) cells.push_back(cell);
  if (!line.empty() && line.back() == ',') cells.emplace_back();
  return cells;
}

}  // namespace

Result<Dataset> ReadCsv(const Schema& schema, const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open '" + path + "' for reading");

  std::string line;
  if (!std::getline(in, line)) {
    return Status::IoError("'" + path + "' is empty");
  }
  const std::vector<std::string> header = SplitCsvLine(line);
  if (header.size() != schema.num_attributes()) {
    return Status::InvalidArgument("header arity does not match schema");
  }
  for (size_t c = 0; c < header.size(); ++c) {
    if (header[c] != schema.attribute(c).name) {
      return Status::InvalidArgument("header column '" + header[c] +
                                     "' does not match attribute '" +
                                     schema.attribute(c).name + "'");
    }
  }

  Dataset dataset(schema);
  std::vector<uint16_t> row(schema.num_attributes());
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const std::vector<std::string> cells = SplitCsvLine(line);
    if (cells.size() != row.size()) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": wrong number of cells");
    }
    for (size_t c = 0; c < cells.size(); ++c) {
      char* end = nullptr;
      const long parsed = std::strtol(cells[c].c_str(), &end, 10);
      if (end == cells[c].c_str() || *end != '\0' || parsed < 0 ||
          parsed > 65535) {
        return Status::InvalidArgument("line " + std::to_string(line_no) +
                                       ": bad value '" + cells[c] + "'");
      }
      row[c] = static_cast<uint16_t>(parsed);
    }
    IREDUCT_RETURN_NOT_OK(dataset.AppendRow(row));
  }
  return dataset;
}

}  // namespace ireduct
