// Columnar storage for categorical microdata.
//
// Values are stored column-major as uint16_t codes, which keeps the
// marginal-computation scans cache-friendly: computing a k-way marginal
// touches exactly k contiguous columns.
#ifndef IREDUCT_DATA_DATASET_H_
#define IREDUCT_DATA_DATASET_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "data/schema.h"

namespace ireduct {

/// An immutable-schema, append-only categorical table.
class Dataset {
 public:
  explicit Dataset(Schema schema);

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }

  /// Appends a row; must have one in-domain value per attribute.
  Status AppendRow(std::span<const uint16_t> values);

  /// Value of `row` in column `col` (bounds unchecked in release builds).
  uint16_t value(size_t row, size_t col) const {
    return columns_[col][row];
  }

  /// Read-only view of one column.
  std::span<const uint16_t> column(size_t col) const { return columns_[col]; }

  /// Reserves storage for `rows` rows in every column.
  void Reserve(size_t rows);

  /// Splits rows into `k` disjoint folds of near-equal size after a seeded
  /// shuffle; returns fold id (0..k-1) per row. Requires 2 <= k <= rows.
  Result<std::vector<uint8_t>> FoldAssignment(int k, BitGen& gen) const;

  /// Materializes the subset of rows with the given indices.
  Dataset Select(std::span<const uint32_t> rows) const;

  /// 64-bit content fingerprint over the schema shape and every value
  /// (FNV-1a). Two datasets with equal fingerprints hold equal data for
  /// any practical purpose — MarginalCache keys on this. Costs one full
  /// scan; callers caching per-dataset results should also cache the
  /// fingerprint.
  uint64_t Fingerprint() const;

 private:
  Schema schema_;
  size_t num_rows_ = 0;
  std::vector<std::vector<uint16_t>> columns_;
};

}  // namespace ireduct

#endif  // IREDUCT_DATA_DATASET_H_
