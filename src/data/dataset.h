// Columnar storage for categorical microdata.
//
// Values are stored column-major as uint16_t codes, which keeps the
// marginal-computation scans cache-friendly: computing a k-way marginal
// touches exactly k contiguous columns.
//
// A Dataset is backed by one of two stores:
//  * owned storage — per-column std::vectors the Dataset appends into
//    (the default, what AppendRow/AppendRows build);
//  * an immutable DatasetBacking — externally owned column memory such as
//    an mmap'd columnar file (data/columnar.h). Backed datasets are
//    read-only: append operations fail, everything else (value/column
//    reads, Select, FoldAssignment, Fingerprint) behaves identically.
// Either way the read fast paths go through per-column spans, so the cost
// of value()/column() does not depend on the store.
#ifndef IREDUCT_DATA_DATASET_H_
#define IREDUCT_DATA_DATASET_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "data/schema.h"

namespace ireduct {

/// Immutable column storage a Dataset can be routed onto (e.g. an mmap'd
/// columnar file). Implementations must keep every returned span valid and
/// unchanged for the lifetime of the backing object.
class DatasetBacking {
 public:
  virtual ~DatasetBacking() = default;

  /// Number of rows every column holds.
  virtual size_t num_rows() const = 0;

  /// Stable view of column `c` (`c < schema.num_attributes()` of the
  /// dataset the backing was attached to).
  virtual std::span<const uint16_t> column(size_t c) const = 0;
};

/// An immutable-schema categorical table: append-only when it owns its
/// storage, read-only when routed onto a DatasetBacking.
class Dataset {
 public:
  explicit Dataset(Schema schema);

  /// Routes a dataset onto immutable external storage. Validates that the
  /// backing serves one column per schema attribute, all of `num_rows`
  /// length, with every value inside its attribute's domain (one max-scan
  /// per column — this is what makes it safe to index count tables by
  /// raw column values downstream). The backing is shared: copies of the
  /// returned Dataset keep it alive.
  static Result<Dataset> FromBacking(
      Schema schema, std::shared_ptr<const DatasetBacking> backing);

  /// Builds an owned dataset directly from column vectors (sizes must
  /// agree across columns; values must be in-domain).
  static Result<Dataset> FromColumns(Schema schema,
                                     std::vector<std::vector<uint16_t>> columns);

  // The per-column views need rebuilding on copy (they would otherwise
  // alias the source's buffers); moves keep the heap buffers and stay
  // cheap.
  Dataset(const Dataset& other);
  Dataset& operator=(const Dataset& other);
  Dataset(Dataset&&) = default;
  Dataset& operator=(Dataset&&) = default;

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return cols_.size(); }

  /// True when the dataset owns (and may append to) its storage.
  bool owns_storage() const { return backing_ == nullptr; }

  /// Appends a row; must have one in-domain value per attribute. Fails on
  /// backed datasets (immutable storage).
  Status AppendRow(std::span<const uint16_t> values);

  /// Appends `values.size() / num_attributes` row-major rows in one shot.
  /// All values are validated before anything is appended, so a failed
  /// call leaves the dataset unchanged. This is the bulk-import fast path
  /// (CSV import, generators): one domain check pass, then one contiguous
  /// copy per column.
  Status AppendRows(std::span<const uint16_t> values);

  /// Value of `row` in column `col` (bounds unchecked in release builds).
  uint16_t value(size_t row, size_t col) const { return cols_[col][row]; }

  /// Read-only view of one column.
  std::span<const uint16_t> column(size_t col) const { return cols_[col]; }

  /// Reserves storage for `rows` rows in every column (no-op when backed).
  void Reserve(size_t rows);

  /// Splits rows into `k` disjoint folds of near-equal size after a seeded
  /// shuffle; returns fold id (0..k-1) per row. Requires 2 <= k <= rows.
  Result<std::vector<uint8_t>> FoldAssignment(int k, BitGen& gen) const;

  /// Materializes the subset of rows with the given indices (always into
  /// owned storage, regardless of this dataset's store).
  Dataset Select(std::span<const uint32_t> rows) const;

  /// 64-bit content fingerprint over the schema shape and every value
  /// (FNV-1a). Two datasets with equal fingerprints hold equal data for
  /// any practical purpose — MarginalCache keys on this. The fingerprint
  /// is a pure function of the value stream, so it is byte-identical
  /// across owned and backed stores holding the same data. Costs one full
  /// scan; callers caching per-dataset results should also cache the
  /// fingerprint.
  uint64_t Fingerprint() const;

 private:
  void RefreshViews();

  Schema schema_;
  // Hoisted from schema_ so append validation is one flat-array compare
  // per value instead of an Attribute (name string + size) load.
  std::vector<uint32_t> domain_sizes_;
  size_t num_rows_ = 0;
  std::vector<std::vector<uint16_t>> owned_;          // owned store
  std::shared_ptr<const DatasetBacking> backing_;     // immutable store
  std::vector<std::span<const uint16_t>> cols_;       // read fast path
};

}  // namespace ireduct

#endif  // IREDUCT_DATA_DATASET_H_
