#include "data/dataset.h"

#include <numeric>

#include "common/logging.h"

namespace ireduct {

Dataset::Dataset(Schema schema) : schema_(std::move(schema)) {
  columns_.resize(schema_.num_attributes());
}

Status Dataset::AppendRow(std::span<const uint16_t> values) {
  if (values.size() != schema_.num_attributes()) {
    return Status::InvalidArgument("row arity does not match schema");
  }
  for (size_t c = 0; c < values.size(); ++c) {
    if (values[c] >= schema_.attribute(c).domain_size) {
      return Status::OutOfRange("value " + std::to_string(values[c]) +
                                " outside domain of attribute '" +
                                schema_.attribute(c).name + "'");
    }
  }
  for (size_t c = 0; c < values.size(); ++c) {
    columns_[c].push_back(values[c]);
  }
  ++num_rows_;
  return Status::OK();
}

void Dataset::Reserve(size_t rows) {
  for (auto& col : columns_) col.reserve(rows);
}

Result<std::vector<uint8_t>> Dataset::FoldAssignment(int k,
                                                     BitGen& gen) const {
  if (k < 2 || static_cast<size_t>(k) > num_rows_) {
    return Status::InvalidArgument("fold count must be in [2, num_rows]");
  }
  std::vector<uint32_t> order(num_rows_);
  std::iota(order.begin(), order.end(), 0);
  // Fisher-Yates shuffle driven by our deterministic BitGen.
  for (size_t i = num_rows_ - 1; i > 0; --i) {
    const size_t j = gen.UniformInt(i + 1);
    std::swap(order[i], order[j]);
  }
  std::vector<uint8_t> fold(num_rows_);
  for (size_t pos = 0; pos < order.size(); ++pos) {
    fold[order[pos]] = static_cast<uint8_t>(pos % k);
  }
  return fold;
}

Dataset Dataset::Select(std::span<const uint32_t> rows) const {
  Dataset subset(schema_);
  subset.Reserve(rows.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    for (uint32_t r : rows) {
      IREDUCT_DCHECK(r < num_rows_);
      subset.columns_[c].push_back(columns_[c][r]);
    }
  }
  subset.num_rows_ = rows.size();
  return subset;
}

}  // namespace ireduct
