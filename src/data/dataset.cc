#include "data/dataset.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "common/logging.h"

namespace ireduct {

namespace {

std::vector<uint32_t> DomainSizesOf(const Schema& schema) {
  std::vector<uint32_t> sizes(schema.num_attributes());
  for (size_t c = 0; c < sizes.size(); ++c) {
    sizes[c] = schema.attribute(c).domain_size;
  }
  return sizes;
}

}  // namespace

Dataset::Dataset(Schema schema)
    : schema_(std::move(schema)), domain_sizes_(DomainSizesOf(schema_)) {
  owned_.resize(schema_.num_attributes());
  RefreshViews();
}

Dataset::Dataset(const Dataset& other)
    : schema_(other.schema_),
      domain_sizes_(other.domain_sizes_),
      num_rows_(other.num_rows_),
      owned_(other.owned_),
      backing_(other.backing_) {
  RefreshViews();
}

Dataset& Dataset::operator=(const Dataset& other) {
  if (this == &other) return *this;
  schema_ = other.schema_;
  domain_sizes_ = other.domain_sizes_;
  num_rows_ = other.num_rows_;
  owned_ = other.owned_;
  backing_ = other.backing_;
  RefreshViews();
  return *this;
}

void Dataset::RefreshViews() {
  cols_.resize(schema_.num_attributes());
  for (size_t c = 0; c < cols_.size(); ++c) {
    cols_[c] = backing_ != nullptr ? backing_->column(c)
                                   : std::span<const uint16_t>(owned_[c]);
  }
}

Result<Dataset> Dataset::FromBacking(
    Schema schema, std::shared_ptr<const DatasetBacking> backing) {
  if (backing == nullptr) {
    return Status::InvalidArgument("dataset backing is null");
  }
  Dataset dataset(std::move(schema));
  const size_t rows = backing->num_rows();
  for (size_t c = 0; c < dataset.schema_.num_attributes(); ++c) {
    const std::span<const uint16_t> col = backing->column(c);
    if (col.size() != rows) {
      return Status::InvalidArgument(
          "backing column " + std::to_string(c) + " holds " +
          std::to_string(col.size()) + " rows, expected " +
          std::to_string(rows));
    }
    // One branch-free max-scan per column; everything downstream (marginal
    // counting included) indexes tables by these values, so an
    // out-of-domain code here would be an out-of-bounds write there.
    uint16_t max_value = 0;
    for (const uint16_t v : col) max_value = std::max(max_value, v);
    if (rows > 0 && max_value >= dataset.domain_sizes_[c]) {
      return Status::OutOfRange(
          "backing column '" + dataset.schema_.attribute(c).name +
          "' holds value " + std::to_string(max_value) +
          " outside its domain of " +
          std::to_string(dataset.domain_sizes_[c]));
    }
  }
  dataset.owned_.clear();
  dataset.backing_ = std::move(backing);
  dataset.num_rows_ = rows;
  dataset.RefreshViews();
  return dataset;
}

Result<Dataset> Dataset::FromColumns(
    Schema schema, std::vector<std::vector<uint16_t>> columns) {
  Dataset dataset(std::move(schema));
  if (columns.size() != dataset.schema_.num_attributes()) {
    return Status::InvalidArgument("column count does not match schema");
  }
  const size_t rows = columns.empty() ? 0 : columns[0].size();
  for (size_t c = 0; c < columns.size(); ++c) {
    if (columns[c].size() != rows) {
      return Status::InvalidArgument("ragged columns: column " +
                                     std::to_string(c) + " holds " +
                                     std::to_string(columns[c].size()) +
                                     " rows, expected " +
                                     std::to_string(rows));
    }
    uint16_t max_value = 0;
    for (const uint16_t v : columns[c]) max_value = std::max(max_value, v);
    if (rows > 0 && max_value >= dataset.domain_sizes_[c]) {
      return Status::OutOfRange(
          "column '" + dataset.schema_.attribute(c).name + "' holds value " +
          std::to_string(max_value) + " outside its domain of " +
          std::to_string(dataset.domain_sizes_[c]));
    }
  }
  dataset.owned_ = std::move(columns);
  dataset.num_rows_ = rows;
  dataset.RefreshViews();
  return dataset;
}

Status Dataset::AppendRow(std::span<const uint16_t> values) {
  // Exactly one row — AppendRows alone would accept any multiple of the
  // arity, silently turning a too-wide row into several rows.
  if (values.size() != schema_.num_attributes()) {
    return Status::InvalidArgument("row arity does not match schema");
  }
  return AppendRows(values);
}

Status Dataset::AppendRows(std::span<const uint16_t> values) {
  if (backing_ != nullptr) {
    return Status::FailedPrecondition(
        "dataset is routed onto immutable backing storage");
  }
  const size_t width = schema_.num_attributes();
  if (width == 0 || values.size() % width != 0) {
    return Status::InvalidArgument("row arity does not match schema");
  }
  const size_t rows = values.size() / width;
  // Validate everything up front so a failure appends nothing. The domain
  // sizes are the hoisted flat copy, not per-value schema lookups.
  const uint32_t* domains = domain_sizes_.data();
  for (size_t i = 0; i < values.size(); ++i) {
    if (values[i] >= domains[i % width]) {
      return Status::OutOfRange(
          "value " + std::to_string(values[i]) +
          " outside domain of attribute '" +
          schema_.attribute(i % width).name + "'");
    }
  }
  for (size_t c = 0; c < width; ++c) {
    std::vector<uint16_t>& col = owned_[c];
    const size_t old_size = col.size();
    col.resize(old_size + rows);
    uint16_t* dst = col.data() + old_size;
    const uint16_t* src = values.data() + c;
    for (size_t r = 0; r < rows; ++r) dst[r] = src[r * width];
  }
  num_rows_ += rows;
  RefreshViews();
  return Status::OK();
}

void Dataset::Reserve(size_t rows) {
  for (auto& col : owned_) col.reserve(rows);
  RefreshViews();
}

Result<std::vector<uint8_t>> Dataset::FoldAssignment(int k,
                                                     BitGen& gen) const {
  if (k < 2 || static_cast<size_t>(k) > num_rows_) {
    return Status::InvalidArgument("fold count must be in [2, num_rows]");
  }
  std::vector<uint32_t> order(num_rows_);
  std::iota(order.begin(), order.end(), 0);
  // Fisher-Yates shuffle driven by our deterministic BitGen.
  for (size_t i = num_rows_ - 1; i > 0; --i) {
    const size_t j = gen.UniformInt(i + 1);
    std::swap(order[i], order[j]);
  }
  std::vector<uint8_t> fold(num_rows_);
  for (size_t pos = 0; pos < order.size(); ++pos) {
    fold[order[pos]] = static_cast<uint8_t>(pos % k);
  }
  return fold;
}

Dataset Dataset::Select(std::span<const uint32_t> rows) const {
  // Source values are already schema-validated, so gather column-wise into
  // presized columns — no per-row AppendRow revalidation or push_back
  // growth checks on this hot path.
  for (uint32_t r : rows) {
    IREDUCT_DCHECK(r < num_rows_);
    (void)r;
  }
  Dataset subset(schema_);
  for (size_t c = 0; c < cols_.size(); ++c) {
    const uint16_t* src = cols_[c].data();
    std::vector<uint16_t>& dst = subset.owned_[c];
    dst.resize(rows.size());
    for (size_t i = 0; i < rows.size(); ++i) dst[i] = src[rows[i]];
  }
  subset.num_rows_ = rows.size();
  subset.RefreshViews();
  return subset;
}

uint64_t Dataset::Fingerprint() const {
  // FNV-1a 64 over the schema shape and the column-major value stream.
  constexpr uint64_t kOffset = 1469598103934665603ULL;
  constexpr uint64_t kPrime = 1099511628211ULL;
  uint64_t h = kOffset;
  const auto mix = [&h](uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (v >> (8 * byte)) & 0xff;
      h *= kPrime;
    }
  };
  mix(num_rows_);
  mix(cols_.size());
  for (size_t c = 0; c < cols_.size(); ++c) {
    mix(schema_.attribute(c).domain_size);
    for (uint16_t v : cols_[c]) {
      h ^= v & 0xff;
      h *= kPrime;
      h ^= v >> 8;
      h *= kPrime;
    }
  }
  return h;
}

}  // namespace ireduct
