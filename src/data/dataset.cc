#include "data/dataset.h"

#include <numeric>

#include "common/logging.h"

namespace ireduct {

Dataset::Dataset(Schema schema) : schema_(std::move(schema)) {
  columns_.resize(schema_.num_attributes());
}

Status Dataset::AppendRow(std::span<const uint16_t> values) {
  if (values.size() != schema_.num_attributes()) {
    return Status::InvalidArgument("row arity does not match schema");
  }
  for (size_t c = 0; c < values.size(); ++c) {
    if (values[c] >= schema_.attribute(c).domain_size) {
      return Status::OutOfRange("value " + std::to_string(values[c]) +
                                " outside domain of attribute '" +
                                schema_.attribute(c).name + "'");
    }
  }
  for (size_t c = 0; c < values.size(); ++c) {
    columns_[c].push_back(values[c]);
  }
  ++num_rows_;
  return Status::OK();
}

void Dataset::Reserve(size_t rows) {
  for (auto& col : columns_) col.reserve(rows);
}

Result<std::vector<uint8_t>> Dataset::FoldAssignment(int k,
                                                     BitGen& gen) const {
  if (k < 2 || static_cast<size_t>(k) > num_rows_) {
    return Status::InvalidArgument("fold count must be in [2, num_rows]");
  }
  std::vector<uint32_t> order(num_rows_);
  std::iota(order.begin(), order.end(), 0);
  // Fisher-Yates shuffle driven by our deterministic BitGen.
  for (size_t i = num_rows_ - 1; i > 0; --i) {
    const size_t j = gen.UniformInt(i + 1);
    std::swap(order[i], order[j]);
  }
  std::vector<uint8_t> fold(num_rows_);
  for (size_t pos = 0; pos < order.size(); ++pos) {
    fold[order[pos]] = static_cast<uint8_t>(pos % k);
  }
  return fold;
}

Dataset Dataset::Select(std::span<const uint32_t> rows) const {
  // Source values are already schema-validated, so gather column-wise into
  // presized columns — no per-row AppendRow revalidation or push_back
  // growth checks on this hot path.
  for (uint32_t r : rows) {
    IREDUCT_DCHECK(r < num_rows_);
    (void)r;
  }
  Dataset subset(schema_);
  for (size_t c = 0; c < columns_.size(); ++c) {
    const uint16_t* src = columns_[c].data();
    std::vector<uint16_t>& dst = subset.columns_[c];
    dst.resize(rows.size());
    for (size_t i = 0; i < rows.size(); ++i) dst[i] = src[rows[i]];
  }
  subset.num_rows_ = rows.size();
  return subset;
}

uint64_t Dataset::Fingerprint() const {
  // FNV-1a 64 over the schema shape and the column-major value stream.
  constexpr uint64_t kOffset = 1469598103934665603ULL;
  constexpr uint64_t kPrime = 1099511628211ULL;
  uint64_t h = kOffset;
  const auto mix = [&h](uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (v >> (8 * byte)) & 0xff;
      h *= kPrime;
    }
  };
  mix(num_rows_);
  mix(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    mix(schema_.attribute(c).domain_size);
    for (uint16_t v : columns_[c]) {
      h ^= v & 0xff;
      h *= kPrime;
      h ^= v >> 8;
      h *= kPrime;
    }
  }
  return h;
}

}  // namespace ireduct
