#include "data/census_generator.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/logging.h"

namespace ireduct {

namespace {

// Categorical sampler over 0..n-1 built from non-negative weights.
class Categorical {
 public:
  explicit Categorical(std::vector<double> weights) {
    IREDUCT_CHECK(!weights.empty());
    cumulative_.resize(weights.size());
    double total = 0;
    for (size_t i = 0; i < weights.size(); ++i) {
      IREDUCT_CHECK(weights[i] >= 0);
      total += weights[i];
      cumulative_[i] = total;
    }
    IREDUCT_CHECK(total > 0);
    for (double& c : cumulative_) c /= total;
    cumulative_.back() = 1.0;  // guard against round-off at the top
  }

  uint16_t Sample(BitGen& gen) const {
    const double u = gen.Uniform();
    const auto it =
        std::upper_bound(cumulative_.begin(), cumulative_.end(), u);
    const size_t idx = static_cast<size_t>(it - cumulative_.begin());
    return static_cast<uint16_t>(std::min(idx, cumulative_.size() - 1));
  }

 private:
  std::vector<double> cumulative_;
};

std::vector<double> ZipfWeights(uint32_t n, double exponent) {
  std::vector<double> w(n);
  for (uint32_t i = 0; i < n; ++i) w[i] = 1.0 / std::pow(i + 1.0, exponent);
  return w;
}

// Zipf weights whose heaviest item sits at `center`, decaying with circular
// rank distance — gives every conditioning value its own head of the
// distribution while keeping a long shared tail.
std::vector<double> ShiftedZipfWeights(uint32_t n, uint32_t center,
                                       double exponent) {
  std::vector<double> w(n);
  for (uint32_t i = 0; i < n; ++i) {
    const uint32_t dist = std::min((i + n - center) % n, (center + n - i) % n);
    w[i] = 1.0 / std::pow(dist + 1.0, exponent);
  }
  return w;
}

struct DomainSizes {
  uint32_t age, gender, marital, state, birth_place, race, education,
      occupation, class_of_worker;
};

DomainSizes DomainsFor(CensusKind kind) {
  // Table 4 of the paper.
  if (kind == CensusKind::kBrazil) {
    return DomainSizes{101, 2, 4, 26, 29, 5, 5, 512, 4};
  }
  return DomainSizes{92, 2, 4, 51, 52, 14, 5, 477, 4};
}

// Coarse age bands driving marital status and education.
int AgeBand(uint16_t age) {
  if (age < 15) return 0;
  if (age < 25) return 1;
  if (age < 45) return 2;
  if (age < 65) return 3;
  return 4;
}

}  // namespace

Result<Schema> CensusSchema(CensusKind kind) {
  const DomainSizes d = DomainsFor(kind);
  return Schema::Create({
      {"Age", d.age},
      {"Gender", d.gender},
      {"MaritalStatus", d.marital},
      {"State", d.state},
      {"BirthPlace", d.birth_place},
      {"Race", d.race},
      {"Education", d.education},
      {"Occupation", d.occupation},
      {"ClassOfWorker", d.class_of_worker},
  });
}

Result<Dataset> GenerateCensus(const CensusConfig& config) {
  if (config.rows == 0) {
    return Status::InvalidArgument("row count must be positive");
  }
  IREDUCT_ASSIGN_OR_RETURN(Schema schema, CensusSchema(config.kind));
  const DomainSizes d = DomainsFor(config.kind);
  BitGen gen(config.seed);

  // Age pyramid: linearly thinning (young Brazil, flatter US) with an
  // exponentially vanishing 75+ tail — the top ages are near-empty cells,
  // like real census data, which is what makes the sanity bound δ matter.
  std::vector<double> age_w(d.age);
  const double slope = config.kind == CensusKind::kBrazil ? 1.1 : 0.7;
  for (uint32_t a = 0; a < d.age; ++a) {
    age_w[a] = std::fmax(0.05, 1.0 - slope * a / d.age);
    if (a > 75) age_w[a] *= std::exp(-(a - 75.0) / 4.0);
  }
  const Categorical age_dist(std::move(age_w));

  // Marital status (single, married, divorced, widowed) by age band.
  const double marital_w[5][4] = {
      {0.99, 0.01, 0.0, 0.0},    // <15
      {0.75, 0.23, 0.02, 0.0},   // 15-24
      {0.30, 0.60, 0.08, 0.02},  // 25-44
      {0.12, 0.70, 0.10, 0.08},  // 45-64
      {0.06, 0.55, 0.07, 0.32},  // 65+
  };
  std::vector<Categorical> marital_by_band;
  for (const auto& row : marital_w) {
    marital_by_band.emplace_back(std::vector<double>(row, row + 4));
  }

  // Education (5 levels) by age band; adults skew higher.
  const double education_w[5][5] = {
      {0.85, 0.13, 0.02, 0.0, 0.0},     // <15
      {0.10, 0.35, 0.35, 0.15, 0.05},   // 15-24
      {0.08, 0.22, 0.30, 0.25, 0.15},   // 25-44
      {0.15, 0.30, 0.28, 0.17, 0.10},   // 45-64
      {0.30, 0.35, 0.20, 0.10, 0.05},   // 65+
  };
  std::vector<Categorical> education_by_band;
  for (const auto& row : education_w) {
    education_by_band.emplace_back(std::vector<double>(row, row + 5));
  }

  // Occupation by education: each education level has its own Zipf head
  // spread across the large occupation domain. About a quarter of the
  // codes are retired (zero weight) and another fraction is rare — census
  // occupation codebooks are sparse, which yields the near-zero marginal
  // cells the paper's relative-error story hinges on.
  std::vector<Categorical> occupation_by_education;
  for (uint32_t e = 0; e < d.education; ++e) {
    const uint32_t center = e * d.occupation / d.education;
    std::vector<double> weights =
        ShiftedZipfWeights(d.occupation, center, 1.05);
    for (uint32_t o = 0; o < d.occupation; ++o) {
      const uint32_t hash = o * 2654435761u;  // deterministic code classes
      if (hash % 8 < 2) {
        weights[o] = 0.0;  // retired code
      } else if (hash % 8 < 4) {
        weights[o] *= 0.01;  // rare specialty
      }
    }
    occupation_by_education.emplace_back(std::move(weights));
  }

  // Class of worker by education (employee/self-employed/employer/unpaid).
  const double worker_w[5][4] = {
      {0.55, 0.25, 0.02, 0.18},
      {0.65, 0.22, 0.04, 0.09},
      {0.75, 0.15, 0.06, 0.04},
      {0.80, 0.10, 0.08, 0.02},
      {0.70, 0.12, 0.16, 0.02},
  };
  std::vector<Categorical> worker_by_education;
  for (const auto& row : worker_w) {
    worker_by_education.emplace_back(std::vector<double>(row, row + 4));
  }

  const Categorical state_dist(ZipfWeights(d.state, 1.0));
  const Categorical birth_place_dist(ZipfWeights(d.birth_place, 1.0));
  const Categorical race_dist(ZipfWeights(d.race, 1.3));

  Dataset dataset(std::move(schema));
  dataset.Reserve(config.rows);
  std::vector<uint16_t> row(9);
  for (uint64_t r = 0; r < config.rows; ++r) {
    const uint16_t age = age_dist.Sample(gen);
    const int band = AgeBand(age);
    const uint16_t gender = gen.Bernoulli(0.51) ? 1 : 0;
    const uint16_t marital = marital_by_band[band].Sample(gen);
    const uint16_t state = state_dist.Sample(gen);
    // Most people live where they were born; states map onto the first
    // `d.state` birth-place codes, the rest of the domain is immigration.
    const uint16_t birth_place = gen.Bernoulli(0.72)
                                     ? state
                                     : birth_place_dist.Sample(gen);
    const uint16_t race = race_dist.Sample(gen);
    const uint16_t education = education_by_band[band].Sample(gen);
    const uint16_t occupation = occupation_by_education[education].Sample(gen);
    const uint16_t worker = worker_by_education[education].Sample(gen);

    row[kAge] = age;
    row[kGender] = gender;
    row[kMaritalStatus] = marital;
    row[kState] = state;
    row[kBirthPlace] = birth_place;
    row[kRace] = race;
    row[kEducation] = education;
    row[kOccupation] = occupation;
    row[kClassOfWorker] = worker;
    IREDUCT_RETURN_NOT_OK(dataset.AppendRow(row));
  }
  return dataset;
}

namespace {

// Row-major staging buffer flushed through the bulk AppendRows path.
class RowBatcher {
 public:
  RowBatcher(Dataset& dataset, size_t width)
      : dataset_(dataset), width_(width) {
    values_.reserve(kFlushRows * width);
  }

  uint16_t* NextRow() {
    values_.resize(values_.size() + width_);
    return values_.data() + values_.size() - width_;
  }

  Status MaybeFlush() {
    if (values_.size() < kFlushRows * width_) return Status::OK();
    return Flush();
  }

  Status Flush() {
    if (values_.empty()) return Status::OK();
    IREDUCT_RETURN_NOT_OK(dataset_.AppendRows(values_));
    values_.clear();
    return Status::OK();
  }

 private:
  static constexpr size_t kFlushRows = 8192;
  Dataset& dataset_;
  size_t width_;
  std::vector<uint16_t> values_;
};

Result<Schema> ZipfHeavySchema() {
  return Schema::Create({
      {"User", 1000},
      {"Item", 20000},
      {"Action", 8},
      {"Channel", 12},
  });
}

Result<Schema> SparseEventsSchema() {
  return Schema::Create({
      {"Device", 4096},
      {"EventType", 64},
      {"HourOfWeek", 168},
      {"Severity", 8},
      {"Code", 1024},
  });
}

Result<Schema> WideSchema() {
  // 24 small-domain attributes: the per-row cost is column-count bound and
  // the pack widths are 1-4 bits.
  static constexpr uint32_t kDomains[] = {2, 3, 4, 5, 8, 16};
  std::vector<Attribute> attributes;
  for (int i = 0; i < 24; ++i) {
    char name[8];
    std::snprintf(name, sizeof(name), "F%02d", i);
    attributes.push_back({name, kDomains[i % 6]});
  }
  return Schema::Create(std::move(attributes));
}

Result<Dataset> GenerateZipfHeavy(const ProfileConfig& config) {
  IREDUCT_ASSIGN_OR_RETURN(Schema schema, ZipfHeavySchema());
  BitGen gen(config.seed);
  // Steep Zipf over the big item domain: nearly every row lands in a few
  // hundred hot items — worst case for naive count increments, best case
  // for byte-RLE over the packed codes.
  const Categorical user_dist(ZipfWeights(1000, 1.1));
  const Categorical item_dist(ZipfWeights(20000, 1.4));
  const Categorical action_dist(ZipfWeights(8, 1.0));
  const Categorical channel_dist(ZipfWeights(12, 1.2));
  Dataset dataset(std::move(schema));
  dataset.Reserve(config.rows);
  RowBatcher batcher(dataset, 4);
  for (uint64_t r = 0; r < config.rows; ++r) {
    uint16_t* row = batcher.NextRow();
    row[0] = user_dist.Sample(gen);
    row[1] = item_dist.Sample(gen);
    row[2] = action_dist.Sample(gen);
    row[3] = channel_dist.Sample(gen);
    IREDUCT_RETURN_NOT_OK(batcher.MaybeFlush());
  }
  IREDUCT_RETURN_NOT_OK(batcher.Flush());
  return dataset;
}

Result<Dataset> GenerateSparseEvents(const ProfileConfig& config) {
  IREDUCT_ASSIGN_OR_RETURN(Schema schema, SparseEventsSchema());
  BitGen gen(config.seed);
  const Categorical device_dist(ZipfWeights(4096, 1.05));
  const Categorical type_dist(ZipfWeights(64, 1.2));
  // Diurnal + weekday load curve over the 168 hours of a week.
  std::vector<double> hour_w(168);
  for (uint32_t h = 0; h < 168; ++h) {
    const double day_load = (h / 24) < 5 ? 1.0 : 0.45;  // weekend dip
    const double hour_load =
        0.2 + 0.8 * std::fmax(0.0, std::sin((h % 24 - 6) * 3.14159 / 14.0));
    hour_w[h] = day_load * hour_load + 0.02;
  }
  const Categorical hour_dist(std::move(hour_w));
  const Categorical severity_dist(
      std::vector<double>{0.55, 0.30, 0.08, 0.04, 0.02, 0.007, 0.002, 0.001});
  // Per-type code heads with retired codes, the same codebook sparsity
  // trick as the census occupation domain: most (type, code) cells are
  // exactly zero — the near-zero-count regime the paper targets.
  std::vector<Categorical> code_by_type;
  for (uint32_t t = 0; t < 64; ++t) {
    std::vector<double> weights = ShiftedZipfWeights(1024, t * 16, 1.1);
    for (uint32_t c = 0; c < 1024; ++c) {
      if ((c * 2654435761u) % 4 != 0) weights[c] = 0.0;  // retired code
    }
    code_by_type.emplace_back(std::move(weights));
  }
  Dataset dataset(std::move(schema));
  dataset.Reserve(config.rows);
  RowBatcher batcher(dataset, 5);
  for (uint64_t r = 0; r < config.rows; ++r) {
    uint16_t* row = batcher.NextRow();
    const uint16_t type = type_dist.Sample(gen);
    row[0] = device_dist.Sample(gen);
    row[1] = type;
    row[2] = hour_dist.Sample(gen);
    row[3] = severity_dist.Sample(gen);
    row[4] = code_by_type[type].Sample(gen);
    IREDUCT_RETURN_NOT_OK(batcher.MaybeFlush());
  }
  IREDUCT_RETURN_NOT_OK(batcher.Flush());
  return dataset;
}

Result<Dataset> GenerateWideSchema(const ProfileConfig& config) {
  IREDUCT_ASSIGN_OR_RETURN(Schema schema, WideSchema());
  BitGen gen(config.seed);
  std::vector<Categorical> dists;
  for (size_t c = 0; c < schema.num_attributes(); ++c) {
    // Mild skew, rotated per attribute so no two columns share a head.
    const uint32_t n = schema.attribute(c).domain_size;
    dists.emplace_back(
        ShiftedZipfWeights(n, static_cast<uint32_t>(c) % n, 0.8));
  }
  const size_t width = schema.num_attributes();
  Dataset dataset(std::move(schema));
  dataset.Reserve(config.rows);
  RowBatcher batcher(dataset, width);
  for (uint64_t r = 0; r < config.rows; ++r) {
    uint16_t* row = batcher.NextRow();
    for (size_t c = 0; c < width; ++c) row[c] = dists[c].Sample(gen);
    IREDUCT_RETURN_NOT_OK(batcher.MaybeFlush());
  }
  IREDUCT_RETURN_NOT_OK(batcher.Flush());
  return dataset;
}

}  // namespace

Result<DataProfile> ParseDataProfile(const std::string& name) {
  if (name == "census") return DataProfile::kCensus;
  if (name == "zipf-heavy") return DataProfile::kZipfHeavy;
  if (name == "sparse-events") return DataProfile::kSparseEvents;
  if (name == "wide-schema") return DataProfile::kWideSchema;
  return Status::InvalidArgument(
      "unknown data profile '" + name +
      "' (expected census, zipf-heavy, sparse-events, or wide-schema)");
}

const char* DataProfileName(DataProfile profile) {
  switch (profile) {
    case DataProfile::kCensus:
      return "census";
    case DataProfile::kZipfHeavy:
      return "zipf-heavy";
    case DataProfile::kSparseEvents:
      return "sparse-events";
    case DataProfile::kWideSchema:
      return "wide-schema";
  }
  return "unknown";
}

Result<Schema> ProfileSchema(DataProfile profile, CensusKind kind) {
  switch (profile) {
    case DataProfile::kCensus:
      return CensusSchema(kind);
    case DataProfile::kZipfHeavy:
      return ZipfHeavySchema();
    case DataProfile::kSparseEvents:
      return SparseEventsSchema();
    case DataProfile::kWideSchema:
      return WideSchema();
  }
  return Status::InvalidArgument("unknown data profile");
}

Result<Dataset> GenerateProfile(const ProfileConfig& config) {
  if (config.rows == 0) {
    return Status::InvalidArgument("row count must be positive");
  }
  switch (config.profile) {
    case DataProfile::kCensus: {
      CensusConfig census;
      census.kind = config.kind;
      census.rows = config.rows;
      census.seed = config.seed;
      return GenerateCensus(census);
    }
    case DataProfile::kZipfHeavy:
      return GenerateZipfHeavy(config);
    case DataProfile::kSparseEvents:
      return GenerateSparseEvents(config);
    case DataProfile::kWideSchema:
      return GenerateWideSchema(config);
  }
  return Status::InvalidArgument("unknown data profile");
}

}  // namespace ireduct
