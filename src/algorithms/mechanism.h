// Shared types for the batch-publication mechanisms (Dwork, Proportional,
// Oracle, TwoPhase, iReduct, iResamp). Every mechanism consumes a Workload
// and returns a MechanismOutput.
#ifndef IREDUCT_ALGORITHMS_MECHANISM_H_
#define IREDUCT_ALGORITHMS_MECHANISM_H_

#include <cmath>
#include <cstddef>
#include <vector>

namespace ireduct {

/// The published result of one mechanism run.
struct MechanismOutput {
  /// Noisy answer for every query, in workload order.
  std::vector<double> answers;
  /// Final noise scale assigned to each query group. For iResamp these are
  /// the *effective* scales λ' = 1/(2/λ - 1/λmax) that govern privacy, not
  /// the scale of the last raw sample.
  std::vector<double> group_scales;
  /// The ε-differential-privacy level actually consumed. Infinity marks the
  /// deliberately non-private baselines (Proportional, Oracle), which use
  /// the true answers to set scales.
  double epsilon_spent = 0;
  /// Number of noise-reduction iterations executed (iReduct/iResamp only).
  size_t iterations = 0;
  /// Number of NoiseDown resampling draws (iReduct) or fresh Laplace
  /// resamples (iResamp).
  size_t resample_calls = 0;

  /// True when the release actually carries a differential-privacy
  /// guarantee. The non-private baselines mark themselves with
  /// `epsilon_spent = ∞` (see above); every consumer deciding whether to
  /// account, publish or report a run must use this helper rather than
  /// comparing `epsilon_spent` against 0 or ∞ by hand.
  bool is_private() const { return std::isfinite(epsilon_spent); }
};

}  // namespace ireduct

#endif  // IREDUCT_ALGORITHMS_MECHANISM_H_
