// Hierarchical range-count mechanism (Hay et al., VLDB 2010) — the
// absolute-error-optimized baseline family the paper's related work
// (Section 7) contrasts with iReduct.
//
// A complete binary tree is built over a 1D histogram; every node's count
// receives Laplace noise calibrated to the tree height (a tuple change
// touches one root-to-leaf path per affected bin, and neighboring datasets
// of equal cardinality move one tuple between two bins, so S = 2·height).
// A two-pass weighted least-squares step then makes the noisy tree
// consistent (children sum to parents), which provably shrinks the
// variance of every range query to O(log³ n / ε²).
//
// The point of carrying this baseline: it minimizes *absolute* error, so
// small bins still drown in noise — exactly the failure mode iReduct
// fixes. The ablation bench quantifies this on skewed histograms.
#ifndef IREDUCT_ALGORITHMS_HIERARCHICAL_H_
#define IREDUCT_ALGORITHMS_HIERARCHICAL_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/random.h"
#include "common/result.h"

namespace ireduct {

struct HierarchicalParams {
  /// Total privacy budget ε.
  double epsilon = 1.0;
};

/// A consistent differentially private hierarchy over a histogram.
class HierarchicalHistogram {
 public:
  /// Publishes `counts` (a 1D histogram) under ε-differential privacy.
  /// The histogram is padded to the next power of two internally.
  static Result<HierarchicalHistogram> Publish(
      std::span<const double> counts, const HierarchicalParams& params,
      BitGen& gen);

  /// Number of (unpadded) bins.
  size_t num_bins() const { return num_bins_; }
  /// Tree height in levels (leaves inclusive).
  int height() const { return height_; }
  /// ε consumed.
  double epsilon_spent() const { return epsilon_spent_; }

  /// Consistent noisy count of one bin.
  double BinCount(size_t bin) const;
  /// All consistent leaf counts (unpadded).
  std::vector<double> BinCounts() const;

  /// Consistent noisy answer to the range count over bins [lo, hi]
  /// (inclusive). Because the tree is consistent, this equals the sum of
  /// the leaf estimates, but is computed from O(log n) canonical nodes.
  Result<double> RangeCount(size_t lo, size_t hi) const;

 private:
  HierarchicalHistogram() = default;

  size_t num_bins_ = 0;    // caller-visible bins
  size_t num_leaves_ = 0;  // padded to a power of two
  int height_ = 0;
  double epsilon_spent_ = 0;
  // Heap layout: node 1 is the root, node i has children 2i and 2i+1;
  // leaves occupy [num_leaves_, 2*num_leaves_).
  std::vector<double> consistent_;
};

}  // namespace ireduct

#endif  // IREDUCT_ALGORITHMS_HIERARCHICAL_H_
