// The geometric mechanism (Ghosh, Roughgarden & Sundararajan, STOC'09 —
// reference [14] of the paper): the utility-maximizing mechanism for a
// single integer count query.
//
// Noise is two-sided geometric: Pr[η = k] ∝ α^{|k|} with α = e^{-ε/Δ} for
// per-tuple sensitivity Δ. It is the discrete analogue of the Laplace
// mechanism — outputs stay integral (no post-hoc rounding), and for count
// queries it is universally optimal for every symmetric loss and prior.
// Included as a baseline/utility for integer workloads; the iReduct
// machinery itself stays in the continuous Laplace world the paper's
// NoiseDown requires.
#ifndef IREDUCT_ALGORITHMS_GEOMETRIC_H_
#define IREDUCT_ALGORITHMS_GEOMETRIC_H_

#include <cstdint>

#include "algorithms/mechanism.h"
#include "common/random.h"
#include "common/result.h"
#include "dp/workload.h"

namespace ireduct {

/// Draws a two-sided geometric variate: Pr[k] = (1-α)/(1+α) · α^{|k|}.
/// Requires alpha in (0, 1).
Result<int64_t> TwoSidedGeometric(double alpha, BitGen& gen);

struct GeometricParams {
  /// Privacy budget ε; every query's noise uses α = e^{-ε/S(Q)}.
  double epsilon = 1.0;
};

/// Publishes every (assumed integer-valued) answer of `workload` with
/// i.i.d. two-sided geometric noise. ε-differentially private. Published
/// answers are integers; `group_scales` reports the equivalent Laplace
/// scale S(Q)/ε for comparability.
Result<MechanismOutput> RunGeometric(const Workload& workload,
                                     const GeometricParams& params,
                                     BitGen& gen);

}  // namespace ireduct

#endif  // IREDUCT_ALGORITHMS_GEOMETRIC_H_
