// The TwoPhase algorithm (Section 3.2, Figure 1).
//
// Phase 1 publishes every answer at the uniform scale S(Q)/ε1; phase 2
// reallocates scales from the phase-1 estimates (the Rescale subroutine of
// Section 5.2), publishes a second set of answers under budget ε2, and
// returns the inverse-variance-weighted combination. ε1 + ε2 ≤ ε overall by
// sequential composition (Proposition 3).
//
// Note: the line-8 combination uses the phase-2 scales as weights, and
// those scales are computed *from the phase-1 noise* — the weights
// therefore correlate with the noise they weight, leaving a small residual
// bias (≈1% of the answer at extreme splits like ε1/ε = 0.02; see
// tests/algorithms/two_phase_property_test.cc). This is a property of the
// paper's algorithm, invisible at its operating scales.
#ifndef IREDUCT_ALGORITHMS_TWO_PHASE_H_
#define IREDUCT_ALGORITHMS_TWO_PHASE_H_

#include "algorithms/mechanism.h"
#include "common/random.h"
#include "common/result.h"
#include "dp/workload.h"

namespace ireduct {

struct TwoPhaseParams {
  /// Budget for the rough first-phase estimates.
  double epsilon1 = 0.0007;
  /// Budget for the recalibrated second phase.
  double epsilon2 = 0.0093;
  /// Sanity bound δ of Equation 1.
  double delta = 1.0;
};

/// Runs Figure 1 with the Section 5.2 Rescale. (ε1+ε2)-differentially
/// private. `group_scales` reports the phase-2 scales.
Result<MechanismOutput> RunTwoPhase(const Workload& workload,
                                    const TwoPhaseParams& params, BitGen& gen);

}  // namespace ireduct

#endif  // IREDUCT_ALGORITHMS_TWO_PHASE_H_
