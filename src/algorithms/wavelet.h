// Privelet: differential privacy via the Haar wavelet transform (Xiao,
// Wang & Gehrke, ICDE 2010 — reference [32] of the paper, and the origin
// of the generalized-sensitivity notion iReduct builds on).
//
// The histogram is Haar-transformed; each coefficient c receives Laplace
// noise of scale θ/W(c), where W(c) is the coefficient's weight (the leaf
// count of its subtree; W = m for the base average) and
// θ = 2·(1 + log₂ m)/ε. One moved tuple perturbs the two affected
// root-to-leaf coefficient paths by 1/W(c) each, so the generalized
// sensitivity is exactly ε — the weighted-noise calculus of Definition 4.
// Like the hierarchical tree, Privelet optimizes *absolute* range-count
// error (O(log³ m / ε²) per range); it serves as the second
// absolute-error baseline in the ablation bench.
#ifndef IREDUCT_ALGORITHMS_WAVELET_H_
#define IREDUCT_ALGORITHMS_WAVELET_H_

#include <span>
#include <vector>

#include "common/random.h"
#include "common/result.h"

namespace ireduct {

/// Haar-transforms a power-of-two-length vector. Returns coefficients laid
/// out as: [0] the overall average, [1 .. m-1] the detail coefficients in
/// heap order (node v has children 2v and 2v+1; node v's detail is half
/// the difference between its left and right subtree averages).
Result<std::vector<double>> HaarTransform(std::span<const double> values);

/// Inverse of HaarTransform.
Result<std::vector<double>> HaarReconstruct(
    std::span<const double> coefficients);

struct WaveletParams {
  /// Total privacy budget ε.
  double epsilon = 1.0;
};

/// A differentially private histogram published through the noisy Haar
/// domain.
class WaveletHistogram {
 public:
  /// Publishes `counts` under ε-differential privacy (padded internally to
  /// a power of two).
  static Result<WaveletHistogram> Publish(std::span<const double> counts,
                                          const WaveletParams& params,
                                          BitGen& gen);

  size_t num_bins() const { return num_bins_; }
  double epsilon_spent() const { return epsilon_spent_; }

  /// Reconstructed noisy count of one bin.
  double BinCount(size_t bin) const { return bins_[bin]; }
  /// All reconstructed (unpadded) bins.
  const std::vector<double>& BinCounts() const { return bins_; }

  /// Noisy range count over bins [lo, hi] (inclusive).
  Result<double> RangeCount(size_t lo, size_t hi) const;

 private:
  WaveletHistogram() = default;

  size_t num_bins_ = 0;
  double epsilon_spent_ = 0;
  std::vector<double> bins_;    // reconstructed, unpadded
  std::vector<double> prefix_;  // prefix sums of bins_ for range queries
};

}  // namespace ireduct

#endif  // IREDUCT_ALGORITHMS_WAVELET_H_
