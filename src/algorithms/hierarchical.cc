#include "algorithms/hierarchical.h"

#include <cmath>

#include "common/logging.h"

namespace ireduct {

Result<HierarchicalHistogram> HierarchicalHistogram::Publish(
    std::span<const double> counts, const HierarchicalParams& params,
    BitGen& gen) {
  if (counts.empty()) {
    return Status::InvalidArgument("histogram must be non-empty");
  }
  if (!(params.epsilon > 0) || !std::isfinite(params.epsilon)) {
    return Status::InvalidArgument("epsilon must be positive finite");
  }

  HierarchicalHistogram h;
  h.num_bins_ = counts.size();
  h.num_leaves_ = 1;
  h.height_ = 1;
  while (h.num_leaves_ < counts.size()) {
    h.num_leaves_ *= 2;
    ++h.height_;
  }
  h.epsilon_spent_ = params.epsilon;

  // True node counts in heap order (root = 1).
  const size_t nodes = 2 * h.num_leaves_;
  std::vector<double> truth(nodes, 0.0);
  for (size_t b = 0; b < counts.size(); ++b) {
    truth[h.num_leaves_ + b] = counts[b];
  }
  for (size_t v = h.num_leaves_ - 1; v >= 1; --v) {
    truth[v] = truth[2 * v] + truth[2 * v + 1];
  }

  // One tuple moving between two bins changes two root-to-leaf paths:
  // S = 2 · height. Every node gets Laplace(S/ε).
  const double lambda = 2.0 * h.height_ / params.epsilon;
  std::vector<double> noisy(nodes, 0.0);
  for (size_t v = 1; v < nodes; ++v) {
    noisy[v] = truth[v] + gen.Laplace(lambda);
  }

  // Upward pass: per-node BLUE z[v] combining the node's own noisy count
  // with its children's subtree estimates. With per-node noise variance σ²
  // and V(h) the variance at height h:
  //   z[leaf] = noisy[leaf],                         V(1) = σ²
  //   z[v] = w·noisy[v] + (1-w)·(z[l] + z[r]),       w = 2V/(σ² + 2V)
  //   V(h) = σ²·2V(h-1) / (σ² + 2V(h-1)).
  const double sigma2 = 2.0 * lambda * lambda;
  std::vector<double> z = noisy;
  double child_var = sigma2;
  // Process heights bottom-up: nodes at height k occupy
  // [num_leaves_/2^{k-1}, num_leaves_/2^{k-2}).
  for (size_t level_size = h.num_leaves_ / 2; level_size >= 1;
       level_size /= 2) {
    const double w = 2 * child_var / (sigma2 + 2 * child_var);
    for (size_t v = level_size; v < 2 * level_size; ++v) {
      z[v] = w * noisy[v] + (1 - w) * (z[2 * v] + z[2 * v + 1]);
    }
    child_var = sigma2 * 2 * child_var / (sigma2 + 2 * child_var);
    if (level_size == 1) break;
  }

  // Downward pass: enforce children-sum-to-parent, spreading each
  // residual evenly over the two (equal-variance) children.
  h.consistent_.assign(nodes, 0.0);
  h.consistent_[1] = z[1];
  for (size_t v = 1; v < h.num_leaves_; ++v) {
    const double residual =
        h.consistent_[v] - z[2 * v] - z[2 * v + 1];
    h.consistent_[2 * v] = z[2 * v] + residual / 2;
    h.consistent_[2 * v + 1] = z[2 * v + 1] + residual / 2;
  }
  return h;
}

double HierarchicalHistogram::BinCount(size_t bin) const {
  IREDUCT_DCHECK(bin < num_bins_);
  return consistent_[num_leaves_ + bin];
}

std::vector<double> HierarchicalHistogram::BinCounts() const {
  std::vector<double> bins(num_bins_);
  for (size_t b = 0; b < num_bins_; ++b) bins[b] = BinCount(b);
  return bins;
}

Result<double> HierarchicalHistogram::RangeCount(size_t lo, size_t hi) const {
  if (lo > hi || hi >= num_bins_) {
    return Status::OutOfRange("invalid bin range");
  }
  // Canonical decomposition on the consistent tree (iterative segment-tree
  // walk over leaf indices [lo, hi]).
  double total = 0;
  size_t l = num_leaves_ + lo;
  size_t r = num_leaves_ + hi + 1;  // exclusive
  while (l < r) {
    if (l & 1) total += consistent_[l++];
    if (r & 1) total += consistent_[--r];
    l /= 2;
    r /= 2;
  }
  return total;
}

}  // namespace ireduct
