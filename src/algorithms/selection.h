// Scale-allocation and query-selection subroutines (paper Section 5.2/5.3).
//
// These are the `Rescale` and `PickQueries` "black boxes" of the TwoPhase
// and iReduct/iResamp pseudo-code. They are generic over grouped workloads:
// they only consult the group structure, the noisy answers seen so far, the
// sanity bound δ and the noise scales — never the true answers — so using
// them costs no additional privacy.
#ifndef IREDUCT_ALGORITHMS_SELECTION_H_
#define IREDUCT_ALGORITHMS_SELECTION_H_

#include <cstddef>
#include <cstdint>
#include <queue>
#include <span>
#include <vector>

#include "common/result.h"
#include "dp/workload.h"
#include "eval/sanity_bounds.h"

namespace ireduct {

/// Sentinel returned by the Pick* functions when no group qualifies.
inline constexpr size_t kNoGroup = static_cast<size_t>(-1);

/// Which PickQueries objective a score ranks groups by. The scores are the
/// exact quantities the linear-scan Pick* functions maximize, factored out
/// so the O(log m) heap selector below and the O(n) scans compute
/// bit-identical doubles (and therefore identical argmaxes).
enum class SelectionRule {
  /// iReduct's benefit/cost ratio (Equations 15/14) — see PickGroupIReduct.
  kIReductRatio,
  /// iResamp's benefit/cost ratio — see PickGroupIResamp.
  kIResampRatio,
  /// Worst-cell estimated relative error — see PickGroupMaxRelativeError.
  kMaxRelativeError,
};

/// Score of group g under `rule` given its current noisy answers and scale.
/// Depends only on group g's own answers span and scale (plus the constant
/// workload shape), which is what makes caching sound: a group's score is
/// stale only after that group itself was resampled or rescaled.
double SelectionScore(const Workload& workload, SelectionRule rule, size_t g,
                      std::span<const double> noisy_answers, double scale,
                      double delta, double lambda_delta);

/// Lazy max-heap group selector — the O(log m) replacement for the linear
/// scans in the iReduct/iResamp inner loops.
///
/// Contract: Build() scores every admissible group once; PopBest() returns
/// the current best group and *consumes* its entry, so the caller must
/// follow up with either Update(g, ...) — after g's answers/scale changed —
/// or Retire(g). Scores are cached and invalidated only when their group is
/// touched (per-group epoch counters; stale heap entries are discarded on
/// pop). Because scales only ever shrink, a group that stops being
/// reducible (λ_g ≤ λΔ under kIReductRatio/kMaxRelativeError) is dropped
/// for good, exactly as the linear scan would skip it forever.
///
/// Tie-break (deterministic): higher score wins; equal scores go to the
/// lower group index — the same order the linear scans' strict `>`
/// comparison yields. Combined with the shared SelectionScore this makes
/// the heap's pick sequence identical to the scans', ties included.
class GroupScoreHeap {
 public:
  /// `lambda_delta` is consulted only by the reducibility predicate of
  /// kIReductRatio/kMaxRelativeError; pass 0 under kIResampRatio.
  GroupScoreHeap(const Workload& workload, SelectionRule rule, double delta,
                 double lambda_delta);

  /// Scores every group with active[g] != 0 that passes the reducibility
  /// predicate, and heapifies in O(m). Callable again to rebuild.
  void Build(std::span<const double> noisy_answers,
             std::span<const double> scales, std::span<const uint8_t> active);

  /// Pops the best group, or kNoGroup when none remains admissible.
  size_t PopBest();

  /// Re-scores group g from its (changed) answers/scale and re-pushes it;
  /// drops it silently when it is no longer reducible.
  void Update(size_t g, std::span<const double> noisy_answers,
              std::span<const double> scales);

  /// Permanently removes group g (no-op on the heap itself; any stale
  /// entries die lazily on pop).
  void Retire(size_t g);

  /// Observability: entries re-pushed by Update / discarded as stale.
  size_t repush_count() const { return repush_count_; }
  size_t stale_pop_count() const { return stale_pop_count_; }

 private:
  struct Entry {
    double score;
    size_t group;
    uint32_t epoch;
  };
  struct EntryLess {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.score != b.score) return a.score < b.score;
      return a.group > b.group;  // ties: lowest index on top
    }
  };

  bool Reducible(double scale) const;

  const Workload* workload_;
  SelectionRule rule_;
  double delta_;
  double lambda_delta_;
  std::vector<uint32_t> epoch_;
  std::priority_queue<Entry, std::vector<Entry>, EntryLess> heap_;
  size_t repush_count_ = 0;
  size_t stale_pop_count_ = 0;
};

/// Error-optimal scale allocation (Section 5.2): group g gets
///   λ_g ∝ sqrt(|G_g| / Σ_{j∈g} 1/max{δ, v_j})
/// normalized so that GS(Q, Λ) = ε exactly. With v = true answers this is
/// the non-private Oracle; with v = noisy first-phase answers it is
/// TwoPhase's Rescale. Values v_j below δ clamp to δ. Requires δ > 0, ε > 0.
Result<std::vector<double>> ErrorOptimalScales(const Workload& workload,
                                               std::span<const double> values,
                                               double delta, double epsilon);

/// Per-query-sanity-bound variant (the Section 2.1 extension): cell j
/// clamps to bounds.at(j) instead of a shared δ.
Result<std::vector<double>> ErrorOptimalScales(const Workload& workload,
                                               std::span<const double> values,
                                               const SanityBounds& bounds,
                                               double epsilon);

/// Proportional allocation (Section 3.1): group g gets a scale proportional
/// to max{min_j v_j, δ} (its smallest answer, clamped to the sanity bound),
/// normalized so GS = ε. Equalizes the worst-case expected relative error
/// across groups; reduces to the paper's per-query rule for singleton
/// groups. Non-private when fed true answers.
Result<std::vector<double>> ProportionalScales(const Workload& workload,
                                               std::span<const double> values,
                                               double delta, double epsilon);

/// iReduct's PickQueries (Section 5.3): among groups with `active[g]` and
/// scale reducible by `lambda_delta` (λ_g > λΔ), returns the group
/// maximizing the ratio of estimated overall-error decrease (Equation 15,
/// normalized per Definition 6's per-group averaging)
///   λΔ/(|M|·|G_g|) · Σ_{j∈g} 1/max{y_j, δ}
/// to privacy-cost increase (Equation 14)
///   c_g/(λ_g - λΔ) - c_g/λ_g.
/// (As printed, Equation 15 drops the 1/|G_g| factor that Definition 6 and
/// the Section 5.2 Oracle derivation both carry; with the factor the greedy
/// descent provably converges to the Oracle allocation, matching the
/// paper's Figure 6 observation that iReduct is near-optimal.)
/// Returns kNoGroup when no active group is reducible.
///
/// This O(n) scan is the *reference* selector; the refinement loops use
/// GroupScoreHeap, which returns the identical group sequence in O(log m)
/// amortized (asserted by tests/algorithms/selection_heap_test.cc).
size_t PickGroupIReduct(const Workload& workload,
                        std::span<const double> noisy_answers,
                        std::span<const double> group_scales,
                        std::span<const uint8_t> active, double delta,
                        double lambda_delta);

/// iResamp's group selection: same benefit/cost rule with iResamp's moves —
/// halving the raw sample scale λ_g raises the group's effective privacy
/// cost from c_g·(2/λ_g - 1/λmax) to c_g·(4/λ_g - 1/λmax) (Appendix A
/// geometric series), i.e. by c_g·2/λ_g. Returns kNoGroup when no active
/// group remains.
size_t PickGroupIResamp(const Workload& workload,
                        std::span<const double> noisy_answers,
                        std::span<const double> group_scales,
                        std::span<const uint8_t> active, double delta);

/// Estimated average relative error of group g under scale `scale`
/// (Section 5.3): scale/|G_g| · Σ_{j∈g} 1/max{y_j, δ}.
double EstimatedGroupError(const Workload& workload, size_t g,
                           std::span<const double> noisy_answers, double scale,
                           double delta);

/// The paper's *worst-case* objective variant (Section 4.3: "if we aim to
/// minimize the maximum relative error, we may implement PickQueries as a
/// function that returns the query that maximizes λ_i/max{y_i, δ}"):
/// among active, reducible groups, picks the one whose worst cell has the
/// largest estimated relative error λ_g/max{y_j, δ}. Returns kNoGroup when
/// none qualifies. Pass to RunIReduct to optimize max instead of overall
/// error.
size_t PickGroupMaxRelativeError(const Workload& workload,
                                 std::span<const double> noisy_answers,
                                 std::span<const double> group_scales,
                                 std::span<const uint8_t> active, double delta,
                                 double lambda_delta);

}  // namespace ireduct

#endif  // IREDUCT_ALGORITHMS_SELECTION_H_
