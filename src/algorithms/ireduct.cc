#include "algorithms/ireduct.h"

#include <cmath>
#include <vector>

#include "algorithms/selection.h"
#include "dp/laplace_coupling.h"
#include "dp/laplace_mechanism.h"
#include "dp/noise_down.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ireduct {

namespace {

Status ValidateIReductParams(const IReductParams& p) {
  if (!(p.epsilon > 0) || !std::isfinite(p.epsilon)) {
    return Status::InvalidArgument("epsilon must be positive finite");
  }
  if (!(p.delta > 0) || !std::isfinite(p.delta)) {
    return Status::InvalidArgument("sanity bound delta must be positive");
  }
  if (!(p.lambda_max > 0) || !std::isfinite(p.lambda_max)) {
    return Status::InvalidArgument("lambda_max must be positive finite");
  }
  if (!(p.lambda_delta > 0) || !(p.lambda_delta < p.lambda_max)) {
    return Status::InvalidArgument(
        "lambda_delta must lie in (0, lambda_max)");
  }
  return Status::OK();
}

}  // namespace

Result<MechanismOutput> RunIReduct(const Workload& workload,
                                   const IReductParams& params, BitGen& gen,
                                   PickGroupFn pick_group) {
  IREDUCT_RETURN_NOT_OK(ValidateIReductParams(params));
  if (!pick_group) {
    pick_group = [](const Workload& w, std::span<const double> noisy,
                    std::span<const double> scales,
                    std::span<const uint8_t> act, double delta,
                    double lambda_delta) {
      return PickGroupIReduct(w, noisy, scales, act, delta, lambda_delta);
    };
  }

  // Figure 4, lines 1-3: start every group at λmax; if even that violates
  // the budget, the workload cannot be released at acceptable noise.
  MechanismOutput out;
  out.group_scales.assign(workload.num_groups(), params.lambda_max);
  if (workload.GeneralizedSensitivity(out.group_scales) > params.epsilon) {
    return Status::PrivacyBudgetExceeded(
        "GS at lambda_max already exceeds epsilon; no release possible");
  }

  // Line 4: initial noisy answers.
  IREDUCT_ASSIGN_OR_RETURN(out.answers,
                           LaplaceNoise(workload, out.group_scales, gen));

  // Lines 5-16: iterative noise reduction over the working set.
  IREDUCT_SCOPED_TIMER(run_timer, "ireduct.run_seconds");
  obs::TraceRecorder* const recorder = obs::TraceRecorder::Get();
  std::vector<uint8_t> active(workload.num_groups(), 1);
  for (;;) {
    const uint64_t iter_start_us =
        recorder != nullptr ? recorder->NowMicros() : 0;
    const size_t g = pick_group(workload, out.answers, out.group_scales,
                                active, params.delta, params.lambda_delta);
    if (g == kNoGroup) break;
    const double old_scale = out.group_scales[g];
    const double new_scale = old_scale - params.lambda_delta;

    // Lines 8-10: trial reduction, admitted only if GS stays within ε.
    out.group_scales[g] = new_scale;
    const double gs = workload.GeneralizedSensitivity(out.group_scales);
    const bool fits = new_scale > 0 && gs <= params.epsilon;
    if (!fits) {
      // Lines 13-16: revert and retire the group.
      out.group_scales[g] = old_scale;
      active[g] = false;
      IREDUCT_METRIC_COUNT("ireduct.group_retirements", 1);
      if (recorder != nullptr) {
        recorder->AddInstantEvent(
            "ireduct.retire",
            {{"group", static_cast<double>(g)}, {"lambda", old_scale}});
      }
      continue;
    }

    // Lines 11-12: correlated resample of each answer in the group down to
    // the new scale; costs nothing beyond the new scale (Theorem 1).
    const QueryGroup& group = workload.group(g);
    for (uint32_t i = group.begin; i < group.end; ++i) {
      if (params.reducer == NoiseReducer::kPaperNoiseDown) {
        IREDUCT_ASSIGN_OR_RETURN(
            out.answers[i], NoiseDown(workload.true_answer(i),
                                      out.answers[i], old_scale, new_scale,
                                      gen));
      } else {
        IREDUCT_ASSIGN_OR_RETURN(
            out.answers[i],
            CoupledNoiseDown(workload.true_answer(i), out.answers[i],
                             old_scale, new_scale, gen));
      }
    }
    out.resample_calls += group.size();
    ++out.iterations;
    IREDUCT_METRIC_COUNT("ireduct.iterations", 1);
    IREDUCT_METRIC_COUNT("ireduct.resample_draws", group.size());
    if (recorder != nullptr) {
      // One span per admitted iteration: which group was refined, the λ
      // move, the post-resample estimated relative error of the group, and
      // how much ε headroom the new allocation leaves.
      recorder->AddCompleteEvent(
          "ireduct.iteration", iter_start_us,
          recorder->NowMicros() - iter_start_us,
          {{"group", static_cast<double>(g)},
           {"old_lambda", old_scale},
           {"new_lambda", new_scale},
           {"est_rel_error",
            EstimatedGroupError(workload, g, out.answers, new_scale,
                                params.delta)},
           {"gs_headroom", params.epsilon - gs}});
    }
  }

  out.epsilon_spent = workload.GeneralizedSensitivity(out.group_scales);
  IREDUCT_LOG(kDebug) << "iReduct finished: " << out.iterations
                      << " iterations, " << out.resample_calls
                      << " resample draws, epsilon spent "
                      << out.epsilon_spent << " of " << params.epsilon;
  return out;
}

}  // namespace ireduct
