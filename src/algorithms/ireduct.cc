#include "algorithms/ireduct.h"

#include <cmath>
#include <memory>
#include <utility>
#include <vector>

#include "algorithms/selection.h"
#include "common/arena.h"
#include "common/fault.h"
#include "common/thread_pool.h"
#include "dp/incremental_sensitivity.h"
#include "dp/laplace_coupling.h"
#include "dp/laplace_mechanism.h"
#include "dp/noise_down.h"
#include "obs/event_log.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ireduct {

namespace {

// When the O(1) incremental GS lands within this relative distance of ε,
// the admit/retire decision is re-taken with a full recompute, so the
// incremental engine's decisions are bit-identical to the naive engine's
// even at the budget boundary. Incremental drift is bounded far below this
// by the tracker's periodic resync, so the band is hit rarely and the
// amortized cost stays O(1).
constexpr double kAdmitGuardRel = 1e-9;

Status ValidateIReductParams(const IReductParams& p) {
  if (!(p.epsilon > 0) || !std::isfinite(p.epsilon)) {
    return Status::InvalidArgument("epsilon must be positive finite");
  }
  if (!(p.delta > 0) || !std::isfinite(p.delta)) {
    return Status::InvalidArgument("sanity bound delta must be positive");
  }
  if (!(p.lambda_max > 0) || !std::isfinite(p.lambda_max)) {
    return Status::InvalidArgument("lambda_max must be positive finite");
  }
  if (!(p.lambda_delta > 0) || !(p.lambda_delta < p.lambda_max)) {
    return Status::InvalidArgument(
        "lambda_delta must lie in (0, lambda_max)");
  }
  if (p.batch_size < 1) {
    return Status::InvalidArgument("batch_size must be at least 1");
  }
  if (p.num_threads < 1) {
    return Status::InvalidArgument("num_threads must be at least 1");
  }
  return Status::OK();
}

// Lines 11-12 of Figure 4 for one group: correlated resample of each
// answer down to the new scale (costs nothing beyond the new scale,
// Theorem 1).
Status ResampleGroup(const Workload& workload, const QueryGroup& group,
                     NoiseReducer reducer, double old_scale, double new_scale,
                     std::span<double> answers, BitGen& gen) {
  for (uint32_t i = group.begin; i < group.end; ++i) {
    Result<double> reduced =
        reducer == NoiseReducer::kPaperNoiseDown
            ? NoiseDown(workload.true_answer(i), answers[i], old_scale,
                        new_scale, gen)
            : CoupledNoiseDown(workload.true_answer(i), answers[i],
                               old_scale, new_scale, gen);
    if (!reduced.ok()) return reduced.status();
    answers[i] = *reduced;
  }
  return Status::OK();
}

void RecordRetirement(obs::TraceRecorder* recorder, size_t g, double scale) {
  IREDUCT_METRIC_COUNT("ireduct.group_retirements", 1);
  if (recorder != nullptr) {
    recorder->AddInstantEvent(
        "ireduct.retire",
        {{"group", static_cast<double>(g)}, {"lambda", scale}});
  }
  if (obs::EventLog* events = obs::EventLog::Get()) {
    events->Emit("ireduct.retire", {{"group", static_cast<uint64_t>(g)},
                                    {"lambda", scale}});
  }
}

// The seed implementation of Figure 4 — full GS recompute and an O(n)
// PickQueries per iteration. Retained as the parity reference and as the
// only loop able to drive arbitrary pick_group hooks.
Result<MechanismOutput> RunIReductNaive(const Workload& workload,
                                        const IReductParams& params,
                                        BitGen& gen, PickGroupFn pick_group) {
  // Figure 4, lines 1-3: start every group at λmax; if even that violates
  // the budget, the workload cannot be released at acceptable noise.
  MechanismOutput out;
  out.group_scales.assign(workload.num_groups(), params.lambda_max);
  if (workload.GeneralizedSensitivity(out.group_scales) > params.epsilon) {
    return Status::PrivacyBudgetExceeded(
        "GS at lambda_max already exceeds epsilon; no release possible");
  }

  // Line 4: initial noisy answers.
  IREDUCT_ASSIGN_OR_RETURN(out.answers,
                           LaplaceNoise(workload, out.group_scales, gen));

  // Lines 5-16: iterative noise reduction over the working set.
  IREDUCT_SCOPED_TIMER(run_timer, "ireduct.run_seconds");
  obs::TraceRecorder* const recorder = obs::TraceRecorder::Get();
  std::vector<uint8_t> active(workload.num_groups(), 1);
  for (;;) {
    const uint64_t iter_start_us =
        recorder != nullptr ? recorder->NowMicros() : 0;
    size_t g;
    {
      IREDUCT_SCOPED_TIMER(pick_timer, "ireduct.pick_seconds");
      g = pick_group(workload, out.answers, out.group_scales, active,
                     params.delta, params.lambda_delta);
    }
    if (g == kNoGroup) break;
    const double old_scale = out.group_scales[g];
    const double new_scale = old_scale - params.lambda_delta;

    // Lines 8-10: trial reduction, admitted only if GS stays within ε.
    out.group_scales[g] = new_scale;
    const double gs = workload.GeneralizedSensitivity(out.group_scales);
    const bool fits = new_scale > 0 && gs <= params.epsilon;
    if (!fits) {
      // Lines 13-16: revert and retire the group.
      out.group_scales[g] = old_scale;
      active[g] = false;
      RecordRetirement(recorder, g, old_scale);
      continue;
    }

    const QueryGroup& group = workload.group(g);
    IREDUCT_RETURN_NOT_OK(ResampleGroup(workload, group, params.reducer,
                                        old_scale, new_scale, out.answers,
                                        gen));
    out.resample_calls += group.size();
    ++out.iterations;
    IREDUCT_METRIC_COUNT("ireduct.iterations", 1);
    IREDUCT_METRIC_COUNT("ireduct.resample_draws", group.size());
    if (recorder != nullptr) {
      // One span per admitted iteration: which group was refined, the λ
      // move, the post-resample estimated relative error of the group, and
      // how much ε headroom the new allocation leaves.
      recorder->AddCompleteEvent(
          "ireduct.iteration", iter_start_us,
          recorder->NowMicros() - iter_start_us,
          {{"group", static_cast<double>(g)},
           {"old_lambda", old_scale},
           {"new_lambda", new_scale},
           {"est_rel_error",
            EstimatedGroupError(workload, g, out.answers, new_scale,
                                params.delta)},
           {"gs_headroom", params.epsilon - gs}});
    }
    if (obs::EventLog* events = obs::EventLog::Get()) {
      // The naive engine refines one group per iteration, so iteration
      // index doubles as the round index.
      events->Emit("ireduct.move",
                   {{"round", static_cast<uint64_t>(out.iterations)},
                    {"group", static_cast<uint64_t>(g)},
                    {"old_lambda", old_scale},
                    {"new_lambda", new_scale},
                    {"gs_after", gs}});
    }
  }

  out.epsilon_spent = workload.GeneralizedSensitivity(out.group_scales);
  IREDUCT_LOG(kDebug) << "iReduct finished: " << out.iterations
                      << " iterations, " << out.resample_calls
                      << " resample draws, epsilon spent "
                      << out.epsilon_spent << " of " << params.epsilon;
  return out;
}

// Captures the loop state at a completed-round boundary and delivers it to
// the sink. epsilon_spent is the exact GS of the current scales via a
// non-mutating full recompute — calling the tracker's Resync() here would
// perturb its resync cadence and break bit-identity with uninterrupted
// runs.
Status WriteIReductCheckpoint(const Workload& workload, uint64_t fingerprint,
                              uint64_t round, const MechanismOutput& out,
                              const std::vector<uint8_t>& active,
                              const IncrementalSensitivity& gs_tracker,
                              const BitGen& gen, CheckpointSink& sink) {
  RunCheckpoint checkpoint;
  checkpoint.algorithm = "ireduct";
  checkpoint.workload_fingerprint = fingerprint;
  checkpoint.round = round;
  checkpoint.iterations = out.iterations;
  checkpoint.resample_calls = out.resample_calls;
  checkpoint.epsilon_spent =
      workload.GeneralizedSensitivity(out.group_scales);
  checkpoint.rng_state = gen.SaveState();
  checkpoint.gs = gs_tracker.Save();
  checkpoint.answers = out.answers;
  checkpoint.group_scales = out.group_scales;
  checkpoint.active = active;
  return sink.Write(checkpoint);
}

// One admitted λ move awaiting its NoiseDown round.
struct AdmittedMove {
  size_t group;
  double old_scale;
  double new_scale;
  double gs_after;  // GS once the move is committed
};

// The near-linear engine: per iteration, an O(1) incremental GS trial and
// an O(log m) amortized lazy-heap pick, with the per-group answer scan paid
// only when that group is re-scored after its own resample. With
// batch_size = 1 and num_threads = 1 this consumes the caller's generator
// in exactly the naive engine's order and reproduces its output bit for
// bit; batched rounds instead give every admitted group a deterministic
// RNG substream so thread count cannot change the result.
Result<MechanismOutput> RunIReductIncremental(const Workload& workload,
                                              const IReductParams& params,
                                              BitGen& gen) {
  MechanismOutput out;
  std::vector<uint8_t> active(workload.num_groups(), 1);
  const RunCheckpoint* const resume = params.resume;
  if (resume != nullptr) {
    IREDUCT_RETURN_NOT_OK(ValidateResume(*resume, "ireduct", workload));
    // Rehydrate the interrupted loop: answers, scales, mask, counters and
    // the exact RNG stream position. The initial noise draw already
    // happened in the interrupted run; re-drawing here would diverge from
    // it and release different values.
    out.answers = resume->answers;
    out.group_scales = resume->group_scales;
    out.iterations = static_cast<size_t>(resume->iterations);
    out.resample_calls = static_cast<size_t>(resume->resample_calls);
    active = resume->active;
    gen = BitGen::FromState(resume->rng_state);
  } else {
    out.group_scales.assign(workload.num_groups(), params.lambda_max);
    if (workload.GeneralizedSensitivity(out.group_scales) >
        params.epsilon) {
      return Status::PrivacyBudgetExceeded(
          "GS at lambda_max already exceeds epsilon; no release possible");
    }
    IREDUCT_ASSIGN_OR_RETURN(out.answers,
                             LaplaceNoise(workload, out.group_scales, gen));
  }

  IREDUCT_SCOPED_TIMER(run_timer, "ireduct.run_seconds");
  obs::TraceRecorder* const recorder = obs::TraceRecorder::Get();

  IncrementalSensitivity gs_tracker(workload, out.group_scales);
  if (resume != nullptr) {
    // Construction recomputed GS from the restored scales; overwriting the
    // running totals with the snapshot restores the interrupted tracker's
    // accumulated Kahan carry and resync phase bit for bit.
    gs_tracker.Restore(resume->gs);
  }
  const SelectionRule rule =
      params.objective == IReductObjective::kMaxRelativeError
          ? SelectionRule::kMaxRelativeError
          : SelectionRule::kIReductRatio;
  GroupScoreHeap heap(workload, rule, params.delta, params.lambda_delta);
  {
    IREDUCT_SCOPED_TIMER(build_timer, "ireduct.pick_seconds");
    heap.Build(out.answers, out.group_scales, active);
  }

  const bool batched = params.batch_size > 1 || params.num_threads > 1;
  std::unique_ptr<ThreadPool> pool;
  if (batched && params.num_threads > 1) {
    pool = std::make_unique<ThreadPool>(params.num_threads);
  }

  // Round scratch from an arena: the admitted-move list and the per-move
  // substream seeds are fixed-capacity (batch_size) trivially-destructible
  // buffers, bump-allocated once for the whole run — the rounds themselves
  // perform zero heap allocations for them. round_status stays a vector
  // (Status is not trivially destructible) but is hoisted and its capacity
  // is reused across rounds.
  Arena round_arena;
  AdmittedMove* const round_buf =
      round_arena.Alloc<AdmittedMove>(params.batch_size);
  uint64_t* const seed_buf = round_arena.Alloc<uint64_t>(params.batch_size);
  size_t round_size = 0;
  std::vector<Status> round_status;
  uint64_t completed_rounds = resume != nullptr ? resume->round : 0;
  const uint64_t fingerprint =
      params.checkpoint.enabled() ? FingerprintWorkload(workload) : 0;
  // ε-delta baseline for round events; one full recompute at loop entry.
  double gs_before_round =
      obs::EventLog::active()
          ? workload.GeneralizedSensitivity(out.group_scales)
          : 0;
  for (;;) {
    const uint64_t round_start_us =
        recorder != nullptr ? recorder->NowMicros() : 0;
    round_size = 0;

    // Selection: pop admissible groups in score order until the round is
    // full. Rejected pops retire their group (Figure 4 lines 13-16); the
    // rejection does not consume a batch slot.
    {
      IREDUCT_SCOPED_TIMER(pick_timer, "ireduct.pick_seconds");
      while (round_size < params.batch_size) {
        const size_t g = heap.PopBest();
        if (g == kNoGroup) break;
        const double old_scale = out.group_scales[g];
        const double new_scale = old_scale - params.lambda_delta;
        double gs = gs_tracker.Trial(g, new_scale);
        if (gs_tracker.incremental() &&
            std::fabs(gs - params.epsilon) <=
                kAdmitGuardRel * params.epsilon) {
          // Boundary call: decide exactly as the naive engine would.
          gs = gs_tracker.TrialExact(g, new_scale);
        }
        const bool fits = new_scale > 0 && gs <= params.epsilon;
        if (!fits) {
          active[g] = false;
          heap.Retire(g);
          RecordRetirement(recorder, g, old_scale);
          continue;
        }
        gs_tracker.Commit(g, new_scale);
        out.group_scales[g] = new_scale;
        round_buf[round_size++] = AdmittedMove{g, old_scale, new_scale, gs};
      }
    }
    if (round_size == 0) break;

    if (!batched) {
      // Sequential Figure 4: resample with the caller's generator directly,
      // matching the naive engine's draw order exactly.
      const AdmittedMove& mv = round_buf[0];
      IREDUCT_RETURN_NOT_OK(
          ResampleGroup(workload, workload.group(mv.group), params.reducer,
                        mv.old_scale, mv.new_scale, out.answers, gen));
    } else {
      // Batched round: derive one RNG substream per admitted group, in
      // admission order, *before* any parallel work — the draws each group
      // sees are then independent of thread count and scheduling.
      for (size_t i = 0; i < round_size; ++i) {
        seed_buf[i] = gen();
      }
      round_status.assign(round_size, Status::OK());
      auto resample_one = [&](size_t i) {
        const AdmittedMove& mv = round_buf[i];
        BitGen sub_gen(seed_buf[i]);
        round_status[i] =
            ResampleGroup(workload, workload.group(mv.group), params.reducer,
                          mv.old_scale, mv.new_scale, out.answers, sub_gen);
      };
      if (pool != nullptr && round_size > 1) {
        for (size_t i = 0; i < round_size; ++i) {
          pool->Submit([&resample_one, i] { resample_one(i); });
        }
        pool->Wait();
      } else {
        for (size_t i = 0; i < round_size; ++i) resample_one(i);
      }
      for (const Status& s : round_status) {
        IREDUCT_RETURN_NOT_OK(s);
      }
      IREDUCT_METRIC_COUNT("ireduct.batch_rounds", 1);
    }

    // Re-score every refined group; bookkeeping and trace per move.
    for (size_t i = 0; i < round_size; ++i) {
      const AdmittedMove& mv = round_buf[i];
      heap.Update(mv.group, out.answers, out.group_scales);
      const QueryGroup& group = workload.group(mv.group);
      out.resample_calls += group.size();
      ++out.iterations;
      IREDUCT_METRIC_COUNT("ireduct.iterations", 1);
      IREDUCT_METRIC_COUNT("ireduct.resample_draws", group.size());
      if (recorder != nullptr) {
        recorder->AddCompleteEvent(
            "ireduct.iteration", round_start_us,
            recorder->NowMicros() - round_start_us,
            {{"group", static_cast<double>(mv.group)},
             {"old_lambda", mv.old_scale},
             {"new_lambda", mv.new_scale},
             {"est_rel_error",
              EstimatedGroupError(workload, mv.group, out.answers,
                                  mv.new_scale, params.delta)},
             {"gs_headroom", params.epsilon - mv.gs_after}});
      }
      if (obs::EventLog* events = obs::EventLog::Get()) {
        events->Emit("ireduct.move",
                     {{"round", completed_rounds + 1},
                      {"group", static_cast<uint64_t>(mv.group)},
                      {"old_lambda", mv.old_scale},
                      {"new_lambda", mv.new_scale},
                      {"gs_after", mv.gs_after}});
      }
    }

    ++completed_rounds;
    if (obs::EventLog* events = obs::EventLog::Get()) {
      const double gs_now = round_buf[round_size - 1].gs_after;
      events->Emit("ireduct.round",
                   {{"round", completed_rounds},
                    {"moves", static_cast<uint64_t>(round_size)},
                    {"gs", gs_now},
                    {"epsilon_delta", gs_now - gs_before_round},
                    {"epsilon", params.epsilon}});
      gs_before_round = gs_now;
    }
    // Crash-test hook: "ireduct.round" crash@R dies here, after round R's
    // draws but before any checkpoint of it.
    FaultInjector::Global().Hit("ireduct.round");
    if (params.checkpoint.enabled() &&
        completed_rounds % params.checkpoint.every == 0) {
      IREDUCT_RETURN_NOT_OK(WriteIReductCheckpoint(
          workload, fingerprint, completed_rounds, out, active, gs_tracker,
          gen, *params.checkpoint.sink));
    }
  }

  IREDUCT_METRIC_COUNT("ireduct.heap_repushes", heap.repush_count());
  IREDUCT_METRIC_COUNT("ireduct.heap_stale_pops", heap.stale_pop_count());
  // The tracker already maintains GS; one exact resync publishes the same
  // value a from-scratch recompute would, without the naive engine's
  // redundant per-iteration passes.
  out.epsilon_spent = gs_tracker.Resync();
  IREDUCT_LOG(kDebug) << "iReduct finished (incremental): "
                      << out.iterations << " iterations, "
                      << out.resample_calls << " resample draws, epsilon "
                      << "spent " << out.epsilon_spent << " of "
                      << params.epsilon;
  return out;
}

}  // namespace

Result<MechanismOutput> RunIReduct(const Workload& workload,
                                   const IReductParams& params, BitGen& gen,
                                   PickGroupFn pick_group) {
  IREDUCT_RETURN_NOT_OK(ValidateIReductParams(params));
  const bool custom_hook = static_cast<bool>(pick_group);
  if (!custom_hook && params.engine != IReductEngine::kNaive) {
    return RunIReductIncremental(workload, params, gen);
  }
  if (params.checkpoint.enabled() || params.resume != nullptr) {
    return Status::InvalidArgument(
        "checkpoint/resume requires the incremental engine (default "
        "pick_group and engine != kNaive)");
  }
  if (!pick_group) {
    if (params.objective == IReductObjective::kMaxRelativeError) {
      pick_group = [](const Workload& w, std::span<const double> noisy,
                      std::span<const double> scales,
                      std::span<const uint8_t> act, double delta,
                      double lambda_delta) {
        return PickGroupMaxRelativeError(w, noisy, scales, act, delta,
                                         lambda_delta);
      };
    } else {
      pick_group = [](const Workload& w, std::span<const double> noisy,
                      std::span<const double> scales,
                      std::span<const uint8_t> act, double delta,
                      double lambda_delta) {
        return PickGroupIReduct(w, noisy, scales, act, delta, lambda_delta);
      };
    }
  }
  return RunIReductNaive(workload, params, gen, std::move(pick_group));
}

}  // namespace ireduct
