#include "algorithms/mechanism_registry.h"

#include <cstdlib>
#include <mutex>

#include "algorithms/dwork.h"
#include "algorithms/geometric.h"
#include "algorithms/ireduct.h"
#include "algorithms/iresamp.h"
#include "algorithms/oracle.h"
#include "algorithms/proportional.h"
#include "algorithms/strategy_mechanism.h"
#include "algorithms/two_phase.h"
#include "obs/json.h"

namespace ireduct {

namespace {

std::string Trim(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t')) --e;
  return std::string(s.substr(b, e - b));
}

bool ValidToken(std::string_view s) {
  if (s.empty()) return false;
  for (const char c : s) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

}  // namespace

Result<MechanismSpec> MechanismSpec::Parse(std::string_view text) {
  const size_t colon = text.find(':');
  MechanismSpec spec(Trim(text.substr(0, colon)));
  if (!ValidToken(spec.name_)) {
    return Status::InvalidArgument("mechanism spec '" + std::string(text) +
                                   "' has a malformed name");
  }
  if (colon == std::string_view::npos) return spec;
  std::string_view rest = text.substr(colon + 1);
  while (!rest.empty()) {
    const size_t comma = rest.find(',');
    const std::string_view item = rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view()
                                           : rest.substr(comma + 1);
    const size_t eq = item.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument("mechanism spec param '" +
                                     std::string(item) + "' is missing '='");
    }
    const std::string key = Trim(item.substr(0, eq));
    const std::string value = Trim(item.substr(eq + 1));
    if (!ValidToken(key) || value.empty()) {
      return Status::InvalidArgument("mechanism spec param '" +
                                     std::string(item) + "' is malformed");
    }
    if (spec.Has(key)) {
      return Status::InvalidArgument("mechanism spec sets param '" + key +
                                     "' twice");
    }
    spec.params_.emplace_back(key, value);
  }
  return spec;
}

Result<MechanismSpec> MechanismSpec::FromJson(std::string_view json) {
  IREDUCT_ASSIGN_OR_RETURN(obs::JsonValue doc, obs::JsonParse(json));
  if (!doc.is(obs::JsonValue::Kind::kObject)) {
    return Status::InvalidArgument("mechanism spec JSON must be an object");
  }
  const obs::JsonValue* name = doc.Find("name");
  if (name == nullptr || !name->is(obs::JsonValue::Kind::kString)) {
    return Status::InvalidArgument(
        "mechanism spec JSON needs a string \"name\"");
  }
  MechanismSpec spec(name->text);
  if (!ValidToken(spec.name_)) {
    return Status::InvalidArgument("mechanism spec JSON name '" +
                                   spec.name_ + "' is malformed");
  }
  for (const auto& [key, value] : doc.object) {
    if (key == "name") continue;
    if (key != "params") {
      return Status::InvalidArgument(
          "mechanism spec JSON has unknown top-level key '" + key +
          "' (expected \"name\" and optional \"params\")");
    }
    if (!value.is(obs::JsonValue::Kind::kObject)) {
      return Status::InvalidArgument(
          "mechanism spec JSON \"params\" must be an object");
    }
    for (const auto& [pkey, pvalue] : value.object) {
      if (spec.Has(pkey)) {
        return Status::InvalidArgument("mechanism spec JSON sets param '" +
                                       pkey + "' twice");
      }
      switch (pvalue.kind) {
        case obs::JsonValue::Kind::kString:
        case obs::JsonValue::Kind::kNumber:
          // For numbers, `text` holds the raw token, which round-trips the
          // caller's spelling (16 stays "16", not "16.0").
          spec.Set(pkey, pvalue.text);
          break;
        case obs::JsonValue::Kind::kBool:
          spec.Set(pkey, pvalue.boolean ? "true" : "false");
          break;
        default:
          return Status::InvalidArgument(
              "mechanism spec JSON param '" + pkey +
              "' must be a string, number or boolean");
      }
    }
  }
  return spec;
}

bool MechanismSpec::Has(std::string_view key) const {
  for (const auto& [k, v] : params_) {
    if (k == key) return true;
  }
  return false;
}

void MechanismSpec::Set(std::string_view key, std::string_view value) {
  for (auto& [k, v] : params_) {
    if (k == key) {
      v = std::string(value);
      return;
    }
  }
  params_.emplace_back(std::string(key), std::string(value));
}

void MechanismSpec::Set(std::string_view key, double value) {
  Set(key, obs::FormatDouble(value));
}

void MechanismSpec::SetDefault(std::string_view key, std::string_view value) {
  if (!Has(key)) params_.emplace_back(std::string(key), std::string(value));
}

void MechanismSpec::SetDefault(std::string_view key, double value) {
  SetDefault(key, obs::FormatDouble(value));
}

Result<double> MechanismSpec::GetDouble(std::string_view key,
                                        double fallback) const {
  for (const auto& [k, v] : params_) {
    if (k != key) continue;
    char* end = nullptr;
    const double parsed = std::strtod(v.c_str(), &end);
    if (end != v.c_str() + v.size() || v.empty()) {
      return Status::InvalidArgument("mechanism spec param '" + k + "=" + v +
                                     "' is not a number");
    }
    return parsed;
  }
  return fallback;
}

Result<int64_t> MechanismSpec::GetInt(std::string_view key,
                                      int64_t fallback) const {
  for (const auto& [k, v] : params_) {
    if (k != key) continue;
    char* end = nullptr;
    const long long parsed = std::strtoll(v.c_str(), &end, 10);
    if (end != v.c_str() + v.size() || v.empty()) {
      return Status::InvalidArgument("mechanism spec param '" + k + "=" + v +
                                     "' is not an integer");
    }
    return static_cast<int64_t>(parsed);
  }
  return fallback;
}

std::string MechanismSpec::GetString(std::string_view key,
                                     std::string_view fallback) const {
  for (const auto& [k, v] : params_) {
    if (k == key) return v;
  }
  return std::string(fallback);
}

std::string MechanismSpec::ToString() const {
  std::string out = name_;
  for (size_t i = 0; i < params_.size(); ++i) {
    out += i == 0 ? ':' : ',';
    out += params_[i].first;
    out += '=';
    out += params_[i].second;
  }
  return out;
}

Status Mechanism::ValidateSpec(const MechanismSpec& spec) const {
  const MechanismInfo info = Describe();
  if (spec.name() != info.name) {
    return Status::InvalidArgument("spec '" + spec.ToString() +
                                   "' does not name mechanism '" + info.name +
                                   "'");
  }
  for (const auto& [key, value] : spec.params()) {
    bool declared = false;
    for (const MechanismParamDoc& p : info.params) {
      if (p.key == key) {
        declared = true;
        break;
      }
    }
    if (!declared) {
      std::string accepted;
      for (const MechanismParamDoc& p : info.params) {
        if (!accepted.empty()) accepted += ", ";
        accepted += p.key;
      }
      return Status::InvalidArgument("mechanism '" + info.name +
                                     "' does not accept param '" + key +
                                     "' (accepts: " + accepted + ")");
    }
  }
  return Status::OK();
}

Result<MechanismOutput> Mechanism::RunResumable(
    const Workload& workload, const MechanismSpec& spec, BitGen& gen,
    const ResumableHooks& hooks) const {
  if (hooks.trivial()) return Run(workload, spec, gen);
  return Status::InvalidArgument("mechanism '" + Describe().name +
                                 "' does not support checkpoint/resume");
}

void Mechanism::SetSpecDefault(MechanismSpec* spec, std::string_view key,
                               double value) const {
  SetSpecDefault(spec, key, std::string_view(obs::FormatDouble(value)));
}

void Mechanism::SetSpecDefault(MechanismSpec* spec, std::string_view key,
                               std::string_view value) const {
  if (spec->Has(key)) return;
  const MechanismInfo info = Describe();
  for (const MechanismParamDoc& p : info.params) {
    if (p.key == key) {
      spec->SetDefault(key, value);
      return;
    }
  }
}

// ---------------------------------------------------------------------------
// Built-in adapters. Each maps spec params onto the existing free-function
// options struct and delegates, so a registry dispatch is byte-identical to
// the direct call at the same seed (mechanism_parity_test.cc enforces it).

namespace {

class DworkMechanism : public Mechanism {
 public:
  MechanismInfo Describe() const override {
    return MechanismInfo{
        "dwork",
        "Dwork",
        "Uniform Laplace noise calibrated to the workload sensitivity "
        "(Section 2.2).",
        MechanismPrivacy::kPrivate,
        {{"epsilon", "1", "privacy budget; every query gets scale S(Q)/ε"}}};
  }

  Result<MechanismOutput> Run(const Workload& workload,
                              const MechanismSpec& spec,
                              BitGen& gen) const override {
    DworkParams params;
    IREDUCT_ASSIGN_OR_RETURN(params.epsilon,
                             spec.GetDouble("epsilon", params.epsilon));
    return RunDwork(workload, params, gen);
  }
};

class GeometricMechanism : public Mechanism {
 public:
  MechanismInfo Describe() const override {
    return MechanismInfo{
        "geometric",
        "Geometric",
        "Two-sided geometric noise per (integer) query; the discrete "
        "Laplace analogue (Ghosh et al.).",
        MechanismPrivacy::kPrivate,
        {{"epsilon", "1", "privacy budget; α = e^{-ε/S(Q)}"}}};
  }

  Result<MechanismOutput> Run(const Workload& workload,
                              const MechanismSpec& spec,
                              BitGen& gen) const override {
    GeometricParams params;
    IREDUCT_ASSIGN_OR_RETURN(params.epsilon,
                             spec.GetDouble("epsilon", params.epsilon));
    return RunGeometric(workload, params, gen);
  }
};

class ProportionalMechanism : public Mechanism {
 public:
  MechanismInfo Describe() const override {
    return MechanismInfo{
        "proportional",
        "Proportional",
        "Noise scales proportional to the true answers (Section 3.1). "
        "NON-PRIVATE pedagogical baseline.",
        MechanismPrivacy::kNonPrivate,
        {{"epsilon", "1", "nominal budget: scales normalized to GS = ε"},
         {"delta", "1", "sanity bound δ of Equation 1"}}};
  }

  Result<MechanismOutput> Run(const Workload& workload,
                              const MechanismSpec& spec,
                              BitGen& gen) const override {
    ProportionalParams params;
    IREDUCT_ASSIGN_OR_RETURN(params.epsilon,
                             spec.GetDouble("epsilon", params.epsilon));
    IREDUCT_ASSIGN_OR_RETURN(params.delta,
                             spec.GetDouble("delta", params.delta));
    return RunProportional(workload, params, gen);
  }
};

class OracleMechanism : public Mechanism {
 public:
  MechanismInfo Describe() const override {
    return MechanismInfo{
        "oracle",
        "Oracle",
        "Error-optimal scale allocation computed from the exact answers "
        "(Section 5.2). NON-PRIVATE lower-bound reference.",
        MechanismPrivacy::kNonPrivate,
        {{"epsilon", "1", "budget constraint: GS(Q, Λ) = ε"},
         {"delta", "1", "sanity bound δ of Equation 1"}}};
  }

  Result<MechanismOutput> Run(const Workload& workload,
                              const MechanismSpec& spec,
                              BitGen& gen) const override {
    OracleParams params;
    IREDUCT_ASSIGN_OR_RETURN(params.epsilon,
                             spec.GetDouble("epsilon", params.epsilon));
    IREDUCT_ASSIGN_OR_RETURN(params.delta,
                             spec.GetDouble("delta", params.delta));
    return RunOracle(workload, params, gen);
  }
};

class TwoPhaseMechanism : public Mechanism {
 public:
  MechanismInfo Describe() const override {
    return MechanismInfo{
        "two_phase",
        "TwoPhase",
        "Rough uniform phase-1 estimates recalibrate the phase-2 scales "
        "(Section 3.2, Figure 1).",
        MechanismPrivacy::kPrivate,
        {{"epsilon", "", "total budget, split via epsilon1_fraction"},
         {"epsilon1_fraction", "0.07", "phase-1 share of epsilon"},
         {"epsilon1", "0.0007", "explicit phase-1 budget"},
         {"epsilon2", "0.0093", "explicit phase-2 budget"},
         {"delta", "1", "sanity bound δ of Equation 1"}}};
  }

  Status ValidateSpec(const MechanismSpec& spec) const override {
    IREDUCT_RETURN_NOT_OK(Mechanism::ValidateSpec(spec));
    const bool has_split = spec.Has("epsilon1") || spec.Has("epsilon2");
    if (spec.Has("epsilon") && has_split) {
      return Status::InvalidArgument(
          "two_phase takes either epsilon (+ epsilon1_fraction) or explicit "
          "epsilon1 + epsilon2, not both");
    }
    if (has_split && !(spec.Has("epsilon1") && spec.Has("epsilon2"))) {
      return Status::InvalidArgument(
          "two_phase needs both epsilon1 and epsilon2 when either is given");
    }
    if (spec.Has("epsilon1_fraction") && has_split) {
      return Status::InvalidArgument(
          "two_phase ignores epsilon1_fraction when epsilon1/epsilon2 are "
          "explicit — drop one of them");
    }
    return Status::OK();
  }

  Result<MechanismOutput> Run(const Workload& workload,
                              const MechanismSpec& spec,
                              BitGen& gen) const override {
    TwoPhaseParams params;
    // Explicit phase budgets win over `epsilon`: ValidateSpec rejects a
    // *user* spec carrying both, but the session/tool layers default-fill
    // `epsilon` after validation, which must not shadow an explicit split.
    if (spec.Has("epsilon1") || spec.Has("epsilon2")) {
      IREDUCT_ASSIGN_OR_RETURN(params.epsilon1,
                               spec.GetDouble("epsilon1", params.epsilon1));
      IREDUCT_ASSIGN_OR_RETURN(params.epsilon2,
                               spec.GetDouble("epsilon2", params.epsilon2));
    } else {
      IREDUCT_ASSIGN_OR_RETURN(const double epsilon,
                               spec.GetDouble("epsilon", 0.01));
      IREDUCT_ASSIGN_OR_RETURN(const double fraction,
                               spec.GetDouble("epsilon1_fraction", 0.07));
      if (!(fraction > 0) || !(fraction < 1)) {
        return Status::InvalidArgument(
            "two_phase epsilon1_fraction must be in (0, 1)");
      }
      params.epsilon1 = fraction * epsilon;
      params.epsilon2 = (1 - fraction) * epsilon;
    }
    IREDUCT_ASSIGN_OR_RETURN(params.delta,
                             spec.GetDouble("delta", params.delta));
    return RunTwoPhase(workload, params, gen);
  }
};

class IResampMechanism : public Mechanism {
 public:
  MechanismInfo Describe() const override {
    return MechanismInfo{
        "iresamp",
        "iResamp",
        "Iterative independent resampling at halved scales (Appendix A, "
        "Figure 12); the correlation ablation of iReduct.",
        MechanismPrivacy::kPrivate,
        {{"epsilon", "1", "total privacy budget"},
         {"delta", "1", "sanity bound δ of Equation 1"},
         {"lambda_max", "1", "initial noise scale (paper: |T|/10)"}}};
  }

  Result<MechanismOutput> Run(const Workload& workload,
                              const MechanismSpec& spec,
                              BitGen& gen) const override {
    IREDUCT_ASSIGN_OR_RETURN(const IResampParams params, BuildParams(spec));
    return RunIResamp(workload, params, gen);
  }

  Result<MechanismOutput> RunResumable(
      const Workload& workload, const MechanismSpec& spec, BitGen& gen,
      const ResumableHooks& hooks) const override {
    IREDUCT_ASSIGN_OR_RETURN(IResampParams params, BuildParams(spec));
    params.checkpoint = hooks.checkpoint;
    params.resume = hooks.resume;
    return RunIResamp(workload, params, gen);
  }

 private:
  static Result<IResampParams> BuildParams(const MechanismSpec& spec) {
    IResampParams params;
    IREDUCT_ASSIGN_OR_RETURN(params.epsilon,
                             spec.GetDouble("epsilon", params.epsilon));
    IREDUCT_ASSIGN_OR_RETURN(params.delta,
                             spec.GetDouble("delta", params.delta));
    IREDUCT_ASSIGN_OR_RETURN(params.lambda_max,
                             spec.GetDouble("lambda_max", params.lambda_max));
    return params;
  }
};

class IReductMechanism : public Mechanism {
 public:
  MechanismInfo Describe() const override {
    return MechanismInfo{
        "ireduct",
        "iReduct",
        "The paper's main contribution (Section 4.3, Figure 4): iterative "
        "NoiseDown refinement toward minimal relative error.",
        MechanismPrivacy::kPrivate,
        {{"epsilon", "1", "total privacy budget"},
         {"delta", "1", "sanity bound δ of Equation 1"},
         {"lambda_max", "1", "initial noise scale (paper: |T|/10)"},
         {"lambda_delta", "", "per-iteration decrement (paper: |T|/10^6)"},
         {"lambda_steps", "",
          "alternative to lambda_delta: λΔ = lambda_max/steps"},
         {"engine", "auto",
          "auto | incremental | naive inner loop (identical outputs)"},
         {"objective", "overall", "overall | max_rel PickQueries objective"},
         {"reducer", "noise_down",
          "noise_down | exact_coupling correlated resampler"},
         {"batch_size", "1", "groups admitted per round (incremental only)"},
         {"num_threads", "1", "workers for batched NoiseDown resampling"}}};
  }

  Status ValidateSpec(const MechanismSpec& spec) const override {
    IREDUCT_RETURN_NOT_OK(Mechanism::ValidateSpec(spec));
    if (spec.Has("lambda_delta") && spec.Has("lambda_steps")) {
      return Status::InvalidArgument(
          "ireduct takes either lambda_delta or lambda_steps, not both");
    }
    return Status::OK();
  }

  Result<MechanismOutput> Run(const Workload& workload,
                              const MechanismSpec& spec,
                              BitGen& gen) const override {
    IREDUCT_ASSIGN_OR_RETURN(const IReductParams params, BuildParams(spec));
    return RunIReduct(workload, params, gen);
  }

  Result<MechanismOutput> RunResumable(
      const Workload& workload, const MechanismSpec& spec, BitGen& gen,
      const ResumableHooks& hooks) const override {
    IREDUCT_ASSIGN_OR_RETURN(IReductParams params, BuildParams(spec));
    params.checkpoint = hooks.checkpoint;
    params.resume = hooks.resume;
    return RunIReduct(workload, params, gen);
  }

 private:
  static Result<IReductParams> BuildParams(const MechanismSpec& spec) {
    IReductParams params;
    IREDUCT_ASSIGN_OR_RETURN(params.epsilon,
                             spec.GetDouble("epsilon", params.epsilon));
    IREDUCT_ASSIGN_OR_RETURN(params.delta,
                             spec.GetDouble("delta", params.delta));
    IREDUCT_ASSIGN_OR_RETURN(params.lambda_max,
                             spec.GetDouble("lambda_max", params.lambda_max));
    // Explicit lambda_delta wins over lambda_steps: ValidateSpec rejects a
    // user spec carrying both, but the layers above default-fill
    // lambda_steps after validation.
    if (spec.Has("lambda_delta")) {
      IREDUCT_ASSIGN_OR_RETURN(
          params.lambda_delta,
          spec.GetDouble("lambda_delta", params.lambda_delta));
    } else if (spec.Has("lambda_steps")) {
      IREDUCT_ASSIGN_OR_RETURN(const int64_t steps,
                               spec.GetInt("lambda_steps", 0));
      if (steps < 2) {
        return Status::InvalidArgument("ireduct lambda_steps must be >= 2");
      }
      params.lambda_delta = params.lambda_max / static_cast<double>(steps);
    }
    const std::string engine = spec.GetString("engine", "auto");
    if (engine == "auto" || engine == "incremental") {
      // kAuto selects the incremental engine whenever no custom pick_group
      // hook is installed — which is always the case for spec dispatch.
      params.engine = IReductEngine::kAuto;
    } else if (engine == "naive") {
      params.engine = IReductEngine::kNaive;
    } else {
      return Status::InvalidArgument(
          "ireduct engine must be auto, incremental or naive (got '" +
          engine + "')");
    }
    const std::string objective = spec.GetString("objective", "overall");
    if (objective == "overall") {
      params.objective = IReductObjective::kOverallError;
    } else if (objective == "max_rel") {
      params.objective = IReductObjective::kMaxRelativeError;
    } else {
      return Status::InvalidArgument(
          "ireduct objective must be overall or max_rel (got '" + objective +
          "')");
    }
    const std::string reducer = spec.GetString("reducer", "noise_down");
    if (reducer == "noise_down") {
      params.reducer = NoiseReducer::kPaperNoiseDown;
    } else if (reducer == "exact_coupling") {
      params.reducer = NoiseReducer::kExactCoupling;
    } else {
      return Status::InvalidArgument(
          "ireduct reducer must be noise_down or exact_coupling (got '" +
          reducer + "')");
    }
    IREDUCT_ASSIGN_OR_RETURN(const int64_t batch,
                             spec.GetInt("batch_size", 1));
    IREDUCT_ASSIGN_OR_RETURN(const int64_t threads,
                             spec.GetInt("num_threads", 1));
    if (batch < 1) {
      return Status::InvalidArgument("ireduct batch_size must be >= 1");
    }
    if (threads < 1) {
      return Status::InvalidArgument("ireduct num_threads must be >= 1");
    }
    params.batch_size = static_cast<size_t>(batch);
    params.num_threads = static_cast<int>(threads);
    return params;
  }
};

// The strategy-matrix family (algorithms/strategy_mechanism.h): one
// shared runner serves the hierarchical and wavelet baselines (which
// view the workload's answer vector as a 1D histogram when no linear
// view is attached — bit-identical to the deleted bespoke publishers)
// and the general matrix mechanism over linear workloads.
class HierarchicalMechanism : public Mechanism {
 public:
  MechanismInfo Describe() const override {
    return MechanismInfo{
        "hierarchical",
        "Hierarchical",
        "Consistent noisy binary tree (Hay et al.) via the shared "
        "strategy runner; answers a linear view's histogram domain when "
        "attached, else the answer vector as a 1D histogram.",
        MechanismPrivacy::kPrivate,
        {{"epsilon", "1", "total privacy budget"}}};
  }

  Result<MechanismOutput> Run(const Workload& workload,
                              const MechanismSpec& spec,
                              BitGen& gen) const override {
    StrategyMechanismConfig config;
    config.strategy = "tree";
    IREDUCT_ASSIGN_OR_RETURN(config.epsilon,
                             spec.GetDouble("epsilon", config.epsilon));
    return RunStrategyMechanism(workload, config, gen);
  }
};

class WaveletMechanism : public Mechanism {
 public:
  MechanismInfo Describe() const override {
    return MechanismInfo{
        "wavelet",
        "Wavelet",
        "Privelet noisy Haar transform (Xiao et al.) via the shared "
        "strategy runner; answers a linear view's histogram domain when "
        "attached, else the answer vector as a 1D histogram.",
        MechanismPrivacy::kPrivate,
        {{"epsilon", "1", "total privacy budget"}}};
  }

  Result<MechanismOutput> Run(const Workload& workload,
                              const MechanismSpec& spec,
                              BitGen& gen) const override {
    StrategyMechanismConfig config;
    config.strategy = "wavelet";
    IREDUCT_ASSIGN_OR_RETURN(config.epsilon,
                             spec.GetDouble("epsilon", config.epsilon));
    return RunStrategyMechanism(workload, config, gen);
  }
};

// Spec parsing shared by the two matrix-mechanism entries.
Result<StrategyMechanismConfig> ParseStrategyConfig(
    const MechanismSpec& spec, bool greedy_default) {
  StrategyMechanismConfig config;
  config.strategy = spec.GetString("strategy", "tree");
  if (config.strategy != "identity" && config.strategy != "tree" &&
      config.strategy != "wavelet") {
    return Status::InvalidArgument(
        "strategy must be identity, tree or wavelet (got '" +
        config.strategy + "')");
  }
  IREDUCT_ASSIGN_OR_RETURN(config.epsilon,
                           spec.GetDouble("epsilon", config.epsilon));
  const std::string tune =
      spec.GetString("tune", greedy_default ? "greedy" : "none");
  if (tune == "greedy") {
    config.greedy = true;
  } else if (tune == "none") {
    config.greedy = false;
  } else {
    return Status::InvalidArgument("tune must be none or greedy (got '" +
                                   tune + "')");
  }
  IREDUCT_ASSIGN_OR_RETURN(
      config.epsilon1_fraction,
      spec.GetDouble("epsilon1_fraction", config.epsilon1_fraction));
  IREDUCT_ASSIGN_OR_RETURN(config.relative_floor,
                           spec.GetDouble("delta", config.relative_floor));
  IREDUCT_ASSIGN_OR_RETURN(
      const int64_t passes, spec.GetInt("tune_passes", config.tune_passes));
  if (passes < 0) {
    return Status::InvalidArgument("tune_passes must be >= 0");
  }
  config.tune_passes = static_cast<int>(passes);
  return config;
}

class MatrixMechanism : public Mechanism {
 public:
  MechanismInfo Describe() const override {
    return MechanismInfo{
        "matrix",
        "Matrix",
        "Matrix mechanism (Li-Miklau): noise a strategy matrix over the "
        "workload's linear view and reconstruct by least squares.",
        MechanismPrivacy::kPrivate,
        {{"epsilon", "1", "total privacy budget"},
         {"strategy", "tree", "strategy matrix: identity, tree or wavelet"},
         {"tune", "none", "scale tuning: none or greedy (relative error)"},
         {"epsilon1_fraction", "0.3",
          "phase-1 budget share for the greedy rough answers"},
         {"delta", "1",
          "relative-error floor for the greedy query weights"},
         {"tune_passes", "8", "greedy coordinate-descent passes"}}};
  }

  Result<MechanismOutput> Run(const Workload& workload,
                              const MechanismSpec& spec,
                              BitGen& gen) const override {
    IREDUCT_ASSIGN_OR_RETURN(
        const StrategyMechanismConfig config,
        ParseStrategyConfig(spec, /*greedy_default=*/false));
    return RunStrategyMechanism(workload, config, gen);
  }
};

class MatrixGreedyMechanism : public Mechanism {
 public:
  MechanismInfo Describe() const override {
    return MechanismInfo{
        "matrix_greedy",
        "MatrixGreedy",
        "Matrix mechanism with greedy per-row scale tuning minimizing "
        "expected relative error (phase-1 rough answers set the query "
        "weights).",
        MechanismPrivacy::kPrivate,
        {{"epsilon", "1", "total privacy budget"},
         {"strategy", "tree", "strategy matrix: identity, tree or wavelet"},
         {"tune", "greedy", "scale tuning: none or greedy"},
         {"epsilon1_fraction", "0.3",
          "phase-1 budget share for the rough answers"},
         {"delta", "1", "relative-error floor for the query weights"},
         {"tune_passes", "8", "greedy coordinate-descent passes"}}};
  }

  Result<MechanismOutput> Run(const Workload& workload,
                              const MechanismSpec& spec,
                              BitGen& gen) const override {
    IREDUCT_ASSIGN_OR_RETURN(
        const StrategyMechanismConfig config,
        ParseStrategyConfig(spec, /*greedy_default=*/true));
    return RunStrategyMechanism(workload, config, gen);
  }
};

std::mutex& RegistryMutex() {
  static std::mutex mutex;
  return mutex;
}

}  // namespace

MechanismRegistry& MechanismRegistry::Global() {
  static MechanismRegistry* registry = [] {
    auto* r = new MechanismRegistry();
    // Paper reporting order first (Section 6 tables), extensions after.
    (void)r->Register(std::make_unique<OracleMechanism>());
    (void)r->Register(std::make_unique<IReductMechanism>());
    (void)r->Register(std::make_unique<TwoPhaseMechanism>());
    (void)r->Register(std::make_unique<IResampMechanism>());
    (void)r->Register(std::make_unique<DworkMechanism>());
    (void)r->Register(std::make_unique<ProportionalMechanism>());
    (void)r->Register(std::make_unique<GeometricMechanism>());
    (void)r->Register(std::make_unique<HierarchicalMechanism>());
    (void)r->Register(std::make_unique<WaveletMechanism>());
    (void)r->Register(std::make_unique<MatrixMechanism>());
    (void)r->Register(std::make_unique<MatrixGreedyMechanism>());
    return r;
  }();
  return *registry;
}

Status MechanismRegistry::Register(std::unique_ptr<Mechanism> mechanism) {
  if (mechanism == nullptr) {
    return Status::InvalidArgument("cannot register a null mechanism");
  }
  const std::string name = mechanism->Describe().name;
  if (name.empty()) {
    return Status::InvalidArgument("mechanism name must be non-empty");
  }
  std::lock_guard<std::mutex> lock(RegistryMutex());
  for (const auto& entry : entries_) {
    if (entry->Describe().name == name) {
      return Status::InvalidArgument("mechanism '" + name +
                                     "' is already registered");
    }
  }
  entries_.push_back(std::move(mechanism));
  return Status::OK();
}

const Mechanism* MechanismRegistry::Find(std::string_view name) const {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  for (const auto& entry : entries_) {
    if (entry->Describe().name == name) return entry.get();
  }
  return nullptr;
}

Result<const Mechanism*> MechanismRegistry::Get(std::string_view name) const {
  const Mechanism* mechanism = Find(name);
  if (mechanism != nullptr) return mechanism;
  std::string known;
  for (const std::string& n : Names()) {
    if (!known.empty()) known += ", ";
    known += n;
  }
  return Status::NotFound("unknown mechanism '" + std::string(name) +
                          "' (registered: " + known + ")");
}

std::vector<std::string> MechanismRegistry::Names() const {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& entry : entries_) {
    names.push_back(entry->Describe().name);
  }
  return names;
}

Result<MechanismOutput> MechanismRegistry::Run(const Workload& workload,
                                               const MechanismSpec& spec,
                                               BitGen& gen) const {
  IREDUCT_ASSIGN_OR_RETURN(const Mechanism* mechanism, Get(spec.name()));
  IREDUCT_RETURN_NOT_OK(mechanism->ValidateSpec(spec));
  return mechanism->Run(workload, spec, gen);
}

Result<MechanismOutput> MechanismRegistry::Run(const Workload& workload,
                                               std::string_view spec_text,
                                               BitGen& gen) const {
  IREDUCT_ASSIGN_OR_RETURN(MechanismSpec spec, MechanismSpec::Parse(spec_text));
  return Run(workload, spec, gen);
}

Result<MechanismOutput> MechanismRegistry::RunResumable(
    const Workload& workload, const MechanismSpec& spec, BitGen& gen,
    const Mechanism::ResumableHooks& hooks) const {
  IREDUCT_ASSIGN_OR_RETURN(const Mechanism* mechanism, Get(spec.name()));
  IREDUCT_RETURN_NOT_OK(mechanism->ValidateSpec(spec));
  return mechanism->RunResumable(workload, spec, gen, hooks);
}

}  // namespace ireduct
