// The shared strategy-mechanism runner: one code path serving every
// strategy-matrix mechanism (identity / tree / wavelet / greedy-tuned),
// replacing the two bespoke publishers that algorithms/hierarchical.cc
// and algorithms/wavelet.cc used to be.
//
// Given a workload, the runner resolves the domain to noise:
//   - with a linear view attached (Workload::linear, see
//     queries/linear_workload.h) it noises the *histogram* domain with
//     strategy A and answers W·A⁺·y — the full matrix mechanism;
//   - without one it treats the answer vector itself as a 1D histogram
//     under move semantics, exactly like the legacy adapters (and
//     bit-identically so, locked by tests/algorithms/
//     strategy_golden_test.cc).
//
// The greedy variant spends a phase-1 fraction of ε on rough answers,
// weights each query by 1/max(|rough|, floor)² and tunes the per-row
// noise multipliers with GreedyTuneScales — minimizing expected
// *relative* error, the paper's own metric (Definition 6).
#ifndef IREDUCT_ALGORITHMS_STRATEGY_MECHANISM_H_
#define IREDUCT_ALGORITHMS_STRATEGY_MECHANISM_H_

#include <string>

#include "algorithms/mechanism.h"
#include "common/random.h"
#include "common/result.h"
#include "dp/workload.h"

namespace ireduct {

struct StrategyMechanismConfig {
  /// Strategy family: "identity", "tree" or "wavelet".
  std::string strategy = "tree";
  /// Total privacy budget ε (phase 1 + publication when greedy).
  double epsilon = 1.0;
  /// Greedy relative-error scale tuning (phase-1 rough answers + per-row
  /// multiplier descent) instead of the strategy's natural scales.
  bool greedy = false;
  /// Fraction of ε spent on the phase-1 rough answers (greedy only).
  double epsilon1_fraction = 0.3;
  /// Floor δ for the relative-error weights 1/max(|rough|, δ)².
  double relative_floor = 1.0;
  /// Coordinate-descent passes of GreedyTuneScales.
  int tune_passes = 8;
};

/// Runs one strategy mechanism over `workload`. All randomness comes
/// from `gen`; the spent budget is exactly `config.epsilon`.
Result<MechanismOutput> RunStrategyMechanism(
    const Workload& workload, const StrategyMechanismConfig& config,
    BitGen& gen);

}  // namespace ireduct

#endif  // IREDUCT_ALGORITHMS_STRATEGY_MECHANISM_H_
