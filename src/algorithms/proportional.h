// The Proportional strategy (Section 3.1): noise scales proportional to the
// (clamped) true answers, equalizing expected relative error.
//
// WARNING: deliberately NOT differentially private — the scales depend on
// the private data (Example 1 in the paper demonstrates the leak). Included
// as a pedagogical baseline; `epsilon_spent` is reported as +infinity.
#ifndef IREDUCT_ALGORITHMS_PROPORTIONAL_H_
#define IREDUCT_ALGORITHMS_PROPORTIONAL_H_

#include "algorithms/mechanism.h"
#include "common/random.h"
#include "common/result.h"
#include "dp/workload.h"

namespace ireduct {

struct ProportionalParams {
  /// Nominal budget: scales are normalized so that GS(Q, Λ) = ε, matching
  /// Example 1's calibration — but the release is still not ε-DP.
  double epsilon = 1.0;
  /// Sanity bound δ of Equation 1.
  double delta = 1.0;
};

/// Sets λ_g ∝ max{min answer in group g, δ} with GS(Q, Λ) = ε, then adds
/// Laplace noise. Non-private baseline.
Result<MechanismOutput> RunProportional(const Workload& workload,
                                        const ProportionalParams& params,
                                        BitGen& gen);

}  // namespace ireduct

#endif  // IREDUCT_ALGORITHMS_PROPORTIONAL_H_
