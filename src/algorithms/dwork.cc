#include "algorithms/dwork.h"

#include <cmath>

#include "dp/laplace_mechanism.h"

namespace ireduct {

Result<MechanismOutput> RunDwork(const Workload& workload,
                                 const DworkParams& params, BitGen& gen) {
  if (!(params.epsilon > 0) || !std::isfinite(params.epsilon)) {
    return Status::InvalidArgument("epsilon must be positive finite");
  }
  const double scale = workload.Sensitivity() / params.epsilon;
  MechanismOutput out;
  out.group_scales.assign(workload.num_groups(), scale);
  IREDUCT_ASSIGN_OR_RETURN(out.answers,
                           LaplaceNoise(workload, out.group_scales, gen));
  out.epsilon_spent = params.epsilon;
  return out;
}

}  // namespace ireduct
