#include "algorithms/two_phase.h"

#include <cmath>

#include "algorithms/selection.h"
#include "dp/laplace_mechanism.h"

namespace ireduct {

Result<MechanismOutput> RunTwoPhase(const Workload& workload,
                                    const TwoPhaseParams& params,
                                    BitGen& gen) {
  if (!(params.epsilon1 > 0) || !(params.epsilon2 > 0) ||
      !std::isfinite(params.epsilon1 + params.epsilon2)) {
    return Status::InvalidArgument("epsilon1 and epsilon2 must be positive");
  }

  // Phase 1 (Figure 1, lines 1-3): uniform scale S(Q)/ε1.
  const double scale1 = workload.Sensitivity() / params.epsilon1;
  const std::vector<double> scales1(workload.num_groups(), scale1);
  IREDUCT_ASSIGN_OR_RETURN(std::vector<double> phase1,
                           LaplaceNoise(workload, scales1, gen));

  // Phase 2 (lines 4-8): rescale from the noisy answers; the allocation is
  // normalized so GS(Q, Λ') = ε2, satisfying the line-5 guard by
  // construction.
  IREDUCT_ASSIGN_OR_RETURN(
      std::vector<double> scales2,
      ErrorOptimalScales(workload, phase1, params.delta, params.epsilon2));
  IREDUCT_ASSIGN_OR_RETURN(std::vector<double> phase2,
                           LaplaceNoise(workload, scales2, gen));

  // Line 8: minimum-variance unbiased combination of the two estimates,
  //   y = (λ2² · y1 + λ1² · y2) / (λ1² + λ2²).
  MechanismOutput out;
  out.answers.resize(workload.num_queries());
  for (size_t i = 0; i < workload.num_queries(); ++i) {
    const double l1 = scale1;
    const double l2 = scales2[workload.group_of(i)];
    out.answers[i] =
        (l2 * l2 * phase1[i] + l1 * l1 * phase2[i]) / (l1 * l1 + l2 * l2);
  }
  out.group_scales = std::move(scales2);
  out.epsilon_spent = params.epsilon1 + params.epsilon2;
  return out;
}

}  // namespace ireduct
