#include "algorithms/geometric.h"

#include <cmath>

namespace ireduct {

Result<int64_t> TwoSidedGeometric(double alpha, BitGen& gen) {
  if (!(alpha > 0) || !(alpha < 1)) {
    return Status::InvalidArgument("alpha must lie in (0, 1)");
  }
  // Difference of two i.i.d. geometric variables on {0, 1, ...} with
  // success probability 1-α is two-sided geometric with parameter α.
  auto one_sided = [&]() -> int64_t {
    // Inverse CDF: k = floor(log(u) / log(alpha)).
    const double u = gen.UniformPositive();
    return static_cast<int64_t>(std::floor(std::log(u) / std::log(alpha)));
  };
  return one_sided() - one_sided();
}

Result<MechanismOutput> RunGeometric(const Workload& workload,
                                     const GeometricParams& params,
                                     BitGen& gen) {
  if (!(params.epsilon > 0) || !std::isfinite(params.epsilon)) {
    return Status::InvalidArgument("epsilon must be positive finite");
  }
  const double sensitivity = workload.Sensitivity();
  const double alpha = std::exp(-params.epsilon / sensitivity);
  MechanismOutput out;
  out.answers.resize(workload.num_queries());
  for (size_t i = 0; i < workload.num_queries(); ++i) {
    IREDUCT_ASSIGN_OR_RETURN(const int64_t noise,
                             TwoSidedGeometric(alpha, gen));
    out.answers[i] =
        std::round(workload.true_answer(i)) + static_cast<double>(noise);
  }
  out.group_scales.assign(workload.num_groups(),
                          sensitivity / params.epsilon);
  out.epsilon_spent = params.epsilon;
  return out;
}

}  // namespace ireduct
