#include "algorithms/oracle.h"

#include <limits>

#include "algorithms/selection.h"
#include "dp/laplace_mechanism.h"

namespace ireduct {

Result<MechanismOutput> RunOracle(const Workload& workload,
                                  const OracleParams& params, BitGen& gen) {
  MechanismOutput out;
  IREDUCT_ASSIGN_OR_RETURN(
      out.group_scales,
      ErrorOptimalScales(workload, workload.true_answers(), params.delta,
                         params.epsilon));
  IREDUCT_ASSIGN_OR_RETURN(out.answers,
                           LaplaceNoise(workload, out.group_scales, gen));
  out.epsilon_spent = std::numeric_limits<double>::infinity();
  return out;
}

}  // namespace ireduct
