#include "algorithms/iresamp.h"

#include <cmath>
#include <vector>

#include "algorithms/selection.h"
#include "common/arena.h"
#include "common/fault.h"
#include "dp/incremental_sensitivity.h"
#include "dp/laplace_mechanism.h"
#include "obs/event_log.h"

namespace ireduct {

namespace {

// Effective privacy scale of the sample sequence λmax, λmax/2, ..., λ:
// Σ 1/λ_j = 2/λ - 1/λmax, i.e. a single release at scale
// 1/(2/λ - 1/λmax) (Figure 12, line 10).
double EffectiveScale(double lambda, double lambda_max) {
  return 1.0 / (2.0 / lambda - 1.0 / lambda_max);
}

// See kAdmitGuardRel in algorithms/ireduct.cc: within this relative band of
// ε the O(1) incremental GS defers to a full recompute so admit/retire
// decisions match the full-recompute loop exactly.
constexpr double kAdmitGuardRel = 1e-9;

// See WriteIReductCheckpoint in algorithms/ireduct.cc; iResamp additionally
// carries the raw sample scales and the Equation 16 inverse-variance
// accumulators, without which a resumed run could not fold fresh samples
// into the running minimum-variance estimate.
Status WriteIResampCheckpoint(
    const Workload& workload, uint64_t fingerprint, uint64_t round,
    const MechanismOutput& out, const std::vector<double>& effective,
    const std::vector<double>& nominal, const std::vector<double>& wsum,
    const std::vector<double>& weight, const std::vector<uint8_t>& active,
    const IncrementalSensitivity& gs_tracker, const BitGen& gen,
    CheckpointSink& sink) {
  RunCheckpoint checkpoint;
  checkpoint.algorithm = "iresamp";
  checkpoint.workload_fingerprint = fingerprint;
  checkpoint.round = round;
  checkpoint.iterations = out.iterations;
  checkpoint.resample_calls = out.resample_calls;
  checkpoint.epsilon_spent = workload.GeneralizedSensitivity(effective);
  checkpoint.rng_state = gen.SaveState();
  checkpoint.gs = gs_tracker.Save();
  checkpoint.answers = out.answers;
  checkpoint.group_scales = effective;
  checkpoint.active = active;
  checkpoint.nominal_scales = nominal;
  checkpoint.weighted_sum = wsum;
  checkpoint.weight = weight;
  return sink.Write(checkpoint);
}

}  // namespace

Result<MechanismOutput> RunIResamp(const Workload& workload,
                                   const IResampParams& params, BitGen& gen) {
  if (!(params.epsilon > 0) || !std::isfinite(params.epsilon)) {
    return Status::InvalidArgument("epsilon must be positive finite");
  }
  if (!(params.delta > 0) || !std::isfinite(params.delta)) {
    return Status::InvalidArgument("sanity bound delta must be positive");
  }
  if (!(params.lambda_max > 0) || !std::isfinite(params.lambda_max)) {
    return Status::InvalidArgument("lambda_max must be positive finite");
  }

  // Lines 1-4: start at λmax (where nominal and effective scales
  // coincide) — or rehydrate an interrupted run's state, whose initial
  // draws already happened and must not be repeated.
  const size_t num_groups = workload.num_groups();
  const size_t m = workload.num_queries();
  const RunCheckpoint* const resume = params.resume;
  std::vector<double> nominal, effective, weighted_sum, weight;
  std::vector<uint8_t> active(num_groups, 1);
  MechanismOutput out;
  if (resume != nullptr) {
    IREDUCT_RETURN_NOT_OK(ValidateResume(*resume, "iresamp", workload));
    nominal = resume->nominal_scales;
    effective = resume->group_scales;
    weighted_sum = resume->weighted_sum;
    weight = resume->weight;
    out.answers = resume->answers;
    out.iterations = static_cast<size_t>(resume->iterations);
    out.resample_calls = static_cast<size_t>(resume->resample_calls);
    active = resume->active;
    gen = BitGen::FromState(resume->rng_state);
  } else {
    nominal.assign(num_groups, params.lambda_max);
    effective.assign(num_groups, params.lambda_max);
    if (workload.GeneralizedSensitivity(effective) > params.epsilon) {
      return Status::PrivacyBudgetExceeded(
          "GS at lambda_max already exceeds epsilon; no release possible");
    }
    IREDUCT_ASSIGN_OR_RETURN(std::vector<double> samples,
                             LaplaceNoise(workload, nominal, gen));

    // Inverse-variance accumulators for Equation 16:
    //   y* = (Σ_j y_j/λ_j²) / (Σ_j 1/λ_j²).
    weighted_sum.resize(m);
    weight.resize(m);
    out.answers.resize(m);
    const double w0 = 1.0 / (params.lambda_max * params.lambda_max);
    for (size_t i = 0; i < m; ++i) {
      weighted_sum[i] = samples[i] * w0;
      weight[i] = w0;
      out.answers[i] = samples[i];
    }
  }

  // Lines 6-21: iterative refinement with fresh independent samples. The
  // selection and budget test use the same O(log m) machinery as iReduct:
  // a lazy score heap over the nominal scales (identical pick sequence to
  // the PickGroupIResamp linear scan) and incremental GS accounting over
  // the effective scales.
  IncrementalSensitivity gs_tracker(workload, effective);
  if (resume != nullptr) gs_tracker.Restore(resume->gs);
  GroupScoreHeap heap(workload, SelectionRule::kIResampRatio, params.delta,
                      /*lambda_delta=*/0);
  heap.Build(out.answers, nominal, active);
  uint64_t completed_rounds = resume != nullptr ? resume->round : 0;
  const uint64_t fingerprint =
      params.checkpoint.enabled() ? FingerprintWorkload(workload) : 0;
  // Scratch for the batched refinement draws; Reset keeps capacity, so
  // after the first large round no heap allocation happens per round.
  Arena round_arena;
  for (;;) {
    const size_t g = heap.PopBest();
    if (g == kNoGroup) break;

    // Lines 8-11: halve the scale and test the *effective* budget.
    const double new_nominal = nominal[g] / 2.0;
    const double new_effective =
        EffectiveScale(new_nominal, params.lambda_max);
    double gs = gs_tracker.Trial(g, new_effective);
    if (gs_tracker.incremental() &&
        std::fabs(gs - params.epsilon) <= kAdmitGuardRel * params.epsilon) {
      gs = gs_tracker.TrialExact(g, new_effective);
    }
    if (!(new_effective > 0) || gs > params.epsilon) {
      active[g] = false;  // lines 18-21
      heap.Retire(g);
      if (obs::EventLog* events = obs::EventLog::Get()) {
        events->Emit("iresamp.retire",
                     {{"group", static_cast<uint64_t>(g)},
                      {"lambda", nominal[g]}});
      }
      continue;
    }
    gs_tracker.Commit(g, new_effective);
    effective[g] = new_effective;
    nominal[g] = new_nominal;

    // Lines 12-17: fresh sample per query, folded into the running
    // minimum-variance estimate. Large groups draw through the vectorized
    // batch kernels with arena-staged buffers (zero heap traffic per
    // round); small groups keep the per-element sampler. Both paths are
    // deterministic functions of the generator state, so the released
    // answers depend only on the seed and the round sequence.
    const QueryGroup& group = workload.group(g);
    const double w = 1.0 / (new_nominal * new_nominal);
    const size_t group_size = group.end - group.begin;
    if (group_size >= 16) {
      round_arena.Reset();
      std::span<double> scales{round_arena.Alloc<double>(group_size),
                               group_size};
      std::span<double> noise{round_arena.Alloc<double>(group_size),
                              group_size};
      for (double& s : scales) s = new_nominal;
      gen.LaplaceBatch(scales, noise);
      for (uint32_t i = group.begin; i < group.end; ++i) {
        const double fresh =
            workload.true_answer(i) + noise[i - group.begin];
        weighted_sum[i] += fresh * w;
        weight[i] += w;
        out.answers[i] = weighted_sum[i] / weight[i];
      }
    } else {
      for (uint32_t i = group.begin; i < group.end; ++i) {
        const double fresh =
            workload.true_answer(i) + gen.Laplace(new_nominal);
        weighted_sum[i] += fresh * w;
        weight[i] += w;
        out.answers[i] = weighted_sum[i] / weight[i];
      }
    }
    heap.Update(g, out.answers, nominal);
    out.resample_calls += group.size();
    ++out.iterations;

    ++completed_rounds;
    if (obs::EventLog* events = obs::EventLog::Get()) {
      events->Emit("iresamp.round",
                   {{"round", completed_rounds},
                    {"group", static_cast<uint64_t>(g)},
                    {"new_nominal", new_nominal},
                    {"new_effective", new_effective},
                    {"gs", gs},
                    {"epsilon", params.epsilon}});
    }
    // Crash-test hook: "iresamp.round" crash@R dies here, after round R's
    // draws but before any checkpoint of it.
    FaultInjector::Global().Hit("iresamp.round");
    if (params.checkpoint.enabled() &&
        completed_rounds % params.checkpoint.every == 0) {
      IREDUCT_RETURN_NOT_OK(WriteIResampCheckpoint(
          workload, fingerprint, completed_rounds, out, effective, nominal,
          weighted_sum, weight, active, gs_tracker, gen,
          *params.checkpoint.sink));
    }
  }

  out.group_scales = std::move(effective);
  out.epsilon_spent = gs_tracker.Resync();
  return out;
}

}  // namespace ireduct
