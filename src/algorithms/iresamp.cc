#include "algorithms/iresamp.h"

#include <cmath>
#include <vector>

#include "algorithms/selection.h"
#include "dp/incremental_sensitivity.h"
#include "dp/laplace_mechanism.h"

namespace ireduct {

namespace {

// Effective privacy scale of the sample sequence λmax, λmax/2, ..., λ:
// Σ 1/λ_j = 2/λ - 1/λmax, i.e. a single release at scale
// 1/(2/λ - 1/λmax) (Figure 12, line 10).
double EffectiveScale(double lambda, double lambda_max) {
  return 1.0 / (2.0 / lambda - 1.0 / lambda_max);
}

// See kAdmitGuardRel in algorithms/ireduct.cc: within this relative band of
// ε the O(1) incremental GS defers to a full recompute so admit/retire
// decisions match the full-recompute loop exactly.
constexpr double kAdmitGuardRel = 1e-9;

}  // namespace

Result<MechanismOutput> RunIResamp(const Workload& workload,
                                   const IResampParams& params, BitGen& gen) {
  if (!(params.epsilon > 0) || !std::isfinite(params.epsilon)) {
    return Status::InvalidArgument("epsilon must be positive finite");
  }
  if (!(params.delta > 0) || !std::isfinite(params.delta)) {
    return Status::InvalidArgument("sanity bound delta must be positive");
  }
  if (!(params.lambda_max > 0) || !std::isfinite(params.lambda_max)) {
    return Status::InvalidArgument("lambda_max must be positive finite");
  }

  // Lines 1-4: start at λmax (where nominal and effective scales coincide).
  const size_t num_groups = workload.num_groups();
  std::vector<double> nominal(num_groups, params.lambda_max);
  std::vector<double> effective(num_groups, params.lambda_max);
  if (workload.GeneralizedSensitivity(effective) > params.epsilon) {
    return Status::PrivacyBudgetExceeded(
        "GS at lambda_max already exceeds epsilon; no release possible");
  }
  IREDUCT_ASSIGN_OR_RETURN(std::vector<double> samples,
                           LaplaceNoise(workload, nominal, gen));

  // Inverse-variance accumulators for Equation 16:
  //   y* = (Σ_j y_j/λ_j²) / (Σ_j 1/λ_j²).
  const size_t m = workload.num_queries();
  std::vector<double> weighted_sum(m), weight(m);
  MechanismOutput out;
  out.answers.resize(m);
  const double w0 = 1.0 / (params.lambda_max * params.lambda_max);
  for (size_t i = 0; i < m; ++i) {
    weighted_sum[i] = samples[i] * w0;
    weight[i] = w0;
    out.answers[i] = samples[i];
  }

  // Lines 6-21: iterative refinement with fresh independent samples. The
  // selection and budget test use the same O(log m) machinery as iReduct:
  // a lazy score heap over the nominal scales (identical pick sequence to
  // the PickGroupIResamp linear scan) and incremental GS accounting over
  // the effective scales.
  std::vector<uint8_t> active(num_groups, 1);
  IncrementalSensitivity gs_tracker(workload, effective);
  GroupScoreHeap heap(workload, SelectionRule::kIResampRatio, params.delta,
                      /*lambda_delta=*/0);
  heap.Build(out.answers, nominal, active);
  for (;;) {
    const size_t g = heap.PopBest();
    if (g == kNoGroup) break;

    // Lines 8-11: halve the scale and test the *effective* budget.
    const double new_nominal = nominal[g] / 2.0;
    const double new_effective =
        EffectiveScale(new_nominal, params.lambda_max);
    double gs = gs_tracker.Trial(g, new_effective);
    if (gs_tracker.incremental() &&
        std::fabs(gs - params.epsilon) <= kAdmitGuardRel * params.epsilon) {
      gs = gs_tracker.TrialExact(g, new_effective);
    }
    if (!(new_effective > 0) || gs > params.epsilon) {
      active[g] = false;  // lines 18-21
      heap.Retire(g);
      continue;
    }
    gs_tracker.Commit(g, new_effective);
    effective[g] = new_effective;
    nominal[g] = new_nominal;

    // Lines 12-17: fresh sample per query, folded into the running
    // minimum-variance estimate.
    const QueryGroup& group = workload.group(g);
    const double w = 1.0 / (new_nominal * new_nominal);
    for (uint32_t i = group.begin; i < group.end; ++i) {
      const double fresh =
          workload.true_answer(i) + gen.Laplace(new_nominal);
      weighted_sum[i] += fresh * w;
      weight[i] += w;
      out.answers[i] = weighted_sum[i] / weight[i];
    }
    heap.Update(g, out.answers, nominal);
    out.resample_calls += group.size();
    ++out.iterations;
  }

  out.group_scales = std::move(effective);
  out.epsilon_spent = gs_tracker.Resync();
  return out;
}

}  // namespace ireduct
