// The Oracle method (Section 5.2): the error-optimal scale allocation
// computed from the exact answers.
//
// Not differentially private (it reads the true answers to set scales), but
// it lower-bounds the overall error achievable by the class of mechanisms
// that add group-uniform Laplace noise under the budget constraint
// Σ c_g/λ_g = ε; the paper uses it as the yardstick iReduct approaches.
#ifndef IREDUCT_ALGORITHMS_ORACLE_H_
#define IREDUCT_ALGORITHMS_ORACLE_H_

#include "algorithms/mechanism.h"
#include "common/random.h"
#include "common/result.h"
#include "dp/workload.h"

namespace ireduct {

struct OracleParams {
  /// Budget constraint for the allocation: GS(Q, Λ) = ε.
  double epsilon = 1.0;
  /// Sanity bound δ of Equation 1.
  double delta = 1.0;
};

/// λ_g ∝ sqrt(|G_g| / Σ_{j∈g} 1/max{δ, q_j(T)}), normalized to GS = ε;
/// minimizes the expected overall error (Definition 6). Non-private
/// reference baseline; `epsilon_spent` reports +infinity.
Result<MechanismOutput> RunOracle(const Workload& workload,
                                  const OracleParams& params, BitGen& gen);

}  // namespace ireduct

#endif  // IREDUCT_ALGORITHMS_ORACLE_H_
