// The iResamp algorithm (Appendix A, Figure 12): iterative *independent*
// resampling.
//
// Structurally identical to iReduct, but each refinement draws a fresh,
// independent Laplace sample at half the previous scale and combines all
// samples by inverse-variance weighting (Equation 16). Every sample leaks —
// the privacy cost of the sample sequence at scales λmax, λmax/2, ..., λ is
// that of a single sample at the *effective* scale λ' = 1/(2/λ - 1/λmax)
// (geometric series) — so iResamp pays roughly twice what NoiseDown-based
// iReduct pays for the same final scale. The paper includes it to show that
// correlated resampling is what makes iReduct work.
#ifndef IREDUCT_ALGORITHMS_IRESAMP_H_
#define IREDUCT_ALGORITHMS_IRESAMP_H_

#include "algorithms/mechanism.h"
#include "common/random.h"
#include "common/result.h"
#include "dp/checkpoint.h"
#include "dp/workload.h"

namespace ireduct {

struct IResampParams {
  /// Total privacy budget ε.
  double epsilon = 1.0;
  /// Sanity bound δ of Equation 1.
  double delta = 1.0;
  /// Initial noise scale; the paper uses |T|/10.
  double lambda_max = 1.0;
  /// Periodic durable checkpoints (see dp/checkpoint.h). Inactive by
  /// default.
  CheckpointOptions checkpoint;
  /// Resume state from a previously loaded checkpoint (borrowed; must
  /// outlive the run); the run continues bit-identically to the
  /// interrupted one. Refused when the checkpoint's algorithm or workload
  /// fingerprint does not match.
  const RunCheckpoint* resume = nullptr;
};

/// Runs Figure 12. Returns kPrivacyBudgetExceeded when the all-λmax
/// allocation violates ε. ε-differentially private (Theorem 3).
/// `group_scales` reports the effective per-group scales λ'.
Result<MechanismOutput> RunIResamp(const Workload& workload,
                                   const IResampParams& params, BitGen& gen);

}  // namespace ireduct

#endif  // IREDUCT_ALGORITHMS_IRESAMP_H_
