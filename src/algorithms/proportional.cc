#include "algorithms/proportional.h"

#include <limits>

#include "algorithms/selection.h"
#include "dp/laplace_mechanism.h"

namespace ireduct {

Result<MechanismOutput> RunProportional(const Workload& workload,
                                        const ProportionalParams& params,
                                        BitGen& gen) {
  MechanismOutput out;
  IREDUCT_ASSIGN_OR_RETURN(
      out.group_scales,
      ProportionalScales(workload, workload.true_answers(), params.delta,
                         params.epsilon));
  IREDUCT_ASSIGN_OR_RETURN(out.answers,
                           LaplaceNoise(workload, out.group_scales, gen));
  // The scales were derived from the private answers: no finite ε holds.
  out.epsilon_spent = std::numeric_limits<double>::infinity();
  return out;
}

}  // namespace ireduct
