// Unified mechanism interface + registry: every publication algorithm in
// the library as a pluggable, config-driven component.
//
// The paper evaluates six mechanisms side by side (Dwork, Proportional,
// Oracle, TwoPhase, iResamp, iReduct — Sections 3–6); the adaptive- and
// matrix-mechanism lines of related work show that *selecting* a mechanism
// per workload is itself a first-class operation. This header provides the
// plumbing for that: a polymorphic `Mechanism` (Describe / ValidateSpec /
// Run), a string-keyed `MechanismRegistry` pre-populated with every
// built-in algorithm, and a `MechanismSpec` config object parsed from
// compact `name:key=val,key=val` strings or JSON documents. Layers above
// (PrivateQuerySession, ireduct_tool, the figure benches) dispatch through
// the registry, so a new mechanism registered here is immediately
// routable, benchmarkable and servable without touching any of them.
//
// The registered adapters are thin wrappers over the existing free
// functions (`RunIReduct`, `RunDwork`, ...) and produce byte-identical
// `MechanismOutput` to a direct call at the same seed — enforced by
// tests/algorithms/mechanism_parity_test.cc — so both entry styles stay
// interchangeable.
#ifndef IREDUCT_ALGORITHMS_MECHANISM_REGISTRY_H_
#define IREDUCT_ALGORITHMS_MECHANISM_REGISTRY_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "algorithms/mechanism.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "dp/checkpoint.h"
#include "dp/workload.h"

namespace ireduct {

/// Typed key/value configuration for one mechanism run: the registry key
/// plus parameter overrides. Parameters are stored as strings (in
/// insertion order) and parsed on access, so a spec round-trips through
/// its text form without loss — doubles are written with shortest
/// round-trip formatting.
class MechanismSpec {
 public:
  MechanismSpec() = default;
  explicit MechanismSpec(std::string name) : name_(std::move(name)) {}

  /// Parses the compact form `name` or `name:key=val,key=val,...`, e.g.
  /// "two_phase:epsilon=1.0" or "ireduct:lambda_steps=16,engine=naive".
  /// Whitespace around tokens is ignored; duplicate keys are rejected.
  static Result<MechanismSpec> Parse(std::string_view text);

  /// Parses the JSON form
  ///   {"name": "ireduct", "params": {"lambda_steps": 16, "engine": "naive"}}
  /// ("params" optional; values may be strings, numbers or booleans).
  static Result<MechanismSpec> FromJson(std::string_view json);

  const std::string& name() const { return name_; }
  bool Has(std::string_view key) const;

  /// Sets `key` to `value`, replacing any existing value.
  void Set(std::string_view key, std::string_view value);
  /// Sets `key` to the shortest round-trip rendering of `value` — parsing
  /// it back yields exactly the same double.
  void Set(std::string_view key, double value);
  /// Like Set, but keeps an existing value (caller-provided params win
  /// over environment-derived defaults).
  void SetDefault(std::string_view key, std::string_view value);
  void SetDefault(std::string_view key, double value);

  /// Typed accessors; return `fallback` when the key is absent and
  /// kInvalidArgument when present but malformed.
  Result<double> GetDouble(std::string_view key, double fallback) const;
  Result<int64_t> GetInt(std::string_view key, int64_t fallback) const;
  std::string GetString(std::string_view key, std::string_view fallback) const;

  /// Parameters in insertion order.
  const std::vector<std::pair<std::string, std::string>>& params() const {
    return params_;
  }

  /// Canonical compact rendering (`name` or `name:key=val,...`), suitable
  /// for logs, ledger labels and re-parsing.
  std::string ToString() const;

 private:
  std::string name_;
  std::vector<std::pair<std::string, std::string>> params_;
};

/// Whether a mechanism's output carries a differential-privacy guarantee.
/// The paper's Proportional and Oracle baselines read the true answers to
/// set their noise scales and are deliberately non-private.
enum class MechanismPrivacy {
  kPrivate,
  kNonPrivate,
};

/// Documentation for one spec parameter a mechanism accepts.
struct MechanismParamDoc {
  std::string key;
  std::string default_value;  // "" when the default is context-dependent
  std::string doc;
};

/// Self-description of a registered mechanism.
struct MechanismInfo {
  /// Registry key ("ireduct", "two_phase", ...). Lowercase snake_case.
  std::string name;
  /// Paper-style display name ("iReduct", "TwoPhase", ...) used in bench
  /// tables and ledger labels.
  std::string display_name;
  std::string summary;
  MechanismPrivacy privacy = MechanismPrivacy::kPrivate;
  std::vector<MechanismParamDoc> params;
};

/// A pluggable publication mechanism: consumes a Workload and a spec,
/// produces a MechanismOutput. Implementations must be stateless across
/// Run calls (the registry shares one instance between threads) and draw
/// all randomness from the caller's BitGen.
class Mechanism {
 public:
  virtual ~Mechanism() = default;

  /// Name, privacy status and accepted parameters.
  virtual MechanismInfo Describe() const = 0;

  /// Checks `spec` against Describe(): the name must match and every key
  /// must be a declared parameter (catching typos before a run). Override
  /// to add cross-parameter checks; overriders should still call this.
  virtual Status ValidateSpec(const MechanismSpec& spec) const;

  /// Runs the mechanism. `spec` has passed ValidateSpec; parameter values
  /// may still fail typed parsing, reported as kInvalidArgument.
  virtual Result<MechanismOutput> Run(const Workload& workload,
                                      const MechanismSpec& spec,
                                      BitGen& gen) const = 0;

  /// Crash-safety hooks threaded into a run (see dp/checkpoint.h). The
  /// default-constructed value is trivial: no checkpointing, no resume.
  struct ResumableHooks {
    CheckpointOptions checkpoint;
    const RunCheckpoint* resume = nullptr;

    bool trivial() const {
      return !checkpoint.enabled() && resume == nullptr;
    }
  };

  /// Like Run, but with checkpoint/resume hooks. The base implementation
  /// forwards trivial hooks to Run and refuses non-trivial ones with
  /// kInvalidArgument; the iterative mechanisms (ireduct, iresamp)
  /// override it.
  virtual Result<MechanismOutput> RunResumable(
      const Workload& workload, const MechanismSpec& spec, BitGen& gen,
      const ResumableHooks& hooks) const;

  /// Fills `key` into `spec` only when absent AND declared by this
  /// mechanism — the tool/session/bench layers derive per-workload
  /// defaults (epsilon, delta, lambda_max, ...) without knowing which of
  /// them each mechanism consumes.
  void SetSpecDefault(MechanismSpec* spec, std::string_view key,
                      double value) const;
  void SetSpecDefault(MechanismSpec* spec, std::string_view key,
                      std::string_view value) const;
};

/// String-keyed mechanism registry. `Global()` arrives pre-populated with
/// every built-in algorithm, in the paper's reporting order: oracle,
/// ireduct, two_phase, iresamp, dwork, proportional, geometric,
/// hierarchical, wavelet. Thread-safe for concurrent lookup; Register
/// additional mechanisms during startup, before concurrent use.
class MechanismRegistry {
 public:
  MechanismRegistry() = default;
  MechanismRegistry(const MechanismRegistry&) = delete;
  MechanismRegistry& operator=(const MechanismRegistry&) = delete;

  /// The process-wide registry with all built-ins registered.
  static MechanismRegistry& Global();

  /// Registers a mechanism under its Describe().name. Fails with
  /// kInvalidArgument on an empty name or a duplicate.
  Status Register(std::unique_ptr<Mechanism> mechanism);

  /// Mechanism for `name`, or nullptr.
  const Mechanism* Find(std::string_view name) const;

  /// Like Find, but a kNotFound Status naming the known mechanisms.
  Result<const Mechanism*> Get(std::string_view name) const;

  /// Registered names, in registration order.
  std::vector<std::string> Names() const;

  size_t size() const { return entries_.size(); }

  /// Lookup + ValidateSpec + Run in one call.
  Result<MechanismOutput> Run(const Workload& workload,
                              const MechanismSpec& spec, BitGen& gen) const;

  /// Convenience: parses `spec_text` and runs it.
  Result<MechanismOutput> Run(const Workload& workload,
                              std::string_view spec_text, BitGen& gen) const;

  /// Lookup + ValidateSpec + RunResumable in one call.
  Result<MechanismOutput> RunResumable(
      const Workload& workload, const MechanismSpec& spec, BitGen& gen,
      const Mechanism::ResumableHooks& hooks) const;

 private:
  std::vector<std::unique_ptr<Mechanism>> entries_;
};

}  // namespace ireduct

#endif  // IREDUCT_ALGORITHMS_MECHANISM_REGISTRY_H_
