#include "algorithms/wavelet.h"

#include <cmath>

#include "common/numeric.h"

namespace ireduct {

namespace {

bool IsPowerOfTwo(size_t n) { return n > 0 && (n & (n - 1)) == 0; }

}  // namespace

Result<std::vector<double>> HaarTransform(std::span<const double> values) {
  if (!IsPowerOfTwo(values.size())) {
    return Status::InvalidArgument("length must be a power of two");
  }
  const size_t m = values.size();
  // Subtree averages in heap order: avg[v] for v in [1, 2m); leaves at
  // [m, 2m).
  std::vector<double> avg(2 * m);
  for (size_t i = 0; i < m; ++i) avg[m + i] = values[i];
  for (size_t v = m - 1; v >= 1; --v) {
    avg[v] = (avg[2 * v] + avg[2 * v + 1]) / 2;
  }
  std::vector<double> coeffs(m);
  coeffs[0] = avg[1];
  for (size_t v = 1; v < m; ++v) {
    coeffs[v] = (avg[2 * v] - avg[2 * v + 1]) / 2;
  }
  return coeffs;
}

Result<std::vector<double>> HaarReconstruct(
    std::span<const double> coefficients) {
  if (!IsPowerOfTwo(coefficients.size())) {
    return Status::InvalidArgument("length must be a power of two");
  }
  const size_t m = coefficients.size();
  // Descend: node v's subtree average a splits into left a + d_v and
  // right a - d_v.
  std::vector<double> avg(2 * m);
  avg[1] = coefficients[0];
  for (size_t v = 1; v < m; ++v) {
    avg[2 * v] = avg[v] + coefficients[v];
    avg[2 * v + 1] = avg[v] - coefficients[v];
  }
  return std::vector<double>(avg.begin() + m, avg.end());
}

Result<WaveletHistogram> WaveletHistogram::Publish(
    std::span<const double> counts, const WaveletParams& params,
    BitGen& gen) {
  if (counts.empty()) {
    return Status::InvalidArgument("histogram must be non-empty");
  }
  if (!(params.epsilon > 0) || !std::isfinite(params.epsilon)) {
    return Status::InvalidArgument("epsilon must be positive finite");
  }
  size_t m = 1;
  while (m < counts.size()) m *= 2;
  std::vector<double> padded(m, 0.0);
  for (size_t i = 0; i < counts.size(); ++i) padded[i] = counts[i];

  IREDUCT_ASSIGN_OR_RETURN(std::vector<double> coeffs,
                           HaarTransform(padded));

  // One moved tuple changes the base coefficient not at all (equal
  // cardinality) but each of the two touched leaves perturbs every detail
  // coefficient on its path by 1/W(c) (W = subtree leaf count), and the
  // base by 1/m per added/removed tuple. We budget conservatively for the
  // full add+remove pair: θ = 2·(1 + log₂ m)/ε, λ(c) = θ/W(c).
  const double levels = std::log2(static_cast<double>(m)) + 1;
  const double theta = 2.0 * levels / params.epsilon;
  coeffs[0] += gen.Laplace(theta / m);
  // Detail node v has m / 2^{depth} leaves; depth(v) = floor(log2 v).
  size_t level_size = 1;
  size_t subtree_leaves = m;
  for (size_t v = 1; v < m; ++v) {
    if (v >= 2 * level_size) {
      level_size *= 2;
      subtree_leaves /= 2;
    }
    coeffs[v] += gen.Laplace(theta / subtree_leaves);
  }

  IREDUCT_ASSIGN_OR_RETURN(std::vector<double> leaves,
                           HaarReconstruct(coeffs));

  WaveletHistogram h;
  h.num_bins_ = counts.size();
  h.epsilon_spent_ = params.epsilon;
  h.bins_.assign(leaves.begin(), leaves.begin() + counts.size());
  h.prefix_.resize(counts.size() + 1, 0.0);
  KahanSum acc;
  for (size_t b = 0; b < counts.size(); ++b) {
    acc.Add(h.bins_[b]);
    h.prefix_[b + 1] = acc.value();
  }
  return h;
}

Result<double> WaveletHistogram::RangeCount(size_t lo, size_t hi) const {
  if (lo > hi || hi >= num_bins_) {
    return Status::OutOfRange("invalid bin range");
  }
  return prefix_[hi + 1] - prefix_[lo];
}

}  // namespace ireduct
