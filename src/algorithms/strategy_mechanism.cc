#include "algorithms/strategy_mechanism.h"

#include <cmath>
#include <utility>
#include <vector>

#include "queries/linear_workload.h"
#include "queries/strategy.h"

namespace ireduct {

Result<MechanismOutput> RunStrategyMechanism(
    const Workload& workload, const StrategyMechanismConfig& config,
    BitGen& gen) {
  if (!(config.epsilon > 0) || !std::isfinite(config.epsilon)) {
    return Status::InvalidArgument("epsilon must be positive finite");
  }
  const LinearWorkload* linear = workload.linear().get();
  const std::span<const double> histogram =
      linear != nullptr ? linear->histogram() : workload.true_answers();
  // Without a linear view the answer vector is treated as a 1D histogram
  // under move semantics (one tuple moving between two bins), matching
  // the legacy hierarchical/wavelet adapters.
  const double tuple_factor =
      linear != nullptr ? linear->tuple_factor() : 2.0;
  if (histogram.empty()) {
    return Status::InvalidArgument("workload must be non-empty");
  }

  Strategy strategy = Strategy::Identity(histogram.size());
  if (config.strategy == "identity") {
    // already built
  } else if (config.strategy == "tree") {
    strategy = Strategy::Tree(histogram.size());
  } else if (config.strategy == "wavelet" || config.strategy == "haar") {
    strategy = Strategy::Haar(histogram.size());
  } else {
    return Status::InvalidArgument(
        "strategy must be identity, tree or wavelet (got '" +
        config.strategy + "')");
  }

  std::vector<double> multipliers(strategy.row_multipliers().begin(),
                                  strategy.row_multipliers().end());
  double publish_epsilon = config.epsilon;

  if (config.greedy) {
    if (!(config.epsilon1_fraction > 0) || !(config.epsilon1_fraction < 1)) {
      return Status::InvalidArgument(
          "epsilon1_fraction must be in (0, 1)");
    }
    if (!(config.relative_floor > 0)) {
      return Status::InvalidArgument("relative_floor must be positive");
    }
    const double eps1 = config.epsilon * config.epsilon1_fraction;
    publish_epsilon = config.epsilon - eps1;
    // Phase 1: rough answers at uniform scale S(Q)/ε1 — the additive
    // bound guarantees GS <= ε1 (exactly ε1 for additive workloads, at
    // most ε1 when a tighter custom SensitivityFn is installed).
    const double rough_scale = workload.Sensitivity() / eps1;
    std::vector<double> weights(workload.num_queries());
    for (size_t i = 0; i < weights.size(); ++i) {
      const double rough =
          workload.true_answer(i) + gen.Laplace(rough_scale);
      const double denom =
          std::max(std::abs(rough), config.relative_floor);
      weights[i] = 1.0 / (denom * denom);
    }
    GreedyTuneResult tuned;
    if (linear != nullptr) {
      IREDUCT_ASSIGN_OR_RETURN(
          tuned, GreedyTuneScales(strategy, linear->matrix(), weights,
                                  config.tune_passes));
    } else {
      const SparseMatrix identity =
          SparseMatrix::Identity(histogram.size());
      IREDUCT_ASSIGN_OR_RETURN(
          tuned, GreedyTuneScales(strategy, identity, weights,
                                  config.tune_passes));
    }
    multipliers = std::move(tuned.multipliers);
  }

  std::vector<double> row_scales;
  IREDUCT_ASSIGN_OR_RETURN(
      std::vector<double> estimate,
      strategy.Publish(histogram, publish_epsilon, tuple_factor,
                       multipliers, gen, &row_scales));

  MechanismOutput out;
  if (linear != nullptr) {
    out.answers.resize(linear->num_queries());
    linear->matrix().MatVec(estimate, out.answers);
  } else {
    out.answers = std::move(estimate);
  }
  // Nominal reporting scale: the calibrated base (the uniform node scale
  // for the tree, θ for the wavelet) — conservative, since least-squares
  // reconstruction only shrinks variance.
  out.group_scales.assign(
      workload.num_groups(),
      strategy.BaseScale(publish_epsilon, tuple_factor, multipliers));
  out.epsilon_spent = config.epsilon;
  return out;
}

}  // namespace ireduct
