#include "algorithms/selection.h"

#include <cmath>

#include "common/logging.h"
#include "common/numeric.h"

namespace ireduct {

namespace {

// Σ_{j∈g} 1/max{v_j, δ} — the inverse-magnitude weight that drives both the
// Oracle/Rescale allocation and the PickQueries benefit estimate.
double InverseMagnitudeWeight(const Workload& workload, size_t g,
                              std::span<const double> values, double delta) {
  const QueryGroup& group = workload.group(g);
  KahanSum acc;
  for (uint32_t i = group.begin; i < group.end; ++i) {
    acc.Add(1.0 / std::fmax(values[i], delta));
  }
  return acc.value();
}

Status ValidateScaleInputs(const Workload& workload,
                           std::span<const double> values, double delta,
                           double epsilon) {
  if (values.size() != workload.num_queries()) {
    return Status::InvalidArgument("one value per query required");
  }
  if (!(delta > 0) || !std::isfinite(delta)) {
    return Status::InvalidArgument("sanity bound delta must be positive");
  }
  if (!(epsilon > 0) || !std::isfinite(epsilon)) {
    return Status::InvalidArgument("epsilon must be positive finite");
  }
  return Status::OK();
}

// Scales λ_g = c · shape_g with c chosen so that Σ_g coeff_g / λ_g = ε.
std::vector<double> NormalizeToBudget(const Workload& workload,
                                      std::vector<double> shape,
                                      double epsilon) {
  KahanSum inv;
  for (size_t g = 0; g < shape.size(); ++g) {
    IREDUCT_DCHECK(shape[g] > 0);
    inv.Add(workload.group(g).sensitivity_coeff / shape[g]);
  }
  const double c = inv.value() / epsilon;
  for (double& s : shape) s *= c;
  return shape;
}

}  // namespace

Result<std::vector<double>> ErrorOptimalScales(const Workload& workload,
                                               std::span<const double> values,
                                               double delta, double epsilon) {
  IREDUCT_RETURN_NOT_OK(ValidateScaleInputs(workload, values, delta, epsilon));
  // Lagrange-optimal shape (Section 5.2): λ_g ∝ sqrt(|G_g| / W_g) with
  // W_g = Σ_{j∈g} 1/max{δ, v_j}.
  std::vector<double> shape(workload.num_groups());
  for (size_t g = 0; g < shape.size(); ++g) {
    const double w = InverseMagnitudeWeight(workload, g, values, delta);
    shape[g] = std::sqrt(workload.group(g).size() / w);
  }
  return NormalizeToBudget(workload, std::move(shape), epsilon);
}

Result<std::vector<double>> ErrorOptimalScales(const Workload& workload,
                                               std::span<const double> values,
                                               const SanityBounds& bounds,
                                               double epsilon) {
  if (!bounds.is_uniform() && bounds.size() != workload.num_queries()) {
    return Status::InvalidArgument(
        "per-query sanity bounds must match the query count");
  }
  IREDUCT_RETURN_NOT_OK(
      ValidateScaleInputs(workload, values, bounds.at(0), epsilon));
  std::vector<double> shape(workload.num_groups());
  for (size_t g = 0; g < shape.size(); ++g) {
    const QueryGroup& group = workload.group(g);
    KahanSum w;
    for (uint32_t i = group.begin; i < group.end; ++i) {
      w.Add(1.0 / std::fmax(values[i], bounds.at(i)));
    }
    shape[g] = std::sqrt(group.size() / w.value());
  }
  return NormalizeToBudget(workload, std::move(shape), epsilon);
}

Result<std::vector<double>> ProportionalScales(const Workload& workload,
                                               std::span<const double> values,
                                               double delta, double epsilon) {
  IREDUCT_RETURN_NOT_OK(ValidateScaleInputs(workload, values, delta, epsilon));
  std::vector<double> shape(workload.num_groups());
  for (size_t g = 0; g < shape.size(); ++g) {
    const QueryGroup& group = workload.group(g);
    double smallest = values[group.begin];
    for (uint32_t i = group.begin + 1; i < group.end; ++i) {
      smallest = std::fmin(smallest, values[i]);
    }
    shape[g] = std::fmax(smallest, delta);
  }
  return NormalizeToBudget(workload, std::move(shape), epsilon);
}

double EstimatedGroupError(const Workload& workload, size_t g,
                           std::span<const double> noisy_answers, double scale,
                           double delta) {
  return scale *
         InverseMagnitudeWeight(workload, g, noisy_answers, delta) /
         workload.group(g).size();
}

size_t PickGroupIReduct(const Workload& workload,
                        std::span<const double> noisy_answers,
                        std::span<const double> group_scales,
                        std::span<const uint8_t> active, double delta,
                        double lambda_delta) {
  size_t best = kNoGroup;
  double best_ratio = -1;
  const double num_groups = static_cast<double>(workload.num_groups());
  for (size_t g = 0; g < workload.num_groups(); ++g) {
    if (!active[g]) continue;
    const double lambda = group_scales[g];
    if (!(lambda > lambda_delta)) continue;  // cannot reduce below zero
    const double coeff = workload.group(g).sensitivity_coeff;
    // Equation 15 benefit over Equation 14 cost.
    const double benefit =
        lambda_delta *
        InverseMagnitudeWeight(workload, g, noisy_answers, delta) /
        (num_groups * workload.group(g).size());
    const double cost = coeff / (lambda - lambda_delta) - coeff / lambda;
    const double ratio = benefit / cost;
    if (ratio > best_ratio) {
      best_ratio = ratio;
      best = g;
    }
  }
  return best;
}

size_t PickGroupMaxRelativeError(const Workload& workload,
                                 std::span<const double> noisy_answers,
                                 std::span<const double> group_scales,
                                 std::span<const uint8_t> active, double delta,
                                 double lambda_delta) {
  size_t best = kNoGroup;
  double worst_error = -1;
  for (size_t g = 0; g < workload.num_groups(); ++g) {
    if (!active[g] || !(group_scales[g] > lambda_delta)) continue;
    const QueryGroup& group = workload.group(g);
    for (uint32_t i = group.begin; i < group.end; ++i) {
      const double err =
          group_scales[g] / std::fmax(noisy_answers[i], delta);
      if (err > worst_error) {
        worst_error = err;
        best = g;
      }
    }
  }
  return best;
}

size_t PickGroupIResamp(const Workload& workload,
                        std::span<const double> noisy_answers,
                        std::span<const double> group_scales,
                        std::span<const uint8_t> active, double delta) {
  size_t best = kNoGroup;
  double best_ratio = -1;
  const double num_groups = static_cast<double>(workload.num_groups());
  for (size_t g = 0; g < workload.num_groups(); ++g) {
    if (!active[g]) continue;
    const double lambda = group_scales[g];
    const double coeff = workload.group(g).sensitivity_coeff;
    // Halving the raw scale halves the estimated error contribution...
    const double benefit =
        (lambda / 2.0) *
        InverseMagnitudeWeight(workload, g, noisy_answers, delta) /
        (num_groups * workload.group(g).size());
    // ...and raises the effective privacy cost from coeff·(2/λ - 1/λmax) to
    // coeff·(4/λ - 1/λmax) (Appendix A geometric series).
    const double cost = coeff * (2.0 / lambda);
    const double ratio = benefit / cost;
    if (ratio > best_ratio) {
      best_ratio = ratio;
      best = g;
    }
  }
  return best;
}

}  // namespace ireduct
