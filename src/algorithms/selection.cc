#include "algorithms/selection.h"

#include <cmath>

#include "common/logging.h"
#include "common/numeric.h"

namespace ireduct {

namespace {

// Σ_{j∈g} 1/max{v_j, δ} — the inverse-magnitude weight that drives both the
// Oracle/Rescale allocation and the PickQueries benefit estimate.
double InverseMagnitudeWeight(const Workload& workload, size_t g,
                              std::span<const double> values, double delta) {
  const QueryGroup& group = workload.group(g);
  KahanSum acc;
  for (uint32_t i = group.begin; i < group.end; ++i) {
    acc.Add(1.0 / std::fmax(values[i], delta));
  }
  return acc.value();
}

Status ValidateScaleInputs(const Workload& workload,
                           std::span<const double> values, double delta,
                           double epsilon) {
  if (values.size() != workload.num_queries()) {
    return Status::InvalidArgument("one value per query required");
  }
  if (!(delta > 0) || !std::isfinite(delta)) {
    return Status::InvalidArgument("sanity bound delta must be positive");
  }
  if (!(epsilon > 0) || !std::isfinite(epsilon)) {
    return Status::InvalidArgument("epsilon must be positive finite");
  }
  return Status::OK();
}

// Scales λ_g = c · shape_g with c chosen so that Σ_g coeff_g / λ_g = ε.
std::vector<double> NormalizeToBudget(const Workload& workload,
                                      std::vector<double> shape,
                                      double epsilon) {
  KahanSum inv;
  for (size_t g = 0; g < shape.size(); ++g) {
    IREDUCT_DCHECK(shape[g] > 0);
    inv.Add(workload.group(g).sensitivity_coeff / shape[g]);
  }
  const double c = inv.value() / epsilon;
  for (double& s : shape) s *= c;
  return shape;
}

}  // namespace

Result<std::vector<double>> ErrorOptimalScales(const Workload& workload,
                                               std::span<const double> values,
                                               double delta, double epsilon) {
  IREDUCT_RETURN_NOT_OK(ValidateScaleInputs(workload, values, delta, epsilon));
  // Lagrange-optimal shape (Section 5.2): λ_g ∝ sqrt(|G_g| / W_g) with
  // W_g = Σ_{j∈g} 1/max{δ, v_j}.
  std::vector<double> shape(workload.num_groups());
  for (size_t g = 0; g < shape.size(); ++g) {
    const double w = InverseMagnitudeWeight(workload, g, values, delta);
    shape[g] = std::sqrt(workload.group(g).size() / w);
  }
  return NormalizeToBudget(workload, std::move(shape), epsilon);
}

Result<std::vector<double>> ErrorOptimalScales(const Workload& workload,
                                               std::span<const double> values,
                                               const SanityBounds& bounds,
                                               double epsilon) {
  if (!bounds.is_uniform() && bounds.size() != workload.num_queries()) {
    return Status::InvalidArgument(
        "per-query sanity bounds must match the query count");
  }
  IREDUCT_RETURN_NOT_OK(
      ValidateScaleInputs(workload, values, bounds.at(0), epsilon));
  std::vector<double> shape(workload.num_groups());
  for (size_t g = 0; g < shape.size(); ++g) {
    const QueryGroup& group = workload.group(g);
    KahanSum w;
    for (uint32_t i = group.begin; i < group.end; ++i) {
      w.Add(1.0 / std::fmax(values[i], bounds.at(i)));
    }
    shape[g] = std::sqrt(group.size() / w.value());
  }
  return NormalizeToBudget(workload, std::move(shape), epsilon);
}

Result<std::vector<double>> ProportionalScales(const Workload& workload,
                                               std::span<const double> values,
                                               double delta, double epsilon) {
  IREDUCT_RETURN_NOT_OK(ValidateScaleInputs(workload, values, delta, epsilon));
  std::vector<double> shape(workload.num_groups());
  for (size_t g = 0; g < shape.size(); ++g) {
    const QueryGroup& group = workload.group(g);
    double smallest = values[group.begin];
    for (uint32_t i = group.begin + 1; i < group.end; ++i) {
      smallest = std::fmin(smallest, values[i]);
    }
    shape[g] = std::fmax(smallest, delta);
  }
  return NormalizeToBudget(workload, std::move(shape), epsilon);
}

double EstimatedGroupError(const Workload& workload, size_t g,
                           std::span<const double> noisy_answers, double scale,
                           double delta) {
  return scale *
         InverseMagnitudeWeight(workload, g, noisy_answers, delta) /
         workload.group(g).size();
}

double SelectionScore(const Workload& workload, SelectionRule rule, size_t g,
                      std::span<const double> noisy_answers, double scale,
                      double delta, double lambda_delta) {
  const QueryGroup& group = workload.group(g);
  switch (rule) {
    case SelectionRule::kIReductRatio: {
      const double num_groups = static_cast<double>(workload.num_groups());
      const double coeff = group.sensitivity_coeff;
      // Equation 15 benefit over Equation 14 cost.
      const double benefit =
          lambda_delta *
          InverseMagnitudeWeight(workload, g, noisy_answers, delta) /
          (num_groups * group.size());
      const double cost = coeff / (scale - lambda_delta) - coeff / scale;
      return benefit / cost;
    }
    case SelectionRule::kIResampRatio: {
      const double num_groups = static_cast<double>(workload.num_groups());
      const double coeff = group.sensitivity_coeff;
      // Halving the raw scale halves the estimated error contribution...
      const double benefit =
          (scale / 2.0) *
          InverseMagnitudeWeight(workload, g, noisy_answers, delta) /
          (num_groups * group.size());
      // ...and raises the effective privacy cost from coeff·(2/λ - 1/λmax)
      // to coeff·(4/λ - 1/λmax) (Appendix A geometric series).
      const double cost = coeff * (2.0 / scale);
      return benefit / cost;
    }
    case SelectionRule::kMaxRelativeError: {
      double worst = -1;
      for (uint32_t i = group.begin; i < group.end; ++i) {
        const double err = scale / std::fmax(noisy_answers[i], delta);
        if (err > worst) worst = err;
      }
      return worst;
    }
  }
  return -1;  // unreachable
}

size_t PickGroupIReduct(const Workload& workload,
                        std::span<const double> noisy_answers,
                        std::span<const double> group_scales,
                        std::span<const uint8_t> active, double delta,
                        double lambda_delta) {
  size_t best = kNoGroup;
  double best_ratio = -1;
  for (size_t g = 0; g < workload.num_groups(); ++g) {
    if (!active[g]) continue;
    const double lambda = group_scales[g];
    if (!(lambda > lambda_delta)) continue;  // cannot reduce below zero
    const double ratio =
        SelectionScore(workload, SelectionRule::kIReductRatio, g,
                       noisy_answers, lambda, delta, lambda_delta);
    if (ratio > best_ratio) {
      best_ratio = ratio;
      best = g;
    }
  }
  return best;
}

size_t PickGroupMaxRelativeError(const Workload& workload,
                                 std::span<const double> noisy_answers,
                                 std::span<const double> group_scales,
                                 std::span<const uint8_t> active, double delta,
                                 double lambda_delta) {
  size_t best = kNoGroup;
  double worst_error = -1;
  for (size_t g = 0; g < workload.num_groups(); ++g) {
    if (!active[g] || !(group_scales[g] > lambda_delta)) continue;
    const double err =
        SelectionScore(workload, SelectionRule::kMaxRelativeError, g,
                       noisy_answers, group_scales[g], delta, lambda_delta);
    if (err > worst_error) {
      worst_error = err;
      best = g;
    }
  }
  return best;
}

size_t PickGroupIResamp(const Workload& workload,
                        std::span<const double> noisy_answers,
                        std::span<const double> group_scales,
                        std::span<const uint8_t> active, double delta) {
  size_t best = kNoGroup;
  double best_ratio = -1;
  for (size_t g = 0; g < workload.num_groups(); ++g) {
    if (!active[g]) continue;
    const double ratio =
        SelectionScore(workload, SelectionRule::kIResampRatio, g,
                       noisy_answers, group_scales[g], delta,
                       /*lambda_delta=*/0);
    if (ratio > best_ratio) {
      best_ratio = ratio;
      best = g;
    }
  }
  return best;
}

GroupScoreHeap::GroupScoreHeap(const Workload& workload, SelectionRule rule,
                               double delta, double lambda_delta)
    : workload_(&workload),
      rule_(rule),
      delta_(delta),
      lambda_delta_(lambda_delta),
      epoch_(workload.num_groups(), 0) {}

bool GroupScoreHeap::Reducible(double scale) const {
  // iResamp halves scales, which always stays positive; the λΔ-step rules
  // need λ > λΔ headroom, matching the linear scans' skip condition.
  return rule_ == SelectionRule::kIResampRatio || scale > lambda_delta_;
}

void GroupScoreHeap::Build(std::span<const double> noisy_answers,
                           std::span<const double> scales,
                           std::span<const uint8_t> active) {
  std::vector<Entry> entries;
  entries.reserve(workload_->num_groups());
  for (size_t g = 0; g < workload_->num_groups(); ++g) {
    ++epoch_[g];  // invalidate anything left from a previous Build
    if (!active[g] || !Reducible(scales[g])) continue;
    entries.push_back(Entry{
        SelectionScore(*workload_, rule_, g, noisy_answers, scales[g],
                       delta_, lambda_delta_),
        g, epoch_[g]});
  }
  heap_ = std::priority_queue<Entry, std::vector<Entry>, EntryLess>(
      EntryLess{}, std::move(entries));
}

size_t GroupScoreHeap::PopBest() {
  while (!heap_.empty()) {
    const Entry top = heap_.top();
    heap_.pop();
    if (top.epoch != epoch_[top.group]) {
      ++stale_pop_count_;
      continue;
    }
    // Consume the entry: the caller must Update() or Retire() the group
    // before it can be popped again.
    ++epoch_[top.group];
    return top.group;
  }
  return kNoGroup;
}

void GroupScoreHeap::Update(size_t g, std::span<const double> noisy_answers,
                            std::span<const double> scales) {
  ++epoch_[g];
  if (!Reducible(scales[g])) return;  // scales never grow: gone for good
  heap_.push(Entry{SelectionScore(*workload_, rule_, g, noisy_answers,
                                  scales[g], delta_, lambda_delta_),
                   g, epoch_[g]});
  ++repush_count_;
}

void GroupScoreHeap::Retire(size_t g) { ++epoch_[g]; }

}  // namespace ireduct
