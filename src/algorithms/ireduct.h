// The iReduct algorithm (Section 4.3, Figure 4) — the paper's main
// contribution.
//
// Every group starts at the conservative scale λmax. Each iteration picks
// the group with the best estimated (relative-error decrease)/(privacy-cost
// increase) ratio, lowers its scale by λΔ, and — if the generalized
// sensitivity still fits the budget ε — refreshes its answers with the
// NoiseDown correlated resampler, whose privacy cost is that of the *final*
// scale alone (Theorem 1). Groups whose reduction would bust the budget
// leave the working set; the loop ends when the set is empty. The output is
// ε-differentially private (Theorem 2).
#ifndef IREDUCT_ALGORITHMS_IREDUCT_H_
#define IREDUCT_ALGORITHMS_IREDUCT_H_

#include <cstddef>
#include <functional>
#include <span>

#include "algorithms/mechanism.h"
#include "common/random.h"
#include "common/result.h"
#include "dp/checkpoint.h"
#include "dp/workload.h"

namespace ireduct {

/// Which correlated resampler drives the per-iteration noise reduction.
enum class NoiseReducer {
  /// The paper's NoiseDown distribution (Figure 3).
  kPaperNoiseDown,
  /// The exact atom coupling of dp/laplace_coupling.h (extension; exact
  /// guarantees at every scale, but the new answer can equal the old one).
  kExactCoupling,
};

/// Inner-loop engine. The incremental path (O(log m) amortized per
/// iteration: incremental GS accounting + lazy-heap selection) produces the
/// same group sequence, answers, scales and epsilon_spent as the naive
/// reference (O(m + n) per iteration) at every seed; the naive engine is
/// retained for parity checks and as the only engine able to run arbitrary
/// PickGroupFn hooks.
enum class IReductEngine {
  /// Incremental unless a custom pick_group hook forces the reference loop.
  kAuto,
  /// Full-GS-recompute + linear-scan reference loop (the seed behavior).
  kNaive,
};

/// Objective of the built-in PickQueries (ignored when a custom hook is
/// given): minimize the overall (average) relative error via the
/// benefit/cost greedy of Section 5.3, or the maximum relative error via
/// the worst-cell rule of Section 4.3.
enum class IReductObjective {
  kOverallError,
  kMaxRelativeError,
};

struct IReductParams {
  /// Total privacy budget ε.
  double epsilon = 1.0;
  /// Sanity bound δ of Equation 1.
  double delta = 1.0;
  /// Initial (largest acceptable) noise scale; the paper uses |T|/10.
  double lambda_max = 1.0;
  /// Per-iteration scale decrement; the paper uses |T|/10^6.
  double lambda_delta = 1.0;
  /// Resampler used to walk answers down to the reduced scale.
  NoiseReducer reducer = NoiseReducer::kPaperNoiseDown;
  /// Inner-loop engine (see IReductEngine).
  IReductEngine engine = IReductEngine::kAuto;
  /// Built-in PickQueries objective (see IReductObjective).
  IReductObjective objective = IReductObjective::kOverallError;
  /// Batched round mode (incremental engine only): admit up to batch_size
  /// distinct groups per round — in heap order, each tested against the
  /// running GS — then resample them all before re-scoring. 1 reproduces
  /// Figure 4's strictly sequential refinement exactly; see
  /// docs/PERFORMANCE.md for how k>1 relates to k sequential iterations.
  size_t batch_size = 1;
  /// Worker threads for the batched round's NoiseDown resampling. Results
  /// are bit-identical for every thread count (deterministic per-group RNG
  /// substreams, drawn in admission order from the caller's generator);
  /// values > 1 only change wall-clock time.
  int num_threads = 1;
  /// Periodic durable checkpoints (incremental engine only; see
  /// dp/checkpoint.h). Inactive by default.
  CheckpointOptions checkpoint;
  /// Resume state from a previously loaded checkpoint (borrowed; must
  /// outlive the run). The run continues bit-identically to the
  /// interrupted one: same answers, scales, RNG stream and ε accounting.
  /// Refused when the checkpoint's algorithm or workload fingerprint does
  /// not match. Incremental engine only.
  const RunCheckpoint* resume = nullptr;
};

/// Override hook for the PickQueries black box (Section 4.3): receives the
/// workload, the current noisy answers, per-group scales, the active-group
/// mask, δ and λΔ; returns the group to reduce next or kNoGroup to stop.
/// It must not consult the true answers (that would void the privacy
/// guarantee). The default is PickGroupIReduct (Section 5.3).
using PickGroupFn = std::function<size_t(
    const Workload&, std::span<const double> /*noisy_answers*/,
    std::span<const double> /*group_scales*/, std::span<const uint8_t> /*active*/,
    double /*delta*/, double /*lambda_delta*/)>;

/// Runs Figure 4. Returns kPrivacyBudgetExceeded when even the all-λmax
/// allocation violates ε (the pseudo-code's "return ∅" on line 3).
/// ε-differentially private.
///
/// Passing a custom `pick_group` selects the naive reference loop (an
/// arbitrary hook cannot be heap-accelerated); with the default hook the
/// incremental engine runs unless params.engine says otherwise.
Result<MechanismOutput> RunIReduct(const Workload& workload,
                                   const IReductParams& params, BitGen& gen,
                                   PickGroupFn pick_group = nullptr);

}  // namespace ireduct

#endif  // IREDUCT_ALGORITHMS_IREDUCT_H_
