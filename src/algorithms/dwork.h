// Dwork et al.'s baseline (Section 2.2): uniform Laplace noise calibrated
// to the workload's sensitivity.
#ifndef IREDUCT_ALGORITHMS_DWORK_H_
#define IREDUCT_ALGORITHMS_DWORK_H_

#include "algorithms/mechanism.h"
#include "common/random.h"
#include "common/result.h"
#include "dp/workload.h"

namespace ireduct {

struct DworkParams {
  /// Privacy budget ε; every query receives Laplace noise of scale S(Q)/ε.
  double epsilon = 1.0;
};

/// Publishes the workload with identical noise scale S(Q)/ε for every
/// query. ε-differentially private (Proposition 1).
Result<MechanismOutput> RunDwork(const Workload& workload,
                                 const DworkParams& params, BitGen& gen);

}  // namespace ireduct

#endif  // IREDUCT_ALGORITHMS_DWORK_H_
