// Umbrella header: the full public API of the iReduct library.
//
// Fine-grained headers remain the preferred includes inside the library
// itself (include-what-you-use); this header is a convenience for
// downstream applications.
#ifndef IREDUCT_IREDUCT_H_
#define IREDUCT_IREDUCT_H_

#include "algorithms/dwork.h"              // IWYU pragma: export
#include "algorithms/geometric.h"          // IWYU pragma: export
#include "algorithms/ireduct.h"            // IWYU pragma: export
#include "algorithms/iresamp.h"            // IWYU pragma: export
#include "algorithms/mechanism.h"          // IWYU pragma: export
#include "algorithms/mechanism_registry.h" // IWYU pragma: export
#include "algorithms/oracle.h"             // IWYU pragma: export
#include "algorithms/proportional.h"       // IWYU pragma: export
#include "algorithms/selection.h"          // IWYU pragma: export
#include "algorithms/strategy_mechanism.h" // IWYU pragma: export
#include "algorithms/two_phase.h"          // IWYU pragma: export
#include "classifier/cross_validation.h"   // IWYU pragma: export
#include "classifier/naive_bayes.h"        // IWYU pragma: export
#include "common/random.h"                 // IWYU pragma: export
#include "common/result.h"                 // IWYU pragma: export
#include "common/status.h"                 // IWYU pragma: export
#include "data/census_generator.h"         // IWYU pragma: export
#include "data/columnar.h"                 // IWYU pragma: export
#include "data/csv.h"                      // IWYU pragma: export
#include "data/dataset.h"                  // IWYU pragma: export
#include "data/schema.h"                   // IWYU pragma: export
#include "common/fault.h"                  // IWYU pragma: export
#include "dp/checkpoint.h"                 // IWYU pragma: export
#include "dp/confidence.h"                 // IWYU pragma: export
#include "dp/laplace_coupling.h"           // IWYU pragma: export
#include "dp/laplace_mechanism.h"          // IWYU pragma: export
#include "dp/ledger_journal.h"             // IWYU pragma: export
#include "dp/noise_down.h"                 // IWYU pragma: export
#include "dp/noise_down_chain.h"           // IWYU pragma: export
#include "dp/privacy_accountant.h"         // IWYU pragma: export
#include "dp/workload.h"                   // IWYU pragma: export
#include "eval/experiment.h"               // IWYU pragma: export
#include "eval/metrics.h"                  // IWYU pragma: export
#include "eval/privacy_audit.h"            // IWYU pragma: export
#include "eval/report.h"                   // IWYU pragma: export
#include "eval/run_report.h"               // IWYU pragma: export
#include "eval/sanity_bounds.h"            // IWYU pragma: export
#include "eval/stats.h"                    // IWYU pragma: export
#include "eval/table_printer.h"            // IWYU pragma: export
#include "marginals/marginal.h"            // IWYU pragma: export
#include "marginals/marginal_set.h"        // IWYU pragma: export
#include "marginals/consistency.h"         // IWYU pragma: export
#include "marginals/marginal_workload.h"   // IWYU pragma: export
#include "marginals/postprocess.h"         // IWYU pragma: export
#include "marginals/synthetic.h"           // IWYU pragma: export
#include "obs/event_log.h"                 // IWYU pragma: export
#include "obs/export_prometheus.h"         // IWYU pragma: export
#include "obs/json.h"                      // IWYU pragma: export
#include "obs/log.h"                       // IWYU pragma: export
#include "obs/metrics.h"                   // IWYU pragma: export
#include "obs/trace.h"                     // IWYU pragma: export
#include "queries/linear_workload.h"       // IWYU pragma: export
#include "queries/predicate.h"             // IWYU pragma: export
#include "queries/range_workload.h"        // IWYU pragma: export
#include "queries/strategy.h"              // IWYU pragma: export
#include "service/private_session.h"       // IWYU pragma: export
#include "service/query_server.h"          // IWYU pragma: export
#include "service/wire.h"                  // IWYU pragma: export

#endif  // IREDUCT_IREDUCT_H_
