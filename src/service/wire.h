// NDJSON wire protocol for the query server, over a local Unix-domain
// stream socket (see docs/SERVICE.md for the full schema).
//
// Framing: one JSON object per '\n'-terminated line, both directions.
// Every request carries a caller-chosen `id`; the matching response echoes
// it. Responses may arrive out of order — queued work (count/marginals)
// resolves through the server's admission pipeline while synchronous ops
// (open/budget/stats/ping) answer immediately — so clients correlate by
// id, never by position.
//
// Requests (fields beyond id/op depend on the op):
//   {"id":1,"op":"open","tenant":"t1","dataset":"census","budget":1.0,
//    "seed":7}
//   {"id":2,"op":"marginals","tenant":"t1","specs":[[0,1],[2]],
//    "mechanism":"ireduct","epsilon":0.5,"delta":0.05,"lambda_steps":200}
//   {"id":3,"op":"count","tenant":"t1","predicates":[[0,3],[1,1]],
//    "epsilon":0.1}
//   {"id":4,"op":"budget","tenant":"t1"}    {"id":5,"op":"stats"}
//   {"id":6,"op":"ping"}                    {"id":7,"op":"resume",...}
//
// Responses:
//   {"id":2,"ok":true,"result":{...}}
//   {"id":2,"ok":false,"code":"Resource exhausted","message":"...",
//    "retry_after_ms":50}
// `retry_after_ms` appears exactly on admission sheds; a client seeing it
// can resubmit the identical request after the hinted delay (sheds never
// charge ε). Unparseable request lines produce an id-0 error response.
#ifndef IREDUCT_SERVICE_WIRE_H_
#define IREDUCT_SERVICE_WIRE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/result.h"
#include "marginals/marginal.h"
#include "queries/predicate.h"
#include "service/private_session.h"
#include "service/query_server.h"

namespace ireduct {

/// One parsed request line. `op` selects which fields are meaningful.
struct WireRequest {
  uint64_t id = 0;
  std::string op;       // open|resume|marginals|count|budget|stats|ping
  std::string tenant;   // open/resume/marginals/count/budget
  std::string dataset;  // open/resume
  double budget = 0;    // open
  uint64_t seed = 0;    // open/resume
  double epsilon = 0;   // marginals/count
  double delta = 0;     // marginals
  int64_t lambda_steps = 200;          // marginals
  std::string mechanism = "ireduct";   // marginals (compact spec text)
  std::vector<MarginalSpec> specs;     // marginals
  ConjunctiveQuery query;              // count

  /// Serializes exactly the fields the op uses, keys in a fixed order.
  std::string ToJson() const;

  /// Strict inverse of ToJson: unknown ops, unknown keys, or wrong field
  /// types are kInvalidArgument.
  static Result<WireRequest> Parse(std::string_view line);
};

/// One response line.
struct WireResponse {
  uint64_t id = 0;
  bool ok = false;
  std::string result_json;   // serialized result object when ok
  std::string code;          // StatusCodeToString(...) when !ok
  std::string message;       // status message when !ok
  int64_t retry_after_ms = -1;  // >= 0 exactly on admission sheds

  std::string ToJson() const;
  static Result<WireResponse> Parse(std::string_view line);
};

/// Serialized result payloads (shared by the server and tests).
std::string MarginalReleaseToJson(const MarginalRelease& release);
std::string ServerStatsToJson(const QueryServerStats& stats);

/// Serves a QueryServer over a Unix-domain socket: accepts connections,
/// parses NDJSON request lines, dispatches onto the server's admission
/// pipeline and writes id-correlated responses. One reader thread per
/// connection plus one waiter per queued request; response writes are
/// serialized per connection.
class WireServer {
 public:
  /// Binds `socket_path` (an existing socket file is replaced) and starts
  /// accepting. `server` is borrowed and must outlive the WireServer.
  static Result<std::unique_ptr<WireServer>> Start(QueryServer* server,
                                                   std::string socket_path);

  /// Stops accepting, shuts every connection down and joins all threads.
  /// Idempotent; also run by the destructor.
  void Stop();
  ~WireServer();

  const std::string& socket_path() const { return socket_path_; }
  uint64_t connections_served() const;

  WireServer(const WireServer&) = delete;
  WireServer& operator=(const WireServer&) = delete;

 private:
  WireServer(QueryServer* server, std::string socket_path, int listen_fd);

  void AcceptLoop();
  void ServeConnection(int fd);
  /// Handles one request line, writing any synchronous response and
  /// spawning waiters for queued ops. `write_mu`/`fd` describe the
  /// connection; waiters are collected into `waiters`.
  void HandleLine(std::string_view line, int fd, std::mutex* write_mu,
                  std::vector<std::thread>* waiters);

  QueryServer* const server_;
  const std::string socket_path_;
  int listen_fd_ = -1;

  mutable std::mutex mu_;
  bool stopping_ = false;
  std::vector<int> connection_fds_;
  std::vector<std::thread> connection_threads_;
  uint64_t connections_served_ = 0;

  std::thread accept_thread_;
};

/// Minimal blocking client for the wire protocol: one connection, request/
/// response correlation by id (out-of-order responses are buffered).
class WireClient {
 public:
  static Result<WireClient> Connect(const std::string& socket_path);
  ~WireClient();

  WireClient(WireClient&& other) noexcept;
  WireClient& operator=(WireClient&& other) noexcept;
  WireClient(const WireClient&) = delete;
  WireClient& operator=(const WireClient&) = delete;

  /// Writes one request line. Ids must be unique per connection.
  Status Send(const WireRequest& request);
  /// Reads lines until the response with `id` arrives (other ids are
  /// buffered for their own Receive calls).
  Result<WireResponse> Receive(uint64_t id);
  /// Send + Receive in one call.
  Result<WireResponse> Call(const WireRequest& request);

 private:
  explicit WireClient(int fd) : fd_(fd) {}

  int fd_ = -1;
  std::string read_buffer_;
  std::map<uint64_t, WireResponse> pending_;
};

}  // namespace ireduct

#endif  // IREDUCT_SERVICE_WIRE_H_
