// PrivateQuerySession: the library's front door for interactive use.
//
// Owns a dataset and a total ε budget, and answers ad-hoc requests until
// the budget runs out, charging a PrivacyAccountant for every release:
//
//   * CountQuery     — one conjunctive predicate count (Laplace or
//                      geometric noise at a caller-chosen ε slice);
//   * PublishMarginals — a batch of marginals through any of the batch
//                      mechanisms (iReduct by default);
//   * StartRefinableCount — a progressively refinable count backed by a
//                      NoiseDown chain, so an analyst can buy accuracy
//                      incrementally instead of up front.
//
// Everything returned is safe to publish; the session never exposes true
// answers. The batch mechanisms consume their slice via the accountant,
// so interleaving ad-hoc counts and marginal releases composes correctly
// (sequential composition, Proposition 3's argument).
#ifndef IREDUCT_SERVICE_PRIVATE_SESSION_H_
#define IREDUCT_SERVICE_PRIVATE_SESSION_H_

#include <memory>
#include <vector>

#include "algorithms/ireduct.h"
#include "algorithms/mechanism_registry.h"
#include "common/random.h"
#include "common/result.h"
#include "data/dataset.h"
#include "dp/ledger_journal.h"
#include "dp/noise_down_chain.h"
#include "dp/privacy_accountant.h"
#include "marginals/marginal.h"
#include "queries/predicate.h"

namespace ireduct {

/// Noise family for scalar counts.
enum class CountNoise {
  kLaplace,
  kGeometric,  // integer-valued output
};

/// A published set of marginals plus its cost.
struct MarginalRelease {
  std::vector<Marginal> marginals;
  double epsilon_spent = 0;
};

/// An interactive ε-budgeted view over one dataset.
class PrivateQuerySession {
 public:
  /// Creates a session over `dataset` (borrowed; must outlive the
  /// session) with the given total budget and RNG seed.
  static Result<PrivateQuerySession> Create(const Dataset* dataset,
                                            double epsilon_budget,
                                            uint64_t seed);

  /// Like Create, but crash-safe: a fresh write-ahead ledger journal is
  /// created at `journal_path` and every budget mutation is made durable
  /// there *before* it becomes visible in the session (see
  /// dp/ledger_journal.h). Missing parent directories of `journal_path`
  /// are created (a fresh tenant under a new per-tenant directory must not
  /// fail with ENOENT). Refuses (kFailedPrecondition) if a journal
  /// already exists there — truncating a crashed session's ledger would
  /// double-spend its ε; use ResumeWithJournal or delete the file.
  static Result<PrivateQuerySession> CreateWithJournal(
      const Dataset* dataset, double epsilon_budget, uint64_t seed,
      const std::string& journal_path);

  /// Reopens a journaled session after a crash. The journal at
  /// `journal_path` is recovered — strict about corruption, conservative
  /// about a torn final record, which counts as spent (and the journal is
  /// compacted so appending can continue) — and the accountant resumes
  /// with the recovered ledger. The recovered spend may exceed the budget;
  /// such a session refuses all further charges.
  static Result<PrivateQuerySession> ResumeWithJournal(
      const Dataset* dataset, uint64_t seed, const std::string& journal_path);

  /// The attached write-ahead journal, or nullptr for plain sessions.
  const LedgerJournal* journal() const { return journal_.get(); }

  double budget() const { return accountant_->budget(); }
  double spent() const { return accountant_->spent(); }
  double remaining() const { return accountant_->remaining(); }
  /// Labelled record of every charge so far.
  const std::vector<PrivacyCharge>& ledger() const {
    return accountant_->ledger();
  }

  /// Answers one predicate count with `epsilon` of the budget.
  Result<double> CountQuery(const ConjunctiveQuery& query, double epsilon,
                            CountNoise noise = CountNoise::kLaplace);

  /// Publishes the given marginals through iReduct with `epsilon` of the
  /// budget. `lambda_steps` controls the reduction resolution
  /// (λΔ = λmax/steps); `delta` is the sanity bound driving reallocation.
  Result<MarginalRelease> PublishMarginals(
      std::span<const MarginalSpec> specs, double epsilon, double delta,
      int lambda_steps = 200);

  /// Publishes the given marginals through any registered *private* batch
  /// mechanism. `mechanism` names the algorithm and may carry parameter
  /// overrides (e.g. "two_phase:epsilon1_fraction=0.1"); session-derived
  /// defaults — epsilon, delta, lambda_max (max(|T|/10, 2·S/ε)) and
  /// lambda_steps — are filled only for parameters the mechanism declares
  /// and the spec leaves unset, so explicit spec values always win. The
  /// accountant is charged the mechanism's actual epsilon_spent under the
  /// label "marginal release (<DisplayName>)". Non-private mechanisms
  /// (oracle, proportional) are refused with kInvalidArgument.
  Result<MarginalRelease> PublishMarginals(
      std::span<const MarginalSpec> specs, MechanismSpec mechanism,
      double epsilon, double delta, int lambda_steps = 200);

  /// PublishMarginals with the true tables already computed (e.g. by the
  /// query server's coalesced MarginalSetEvaluator pass). `tables` must be
  /// exactly what ComputeMarginals(dataset, specs) would return — the fused
  /// evaluator and the marginal cache both guarantee bit-identical tables —
  /// so the release (noise draws, ε charges, ledger labels) is bit-identical
  /// to the self-computing overloads at the same session state.
  Result<MarginalRelease> PublishMarginalsPrecomputed(
      std::vector<Marginal> tables, MechanismSpec mechanism, double epsilon,
      double delta, int lambda_steps = 200);

  /// Starts a refinable count at `initial_scale` noise; refine through the
  /// returned chain (each Reduce draws from this session's budget). The
  /// chain borrows this session's accountant, so the session must outlive
  /// it.
  Result<NoiseDownChain> StartRefinableCount(const ConjunctiveQuery& query,
                                             double initial_scale);

  /// The session's RNG — pass to NoiseDownChain::Reduce for reproducible
  /// refinement streams.
  BitGen& rng() { return gen_; }

 private:
  PrivateQuerySession(const Dataset* dataset,
                      std::unique_ptr<PrivacyAccountant> accountant,
                      uint64_t seed,
                      std::unique_ptr<LedgerJournal> journal = nullptr)
      : dataset_(dataset),
        accountant_(std::move(accountant)),
        journal_(std::move(journal)),
        gen_(seed) {
    if (journal_ != nullptr) accountant_->AttachJournal(journal_.get());
  }

  const Dataset* dataset_;
  std::unique_ptr<PrivacyAccountant> accountant_;
  std::unique_ptr<LedgerJournal> journal_;  // heap: survives session moves
  BitGen gen_;
};

}  // namespace ireduct

#endif  // IREDUCT_SERVICE_PRIVATE_SESSION_H_
