#include "service/wire.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <functional>
#include <utility>

#include "common/status.h"
#include "obs/json.h"

namespace ireduct {

namespace {

using obs::JsonValue;

Result<double> AsNumber(const JsonValue& v, const char* key) {
  if (!v.is(JsonValue::Kind::kNumber)) {
    return Status::InvalidArgument(std::string("field '") + key +
                                   "' must be a number");
  }
  return v.number;
}

Result<std::string> AsString(const JsonValue& v, const char* key) {
  if (!v.is(JsonValue::Kind::kString)) {
    return Status::InvalidArgument(std::string("field '") + key +
                                   "' must be a string");
  }
  return v.text;
}

// Re-serializes a parsed JSON node byte-compatibly with JsonWriter (numbers
// keep their raw tokens), so result payloads survive a parse round trip.
void WriteValue(const JsonValue& v, obs::JsonWriter* w) {
  switch (v.kind) {
    case JsonValue::Kind::kNull:
      w->RawValue("null");
      break;
    case JsonValue::Kind::kBool:
      w->Bool(v.boolean);
      break;
    case JsonValue::Kind::kNumber:
      w->RawValue(v.text);
      break;
    case JsonValue::Kind::kString:
      w->String(v.text);
      break;
    case JsonValue::Kind::kArray:
      w->BeginArray();
      for (const JsonValue& element : v.array) WriteValue(element, w);
      w->EndArray();
      break;
    case JsonValue::Kind::kObject:
      w->BeginObject();
      for (const auto& [key, value] : v.object) {
        w->Key(key);
        WriteValue(value, w);
      }
      w->EndObject();
      break;
  }
}

// Parses [[a,b,...],...] into per-row uint16/uint32 pairs via `emit`.
Status ParseNestedNumberArray(
    const JsonValue& v, const char* key, size_t min_inner, size_t max_inner,
    const std::function<Status(const std::vector<double>&)>& emit) {
  if (!v.is(JsonValue::Kind::kArray)) {
    return Status::InvalidArgument(std::string("field '") + key +
                                   "' must be an array of arrays");
  }
  for (const JsonValue& inner : v.array) {
    if (!inner.is(JsonValue::Kind::kArray)) {
      return Status::InvalidArgument(std::string("field '") + key +
                                     "' must be an array of arrays");
    }
    if (inner.array.size() < min_inner || inner.array.size() > max_inner) {
      return Status::InvalidArgument(std::string("field '") + key +
                                     "' has an entry of invalid length");
    }
    std::vector<double> values;
    values.reserve(inner.array.size());
    for (const JsonValue& element : inner.array) {
      IREDUCT_ASSIGN_OR_RETURN(const double d, AsNumber(element, key));
      if (d < 0 || d != static_cast<double>(static_cast<uint64_t>(d))) {
        return Status::InvalidArgument(std::string("field '") + key +
                                       "' entries must be non-negative "
                                       "integers");
      }
      values.push_back(d);
    }
    IREDUCT_RETURN_NOT_OK(emit(values));
  }
  return Status::OK();
}

bool KnownOp(std::string_view op) {
  return op == "open" || op == "resume" || op == "marginals" ||
         op == "count" || op == "budget" || op == "stats" || op == "ping";
}

// Blocking full-line write; serialized per connection by `mu`. A peer that
// vanished mid-write just drops the response (its reader is gone too).
void WriteLine(int fd, std::mutex* mu, std::string_view json) {
  std::string line(json);
  line += '\n';
  std::lock_guard<std::mutex> lock(*mu);
  size_t off = 0;
  while (off < line.size()) {
    const ssize_t n =
        ::send(fd, line.data() + off, line.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return;
    off += static_cast<size_t>(n);
  }
}

WireResponse ErrorResponse(uint64_t id, const Status& status,
                           int retry_after_ms) {
  WireResponse out;
  out.id = id;
  out.ok = false;
  out.code = std::string(StatusCodeToString(status.code()));
  out.message = std::string(status.message());
  out.retry_after_ms =
      status.code() == StatusCode::kResourceExhausted ? retry_after_ms : -1;
  return out;
}

WireResponse OkResponse(uint64_t id, std::string result_json) {
  WireResponse out;
  out.id = id;
  out.ok = true;
  out.result_json = std::move(result_json);
  return out;
}

}  // namespace

std::string WireRequest::ToJson() const {
  std::string out;
  obs::JsonWriter w(&out);
  w.BeginObject();
  w.KV("id", static_cast<uint64_t>(id));
  w.KV("op", op);
  if (op == "open" || op == "resume" || op == "marginals" || op == "count" ||
      op == "budget") {
    w.KV("tenant", tenant);
  }
  if (op == "open" || op == "resume") {
    w.KV("dataset", dataset);
    if (op == "open") w.KV("budget", budget);
    w.KV("seed", static_cast<uint64_t>(seed));
  }
  if (op == "marginals") {
    w.Key("specs");
    w.BeginArray();
    for (const MarginalSpec& spec : specs) {
      w.BeginArray();
      for (const uint32_t attr : spec.attributes) w.UInt(attr);
      w.EndArray();
    }
    w.EndArray();
    w.KV("mechanism", mechanism);
    w.KV("epsilon", epsilon);
    w.KV("delta", delta);
    w.Key("lambda_steps");
    w.Int(lambda_steps);
  }
  if (op == "count") {
    w.Key("predicates");
    w.BeginArray();
    for (const EqualityPredicate& p : query.predicates) {
      w.BeginArray();
      w.UInt(p.attribute);
      w.UInt(p.value);
      w.EndArray();
    }
    w.EndArray();
    w.KV("epsilon", epsilon);
  }
  w.EndObject();
  return out;
}

Result<WireRequest> WireRequest::Parse(std::string_view line) {
  IREDUCT_ASSIGN_OR_RETURN(const JsonValue doc, obs::JsonParse(line));
  if (!doc.is(JsonValue::Kind::kObject)) {
    return Status::InvalidArgument("request must be a JSON object");
  }
  WireRequest out;
  bool saw_id = false, saw_op = false;
  for (const auto& [key, value] : doc.object) {
    if (key == "id") {
      IREDUCT_ASSIGN_OR_RETURN(const double d, AsNumber(value, "id"));
      out.id = static_cast<uint64_t>(d);
      saw_id = true;
    } else if (key == "op") {
      IREDUCT_ASSIGN_OR_RETURN(out.op, AsString(value, "op"));
      saw_op = true;
    } else if (key == "tenant") {
      IREDUCT_ASSIGN_OR_RETURN(out.tenant, AsString(value, "tenant"));
    } else if (key == "dataset") {
      IREDUCT_ASSIGN_OR_RETURN(out.dataset, AsString(value, "dataset"));
    } else if (key == "mechanism") {
      IREDUCT_ASSIGN_OR_RETURN(out.mechanism, AsString(value, "mechanism"));
    } else if (key == "budget") {
      IREDUCT_ASSIGN_OR_RETURN(out.budget, AsNumber(value, "budget"));
    } else if (key == "epsilon") {
      IREDUCT_ASSIGN_OR_RETURN(out.epsilon, AsNumber(value, "epsilon"));
    } else if (key == "delta") {
      IREDUCT_ASSIGN_OR_RETURN(out.delta, AsNumber(value, "delta"));
    } else if (key == "seed") {
      IREDUCT_ASSIGN_OR_RETURN(const double d, AsNumber(value, "seed"));
      out.seed = static_cast<uint64_t>(d);
    } else if (key == "lambda_steps") {
      IREDUCT_ASSIGN_OR_RETURN(const double d, AsNumber(value, "lambda_steps"));
      out.lambda_steps = static_cast<int64_t>(d);
    } else if (key == "specs") {
      out.specs.clear();
      IREDUCT_RETURN_NOT_OK(ParseNestedNumberArray(
          value, "specs", 1, 64, [&out](const std::vector<double>& values) {
            MarginalSpec spec;
            for (const double v : values) {
              spec.attributes.push_back(static_cast<uint32_t>(v));
            }
            out.specs.push_back(std::move(spec));
            return Status::OK();
          }));
    } else if (key == "predicates") {
      out.query.predicates.clear();
      IREDUCT_RETURN_NOT_OK(ParseNestedNumberArray(
          value, "predicates", 2, 2,
          [&out](const std::vector<double>& values) {
            out.query.predicates.push_back(
                {static_cast<uint32_t>(values[0]),
                 static_cast<uint16_t>(values[1])});
            return Status::OK();
          }));
    } else {
      return Status::InvalidArgument("unknown request field '" + key + "'");
    }
  }
  if (!saw_id || !saw_op) {
    return Status::InvalidArgument("request needs 'id' and 'op'");
  }
  if (!KnownOp(out.op)) {
    return Status::InvalidArgument("unknown op '" + out.op + "'");
  }
  return out;
}

std::string WireResponse::ToJson() const {
  std::string out;
  obs::JsonWriter w(&out);
  w.BeginObject();
  w.KV("id", static_cast<uint64_t>(id));
  w.Key("ok");
  w.Bool(ok);
  if (ok) {
    w.Key("result");
    w.RawValue(result_json.empty() ? "null" : result_json);
  } else {
    w.KV("code", code);
    w.KV("message", message);
    if (retry_after_ms >= 0) {
      w.Key("retry_after_ms");
      w.Int(retry_after_ms);
    }
  }
  w.EndObject();
  return out;
}

Result<WireResponse> WireResponse::Parse(std::string_view line) {
  IREDUCT_ASSIGN_OR_RETURN(const JsonValue doc, obs::JsonParse(line));
  if (!doc.is(JsonValue::Kind::kObject)) {
    return Status::InvalidArgument("response must be a JSON object");
  }
  WireResponse out;
  bool saw_id = false, saw_ok = false;
  for (const auto& [key, value] : doc.object) {
    if (key == "id") {
      IREDUCT_ASSIGN_OR_RETURN(const double d, AsNumber(value, "id"));
      out.id = static_cast<uint64_t>(d);
      saw_id = true;
    } else if (key == "ok") {
      if (!value.is(JsonValue::Kind::kBool)) {
        return Status::InvalidArgument("field 'ok' must be a boolean");
      }
      out.ok = value.boolean;
      saw_ok = true;
    } else if (key == "result") {
      std::string raw;
      obs::JsonWriter w(&raw);
      WriteValue(value, &w);
      out.result_json = std::move(raw);
    } else if (key == "code") {
      IREDUCT_ASSIGN_OR_RETURN(out.code, AsString(value, "code"));
    } else if (key == "message") {
      IREDUCT_ASSIGN_OR_RETURN(out.message, AsString(value, "message"));
    } else if (key == "retry_after_ms") {
      IREDUCT_ASSIGN_OR_RETURN(const double d,
                               AsNumber(value, "retry_after_ms"));
      out.retry_after_ms = static_cast<int64_t>(d);
    } else {
      return Status::InvalidArgument("unknown response field '" + key + "'");
    }
  }
  if (!saw_id || !saw_ok) {
    return Status::InvalidArgument("response needs 'id' and 'ok'");
  }
  return out;
}

std::string MarginalReleaseToJson(const MarginalRelease& release) {
  std::string out;
  obs::JsonWriter w(&out);
  w.BeginObject();
  w.KV("epsilon_spent", release.epsilon_spent);
  w.Key("marginals");
  w.BeginArray();
  for (const Marginal& m : release.marginals) {
    w.BeginObject();
    w.Key("attributes");
    w.BeginArray();
    for (const uint32_t attr : m.spec().attributes) w.UInt(attr);
    w.EndArray();
    w.Key("domain");
    w.BeginArray();
    for (const uint32_t size : m.domain_sizes()) w.UInt(size);
    w.EndArray();
    w.Key("counts");
    w.BeginArray();
    for (const double count : m.counts()) w.Double(count);
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return out;
}

std::string ServerStatsToJson(const QueryServerStats& stats) {
  std::string out;
  obs::JsonWriter w(&out);
  w.BeginObject();
  w.KV("admitted", stats.admitted);
  w.KV("shed_queue_full", stats.shed_queue_full);
  w.KV("shed_tenant_cap", stats.shed_tenant_cap);
  w.KV("completed", stats.completed);
  w.KV("batches", stats.batches);
  w.KV("fused_passes", stats.fused_passes);
  w.KV("max_batch_width", stats.max_batch_width);
  w.KV("queue_depth", static_cast<uint64_t>(stats.queue_depth));
  w.KV("tenants", static_cast<uint64_t>(stats.num_tenants));
  w.KV("datasets", static_cast<uint64_t>(stats.num_datasets));
  w.EndObject();
  return out;
}

Result<std::unique_ptr<WireServer>> WireServer::Start(
    QueryServer* server, std::string socket_path) {
  if (server == nullptr) {
    return Status::InvalidArgument("server must not be null");
  }
  sockaddr_un addr{};
  if (socket_path.empty() ||
      socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("socket path must be 1.." +
                                   std::to_string(sizeof(addr.sun_path) - 1) +
                                   " bytes");
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  ::unlink(socket_path.c_str());
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IoError("bind '" + socket_path + "': " + err);
  }
  if (::listen(fd, 64) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IoError("listen '" + socket_path + "': " + err);
  }
  return std::unique_ptr<WireServer>(
      new WireServer(server, std::move(socket_path), fd));
}

WireServer::WireServer(QueryServer* server, std::string socket_path,
                       int listen_fd)
    : server_(server),
      socket_path_(std::move(socket_path)),
      listen_fd_(listen_fd) {
  accept_thread_ = std::thread([this] { AcceptLoop(); });
}

WireServer::~WireServer() { Stop(); }

uint64_t WireServer::connections_served() const {
  std::lock_guard<std::mutex> lock(mu_);
  return connections_served_;
}

void WireServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  // Wakes the blocked accept (Linux: accept fails once the listening
  // socket is shut down).
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  // No new connections can appear now; wake every reader.
  std::vector<int> fds;
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(mu_);
    fds = connection_fds_;
    threads.swap(connection_threads_);
  }
  for (const int fd : fds) ::shutdown(fd, SHUT_RDWR);
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
  for (const int fd : fds) ::close(fd);
  ::close(listen_fd_);
  ::unlink(socket_path_.c_str());
}

void WireServer::AcceptLoop() {
  while (true) {
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      if (conn >= 0) ::close(conn);
      return;
    }
    if (conn < 0) {
      if (errno == EINTR) continue;
      return;  // listening socket gone
    }
    connection_fds_.push_back(conn);
    ++connections_served_;
    connection_threads_.emplace_back(
        [this, conn] { ServeConnection(conn); });
  }
}

void WireServer::ServeConnection(int fd) {
  // Shared by the reader (this thread) and the per-request waiters so
  // response lines never interleave.
  std::mutex write_mu;
  std::vector<std::thread> waiters;
  std::string buffer;
  char chunk[4096];
  while (true) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;  // disconnect or Stop()'s shutdown
    buffer.append(chunk, static_cast<size_t>(n));
    size_t newline;
    while ((newline = buffer.find('\n')) != std::string::npos) {
      const std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (!line.empty()) HandleLine(line, fd, &write_mu, &waiters);
    }
  }
  // Queued requests still resolve (the server answers every admitted
  // request); their writes hit a dead socket and are dropped.
  for (std::thread& t : waiters) t.join();
}

void WireServer::HandleLine(std::string_view line, int fd,
                            std::mutex* write_mu,
                            std::vector<std::thread>* waiters) {
  const int retry_ms = server_->config().retry_after_ms;
  Result<WireRequest> parsed = WireRequest::Parse(line);
  if (!parsed.ok()) {
    WriteLine(fd, write_mu, ErrorResponse(0, parsed.status(), -1).ToJson());
    return;
  }
  const WireRequest req = std::move(*parsed);
  if (req.op == "ping") {
    WriteLine(fd, write_mu, OkResponse(req.id, "{\"pong\":true}").ToJson());
    return;
  }
  if (req.op == "stats") {
    WriteLine(fd, write_mu,
              OkResponse(req.id, ServerStatsToJson(server_->Stats()))
                  .ToJson());
    return;
  }
  if (req.op == "open" || req.op == "resume") {
    const Status status =
        req.op == "open"
            ? server_->OpenTenant(req.tenant, req.dataset, req.budget,
                                  req.seed)
            : server_->ResumeTenant(req.tenant, req.dataset, req.seed);
    if (!status.ok()) {
      WriteLine(fd, write_mu, ErrorResponse(req.id, status, retry_ms).ToJson());
      return;
    }
    std::string result;
    obs::JsonWriter w(&result);
    w.BeginObject();
    w.KV("tenant", req.tenant);
    w.EndObject();
    WriteLine(fd, write_mu, OkResponse(req.id, std::move(result)).ToJson());
    return;
  }
  if (req.op == "budget") {
    Result<QueryServer::TenantBudget> budget = server_->GetBudget(req.tenant);
    if (!budget.ok()) {
      WriteLine(fd, write_mu,
                ErrorResponse(req.id, budget.status(), retry_ms).ToJson());
      return;
    }
    std::string result;
    obs::JsonWriter w(&result);
    w.BeginObject();
    w.KV("budget", budget->budget);
    w.KV("spent", budget->spent);
    w.KV("remaining", budget->remaining);
    w.EndObject();
    WriteLine(fd, write_mu, OkResponse(req.id, std::move(result)).ToJson());
    return;
  }
  if (req.op == "count") {
    std::future<Result<double>> future =
        server_->SubmitCount(req.tenant, req.query, req.epsilon);
    waiters->emplace_back([fd, write_mu, retry_ms, id = req.id,
                           future = std::move(future)]() mutable {
      Result<double> value = future.get();
      if (!value.ok()) {
        WriteLine(fd, write_mu,
                  ErrorResponse(id, value.status(), retry_ms).ToJson());
        return;
      }
      std::string result;
      obs::JsonWriter w(&result);
      w.BeginObject();
      w.KV("value", *value);
      w.EndObject();
      WriteLine(fd, write_mu, OkResponse(id, std::move(result)).ToJson());
    });
    return;
  }
  // req.op == "marginals"
  Result<MechanismSpec> mechanism = MechanismSpec::Parse(req.mechanism);
  if (!mechanism.ok()) {
    WriteLine(fd, write_mu,
              ErrorResponse(req.id, mechanism.status(), retry_ms).ToJson());
    return;
  }
  std::future<Result<MarginalRelease>> future = server_->SubmitMarginals(
      req.tenant, req.specs, std::move(*mechanism), req.epsilon, req.delta,
      static_cast<int>(req.lambda_steps));
  waiters->emplace_back([fd, write_mu, retry_ms, id = req.id,
                         future = std::move(future)]() mutable {
    Result<MarginalRelease> release = future.get();
    if (!release.ok()) {
      WriteLine(fd, write_mu,
                ErrorResponse(id, release.status(), retry_ms).ToJson());
      return;
    }
    WriteLine(fd, write_mu,
              OkResponse(id, MarginalReleaseToJson(*release)).ToJson());
  });
}

Result<WireClient> WireClient::Connect(const std::string& socket_path) {
  sockaddr_un addr{};
  if (socket_path.empty() ||
      socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("socket path must be 1.." +
                                   std::to_string(sizeof(addr.sun_path) - 1) +
                                   " bytes");
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IoError("connect '" + socket_path + "': " + err);
  }
  return WireClient(fd);
}

WireClient::~WireClient() {
  if (fd_ >= 0) ::close(fd_);
}

WireClient::WireClient(WireClient&& other) noexcept
    : fd_(other.fd_),
      read_buffer_(std::move(other.read_buffer_)),
      pending_(std::move(other.pending_)) {
  other.fd_ = -1;
}

WireClient& WireClient::operator=(WireClient&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    read_buffer_ = std::move(other.read_buffer_);
    pending_ = std::move(other.pending_);
    other.fd_ = -1;
  }
  return *this;
}

Status WireClient::Send(const WireRequest& request) {
  std::string line = request.ToJson();
  line += '\n';
  size_t off = 0;
  while (off < line.size()) {
    const ssize_t n =
        ::send(fd_, line.data() + off, line.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      return Status::IoError(std::string("send: ") + std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<WireResponse> WireClient::Receive(uint64_t id) {
  while (true) {
    const auto pending = pending_.find(id);
    if (pending != pending_.end()) {
      WireResponse out = std::move(pending->second);
      pending_.erase(pending);
      return out;
    }
    size_t newline;
    while ((newline = read_buffer_.find('\n')) == std::string::npos) {
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        return Status::IoError("connection closed before response " +
                               std::to_string(id));
      }
      read_buffer_.append(chunk, static_cast<size_t>(n));
    }
    const std::string line = read_buffer_.substr(0, newline);
    read_buffer_.erase(0, newline + 1);
    IREDUCT_ASSIGN_OR_RETURN(WireResponse response, WireResponse::Parse(line));
    pending_.emplace(response.id, std::move(response));
  }
}

Result<WireResponse> WireClient::Call(const WireRequest& request) {
  IREDUCT_RETURN_NOT_OK(Send(request));
  return Receive(request.id);
}

}  // namespace ireduct
