// QueryServer: a long-running multi-tenant front end over the session
// layer — many PrivateQuerySessions (one per tenant, each with its own ε
// budget and optional crash-safe journal) sharing immutable datasets.
//
// Requests flow through an asynchronous admission pipeline:
//
//   Submit*() ──admission──▶ bounded FIFO queue ──▶ dispatcher thread
//                 │                                      │
//                 │ shed: queue full or tenant           │ coalesce up to
//                 │ in-flight cap → kResourceExhausted   │ max_batch requests
//                 ▼ (with a retry-after hint), BEFORE    ▼
//              caller                      Phase A: one fused true-table
//                                          pass per dataset fingerprint
//                                          (MarginalCache::Global + pool)
//                                          Phase B: per-request mechanism
//                                          runs, strictly in admission
//                                          order, on the dispatcher thread
//
// Determinism contract: responses are bit-identical to running each
// tenant's requests serially against its own PrivateQuerySession, at any
// worker count and any batch width. Phase A computes only *true* count
// tables, which the fused evaluator and the marginal cache guarantee
// bit-identical to Marginal::Compute; Phase B consumes each session's RNG
// and accountant strictly in that tenant's admission order on a single
// thread. Batching therefore changes wall-clock only, never bytes —
// tests/service/query_server_test.cc locks this with golden comparisons
// across {1,2,8} workers × batched/unbatched.
//
// Shedding never charges ε: admission rejects happen before the request
// touches a session, so a kResourceExhausted caller can simply retry.
#ifndef IREDUCT_SERVICE_QUERY_SERVER_H_
#define IREDUCT_SERVICE_QUERY_SERVER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "data/dataset.h"
#include "marginals/marginal.h"
#include "queries/predicate.h"
#include "service/private_session.h"

namespace ireduct {

/// Tuning for one QueryServer instance.
struct QueryServerConfig {
  /// Workers for the fused true-table passes (Phase A sharding). Mechanism
  /// runs stay on the dispatcher thread regardless.
  int workers = 1;
  /// Bounded admission queue; a submit beyond this is shed with
  /// kResourceExhausted. Must be >= 1.
  size_t max_queue = 256;
  /// Per-tenant in-flight cap (queued + executing); a tenant beyond it is
  /// shed even when the queue has room, so one chatty tenant cannot starve
  /// the rest. Must be >= 1.
  int max_inflight_per_tenant = 8;
  /// Dispatcher coalescing window: up to this many queued requests are
  /// drained into one batch (>= 1). Only meaningful with batching on.
  size_t max_batch = 16;
  /// Coalesce concurrent marginal requests against the same dataset
  /// fingerprint into one fused evaluator pass sharing the process-wide
  /// MarginalCache. Off: every request runs the classic per-spec scan
  /// path (the architectural baseline bench/service_throughput compares
  /// against). Identical bytes either way.
  bool batching = true;
  /// When non-empty, every tenant gets a crash-safe write-ahead journal at
  /// <journal_dir>/<tenant>.journal (missing directories are created).
  /// Empty: plain in-memory sessions.
  std::string journal_dir;
  /// Retry hint attached to shed responses (and surfaced over the wire as
  /// retry_after_ms).
  int retry_after_ms = 50;
};

/// Point-in-time counters for monitoring and tests. All-time totals except
/// queue_depth (current).
struct QueryServerStats {
  uint64_t admitted = 0;
  uint64_t shed_queue_full = 0;
  uint64_t shed_tenant_cap = 0;
  uint64_t completed = 0;
  uint64_t batches = 0;          // dispatcher drains (incl. width-1)
  uint64_t fused_passes = 0;     // Phase A evaluator passes actually run
  uint64_t max_batch_width = 0;  // widest drain observed
  size_t queue_depth = 0;
  size_t num_tenants = 0;
  size_t num_datasets = 0;
};

/// A multi-tenant private query service. Thread-safe: Submit*/Stats/
/// OpenTenant may race freely; AddDataset* must complete before tenants
/// are opened on that dataset.
class QueryServer {
 public:
  /// Validates `config` and starts the dispatcher.
  static Result<std::unique_ptr<QueryServer>> Create(QueryServerConfig config);

  /// Stops the dispatcher; queued requests fail with kFailedPrecondition.
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Registers an in-memory dataset under `name`. Fingerprints it once so
  /// the admission pipeline never rescans.
  Status AddDataset(const std::string& name, Dataset dataset);

  /// Opens a columnar file (data/columnar.h) and registers it: zero-copy
  /// layouts become mmap-backed datasets shared by every tenant.
  Status AddDatasetFile(const std::string& name, const std::string& path);

  /// The registered dataset, or nullptr. Stable for the server's lifetime.
  const Dataset* dataset(const std::string& name) const;

  /// Creates tenant `tenant` over dataset `dataset_name` with its own ε
  /// budget and RNG seed (journaled when config.journal_dir is set).
  /// Duplicate tenants are refused with kFailedPrecondition.
  Status OpenTenant(const std::string& tenant, const std::string& dataset_name,
                    double epsilon_budget, uint64_t seed);

  /// Like OpenTenant, but resumes from the tenant's existing journal after
  /// a crash (requires config.journal_dir).
  Status ResumeTenant(const std::string& tenant,
                      const std::string& dataset_name, uint64_t seed);

  /// Budget view of one tenant: {budget, spent, remaining}.
  struct TenantBudget {
    double budget = 0;
    double spent = 0;
    double remaining = 0;
  };
  Result<TenantBudget> GetBudget(const std::string& tenant) const;

  /// Queues a marginal publication for `tenant`. The future resolves with
  /// the release, the mechanism's error, or the admission shed
  /// (kResourceExhausted, never after an ε charge).
  std::future<Result<MarginalRelease>> SubmitMarginals(
      const std::string& tenant, std::vector<MarginalSpec> specs,
      MechanismSpec mechanism, double epsilon, double delta,
      int lambda_steps = 200);

  /// Queues one noisy predicate count for `tenant`.
  std::future<Result<double>> SubmitCount(const std::string& tenant,
                                          ConjunctiveQuery query,
                                          double epsilon);

  /// Synchronous conveniences: Submit + wait.
  Result<MarginalRelease> PublishMarginals(const std::string& tenant,
                                           std::vector<MarginalSpec> specs,
                                           MechanismSpec mechanism,
                                           double epsilon, double delta,
                                           int lambda_steps = 200);
  Result<double> CountQuery(const std::string& tenant, ConjunctiveQuery query,
                            double epsilon);

  /// Test hook: Pause() parks the dispatcher so submissions accumulate in
  /// the queue (deterministic queue-full behavior); Resume() drains.
  void Pause();
  void Resume();

  /// Blocks until the queue is empty and no request is executing.
  void Drain();

  QueryServerStats Stats() const;

  const QueryServerConfig& config() const { return config_; }

 private:
  struct TenantState {
    std::string name;
    std::string dataset_name;
    uint64_t fingerprint = 0;
    const Dataset* dataset = nullptr;  // points into datasets_
    std::unique_ptr<PrivateQuerySession> session;
    int inflight = 0;
  };

  struct DatasetState {
    Dataset dataset;
    uint64_t fingerprint = 0;
  };

  enum class RequestKind { kMarginals, kCount };

  struct Request {
    RequestKind kind = RequestKind::kMarginals;
    TenantState* tenant = nullptr;
    // kMarginals
    std::vector<MarginalSpec> specs;
    MechanismSpec mechanism;
    double epsilon = 0;
    double delta = 0;
    int lambda_steps = 0;
    std::promise<Result<MarginalRelease>> marginals_promise;
    // kCount
    ConjunctiveQuery query;
    std::promise<Result<double>> count_promise;
  };

  explicit QueryServer(QueryServerConfig config);

  // Admission: validates the tenant and capacity under mu_, then enqueues
  // or resolves the request's promise with a shed/lookup error.
  void Admit(const std::string& tenant_name, Request request);
  // Resolves a request's promise with `status` (whichever kind it is).
  static void Reject(Request& request, Status status);

  void DispatcherLoop();
  void ExecuteBatch(std::vector<Request> batch);
  // Resolves one request against its tenant's session. `precomputed` is
  // the request's true tables from Phase A, or nullptr to use the classic
  // self-computing path.
  void ExecuteOne(Request& request, std::vector<Marginal>* precomputed);
  void FinishRequest(TenantState* tenant);

  const QueryServerConfig config_;

  mutable std::mutex mu_;
  std::condition_variable work_ready_;   // dispatcher wakeup
  std::condition_variable queue_drained_;  // Drain()/FinishRequest handshake
  std::deque<Request> queue_;
  size_t executing_ = 0;  // requests drained from queue_, not yet finished
  bool paused_ = false;
  bool stopping_ = false;

  std::map<std::string, DatasetState> datasets_;
  std::map<std::string, std::unique_ptr<TenantState>> tenants_;

  // Unsynchronized counters are only written under mu_ (admission) or on
  // the dispatcher thread; Stats() reads under mu_ after the dispatcher
  // publishes via FinishRequest.
  QueryServerStats stats_;

  ThreadPool pool_;  // Phase A sharding only
  std::thread dispatcher_;
};

}  // namespace ireduct

#endif  // IREDUCT_SERVICE_QUERY_SERVER_H_
