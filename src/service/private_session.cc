#include "service/private_session.h"

#include <errno.h>
#include <sys/stat.h>

#include <cmath>
#include <cstring>

#include "algorithms/geometric.h"
#include "marginals/marginal_set.h"
#include "marginals/marginal_workload.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ireduct {

namespace {
// Refreshes the session.epsilon_remaining gauge when the request scope
// exits, whichever path (success, refusal, error) it exits through.
class BudgetGaugeUpdater {
 public:
  explicit BudgetGaugeUpdater(const PrivacyAccountant* accountant)
      : accountant_(accountant) {}
  ~BudgetGaugeUpdater() {
    (void)accountant_;  // the macro is empty in no-tracing builds
    IREDUCT_METRIC_GAUGE_SET("session.epsilon_remaining",
                             accountant_->remaining());
  }
  BudgetGaugeUpdater(const BudgetGaugeUpdater&) = delete;
  BudgetGaugeUpdater& operator=(const BudgetGaugeUpdater&) = delete;

 private:
  const PrivacyAccountant* accountant_;
};

// mkdir -p for the directory part of `path`: a fresh tenant's journal
// often lands under a per-tenant directory that does not exist yet, and
// LedgerJournal::Create's open(O_CREAT) cannot invent intermediate
// directories. Existing directories (including races with a concurrent
// creator) are fine.
Status EnsureParentDirectories(const std::string& path) {
  size_t slash = path.find('/', path[0] == '/' ? 1 : 0);
  while (slash != std::string::npos) {
    const std::string dir = path.substr(0, slash);
    if (!dir.empty() && ::mkdir(dir.c_str(), 0777) != 0 && errno != EEXIST) {
      return Status::IoError("cannot create directory '" + dir +
                             "': " + std::strerror(errno));
    }
    slash = path.find('/', slash + 1);
  }
  return Status::OK();
}
}  // namespace

Result<PrivateQuerySession> PrivateQuerySession::Create(
    const Dataset* dataset, double epsilon_budget, uint64_t seed) {
  if (dataset == nullptr) {
    return Status::InvalidArgument("dataset must not be null");
  }
  IREDUCT_ASSIGN_OR_RETURN(PrivacyAccountant accountant,
                           PrivacyAccountant::Create(epsilon_budget));
  return PrivateQuerySession(
      dataset,
      std::make_unique<PrivacyAccountant>(std::move(accountant)), seed);
}

Result<PrivateQuerySession> PrivateQuerySession::CreateWithJournal(
    const Dataset* dataset, double epsilon_budget, uint64_t seed,
    const std::string& journal_path) {
  if (dataset == nullptr) {
    return Status::InvalidArgument("dataset must not be null");
  }
  // Truncating a crashed session's journal would erase its spent-ε record
  // and double-spend the budget; an existing file must go through
  // ResumeWithJournal (or be deleted explicitly).
  if (struct stat st; ::stat(journal_path.c_str(), &st) == 0) {
    return Status::FailedPrecondition(
        "journal '" + journal_path +
        "' already exists; use ResumeWithJournal to continue that "
        "session, or delete the file to explicitly discard its ledger");
  }
  IREDUCT_RETURN_NOT_OK(EnsureParentDirectories(journal_path));
  IREDUCT_ASSIGN_OR_RETURN(PrivacyAccountant accountant,
                           PrivacyAccountant::Create(epsilon_budget));
  IREDUCT_ASSIGN_OR_RETURN(LedgerJournal journal,
                           LedgerJournal::Create(journal_path,
                                                 epsilon_budget));
  return PrivateQuerySession(
      dataset, std::make_unique<PrivacyAccountant>(std::move(accountant)),
      seed, std::make_unique<LedgerJournal>(std::move(journal)));
}

Result<PrivateQuerySession> PrivateQuerySession::ResumeWithJournal(
    const Dataset* dataset, uint64_t seed,
    const std::string& journal_path) {
  if (dataset == nullptr) {
    return Status::InvalidArgument("dataset must not be null");
  }
  IREDUCT_ASSIGN_OR_RETURN(const LedgerJournal::Recovered recovered,
                           LedgerJournal::Recover(journal_path));
  IREDUCT_ASSIGN_OR_RETURN(PrivacyAccountant accountant,
                           LedgerJournal::Replay(recovered));
  if (recovered.torn_tail) {
    IREDUCT_LOG(kWarn) << "journal '" << journal_path
                       << "' ended in a torn grant; counting its epsilon "
                       << recovered.torn_epsilon
                       << " as spent and compacting";
  }
  // A torn tail cannot be appended after; compaction rewrites the
  // recovered state (torn liability included) as a fresh, fully
  // CRC-valid journal.
  IREDUCT_ASSIGN_OR_RETURN(
      LedgerJournal journal,
      recovered.torn_tail
          ? LedgerJournal::RewriteCompacted(journal_path, recovered)
          : LedgerJournal::OpenForAppend(journal_path));
  return PrivateQuerySession(
      dataset, std::make_unique<PrivacyAccountant>(std::move(accountant)),
      seed, std::make_unique<LedgerJournal>(std::move(journal)));
}

Result<double> PrivateQuerySession::CountQuery(const ConjunctiveQuery& query,
                                               double epsilon,
                                               CountNoise noise) {
  obs::TraceSpan span("session.count_query");
  span.Arg("epsilon", epsilon);
  IREDUCT_METRIC_COUNT("session.count_queries", 1);
  IREDUCT_SCOPED_TIMER(request_timer, "session.request_seconds");
  const BudgetGaugeUpdater budget_gauge(accountant_.get());
  if (!(epsilon > 0) || !std::isfinite(epsilon)) {
    return Status::InvalidArgument("epsilon must be positive finite");
  }
  IREDUCT_ASSIGN_OR_RETURN(const double truth,
                           EvaluateQuery(*dataset_, query));
  // Charge before sampling; a refused charge must release nothing.
  IREDUCT_RETURN_NOT_OK(accountant_->Charge(
      "count " + query.ToString(dataset_->schema()), epsilon));
  if (noise == CountNoise::kLaplace) {
    // Per-tuple sensitivity 1 for a conjunctive count.
    return truth + gen_.Laplace(1.0 / epsilon);
  }
  IREDUCT_ASSIGN_OR_RETURN(const int64_t eta,
                           TwoSidedGeometric(std::exp(-epsilon), gen_));
  return std::round(truth) + static_cast<double>(eta);
}

Result<MarginalRelease> PrivateQuerySession::PublishMarginals(
    std::span<const MarginalSpec> specs, double epsilon, double delta,
    int lambda_steps) {
  return PublishMarginals(specs, MechanismSpec("ireduct"), epsilon, delta,
                          lambda_steps);
}

Result<MarginalRelease> PrivateQuerySession::PublishMarginals(
    std::span<const MarginalSpec> specs, MechanismSpec mechanism,
    double epsilon, double delta, int lambda_steps) {
  // The precomputed path consumes no session state (RNG, accountant)
  // before the shared implementation takes over, so computing the tables
  // up front keeps this overload bit-identical to the pre-refactor code.
  IREDUCT_ASSIGN_OR_RETURN(std::vector<Marginal> marginals,
                           ComputeMarginals(*dataset_, specs));
  return PublishMarginalsPrecomputed(std::move(marginals),
                                     std::move(mechanism), epsilon, delta,
                                     lambda_steps);
}

Result<MarginalRelease> PrivateQuerySession::PublishMarginalsPrecomputed(
    std::vector<Marginal> tables, MechanismSpec mechanism, double epsilon,
    double delta, int lambda_steps) {
  const size_t num_tables = tables.size();
  obs::TraceSpan span("session.publish_marginals");
  span.Arg("mechanism", mechanism.name());
  span.Arg("epsilon", epsilon);
  span.Arg("marginals", static_cast<double>(num_tables));
  IREDUCT_METRIC_COUNT("session.marginal_releases", 1);
  IREDUCT_SCOPED_TIMER(request_timer, "session.request_seconds");
  const BudgetGaugeUpdater budget_gauge(accountant_.get());
  if (!(epsilon > 0) || !std::isfinite(epsilon)) {
    return Status::InvalidArgument("epsilon must be positive finite");
  }
  if (lambda_steps < 2) {
    return Status::InvalidArgument("lambda_steps must be >= 2");
  }
  IREDUCT_ASSIGN_OR_RETURN(const Mechanism* impl,
                           MechanismRegistry::Global().Get(mechanism.name()));
  const MechanismInfo info = impl->Describe();
  if (info.privacy != MechanismPrivacy::kPrivate) {
    return Status::InvalidArgument(
        "mechanism '" + info.name +
        "' is non-private and cannot release data through a session");
  }
  IREDUCT_RETURN_NOT_OK(impl->ValidateSpec(mechanism));
  // The spec may override the budget slice; pre-check against the value
  // the mechanism will actually see.
  impl->SetSpecDefault(&mechanism, "epsilon", epsilon);
  IREDUCT_ASSIGN_OR_RETURN(const double spec_epsilon,
                           mechanism.GetDouble("epsilon", epsilon));
  if (!(spec_epsilon > 0) || !std::isfinite(spec_epsilon)) {
    return Status::InvalidArgument("spec epsilon must be positive finite");
  }
  if (!accountant_->CanAfford(spec_epsilon)) {
    return Status::PrivacyBudgetExceeded(
        "marginal release does not fit the remaining budget");
  }
  IREDUCT_ASSIGN_OR_RETURN(MarginalWorkload workload,
                           MarginalWorkload::Create(std::move(tables)));
  // λmax: a tenth of the dataset, the paper's default reading of "the
  // largest amount of noise a user would accept".
  impl->SetSpecDefault(&mechanism, "delta", delta);
  impl->SetSpecDefault(
      &mechanism, "lambda_max",
      std::fmax(static_cast<double>(dataset_->num_rows()) / 10.0,
                2 * workload.workload().Sensitivity() / spec_epsilon));
  impl->SetSpecDefault(&mechanism, "lambda_steps",
                       std::string(std::to_string(lambda_steps)));
  IREDUCT_ASSIGN_OR_RETURN(MechanismOutput out,
                           impl->Run(workload.workload(), mechanism, gen_));
  if (!out.is_private()) {
    return Status::InvalidArgument(
        "mechanism '" + info.name +
        "' produced a non-private release; refusing to publish");
  }
  IREDUCT_RETURN_NOT_OK(accountant_->Charge(
      "marginal release (" + info.display_name + ")", out.epsilon_spent));
  span.Arg("epsilon_spent", out.epsilon_spent);
  span.Arg("iterations", static_cast<double>(out.iterations));
  IREDUCT_LOG(kInfo) << "published " << num_tables << " marginals via "
                     << info.display_name << " in " << out.iterations
                     << " iterations for epsilon " << out.epsilon_spent
                     << " (remaining " << accountant_->remaining() << ")";
  MarginalRelease release;
  release.epsilon_spent = out.epsilon_spent;
  IREDUCT_ASSIGN_OR_RETURN(release.marginals,
                           workload.ToMarginals(out.answers));
  return release;
}

Result<NoiseDownChain> PrivateQuerySession::StartRefinableCount(
    const ConjunctiveQuery& query, double initial_scale) {
  obs::TraceSpan span("session.start_refinable_count");
  span.Arg("initial_scale", initial_scale);
  // The up-front charge is sensitivity/scale (chain start at exact
  // coupling slack 1).
  span.Arg("epsilon", initial_scale > 0 ? 1.0 / initial_scale : 0.0);
  IREDUCT_METRIC_COUNT("session.refinable_counts", 1);
  IREDUCT_SCOPED_TIMER(request_timer, "session.request_seconds");
  const BudgetGaugeUpdater budget_gauge(accountant_.get());
  IREDUCT_ASSIGN_OR_RETURN(const double truth,
                           EvaluateQuery(*dataset_, query));
  NoiseDownChainOptions options;
  options.sensitivity = 1.0;
  options.reducer = ChainReducer::kExactCoupling;
  return NoiseDownChain::Start(truth, initial_scale, options, *accountant_,
                               gen_);
}

}  // namespace ireduct
